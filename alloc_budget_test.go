//go:build !race

// TestAllocBudget is the allocation-regression gate the CI bench-smoke
// job runs: per-statement heap allocations of the maintenance hot path,
// measured deterministically (direct transport, serial dispatch, one
// session) against checked-in budgets. The budgets are the measured
// steady-state numbers plus ~25% headroom — tight enough that undoing any
// single hot-path optimisation (the fragment arena, pooled partition
// bucketing, plan-time schema precompute, the projection-clone removal)
// blows them, loose enough that btree splits and map growth never do.
// When a deliberate change moves the steady state, re-measure with
// `go test -run TestAllocBudget -v .` and update the table.

package joinview

import (
	"testing"

	"joinview/internal/catalog"
	"joinview/internal/cluster"
	"joinview/internal/experiments"
	"joinview/internal/node"
)

// allocBudgets caps allocations per 8-row insert statement by strategy.
var allocBudgets = map[catalog.Strategy]float64{
	catalog.StrategyNaive:       440, // measured steady state ~350
	catalog.StrategyAuxRel:      520, // measured steady state ~415
	catalog.StrategyGlobalIndex: 770, // measured steady state ~613
}

func TestAllocBudget(t *testing.T) {
	const l, rows, warm, runs = 8, 8, 24, 64
	for _, st := range experiments.ConcurrentStrategies() {
		t.Run(st.Label, func(t *testing.T) {
			c, err := cluster.New(cluster.Config{Nodes: l, Algo: node.AlgoIndex})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if err := experiments.LoadSessionSchemas(c, 1, st.Strategy); err != nil {
				t.Fatal(err)
			}
			j := 0
			insert := func() error {
				err := c.Insert("a0", experiments.SessionInserts(0, j, rows))
				j++
				return err
			}
			for i := 0; i < warm; i++ {
				if err := insert(); err != nil {
					t.Fatal(err)
				}
			}
			var insErr error
			avg := testing.AllocsPerRun(runs, func() {
				if e := insert(); e != nil && insErr == nil {
					insErr = e
				}
			})
			if insErr != nil {
				t.Fatal(insErr)
			}
			budget := allocBudgets[st.Strategy]
			t.Logf("%s: %.0f allocs/stmt (budget %.0f)", st.Label, avg, budget)
			if avg > budget {
				t.Errorf("%s allocates %.0f per statement, over the checked-in budget %.0f — a hot-path regression (or update allocBudgets if deliberate)",
					st.Label, avg, budget)
			}
		})
	}
}
