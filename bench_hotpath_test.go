package joinview

// Benchmarks for the read path and the allocation-lean hot path: snapshot
// reads against locked reads, and the query-side projection that used to
// defensively clone every output row. The CI smoke job runs these with
// -benchtime=1x -benchmem; allocation regressions on the write path are
// gated separately by TestAllocBudget.

import (
	"testing"

	"joinview/internal/catalog"
	"joinview/internal/cluster"
	"joinview/internal/experiments"
	"joinview/internal/node"
	"joinview/internal/types"
)

// newReadBenchCluster builds one session schema (a0 ⋈ b0 = jv0) on the
// channel transport without simulated latency, pre-loaded with rows
// base-table rows, so read benchmarks measure the code path rather than
// the interconnect model.
func newReadBenchCluster(b *testing.B, lockedReads bool, rows int) *cluster.Cluster {
	b.Helper()
	c, err := cluster.New(cluster.Config{
		Nodes: 8, Algo: node.AlgoIndex, UseChannels: true, LockedReads: lockedReads,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Close)
	if err := experiments.LoadSessionSchemas(c, 1, catalog.StrategyAuxRel); err != nil {
		b.Fatal(err)
	}
	for j := 0; j*8 < rows; j++ {
		if err := c.Insert("a0", experiments.SessionInserts(0, j, 8)); err != nil {
			b.Fatal(err)
		}
	}
	return c
}

// BenchmarkSnapshotRead measures one full read of the base table and of
// the view, MVCC snapshot reads against the shared-claim fallback, on an
// otherwise idle cluster (the throughput gap under write contention is
// jvbench -exp hotpath's job; this pins the per-read path cost).
func BenchmarkSnapshotRead(b *testing.B) {
	for _, mode := range []struct {
		name   string
		locked bool
	}{{"mvcc", false}, {"locked", true}} {
		b.Run(mode.name, func(b *testing.B) {
			c := newReadBenchCluster(b, mode.locked, 256)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.TableRows("a0"); err != nil {
					b.Fatal(err)
				}
				if _, err := c.ViewRows("jv0"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkQueryJoinProjection runs an ad-hoc two-table join with an
// explicit projection list. The projection path builds every output tuple
// fresh (expr.Projection.Apply), so the per-row cost is exactly one tuple
// allocation — watch allocs/op to catch a defensive-clone regression.
func BenchmarkQueryJoinProjection(b *testing.B) {
	c := newReadBenchCluster(b, false, 256)
	spec := cluster.QuerySpec{
		Tables: []string{"a0", "b0"},
		Joins:  []catalog.JoinPred{{Left: "a0", LeftCol: "c", Right: "b0", RightCol: "d"}},
		Out: []catalog.OutCol{
			{Table: "a0", Col: "id"}, {Table: "a0", Col: "c"}, {Table: "b0", Col: "payload"},
		},
	}
	var rows []types.Tuple
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = c.QueryJoin(spec)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if len(rows) == 0 {
		b.Fatal("query returned no rows")
	}
	b.ReportMetric(float64(len(rows)), "rows/op")
}
