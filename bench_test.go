package joinview

// Benchmarks regenerating the paper's evaluation, one per table and
// figure, plus the ablations DESIGN.md calls out. Wall-clock numbers come
// from testing.B; the paper's own metrics (total workload and busiest-node
// I/Os in §3.1 cost units, interconnect messages) are attached via
// b.ReportMetric as "tw-ios/op", "maxnode-ios/op" and "msgs/op".
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// cmd/jvbench prints the same experiments as the paper's row/series
// layout.

import (
	"fmt"
	"testing"

	"joinview/internal/catalog"
	"joinview/internal/cluster"
	"joinview/internal/cost"
	"joinview/internal/experiments"
	"joinview/internal/node"
	"joinview/internal/plan"
	"joinview/internal/types"
	"joinview/internal/workload"
)

// benchLs keeps the node sweep affordable inside testing.B; jvbench -maxl
// 128 runs the full axis.
var benchLs = []int{2, 8, 32}

// BenchmarkTable1DataSet loads the scaled Table 1 data set (customer,
// orders, lineitem at the paper's 1:10:40 ratios), reporting load
// throughput.
func BenchmarkTable1DataSet(b *testing.B) {
	spec := workload.TPCR{Customers: 1500}.Defaulted()
	rows := spec.Customers + spec.Orders() + spec.Lineitems()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := cluster.New(cluster.Config{Nodes: 8})
		if err != nil {
			b.Fatal(err)
		}
		if err := spec.Load(c); err != nil {
			b.Fatal(err)
		}
		c.Close()
	}
	b.ReportMetric(float64(rows), "rows/op")
}

// twBench measures maintenance-only total workload per single-tuple insert
// (Figure 7/8 cells) for one variant.
func twBench(b *testing.B, l, fanout int, v experiments.Variant) {
	b.Helper()
	tw, err := experiments.MeasuredTW(l, fanout, v)
	if err != nil {
		b.Fatal(err)
	}
	// Wall-clock: repeat distinct single-tuple inserts on a warm cluster.
	c, err := cluster.New(cluster.Config{Nodes: l, Algo: node.AlgoIndex})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	spec := workload.TwoRel{JoinValues: 640, Fanout: fanout, ClusterBOnJoin: v.ClusterB}
	if err := spec.Load(c, v.Strategy); err != nil {
		b.Fatal(err)
	}
	delta := spec.AInserts(b.N, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Insert("a", delta[i:i+1]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tw), "tw-ios/op")
}

// BenchmarkFig7TotalWorkload is Figure 7: TW per single-tuple insert vs L.
func BenchmarkFig7TotalWorkload(b *testing.B) {
	for _, v := range experiments.Variants() {
		for _, l := range benchLs {
			b.Run(fmt.Sprintf("%s/L=%d", v.Label, l), func(b *testing.B) {
				twBench(b, l, experiments.PaperN, v)
			})
		}
	}
}

// BenchmarkFig8TWvsFanout is Figure 8: TW per single-tuple insert vs the
// join fan-out N, at L=32.
func BenchmarkFig8TWvsFanout(b *testing.B) {
	for _, v := range experiments.Variants() {
		for _, n := range []int{1, 8, 64} {
			b.Run(fmt.Sprintf("%s/N=%d", v.Label, n), func(b *testing.B) {
				twBench(b, 32, n, v)
			})
		}
	}
}

// respBench measures one multi-tuple transaction under a pinned algorithm
// (Figures 9–11 cells).
func respBench(b *testing.B, l, a int, v experiments.Variant, algo node.Algo) {
	b.Helper()
	mx, total, err := experiments.MeasuredResponse(l, experiments.PaperN, a, v, algo)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.MeasuredResponse(l, experiments.PaperN, a, v, algo); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(mx), "maxnode-ios/op")
	b.ReportMetric(float64(total), "tw-ios/op")
}

// BenchmarkFig9IndexJoinTxn is Figure 9: one 400-tuple transaction under
// index joins.
func BenchmarkFig9IndexJoinTxn(b *testing.B) {
	for _, v := range experiments.Variants() {
		for _, l := range benchLs {
			b.Run(fmt.Sprintf("%s/L=%d", v.Label, l), func(b *testing.B) {
				respBench(b, l, 400, v, node.AlgoIndex)
			})
		}
	}
}

// BenchmarkFig10SortMergeTxn is Figure 10: one 6,500-tuple transaction
// under sort-merge joins (the regime where the naive method with a
// clustered index wins).
func BenchmarkFig10SortMergeTxn(b *testing.B) {
	for _, v := range experiments.Variants() {
		b.Run(fmt.Sprintf("%s/L=8", v.Label), func(b *testing.B) {
			respBench(b, 8, 6500, v, node.AlgoSortMerge)
		})
	}
}

// BenchmarkFig11ScaleUpdates is Figure 11: response vs transaction size
// with the automatic index/sort-merge crossover, at L=32.
func BenchmarkFig11ScaleUpdates(b *testing.B) {
	for _, v := range experiments.Variants() {
		for _, a := range []int{10, 400, 2000} {
			b.Run(fmt.Sprintf("%s/A=%d", v.Label, a), func(b *testing.B) {
				respBench(b, 32, a, v, node.AlgoAuto)
			})
		}
	}
}

// BenchmarkFig12StepDetail is Figure 12: the model's step-wise ceil(A/L)
// behaviour over small transactions; the reported metric is the number of
// distinct cost plateaus the AR curve shows for A in 1..300 at L=128
// (the paper's point is that the curve is a staircase).
func BenchmarkFig12StepDetail(b *testing.B) {
	var plateaus int
	for i := 0; i < b.N; i++ {
		m := cost.Model{L: 128, N: experiments.PaperN, BPages: experiments.PaperBPages, MemPages: experiments.PaperMemPages}
		plateaus = 0
		prev := -1.0
		for a := 1; a <= 300; a++ {
			y := m.RespAuxRel(a, cost.AlgoIndex)
			if y != prev {
				plateaus++
				prev = y
			}
		}
	}
	b.ReportMetric(float64(plateaus), "plateaus")
}

// BenchmarkFig13Predicted regenerates the Figure 13 predictions and
// reports the JV2 AR-over-naive speedup at L=8.
func BenchmarkFig13Predicted(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		naive := cost.PredictNaive(8, 128, []cost.ChainStep{{Fanout: 1}, {Fanout: 4}})
		ar := cost.PredictAuxRel(8, 128, []cost.ChainStep{{Fanout: 1, Clustered: true}, {Fanout: 4, Clustered: true}}, 0)
		speedup = naive / ar
	}
	b.ReportMetric(speedup, "jv2-speedup-L8")
}

// BenchmarkFig14Measured is Figure 14: the measured "compute the changes"
// step for a 128-tuple customer insert against JV1 and JV2, naive vs AR vs
// the global-index method Teradata could not run.
func BenchmarkFig14Measured(b *testing.B) {
	spec := workload.TPCR{Customers: 1500}.Defaulted()
	for _, l := range []int{2, 4, 8} {
		for _, method := range []catalog.Strategy{catalog.StrategyAuxRel, catalog.StrategyNaive, catalog.StrategyGlobalIndex} {
			for _, view := range []string{"jv1", "jv2"} {
				b.Run(fmt.Sprintf("L=%d/%s/%s", l, view, method), func(b *testing.B) {
					c, err := cluster.New(cluster.Config{Nodes: l})
					if err != nil {
						b.Fatal(err)
					}
					defer c.Close()
					if err := spec.Load(c); err != nil {
						b.Fatal(err)
					}
					if err := createPaperView(c, view, method); err != nil {
						b.Fatal(err)
					}
					delta, err := spec.NewCustomers(128)
					if err != nil {
						b.Fatal(err)
					}
					var mx, tw, msgs int64
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						n, m, err := c.ComputeViewDeltaOnly(view, "customer", delta, method)
						if err != nil {
							b.Fatal(err)
						}
						if n == 0 {
							b.Fatal("delta produced no join tuples")
						}
						mx, tw, msgs = m.MaxNodeIOs(), m.TotalIOs(), m.Net.Messages
					}
					b.ReportMetric(float64(mx), "maxnode-ios/op")
					b.ReportMetric(float64(tw), "tw-ios/op")
					b.ReportMetric(float64(msgs), "msgs/op")
				})
			}
		}
	}
}

func createPaperView(c *cluster.Cluster, name string, method catalog.Strategy) error {
	v := &catalog.View{
		Name:   name,
		Tables: []string{"customer", "orders"},
		Joins: []catalog.JoinPred{
			{Left: "customer", LeftCol: "custkey", Right: "orders", RightCol: "custkey"},
		},
		Out: []catalog.OutCol{
			{Table: "customer", Col: "custkey"}, {Table: "customer", Col: "acctbal"},
			{Table: "orders", Col: "orderkey"}, {Table: "orders", Col: "totalprice"},
		},
		PartitionTable: "customer", PartitionCol: "custkey",
		Strategy: method,
	}
	if name == "jv2" {
		v.Tables = append(v.Tables, "lineitem")
		v.Joins = append(v.Joins, catalog.JoinPred{Left: "orders", LeftCol: "orderkey", Right: "lineitem", RightCol: "orderkey"})
		v.Out = append(v.Out,
			catalog.OutCol{Table: "lineitem", Col: "discount"},
			catalog.OutCol{Table: "lineitem", Col: "extendedprice"})
	}
	return c.CreateView(v)
}

// BenchmarkAggregateView compares maintaining an aggregate join view
// (count/sum per group — the authors' companion work) against a plain
// join view over the same join: the aggregate view folds each delta into
// one group row instead of writing N join rows.
func BenchmarkAggregateView(b *testing.B) {
	run := func(b *testing.B, aggregate bool) {
		c, err := cluster.New(cluster.Config{Nodes: 4})
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		spec := workload.TPCR{Customers: 500}.Defaulted()
		if err := spec.Load(c); err != nil {
			b.Fatal(err)
		}
		v := &catalog.View{
			Name:   "v",
			Tables: []string{"customer", "orders"},
			Joins: []catalog.JoinPred{
				{Left: "customer", LeftCol: "custkey", Right: "orders", RightCol: "custkey"},
			},
			Out:            []catalog.OutCol{{Table: "customer", Col: "custkey"}},
			PartitionTable: "customer", PartitionCol: "custkey",
			Strategy: catalog.StrategyAuxRel,
		}
		if aggregate {
			v.Aggs = []catalog.AggSpec{
				{Func: "count"},
				{Func: "sum", Table: "orders", Col: "totalprice"},
			}
		} else {
			v.Out = append(v.Out,
				catalog.OutCol{Table: "orders", Col: "orderkey"},
				catalog.OutCol{Table: "orders", Col: "totalprice"})
		}
		if err := c.CreateView(v); err != nil {
			b.Fatal(err)
		}
		c.ResetMetrics()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ok := int64(1_000_000 + i)
			if err := c.Insert("orders", []types.Tuple{workload.Order(ok, ok%int64(spec.Customers))}); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(c.Metrics().TotalIOs())/float64(b.N), "tw-ios/op")
		rep, err := c.StorageReport()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.RowsOf("v")), "view-rows")
	}
	b.Run("plain-join-view", func(b *testing.B) { run(b, false) })
	b.Run("aggregate-view", func(b *testing.B) { run(b, true) })
}

// BenchmarkBufferingEffect reruns the §3.3 buffering observation: the
// logical (model) I/O of the naive vs AR delta join, next to the physical
// I/O a buffer-pool-equipped node actually pays.
func BenchmarkBufferingEffect(b *testing.B) {
	var logicalNaive, physicalNaive int64
	for i := 0; i < b.N; i++ {
		g, err := experiments.BufferingEffect(8, 2000, 200)
		if err != nil {
			b.Fatal(err)
		}
		fmt.Sscanf(g.Rows[0][1], "%d", &logicalNaive)
		fmt.Sscanf(g.Rows[0][2], "%d", &physicalNaive)
	}
	b.ReportMetric(float64(logicalNaive), "naive-logical-ios")
	b.ReportMetric(float64(physicalNaive), "naive-physical-ios")
}

// BenchmarkSkewSensitivity reruns the skew extension, reporting the AR
// method's hotspot penalty under a Zipf(1.5) insert stream.
func BenchmarkSkewSensitivity(b *testing.B) {
	var uniform, skewed int64
	for i := 0; i < b.N; i++ {
		g, err := experiments.SkewSensitivity(16, 512, 1.5)
		if err != nil {
			b.Fatal(err)
		}
		fmt.Sscanf(g.Rows[0][1], "%d", &uniform)
		fmt.Sscanf(g.Rows[0][2], "%d", &skewed)
	}
	b.ReportMetric(float64(skewed)/float64(uniform), "ar-skew-penalty")
}

// BenchmarkViewVsJoinQuery quantifies why warehouses materialize: reading
// the maintained view vs recomputing the join with a distributed query
// (shuffles + co-partitioned local joins), same result set.
func BenchmarkViewVsJoinQuery(b *testing.B) {
	setup := func(b *testing.B) *cluster.Cluster {
		b.Helper()
		c, err := cluster.New(cluster.Config{Nodes: 8})
		if err != nil {
			b.Fatal(err)
		}
		spec := workload.TPCR{Customers: 1500}.Defaulted()
		if err := spec.Load(c); err != nil {
			b.Fatal(err)
		}
		if err := createPaperView(c, "jv1", catalog.StrategyAuxRel); err != nil {
			b.Fatal(err)
		}
		c.ResetMetrics()
		return c
	}
	querySpec := cluster.QuerySpec{
		Tables: []string{"customer", "orders"},
		Joins: []catalog.JoinPred{
			{Left: "customer", LeftCol: "custkey", Right: "orders", RightCol: "custkey"},
		},
	}
	b.Run("scan-view", func(b *testing.B) {
		c := setup(b)
		defer c.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.ScanFragmentMetered("jv1"); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(c.Metrics().TotalIOs())/float64(b.N), "tw-ios/op")
	})
	b.Run("join-query", func(b *testing.B) {
		c := setup(b)
		defer c.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := c.QueryJoin(querySpec); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(c.Metrics().TotalIOs())/float64(b.N), "tw-ios/op")
	})
}

// --- Ablation benchmarks (DESIGN.md) ---

// BenchmarkTransports compares the deterministic direct transport against
// the goroutine-per-node channel transport on the same maintenance stream:
// identical logical I/O, different wall-clock.
func BenchmarkTransports(b *testing.B) {
	for _, useChan := range []bool{false, true} {
		name := "direct"
		if useChan {
			name = "channels"
		}
		b.Run(name, func(b *testing.B) {
			c, err := cluster.New(cluster.Config{Nodes: 8, UseChannels: useChan})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			spec := workload.TwoRel{JoinValues: 640, Fanout: 10}
			if err := spec.Load(c, catalog.StrategyAuxRel); err != nil {
				b.Fatal(err)
			}
			delta := spec.AInserts(b.N, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Insert("a", delta[i:i+1]); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(c.Metrics().TotalIOs())/float64(b.N), "tw-ios/op")
		})
	}
}

// BenchmarkARStorageMinimization compares a full-copy auxiliary relation
// against the §2.1.2 minimized π(σ(R)) form: identical maintenance I/O,
// different storage footprint (reported as stored values per base row).
func BenchmarkARStorageMinimization(b *testing.B) {
	run := func(b *testing.B, cols []string) {
		c, err := cluster.New(cluster.Config{Nodes: 4})
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		if err := c.CreateTable(workload.OrdersTable()); err != nil {
			b.Fatal(err)
		}
		var orders []types.Tuple
		for i := int64(0); i < 2000; i++ {
			orders = append(orders, workload.Order(i, i%200))
		}
		if err := c.Insert("orders", orders); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ar := &catalog.AuxRel{
				Name:         fmt.Sprintf("ar_%d", i),
				Table:        "orders",
				PartitionCol: "custkey",
				Cols:         cols,
			}
			if err := c.CreateAuxRel(ar); err != nil {
				b.Fatal(err)
			}
		}
		width := len(cols)
		if width == 0 {
			width = workload.OrdersTable().Schema.Len()
		}
		b.ReportMetric(float64(width), "cols/row")
	}
	b.Run("full-copy", func(b *testing.B) { run(b, nil) })
	b.Run("minimized", func(b *testing.B) { run(b, []string{"custkey", "orderkey"}) })
}

// BenchmarkMultiwayPlanChoice compares the statistics-driven maintenance
// join order against the worst order for a 3-way view where one join has
// fan-out 1 ("zlean") and the other fan-out 16 ("awide"); table names are
// chosen so the statistics-free tie-break picks the bad order.
func BenchmarkMultiwayPlanChoice(b *testing.B) {
	setup := func(b *testing.B) *cluster.Cluster {
		b.Helper()
		c, err := cluster.New(cluster.Config{Nodes: 4})
		if err != nil {
			b.Fatal(err)
		}
		mk := func(name string, cols ...string) *catalog.Table {
			var cc []types.Column
			for _, col := range cols {
				cc = append(cc, types.Column{Name: col, Kind: types.KindInt})
			}
			return &catalog.Table{Name: name, Schema: types.NewSchema(cc...), PartitionCol: cols[0]}
		}
		for _, t := range []*catalog.Table{
			mk("mid", "pk", "lo", "hi"),
			mk("zlean", "pk", "lo"),
			mk("awide", "pk", "hi"),
		} {
			if err := c.CreateTable(t); err != nil {
				b.Fatal(err)
			}
		}
		var narrow, wide []types.Tuple
		for i := int64(0); i < 400; i++ {
			narrow = append(narrow, types.Tuple{types.Int(i), types.Int(i % 400)}) // fan-out 1
		}
		for i := int64(0); i < 1600; i++ {
			wide = append(wide, types.Tuple{types.Int(i), types.Int(i % 100)}) // fan-out 16
		}
		if err := c.Insert("zlean", narrow); err != nil {
			b.Fatal(err)
		}
		if err := c.Insert("awide", wide); err != nil {
			b.Fatal(err)
		}
		v := &catalog.View{
			Name:   "w",
			Tables: []string{"mid", "zlean", "awide"},
			Joins: []catalog.JoinPred{
				{Left: "mid", LeftCol: "lo", Right: "zlean", RightCol: "lo"},
				{Left: "mid", LeftCol: "hi", Right: "awide", RightCol: "hi"},
			},
			PartitionTable: "mid", PartitionCol: "pk",
			Strategy: catalog.StrategyAuxRel,
		}
		if err := c.CreateView(v); err != nil {
			b.Fatal(err)
		}
		c.ResetMetrics()
		return c
	}
	delta := func(n int) []types.Tuple {
		out := make([]types.Tuple, n)
		for i := range out {
			out[i] = types.Tuple{types.Int(int64(10000 + i)), types.Int(int64(i % 400)), types.Int(int64(i % 100))}
		}
		return out
	}
	b.Run("stats-optimized", func(b *testing.B) {
		c := setup(b)
		defer c.Close()
		for _, t := range []string{"zlean", "awide"} {
			if err := c.RefreshStats(t); err != nil {
				b.Fatal(err)
			}
		}
		v, _ := c.Catalog().View("w")
		p, err := plan.Build(c.Catalog(), c.Stats(), v, "mid", catalog.StrategyAuxRel)
		if err != nil {
			b.Fatal(err)
		}
		if p.Steps[0].Table != "zlean" {
			b.Fatalf("optimizer picked %s first", p.Steps[0].Table)
		}
		benchInsert(b, c, delta)
	})
	b.Run("no-stats", func(b *testing.B) {
		c := setup(b)
		defer c.Close()
		benchInsert(b, c, delta)
	})
}

func benchInsert(b *testing.B, c *cluster.Cluster, delta func(int) []types.Tuple) {
	b.Helper()
	before := c.Metrics()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Insert("mid", delta(8)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	d := c.Metrics().Sub(before)
	b.ReportMetric(float64(d.TotalIOs())/float64(b.N), "tw-ios/op")
}
