// Multiway: the paper's §2.2 n-way algorithm on a three-relation view.
// A complete join A ⋈ B ⋈ C needs one auxiliary relation per (table, join
// attribute) pair — the example prints which structures the planner
// derives, how relational statistics pick among the alternative
// maintenance join orders (the §2.2 optimization problem), and that the
// view stays consistent when any of the three relations is updated.
//
// Run with: go run ./examples/multiway
package main

import (
	"fmt"
	"log"

	"joinview"
	"joinview/internal/plan"
)

func main() {
	db, err := joinview.Open(joinview.Options{Nodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// A chain A ⋈ B ⋈ C where no relation is partitioned on a join
	// attribute, so B needs two auxiliary relations (one per join
	// attribute) and A and C one each — the paper's AR_A, AR_B1, AR_B2,
	// AR_C example.
	if _, err := db.ExecScript(`
		create table a (pk bigint, ab bigint, payload double) partition on pk;
		create table b (pk bigint, ab bigint, bc bigint) partition on pk;
		create table c (pk bigint, bc bigint, note varchar) partition on pk;

		insert into b values (1, 10, 100), (2, 10, 200), (3, 20, 100);
		insert into c values (1, 100, 'x'), (2, 100, 'y'), (3, 200, 'z');
		insert into a values (1, 10, 1.5), (2, 20, 2.5);

		create view abc as
			select a.pk, a.payload, b.pk, c.note
			from a, b, c
			where a.ab = b.ab and b.bc = c.bc
			partition on a.pk
			using auxrel;
	`); err != nil {
		log.Fatal(err)
	}

	fmt.Println("auxiliary relations the planner derived for view abc:")
	cat := db.Cluster().Catalog()
	for _, tbl := range []string{"a", "b", "c"} {
		for _, ar := range cat.AuxRelsFor(tbl) {
			fmt.Printf("  %-8s for %s, partitioned+clustered on %s, columns %v\n",
				ar.Name, ar.Table, ar.PartitionCol, ar.Cols)
		}
	}

	// Statistics steer the maintenance join order when b is updated:
	// the delta can join a first or c first.
	if err := db.RefreshStats("a"); err != nil {
		log.Fatal(err)
	}
	if err := db.RefreshStats("c"); err != nil {
		log.Fatal(err)
	}
	v, err := cat.View("abc")
	if err != nil {
		log.Fatal(err)
	}
	p, err := plan.Build(cat, db.Cluster().Stats(), v, "b", joinview.StrategyAuxRel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmaintenance plan for an update of b (order chosen by fan-out statistics):")
	for i, s := range p.Steps {
		fmt.Printf("  step %d: join %s via %s (probe %s on %s, est. fan-out %.1f)\n",
			i+1, s.Table, s.Via, s.Frag, s.FragCol, s.Fanout)
	}

	// Update every relation; the view must track all of it.
	if _, err := db.Exec(`insert into b values (4, 20, 200)`); err != nil {
		log.Fatal(err)
	}
	if _, err := db.Exec(`delete from c where note = 'y'`); err != nil {
		log.Fatal(err)
	}
	if _, err := db.Exec(`update a set ab = 10 where pk = 2`); err != nil {
		log.Fatal(err)
	}
	if err := db.CheckViewConsistency("abc"); err != nil {
		log.Fatal(err)
	}
	r, err := db.Exec(`select * from abc`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter updates to a, b and c the view is consistent; %d rows:\n", len(r.Rows))
	for _, row := range r.Rows {
		fmt.Println("  ", row)
	}
}
