// Advisor: the cost-based method chooser the paper's conclusion proposes
// ("our analytical model could form the basis for a cost model that would
// enable a system to choose the best approach automatically").
//
// A view created USING AUTO materializes both auxiliary relations and
// global indexes; each update then picks the cheapest method by the
// paper's total-workload model. This example sweeps update sizes and
// prints the chosen method and the model's cost estimates, showing the
// crossover from the auxiliary-relation method (small updates) toward the
// naive method (bulk loads comparable to the base relation size).
//
// Run with: go run ./examples/advisor
package main

import (
	"fmt"
	"log"

	"joinview"
	"joinview/internal/cost"
)

func main() {
	db, err := joinview.Open(joinview.Options{Nodes: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	if _, err := db.ExecScript(`
		create table fact (id bigint, dimkey bigint, amount double) partition on id;
		create table dim (id bigint, dimkey bigint, label varchar) partition on id;
		create index ix_dim on dim (dimkey);
	`); err != nil {
		log.Fatal(err)
	}
	var dims []joinview.Tuple
	for i := int64(0); i < 2000; i++ {
		dims = append(dims, joinview.Tuple{
			joinview.Int(i), joinview.Int(i % 200), joinview.String("d"),
		})
	}
	if err := db.Insert("dim", dims); err != nil {
		log.Fatal(err)
	}
	if err := db.RefreshStats("dim"); err != nil {
		log.Fatal(err)
	}
	if _, err := db.Exec(`
		create view fd as
		select fact.id, fact.amount, dim.label
		from fact, dim
		where fact.dimkey = dim.dimkey
		partition on fact.id
		using auto`); err != nil {
		log.Fatal(err)
	}

	fmt.Println("auto-strategy resolution per update size (8 nodes, fan-out 10):")
	fmt.Printf("%10s  %-12s\n", "delta", "chosen")
	for _, size := range []int{1, 16, 128, 1024, 8192} {
		strat, err := db.ResolveStrategy("fd", "fact", size)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10d  %-12s\n", size, strat)
	}

	// The same decision from the closed-form two-relation model, where the
	// sort-merge regime is visible: for updates comparable to |B| in
	// pages, the naive method with a clustered index wins (Fig 10/11).
	fmt.Println("\nresponse-time advisor from the closed-form model (|B| = 6,400 pages):")
	m := cost.Model{L: 8, N: 10, BPages: 6400, MemPages: 10}
	fmt.Printf("%10s  %-12s  %12s %12s %12s\n", "delta", "advice", "naive I/Os", "AR I/Os", "GI I/Os")
	for _, size := range []int{1, 128, 1024, 6500, 20000} {
		advice := m.Advise(size, true, true)
		fmt.Printf("%10d  %-12s  %12.0f %12.0f %12.0f\n",
			size, advice,
			m.RespNaive(size, true, cost.AlgoBest),
			m.RespAuxRel(size, cost.AlgoBest),
			m.RespGlobalIndex(size, true, cost.AlgoBest))
	}

	// Prove the auto view actually maintains correctly.
	var facts []joinview.Tuple
	for i := int64(0); i < 64; i++ {
		facts = append(facts, joinview.Tuple{
			joinview.Int(10000 + i), joinview.Int(i % 200), joinview.Float(1.5),
		})
	}
	if err := db.Insert("fact", facts); err != nil {
		log.Fatal(err)
	}
	if err := db.CheckViewConsistency("fd"); err != nil {
		log.Fatal(err)
	}
	rows, _ := db.ViewRows("fd")
	fmt.Printf("\ninserted 64 fact rows under auto maintenance; view consistent with %d rows\n", len(rows))
}
