// Quickstart: create a 4-node parallel database, define the paper's JV1
// join view under the auxiliary-relation method, stream a few updates, and
// watch the view stay consistent while the maintenance cost stays local.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"joinview"
)

func main() {
	db, err := joinview.Open(joinview.Options{Nodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// The paper's §3.3 schema, in its SQL. orders is partitioned on
	// orderkey, so joining it on custkey needs an auxiliary structure —
	// USING AUXREL creates (and backfills) it automatically.
	if _, err := db.ExecScript(`
		create table customer (custkey bigint, acctbal double) partition on custkey;
		create table orders (orderkey bigint, custkey bigint, totalprice double) partition on orderkey;
		create index ix_orders_custkey on orders (custkey);

		insert into customer values (1, 711.56), (2, 121.65), (3, 7498.12);
		insert into orders values
			(100, 1, 173665.47), (101, 1, 46929.18),
			(102, 2, 193846.25), (103, 3, 32151.78);

		create view jv1 as
			select c.custkey, c.acctbal, o.orderkey, o.totalprice
			from orders o, customer c
			where c.custkey = o.custkey
			partition on c.custkey
			using auxrel;
	`); err != nil {
		log.Fatal(err)
	}

	show := func(label string) {
		r, err := db.Exec(`select * from jv1`)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: jv1 has %d rows\n", label, len(r.Rows))
		for _, row := range r.Rows {
			fmt.Println("   ", row)
		}
	}
	show("after initial materialization")

	// Stream updates; the view is maintained incrementally inside each
	// statement's transaction.
	db.ResetMetrics()
	if _, err := db.Exec(`insert into customer values (4, 2866.83)`); err != nil {
		log.Fatal(err)
	}
	if _, err := db.Exec(`insert into orders values (104, 4, 83405.78), (105, 1, 270755.29)`); err != nil {
		log.Fatal(err)
	}
	if _, err := db.Exec(`delete from customer where custkey = 2`); err != nil {
		log.Fatal(err)
	}
	if _, err := db.Exec(`update orders set totalprice = 0.0 where orderkey = 103`); err != nil {
		log.Fatal(err)
	}
	show("after inserts, a delete and an update")

	// Verify against a from-scratch recomputation of the join.
	if err := db.CheckViewConsistency("jv1"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("consistency check: view equals the recomputed join")

	// The paper's point: maintenance work stays on a few nodes.
	m := db.Metrics()
	fmt.Printf("maintenance cost of the stream: %d I/Os total, %d on the busiest node, %d messages\n",
		m.TotalIOs(), m.MaxNodeIOs(), m.Net.Messages)
	for i, nc := range m.Node {
		fmt.Printf("  node %d: %d I/Os\n", i, nc.IOs())
	}
}
