// Warehouse: the paper's motivating scenario (§1) — an operational data
// warehouse absorbing a stream of small, single-node updates. Without a
// join view the stream scales; the moment a view is added with the naive
// method, every update becomes an all-node operation and total workload
// explodes. The auxiliary-relation and global-index methods restore
// locality.
//
// This example loads the Table 1 schema (scaled), then pushes the same
// update stream through each maintenance method and reports total
// workload, busiest-node I/O and wall-clock. Nodes run as goroutines
// (channel transport), so wall-clock reflects real parallelism.
//
// Run with: go run ./examples/warehouse
package main

import (
	"fmt"
	"log"
	"time"

	"joinview"
	"joinview/internal/workload"
)

const (
	nodes     = 8
	streamLen = 200
)

func main() {
	fmt.Printf("operational warehouse, %d nodes, %d-update stream\n\n", nodes, streamLen)

	base := runStream("no view", joinview.StrategyNaive, false)
	fmt.Println()
	for _, strat := range []joinview.Strategy{
		joinview.StrategyNaive,
		joinview.StrategyAuxRel,
		joinview.StrategyGlobalIndex,
	} {
		r := runStream("jv1 via "+strat.String(), strat, true)
		fmt.Printf("  -> view maintenance overhead vs no-view baseline: %d I/Os\n\n", r.totalIOs-base.totalIOs)
	}
}

type runResult struct {
	totalIOs int64
	maxNode  int64
	elapsed  time.Duration
}

func runStream(label string, strat joinview.Strategy, withView bool) runResult {
	db, err := joinview.Open(joinview.Options{Nodes: nodes, UseChannels: true})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	spec := workload.TPCR{Customers: 1500}.Defaulted()
	if err := spec.Load(db.Cluster()); err != nil {
		log.Fatal(err)
	}
	if withView {
		if _, err := db.Exec(fmt.Sprintf(`
			create view jv1 as
			select c.custkey, c.acctbal, o.orderkey, o.totalprice
			from orders o, customer c
			where c.custkey = o.custkey
			partition on c.custkey using %s`, strat)); err != nil {
			log.Fatal(err)
		}
	}
	newCust, err := spec.NewCustomers(streamLen)
	if err != nil {
		log.Fatal(err)
	}

	db.ResetMetrics()
	start := time.Now()
	for _, tup := range newCust {
		// Each transaction inserts one customer — a single-node base
		// update, exactly the stream the introduction describes.
		if err := db.Insert("customer", []joinview.Tuple{tup}); err != nil {
			log.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	m := db.Metrics()

	if withView {
		if err := db.CheckViewConsistency("jv1"); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("%-28s total workload %7d I/Os   busiest node %6d I/Os   %8.2f updates/ms\n",
		label, m.TotalIOs(), m.MaxNodeIOs(), float64(streamLen)/float64(elapsed.Milliseconds()+1))
	return runResult{totalIOs: m.TotalIOs(), maxNode: m.MaxNodeIOs(), elapsed: elapsed}
}
