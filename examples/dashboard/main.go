// Dashboard: an aggregate join view (the companion work of the paper's
// authors) keeping per-customer order counts and revenue current under an
// update stream — the materialized "dashboard" an operational warehouse
// serves. Compared against a plain join view, the aggregate view stores
// one row per group instead of one per join tuple, and an update folds a
// single group delta instead of writing N rows.
//
// Run with: go run ./examples/dashboard
package main

import (
	"fmt"
	"log"

	"joinview"
)

func main() {
	db, err := joinview.Open(joinview.Options{Nodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	if _, err := db.ExecScript(`
		create table customer (custkey bigint, acctbal double) partition on custkey;
		create table orders (orderkey bigint, custkey bigint, totalprice double) partition on orderkey;
		create index ix_oc on orders (custkey);
		insert into customer values (1, 0.0), (2, 0.0), (3, 0.0);
		insert into orders values
			(100, 1, 120.0), (101, 1, 80.0), (102, 2, 45.5), (103, 3, 300.0);

		-- The dashboard: per-customer order count and revenue, maintained
		-- incrementally under the auxiliary-relation method.
		create view revenue as
			select c.custkey, count(*), sum(o.totalprice)
			from customer c, orders o
			where c.custkey = o.custkey
			group by c.custkey
			partition on c.custkey
			using auxrel;

		-- The plain join view over the same join, for comparison.
		create view detail as
			select c.custkey, o.orderkey, o.totalprice
			from customer c, orders o
			where c.custkey = o.custkey
			partition on c.custkey
			using auxrel;
	`); err != nil {
		log.Fatal(err)
	}

	show := func(label string) {
		r, err := db.Exec(`select * from revenue`)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(label + ":")
		fmt.Println("  custkey | orders | revenue")
		for _, row := range r.Rows {
			fmt.Printf("  %7d | %6d | %7.2f\n", row[0].I, row[1].I, row[2].F)
		}
	}
	show("initial dashboard")

	// The update stream: new orders fold into groups, a cancelled order
	// decrements, a customer churn removes a group.
	if _, err := db.ExecScript(`
		insert into orders values (104, 2, 60.0), (105, 2, 14.5);
		delete from orders where orderkey = 101;
		delete from customer where custkey = 3;
	`); err != nil {
		log.Fatal(err)
	}
	show("after new orders, a cancellation and a churned customer")
	if err := db.CheckViewConsistency("revenue"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("consistency check: dashboard equals the recomputed aggregate")

	// The space and write economics of grouping.
	rep, err := db.StorageReport()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstorage: detail view %d rows vs aggregate view %d rows\n",
		rep.RowsOf("detail"), rep.RowsOf("revenue"))

	db.ResetMetrics()
	if _, err := db.Exec(`insert into orders values (106, 1, 9.99)`); err != nil {
		log.Fatal(err)
	}
	m := db.Metrics()
	fmt.Printf("one order insert maintaining both views: %d I/Os total, %d messages\n",
		m.TotalIOs(), m.Net.Messages)
}
