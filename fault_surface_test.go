package joinview

import (
	"errors"
	"testing"
)

// TestFacadeFaultInjection drives the public fault surface end to end:
// open with an injector, survive a transient storm, crash a node, observe
// degraded semantics (ErrDegraded / ErrPartial), recover, and verify the
// view is still exactly its definition.
func TestFacadeFaultInjection(t *testing.T) {
	inj := NewFaultInjector(FaultConfig{
		Seed:        42,
		DropRequest: 0.05,
		DropReply:   0.05,
		HandlerErr:  0.05,
		Duplicate:   0.05,
	})
	db := openTestDB(t, Options{Nodes: 4, Faults: inj, RetryAttempts: 4})
	if _, err := db.ExecScript(`
		create table customer (custkey bigint, acctbal double) partition on custkey;
		create table orders (orderkey bigint, custkey bigint, totalprice double) partition on orderkey;
		create index ix_oc on orders (custkey);
		insert into customer values (1, 10.0), (2, 20.0), (3, 30.0), (4, 40.0);
		insert into orders values (100, 1, 5.5), (101, 2, 6.5), (102, 3, 7.5), (103, 4, 8.5);
		create view jv1 as
			select c.custkey, c.acctbal, o.orderkey, o.totalprice
			from orders o, customer c
			where c.custkey = o.custkey
			partition on c.custkey using auxrel;
	`); err != nil {
		t.Fatal(err)
	}

	// Transient storm: retries and dedup must hide it completely.
	inj.Arm()
	for i := int64(0); i < 20; i++ {
		if err := db.Insert("orders", []Tuple{{Int(200 + i), Int(1 + i%4), Float(1.0)}}); err != nil {
			t.Fatalf("insert %d under transient faults: %v", i, err)
		}
	}
	inj.Disarm()
	if inj.Stats().Total() == 0 {
		t.Fatal("storm injected nothing")
	}
	if err := db.CheckViewConsistency("jv1"); err != nil {
		t.Fatal(err)
	}

	// Crash a node: maintenance degrades, reads go partial.
	inj.Crash(1)
	if err := db.MarkNodeDown(1); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("orders", []Tuple{{Int(900), Int(1), Float(1.0)}}); !errors.Is(err, ErrDegraded) {
		t.Fatalf("insert while degraded: %v, want ErrDegraded", err)
	}
	if _, err := db.TableRows("orders"); !errors.Is(err, ErrPartial) {
		t.Fatalf("TableRows while degraded: %v, want ErrPartial", err)
	}
	if d := db.Degraded(); len(d) != 1 || d[0] != 1 {
		t.Fatalf("Degraded() = %v, want [1]", d)
	}

	// Restart and recover: full service, consistent structures.
	inj.Restart(1)
	if err := db.Recover(1); err != nil {
		t.Fatal(err)
	}
	if d := db.Degraded(); len(d) != 0 {
		t.Fatalf("still degraded after Recover: %v", d)
	}
	if err := db.Insert("orders", []Tuple{{Int(901), Int(2), Float(2.0)}}); err != nil {
		t.Fatal(err)
	}
	if err := db.CheckViewConsistency("jv1"); err != nil {
		t.Fatal(err)
	}
	if err := db.CheckAllStructures(); err != nil {
		t.Fatal(err)
	}
	if got := db.Metrics().Retries; got < 1 {
		t.Fatalf("Metrics.Retries = %d, want >= 1", got)
	}
}
