// Package joinview is a parallel-RDBMS simulator with materialized join
// views, reproducing "A Comparison of Three Methods for Join View
// Maintenance in Parallel RDBMS" (Luo, Naughton, Ellmann, Watzke —
// ICDE 2003).
//
// A DB is an L-node shared-nothing database: base relations are
// hash-partitioned across the nodes, and join views over them are kept
// incrementally consistent under inserts, deletes and updates by one of
// three maintenance methods:
//
//   - StrategyNaive — broadcast each delta to every node and probe there;
//   - StrategyAuxRel — keep auxiliary relations re-partitioned on the join
//     attributes, so a delta touches one node;
//   - StrategyGlobalIndex — keep global indexes mapping join values to
//     global row ids, touching 1 + K nodes;
//   - StrategyAuto — pick per update with the paper's cost model.
//
// Every operation is metered in the paper's logical I/O units (SEARCH = 1,
// FETCH = 1, INSERT = 2) plus interconnect messages, so the experiments in
// the paper's evaluation can be regenerated; see EXPERIMENTS.md.
//
// The surface is both programmatic (CreateTable/CreateView/Insert/...) and
// SQL (Exec/ExecScript with the paper's CREATE VIEW ... statements).
package joinview

import (
	"time"

	"joinview/internal/catalog"
	"joinview/internal/cluster"
	"joinview/internal/expr"
	"joinview/internal/fault"
	"joinview/internal/mplan"
	"joinview/internal/node"
	"joinview/internal/sql"
	"joinview/internal/types"
)

// Re-exported schema and metadata types. These aliases are the public
// names; the implementation lives under internal/.
type (
	// Value is a SQL value (NULL, BIGINT, DOUBLE or VARCHAR).
	Value = types.Value
	// Tuple is one row.
	Tuple = types.Tuple
	// Schema is an ordered list of named, typed columns.
	Schema = types.Schema
	// Column is one schema attribute.
	Column = types.Column
	// Kind enumerates value types.
	Kind = types.Kind

	// Table describes a base relation: schema, partitioning attribute,
	// optional local cluster column and secondary indexes.
	Table = catalog.Table
	// Index is a non-clustered local secondary index.
	Index = catalog.Index
	// View describes a materialized join view.
	View = catalog.View
	// JoinPred is one equijoin predicate of a view definition.
	JoinPred = catalog.JoinPred
	// OutCol names one output column of a view.
	OutCol = catalog.OutCol
	// AuxRel describes an auxiliary relation (π(σ(R)) re-partitioned on a
	// join attribute).
	AuxRel = catalog.AuxRel
	// GlobalIndex describes a global index on a non-partitioning
	// attribute.
	GlobalIndex = catalog.GlobalIndex
	// Strategy selects a view-maintenance method.
	Strategy = catalog.Strategy

	// Advice is the materialization advisor's report (see
	// DB.AdviseMaterialization).
	Advice = mplan.Advice
	// AdviceItem is one recommended auxiliary structure.
	AdviceItem = mplan.AdviceItem

	// Metrics is a snapshot of per-node I/O counters and message counts.
	Metrics = cluster.Metrics
	// Result is the outcome of one SQL statement.
	Result = sql.Result

	// Expr is a scalar predicate for DELETE/UPDATE and auxiliary-relation
	// selections.
	Expr = expr.Expr
)

// Maintenance strategies.
const (
	StrategyNaive       = catalog.StrategyNaive
	StrategyAuxRel      = catalog.StrategyAuxRel
	StrategyGlobalIndex = catalog.StrategyGlobalIndex
	StrategyAuto        = catalog.StrategyAuto
)

// Value kinds.
const (
	KindNull   = types.KindNull
	KindInt    = types.KindInt
	KindFloat  = types.KindFloat
	KindString = types.KindString
)

// Int builds a BIGINT value.
func Int(v int64) Value { return types.Int(v) }

// Float builds a DOUBLE value.
func Float(v float64) Value { return types.Float(v) }

// String builds a VARCHAR value.
func String(v string) Value { return types.String(v) }

// Null builds the NULL value.
func Null() Value { return types.Null() }

// NewSchema builds a schema from columns.
func NewSchema(cols ...Column) *Schema { return types.NewSchema(cols...) }

// Col references a column in a predicate.
func Col(name string) Expr { return expr.Col{Name: name} }

// Lit embeds a literal in a predicate.
func Lit(v Value) Expr { return expr.Const{V: v} }

// Eq builds the predicate `col = value`.
func Eq(col string, v Value) Expr {
	return expr.Cmp{Op: expr.EQ, L: expr.Col{Name: col}, R: expr.Const{V: v}}
}

// Lt builds the predicate `col < value`.
func Lt(col string, v Value) Expr {
	return expr.Cmp{Op: expr.LT, L: expr.Col{Name: col}, R: expr.Const{V: v}}
}

// Gt builds the predicate `col > value`.
func Gt(col string, v Value) Expr {
	return expr.Cmp{Op: expr.GT, L: expr.Col{Name: col}, R: expr.Const{V: v}}
}

// And conjoins predicates.
func And(terms ...Expr) Expr { return expr.And{Terms: terms} }

// True is the always-true predicate (DELETE without WHERE).
var True Expr = expr.And{}

// Options configures a database.
type Options struct {
	// Nodes is the number of data-server nodes L (required, >= 1).
	Nodes int
	// PageRows is tuples per page for the I/O cost accounting
	// (default 10).
	PageRows int
	// MemPages is the per-node sort memory M in pages (default 10, the
	// paper's value).
	MemPages int
	// UseChannels runs each node as its own goroutine with channel
	// message passing; the default is the deterministic in-process
	// transport.
	UseChannels bool
	// UseTCP runs each node behind a real loopback TCP listener with
	// gob-encoded messages (mutually exclusive with UseChannels;
	// incompatible with NetLatency, CallTimeout and Faults — errors are
	// flattened to strings on the wire).
	UseTCP bool
	// LockedReads disables MVCC snapshot reads, forcing queries and view
	// reads back onto shared lock claims even on a concurrent transport.
	// Snapshot reads are on by default whenever statements run
	// concurrently (UseChannels or UseTCP, without SerialDML, durability
	// or fault injection).
	LockedReads bool
	// ForceIndexJoin / ForceSortMerge pin the maintenance join algorithm;
	// by default each node applies the paper's §3.2 cost crossover.
	ForceIndexJoin bool
	ForceSortMerge bool
	// BufferPages attaches a per-node LRU buffer pool of that many pages
	// (0 disables caching simulation). With a pool, Metrics additionally
	// reports physical I/O — the §3.3 buffering effect.
	BufferPages int
	// NetLatency delays every inter-node message by this duration
	// (requires UseChannels): makes the SEND cost the analytical model
	// neglects visible in wall-clock.
	NetLatency time.Duration
	// CallTimeout bounds each coordinator-to-node call (requires
	// UseChannels); a stuck node surfaces as a retryable timeout instead
	// of hanging the statement.
	CallTimeout time.Duration
	// RetryAttempts is the number of delivery attempts per call before
	// the coordinator gives up and rolls the statement back (default 3).
	RetryAttempts int
	// RetryBackoff is the base sleep between attempts, doubled each retry
	// (default 0: retry immediately, which keeps simulations fast).
	RetryBackoff time.Duration
	// RetryBackoffMax caps the exponential backoff delay (default 1s).
	RetryBackoffMax time.Duration
	// RetrySeed seeds the deterministic backoff jitter (default 1).
	RetrySeed int64
	// Faults wires a fault injector into the transport for chaos testing:
	// build one with NewFaultInjector, Arm it when the storm should start,
	// and use Crash/Restart plus DB.Recover to exercise node failures.
	Faults *FaultInjector
	// Durability gives every node a write-ahead log and checkpoint area and
	// runs each DML statement under presumed-abort two-phase commit. A
	// crashed node (CrashNode) loses its volatile state and recovers from
	// its checkpoint plus log tail (RestartNode / Recover) instead of a
	// full derived-fragment rebuild.
	Durability bool
	// CheckpointEvery takes an automatic per-node checkpoint after that
	// many redo records (0: only explicit Checkpoint calls).
	CheckpointEvery int
	// DisablePlanCache makes every DML statement compile its maintenance
	// pipeline from scratch instead of reusing the catalog-versioned plan
	// cache. Identical results, only slower — a debugging aid for
	// isolating caching effects (Metrics.Pipeline reports only misses).
	DisablePlanCache bool
	// DisablePlanSharing turns off the shared maintenance DAG: each view's
	// delta-join chain executes independently even when several views over
	// the same table share common prefixes. Identical view contents, more
	// I/O — the baseline for sharing measurements (jvbench -exp manyviews).
	DisablePlanSharing bool
	// BreakerThreshold enables the per-node circuit breaker: after that
	// many consecutive exhausted delivery attempts to one node, further
	// calls to it fail fast with ErrSuspect instead of burning the retry
	// budget. Recover closes the breaker. Zero disables it.
	BreakerThreshold int
	// AsyncMaintenance defers each DML statement's maintenance into a
	// group-commit queue: the statement validates, resolves its victims
	// and enqueues its logical delta (durably, under Durability); a flush
	// epoch later compacts the queue — insert/delete pairs cancel,
	// repeated keys collapse — and applies one batched pipeline run per
	// table. Reads pick their staleness with ReadView; Flush drains on
	// demand. Off by default: synchronous mode is unchanged.
	AsyncMaintenance bool
	// EpochSize flushes automatically whenever at least this many deferred
	// statements are queued (0 disables the depth trigger).
	EpochSize int
	// FlushInterval flushes automatically on this wall-clock period (0
	// disables the timer). With both triggers zero, only Flush, ReadFresh
	// reads, transactions and DDL drain the queue.
	FlushInterval time.Duration
	// MaxQueueDepth bounds the deferred-statement count: at the bound new
	// writers fail with ErrOverload (or wait, with OverloadBlock). 0 means
	// unbounded.
	MaxQueueDepth int
	// MaxStaleness bounds the age of the oldest deferred statement the
	// same way. 0 means unbounded.
	MaxStaleness time.Duration
	// OverloadBlock makes overloaded writers wait for the flusher to catch
	// up instead of failing with ErrOverload.
	OverloadBlock bool
	// ReplicationFactor keeps K copies of every hash slot's data: each
	// slot gets K-1 follower nodes holding synchronously mirrored shadow
	// copies of its base, auxiliary-relation, global-index and view rows.
	// When a node dies, reads and DML fail over to the followers with no
	// partial results and no lost statements; ReplicateRepair restores
	// full strength online. 0 or 1 (the default) disables replication and
	// leaves every code path byte-identical to the unreplicated engine.
	// Requires ReplicationFactor <= Nodes; elasticity (AddNode,
	// RebalanceNode, DecommissionNode) is not yet supported at K > 1.
	ReplicationFactor int
}

// Fault-injection surface, re-exported from the internal fault package.
type (
	// FaultInjector decides, deterministically from a seed, which
	// deliveries suffer drops, duplicates, delays, transient handler
	// errors or node crashes.
	FaultInjector = fault.Injector
	// FaultConfig is the injector's probability schedule.
	FaultConfig = fault.Config
	// FaultStats counts injected faults by kind.
	FaultStats = fault.Stats
)

// NewFaultInjector builds a disarmed injector with the given schedule.
func NewFaultInjector(cfg FaultConfig) *FaultInjector { return fault.New(cfg) }

// Degradation sentinels: match with errors.Is.
var (
	// ErrDegraded reports a maintenance statement refused because a node
	// is down; the statement left no partial effects.
	ErrDegraded = cluster.ErrDegraded
	// ErrPartial tags a read that returned only the surviving nodes'
	// rows while the cluster is degraded.
	ErrPartial = cluster.ErrPartial
	// ErrSuspect reports a call refused because the destination's circuit
	// breaker is open (Options.BreakerThreshold consecutive failures).
	ErrSuspect = cluster.ErrSuspect
	// ErrMigration tags every elasticity failure: a migration that
	// aborted, or DDL refused while a rebalance is in flight.
	ErrMigration = cluster.ErrMigration
	// ErrOverload reports a DML statement shed by the async queue's
	// admission control (Options.MaxQueueDepth / MaxStaleness); the
	// statement left no effects. Retry after the flusher drains.
	ErrOverload = cluster.ErrOverload
)

// PartialError is the concrete error wrapping ErrPartial: it names the
// fragment read, the down nodes and how many hash slots were unreachable.
// Extract it with errors.As.
type PartialError = cluster.PartialError

// Bounded-staleness read surface (AsyncMaintenance mode).
type (
	// ReadMode selects the staleness contract of a view read: ReadFresh
	// drains the queue first, ReadAtWatermark returns immediately with
	// state that is prefix-consistent per table and at least as fresh as
	// the watermark it returns (mid-flush, committed table groups of the
	// in-flight epoch are already visible).
	ReadMode = cluster.ReadMode
	// Watermark locates the apply frontier a bounded-stale read reflects:
	// last completed epoch, highest flushed sequence, pending count and
	// the oldest pending entry's age.
	Watermark = cluster.Watermark
)

// Read modes for ReadView.
const (
	ReadAtWatermark = cluster.ReadAtWatermark
	ReadFresh       = cluster.ReadFresh
)

// DB is an open parallel database.
type DB struct {
	c *cluster.Cluster
}

// Open creates a database with empty catalog and storage.
func Open(opts Options) (*DB, error) {
	algo := node.AlgoAuto
	if opts.ForceIndexJoin {
		algo = node.AlgoIndex
	}
	if opts.ForceSortMerge {
		algo = node.AlgoSortMerge
	}
	c, err := cluster.New(cluster.Config{
		Nodes:              opts.Nodes,
		PageRows:           opts.PageRows,
		MemPages:           opts.MemPages,
		UseChannels:        opts.UseChannels,
		UseTCP:             opts.UseTCP,
		LockedReads:        opts.LockedReads,
		Algo:               algo,
		BufferPages:        opts.BufferPages,
		NetLatency:         opts.NetLatency,
		CallTimeout:        opts.CallTimeout,
		RetryAttempts:      opts.RetryAttempts,
		RetryBackoff:       opts.RetryBackoff,
		RetryBackoffMax:    opts.RetryBackoffMax,
		RetrySeed:          opts.RetrySeed,
		Faults:             opts.Faults,
		Durability:         opts.Durability,
		CheckpointEvery:    opts.CheckpointEvery,
		DisablePlanCache:   opts.DisablePlanCache,
		DisablePlanSharing: opts.DisablePlanSharing,
		BreakerThreshold:   opts.BreakerThreshold,
		AsyncMaintenance:   opts.AsyncMaintenance,
		EpochSize:          opts.EpochSize,
		FlushInterval:      opts.FlushInterval,
		MaxQueueDepth:      opts.MaxQueueDepth,
		MaxStaleness:       opts.MaxStaleness,
		OverloadBlock:      opts.OverloadBlock,
		ReplicationFactor:  opts.ReplicationFactor,
	})
	if err != nil {
		return nil, err
	}
	return &DB{c: c}, nil
}

// Close releases the database's resources.
func (db *DB) Close() { db.c.Close() }

// NumNodes returns the node count L.
func (db *DB) NumNodes() int { return db.c.NumNodes() }

// Exec parses and executes one SQL statement.
func (db *DB) Exec(query string) (*Result, error) { return sql.Exec(db.c, query) }

// ExecScript executes a semicolon-separated SQL script, stopping at the
// first error.
func (db *DB) ExecScript(script string) ([]*Result, error) { return sql.ExecScript(db.c, script) }

// CreateTable registers a base table and allocates its fragments.
func (db *DB) CreateTable(t *Table) error { return db.c.CreateTable(t) }

// CreateIndex adds a non-clustered secondary index to a base table.
func (db *DB) CreateIndex(table, name, col string) error {
	return db.c.CreateIndex(table, name, col)
}

// CreateAuxRel creates and backfills an auxiliary relation.
func (db *DB) CreateAuxRel(a *AuxRel) error { return db.c.CreateAuxRel(a) }

// CreateGlobalIndex creates and backfills a global index.
func (db *DB) CreateGlobalIndex(g *GlobalIndex) error { return db.c.CreateGlobalIndex(g) }

// CreateView registers a join view, creates any auxiliary structures its
// strategy needs, and materializes the initial contents.
func (db *DB) CreateView(v *View) error { return db.c.CreateView(v) }

// DropView removes a view and its fragments.
func (db *DB) DropView(name string) error { return db.c.DropView(name) }

// DropTable removes a base table, cascading over its auxiliary relations
// and global indexes; it refuses while a view references the table.
func (db *DB) DropTable(name string) error { return db.c.DropTable(name) }

// DropAuxRel removes an auxiliary relation unless a view's maintenance
// still depends on it.
func (db *DB) DropAuxRel(name string) error { return db.c.DropAuxRel(name) }

// DropGlobalIndex removes a global index and its fragments.
func (db *DB) DropGlobalIndex(name string) error { return db.c.DropGlobalIndex(name) }

// Insert runs one insert transaction: stores the tuples and maintains all
// auxiliary relations, global indexes and views of the table.
func (db *DB) Insert(table string, tuples []Tuple) error { return db.c.Insert(table, tuples) }

// Delete removes the tuples matching pred, maintaining all structures and
// views, and returns the deleted tuples.
func (db *DB) Delete(table string, pred Expr) ([]Tuple, error) { return db.c.Delete(table, pred) }

// Update rewrites matching tuples (delete + insert of the modified rows),
// returning the affected count.
func (db *DB) Update(table string, set map[string]Value, pred Expr) (int, error) {
	return db.c.Update(table, set, pred)
}

// TableRows returns every stored tuple of a base or auxiliary relation.
func (db *DB) TableRows(name string) ([]Tuple, error) { return db.c.TableRows(name) }

// ViewRows returns the materialized content of a view.
func (db *DB) ViewRows(name string) ([]Tuple, error) { return db.c.ViewRows(name) }

// ReadView reads a view under the chosen staleness mode (AsyncMaintenance
// mode; with async off both modes are the plain fresh read). ReadFresh
// drains the queue first; ReadAtWatermark returns immediately, the rows
// at least as fresh as the returned watermark (per-table prefix
// consistency — see cluster.ReadAtWatermark for the mid-flush caveat).
func (db *DB) ReadView(name string, mode ReadMode) ([]Tuple, Watermark, error) {
	return db.c.ReadViewRows(name, mode)
}

// Flush drains the async maintenance queue: completes any interrupted
// flush epoch, then compacts and applies every pending delta. A no-op
// with AsyncMaintenance off.
func (db *DB) Flush() error { return db.c.Flush() }

// Watermark reports the queue's apply frontier (zero with async off).
func (db *DB) Watermark() Watermark { return db.c.Watermark() }

// ResumeMaintenance settles the async queue after a failure: in
// Durability mode it rebuilds the queue from the coordinator's log, then
// rolls any interrupted flush epoch forward — re-applying exactly the
// groups whose commit record is missing. Call it after recovering
// crashed nodes, alongside ResumeMigrations.
func (db *DB) ResumeMaintenance() error { return db.c.ResumeMaintenance() }

// CheckViewConsistency verifies a view equals a from-scratch recomputation
// of its definition.
func (db *DB) CheckViewConsistency(name string) error { return db.c.CheckViewConsistency(name) }

// RefreshStats recomputes optimizer statistics for a table.
func (db *DB) RefreshStats(table string) error { return db.c.RefreshStats(table) }

// Metrics snapshots the per-node I/O counters and message statistics.
func (db *DB) Metrics() Metrics { return db.c.Metrics() }

// ResetMetrics zeroes all counters, opening a fresh measurement window.
func (db *DB) ResetMetrics() { db.c.ResetMetrics() }

// ResolveStrategy reports which maintenance method an auto-strategy view
// would use for an update of the given size on the given table.
func (db *DB) ResolveStrategy(viewName, table string, deltaSize int) (Strategy, error) {
	v, err := db.c.Catalog().View(viewName)
	if err != nil {
		return 0, err
	}
	return db.c.ResolveStrategy(v, table, deltaSize)
}

// ExplainPipeline renders the compiled maintenance pipeline for one
// (table, op) pair — op is "insert" or "delete" — listing its stages in
// execution order and, for auto-strategy views, the advisor's options.
func (db *DB) ExplainPipeline(table, op string) (string, error) {
	return db.c.ExplainPipeline(table, op)
}

// AdviseMaterialization runs the materialization advisor: it prices every
// auxiliary relation and global index the current views could use but the
// catalog lacks, on the shared maintenance DAG's cost model, and returns
// the greedily chosen set that most reduces modeled maintenance workload.
// Nothing is created; materialize recommendations with CreateAuxRel /
// CreateGlobalIndex (or re-create views) as desired.
func (db *DB) AdviseMaterialization() (*Advice, error) {
	return db.c.AdviseMaterialization()
}

// Tx is an open multi-statement transaction (Begin/Insert/Delete/Update/
// Commit/Rollback) — the paper's "begin transaction ... end transaction"
// scope.
type Tx = cluster.Txn

// Begin opens a multi-statement transaction. Statements apply atomically;
// Rollback undoes all of them in reverse order, including all view and
// auxiliary-structure maintenance.
func (db *DB) Begin() *Tx { return db.c.Begin() }

// Session is a SQL session with transaction state (BEGIN/COMMIT/ROLLBACK).
type Session = sql.Session

// NewSession opens a SQL session; DML between BEGIN and COMMIT shares one
// undo scope.
func (db *DB) NewSession() *Session { return sql.NewSession(db.c) }

// QuerySpec is an ad-hoc distributed equijoin query.
type QuerySpec = cluster.QuerySpec

// QueryJoin executes an ad-hoc equijoin the way the parallel engine would
// without a view: shuffles on join attributes (reusing covering auxiliary
// relations) and co-partitioned local hash joins, fully metered. Compare
// its cost against scanning a materialized view to see why warehouses
// materialize.
func (db *DB) QueryJoin(spec QuerySpec) ([]Tuple, *Schema, error) {
	return db.c.QueryJoin(spec)
}

// ScanViewMetered reads a view with scan I/O charged (the query-side
// counterpart of ViewRows).
func (db *DB) ScanViewMetered(name string) ([]Tuple, error) {
	return db.c.ScanFragmentMetered(name)
}

// StorageReport is the cluster-wide space accounting: the footprint of
// every table, auxiliary relation, global index and view.
type StorageReport = cluster.StorageReport

// StorageReport gathers the sizes of all stored objects — the space side
// of the paper's space-for-time trade-off.
func (db *DB) StorageReport() (StorageReport, error) { return db.c.StorageReport() }

// CheckAllStructures verifies every auxiliary relation, global index and
// view against the current base relations.
func (db *DB) CheckAllStructures() error { return db.c.CheckAllStructures() }

// Degraded lists the nodes the coordinator currently considers down
// (discovered from failed deliveries or marked explicitly). Empty means
// full service.
func (db *DB) Degraded() []int { return db.c.Degraded() }

// MarkNodeDown tells the coordinator to treat a node as failed without
// waiting for a delivery to discover it.
func (db *DB) MarkNodeDown(n int) error { return db.c.MarkNodeDown(n) }

// Recover repairs a restarted node. In Durability mode it restarts the
// node from its checkpoint plus write-ahead-log tail and resolves its
// in-doubt transactions against the coordinator's decision log; otherwise
// it replays compensations that could not reach the node, resolves
// in-doubt deliveries, and rebuilds the node's derived fragments from the
// base relations.
// With ReplicationFactor > 1 it instead delegates to ReplicateRepair: the
// node's slots were promoted to followers at failover, so bringing it back
// is a re-replication round, not a replay.
func (db *DB) Recover(n int) error { return db.c.Recover(n) }

// ReplRepairStatus describes an in-flight re-replication round (see
// Topology.Repair).
type ReplRepairStatus = cluster.ReplRepairStatus

// ReplicateRepair restores full replication strength after failures
// (ReplicationFactor > 1 only): down nodes are restarted and wiped, slots
// missing followers get new ones assigned, and every fragment's rows are
// recopied to the new followers online — DML on other tables keeps
// running during the copy. Safe to rerun after a mid-repair failure.
func (db *DB) ReplicateRepair() error { return db.c.ReplicateRepair() }

// RecoveryReport accounts what one recovery did and what it cost (mode,
// pages read, records replayed, in-doubt transactions resolved).
type RecoveryReport = cluster.RecoveryReport

// RecoverWithReport is Recover plus the cost accounting.
func (db *DB) RecoverWithReport(n int) (RecoveryReport, error) {
	return db.c.RecoverWithReport(n)
}

// CheckpointResult reports one node's checkpoint: the log position it
// covers and the pages its state image cost.
type CheckpointResult = node.CheckpointResult

// Checkpoint snapshots every live node's state to its durable area and
// truncates the covered log prefix (Durability mode only).
func (db *DB) Checkpoint() ([]CheckpointResult, error) { return db.c.Checkpoint() }

// CrashNode fail-stops a durable node: its fragments, indexes and dedup
// cache are wiped; only the write-ahead log and last checkpoint survive
// (Durability mode only).
func (db *DB) CrashNode(n int) error { return db.c.CrashNode(n) }

// RestartResult summarizes a node restart: the checkpoint it loaded, the
// log tail it replayed, and the transactions still in doubt.
type RestartResult = node.RestartResult

// RestartNode brings a crashed durable node back from its checkpoint and
// log tail, leaving in-doubt transactions for Recover to resolve.
func (db *DB) RestartNode(n int) (RestartResult, error) { return db.c.RestartNode(n) }

// Elasticity surface, re-exported from the internal cluster package.
type (
	// Topology is a snapshot of the versioned partition map: epoch, node
	// count, per-slot owners, retired nodes and any in-flight migration.
	Topology = cluster.Topology
	// MigrationStats is the cost accounting of one completed (or aborted)
	// rebalance: rows and pages copied, envelopes sent, catch-up queue
	// depth, cutover stall time.
	MigrationStats = cluster.MigrationStats
	// MigrationStatus describes an in-flight migration.
	MigrationStatus = cluster.MigrationStatus
)

// AddNode grows the cluster by one data-server node while DML continues:
// the node is provisioned with every fragment, the partition map doubles
// its slot count for a finer rebalance grain, and a live migration moves
// a proportional share of each hash range — base fragments, auxiliary
// relations, global indexes and view fragments — to the new node with a
// snapshot copy, delta catch-up and a brief exclusive cutover. Returns
// the new node's id.
func (db *DB) AddNode() (int, error) { return db.c.AddNode() }

// DecommissionNode migrates every hash slot a node owns to the surviving
// nodes and retires it from the partition map. The node stays addressable
// (retired, empty) so historical node ids remain stable.
func (db *DB) DecommissionNode(n int) error { return db.c.DecommissionNode(n) }

// RebalanceNode moves hash slots to the given node until it owns its fair
// share — AddNode's migration step, reusable to retry after a failure or
// to rebalance an existing node. A no-op when the node is already
// balanced.
func (db *DB) RebalanceNode(n int) error { return db.c.RebalanceNode(n) }

// Topology snapshots the versioned partition map and migration status.
func (db *DB) Topology() Topology { return db.c.Topology() }

// MigrationActive reports whether a rebalance is in flight.
func (db *DB) MigrationActive() bool { return db.c.MigrationActive() }

// LastMigration returns the most recent migration's cost accounting.
func (db *DB) LastMigration() (MigrationStats, bool) { return db.c.LastMigration() }

// ResumeMigrations drives every undecided migration in the coordinator's
// write-ahead log to a decision after a failure: committed migrations
// roll forward (scrub stale source copies), uncommitted ones roll back
// presumed-abort style. Call it after recovering crashed nodes.
func (db *DB) ResumeMigrations() error { return db.c.ResumeMigrations() }

// Suspect lists nodes whose circuit breakers are open.
func (db *DB) Suspect() []int { return db.c.Suspect() }

// Cluster exposes the underlying engine for the in-repo benchmarks and
// examples that need lower-level access (experiment harnesses).
func (db *DB) Cluster() *cluster.Cluster { return db.c }
