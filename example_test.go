package joinview_test

import (
	"fmt"
	"log"

	"joinview"
)

// Example shows the minimal lifecycle: open a cluster, define the paper's
// JV1 view under the auxiliary-relation method, stream an update, and
// observe the maintained view.
func Example() {
	db, err := joinview.Open(joinview.Options{Nodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	if _, err := db.ExecScript(`
		create table customer (custkey bigint, acctbal double) partition on custkey;
		create table orders (orderkey bigint, custkey bigint, totalprice double) partition on orderkey;
		create index ix_oc on orders (custkey);
		insert into orders values (100, 1, 5.0), (101, 2, 7.5);
		create view jv1 as
			select c.custkey, o.orderkey, o.totalprice
			from orders o, customer c
			where c.custkey = o.custkey
			partition on c.custkey using auxrel;
	`); err != nil {
		log.Fatal(err)
	}
	if _, err := db.Exec(`insert into customer values (1, 10.0)`); err != nil {
		log.Fatal(err)
	}
	rows, err := db.ViewRows("jv1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rows[0])
	// Output: (1, 100, 5)
}

// ExampleDB_Begin shows a multi-statement transaction being rolled back:
// every base-relation change and all view maintenance is undone.
func ExampleDB_Begin() {
	db, err := joinview.Open(joinview.Options{Nodes: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	if _, err := db.ExecScript(`
		create table t (k bigint, v bigint) partition on k;
		insert into t values (1, 10);
	`); err != nil {
		log.Fatal(err)
	}

	tx := db.Begin()
	if err := tx.Insert("t", []joinview.Tuple{{joinview.Int(2), joinview.Int(20)}}); err != nil {
		log.Fatal(err)
	}
	if _, err := tx.Delete("t", joinview.Eq("k", joinview.Int(1))); err != nil {
		log.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		log.Fatal(err)
	}

	r, err := db.Exec(`select count(*) from t`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(r.Rows[0][0].GoString())
	// Output: 1
}

// ExampleDB_ResolveStrategy shows the cost-based advisor choosing the
// auxiliary-relation method for a small update on an auto-strategy view.
func ExampleDB_ResolveStrategy() {
	db, err := joinview.Open(joinview.Options{Nodes: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	if _, err := db.ExecScript(`
		create table a (id bigint, c bigint) partition on id;
		create table b (id bigint, d bigint) partition on id;
		create index ix on b (d);
		insert into b values (1, 5), (2, 5);
		create view v as select a.id, b.id from a, b where a.c = b.d using auto;
	`); err != nil {
		log.Fatal(err)
	}
	strat, err := db.ResolveStrategy("v", "a", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(strat)
	// Output: auxrel
}
