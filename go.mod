module joinview

go 1.22
