package joinview

// Benchmarks for the scatter-gather execution layer: concurrent-session
// throughput under the table-level lock manager (serial baseline vs
// parallel dispatch) and the per-statement dispatch cost itself. The CI
// smoke job runs BenchmarkParallelDispatch with -benchtime=1x; the full
// numbers land in BENCH_parallel.json via `jvbench -parallel -json`.

import (
	"fmt"
	"sync"
	"testing"

	"joinview/internal/catalog"
	"joinview/internal/cluster"
	"joinview/internal/experiments"
	"joinview/internal/node"
)

// BenchmarkConcurrentSessions measures whole-cluster statement throughput
// with 4 sessions on independent schemas at L=8, on the channel transport
// with a simulated interconnect: the serial sub-benchmark pins the seed's
// one-big-lock model (Config.SerialDML), the parallel one runs the lock
// manager plus scatter-gather dispatch. Compare stmts/sec across the two.
func BenchmarkConcurrentSessions(b *testing.B) {
	const l, sessions, rows = 8, 4, 8
	for _, mode := range []struct {
		name   string
		serial bool
	}{{"serial", true}, {"parallel", false}} {
		b.Run(mode.name, func(b *testing.B) {
			c, err := cluster.New(cluster.Config{
				Nodes: l, Algo: node.AlgoIndex, UseChannels: true,
				SerialDML: mode.serial, NetLatency: experiments.DefaultNetLatency,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			if err := experiments.LoadSessionSchemas(c, sessions, catalog.StrategyAuxRel); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			// One op = every session issuing one statement concurrently.
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				errs := make([]error, sessions)
				for s := 0; s < sessions; s++ {
					wg.Add(1)
					go func(s int) {
						defer wg.Done()
						errs[s] = c.Insert(fmt.Sprintf("a%d", s), experiments.SessionInserts(s, i, rows))
					}(s)
				}
				wg.Wait()
				for _, e := range errs {
					if e != nil {
						b.Fatal(e)
					}
				}
			}
			b.StopTimer()
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(b.N*sessions)/sec, "stmts/sec")
			}
		})
	}
}

// BenchmarkParallelDispatch exercises one statement's scatter-gather path
// (base-relation fan-out, auxiliary-relation fan-out, batched global-index
// envelopes) on the channel transport with parallel dispatch. Run with
// -benchmem to watch the bucketing and envelope allocation costs.
func BenchmarkParallelDispatch(b *testing.B) {
	const l, rows = 8, 64
	c, err := cluster.New(cluster.Config{
		Nodes: l, Algo: node.AlgoIndex, UseChannels: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if err := experiments.LoadSessionSchemas(c, 1, catalog.StrategyAuto); err != nil {
		b.Fatal(err)
	}
	c.ResetMetrics()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Insert("a0", experiments.SessionInserts(0, i, rows)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	m := c.Metrics()
	b.ReportMetric(float64(m.TotalIOs())/float64(b.N), "tw-ios/op")
	b.ReportMetric(float64(m.Net.Messages)/float64(b.N), "msgs/op")
	b.ReportMetric(float64(m.Net.Envelopes)/float64(b.N), "envelopes/op")
}
