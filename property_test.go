package joinview

// Facade-level property tests: across random cluster shapes (node counts,
// page sizes, transports, buffer pools) and random update streams, every
// maintenance strategy keeps every view — plain and aggregate — equal to a
// from-scratch recomputation, and all auxiliary structures stay in sync.

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func buildRandomDB(t testing.TB, rng *rand.Rand) *DB {
	opts := Options{
		Nodes:       1 + rng.Intn(8),
		PageRows:    1 + rng.Intn(20),
		UseChannels: rng.Intn(2) == 1,
	}
	if rng.Intn(2) == 1 {
		opts.BufferPages = 50 + rng.Intn(200)
	}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	script := `
		create table customer (custkey bigint, acctbal double) partition on custkey;
		create table orders (orderkey bigint, custkey bigint, totalprice double) partition on orderkey;
		create index ix_oc on orders (custkey);
	`
	if _, err := db.ExecScript(script); err != nil {
		db.Close()
		t.Fatal(err)
	}
	return db
}

func seedData(t testing.TB, db *DB, rng *rand.Rand) {
	var customers, orders []Tuple
	nCust := 4 + rng.Intn(8)
	for i := 0; i < nCust; i++ {
		customers = append(customers, Tuple{Int(int64(i)), Float(float64(i))})
	}
	for i := 0; i < nCust*2; i++ {
		orders = append(orders, Tuple{Int(int64(i)), Int(int64(rng.Intn(nCust + 2))), Float(float64(i % 7))})
	}
	if err := db.Insert("customer", customers); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("orders", orders); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyViewsSurviveRandomStreams is the repository's core invariant
// as a quick property: any configuration, any stream, every strategy, both
// view shapes — materialized state equals recomputation.
func TestPropertyViewsSurviveRandomStreams(t *testing.T) {
	if testing.Short() {
		t.Skip("long property test")
	}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := buildRandomDB(t, rng)
		defer db.Close()
		seedData(t, db, rng)

		strategies := []Strategy{StrategyNaive, StrategyAuxRel, StrategyGlobalIndex, StrategyAuto}
		for i, strat := range strategies {
			plain := &View{
				Name:   fmt.Sprintf("pv%d", i),
				Tables: []string{"customer", "orders"},
				Joins: []JoinPred{
					{Left: "customer", LeftCol: "custkey", Right: "orders", RightCol: "custkey"},
				},
				Out: []OutCol{
					{Table: "customer", Col: "custkey"},
					{Table: "orders", Col: "orderkey"},
					{Table: "orders", Col: "totalprice"},
				},
				PartitionTable: "customer", PartitionCol: "custkey",
				Strategy: strat,
			}
			if err := db.CreateView(plain); err != nil {
				t.Log(err)
				return false
			}
		}
		if _, err := db.Exec(`
			create view agg as
			select c.custkey, count(*), sum(o.totalprice)
			from customer c, orders o
			where c.custkey = o.custkey
			group by c.custkey
			partition on c.custkey using auto`); err != nil {
			t.Log(err)
			return false
		}

		nextOK := int64(10000)
		for step := 0; step < 25; step++ {
			var err error
			switch rng.Intn(5) {
			case 0:
				nextOK++
				err = db.Insert("orders", []Tuple{{Int(nextOK), Int(int64(rng.Intn(12))), Float(1.5)}})
			case 1:
				err = db.Insert("customer", []Tuple{{Int(int64(rng.Intn(14))), Float(2)}})
			case 2:
				_, err = db.Delete("orders", Eq("custkey", Int(int64(rng.Intn(12)))))
			case 3:
				_, err = db.Delete("customer", Eq("custkey", Int(int64(rng.Intn(12)))))
			case 4:
				_, err = db.Update("orders",
					map[string]Value{"custkey": Int(int64(rng.Intn(10)))},
					Eq("orderkey", Int(int64(rng.Intn(20)))))
			}
			if err != nil {
				t.Log(err)
				return false
			}
		}
		if err := db.CheckAllStructures(); err != nil {
			t.Log(err)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// TestPropertyTransactionsAreAtomic: any random transaction body either
// commits completely or rolls back without a trace.
func TestPropertyTransactionsAreAtomic(t *testing.T) {
	if testing.Short() {
		t.Skip("long property test")
	}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := buildRandomDB(t, rng)
		defer db.Close()
		seedData(t, db, rng)
		if _, err := db.Exec(`
			create view v as
			select c.custkey, o.orderkey from customer c, orders o
			where c.custkey = o.custkey
			partition on c.custkey using auxrel`); err != nil {
			t.Log(err)
			return false
		}
		before, err := db.ViewRows("v")
		if err != nil {
			t.Log(err)
			return false
		}
		baseBefore, _ := db.TableRows("orders")

		tx := db.Begin()
		for i := 0; i < 1+rng.Intn(6); i++ {
			switch rng.Intn(3) {
			case 0:
				err = tx.Insert("orders", []Tuple{{Int(int64(5000 + i)), Int(int64(rng.Intn(10))), Float(1)}})
			case 1:
				_, err = tx.Delete("orders", Eq("custkey", Int(int64(rng.Intn(10)))))
			case 2:
				_, err = tx.Update("orders",
					map[string]Value{"custkey": Int(int64(rng.Intn(10)))},
					Eq("orderkey", Int(int64(rng.Intn(25)))))
			}
			if err != nil {
				t.Log(err)
				return false
			}
		}
		if rng.Intn(2) == 0 {
			if err := tx.Rollback(); err != nil {
				t.Log(err)
				return false
			}
			after, _ := db.ViewRows("v")
			baseAfter, _ := db.TableRows("orders")
			if len(after) != len(before) || len(baseAfter) != len(baseBefore) {
				t.Logf("rollback leaked: view %d->%d, base %d->%d",
					len(before), len(after), len(baseBefore), len(baseAfter))
				return false
			}
		} else if err := tx.Commit(); err != nil {
			t.Log(err)
			return false
		}
		return db.CheckAllStructures() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
