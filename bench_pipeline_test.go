package joinview

// Benchmarks for the compile-once maintenance pipeline: the cost of
// compiling one (table, op) plan DAG from the catalog, and the cost of
// executing statements through it with the plan cache on (steady state:
// one lookup, zero compiles) versus off (recompile per statement). The CI
// smoke job runs both with -benchtime=1x; the adaptive-experiment numbers
// land in BENCH_adaptive.json via `jvbench -exp adaptive`.

import (
	"testing"

	"joinview/internal/catalog"
	"joinview/internal/cluster"
	"joinview/internal/experiments"
	"joinview/internal/maintain"
	"joinview/internal/mplan"
	"joinview/internal/node"
	"joinview/internal/types"
)

// BenchmarkPlanCompile measures one cold compilation of the insert
// pipeline for a base table feeding an auto-strategy join view (so the
// compiled view stage carries the advisor's full option list).
func BenchmarkPlanCompile(b *testing.B) {
	c, err := cluster.New(cluster.Config{Nodes: 8, Algo: node.AlgoIndex})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if err := experiments.LoadSessionSchemas(c, 1, catalog.StrategyAuto); err != nil {
		b.Fatal(err)
	}
	cat, st := c.Catalog(), c.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mp, err := mplan.Compile(cat, st, "a0", maintain.OpInsert)
		if err != nil {
			b.Fatal(err)
		}
		if len(mp.Stages) == 0 {
			b.Fatal("empty plan")
		}
	}
}

// BenchmarkSharedCompile measures one cold compilation of the insert
// pipeline for a base table feeding a 50-view shared group — the compile
// cost the shared maintenance DAG adds (chain fingerprinting, shared-
// potential detection) at a population the flat pipeline never saw.
func BenchmarkSharedCompile(b *testing.B) {
	c, err := cluster.New(cluster.Config{Nodes: 8, Algo: node.AlgoIndex})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if err := experiments.LoadManyViewsSchema(c, 50); err != nil {
		b.Fatal(err)
	}
	cat, st := c.Catalog(), c.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mp, err := mplan.Compile(cat, st, "customer", maintain.OpInsert)
		if err != nil {
			b.Fatal(err)
		}
		if !mp.SharedPotential {
			b.Fatal("50-view group compiled without shared potential")
		}
	}
}

// BenchmarkSharedPipelineExecute measures one single-tuple insert through a
// 50-view shared group, with the shared DAG executor against the per-view
// baseline on identical clusters. The gap is the hoisted delta joins.
func BenchmarkSharedPipelineExecute(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"shared", false}, {"perview", true}} {
		b.Run(mode.name, func(b *testing.B) {
			c, err := cluster.New(cluster.Config{
				Nodes: 8, Algo: node.AlgoIndex, DisablePlanSharing: mode.disable,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			if err := experiments.LoadManyViewsSchema(c, 50); err != nil {
				b.Fatal(err)
			}
			c.ResetMetrics()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Insert("customer", []types.Tuple{
					{types.Int(int64(i % 160)), types.Int(int64(i % 25)), types.Int(int64(1000 + i))},
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			m := c.Metrics()
			b.ReportMetric(float64(m.TotalIOs())/float64(b.N), "tw-ios/stmt")
		})
	}
}

// BenchmarkPipelineExecute measures one insert statement through the
// pipeline executor on the deterministic transport: the cached variant
// resolves the compiled plan from the catalog-versioned cache (the
// steady state every DML statement hits), the uncached one recompiles
// per statement. The gap is what compile-once buys.
func BenchmarkPipelineExecute(b *testing.B) {
	const rows = 8
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"cached", false}, {"uncached", true}} {
		b.Run(mode.name, func(b *testing.B) {
			c, err := cluster.New(cluster.Config{
				Nodes: 8, Algo: node.AlgoIndex, DisablePlanCache: mode.disable,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			if err := experiments.LoadSessionSchemas(c, 1, catalog.StrategyAuxRel); err != nil {
				b.Fatal(err)
			}
			c.ResetMetrics()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Insert("a0", experiments.SessionInserts(0, i, rows)); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			p := c.Metrics().Pipeline
			b.ReportMetric(p.HitRate(), "cache-hit-rate")
		})
	}
}
