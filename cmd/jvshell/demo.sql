-- Demo script for jvshell: the paper's §3.3 setup in miniature.
-- Run with: go run ./cmd/jvshell -f cmd/jvshell/demo.sql
--
-- Afterwards try:  \tables   \storage   \explain jv1 customer 128
--                  \metrics  \check jv2

create table customer (custkey bigint, acctbal double) partition on custkey;
create table orders (orderkey bigint, custkey bigint, totalprice double) partition on orderkey;
create table lineitem (orderkey bigint, partkey bigint, suppkey bigint,
                       extendedprice double, discount double) partition on partkey;

-- §3.3 step 1: non-clustered indexes on the join attributes.
create index ix_orders_custkey on orders (custkey);
create index ix_lineitem_orderkey on lineitem (orderkey);

insert into customer values (0, 711.56), (1, 121.65), (2, 7498.12);
insert into orders values
    (0, 0, 100.0), (1, 1, 200.0), (2, 2, 300.0), (3, 3, 400.0), (4, 4, 500.0);
insert into lineitem values
    (0, 10, 1, 9.5, 0.01), (0, 11, 2, 8.5, 0.02),
    (1, 12, 3, 7.5, 0.03), (1, 13, 4, 6.5, 0.04),
    (2, 14, 5, 5.5, 0.05), (3, 15, 6, 4.5, 0.06);

-- The paper's JV1 under the auxiliary-relation method (creates and
-- backfills orders_1 automatically) ...
create view jv1 as
    select c.custkey, c.acctbal, o.orderkey, o.totalprice
    from orders o, customer c
    where c.custkey = o.custkey
    partition on c.custkey
    using auxrel;

-- ... and JV2, the three-way join, under the global-index method the
-- paper's Teradata installation could not run.
create view jv2 as
    select c.custkey, c.acctbal, o.orderkey, o.totalprice, l.discount, l.extendedprice
    from orders o, customer c, lineitem l
    where c.custkey = o.custkey and o.orderkey = l.orderkey
    partition on c.custkey
    using globalindex;

-- An aggregate join view: per-customer order count and revenue.
create view revenue as
    select c.custkey, count(*), sum(o.totalprice)
    from customer c, orders o
    where c.custkey = o.custkey
    group by c.custkey
    partition on c.custkey
    using auxrel;

-- The §3.3 update: new customers, each matching one existing order.
insert into customer values (3, 2866.83), (4, 794.47);

select * from jv1;
select * from jv2;
select * from revenue;
