// Command jvshell is an interactive SQL shell over the parallel-RDBMS
// simulator. It accepts the SQL subset the paper's experiments use
// (CREATE TABLE / INDEX / GLOBAL INDEX / AUXILIARY RELATION / VIEW,
// INSERT, DELETE, UPDATE, SELECT) plus shell commands:
//
//	\metrics           show per-node I/O counters and message totals
//	\watermark         show the async-maintenance watermark and queue state
//	\flush             drain the async maintenance queue (one epoch)
//	\reset             zero the counters
//	\check <view>      verify view v against a recomputed join
//	\explain <view> <table> [n]   show the maintenance plan for an
//	                   n-tuple update of the table (default 1)
//	\pipeline <table> [op]   show the compiled maintenance pipeline for
//	                   insert (default) or delete statements on the table,
//	                   including the shared maintenance DAG when several
//	                   views share delta-join prefixes
//	\advise            run the materialization advisor: which auxiliary
//	                   relations / global indexes are worth materializing
//	                   for the current view population
//	\tables            list tables, auxiliary structures and views
//	\storage           show the space footprint of every stored object
//	\topology          show the partition-map epoch, per-node hash slots,
//	                   node liveness, per-slot replica sets, and any
//	                   in-flight migration or re-replication round
//	\quit              exit
//
// Usage: jvshell [-nodes 4] [-replicas K] [-channels] [-async] [-epoch N] [-f script.sql]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"joinview"
)

func main() {
	nodes := flag.Int("nodes", 4, "number of data-server nodes")
	replicas := flag.Int("replicas", 1, "replication factor K (copies per fragment, 1 = none)")
	channels := flag.Bool("channels", false, "run nodes as goroutines with channel transport")
	async := flag.Bool("async", false, "defer view maintenance to the epoch-batched queue")
	epoch := flag.Int("epoch", 0, "with -async, background-flush every N deferred statements")
	script := flag.String("f", "", "run a SQL script file before the interactive prompt")
	flag.Parse()

	db, err := joinview.Open(joinview.Options{
		Nodes: *nodes, ReplicationFactor: *replicas, UseChannels: *channels,
		AsyncMaintenance: *async, EpochSize: *epoch,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "jvshell:", err)
		os.Exit(1)
	}
	defer db.Close()

	if *script != "" {
		data, err := os.ReadFile(*script)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jvshell:", err)
			os.Exit(1)
		}
		runSQL(db, string(data))
	}

	session := db.NewSession()
	fmt.Printf("joinview shell — %d-node parallel RDBMS simulator (\\quit to exit)\n", *nodes)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := "jv> "
	for {
		fmt.Print(prompt)
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if handleMeta(db, trimmed) {
				return
			}
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.Contains(line, ";") {
			prompt = "  > "
			continue
		}
		stmt := buf.String()
		buf.Reset()
		prompt = "jv> "
		runSession(session, stmt)
	}
}

// handleMeta executes a shell command; it returns true to exit.
func handleMeta(db *joinview.DB, cmd string) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case "\\quit", "\\q":
		return true
	case "\\metrics":
		m := db.Metrics()
		total := m.Total()
		fmt.Printf("total I/Os: %d   max node I/Os: %d   messages: %d\n",
			m.TotalIOs(), m.MaxNodeIOs(), m.Net.Messages)
		fmt.Printf("searches: %d  fetches: %d  inserts: %d  deletes: %d  scan pages: %d  sort pages: %d\n",
			total.Searches, total.Fetches, total.Inserts, total.Deletes, total.ScanPages, total.SortPages)
		for i, nc := range m.Node {
			fmt.Printf("  node %d: %d I/Os\n", i, nc.IOs())
		}
	case "\\watermark":
		w := db.Watermark()
		fmt.Printf("epoch %d   flushed through seq %d   pending %d   lag %v\n",
			w.Epoch, w.FlushedSeq, w.Pending, w.Lag)
		q := db.Metrics().Queue
		fmt.Printf("enqueued: %d stmts / %d tuples   epochs flushed: %d   cancelled: %d (%.1f%%)   overloads: %d\n",
			q.DeltasEnqueued, q.TuplesEnqueued, q.EpochsFlushed, q.DeltasCancelled, 100*q.CancelRate(), q.Overloads)
	case "\\flush":
		if err := db.Flush(); err != nil {
			fmt.Println("flush:", err)
			break
		}
		w := db.Watermark()
		fmt.Printf("queue drained; watermark at epoch %d\n", w.Epoch)
	case "\\reset":
		db.ResetMetrics()
		fmt.Println("counters reset")
	case "\\check":
		if len(fields) < 2 {
			fmt.Println("usage: \\check <view>")
			break
		}
		if err := db.CheckViewConsistency(fields[1]); err != nil {
			fmt.Println("INCONSISTENT:", err)
		} else {
			fmt.Printf("view %s is consistent with its definition\n", fields[1])
		}
	case "\\explain":
		if len(fields) < 3 {
			fmt.Println("usage: \\explain <view> <table> [delta-size]")
			break
		}
		n := 1
		if len(fields) > 3 {
			fmt.Sscanf(fields[3], "%d", &n)
		}
		out, err := db.Cluster().ExplainMaintenance(fields[1], fields[2], n)
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Print(out)
	case "\\pipeline":
		if len(fields) < 2 {
			fmt.Println("usage: \\pipeline <table> [insert|delete]")
			break
		}
		op := "insert"
		if len(fields) > 2 {
			op = fields[2]
		}
		out, err := db.ExplainPipeline(fields[1], op)
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Print(out)
	case "\\advise":
		adv, err := db.AdviseMaterialization()
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Print(adv.Describe())
	case "\\tables":
		cat := db.Cluster().Catalog()
		for _, name := range cat.Tables() {
			t, _ := cat.Table(name)
			fmt.Printf("table %s (%v) partition on %s\n", name, t.Schema.Names(), t.PartitionCol)
			for _, ar := range cat.AuxRelsFor(name) {
				fmt.Printf("  auxrel %s on %s (%v)\n", ar.Name, ar.PartitionCol, ar.Cols)
			}
			for _, gi := range cat.GlobalIndexesFor(name) {
				kind := "non-clustered"
				if gi.DistClustered {
					kind = "clustered"
				}
				fmt.Printf("  global index %s on %s (distributed %s)\n", gi.Name, gi.Col, kind)
			}
		}
		for _, name := range cat.Views() {
			v, _ := cat.View(name)
			shape := "join view"
			if v.IsAggregate() {
				shape = "aggregate join view"
			}
			fmt.Printf("%s %s over %v using %s\n", shape, name, v.Tables, v.Strategy)
		}
	case "\\topology":
		top := db.Topology()
		fmt.Printf("partition map epoch %d, %d nodes, %d hash slots", top.Epoch, top.Nodes, len(top.SlotOwner))
		if top.ReplicationFactor > 1 {
			fmt.Printf(", replication factor %d", top.ReplicationFactor)
		}
		fmt.Println()
		owned := map[int][]int{}
		for slot, n := range top.SlotOwner {
			owned[n] = append(owned[n], slot)
		}
		follows := map[int][]int{}
		for slot, fs := range top.Replicas {
			for _, f := range fs {
				follows[f] = append(follows[f], slot)
			}
		}
		for n := 0; n < top.Nodes; n++ {
			slots := owned[n]
			label := ""
			for _, r := range top.Retired {
				if r == n {
					label = " (retired)"
				}
			}
			if len(top.NodeStatus) > n && top.NodeStatus[n] != "up" {
				label += " [" + top.NodeStatus[n] + "]"
			}
			fmt.Printf("  node %d%s: %d slots %v", n, label, len(slots), slots)
			if fs := follows[n]; len(fs) > 0 {
				fmt.Printf(", follower for %d slots %v", len(fs), fs)
			}
			fmt.Println()
		}
		if r := top.Repair; r != nil {
			fmt.Printf("re-replication in flight: phase %s, %d/%d objects copied, %d slot-replicas restoring\n",
				r.Phase, r.ObjectsDone, r.ObjectsTotal, r.Slots)
		}
		if m := top.InFlight; m != nil {
			fmt.Printf("migration %d in flight: phase %s, slots %v -> nodes %v, catch-up queue depth %d\n",
				m.ID, m.Phase, m.Slots, m.Dsts, m.QueueDepth)
		} else if stats, ok := db.LastMigration(); ok {
			outcome := "aborted"
			if stats.Committed {
				outcome = "committed"
			}
			fmt.Printf("last migration %d %s: %d slots, %d rows / %d pages copied, cutover stall %v\n",
				stats.ID, outcome, len(stats.Slots), stats.RowsCopied, stats.PagesCopied, stats.CutoverStall)
		} else {
			fmt.Println("no migration in flight")
		}
	case "\\storage":
		rep, err := db.StorageReport()
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Printf("%-24s %-12s %8s %6s %5s\n", "name", "kind", "rows", "pages", "cols")
		for _, e := range rep.Entries {
			fmt.Printf("%-24s %-12s %8d %6d %5d\n", e.Name, e.Kind, e.Rows, e.Pages, e.Cols)
		}
		fmt.Printf("auxiliary-structure overhead: %d rows (%d values)\n", rep.Overhead(), rep.OverheadValues())
	default:
		fmt.Println("commands: \\metrics \\watermark \\flush \\reset \\check <view> \\explain <view> <table> [n] \\pipeline <table> [op] \\advise \\tables \\storage \\topology \\quit")
	}
	return false
}

func runSQL(db *joinview.DB, stmt string) {
	results, err := db.ExecScript(stmt)
	printResults(results, err)
}

// runSession executes through the session so BEGIN/COMMIT/ROLLBACK work.
func runSession(s *joinview.Session, stmt string) {
	results, err := s.ExecScript(stmt)
	printResults(results, err)
}

func printResults(results []*joinview.Result, err error) {
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, r := range results {
		switch {
		case r.Columns != nil:
			fmt.Println(strings.Join(r.Columns, " | "))
			for _, row := range r.Rows {
				cells := make([]string, len(row))
				for i, v := range row {
					cells[i] = v.GoString()
				}
				fmt.Println(strings.Join(cells, " | "))
			}
			fmt.Printf("(%d rows)\n", len(r.Rows))
		case r.Message != "":
			fmt.Println(r.Message)
		default:
			fmt.Printf("(%d rows affected)\n", r.Count)
		}
	}
}
