// Command jvbench regenerates the paper's evaluation: every figure from
// the analytical model, the measured counterparts on the cluster
// simulator, and the Table 1 data-set summary.
//
// Usage:
//
//	jvbench [-exp all|table1|fig7..fig14|storage|buffering|skew|network|faults|durability|adaptive]
//	        [-measured] [-maxl 128] [-scale 100] [-a 128] [-faults 0.02] [-csv dir]
//
// -measured additionally runs the simulator for figures that have a
// measured counterpart (7, 8, 9, 10, 11); figure 14 and the extension
// experiments are always measured. -maxl caps the node-count axis (larger
// sweeps take longer); -scale is the divisor applied to Table 1's row
// counts for figure 14; -csv also writes every result table as CSV for
// plotting. -exp adaptive runs the fixed-vs-adaptive strategy comparison
// and writes BENCH_adaptive.json (or the -json path).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"joinview/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, table1, fig7..fig14, storage, buffering, skew, network, faults, durability, parallel, adaptive, elastic, async, replica, manyviews")
	measured := flag.Bool("measured", false, "also run the measured (simulator) variants of figs 7-11")
	maxL := flag.Int("maxl", 128, "largest node count to sweep")
	scale := flag.Int("scale", 100, "Table 1 scale divisor for fig14 (100 = 1,500 customers)")
	deltaA := flag.Int("a", 128, "tuples inserted into customer for fig14")
	faultRate := flag.Float64("faults", 0.02, "per-kind fault probability for -exp faults")
	csvDir := flag.String("csv", "", "also write each result table as CSV into this directory")
	parallel := flag.Bool("parallel", false, "run the concurrent-sessions experiment (serial vs parallel dispatch)")
	jsonOut := flag.String("json", "", "write the concurrent-sessions results as JSON to this file (implies -parallel)")
	sessions := flag.Int("sessions", 4, "concurrent sessions for -parallel")
	views := flag.Int("views", 0, "cap the view-count axis for -exp manyviews (0: full sweep to 100 views)")
	baseline := flag.String("baseline", "BENCH_parallel.json", "concurrent-sessions JSON whose L=8 allocs/stmt anchor -exp hotpath's reduction column")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jvbench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "jvbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "jvbench:", err)
			os.Exit(1)
		}
	}
	csvOut = *csvDir
	exitCode := 0
	if *exp == "adaptive" {
		if err := runAdaptive(*maxL, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "jvbench:", err)
			exitCode = 1
		}
	} else if *exp == "async" {
		if err := runAsync(*maxL, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "jvbench:", err)
			exitCode = 1
		}
	} else if *exp == "replica" {
		if err := runReplica(*maxL, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "jvbench:", err)
			exitCode = 1
		}
	} else if *exp == "manyviews" {
		if err := runManyViews(*maxL, *views, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "jvbench:", err)
			exitCode = 1
		}
	} else if *exp == "hotpath" {
		if err := runHotpath(*maxL, *sessions, *jsonOut, *baseline); err != nil {
			fmt.Fprintln(os.Stderr, "jvbench:", err)
			exitCode = 1
		}
	} else if *exp == "elastic" {
		if err := runElastic(*sessions, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "jvbench:", err)
			exitCode = 1
		}
	} else if *parallel || *jsonOut != "" || *exp == "parallel" {
		if err := runParallel(*maxL, *sessions, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "jvbench:", err)
			exitCode = 1
		}
	} else if err := run(*exp, *measured, *maxL, *scale, *deltaA, *faultRate); err != nil {
		fmt.Fprintln(os.Stderr, "jvbench:", err)
		exitCode = 1
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jvbench:", err)
			exitCode = 1
		} else {
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "jvbench:", err)
				exitCode = 1
			}
			f.Close()
		}
	}
	if exitCode != 0 {
		os.Exit(exitCode)
	}
}

// runParallel runs the concurrent-sessions experiment at L=2/8/32 (capped
// by maxL) and optionally writes the results as JSON. 120 statements per
// session keep the plan-cache steady state visible: one compile per
// session table, then hits.
func runParallel(maxL, sessions int, jsonPath string) error {
	ls := capLs([]int{2, 8, 32}, maxL)
	start := time.Now()
	results, err := experiments.ConcurrentSessions(ls, sessions, 120, 8, experiments.DefaultNetLatency)
	if err != nil {
		return err
	}
	fmt.Println(experiments.ConcurrentSessionsGrid(results).Render())
	fmt.Printf("(measured in %v; %d sessions, simulated %v/message interconnect)\n\n",
		time.Since(start).Round(time.Millisecond), sessions, experiments.DefaultNetLatency)
	return writeJSON(jsonPath, results)
}

// runAdaptive runs the adaptive-strategy experiment at L=8 (capped by
// maxL) and writes the results to BENCH_adaptive.json or the -json path.
func runAdaptive(maxL int, jsonPath string) error {
	l := 8
	if maxL < l {
		l = maxL
	}
	start := time.Now()
	results, err := experiments.AdaptiveStrategy(l, 200)
	if err != nil {
		return err
	}
	fmt.Println(experiments.AdaptiveGrid(results).Render())
	fmt.Printf("(measured in %v)\n\n", time.Since(start).Round(time.Millisecond))
	if jsonPath == "" {
		jsonPath = "BENCH_adaptive.json"
	}
	return writeJSON(jsonPath, results)
}

// runAsync runs the async-maintenance experiment at L=8 (capped by maxL)
// and writes the results to BENCH_async.json or the -json path.
func runAsync(maxL int, jsonPath string) error {
	l := 8
	if maxL < l {
		l = maxL
	}
	start := time.Now()
	results, err := experiments.AsyncMaintenance(l, 256)
	if err != nil {
		return err
	}
	fmt.Println(experiments.AsyncGrid(results).Render())
	fmt.Printf("(measured in %v; simulated %v/message interconnect)\n\n",
		time.Since(start).Round(time.Millisecond), experiments.DefaultNetLatency)
	if jsonPath == "" {
		jsonPath = "BENCH_async.json"
	}
	return writeJSON(jsonPath, results)
}

// runElastic measures a live 4 -> 5 node expansion under concurrent
// sessions for every maintenance strategy and writes the results to
// BENCH_elastic.json or the -json path.
func runElastic(sessions int, jsonPath string) error {
	start := time.Now()
	results, err := experiments.Elastic(sessions, 300, 8)
	if err != nil {
		return err
	}
	fmt.Println(experiments.ElasticGrid(results).Render())
	fmt.Printf("(measured in %v; %d sessions, simulated %v/message interconnect)\n\n",
		time.Since(start).Round(time.Millisecond), sessions, experiments.DefaultNetLatency)
	if jsonPath == "" {
		jsonPath = "BENCH_elastic.json"
	}
	return writeJSON(jsonPath, results)
}

// runHotpath runs the hot-path experiment at L=8 (capped by maxL):
// snapshot-read throughput under a concurrent write load (locked vs MVCC
// reads, channel vs TCP transport) plus per-statement allocations of the
// parallel maintenance path, compared against the checked-in
// concurrent-sessions baseline when available. Results go to
// BENCH_hotpath.json or the -json path.
func runHotpath(maxL, sessions int, jsonPath, baselinePath string) error {
	l := 8
	if maxL < l {
		l = maxL
	}
	start := time.Now()
	results, err := experiments.Hotpath(l, sessions, 40, 8, sessions, 120, 8)
	if err != nil {
		return err
	}
	if baselinePath != "" {
		if err := fillHotpathBaselines(results.Allocs, baselinePath, l); err != nil {
			fmt.Fprintf(os.Stderr, "jvbench: no allocation baseline (%v); reduction column omitted\n", err)
		}
	}
	fmt.Println(experiments.HotpathReadGrid(results.Reads).Render())
	fmt.Println(experiments.HotpathAllocGrid(results.Allocs).Render())
	fmt.Printf("(measured in %v; %d write sessions, chan transport simulates %v/message)\n\n",
		time.Since(start).Round(time.Millisecond), sessions, experiments.DefaultNetLatency)
	if jsonPath == "" {
		jsonPath = "BENCH_hotpath.json"
	}
	return writeJSON(jsonPath, results)
}

// fillHotpathBaselines joins the hotpath allocation rows with a prior
// concurrent-sessions JSON (the "before" numbers) by (L, strategy).
func fillHotpathBaselines(allocs []experiments.HotpathAllocResult, path string, l int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var prior []experiments.ConcurrentResult
	if err := json.Unmarshal(data, &prior); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	for i := range allocs {
		for _, p := range prior {
			if p.L == l && p.Strategy == allocs[i].Strategy {
				allocs[i].BaselineAllocsPerStmt = p.AllocsPerStmt
				allocs[i].ReductionPct = 100 * (1 - allocs[i].AllocsPerStmt/p.AllocsPerStmt)
			}
		}
	}
	return nil
}

// runManyViews runs the shared-maintenance-DAG experiment at L=8 (capped
// by maxL): per-view baseline vs shared execution over a growing view
// population, writing BENCH_manyviews.json or the -json path. maxViews,
// when non-zero, caps the view-count axis (the CI smoke uses a small cap).
func runManyViews(maxL, maxViews int, jsonPath string) error {
	l := 8
	if maxL < l {
		l = maxL
	}
	counts := experiments.ManyViewsCounts
	if maxViews > 0 {
		var capped []int
		for _, c := range counts {
			if c <= maxViews {
				capped = append(capped, c)
			}
		}
		if len(capped) == 0 {
			capped = []int{maxViews}
		}
		counts = capped
	}
	start := time.Now()
	results, err := experiments.ManyViews(l, 16, counts)
	if err != nil {
		return err
	}
	fmt.Println(experiments.ManyViewsGrid(results).Render())
	fmt.Printf("(measured in %v; identical streams, only plan sharing differs)\n\n",
		time.Since(start).Round(time.Millisecond))
	if jsonPath == "" {
		jsonPath = "BENCH_manyviews.json"
	}
	return writeJSON(jsonPath, results)
}

// runReplica measures write amplification vs crash transparency at
// replication factors 1, 2, 3 on L=8 (capped by maxL) and writes the
// results to BENCH_replica.json or the -json path.
func runReplica(maxL int, jsonPath string) error {
	l := 8
	if maxL < l {
		l = maxL
	}
	start := time.Now()
	results, err := experiments.Replication(l, 64)
	if err != nil {
		return err
	}
	fmt.Println(experiments.ReplicationGrid(results).Render())
	fmt.Printf("(measured in %v; simulated %v/message interconnect)\n\n",
		time.Since(start).Round(time.Millisecond), experiments.DefaultNetLatency)
	if jsonPath == "" {
		jsonPath = "BENCH_replica.json"
	}
	return writeJSON(jsonPath, results)
}

// writeJSON writes results as indented JSON; an empty path writes nothing.
func writeJSON(path string, results any) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// csvOut, when set, receives one CSV file per result grid.
var csvOut string

func run(exp string, measured bool, maxL, scale, deltaA int, faultRate float64) error {
	ls := capLs(experiments.DefaultLs, maxL)
	smallLs := capLs([]int{2, 4, 8}, maxL)
	show := func(g experiments.Grid) {
		fmt.Println(g.Render())
		if csvOut == "" {
			return
		}
		path := filepath.Join(csvOut, g.Slug()+".csv")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jvbench: csv:", err)
			return
		}
		if err := g.WriteCSV(f); err != nil {
			fmt.Fprintln(os.Stderr, "jvbench: csv:", err)
		}
		f.Close()
	}
	showMeasured := func(f func() (experiments.Grid, error)) error {
		start := time.Now()
		g, err := f()
		if err != nil {
			return err
		}
		show(g)
		fmt.Printf("(measured in %v)\n\n", time.Since(start).Round(time.Millisecond))
		return nil
	}

	want := func(name string) bool { return exp == "all" || exp == name }

	if want("table1") {
		show(experiments.Table1(scale))
	}
	if want("fig7") {
		show(experiments.Fig7Model())
		if measured {
			if err := showMeasured(func() (experiments.Grid, error) { return experiments.Fig7Measured(ls) }); err != nil {
				return err
			}
		}
	}
	if want("fig8") {
		show(experiments.Fig8Model())
		if measured {
			ns := []int{1, 2, 4, 8, 16, 32, 64}
			if err := showMeasured(func() (experiments.Grid, error) { return experiments.Fig8Measured(min(32, maxL), ns) }); err != nil {
				return err
			}
		}
	}
	if want("fig9") {
		show(experiments.Fig9Model())
		if measured {
			if err := showMeasured(func() (experiments.Grid, error) { return experiments.Fig9Measured(ls) }); err != nil {
				return err
			}
		}
	}
	if want("fig10") {
		show(experiments.Fig10Model())
		if measured {
			if err := showMeasured(func() (experiments.Grid, error) { return experiments.Fig10Measured(smallLs) }); err != nil {
				return err
			}
		}
	}
	if want("fig11") {
		show(experiments.Fig11Model())
		if measured {
			as := []int{1, 10, 100, 400, 1000, 2000}
			if err := showMeasured(func() (experiments.Grid, error) {
				return experiments.Fig11Measured(min(128, maxL), as)
			}); err != nil {
				return err
			}
		}
	}
	if want("fig12") {
		show(experiments.Fig12Model())
	}
	if want("fig13") {
		show(experiments.Fig13Predicted(smallLs))
	}
	if want("storage") {
		if err := showMeasured(func() (experiments.Grid, error) {
			return experiments.StorageTradeoff(min(8, maxL), experiments.PaperN)
		}); err != nil {
			return err
		}
	}
	if want("buffering") {
		if err := showMeasured(func() (experiments.Grid, error) {
			return experiments.BufferingEffect(min(8, maxL), 2000, 200)
		}); err != nil {
			return err
		}
	}
	if want("network") {
		if err := showMeasured(func() (experiments.Grid, error) {
			return experiments.NetworkSensitivity(min(8, maxL), 200, 100*time.Microsecond)
		}); err != nil {
			return err
		}
	}
	if want("skew") {
		if err := showMeasured(func() (experiments.Grid, error) {
			return experiments.SkewSensitivity(min(16, maxL), 512, 1.5)
		}); err != nil {
			return err
		}
	}
	if want("faults") {
		if err := showMeasured(func() (experiments.Grid, error) {
			return experiments.FaultOverhead(min(8, maxL), 200, faultRate, 1)
		}); err != nil {
			return err
		}
	}
	if want("durability") {
		if err := showMeasured(func() (experiments.Grid, error) {
			return experiments.Durability(min(8, maxL), 200, 64)
		}); err != nil {
			return err
		}
	}
	if want("fig14") {
		start := time.Now()
		results, err := experiments.Fig14Measured(smallLs, scale, deltaA)
		if err != nil {
			return err
		}
		show(experiments.Fig14Grid(results))
		fmt.Printf("(measured in %v; includes the global-index method Teradata could not run)\n\n",
			time.Since(start).Round(time.Millisecond))
	}
	switch exp {
	case "all", "table1", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "storage", "skew", "buffering", "network", "faults", "durability":
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}

func capLs(ls []int, maxL int) []int {
	var out []int
	for _, l := range ls {
		if l <= maxL {
			out = append(out, l)
		}
	}
	if len(out) == 0 {
		out = []int{1}
	}
	return out
}
