package maintain

import (
	"testing"

	"joinview/internal/catalog"
	"joinview/internal/hashpart"
	"joinview/internal/netsim"
	"joinview/internal/node"
	"joinview/internal/plan"
	"joinview/internal/stats"
	"joinview/internal/storage"
	"joinview/internal/types"
)

// testEnv wires a small two-table world by hand: relation a(k, x) and
// b(k, y) joined on k, with a view partitioned on a.k. b is partitioned on
// y (not the join attribute), so the AR/GI strategies need structures.
type testEnv struct {
	env   Env
	view  *catalog.View
	nodes []*node.DataNode
}

func newTestEnv(t *testing.T, l int, strategy catalog.Strategy) *testEnv {
	t.Helper()
	cat := catalog.New()
	aSchema := types.NewSchema(
		types.Column{Name: "k", Kind: types.KindInt},
		types.Column{Name: "x", Kind: types.KindInt},
	)
	bSchema := types.NewSchema(
		types.Column{Name: "k", Kind: types.KindInt},
		types.Column{Name: "y", Kind: types.KindInt},
	)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(cat.AddTable(&catalog.Table{Name: "a", Schema: aSchema, PartitionCol: "k", ClusterCol: "k"}))
	must(cat.AddTable(&catalog.Table{
		Name: "b", Schema: bSchema, PartitionCol: "y", ClusterCol: "y",
		Indexes: []catalog.Index{{Name: "ix_b_k", Col: "k"}},
	}))
	view := &catalog.View{
		Name:   "v",
		Tables: []string{"a", "b"},
		Joins:  []catalog.JoinPred{{Left: "a", LeftCol: "k", Right: "b", RightCol: "k"}},
		Out: []catalog.OutCol{
			{Table: "a", Col: "k"}, {Table: "a", Col: "x"}, {Table: "b", Col: "y"},
		},
		PartitionTable: "a", PartitionCol: "k",
		Strategy: strategy,
	}
	must(cat.AddView(view))
	must(cat.AddAuxRel(&catalog.AuxRel{Name: "ar_b_k", Table: "b", PartitionCol: "k"}))
	must(cat.AddGlobalIndex(&catalog.GlobalIndex{Name: "gi_b_k", Table: "b", Col: "k"}))

	nodes := make([]*node.DataNode, l)
	handlers := make([]netsim.Handler, l)
	for i := range nodes {
		nodes[i] = node.New(i, 10)
		handlers[i] = nodes[i].Handler()
	}
	tr := netsim.NewDirect(handlers)
	t.Cleanup(tr.Close)
	env := Env{T: tr, Part: hashpart.New(l), Cat: cat}

	// Allocate fragments everywhere.
	mustB := func(req any) {
		t.Helper()
		if _, err := tr.Broadcast(netsim.Coordinator, req); err != nil {
			t.Fatal(err)
		}
	}
	mustB(node.CreateFragment{Name: "a", Schema: aSchema, ClusterCol: "k"})
	mustB(node.CreateFragment{Name: "b", Schema: bSchema, ClusterCol: "y"})
	mustB(node.CreateIndex{Frag: "b", Name: "ix_b_k", Col: "k"})
	ar, _ := cat.AuxRel("ar_b_k")
	mustB(node.CreateFragment{Name: "ar_b_k", Schema: ar.Schema, ClusterCol: "k"})
	mustB(node.CreateGlobalIndex{Name: "gi_b_k"})
	mustB(node.CreateFragment{Name: "v", Schema: view.Schema, ClusterCol: "a.k"})

	return &testEnv{env: env, view: view, nodes: nodes}
}

// loadB inserts b tuples through all the structures (base by y, AR by k,
// GI entry at k's home node).
func (te *testEnv) loadB(t *testing.T, rows [][2]int64) {
	t.Helper()
	for _, r := range rows {
		tup := types.Tuple{types.Int(r[0]), types.Int(r[1])}
		home := te.env.Part.NodeFor(types.Int(r[1]))
		resp, err := te.env.T.Call(netsim.Coordinator, home, node.Insert{Frag: "b", Tuples: []types.Tuple{tup}})
		if err != nil {
			t.Fatal(err)
		}
		row := resp.(node.InsertResult).Rows[0]
		arHome := te.env.Part.NodeFor(types.Int(r[0]))
		if _, err := te.env.T.Call(netsim.Coordinator, arHome, node.Insert{Frag: "ar_b_k", Tuples: []types.Tuple{tup}}); err != nil {
			t.Fatal(err)
		}
		if _, err := te.env.T.Call(netsim.Coordinator, arHome, node.GIInsert{
			GI: "gi_b_k", Val: types.Int(r[0]),
			G: mkGRID(home, row),
		}); err != nil {
			t.Fatal(err)
		}
	}
}

func (te *testEnv) plan(t *testing.T, strategy catalog.Strategy) *plan.Plan {
	t.Helper()
	p, err := plan.Build(te.env.Cat, stats.New(), te.view, "a", strategy)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestComputeViewDeltaAllStrategies(t *testing.T) {
	for _, strat := range []catalog.Strategy{catalog.StrategyNaive, catalog.StrategyAuxRel, catalog.StrategyGlobalIndex} {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			te := newTestEnv(t, 4, strat)
			te.loadB(t, [][2]int64{{1, 10}, {1, 11}, {2, 20}, {3, 30}})
			delta := []types.Tuple{
				{types.Int(1), types.Int(100)}, // matches two b rows
				{types.Int(9), types.Int(900)}, // matches none
			}
			out, res, err := ComputeViewDelta(te.env, te.plan(t, strat), delta, node.AlgoIndex)
			if err != nil {
				t.Fatal(err)
			}
			if len(out) != 2 || res.ViewTuples != 2 {
				t.Fatalf("delta = %v", out)
			}
			// Output schema: a.k, a.x, b.y.
			for _, tup := range out {
				if len(tup) != 3 || tup[0].I != 1 || tup[1].I != 100 {
					t.Errorf("bad view tuple %v", tup)
				}
			}
			if out[0][2].I+out[1][2].I != 21 {
				t.Errorf("expected y values 10 and 11, got %v", out)
			}
			if len(res.Steps) != 1 || res.Steps[0].Table != "b" {
				t.Errorf("trace = %+v", res.Steps)
			}
		})
	}
}

func TestStepTraceNodesProbed(t *testing.T) {
	const l = 4
	delta := []types.Tuple{{types.Int(1), types.Int(0)}}

	teNaive := newTestEnv(t, l, catalog.StrategyNaive)
	teNaive.loadB(t, [][2]int64{{1, 10}})
	_, res, err := ComputeViewDelta(teNaive.env, teNaive.plan(t, catalog.StrategyNaive), delta, node.AlgoIndex)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps[0].NodesProbed != l {
		t.Errorf("naive probed %d nodes, want %d", res.Steps[0].NodesProbed, l)
	}

	teAux := newTestEnv(t, l, catalog.StrategyAuxRel)
	teAux.loadB(t, [][2]int64{{1, 10}})
	_, res, err = ComputeViewDelta(teAux.env, teAux.plan(t, catalog.StrategyAuxRel), delta, node.AlgoIndex)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps[0].NodesProbed != 1 {
		t.Errorf("AR probed %d nodes, want 1", res.Steps[0].NodesProbed)
	}

	teGI := newTestEnv(t, l, catalog.StrategyGlobalIndex)
	teGI.loadB(t, [][2]int64{{1, 10}, {1, 11}})
	_, res, err = ComputeViewDelta(teGI.env, teGI.plan(t, catalog.StrategyGlobalIndex), delta, node.AlgoIndex)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps[0].NodesProbed < 1 || res.Steps[0].NodesProbed > 2 {
		t.Errorf("GI probed %d nodes, want K in [1,2]", res.Steps[0].NodesProbed)
	}
}

func TestEmptyDelta(t *testing.T) {
	te := newTestEnv(t, 2, catalog.StrategyNaive)
	out, res, err := ComputeViewDelta(te.env, te.plan(t, catalog.StrategyNaive), nil, node.AlgoIndex)
	if err != nil || out != nil || res.ViewTuples != 0 {
		t.Errorf("empty delta = %v, %+v, %v", out, res, err)
	}
	if err := ApplyToView(te.env, te.view, nil, OpInsert); err != nil {
		t.Errorf("applying empty delta: %v", err)
	}
}

func TestApplyToViewInsertDelete(t *testing.T) {
	te := newTestEnv(t, 4, catalog.StrategyNaive)
	tuples := []types.Tuple{
		{types.Int(1), types.Int(100), types.Int(10)},
		{types.Int(2), types.Int(200), types.Int(20)},
		{types.Int(2), types.Int(200), types.Int(20)}, // duplicate
	}
	if err := ApplyToView(te.env, te.view, tuples, OpInsert); err != nil {
		t.Fatal(err)
	}
	count := te.countView(t)
	if count != 3 {
		t.Fatalf("view has %d rows after insert, want 3", count)
	}
	// Delete one instance of the duplicate.
	if err := ApplyToView(te.env, te.view, tuples[1:2], OpDelete); err != nil {
		t.Fatal(err)
	}
	if got := te.countView(t); got != 2 {
		t.Fatalf("view has %d rows after delete, want 2", got)
	}
}

func (te *testEnv) countView(t *testing.T) int {
	t.Helper()
	resps, err := te.env.T.Broadcast(netsim.Coordinator, node.AllRows{Frag: "v"})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, r := range resps {
		n += len(r.(node.RowsResult).Tuples)
	}
	return n
}

func TestOpString(t *testing.T) {
	if OpInsert.String() != "insert" || OpDelete.String() != "delete" {
		t.Error("Op strings wrong")
	}
}

func mkGRID(node int, row storage.RowID) storage.GlobalRowID {
	return storage.GlobalRowID{Node: int32(node), Row: row}
}
