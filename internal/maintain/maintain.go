// Package maintain executes view-maintenance plans: it is the engine of
// the paper's three methods. Given a delta on a base relation and a plan
// from internal/plan, it ships the delta across the cluster — broadcasting
// (naive), hash-routing (auxiliary relation) or via global-index lookups —
// joins it step by step against the other base relations' fragments or
// auxiliary structures, projects the result to the view's output columns,
// and applies it to the view's partitions.
//
// All orchestration runs at the coordinator; nodes only execute local
// operations. Message accounting passes the logical source node as `from`
// so the transport's SEND counters match the paper's message-flow figures.
package maintain

import (
	"fmt"

	"joinview/internal/catalog"
	"joinview/internal/expr"
	"joinview/internal/gindex"
	"joinview/internal/hashpart"
	"joinview/internal/netsim"
	"joinview/internal/node"
	"joinview/internal/plan"
	"joinview/internal/types"
)

// Env bundles what the executor needs from the cluster.
type Env struct {
	T    netsim.Transport
	Part *hashpart.Partitioner
	Cat  *catalog.Catalog
	// Parallel dispatches per-node fan-outs concurrently through the
	// scatter-gather dispatcher (results still gather in node order, so
	// metric traces are unchanged). Must stay false on the Direct
	// transport, whose handlers are not goroutine-safe.
	Parallel bool
	// Workers bounds in-flight calls per fan-out (0 = one per node).
	Workers int
	// WriteEpoch and GCFloor, when set, stamp view mutations for MVCC
	// snapshot reads: WriteEpoch(frag) is the epoch the current statement
	// writes at, GCFloor(frag) the version-log truncation floor piggybacked
	// on the request. Nil means unversioned (epoch 0 on the wire).
	WriteEpoch func(frag string) uint64
	GCFloor    func(frag string) uint64
}

// stamps returns the (epoch, gc floor) pair for one fragment, zero when the
// env is unversioned.
func (env Env) stamps(frag string) (uint64, uint64) {
	var ep, fl uint64
	if env.WriteEpoch != nil {
		ep = env.WriteEpoch(frag)
	}
	if env.GCFloor != nil {
		fl = env.GCFloor(frag)
	}
	return ep, fl
}

// scatter runs the calls through the env's transport and dispatch policy.
func (env Env) scatter(calls []netsim.Call) ([]any, error) {
	return netsim.ScatterCalls(env.T, env.Parallel, env.Workers, calls)
}

// Op distinguishes delta directions.
type Op uint8

// Delta operations.
const (
	OpInsert Op = iota
	OpDelete
)

func (o Op) String() string {
	if o == OpInsert {
		return "insert"
	}
	return "delete"
}

// StepTrace records what one plan step did, for experiments that verify
// "the work needs to be done at (i) only one node ... (iii) all the nodes".
type StepTrace struct {
	Table        string
	Via          plan.Via
	NodesProbed  int // nodes that executed a probe/fetch for this step
	TuplesJoined int // intermediate size after the step
}

// Result reports a maintenance execution.
type Result struct {
	// ViewTuples is the number of view-schema tuples produced (the
	// paper's N per delta tuple, summed over the delta).
	ViewTuples int
	Steps      []StepTrace
}

// ComputeViewDelta runs plan p over delta tuples (in the updated table's
// base schema) and returns the view-schema tuples the delta induces, plus
// a trace. algo selects the per-node join algorithm (AlgoAuto lets each
// node apply the §3.2 index/sort-merge crossover using the plan's fan-out
// estimates).
func ComputeViewDelta(env Env, p *plan.Plan, delta []types.Tuple, algo node.Algo) ([]types.Tuple, *Result, error) {
	if len(delta) == 0 {
		return nil, &Result{}, nil
	}
	cur := delta
	// The plan carries every intermediate schema and join-key position,
	// resolved once at build time; execution only walks them.
	curSchema := p.DeltaSchema
	var err error
	if curSchema == nil {
		updated, terr := env.Cat.Table(p.Table)
		if terr != nil {
			return nil, nil, terr
		}
		curSchema = updated.Schema.Prefixed(p.Table)
	}
	res := &Result{}

	for _, step := range p.Steps {
		var next []types.Tuple
		var trace StepTrace
		next, trace, err = ExecStep(env, step, cur, curSchema, algo)
		if err != nil {
			return nil, nil, err
		}
		curSchema = StepOutSchema(step, curSchema)
		cur = next
		res.Steps = append(res.Steps, trace)
		if len(cur) == 0 {
			break // no matches anywhere: the view delta is empty
		}
	}

	out, err := FinishDelta(p, cur, curSchema)
	if err != nil {
		return nil, nil, err
	}
	res.ViewTuples = len(out)
	return out, res, nil
}

// ExecStep runs one delta-join step over the current intermediate (cur,
// described by curSchema) and returns the joined result plus its trace.
// It is the unit the shared-DAG executor memoizes: a step's output depends
// only on its input and the step's structural identity (plan.Step.ChainKey),
// never on which view's plan it came from.
func ExecStep(env Env, step plan.Step, cur []types.Tuple, curSchema *types.Schema, algo node.Algo) ([]types.Tuple, StepTrace, error) {
	keyIdx := step.DeltaKey
	if step.OutSchema == nil {
		keyIdx = curSchema.ColIndex(step.DeltaCol)
	}
	if keyIdx < 0 {
		return nil, StepTrace{}, fmt.Errorf("maintain: intermediate schema %v lacks %s", curSchema.Names(), step.DeltaCol)
	}
	var next []types.Tuple
	var probed int
	var err error
	switch step.Via {
	case plan.ViaBroadcast:
		next, probed, err = broadcastStep(env, step, cur, keyIdx, algo)
	case plan.ViaRoute:
		next, probed, err = routeStep(env, step, cur, keyIdx, algo)
	case plan.ViaGlobalIndex:
		next, probed, err = globalIndexStep(env, step, cur, keyIdx)
	default:
		err = fmt.Errorf("maintain: unknown step mode %v", step.Via)
	}
	if err != nil {
		return nil, StepTrace{}, fmt.Errorf("maintain: step %s (%v): %w", step.Table, step.Via, err)
	}
	return next, StepTrace{
		Table:        step.Table,
		Via:          step.Via,
		NodesProbed:  probed,
		TuplesJoined: len(next),
	}, nil
}

// StepOutSchema returns the intermediate schema after the step, using the
// plan-time precompute when present.
func StepOutSchema(step plan.Step, curSchema *types.Schema) *types.Schema {
	if step.OutSchema != nil {
		return step.OutSchema
	}
	return curSchema.Concat(step.FragSchema.Prefixed(step.Table))
}

// FinishDelta turns a fully joined intermediate into view-schema tuples:
// residual join predicates (the extra edges of a cyclic join graph) filter
// the rows, then the view's maintenance projection shapes them. This is
// the per-view tail of a maintenance plan — the part a shared chain result
// cannot cover.
func FinishDelta(p *plan.Plan, cur []types.Tuple, curSchema *types.Schema) ([]types.Tuple, error) {
	cur, err := FilterResidual(cur, curSchema, p.Residual)
	if err != nil {
		return nil, err
	}

	// Project the final intermediate onto the maintenance columns (output
	// columns; plus sum measures for aggregate views). Apply builds each
	// projected tuple fresh (values are immutable), so the output needs no
	// defensive clone.
	proj := expr.NewProjection(p.View.MaintenanceProjection())
	out := make([]types.Tuple, 0, len(cur))
	for _, t := range cur {
		pt, err := proj.Apply(curSchema, t)
		if err != nil {
			return nil, fmt.Errorf("maintain: projecting to view %q: %w", p.View.Name, err)
		}
		out = append(out, pt)
	}
	return out, nil
}

// FilterResidual keeps the tuples satisfying every residual equijoin
// predicate; schema column names are the qualified "table.col" form.
func FilterResidual(tuples []types.Tuple, schema *types.Schema, residual []catalog.JoinPred) ([]types.Tuple, error) {
	if len(residual) == 0 {
		return tuples, nil
	}
	type pair struct{ l, r int }
	idx := make([]pair, len(residual))
	for i, j := range residual {
		l := schema.ColIndex(j.Left + "." + j.LeftCol)
		r := schema.ColIndex(j.Right + "." + j.RightCol)
		if l < 0 || r < 0 {
			return nil, fmt.Errorf("maintain: residual predicate %s.%s = %s.%s not resolvable in %v",
				j.Left, j.LeftCol, j.Right, j.RightCol, schema.Names())
		}
		idx[i] = pair{l, r}
	}
	out := tuples[:0:0]
	for _, t := range tuples {
		ok := true
		for _, p := range idx {
			if !types.Equal(t[p.l], t[p.r]) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, t)
		}
	}
	return out, nil
}

// broadcastStep ships the whole intermediate to every node (naive method,
// Figure 2): each node probes its local base fragment.
func broadcastStep(env Env, step plan.Step, cur []types.Tuple, keyIdx int, algo node.Algo) ([]types.Tuple, int, error) {
	resps, err := env.T.Broadcast(netsim.Coordinator, node.Probe{
		Frag:       step.Frag,
		FragCol:    step.FragCol,
		Delta:      cur,
		DeltaKey:   keyIdx,
		Algo:       algo,
		FanoutHint: step.Fanout,
	})
	if err != nil {
		return nil, 0, err
	}
	return gatherProbed(resps), len(resps), nil
}

// gatherProbed concatenates the Probed responses into one exactly-sized
// slice.
func gatherProbed(resps []any) []types.Tuple {
	total := 0
	for _, r := range resps {
		total += len(r.(node.Probed).Tuples)
	}
	out := make([]types.Tuple, 0, total)
	for _, r := range resps {
		out = append(out, r.(node.Probed).Tuples...)
	}
	return out
}

// routeStep hash-routes each intermediate tuple to the node owning its
// join-attribute value (auxiliary-relation method, Figure 4, or a base
// relation partitioned on the join attribute, Figure 1) and probes there.
func routeStep(env Env, step plan.Step, cur []types.Tuple, keyIdx int, algo node.Algo) ([]types.Tuple, int, error) {
	buckets := env.Part.SpreadIndex(keyIdx, cur)
	var calls []netsim.Call
	for n, bucket := range buckets {
		if len(bucket) == 0 {
			continue
		}
		calls = append(calls, netsim.Call{From: netsim.Coordinator, To: n, Req: node.Probe{
			Frag:       step.Frag,
			FragCol:    step.FragCol,
			Delta:      bucket,
			DeltaKey:   keyIdx,
			Algo:       algo,
			FanoutHint: step.Fanout,
		}})
	}
	resps, err := env.scatter(calls)
	if err != nil {
		return nil, 0, err
	}
	return gatherProbed(resps), len(calls), nil
}

// globalIndexStep implements Figure 6: per intermediate tuple, route to the
// global-index home node, look up global row ids, and fetch-join at the K
// nodes holding matches.
func globalIndexStep(env Env, step plan.Step, cur []types.Tuple, keyIdx int) ([]types.Tuple, int, error) {
	// One scatter task per delta tuple: the lookup-then-fetch chain of a
	// tuple is inherently sequential (the fetch targets come out of the
	// lookup), but distinct tuples are independent. Per-tuple results and
	// probed-node sets land in delta order, so the gathered output is
	// identical to the serial loop's.
	outs := make([][]types.Tuple, len(cur))
	probed := make([][]int, len(cur))
	err := netsim.ScatterFunc(env.Parallel, env.Workers, len(cur), func(i int) error {
		d := cur[i]
		home := env.Part.NodeFor(d[keyIdx])
		resp, err := env.T.Call(netsim.Coordinator, home, node.GILookup{GI: step.GI, Val: d[keyIdx]})
		if err != nil {
			return err
		}
		groups := gindex.GroupByNode(resp.(node.GIRows).IDs)
		for _, g := range groups {
			// The delta tuple and row-id list travel from the GI home
			// node to the owning node (the paper's K SENDs).
			fresp, err := env.T.Call(home, g.Node, node.FetchJoin{
				Frag:    step.Frag,
				FragCol: step.FragCol,
				Rows:    g.Rows,
				Delta:   d,
			})
			if err != nil {
				return err
			}
			outs[i] = append(outs[i], fresp.(node.Probed).Tuples...)
			probed[i] = append(probed[i], g.Node)
		}
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	var out []types.Tuple
	probedNodes := map[int]bool{}
	for i := range cur {
		out = append(out, outs[i]...)
		for _, n := range probed[i] {
			probedNodes[n] = true
		}
	}
	return out, len(probedNodes), nil
}

// ApplyToView routes maintenance tuples to the view's partitions and
// applies them: plain views insert or delete the rows (bag semantics: a
// delete removes one stored instance per tuple); aggregate views fold the
// rows into signed group deltas first.
func ApplyToView(env Env, v *catalog.View, tuples []types.Tuple, op Op) error {
	if len(tuples) == 0 {
		return nil
	}
	if v.IsAggregate() {
		groups, err := FoldAggDeltas(v, tuples, op)
		if err != nil {
			return err
		}
		return applyAggToView(env, v, groups, op)
	}
	partCol := v.PartitionQualified()
	idx := v.Schema.ColIndex(partCol)
	if idx < 0 {
		return fmt.Errorf("maintain: view %q schema lacks partition column %s", v.Name, partCol)
	}
	buckets := env.Part.SpreadIndex(idx, tuples)
	ep, fl := env.stamps(v.Name)
	var calls []netsim.Call
	for n, bucket := range buckets {
		if len(bucket) == 0 {
			continue
		}
		var req any
		if op == OpInsert {
			req = node.Insert{Frag: v.Name, Tuples: bucket, Epoch: ep, GCFloor: fl}
		} else {
			req = node.DeleteMatch{Frag: v.Name, HintCol: partCol, Tuples: bucket, Epoch: ep, GCFloor: fl}
		}
		calls = append(calls, netsim.Call{From: netsim.Coordinator, To: n, Req: req})
	}
	if _, err := env.scatter(calls); err != nil {
		return fmt.Errorf("maintain: applying %v to view %q: %w", op, v.Name, err)
	}
	return nil
}
