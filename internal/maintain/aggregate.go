package maintain

import (
	"fmt"

	"joinview/internal/catalog"
	"joinview/internal/netsim"
	"joinview/internal/node"
	"joinview/internal/types"
)

// Aggregate join views (the companion work of the paper's authors): the
// view stores one row per group — the GROUP BY columns followed by COUNT
// and SUM aggregates. A join delta folds into signed per-group deltas
// which the owning nodes apply: groups appear when their first member
// arrives and disappear when the count returns to zero.

// AggGroup is one group's signed delta.
type AggGroup struct {
	// Key holds the group-by column values.
	Key types.Tuple
	// Deltas holds one signed value per aggregate column (count deltas
	// are Int; sum deltas carry the measure's kind).
	Deltas types.Tuple
}

// FoldAggDeltas folds raw join rows (in the view's maintenance projection:
// group columns first, then sum measures) into per-group deltas, negated
// for deletes. Group output order is first-appearance, so execution stays
// deterministic.
func FoldAggDeltas(v *catalog.View, rows []types.Tuple, op Op) ([]AggGroup, error) {
	if !v.IsAggregate() {
		return nil, fmt.Errorf("maintain: view %q is not an aggregate view", v.Name)
	}
	proj := v.MaintenanceProjection()
	// Map each sum aggregate to its measure position in the projection.
	sumPos := make([]int, len(v.Aggs))
	for i, a := range v.Aggs {
		sumPos[i] = -1
		if a.Func != "sum" {
			continue
		}
		q := a.Table + "." + a.Col
		for j, name := range proj {
			if name == q {
				sumPos[i] = j
				break
			}
		}
		if sumPos[i] < 0 {
			return nil, fmt.Errorf("maintain: view %q: measure %s missing from projection", v.Name, q)
		}
	}
	sign := int64(1)
	if op == OpDelete {
		sign = -1
	}
	nGroup := len(v.Out)
	byKey := map[uint64]*AggGroup{}
	var order []uint64
	for _, row := range rows {
		if len(row) < nGroup {
			return nil, fmt.Errorf("maintain: view %q: delta row arity %d below group arity %d", v.Name, len(row), nGroup)
		}
		key := row[:nGroup]
		h := types.Tuple(key).Hash()
		g, ok := byKey[h]
		if !ok {
			g = &AggGroup{Key: types.Tuple(key).Clone(), Deltas: make(types.Tuple, len(v.Aggs))}
			for i, a := range v.Aggs {
				if a.Func == "count" {
					g.Deltas[i] = types.Int(0)
				} else {
					// Zero of the aggregate column's kind.
					kind := v.Schema.Cols[nGroup+i].Kind
					if kind == types.KindFloat {
						g.Deltas[i] = types.Float(0)
					} else {
						g.Deltas[i] = types.Int(0)
					}
				}
			}
			byKey[h] = g
			order = append(order, h)
		}
		for i, a := range v.Aggs {
			if a.Func == "count" {
				g.Deltas[i] = types.Int(g.Deltas[i].I + sign)
				continue
			}
			m := row[sumPos[i]]
			if m.IsNull() {
				continue // SQL sum skips NULLs
			}
			var err error
			g.Deltas[i], err = addSigned(g.Deltas[i], m, sign)
			if err != nil {
				return nil, fmt.Errorf("maintain: view %q: %w", v.Name, err)
			}
		}
	}
	out := make([]AggGroup, 0, len(order))
	for _, h := range order {
		out = append(out, *byKey[h])
	}
	return out, nil
}

// addSigned returns acc + sign*m, preserving the accumulator's kind.
func addSigned(acc, m types.Value, sign int64) (types.Value, error) {
	switch acc.K {
	case types.KindInt:
		switch m.K {
		case types.KindInt:
			return types.Int(acc.I + sign*m.I), nil
		case types.KindFloat:
			return types.Float(float64(acc.I) + float64(sign)*m.F), nil
		}
	case types.KindFloat:
		switch m.K {
		case types.KindInt:
			return types.Float(acc.F + float64(sign*m.I)), nil
		case types.KindFloat:
			return types.Float(acc.F + float64(sign)*m.F), nil
		}
	}
	return types.Value{}, fmt.Errorf("cannot add %v to accumulator %v", m, acc)
}

// applyAggToView routes folded group deltas to the view's partitions and
// applies them.
func applyAggToView(env Env, v *catalog.View, groups []AggGroup, op Op) error {
	if len(groups) == 0 {
		return nil
	}
	partCol := v.PartitionQualified()
	idx := v.Schema.ColIndex(partCol)
	if idx < 0 || idx >= len(v.Out) {
		return fmt.Errorf("maintain: aggregate view %q must be partitioned on a group column", v.Name)
	}
	_ = op // sign already folded into the deltas
	buckets := make([][]AggGroup, env.Part.Nodes())
	for _, g := range groups {
		n := env.Part.NodeFor(g.Key[idx])
		buckets[n] = append(buckets[n], g)
	}
	ep, fl := env.stamps(v.Name)
	var calls []netsim.Call
	for n, bucket := range buckets {
		if len(bucket) == 0 {
			continue
		}
		req := node.AggApply{
			Frag:     v.Name,
			HintCol:  partCol,
			GroupLen: len(v.Out),
			CountPos: v.CountIndex() - len(v.Out),
			Epoch:    ep,
			GCFloor:  fl,
		}
		for _, g := range bucket {
			req.Keys = append(req.Keys, g.Key)
			req.Deltas = append(req.Deltas, g.Deltas)
		}
		calls = append(calls, netsim.Call{From: netsim.Coordinator, To: n, Req: req})
	}
	if _, err := env.scatter(calls); err != nil {
		return fmt.Errorf("maintain: applying aggregate delta to %q: %w", v.Name, err)
	}
	return nil
}

// FoldAggRows materializes full group rows (key ++ aggregates) from raw
// join rows — the from-scratch evaluation used by view backfill and the
// consistency checker.
func FoldAggRows(v *catalog.View, rows []types.Tuple) ([]types.Tuple, error) {
	groups, err := FoldAggDeltas(v, rows, OpInsert)
	if err != nil {
		return nil, err
	}
	out := make([]types.Tuple, 0, len(groups))
	for _, g := range groups {
		out = append(out, g.Key.Concat(g.Deltas))
	}
	return out, nil
}
