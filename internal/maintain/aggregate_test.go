package maintain

import (
	"testing"

	"joinview/internal/catalog"
	"joinview/internal/types"
)

// aggCatalog builds a two-table catalog with an aggregate view grouped on
// a.g summing b.m.
func aggCatalog(t *testing.T) (*catalog.Catalog, *catalog.View) {
	t.Helper()
	cat := catalog.New()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(cat.AddTable(&catalog.Table{
		Name: "a",
		Schema: types.NewSchema(
			types.Column{Name: "g", Kind: types.KindInt},
			types.Column{Name: "k", Kind: types.KindInt},
		),
		PartitionCol: "g",
	}))
	must(cat.AddTable(&catalog.Table{
		Name: "b",
		Schema: types.NewSchema(
			types.Column{Name: "k", Kind: types.KindInt},
			types.Column{Name: "m", Kind: types.KindFloat},
		),
		PartitionCol: "k",
	}))
	v := &catalog.View{
		Name:   "av",
		Tables: []string{"a", "b"},
		Joins:  []catalog.JoinPred{{Left: "a", LeftCol: "k", Right: "b", RightCol: "k"}},
		Out:    []catalog.OutCol{{Table: "a", Col: "g"}},
		Aggs: []catalog.AggSpec{
			{Func: "count"},
			{Func: "sum", Table: "b", Col: "m"},
		},
		PartitionTable: "a", PartitionCol: "g",
	}
	must(cat.AddView(v))
	return cat, v
}

func TestMaintenanceProjection(t *testing.T) {
	_, v := aggCatalog(t)
	proj := v.MaintenanceProjection()
	if len(proj) != 2 || proj[0] != "a.g" || proj[1] != "b.m" {
		t.Errorf("projection = %v", proj)
	}
	if got := v.MeasureColsOf("b"); len(got) != 1 || got[0] != "m" {
		t.Errorf("MeasureColsOf = %v", got)
	}
	if got := v.MeasureColsOf("a"); len(got) != 0 {
		t.Errorf("MeasureColsOf(a) = %v", got)
	}
}

func TestFoldAggDeltas(t *testing.T) {
	_, v := aggCatalog(t)
	// Rows in the maintenance projection (a.g, b.m).
	rows := []types.Tuple{
		{types.Int(1), types.Float(2.5)},
		{types.Int(1), types.Float(0.5)},
		{types.Int(2), types.Float(4)},
		{types.Int(1), types.Null()}, // NULL measure: counted, not summed
	}
	groups, err := FoldAggDeltas(v, rows, OpInsert)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("groups = %+v", groups)
	}
	g1 := groups[0]
	if g1.Key[0].I != 1 || g1.Deltas[0].I != 3 || g1.Deltas[1].F != 3 {
		t.Errorf("group 1 = %+v", g1)
	}
	g2 := groups[1]
	if g2.Key[0].I != 2 || g2.Deltas[0].I != 1 || g2.Deltas[1].F != 4 {
		t.Errorf("group 2 = %+v", g2)
	}
	// Deletes negate.
	neg, err := FoldAggDeltas(v, rows[:1], OpDelete)
	if err != nil {
		t.Fatal(err)
	}
	if neg[0].Deltas[0].I != -1 || neg[0].Deltas[1].F != -2.5 {
		t.Errorf("negated = %+v", neg[0])
	}
}

func TestFoldAggRows(t *testing.T) {
	_, v := aggCatalog(t)
	rows, err := FoldAggRows(v, []types.Tuple{
		{types.Int(7), types.Float(1)},
		{types.Int(7), types.Float(2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || len(rows[0]) != 3 {
		t.Fatalf("folded = %v", rows)
	}
	if rows[0][0].I != 7 || rows[0][1].I != 2 || rows[0][2].F != 3 {
		t.Errorf("folded row = %v", rows[0])
	}
}

func TestFoldAggErrors(t *testing.T) {
	cat, v := aggCatalog(t)
	_ = cat
	// Not an aggregate view.
	plain := &catalog.View{Name: "p"}
	if _, err := FoldAggDeltas(plain, nil, OpInsert); err == nil {
		t.Error("folding a plain view should fail")
	}
	// Short row.
	if _, err := FoldAggDeltas(v, []types.Tuple{{}}, OpInsert); err == nil {
		t.Error("short delta row should fail")
	}
	// Non-numeric measure value.
	if _, err := FoldAggDeltas(v, []types.Tuple{{types.Int(1), types.String("x")}}, OpInsert); err == nil {
		t.Error("string measure should fail")
	}
}
