package hashpart

import (
	"testing"
	"testing/quick"

	"joinview/internal/types"
)

func TestNodeForDeterministic(t *testing.T) {
	p := New(8)
	f := func(v int64) bool {
		a := p.NodeFor(types.Int(v))
		b := p.NodeFor(types.Int(v))
		return a == b && a >= 0 && a < 8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNodeForSpreads(t *testing.T) {
	p := New(16)
	seen := map[int]int{}
	for i := int64(0); i < 10000; i++ {
		seen[p.NodeFor(types.Int(i))]++
	}
	if len(seen) != 16 {
		t.Fatalf("only %d of 16 nodes used", len(seen))
	}
	for node, n := range seen {
		// Expect ~625 per node; allow wide tolerance.
		if n < 400 || n > 900 {
			t.Errorf("node %d got %d of 10000 tuples: badly skewed", node, n)
		}
	}
}

func TestSingleNodeCluster(t *testing.T) {
	p := New(1)
	if p.NodeFor(types.String("anything")) != 0 {
		t.Error("single-node partitioner must map to node 0")
	}
}

func TestNewPanicsOnBadCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) should panic")
		}
	}()
	New(0)
}

func TestNodeForTupleAndSpread(t *testing.T) {
	s := types.NewSchema(
		types.Column{Name: "k", Kind: types.KindInt},
		types.Column{Name: "v", Kind: types.KindString},
	)
	p := New(4)
	tup := types.Tuple{types.Int(42), types.String("x")}
	n, err := p.NodeForTuple(s, "k", tup)
	if err != nil {
		t.Fatal(err)
	}
	if n != p.NodeFor(types.Int(42)) {
		t.Error("NodeForTuple disagrees with NodeFor")
	}
	if _, err := p.NodeForTuple(s, "zz", tup); err == nil {
		t.Error("unknown column should fail")
	}

	tuples := make([]types.Tuple, 100)
	for i := range tuples {
		tuples[i] = types.Tuple{types.Int(int64(i)), types.String("t")}
	}
	buckets, err := p.Spread(s, "k", tuples)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for node, b := range buckets {
		total += len(b)
		for _, tup := range b {
			if p.NodeFor(tup[0]) != node {
				t.Fatalf("tuple %v in wrong bucket %d", tup, node)
			}
		}
	}
	if total != 100 {
		t.Fatalf("spread lost tuples: %d", total)
	}
	if _, err := p.Spread(s, "zz", tuples); err == nil {
		t.Error("spread on unknown column should fail")
	}
}

// BenchmarkSpread tracks the bucketing allocation cost (run with
// -benchmem): the two-pass exact-size layout should allocate one backing
// array plus the bucket headers per call, independent of tuple count, with
// the scratch home/count slices pooled across calls.
func BenchmarkSpread(b *testing.B) {
	p := New(8)
	schema := types.NewSchema(
		types.Column{Name: "id", Kind: types.KindInt},
		types.Column{Name: "c", Kind: types.KindInt},
	)
	tuples := make([]types.Tuple, 512)
	for i := range tuples {
		tuples[i] = types.Tuple{types.Int(int64(i)), types.Int(int64(i % 64))}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Spread(schema, "id", tuples); err != nil {
			b.Fatal(err)
		}
	}
}

func TestWithReplicasRingPlacement(t *testing.T) {
	m, err := Identity(5).WithReplicas(3)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Replicated() {
		t.Fatal("RF=3 map reports unreplicated")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for s, o := range m.Owner {
		fs := m.Followers(s)
		if len(fs) != 2 {
			t.Fatalf("slot %d has %d followers, want 2", s, len(fs))
		}
		for j, f := range fs {
			if want := (o + j + 1) % m.Nodes; f != want {
				t.Fatalf("slot %d follower %d = node %d, want ring node %d", s, j, f, want)
			}
		}
		// No two replicas of a slot on one node.
		seen := map[int]bool{o: true}
		for _, f := range fs {
			if seen[f] {
				t.Fatalf("slot %d places two replicas on node %d", s, f)
			}
			seen[f] = true
		}
	}
}

func TestWithReplicasStripsAndRefuses(t *testing.T) {
	base, err := Identity(4).WithReplicas(2)
	if err != nil {
		t.Fatal(err)
	}
	stripped, err := base.WithReplicas(1)
	if err != nil {
		t.Fatal(err)
	}
	if stripped.Repl != nil || stripped.Replicated() {
		t.Fatal("k<=1 should strip replication")
	}
	if _, err := Identity(4).WithReplicas(5); err == nil {
		t.Fatal("k > Nodes should be refused")
	}
}

func TestWithReplicasCloneIsDeep(t *testing.T) {
	m, err := Identity(4).WithReplicas(2)
	if err != nil {
		t.Fatal(err)
	}
	cp := m.Clone()
	cp.Repl[0][0] = (cp.Repl[0][0] + 1) % cp.Nodes
	if m.Repl[0][0] == cp.Repl[0][0] {
		t.Fatal("Clone shares follower storage with the original")
	}
}

func TestValidateRejectsBadReplicaTables(t *testing.T) {
	m, err := Identity(4).WithReplicas(2)
	if err != nil {
		t.Fatal(err)
	}
	short := m.Clone()
	short.Repl = short.Repl[:len(short.Repl)-1]
	if err := short.Validate(); err == nil {
		t.Fatal("short replica table should fail validation")
	}
	collide := m.Clone()
	collide.Repl[1] = []int{collide.Owner[1]}
	if err := collide.Validate(); err == nil {
		t.Fatal("follower equal to owner should fail validation")
	}
	dup := m.Clone()
	dup.Repl[2] = []int{(dup.Owner[2] + 1) % 4, (dup.Owner[2] + 1) % 4}
	if err := dup.Validate(); err == nil {
		t.Fatal("duplicate follower should fail validation")
	}
	oob := m.Clone()
	oob.Repl[3] = []int{7}
	if err := oob.Validate(); err == nil {
		t.Fatal("out-of-range follower should fail validation")
	}
}

func TestWithReplicasSurvivesDoubling(t *testing.T) {
	m, err := Identity(4).WithReplicas(2)
	if err != nil {
		t.Fatal(err)
	}
	// Doubled copies the owner table; replica tables are rebuilt by the
	// caller, so doubling a replicated map then revalidating must flag the
	// stale (short) replica table rather than silently accept it.
	d := m.Doubled()
	if err := d.Validate(); err == nil {
		t.Fatal("doubled map with stale replica table should fail validation")
	}
	fixed, err := d.WithReplicas(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := fixed.Validate(); err != nil {
		t.Fatal(err)
	}
}
