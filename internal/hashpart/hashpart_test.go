package hashpart

import (
	"testing"
	"testing/quick"

	"joinview/internal/types"
)

func TestNodeForDeterministic(t *testing.T) {
	p := New(8)
	f := func(v int64) bool {
		a := p.NodeFor(types.Int(v))
		b := p.NodeFor(types.Int(v))
		return a == b && a >= 0 && a < 8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNodeForSpreads(t *testing.T) {
	p := New(16)
	seen := map[int]int{}
	for i := int64(0); i < 10000; i++ {
		seen[p.NodeFor(types.Int(i))]++
	}
	if len(seen) != 16 {
		t.Fatalf("only %d of 16 nodes used", len(seen))
	}
	for node, n := range seen {
		// Expect ~625 per node; allow wide tolerance.
		if n < 400 || n > 900 {
			t.Errorf("node %d got %d of 10000 tuples: badly skewed", node, n)
		}
	}
}

func TestSingleNodeCluster(t *testing.T) {
	p := New(1)
	if p.NodeFor(types.String("anything")) != 0 {
		t.Error("single-node partitioner must map to node 0")
	}
}

func TestNewPanicsOnBadCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) should panic")
		}
	}()
	New(0)
}

func TestNodeForTupleAndSpread(t *testing.T) {
	s := types.NewSchema(
		types.Column{Name: "k", Kind: types.KindInt},
		types.Column{Name: "v", Kind: types.KindString},
	)
	p := New(4)
	tup := types.Tuple{types.Int(42), types.String("x")}
	n, err := p.NodeForTuple(s, "k", tup)
	if err != nil {
		t.Fatal(err)
	}
	if n != p.NodeFor(types.Int(42)) {
		t.Error("NodeForTuple disagrees with NodeFor")
	}
	if _, err := p.NodeForTuple(s, "zz", tup); err == nil {
		t.Error("unknown column should fail")
	}

	tuples := make([]types.Tuple, 100)
	for i := range tuples {
		tuples[i] = types.Tuple{types.Int(int64(i)), types.String("t")}
	}
	buckets, err := p.Spread(s, "k", tuples)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for node, b := range buckets {
		total += len(b)
		for _, tup := range b {
			if p.NodeFor(tup[0]) != node {
				t.Fatalf("tuple %v in wrong bucket %d", tup, node)
			}
		}
	}
	if total != 100 {
		t.Fatalf("spread lost tuples: %d", total)
	}
	if _, err := p.Spread(s, "zz", tuples); err == nil {
		t.Error("spread on unknown column should fail")
	}
}

// BenchmarkSpread tracks the bucketing allocation cost (run with
// -benchmem): the two-pass exact-size layout should allocate one backing
// array plus the bucket headers per call, independent of tuple count, with
// the scratch home/count slices pooled across calls.
func BenchmarkSpread(b *testing.B) {
	p := New(8)
	schema := types.NewSchema(
		types.Column{Name: "id", Kind: types.KindInt},
		types.Column{Name: "c", Kind: types.KindInt},
	)
	tuples := make([]types.Tuple, 512)
	for i := range tuples {
		tuples[i] = types.Tuple{types.Int(int64(i)), types.Int(int64(i % 64))}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Spread(schema, "id", tuples); err != nil {
			b.Fatal(err)
		}
	}
}
