// Package hashpart implements deterministic hash partitioning of values
// across the data-server nodes of the parallel RDBMS, playing the role of
// Teradata's primary-index hash map: a tuple's home node is a pure function
// of its partitioning-attribute value and the current partition map.
//
// The map is versioned: an epoch-stamped slot→node table replaces the
// seed's fixed modulo, so cluster elasticity (AddNode/DecommissionNode)
// can reassign individual hash slots to new owners and install the new
// map atomically while statements keep routing through the old one. For a
// fixed topology the initial map (identity owners, one slot per node) is
// byte-identical to `hash % L`, which keeps every paper experiment golden.
package hashpart

import (
	"fmt"
	"sync"
	"sync/atomic"

	"joinview/internal/types"
)

// Map is an epoch-stamped assignment of hash slots to node ids. A value v
// belongs to slot Hash(v) % len(Owner), which lives on node Owner[slot].
// Maps are immutable once installed; elasticity builds a modified copy and
// installs it with an epoch bump at cutover.
type Map struct {
	// Epoch increases with every installed map; compiled maintenance
	// plans record it and recompile when it moves.
	Epoch uint64
	// Owner maps slot → node id. len(Owner) is the slot count (the hash
	// modulus).
	Owner []int
	// Nodes is the cluster size (bucket count for Spread); owners are in
	// [0, Nodes).
	Nodes int
	// Repl optionally maps slot → ordered follower nodes: the replicas of
	// the slot beyond its primary Owner[slot], in promotion order. nil (or
	// an empty per-slot list) means the slot is unreplicated — replication
	// factor 1, the paper's model and the default. When non-nil, Repl must
	// have one entry per slot, no follower may repeat within a slot, and no
	// follower may equal the slot's owner.
	Repl [][]int
}

// Identity returns the fixed-topology map over n nodes: n slots, slot i
// owned by node i — exactly `hash % n`.
func Identity(n int) Map {
	owner := make([]int, n)
	for i := range owner {
		owner[i] = i
	}
	return Map{Epoch: 0, Owner: owner, Nodes: n}
}

// WithReplicas returns a copy of the map carrying k-way replication:
// every slot keeps its owner and gains k-1 followers placed ring-style
// (follower j of slot s is node (Owner[s]+j) mod Nodes), so no two
// replicas of a slot share a node. k <= 1 strips replication.
func (m Map) WithReplicas(k int) (Map, error) {
	d := m.Clone()
	if k <= 1 {
		d.Repl = nil
		return d, nil
	}
	if k > m.Nodes {
		return Map{}, fmt.Errorf("hashpart: replication factor %d exceeds node count %d", k, m.Nodes)
	}
	d.Repl = make([][]int, len(d.Owner))
	for s, o := range d.Owner {
		fs := make([]int, 0, k-1)
		for j := 1; j < k; j++ {
			fs = append(fs, (o+j)%m.Nodes)
		}
		d.Repl[s] = fs
	}
	return d, nil
}

// Followers returns the follower nodes of a slot (nil when unreplicated).
// The returned slice aliases the map; callers must not mutate it.
func (m Map) Followers(slot int) []int {
	if m.Repl == nil {
		return nil
	}
	return m.Repl[slot]
}

// Replicated reports whether any slot carries followers.
func (m Map) Replicated() bool {
	for _, fs := range m.Repl {
		if len(fs) > 0 {
			return true
		}
	}
	return false
}

// Clone deep-copies the map (callers mutate the copy, never an installed
// map).
func (m Map) Clone() Map {
	c := Map{Epoch: m.Epoch, Owner: append([]int(nil), m.Owner...), Nodes: m.Nodes}
	if m.Repl != nil {
		c.Repl = make([][]int, len(m.Repl))
		for s, fs := range m.Repl {
			c.Repl[s] = append([]int(nil), fs...)
		}
	}
	return c
}

// Slot returns the hash slot of a value under this map.
func (m Map) Slot(v types.Value) int {
	return int(v.Hash() % uint64(len(m.Owner)))
}

// NodeFor returns the home node of a value under this map.
func (m Map) NodeFor(v types.Value) int {
	return m.Owner[v.Hash()%uint64(len(m.Owner))]
}

// SlotsOwnedBy lists the slots a node owns, ascending.
func (m Map) SlotsOwnedBy(n int) []int {
	var out []int
	for s, o := range m.Owner {
		if o == n {
			out = append(out, s)
		}
	}
	return out
}

// Doubled returns a copy with twice the slots and an unchanged
// value→node mapping: slot s and slot s+len(Owner) share s's owner
// (linear-hashing-style split, so only explicitly reassigned slots ever
// move data).
func (m Map) Doubled() Map {
	d := m.Clone()
	d.Owner = append(d.Owner, d.Owner...)
	return d
}

// Validate checks structural sanity: at least one slot, owners in range.
func (m Map) Validate() error {
	if m.Nodes < 1 {
		return fmt.Errorf("hashpart: invalid node count %d", m.Nodes)
	}
	if len(m.Owner) == 0 {
		return fmt.Errorf("hashpart: map has no slots")
	}
	for s, o := range m.Owner {
		if o < 0 || o >= m.Nodes {
			return fmt.Errorf("hashpart: slot %d owner %d out of range [0,%d)", s, o, m.Nodes)
		}
	}
	if m.Repl != nil {
		if len(m.Repl) != len(m.Owner) {
			return fmt.Errorf("hashpart: replica table has %d slots, owner table %d", len(m.Repl), len(m.Owner))
		}
		for s, fs := range m.Repl {
			seen := map[int]bool{m.Owner[s]: true}
			for _, f := range fs {
				if f < 0 || f >= m.Nodes {
					return fmt.Errorf("hashpart: slot %d follower %d out of range [0,%d)", s, f, m.Nodes)
				}
				if seen[f] {
					return fmt.Errorf("hashpart: slot %d places two replicas on node %d", s, f)
				}
				seen[f] = true
			}
		}
	}
	return nil
}

// Partitioner maps values to node ids through the currently installed Map.
// Reads are lock-free (atomic pointer load); installs copy-on-write.
type Partitioner struct {
	cur atomic.Pointer[Map]
	// scratch pools the per-Spread working slices (home assignments and
	// per-node counts): bucketing runs on every maintenance phase of every
	// statement, so reusing the scratch keeps the hot path allocation-flat.
	// A sync.Pool keeps reuse safe under concurrent sessions.
	scratch sync.Pool
}

// spreadScratch is the reusable working set of one Spread call.
type spreadScratch struct {
	homes  []int
	counts []int
}

// New returns a partitioner over n nodes with the identity map (slot i →
// node i), byte-identical to the seed's fixed `hash % n`. It panics if
// n < 1 (a cluster always has at least one node; the catalog validates
// user input earlier).
func New(n int) *Partitioner {
	if n < 1 {
		panic(fmt.Sprintf("hashpart: invalid node count %d", n))
	}
	p := &Partitioner{}
	m := Identity(n)
	p.cur.Store(&m)
	p.scratch.New = func() any { return &spreadScratch{counts: make([]int, n)} }
	return p
}

// Map returns the currently installed partition map (immutable; Clone
// before mutating).
func (p *Partitioner) Map() Map { return *p.cur.Load() }

// Epoch returns the installed map's epoch.
func (p *Partitioner) Epoch() uint64 { return p.cur.Load().Epoch }

// Install atomically replaces the partition map. The caller is
// responsible for having moved the data of every reassigned slot first
// (the migration coordinator's cutover). The map is validated and stored
// by value, so later caller mutations cannot corrupt the installed state.
func (p *Partitioner) Install(m Map) error {
	if err := m.Validate(); err != nil {
		return err
	}
	m = m.Clone()
	p.cur.Store(&m)
	return nil
}

// Nodes returns the node count.
func (p *Partitioner) Nodes() int { return p.cur.Load().Nodes }

// NodeFor returns the home node of a value.
func (p *Partitioner) NodeFor(v types.Value) int {
	return p.cur.Load().NodeFor(v)
}

// Slot returns the hash slot of a value under the installed map.
func (p *Partitioner) Slot(v types.Value) int {
	return p.cur.Load().Slot(v)
}

// NodeForTuple returns the home node of tuple t partitioned on column col
// of schema s.
func (p *Partitioner) NodeForTuple(s *types.Schema, col string, t types.Tuple) (int, error) {
	i := s.ColIndex(col)
	if i < 0 {
		return 0, fmt.Errorf("hashpart: partition column %q not in schema %v", col, s.Names())
	}
	return p.NodeFor(t[i]), nil
}

// Spread partitions tuples by the named column, returning one bucket per
// node. Buckets preserve input order.
//
// Allocation discipline: two counting passes carve every bucket out of a
// single exactly-sized backing array, instead of growing each bucket with
// append. The returned buckets alias that backing array and stay valid
// after Spread returns; only the internal scratch is pooled and reused.
func (p *Partitioner) Spread(s *types.Schema, col string, tuples []types.Tuple) ([][]types.Tuple, error) {
	i := s.ColIndex(col)
	if i < 0 {
		return nil, fmt.Errorf("hashpart: partition column %q not in schema %v", col, s.Names())
	}
	return p.SpreadIndex(i, tuples), nil
}

// SpreadIndex is Spread keyed by column position instead of name, for
// callers that already resolved the column against their schema.
func (p *Partitioner) SpreadIndex(i int, tuples []types.Tuple) [][]types.Tuple {
	m := p.cur.Load()
	buckets := make([][]types.Tuple, m.Nodes)
	if len(tuples) == 0 {
		return buckets
	}
	sc := p.scratch.Get().(*spreadScratch)
	defer p.scratch.Put(sc)
	if cap(sc.homes) < len(tuples) {
		sc.homes = make([]int, len(tuples))
	}
	homes := sc.homes[:len(tuples)]
	if len(sc.counts) < m.Nodes {
		// The cluster grew since this scratch was pooled.
		sc.counts = make([]int, m.Nodes)
	}
	counts := sc.counts[:m.Nodes]
	for n := range counts {
		counts[n] = 0
	}
	for j, t := range tuples {
		n := m.NodeFor(t[i])
		homes[j] = n
		counts[n]++
	}
	backing := make([]types.Tuple, len(tuples))
	off := 0
	for n := 0; n < m.Nodes; n++ {
		buckets[n] = backing[off : off : off+counts[n]]
		off += counts[n]
	}
	for j, t := range tuples {
		n := homes[j]
		buckets[n] = append(buckets[n], t)
	}
	return buckets
}
