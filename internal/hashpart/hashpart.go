// Package hashpart implements deterministic hash partitioning of values
// across the data-server nodes of the parallel RDBMS, playing the role of
// Teradata's primary-index hash map: a tuple's home node is a pure function
// of its partitioning-attribute value and the node count.
package hashpart

import (
	"fmt"
	"sync"

	"joinview/internal/types"
)

// Partitioner maps values to node ids in [0, N).
type Partitioner struct {
	n int
	// scratch pools the per-Spread working slices (home assignments and
	// per-node counts): bucketing runs on every maintenance phase of every
	// statement, so reusing the scratch keeps the hot path allocation-flat.
	// A sync.Pool keeps reuse safe under concurrent sessions.
	scratch sync.Pool
}

// spreadScratch is the reusable working set of one Spread call.
type spreadScratch struct {
	homes  []int
	counts []int
}

// New returns a partitioner over n nodes. It panics if n < 1 (a cluster
// always has at least one node; the catalog validates user input earlier).
func New(n int) *Partitioner {
	if n < 1 {
		panic(fmt.Sprintf("hashpart: invalid node count %d", n))
	}
	p := &Partitioner{n: n}
	p.scratch.New = func() any { return &spreadScratch{counts: make([]int, n)} }
	return p
}

// Nodes returns the node count.
func (p *Partitioner) Nodes() int { return p.n }

// NodeFor returns the home node of a value.
func (p *Partitioner) NodeFor(v types.Value) int {
	return int(v.Hash() % uint64(p.n))
}

// NodeForTuple returns the home node of tuple t partitioned on column col
// of schema s.
func (p *Partitioner) NodeForTuple(s *types.Schema, col string, t types.Tuple) (int, error) {
	i := s.ColIndex(col)
	if i < 0 {
		return 0, fmt.Errorf("hashpart: partition column %q not in schema %v", col, s.Names())
	}
	return p.NodeFor(t[i]), nil
}

// Spread partitions tuples by the named column, returning one bucket per
// node. Buckets preserve input order.
//
// Allocation discipline: two counting passes carve every bucket out of a
// single exactly-sized backing array, instead of growing each bucket with
// append. The returned buckets alias that backing array and stay valid
// after Spread returns; only the internal scratch is pooled and reused.
func (p *Partitioner) Spread(s *types.Schema, col string, tuples []types.Tuple) ([][]types.Tuple, error) {
	i := s.ColIndex(col)
	if i < 0 {
		return nil, fmt.Errorf("hashpart: partition column %q not in schema %v", col, s.Names())
	}
	buckets := make([][]types.Tuple, p.n)
	if len(tuples) == 0 {
		return buckets, nil
	}
	sc := p.scratch.Get().(*spreadScratch)
	defer p.scratch.Put(sc)
	if cap(sc.homes) < len(tuples) {
		sc.homes = make([]int, len(tuples))
	}
	homes := sc.homes[:len(tuples)]
	counts := sc.counts
	for n := range counts {
		counts[n] = 0
	}
	for j, t := range tuples {
		n := p.NodeFor(t[i])
		homes[j] = n
		counts[n]++
	}
	backing := make([]types.Tuple, len(tuples))
	off := 0
	for n := 0; n < p.n; n++ {
		buckets[n] = backing[off : off : off+counts[n]]
		off += counts[n]
	}
	for j, t := range tuples {
		n := homes[j]
		buckets[n] = append(buckets[n], t)
	}
	return buckets, nil
}
