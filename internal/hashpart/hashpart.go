// Package hashpart implements deterministic hash partitioning of values
// across the data-server nodes of the parallel RDBMS, playing the role of
// Teradata's primary-index hash map: a tuple's home node is a pure function
// of its partitioning-attribute value and the node count.
package hashpart

import (
	"fmt"

	"joinview/internal/types"
)

// Partitioner maps values to node ids in [0, N).
type Partitioner struct {
	n int
}

// New returns a partitioner over n nodes. It panics if n < 1 (a cluster
// always has at least one node; the catalog validates user input earlier).
func New(n int) *Partitioner {
	if n < 1 {
		panic(fmt.Sprintf("hashpart: invalid node count %d", n))
	}
	return &Partitioner{n: n}
}

// Nodes returns the node count.
func (p *Partitioner) Nodes() int { return p.n }

// NodeFor returns the home node of a value.
func (p *Partitioner) NodeFor(v types.Value) int {
	return int(v.Hash() % uint64(p.n))
}

// NodeForTuple returns the home node of tuple t partitioned on column col
// of schema s.
func (p *Partitioner) NodeForTuple(s *types.Schema, col string, t types.Tuple) (int, error) {
	i := s.ColIndex(col)
	if i < 0 {
		return 0, fmt.Errorf("hashpart: partition column %q not in schema %v", col, s.Names())
	}
	return p.NodeFor(t[i]), nil
}

// Spread partitions tuples by the named column, returning one bucket per
// node. Buckets preserve input order.
func (p *Partitioner) Spread(s *types.Schema, col string, tuples []types.Tuple) ([][]types.Tuple, error) {
	i := s.ColIndex(col)
	if i < 0 {
		return nil, fmt.Errorf("hashpart: partition column %q not in schema %v", col, s.Names())
	}
	buckets := make([][]types.Tuple, p.n)
	for _, t := range tuples {
		n := p.NodeFor(t[i])
		buckets[n] = append(buckets[n], t)
	}
	return buckets, nil
}
