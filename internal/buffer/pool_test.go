package buffer

import (
	"testing"
	"testing/quick"
)

func key(frag string, page uint64) PageKey {
	return PageKey{Frag: frag, NS: NSRow, Page: page}
}

func TestHitMissEvict(t *testing.T) {
	p := New(2)
	if p.Touch(key("a", 1)) {
		t.Error("first access must miss")
	}
	if !p.Touch(key("a", 1)) {
		t.Error("second access must hit")
	}
	p.Touch(key("a", 2))
	p.Touch(key("a", 3)) // evicts page 1 (LRU)
	if p.Touch(key("a", 1)) {
		t.Error("evicted page must miss")
	}
	s := p.Stats()
	if s.Hits != 1 || s.Misses != 4 || s.Evictions != 2 {
		t.Errorf("stats = %+v", s)
	}
	if s.PhysicalIOs() != 4 {
		t.Errorf("physical = %d", s.PhysicalIOs())
	}
}

func TestLRUOrderOnHit(t *testing.T) {
	p := New(2)
	p.Touch(key("a", 1))
	p.Touch(key("a", 2))
	p.Touch(key("a", 1)) // 1 becomes MRU
	p.Touch(key("a", 3)) // evicts 2
	if !p.Touch(key("a", 1)) {
		t.Error("page 1 should have survived")
	}
	if p.Touch(key("a", 2)) {
		t.Error("page 2 should have been evicted")
	}
}

func TestNamespaceAndFragDistinguish(t *testing.T) {
	p := New(10)
	p.Touch(PageKey{Frag: "a", NS: NSRow, Page: 1})
	if p.Touch(PageKey{Frag: "a", NS: NSKey, Page: 1}) {
		t.Error("different namespace must be a different page")
	}
	if p.Touch(PageKey{Frag: "b", NS: NSRow, Page: 1}) {
		t.Error("different fragment must be a different page")
	}
}

func TestInvalidate(t *testing.T) {
	p := New(10)
	p.Touch(key("a", 1))
	p.Touch(key("b", 1))
	p.Invalidate("a")
	if p.Resident() != 1 {
		t.Errorf("resident = %d", p.Resident())
	}
	if p.Touch(key("a", 1)) {
		t.Error("invalidated page must miss")
	}
	if !p.Touch(key("b", 1)) {
		t.Error("other fragment must stay cached")
	}
}

func TestNilPool(t *testing.T) {
	var p *Pool
	if p.Touch(key("a", 1)) {
		t.Error("nil pool never hits")
	}
	if p.Resident() != 0 || p.Stats() != (Stats{}) {
		t.Error("nil pool reports zero state")
	}
	p.Invalidate("a")
	p.ResetStats()
	if New(0) != nil {
		t.Error("zero capacity should return nil")
	}
}

func TestResetStatsKeepsCache(t *testing.T) {
	p := New(4)
	p.Touch(key("a", 1))
	p.ResetStats()
	if !p.Touch(key("a", 1)) {
		t.Error("cache must survive ResetStats")
	}
	if s := p.Stats(); s.Hits != 1 || s.Misses != 0 {
		t.Errorf("stats after reset = %+v", s)
	}
}

// Property: resident never exceeds capacity, and hits+misses equals the
// number of touches.
func TestPoolInvariants(t *testing.T) {
	f := func(pages []uint8, cap8 uint8) bool {
		capacity := int(cap8%16) + 1
		p := New(capacity)
		for _, pg := range pages {
			p.Touch(key("f", uint64(pg%32)))
			if p.Resident() > capacity {
				return false
			}
		}
		s := p.Stats()
		return s.Hits+s.Misses == int64(len(pages))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
