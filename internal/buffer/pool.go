// Package buffer simulates a per-node buffer pool with LRU replacement.
//
// The paper's analytical model counts logical I/Os; its §3.3 experiments
// note that on the real system "substantial fractions of the base and
// auxiliary relations end up getting cached in main memory", which made
// the model "less accurate for large updates than for small". Attaching a
// Pool to a node's fragments splits the meters into logical accesses
// (model-comparable) and physical misses (what a cached system would
// actually pay), so that buffering effect can be reproduced and measured
// instead of hand-waved.
package buffer

import (
	"container/list"
	"sync/atomic"
)

// PageKey identifies one cached page. Fragments map their access patterns
// onto stable page surrogates: heap rows bucket by row id, clustered runs
// bucket by key (namespace distinguishes the schemes).
type PageKey struct {
	Frag string
	NS   uint8
	Page uint64
}

// Namespaces for PageKey.
const (
	// NSRow buckets heap pages by row id.
	NSRow uint8 = iota
	// NSKey buckets clustered-run pages by key hash.
	NSKey
)

// Stats counts pool activity.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
}

// PhysicalIOs is the disk reads a cached system performs: the misses.
func (s Stats) PhysicalIOs() int64 { return s.Misses }

// Pool is an LRU page cache. Touch/Invalidate are not internally
// synchronized: like the storage fragments, a pool belongs to exactly one
// node, which serializes mutations. The counters are atomic, so Stats and
// ResetStats are safe from other goroutines (the cluster's metrics reader
// under the channel transport). A nil *Pool is valid and caches nothing
// (Touch reports every access as a miss without tracking).
type Pool struct {
	capacity  int
	lru       *list.List // front = most recent; values are PageKey
	index     map[PageKey]*list.Element
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// New creates a pool holding up to capacity pages; capacity <= 0 returns
// nil (caching disabled).
func New(capacity int) *Pool {
	if capacity <= 0 {
		return nil
	}
	return &Pool{
		capacity: capacity,
		lru:      list.New(),
		index:    make(map[PageKey]*list.Element, capacity),
	}
}

// Touch records an access to the page, returning true on a hit. On a miss
// the page is brought in, evicting the least-recently-used page if the
// pool is full.
func (p *Pool) Touch(k PageKey) bool {
	if p == nil {
		return false
	}
	if el, ok := p.index[k]; ok {
		p.lru.MoveToFront(el)
		p.hits.Add(1)
		return true
	}
	p.misses.Add(1)
	if p.lru.Len() >= p.capacity {
		back := p.lru.Back()
		delete(p.index, back.Value.(PageKey))
		p.lru.Remove(back)
		p.evictions.Add(1)
	}
	p.index[k] = p.lru.PushFront(k)
	return false
}

// Invalidate drops every cached page of the fragment (fragment dropped).
func (p *Pool) Invalidate(frag string) {
	if p == nil {
		return
	}
	for el := p.lru.Front(); el != nil; {
		next := el.Next()
		if el.Value.(PageKey).Frag == frag {
			delete(p.index, el.Value.(PageKey))
			p.lru.Remove(el)
		}
		el = next
	}
}

// Resident returns the number of cached pages.
func (p *Pool) Resident() int {
	if p == nil {
		return 0
	}
	return p.lru.Len()
}

// Stats returns the counters. Safe for concurrent use.
func (p *Pool) Stats() Stats {
	if p == nil {
		return Stats{}
	}
	return Stats{
		Hits:      p.hits.Load(),
		Misses:    p.misses.Load(),
		Evictions: p.evictions.Load(),
	}
}

// ResetStats zeroes the counters without dropping cached pages (so warm
// caches can be measured over a fresh window). Safe for concurrent use.
func (p *Pool) ResetStats() {
	if p == nil {
		return
	}
	p.hits.Store(0)
	p.misses.Store(0)
	p.evictions.Store(0)
}
