package txn

import (
	"errors"
	"testing"
)

func TestRollbackReverseOrder(t *testing.T) {
	var tx Txn
	var got []int
	for i := 0; i < 3; i++ {
		i := i
		tx.OnRollback(func() error { got = append(got, i); return nil })
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 2 || got[1] != 1 || got[2] != 0 {
		t.Errorf("rollback order = %v", got)
	}
	// Second rollback is a no-op.
	got = nil
	if err := tx.Rollback(); err != nil || got != nil {
		t.Error("second rollback should do nothing")
	}
}

func TestCommitDisablesRollback(t *testing.T) {
	var tx Txn
	ran := false
	tx.OnRollback(func() error { ran = true; return nil })
	tx.Commit()
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Error("rollback after commit must not run undo actions")
	}
}

func TestSavepoints(t *testing.T) {
	var tx Txn
	var got []int
	reg := func(i int) {
		tx.OnRollback(func() error { got = append(got, i); return nil })
	}
	reg(0)
	mark := tx.Mark()
	if mark != 1 {
		t.Fatalf("Mark = %d", mark)
	}
	reg(1)
	reg(2)
	if err := tx.RollbackTo(mark); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 2 || got[1] != 1 {
		t.Errorf("partial rollback order = %v", got)
	}
	// Stale mark is a no-op.
	if err := tx.RollbackTo(99); err != nil {
		t.Fatal(err)
	}
	// The rest still rolls back on full Rollback.
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2] != 0 {
		t.Errorf("final rollback = %v", got)
	}
	// Negative mark clamps.
	var tx2 Txn
	ran := false
	tx2.OnRollback(func() error { ran = true; return nil })
	if err := tx2.RollbackTo(-5); err != nil || !ran {
		t.Error("negative mark should unwind everything")
	}
}

func TestRollbackCollectsErrors(t *testing.T) {
	var tx Txn
	e1 := errors.New("one")
	ran := false
	tx.OnRollback(func() error { ran = true; return nil })
	tx.OnRollback(func() error { return e1 })
	err := tx.Rollback()
	if err == nil || !errors.Is(err, e1) {
		t.Errorf("Rollback error = %v", err)
	}
	if !ran {
		t.Error("later undo actions must still run after an error")
	}
}

func TestRollbackJoinsMultipleErrors(t *testing.T) {
	var tx Txn
	e1, e2 := errors.New("one"), errors.New("two")
	var order []string
	tx.OnRollback(func() error { order = append(order, "a"); return e1 })
	tx.OnRollback(func() error { order = append(order, "b"); return nil })
	tx.OnRollback(func() error { order = append(order, "c"); return e2 })
	err := tx.Rollback()
	if !errors.Is(err, e1) || !errors.Is(err, e2) {
		t.Fatalf("Rollback = %v, want both errors joined", err)
	}
	if len(order) != 3 || order[0] != "c" || order[1] != "b" || order[2] != "a" {
		t.Errorf("undo order with errors = %v", order)
	}
}

func TestRollbackToAfterFinishIsNoOp(t *testing.T) {
	var tx Txn
	ran := false
	tx.OnRollback(func() error { ran = true; return nil })
	tx.Commit()
	if err := tx.RollbackTo(0); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Error("RollbackTo after Commit must not run undo actions")
	}

	var tx2 Txn
	runs := 0
	tx2.OnRollback(func() error { runs++; return nil })
	if err := tx2.Rollback(); err != nil {
		t.Fatal(err)
	}
	if err := tx2.RollbackTo(0); err != nil {
		t.Fatal(err)
	}
	if runs != 1 {
		t.Errorf("undo ran %d times, want 1", runs)
	}
}

func TestRollbackToErrorStillTruncates(t *testing.T) {
	var tx Txn
	e1 := errors.New("boom")
	runs := 0
	tx.OnRollback(func() error { return nil }) // below the mark, stays
	mark := tx.Mark()
	tx.OnRollback(func() error { runs++; return e1 })
	if err := tx.RollbackTo(mark); !errors.Is(err, e1) {
		t.Fatalf("RollbackTo = %v, want e1", err)
	}
	// The failed step is off the log: a full Rollback must not retry it.
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if runs != 1 {
		t.Errorf("erroring undo ran %d times, want 1", runs)
	}
}
