// Package txn provides the coordinator-side transaction scope the paper's
// maintenance flows run inside ("begin transaction; update base relation;
// update auxiliary relation / global index; update join view; end
// transaction"). A Txn collects compensating actions as a statement makes
// progress; on error everything applied so far is undone in reverse order,
// so base relations, auxiliary structures and views stay mutually
// consistent.
package txn

import (
	"errors"
	"fmt"
)

// Txn is an undo log. The zero value is ready to use.
type Txn struct {
	undo []func() error
	done bool
}

// OnRollback registers a compensating action for work just applied.
// Actions run in reverse registration order on Rollback.
func (t *Txn) OnRollback(f func() error) {
	t.undo = append(t.undo, f)
}

// Commit discards the undo log; the transaction's effects stay.
func (t *Txn) Commit() {
	t.undo = nil
	t.done = true
}

// Rollback runs all compensating actions in reverse order, joining any
// errors they raise. It is a no-op after Commit or a previous Rollback.
func (t *Txn) Rollback() error {
	if t.done {
		return nil
	}
	t.done = true
	err := t.unwindTo(0)
	t.undo = nil
	return err
}

// Mark returns a savepoint: the current undo depth. Use with RollbackTo to
// get statement-level atomicity inside a multi-statement transaction.
func (t *Txn) Mark() int { return len(t.undo) }

// RollbackTo undoes everything registered after the savepoint, leaving the
// transaction open. Rolling back to a stale (too-deep) mark is a no-op.
func (t *Txn) RollbackTo(mark int) error {
	if t.done || mark >= len(t.undo) {
		return nil
	}
	if mark < 0 {
		mark = 0
	}
	err := t.unwindTo(mark)
	t.undo = t.undo[:mark]
	return err
}

func (t *Txn) unwindTo(mark int) error {
	var errs []error
	for i := len(t.undo) - 1; i >= mark; i-- {
		if err := t.undo[i](); err != nil {
			errs = append(errs, fmt.Errorf("txn: undo step %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}
