package netsim

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func echoHandlers(n int) []Handler {
	hs := make([]Handler, n)
	for i := range hs {
		node := i
		hs[i] = func(req any) (any, error) {
			if req == "boom" {
				return nil, errors.New("boom")
			}
			if req == "panic" {
				panic("kaboom")
			}
			return fmt.Sprintf("node%d:%v", node, req), nil
		}
	}
	return hs
}

func transports(n int) map[string]Transport {
	return map[string]Transport{
		"direct": NewDirect(echoHandlers(n)),
		"chan":   NewChan(echoHandlers(n)),
	}
}

func TestCall(t *testing.T) {
	for name, tr := range transports(4) {
		t.Run(name, func(t *testing.T) {
			defer tr.Close()
			resp, err := tr.Call(Coordinator, 2, "hi")
			if err != nil || resp != "node2:hi" {
				t.Fatalf("Call = %v, %v", resp, err)
			}
			if _, err := tr.Call(0, 99, "hi"); err == nil {
				t.Error("out-of-range destination should fail")
			}
			if _, err := tr.Call(0, -1, "hi"); err == nil {
				t.Error("negative destination should fail")
			}
			if _, err := tr.Call(0, 1, "boom"); err == nil {
				t.Error("handler error must propagate")
			}
			if tr.NumNodes() != 4 {
				t.Error("NumNodes wrong")
			}
		})
	}
}

func TestBroadcast(t *testing.T) {
	for name, tr := range transports(5) {
		t.Run(name, func(t *testing.T) {
			defer tr.Close()
			resps, err := tr.Broadcast(1, "x")
			if err != nil {
				t.Fatal(err)
			}
			if len(resps) != 5 {
				t.Fatalf("got %d responses", len(resps))
			}
			for i, r := range resps {
				if r != fmt.Sprintf("node%d:x", i) {
					t.Errorf("response %d = %v", i, r)
				}
			}
		})
	}
}

func TestMessageAccounting(t *testing.T) {
	for name, tr := range transports(4) {
		t.Run(name, func(t *testing.T) {
			defer tr.Close()
			tr.Call(0, 0, "local")      // self-delivery: free
			tr.Call(0, 1, "remote")     // 1 message
			tr.Call(Coordinator, 2, "") // 1 message
			tr.Broadcast(1, "b")        // 3 messages (node 1 to itself is free)
			s := tr.Stats()
			if s.Messages != 5 {
				t.Errorf("Messages = %d, want 5", s.Messages)
			}
			if s.LocalCalls != 2 {
				t.Errorf("LocalCalls = %d, want 2", s.LocalCalls)
			}
			tr.ResetStats()
			if s := tr.Stats(); s.Messages != 0 || s.LocalCalls != 0 {
				t.Error("ResetStats did not zero counters")
			}
		})
	}
}

func TestChanPanicRecovery(t *testing.T) {
	tr := NewChan(echoHandlers(2))
	defer tr.Close()
	if _, err := tr.Call(0, 1, "panic"); err == nil {
		t.Error("panic in handler must surface as error")
	}
	// Node still alive after the panic.
	if resp, err := tr.Call(0, 1, "ok"); err != nil || resp != "node1:ok" {
		t.Errorf("node dead after panic: %v, %v", resp, err)
	}
}

func TestChanConcurrentCalls(t *testing.T) {
	tr := NewChan(echoHandlers(8))
	defer tr.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				to := (g + i) % 8
				resp, err := tr.Call(Coordinator, to, i)
				if err != nil {
					errs <- err
					return
				}
				if resp != fmt.Sprintf("node%d:%d", to, i) {
					errs <- fmt.Errorf("bad response %v", resp)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := tr.Stats().Messages + tr.Stats().LocalCalls; got != 400 {
		t.Errorf("total deliveries = %d, want 400", got)
	}
}

func TestChanLatency(t *testing.T) {
	tr := NewChanLatency(echoHandlers(4), 2*time.Millisecond)
	defer tr.Close()
	start := time.Now()
	if _, err := tr.Call(0, 1, "x"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 2*time.Millisecond {
		t.Errorf("inter-node call took %v, want >= 2ms", d)
	}
	// Self-delivery stays free.
	start = time.Now()
	if _, err := tr.Call(1, 1, "x"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > time.Millisecond {
		t.Errorf("self-delivery took %v, should skip latency", d)
	}
	// Broadcast pays one latency, not L.
	start = time.Now()
	if _, err := tr.Broadcast(Coordinator, "x"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 8*time.Millisecond {
		t.Errorf("broadcast took %v, fan-out should be parallel", d)
	}
}

func TestChanClose(t *testing.T) {
	tr := NewChan(echoHandlers(2))
	tr.Close()
	tr.Close() // idempotent
	if _, err := tr.Call(0, 1, "x"); err == nil {
		t.Error("Call after Close should fail")
	}
	if _, err := tr.Broadcast(0, "x"); err == nil {
		t.Error("Broadcast after Close should fail")
	}
}

func TestBroadcastErrorReportsNode(t *testing.T) {
	hs := echoHandlers(3)
	hs[1] = func(any) (any, error) { return nil, errors.New("bad node") }
	for name, tr := range map[string]Transport{"direct": NewDirect(hs), "chan": NewChan(hs)} {
		t.Run(name, func(t *testing.T) {
			defer tr.Close()
			_, err := tr.Broadcast(Coordinator, "x")
			if err == nil {
				t.Fatal("broadcast should report handler error")
			}
		})
	}
}

// TestBroadcastCompletesPastErrors pins the unified contract: both
// transports attempt every delivery, fill the surviving slots, and join
// the per-node failures — a half-failed broadcast must not silently skip
// the remaining nodes.
func TestBroadcastCompletesPastErrors(t *testing.T) {
	mk := func() []Handler {
		hs := echoHandlers(4)
		hs[1] = func(any) (any, error) { return nil, errors.New("bad node 1") }
		return hs
	}
	for name, tr := range map[string]Transport{"direct": NewDirect(mk()), "chan": NewChan(mk())} {
		t.Run(name, func(t *testing.T) {
			defer tr.Close()
			resps, err := tr.Broadcast(Coordinator, "x")
			if err == nil {
				t.Fatal("broadcast must report the failure")
			}
			for _, want := range []int{0, 2, 3} {
				if resps[want] != fmt.Sprintf("node%d:x", want) {
					t.Errorf("node %d response = %v: delivery must complete despite node 1's error", want, resps[want])
				}
			}
			if resps[1] != nil {
				t.Errorf("failed node's slot = %v, want nil", resps[1])
			}
		})
	}
}

// TestChanCallTimeout demonstrates the per-call timeout firing on a stuck
// handler instead of hanging the coordinator forever.
func TestChanCallTimeout(t *testing.T) {
	stuck := make(chan struct{})
	hs := echoHandlers(2)
	hs[1] = func(req any) (any, error) {
		<-stuck // never answers until released
		return "late", nil
	}
	tr := NewChanTimeout(hs, 0, 20*time.Millisecond)
	defer func() {
		close(stuck)
		tr.Close()
	}()
	start := time.Now()
	_, err := tr.Call(Coordinator, 1, "x")
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("Call to stuck handler = %v, want ErrTimeout", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("timeout took %v, should fire promptly", d)
	}
	// The healthy node still answers.
	if resp, err := tr.Call(Coordinator, 0, "ok"); err != nil || resp != "node0:ok" {
		t.Fatalf("healthy node after timeout: %v, %v", resp, err)
	}
}

// TestChanCloseCallRace is the regression test for the send-on-closed-
// channel panic: hammer Call and Broadcast from many goroutines while
// Close runs concurrently. Run with -race; any panic fails the test.
func TestChanCloseCallRace(t *testing.T) {
	for iter := 0; iter < 20; iter++ {
		tr := NewChan(echoHandlers(4))
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					// Errors (ErrClosed) are expected once Close lands;
					// only a panic is a failure.
					_, _ = tr.Call(Coordinator, (g+i)%4, i)
					if i%10 == 0 {
						_, _ = tr.Broadcast(Coordinator, i)
					}
				}
			}(g)
		}
		tr.Close()
		wg.Wait()
	}
}
