// Package netsim simulates the interconnect of a shared-nothing parallel
// RDBMS. Nodes are addressed 0..L-1; the coordinator (the query dispatcher,
// Teradata's "parsing engine") uses the reserved id Coordinator.
//
// Two transports are provided:
//
//   - Direct: synchronous in-process dispatch. Fully deterministic — the
//     experiments use it so I/O counter traces are exactly reproducible.
//   - Chan: one goroutine per node with a buffered inbox, requests carry
//     reply channels. Broadcasts fan out concurrently, so node-level
//     parallelism is real. Used by the throughput-oriented examples and
//     the transport-ablation benchmark.
//
// Both transports count messages. Following the paper's Figure 2 ("the
// dashed lines represent cases in which the network communication is
// conceptual and no real network communication happens"), a call whose
// source and destination coincide is not counted as a message.
package netsim

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Coordinator is the reserved source id for calls that originate at the
// cluster coordinator rather than at a data-server node.
const Coordinator = -1

// ErrTimeout marks a call that exceeded the transport's per-call timeout:
// the destination node never picked the request up, or picked it up and
// failed to answer in time. The outcome at the destination is unknown —
// callers that retry must be prepared for the request to have been applied
// (see the sequence-number dedup in internal/node).
var ErrTimeout = errors.New("netsim: call timed out")

// ErrClosed marks a call issued after the transport was shut down.
var ErrClosed = errors.New("netsim: transport closed")

// Handler processes one request at a node and returns a response.
type Handler func(req any) (any, error)

// Transport moves requests between nodes.
type Transport interface {
	// Call delivers req from node `from` to node `to` and returns the
	// response. `from` may be Coordinator.
	Call(from, to int, req any) (any, error)
	// Broadcast delivers req from `from` to every node, returning the
	// responses indexed by node. Every delivery is attempted even when
	// some fail: slots of failed nodes are nil and the returned error
	// joins every per-node failure (each wrapped with its node id), so a
	// half-failed broadcast is observable and recoverable rather than
	// silently truncated.
	Broadcast(from int, req any) ([]any, error)
	// NumNodes returns the cluster size L.
	NumNodes() int
	// Stats returns message counters.
	Stats() Stats
	// ResetStats zeroes message counters.
	ResetStats()
	// Close releases transport resources (goroutines for Chan).
	Close()
}

// Stats counts interconnect traffic.
type Stats struct {
	// Messages is the number of point-to-point sends between distinct
	// endpoints (a broadcast to L nodes from a node counts L-1; a reply is
	// not counted separately — the paper's SEND covers a request/response
	// exchange). Batched requests implementing Envelope count one logical
	// SEND per carried entry, so the paper's cost figures are independent
	// of how entries are packed into physical deliveries.
	Messages int64
	// LocalCalls counts deliveries where source == destination (free).
	LocalCalls int64
	// Envelopes counts physical deliveries (one per Call / per broadcast
	// destination), regardless of how many logical messages each carried.
	// Messages/Envelopes is the batching factor.
	Envelopes int64
}

// NodeAdder is implemented by transports that support growing the cluster
// online: AddNode registers one more data-server handler and returns its
// node id. The elasticity machinery asserts for it on the base transport
// (wrappers — fault injection, resilience — delegate NumNodes to the inner
// transport, so the new size propagates without their cooperation).
type NodeAdder interface {
	AddNode(h Handler) (int, error)
}

// Envelope is implemented by batched requests that pack several logical
// messages into one physical delivery. LogicalCounts returns how many
// logical SENDs (source != destination) and free self-deliveries the
// envelope represents when delivered from `from` to `to`; the transports
// use it in place of the default one-message-per-call accounting, so the
// paper's per-entry SEND counters are preserved under batching.
type Envelope interface {
	LogicalCounts(from, to int) (messages, local int64)
}

type counters struct {
	messages  atomic.Int64
	local     atomic.Int64
	envelopes atomic.Int64
}

func (c *counters) record(from, to int, req any) {
	c.envelopes.Add(1)
	if env, ok := req.(Envelope); ok {
		msgs, local := env.LogicalCounts(from, to)
		c.messages.Add(msgs)
		c.local.Add(local)
		return
	}
	if from == to {
		c.local.Add(1)
	} else {
		c.messages.Add(1)
	}
}

func (c *counters) stats() Stats {
	return Stats{
		Messages:   c.messages.Load(),
		LocalCalls: c.local.Load(),
		Envelopes:  c.envelopes.Load(),
	}
}

func (c *counters) reset() {
	c.messages.Store(0)
	c.local.Store(0)
	c.envelopes.Store(0)
}

func checkDest(to, n int) error {
	if to < 0 || to >= n {
		return fmt.Errorf("netsim: destination %d out of range [0,%d)", to, n)
	}
	return nil
}

// Direct is the deterministic transport: Call invokes the destination
// handler on the caller's goroutine. It must only be used by one goroutine
// at a time (the experiments drive the cluster single-threaded).
type Direct struct {
	handlers []Handler
	ctr      counters
}

// NewDirect builds a Direct transport over the given per-node handlers.
func NewDirect(handlers []Handler) *Direct {
	return &Direct{handlers: handlers}
}

// Call implements Transport.
func (d *Direct) Call(from, to int, req any) (any, error) {
	if err := checkDest(to, len(d.handlers)); err != nil {
		return nil, err
	}
	d.ctr.record(from, to, req)
	return d.handlers[to](req)
}

// Broadcast implements Transport: every node is attempted, failures are
// joined into the returned error.
func (d *Direct) Broadcast(from int, req any) ([]any, error) {
	out := make([]any, len(d.handlers))
	var errs []error
	for to := range d.handlers {
		resp, err := d.Call(from, to, req)
		if err != nil {
			errs = append(errs, fmt.Errorf("netsim: broadcast to node %d: %w", to, err))
			continue
		}
		out[to] = resp
	}
	return out, errors.Join(errs...)
}

// NumNodes implements Transport.
func (d *Direct) NumNodes() int { return len(d.handlers) }

// AddNode implements NodeAdder. Like every Direct method it must not race
// other use of the transport (the cluster grows topology under its global
// exclusive lock).
func (d *Direct) AddNode(h Handler) (int, error) {
	d.handlers = append(d.handlers, h)
	return len(d.handlers) - 1, nil
}

// Stats implements Transport.
func (d *Direct) Stats() Stats { return d.ctr.stats() }

// ResetStats implements Transport.
func (d *Direct) ResetStats() { d.ctr.reset() }

// Close implements Transport (no-op for Direct).
func (d *Direct) Close() {}

// Chan runs each node as a goroutine draining a buffered inbox; requests
// carry reply channels. Handlers therefore execute serially per node but
// concurrently across nodes, which models the parallel DBMS's per-node
// work queues. An optional per-message latency models the interconnect's
// SEND cost in wall-clock terms (the paper treats SEND as "much smaller
// than the time spent on SEARCH, FETCH, and INSERT" — the latency knob
// lets experiments test what happens when it is not).
type Chan struct {
	inboxes []chan envelope
	latency time.Duration
	timeout time.Duration
	ctr     counters
	wg      sync.WaitGroup

	// mu guards closed and every send on the inboxes: senders hold the
	// read lock, Close takes the write lock before closing the channels,
	// so a Call racing a Close sees `closed` instead of panicking with a
	// send on a closed channel.
	mu     sync.RWMutex
	closed bool

	// replyPool recycles reply channels, but only when no timeout is
	// configured: an unbounded recv always drains the single buffered
	// reply before the channel is pooled, whereas a timed-out recv could
	// leave a late handler write behind for the next checkout to read.
	replyPool sync.Pool
}

// getReply checks a drained reply channel out of the pool (unbounded mode)
// or allocates a fresh one.
func (c *Chan) getReply() chan result {
	if c.timeout == 0 {
		if v := c.replyPool.Get(); v != nil {
			return v.(chan result)
		}
	}
	return make(chan result, 1)
}

// putReply returns a drained (or never-written) reply channel to the pool.
func (c *Chan) putReply(ch chan result) {
	if c.timeout == 0 {
		c.replyPool.Put(ch)
	}
}

type envelope struct {
	req   any
	reply chan result
}

type result struct {
	resp any
	err  error
}

// NewChan builds a Chan transport over the given per-node handlers.
func NewChan(handlers []Handler) *Chan { return NewChanLatency(handlers, 0) }

// NewChanLatency builds a Chan transport that delays every inter-node
// message by the given wall-clock latency (self-deliveries stay free, as
// in the paper's Figure 2).
func NewChanLatency(handlers []Handler, latency time.Duration) *Chan {
	return NewChanTimeout(handlers, latency, 0)
}

// NewChanTimeout additionally bounds every Call: if the destination's inbox
// stays full or its handler does not answer within timeout, Call returns
// ErrTimeout instead of blocking forever (a zero timeout means unbounded,
// the historical behavior). A timed-out request may still be executed by
// the node later — exactly the ambiguity a real interconnect has — so
// retrying callers must deduplicate (see internal/node's sequence numbers).
func NewChanTimeout(handlers []Handler, latency, timeout time.Duration) *Chan {
	c := &Chan{
		inboxes: make([]chan envelope, len(handlers)),
		latency: latency,
		timeout: timeout,
	}
	for i, h := range handlers {
		inbox := make(chan envelope, 128)
		c.inboxes[i] = inbox
		c.wg.Add(1)
		go func(h Handler, inbox chan envelope) {
			defer c.wg.Done()
			for env := range inbox {
				env.reply <- safeHandle(h, env.req)
			}
		}(h, inbox)
	}
	return c
}

func safeHandle(h Handler, req any) (res result) {
	defer func() {
		if r := recover(); r != nil {
			res = result{err: fmt.Errorf("netsim: handler panic: %v", r)}
		}
	}()
	resp, err := h(req)
	return result{resp: resp, err: err}
}

// send enqueues one envelope under the read lock, so it cannot race Close.
// With a timeout configured, a full inbox (stuck handler) yields ErrTimeout
// instead of blocking indefinitely. The message counter records only
// deliveries that actually entered an inbox.
func (c *Chan) send(from, to int, env envelope) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.closed {
		return ErrClosed
	}
	if c.timeout > 0 {
		timer := time.NewTimer(c.timeout)
		defer timer.Stop()
		select {
		case c.inboxes[to] <- env:
		case <-timer.C:
			return fmt.Errorf("netsim: node %d inbox full: %w", to, ErrTimeout)
		}
	} else {
		c.inboxes[to] <- env
	}
	c.ctr.record(from, to, env.req)
	return nil
}

// recv waits for the reply, bounded by the configured timeout.
func (c *Chan) recv(to int, reply chan result) (any, error) {
	if c.timeout > 0 {
		timer := time.NewTimer(c.timeout)
		defer timer.Stop()
		select {
		case r := <-reply:
			return r.resp, r.err
		case <-timer.C:
			return nil, fmt.Errorf("netsim: node %d did not answer: %w", to, ErrTimeout)
		}
	}
	r := <-reply
	return r.resp, r.err
}

// Call implements Transport.
func (c *Chan) Call(from, to int, req any) (any, error) {
	if err := checkDest(to, c.NumNodes()); err != nil {
		return nil, err
	}
	if c.latency > 0 && from != to {
		time.Sleep(c.latency)
	}
	reply := c.getReply()
	if err := c.send(from, to, envelope{req: req, reply: reply}); err != nil {
		c.putReply(reply) // never entered an inbox, so never written
		return nil, err
	}
	resp, err := c.recv(to, reply)
	if c.timeout == 0 {
		c.putReply(reply) // recv drained the single buffered result
	}
	return resp, err
}

// Broadcast implements Transport. Deliveries run concurrently; the
// response slice is indexed by node. Every delivery is attempted; the
// returned error joins all per-node failures.
func (c *Chan) Broadcast(from int, req any) ([]any, error) {
	n := c.NumNodes()
	// Fan-out wires run in parallel: one latency covers the whole
	// broadcast.
	if c.latency > 0 {
		time.Sleep(c.latency)
	}
	replies := make([]chan result, n)
	var errs []error
	for to := 0; to < n; to++ {
		reply := c.getReply()
		if err := c.send(from, to, envelope{req: req, reply: reply}); err != nil {
			c.putReply(reply)
			errs = append(errs, fmt.Errorf("netsim: broadcast to node %d: %w", to, err))
			continue
		}
		replies[to] = reply
	}
	out := make([]any, n)
	for to := 0; to < n; to++ {
		if replies[to] == nil {
			continue
		}
		resp, err := c.recv(to, replies[to])
		if c.timeout == 0 {
			c.putReply(replies[to])
		}
		if err != nil {
			errs = append(errs, fmt.Errorf("netsim: broadcast to node %d: %w", to, err))
			continue
		}
		out[to] = resp
	}
	return out, errors.Join(errs...)
}

// NumNodes implements Transport.
func (c *Chan) NumNodes() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.inboxes)
}

// AddNode implements NodeAdder: it registers one more inbox and node
// goroutine under the write lock, so concurrent Calls to existing nodes
// (which hold the read lock around every inbox access) never race the
// slice growth.
func (c *Chan) AddNode(h Handler) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, ErrClosed
	}
	inbox := make(chan envelope, 128)
	c.inboxes = append(c.inboxes, inbox)
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for env := range inbox {
			env.reply <- safeHandle(h, env.req)
		}
	}()
	return len(c.inboxes) - 1, nil
}

// Stats implements Transport.
func (c *Chan) Stats() Stats { return c.ctr.stats() }

// ResetStats implements Transport.
func (c *Chan) ResetStats() { c.ctr.reset() }

// Close stops the node goroutines. Calls after Close fail with ErrClosed;
// a Call concurrent with Close either completes or observes ErrClosed —
// never a send on a closed channel.
func (c *Chan) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	for _, inbox := range c.inboxes {
		close(inbox)
	}
	c.mu.Unlock()
	c.wg.Wait()
}
