// Package netsim simulates the interconnect of a shared-nothing parallel
// RDBMS. Nodes are addressed 0..L-1; the coordinator (the query dispatcher,
// Teradata's "parsing engine") uses the reserved id Coordinator.
//
// Two transports are provided:
//
//   - Direct: synchronous in-process dispatch. Fully deterministic — the
//     experiments use it so I/O counter traces are exactly reproducible.
//   - Chan: one goroutine per node with a buffered inbox, requests carry
//     reply channels. Broadcasts fan out concurrently, so node-level
//     parallelism is real. Used by the throughput-oriented examples and
//     the transport-ablation benchmark.
//
// Both transports count messages. Following the paper's Figure 2 ("the
// dashed lines represent cases in which the network communication is
// conceptual and no real network communication happens"), a call whose
// source and destination coincide is not counted as a message.
package netsim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Coordinator is the reserved source id for calls that originate at the
// cluster coordinator rather than at a data-server node.
const Coordinator = -1

// Handler processes one request at a node and returns a response.
type Handler func(req any) (any, error)

// Transport moves requests between nodes.
type Transport interface {
	// Call delivers req from node `from` to node `to` and returns the
	// response. `from` may be Coordinator.
	Call(from, to int, req any) (any, error)
	// Broadcast delivers req from `from` to every node, returning the
	// responses indexed by node. It stops at (but reports) the first error.
	Broadcast(from int, req any) ([]any, error)
	// NumNodes returns the cluster size L.
	NumNodes() int
	// Stats returns message counters.
	Stats() Stats
	// ResetStats zeroes message counters.
	ResetStats()
	// Close releases transport resources (goroutines for Chan).
	Close()
}

// Stats counts interconnect traffic.
type Stats struct {
	// Messages is the number of point-to-point sends between distinct
	// endpoints (a broadcast to L nodes from a node counts L-1; a reply is
	// not counted separately — the paper's SEND covers a request/response
	// exchange).
	Messages int64
	// LocalCalls counts deliveries where source == destination (free).
	LocalCalls int64
}

type counters struct {
	messages atomic.Int64
	local    atomic.Int64
}

func (c *counters) record(from, to int) {
	if from == to {
		c.local.Add(1)
	} else {
		c.messages.Add(1)
	}
}

func (c *counters) stats() Stats {
	return Stats{Messages: c.messages.Load(), LocalCalls: c.local.Load()}
}

func (c *counters) reset() {
	c.messages.Store(0)
	c.local.Store(0)
}

func checkDest(to, n int) error {
	if to < 0 || to >= n {
		return fmt.Errorf("netsim: destination %d out of range [0,%d)", to, n)
	}
	return nil
}

// Direct is the deterministic transport: Call invokes the destination
// handler on the caller's goroutine. It must only be used by one goroutine
// at a time (the experiments drive the cluster single-threaded).
type Direct struct {
	handlers []Handler
	ctr      counters
}

// NewDirect builds a Direct transport over the given per-node handlers.
func NewDirect(handlers []Handler) *Direct {
	return &Direct{handlers: handlers}
}

// Call implements Transport.
func (d *Direct) Call(from, to int, req any) (any, error) {
	if err := checkDest(to, len(d.handlers)); err != nil {
		return nil, err
	}
	d.ctr.record(from, to)
	return d.handlers[to](req)
}

// Broadcast implements Transport.
func (d *Direct) Broadcast(from int, req any) ([]any, error) {
	out := make([]any, len(d.handlers))
	for to := range d.handlers {
		resp, err := d.Call(from, to, req)
		if err != nil {
			return out, fmt.Errorf("netsim: broadcast to node %d: %w", to, err)
		}
		out[to] = resp
	}
	return out, nil
}

// NumNodes implements Transport.
func (d *Direct) NumNodes() int { return len(d.handlers) }

// Stats implements Transport.
func (d *Direct) Stats() Stats { return d.ctr.stats() }

// ResetStats implements Transport.
func (d *Direct) ResetStats() { d.ctr.reset() }

// Close implements Transport (no-op for Direct).
func (d *Direct) Close() {}

// Chan runs each node as a goroutine draining a buffered inbox; requests
// carry reply channels. Handlers therefore execute serially per node but
// concurrently across nodes, which models the parallel DBMS's per-node
// work queues. An optional per-message latency models the interconnect's
// SEND cost in wall-clock terms (the paper treats SEND as "much smaller
// than the time spent on SEARCH, FETCH, and INSERT" — the latency knob
// lets experiments test what happens when it is not).
type Chan struct {
	inboxes []chan envelope
	latency time.Duration
	ctr     counters
	wg      sync.WaitGroup
	closed  atomic.Bool
}

type envelope struct {
	req   any
	reply chan result
}

type result struct {
	resp any
	err  error
}

// NewChan builds a Chan transport over the given per-node handlers.
func NewChan(handlers []Handler) *Chan { return NewChanLatency(handlers, 0) }

// NewChanLatency builds a Chan transport that delays every inter-node
// message by the given wall-clock latency (self-deliveries stay free, as
// in the paper's Figure 2).
func NewChanLatency(handlers []Handler, latency time.Duration) *Chan {
	c := &Chan{inboxes: make([]chan envelope, len(handlers)), latency: latency}
	for i, h := range handlers {
		inbox := make(chan envelope, 128)
		c.inboxes[i] = inbox
		c.wg.Add(1)
		go func(h Handler, inbox chan envelope) {
			defer c.wg.Done()
			for env := range inbox {
				env.reply <- safeHandle(h, env.req)
			}
		}(h, inbox)
	}
	return c
}

func safeHandle(h Handler, req any) (res result) {
	defer func() {
		if r := recover(); r != nil {
			res = result{err: fmt.Errorf("netsim: handler panic: %v", r)}
		}
	}()
	resp, err := h(req)
	return result{resp: resp, err: err}
}

// Call implements Transport.
func (c *Chan) Call(from, to int, req any) (any, error) {
	if err := checkDest(to, len(c.inboxes)); err != nil {
		return nil, err
	}
	if c.closed.Load() {
		return nil, fmt.Errorf("netsim: transport closed")
	}
	c.ctr.record(from, to)
	if c.latency > 0 && from != to {
		time.Sleep(c.latency)
	}
	reply := make(chan result, 1)
	c.inboxes[to] <- envelope{req: req, reply: reply}
	r := <-reply
	return r.resp, r.err
}

// Broadcast implements Transport. Deliveries run concurrently; the
// response slice is indexed by node. The first error (lowest node id)
// is returned.
func (c *Chan) Broadcast(from int, req any) ([]any, error) {
	if c.closed.Load() {
		return nil, fmt.Errorf("netsim: transport closed")
	}
	n := len(c.inboxes)
	// Fan-out wires run in parallel: one latency covers the whole
	// broadcast.
	if c.latency > 0 {
		time.Sleep(c.latency)
	}
	replies := make([]chan result, n)
	for to := 0; to < n; to++ {
		c.ctr.record(from, to)
		reply := make(chan result, 1)
		replies[to] = reply
		c.inboxes[to] <- envelope{req: req, reply: reply}
	}
	out := make([]any, n)
	var firstErr error
	for to := 0; to < n; to++ {
		r := <-replies[to]
		if r.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("netsim: broadcast to node %d: %w", to, r.err)
		}
		out[to] = r.resp
	}
	return out, firstErr
}

// NumNodes implements Transport.
func (c *Chan) NumNodes() int { return len(c.inboxes) }

// Stats implements Transport.
func (c *Chan) Stats() Stats { return c.ctr.stats() }

// ResetStats implements Transport.
func (c *Chan) ResetStats() { c.ctr.reset() }

// Close stops the node goroutines. Calls after Close fail.
func (c *Chan) Close() {
	if c.closed.Swap(true) {
		return
	}
	for _, inbox := range c.inboxes {
		close(inbox)
	}
	c.wg.Wait()
}
