package netsim

import (
	"sync"
	"sync/atomic"
)

// This file is the coordinator's scatter-gather dispatcher: a bounded
// parallel-for over per-node work with deterministic gather semantics.
// Every per-node fan-out in the cluster and maintenance layers goes
// through it, so the choice between serial and concurrent dispatch is a
// single flag rather than a property of each call site.
//
// Determinism contract: results are always gathered in input (node) order
// and the returned error is the lowest-index failure, so a parallel run is
// observationally identical to the serial one apart from wall-clock and
// the *order* in which node-local side effects land. Under the Direct
// transport the dispatcher must run serially (parallel=false): Direct's
// handlers execute on the caller's goroutine and the experiments rely on
// its byte-identical counter traces.

// Call describes one delivery of a scatter phase.
type Call struct {
	From, To int
	Req      any
}

// ScatterFunc runs fn(0..n-1). Serial mode (parallel=false, or n<2, or
// workers=1) executes in order and stops at the first error, exactly like
// the loop it replaces. Parallel mode dispatches every index across a
// bounded worker pool, waits for all of them, and returns the
// lowest-index error (later indexes still ran — callers that register
// per-index compensations must therefore do so for every success, not
// only the prefix). workers <= 0 means one worker per index.
func ScatterFunc(parallel bool, workers, n int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	if !parallel || n == 1 || workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	if workers <= 0 || workers > n {
		workers = n
	}
	errs := make([]error, n)
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ScatterCalls delivers the calls through t — concurrently when parallel —
// and gathers the responses in input order. On error the responses of the
// calls that did succeed are still returned (nil slots mark failures), so
// the caller can compensate applied work; the error is the lowest-index
// failure.
func ScatterCalls(t Transport, parallel bool, workers int, calls []Call) ([]any, error) {
	out := make([]any, len(calls))
	err := ScatterFunc(parallel, workers, len(calls), func(i int) error {
		resp, err := t.Call(calls[i].From, calls[i].To, calls[i].Req)
		if err != nil {
			return err
		}
		out[i] = resp
		return nil
	})
	return out, err
}
