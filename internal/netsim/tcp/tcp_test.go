package tcp

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"joinview/internal/netsim"
	"joinview/internal/node"
	"joinview/internal/types"
)

// echoHandlers builds n handlers that answer node.Ping with Ack and
// node.Insert by echoing synthetic row ids, erroring on a designated node.
func echoHandlers(n, failAt int) []netsim.Handler {
	hs := make([]netsim.Handler, n)
	for i := 0; i < n; i++ {
		i := i
		hs[i] = func(req any) (any, error) {
			if i == failAt {
				return nil, fmt.Errorf("node %d refuses", i)
			}
			switch r := req.(type) {
			case node.Ping:
				return node.Ack{}, nil
			case node.Insert:
				res := node.InsertResult{}
				for range r.Tuples {
					res.Rows = append(res.Rows, 7)
				}
				return res, nil
			}
			return nil, fmt.Errorf("unhandled %T", req)
		}
	}
	return hs
}

func newT(t *testing.T, n, failAt int) *Transport {
	t.Helper()
	tr, err := New(echoHandlers(n, failAt))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tr.Close)
	return tr
}

func TestCallRoundTripsTypedPayloads(t *testing.T) {
	tr := newT(t, 3, -1)
	resp, err := tr.Call(netsim.Coordinator, 1, node.Ping{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := resp.(node.Ack); !ok {
		t.Fatalf("got %T, want node.Ack", resp)
	}
	ins := node.Insert{Frag: "f", Tuples: []types.Tuple{{types.Int(1), types.String("x")}}, Epoch: 5}
	resp, err = tr.Call(0, 2, ins)
	if err != nil {
		t.Fatal(err)
	}
	ir, ok := resp.(node.InsertResult)
	if !ok || len(ir.Rows) != 1 {
		t.Fatalf("got %#v, want one echoed row", resp)
	}
}

func TestHandlerErrorsFlattenToStrings(t *testing.T) {
	tr := newT(t, 2, 1)
	_, err := tr.Call(netsim.Coordinator, 1, node.Ping{})
	if err == nil || !strings.Contains(err.Error(), "node 1 refuses") {
		t.Fatalf("got %v, want flattened handler error", err)
	}
}

func TestBroadcastJoinsPerNodeFailures(t *testing.T) {
	tr := newT(t, 3, 1)
	out, err := tr.Broadcast(netsim.Coordinator, node.Ping{})
	if err == nil || !strings.Contains(err.Error(), "netsim: broadcast to node 1") {
		t.Fatalf("got %v, want Direct/Chan broadcast error shape", err)
	}
	if out[0] == nil || out[1] != nil || out[2] == nil {
		t.Fatalf("out = %#v: surviving slots must answer, failed slot must be nil", out)
	}
}

func TestStatsMatchNetsimAccounting(t *testing.T) {
	tr := newT(t, 3, -1)
	if _, err := tr.Call(netsim.Coordinator, 0, node.Ping{}); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Call(1, 1, node.Ping{}); err != nil { // self-delivery
		t.Fatal(err)
	}
	s := tr.Stats()
	if s.Envelopes != 2 || s.Messages != 1 || s.LocalCalls != 1 {
		t.Fatalf("stats = %+v, want 2 envelopes, 1 message, 1 local", s)
	}
	tr.ResetStats()
	if s := tr.Stats(); s != (netsim.Stats{}) {
		t.Fatalf("reset left %+v", s)
	}
}

func TestAddNodeGrowsCluster(t *testing.T) {
	tr := newT(t, 1, -1)
	id, err := tr.AddNode(echoHandlers(1, -1)[0])
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 || tr.NumNodes() != 2 {
		t.Fatalf("AddNode gave id %d over %d nodes, want 1 over 2", id, tr.NumNodes())
	}
	if _, err := tr.Call(0, 1, node.Ping{}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentCallsSerializePerNode(t *testing.T) {
	const n, calls = 4, 64
	var mu sync.Mutex
	depth := make([]int, n)
	hs := make([]netsim.Handler, n)
	for i := 0; i < n; i++ {
		i := i
		hs[i] = func(req any) (any, error) {
			mu.Lock()
			depth[i]++
			if depth[i] > 1 {
				mu.Unlock()
				return nil, errors.New("handler reentered")
			}
			mu.Unlock()
			mu.Lock()
			depth[i]--
			mu.Unlock()
			return node.Ack{}, nil
		}
	}
	tr, err := New(hs)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	var wg sync.WaitGroup
	errs := make([]error, calls)
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = tr.Call(netsim.Coordinator, i%n, node.Ping{})
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestCallAfterCloseFails(t *testing.T) {
	tr := newT(t, 2, -1)
	tr.Close()
	if _, err := tr.Call(0, 1, node.Ping{}); !errors.Is(err, netsim.ErrClosed) {
		t.Fatalf("got %v, want ErrClosed", err)
	}
}
