// Package tcp is a real-socket implementation of the netsim.Transport
// contract: every node listens on a loopback TCP port, requests and
// responses travel as gob-encoded envelopes, and the coordinator keeps a
// small per-destination connection pool. It exists to prove the engine's
// envelope encoding works off in-process channels — the cluster code is
// byte-for-byte the same over Direct, Chan and TCP.
//
// Contract deviations, both documented at the Config surface:
//
//   - Errors are flattened to strings on the wire, so errors.Is matching
//     of node-side sentinel errors does not survive the hop. Fault
//     injection (whose machinery classifies wrapped error values) is
//     therefore rejected with this transport.
//   - There is no latency or timeout knob; calls block until the peer
//     answers or the connection breaks.
package tcp

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"joinview/internal/expr"
	"joinview/internal/netsim"
	"joinview/internal/node"
)

func init() {
	for _, r := range node.AllRequests() {
		gob.Register(r)
	}
	for _, r := range node.AllResponses() {
		gob.Register(r)
	}
	// Predicate trees ride inside FindMatching as expr.Expr values.
	gob.Register(expr.Col{})
	gob.Register(expr.Const{})
	gob.Register(expr.Cmp{})
	gob.Register(expr.And{})
	gob.Register(expr.Or{})
	gob.Register(expr.Not{})
}

// wireReq frames one request.
type wireReq struct {
	Req any
}

// wireResp frames one response; Err is the flattened handler error ("" =
// success).
type wireResp struct {
	Resp any
	Err  string
}

// server is one node's listening side. The handler mutex serializes
// request execution per node — the same discipline the Chan transport's
// per-node goroutine provides — while different nodes execute
// concurrently.
type server struct {
	ln net.Listener
	h  netsim.Handler
	mu sync.Mutex // serializes handler execution
	wg sync.WaitGroup
}

func (s *server) serve() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			dec := gob.NewDecoder(conn)
			enc := gob.NewEncoder(conn)
			for {
				var req wireReq
				if err := dec.Decode(&req); err != nil {
					return // peer closed or stream broken
				}
				resp, err := s.handle(req.Req)
				w := wireResp{Resp: resp}
				if err != nil {
					w = wireResp{Err: err.Error()}
				}
				if err := enc.Encode(w); err != nil {
					return
				}
			}
		}()
	}
}

func (s *server) handle(req any) (resp any, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer func() {
		if r := recover(); r != nil {
			resp, err = nil, fmt.Errorf("tcp: handler panic: %v", r)
		}
	}()
	return s.h(req)
}

// conn is one pooled client connection with its sticky codec pair (gob
// streams carry type dictionaries, so encoder and decoder must live as
// long as the connection).
type conn struct {
	c   net.Conn
	enc *gob.Encoder
	dec *gob.Decoder
}

// pool is a per-destination free list. Checkout is exclusive: one in-flight
// request per connection, strict request/response lockstep.
type pool struct {
	mu   sync.Mutex
	idle []*conn
	addr string
}

func (p *pool) get() (*conn, error) {
	p.mu.Lock()
	if n := len(p.idle); n > 0 {
		c := p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		return c, nil
	}
	addr := p.addr
	p.mu.Unlock()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcp: dial %s: %w", addr, err)
	}
	return &conn{c: nc, enc: gob.NewEncoder(nc), dec: gob.NewDecoder(nc)}, nil
}

func (p *pool) put(c *conn) {
	p.mu.Lock()
	p.idle = append(p.idle, c)
	p.mu.Unlock()
}

func (p *pool) close() {
	p.mu.Lock()
	for _, c := range p.idle {
		c.c.Close()
	}
	p.idle = nil
	p.mu.Unlock()
}

// counters mirrors the in-package netsim accounting (that type is
// unexported): one envelope per physical delivery, logical SEND counts for
// batched requests implementing netsim.Envelope, self-deliveries free.
type counters struct {
	messages  atomic.Int64
	local     atomic.Int64
	envelopes atomic.Int64
}

func (c *counters) record(from, to int, req any) {
	c.envelopes.Add(1)
	if env, ok := req.(netsim.Envelope); ok {
		msgs, local := env.LogicalCounts(from, to)
		c.messages.Add(msgs)
		c.local.Add(local)
		return
	}
	if from == to {
		c.local.Add(1)
	} else {
		c.messages.Add(1)
	}
}

// Transport is the TCP implementation of netsim.Transport (plus
// netsim.NodeAdder).
type Transport struct {
	mu      sync.RWMutex // guards servers/pools growth and closed
	servers []*server
	pools   []*pool
	closed  bool
	ctr     counters
}

// New starts one loopback listener per handler and returns the connected
// transport.
func New(handlers []netsim.Handler) (*Transport, error) {
	t := &Transport{}
	for _, h := range handlers {
		if _, err := t.AddNode(h); err != nil {
			t.Close()
			return nil, err
		}
	}
	return t, nil
}

// AddNode implements netsim.NodeAdder: it starts a listener for one more
// node and returns its id.
func (t *Transport) AddNode(h netsim.Handler) (int, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, fmt.Errorf("tcp: listen: %w", err)
	}
	s := &server{ln: ln, h: h}
	go s.serve()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		ln.Close()
		return 0, netsim.ErrClosed
	}
	t.servers = append(t.servers, s)
	t.pools = append(t.pools, &pool{addr: ln.Addr().String()})
	return len(t.servers) - 1, nil
}

// Call implements netsim.Transport.
func (t *Transport) Call(from, to int, req any) (any, error) {
	t.mu.RLock()
	n := len(t.pools)
	if t.closed {
		t.mu.RUnlock()
		return nil, netsim.ErrClosed
	}
	if to < 0 || to >= n {
		t.mu.RUnlock()
		return nil, fmt.Errorf("netsim: destination %d out of range [0,%d)", to, n)
	}
	p := t.pools[to]
	t.mu.RUnlock()

	c, err := p.get()
	if err != nil {
		return nil, err
	}
	t.ctr.record(from, to, req)
	if err := c.enc.Encode(wireReq{Req: req}); err != nil {
		c.c.Close()
		return nil, fmt.Errorf("tcp: send to node %d: %w", to, err)
	}
	var w wireResp
	if err := c.dec.Decode(&w); err != nil {
		c.c.Close()
		return nil, fmt.Errorf("tcp: receive from node %d: %w", to, err)
	}
	p.put(c)
	if w.Err != "" {
		return nil, errors.New(w.Err)
	}
	return w.Resp, nil
}

// Broadcast implements netsim.Transport: concurrent fan-out, every node
// attempted, failures joined with their node ids (the Direct/Chan error
// shape).
func (t *Transport) Broadcast(from int, req any) ([]any, error) {
	n := t.NumNodes()
	out := make([]any, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for to := 0; to < n; to++ {
		wg.Add(1)
		go func(to int) {
			defer wg.Done()
			resp, err := t.Call(from, to, req)
			if err != nil {
				errs[to] = fmt.Errorf("netsim: broadcast to node %d: %w", to, err)
				return
			}
			out[to] = resp
		}(to)
	}
	wg.Wait()
	return out, errors.Join(errs...)
}

// NumNodes implements netsim.Transport.
func (t *Transport) NumNodes() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.servers)
}

// Stats implements netsim.Transport.
func (t *Transport) Stats() netsim.Stats {
	return netsim.Stats{
		Messages:   t.ctr.messages.Load(),
		LocalCalls: t.ctr.local.Load(),
		Envelopes:  t.ctr.envelopes.Load(),
	}
}

// ResetStats implements netsim.Transport.
func (t *Transport) ResetStats() {
	t.ctr.messages.Store(0)
	t.ctr.local.Store(0)
	t.ctr.envelopes.Store(0)
}

// Close implements netsim.Transport: closes listeners, in-flight server
// goroutines and pooled client connections.
func (t *Transport) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	servers, pools := t.servers, t.pools
	t.mu.Unlock()
	for _, p := range pools {
		p.close()
	}
	for _, s := range servers {
		s.ln.Close()
		s.wg.Wait()
	}
}
