// Package gindex implements global indexes, the paper's third maintenance
// structure (§2.1.3): an index partitioned on a non-partitioning attribute
// c of a relation, mapping each value of c to the global row ids — (node,
// local row id) pairs — of all tuples with that value.
//
// Each node holds one Fragment of the global index: the entries whose key
// hashes to that node. A global index is "distributed clustered" when the
// base relation is locally clustered on the indexed attribute at every
// node, which makes the per-node fetch of matching tuples a single page.
package gindex

import (
	"sort"

	"joinview/internal/btree"
	"joinview/internal/storage"
	"joinview/internal/types"
)

// Fragment is one node's share of a global index.
type Fragment struct {
	tree          *btree.Tree // key = encoded attribute value, val = encoded GlobalRowID
	meter         *storage.Meter
	distClustered bool
}

// New creates an empty global-index fragment charging I/O to meter.
func New(meter *storage.Meter, distClustered bool) *Fragment {
	return &Fragment{tree: btree.New(), meter: meter, distClustered: distClustered}
}

// DistClustered reports whether the index is distributed clustered.
func (f *Fragment) DistClustered() bool { return f.distClustered }

// Len returns the number of entries in this fragment.
func (f *Fragment) Len() int { return f.tree.Len() }

// Insert adds an entry mapping value v to global row id g, charging one
// INSERT ("inserting a new entry ... into the global index", §3.1(8)).
func (f *Fragment) Insert(v types.Value, g storage.GlobalRowID) {
	f.tree.Insert(types.EncodeKey(v), storage.EncodeGlobalRowID(g))
	f.meter.Insert(1)
}

// InsertUnmetered adds an entry without charging I/O (index backfill).
func (f *Fragment) InsertUnmetered(v types.Value, g storage.GlobalRowID) {
	f.tree.Insert(types.EncodeKey(v), storage.EncodeGlobalRowID(g))
}

// Delete removes the entry (v, g), charging one DELETE, and reports whether
// it existed.
func (f *Fragment) Delete(v types.Value, g storage.GlobalRowID) bool {
	ok := f.tree.Delete(types.EncodeKey(v), storage.EncodeGlobalRowID(g))
	if ok {
		f.meter.Delete(1)
	}
	return ok
}

// DeleteUnmetered removes the entry (v, g) without charging I/O
// (replication failover and repair).
func (f *Fragment) DeleteUnmetered(v types.Value, g storage.GlobalRowID) bool {
	return f.tree.Delete(types.EncodeKey(v), storage.EncodeGlobalRowID(g))
}

// Lookup returns the global row ids recorded for value v, charging one
// SEARCH. Per §3.1(6), fetching the located entry list is free (the entry
// fits on the page the search lands on).
func (f *Fragment) Lookup(v types.Value) []storage.GlobalRowID {
	f.meter.Search(1)
	raw := f.tree.Get(types.EncodeKey(v))
	out := make([]storage.GlobalRowID, 0, len(raw))
	for _, b := range raw {
		g, ok := storage.DecodeGlobalRowID(b)
		if !ok {
			panic("gindex: corrupt global row id entry")
		}
		out = append(out, g)
	}
	return out
}

// Scan visits every entry in value order without charging I/O
// (verification and debugging).
func (f *Fragment) Scan(fn func(v types.Value, g storage.GlobalRowID) bool) {
	f.tree.Scan(func(k, val []byte) bool {
		v, _, err := types.DecodeValue(k)
		if err != nil {
			panic("gindex: corrupt key: " + err.Error())
		}
		g, ok := storage.DecodeGlobalRowID(val)
		if !ok {
			panic("gindex: corrupt global row id entry")
		}
		return fn(v, g)
	})
}

// Snapshot is a self-contained image of a global-index fragment, for the
// durability layer's checkpoints (parallel value/row-id slices).
type Snapshot struct {
	DistClustered bool
	Vals          []types.Value
	Gs            []storage.GlobalRowID
}

// Snapshot captures the fragment's current entries.
func (f *Fragment) Snapshot() Snapshot {
	s := Snapshot{DistClustered: f.distClustered}
	f.Scan(func(v types.Value, g storage.GlobalRowID) bool {
		s.Vals = append(s.Vals, v)
		s.Gs = append(s.Gs, g)
		return true
	})
	return s
}

// Restore reconstructs a fragment from a snapshot, unmetered (the recovery
// path accounts checkpoint pages instead).
func Restore(s Snapshot, meter *storage.Meter) *Fragment {
	f := New(meter, s.DistClustered)
	for i, v := range s.Vals {
		f.InsertUnmetered(v, s.Gs[i])
	}
	return f
}

// NodeRows groups the rows of one node from a global-row-id list.
type NodeRows struct {
	Node int
	Rows []storage.RowID
}

// GroupByNode partitions global row ids by node, returning groups sorted by
// node id (deterministic iteration order for the experiments). The group
// count is the paper's K: the number of nodes the matching tuples reside at.
func GroupByNode(ids []storage.GlobalRowID) []NodeRows {
	byNode := map[int][]storage.RowID{}
	for _, g := range ids {
		byNode[int(g.Node)] = append(byNode[int(g.Node)], g.Row)
	}
	nodes := make([]int, 0, len(byNode))
	for n := range byNode {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	out := make([]NodeRows, 0, len(nodes))
	for _, n := range nodes {
		out = append(out, NodeRows{Node: n, Rows: byNode[n]})
	}
	return out
}
