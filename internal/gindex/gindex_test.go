package gindex

import (
	"testing"
	"testing/quick"

	"joinview/internal/storage"
	"joinview/internal/types"
)

func TestInsertLookupDelete(t *testing.T) {
	m := &storage.Meter{}
	f := New(m, false)
	g1 := storage.GlobalRowID{Node: 0, Row: 1}
	g2 := storage.GlobalRowID{Node: 3, Row: 7}
	f.Insert(types.Int(5), g1)
	f.Insert(types.Int(5), g2)
	f.Insert(types.Int(6), storage.GlobalRowID{Node: 1, Row: 2})
	if f.Len() != 3 {
		t.Fatalf("Len = %d", f.Len())
	}
	got := f.Lookup(types.Int(5))
	if len(got) != 2 || got[0] != g1 || got[1] != g2 {
		t.Fatalf("Lookup = %v", got)
	}
	if len(f.Lookup(types.Int(99))) != 0 {
		t.Error("lookup of absent value should be empty")
	}
	if !f.Delete(types.Int(5), g1) {
		t.Fatal("Delete failed")
	}
	if f.Delete(types.Int(5), g1) {
		t.Error("double delete returned true")
	}
	got = f.Lookup(types.Int(5))
	if len(got) != 1 || got[0] != g2 {
		t.Fatalf("after delete: %v", got)
	}
}

func TestMeterCharges(t *testing.T) {
	m := &storage.Meter{}
	f := New(m, true)
	if !f.DistClustered() {
		t.Error("DistClustered lost")
	}
	f.Insert(types.Int(1), storage.GlobalRowID{Node: 0, Row: 0})
	f.Lookup(types.Int(1))
	f.Lookup(types.Int(2))
	f.Delete(types.Int(1), storage.GlobalRowID{Node: 0, Row: 0})
	c := m.Snapshot()
	if c.Inserts != 1 || c.Searches != 2 || c.Deletes != 1 || c.Fetches != 0 {
		t.Errorf("charges = %+v", c)
	}
}

func TestGroupByNode(t *testing.T) {
	ids := []storage.GlobalRowID{
		{Node: 3, Row: 1},
		{Node: 0, Row: 2},
		{Node: 3, Row: 5},
		{Node: 1, Row: 9},
	}
	groups := GroupByNode(ids)
	if len(groups) != 3 {
		t.Fatalf("K = %d, want 3", len(groups))
	}
	if groups[0].Node != 0 || groups[1].Node != 1 || groups[2].Node != 3 {
		t.Errorf("groups not sorted: %v", groups)
	}
	if len(groups[2].Rows) != 2 || groups[2].Rows[0] != 1 || groups[2].Rows[1] != 5 {
		t.Errorf("node 3 rows = %v", groups[2].Rows)
	}
	if GroupByNode(nil) != nil && len(GroupByNode(nil)) != 0 {
		t.Error("empty input should yield no groups")
	}
}

// Property: K = |GroupByNode(ids)| is exactly the number of distinct nodes,
// and every row id survives grouping.
func TestGroupByNodePreservesRows(t *testing.T) {
	f := func(nodes []uint8) bool {
		ids := make([]storage.GlobalRowID, len(nodes))
		distinct := map[int32]bool{}
		for i, n := range nodes {
			node := int32(n % 16)
			ids[i] = storage.GlobalRowID{Node: node, Row: storage.RowID(i)}
			distinct[node] = true
		}
		groups := GroupByNode(ids)
		if len(groups) != len(distinct) {
			return false
		}
		total := 0
		for _, g := range groups {
			total += len(g.Rows)
		}
		return total == len(ids)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
