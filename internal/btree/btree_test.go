package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"joinview/internal/types"
)

func key(i int64) []byte  { return types.EncodeKey(types.Int(i)) }
func val(s string) []byte { return []byte(s) }

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Error("empty tree Len != 0")
	}
	if tr.Contains(key(1)) {
		t.Error("empty tree Contains true")
	}
	if got := tr.Get(key(1)); got != nil {
		t.Errorf("empty tree Get = %v", got)
	}
	if tr.Delete(key(1), nil) {
		t.Error("delete from empty tree returned true")
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
	if tr.Height() != 1 {
		t.Error("empty tree height != 1")
	}
}

func TestInsertGet(t *testing.T) {
	tr := New()
	for i := int64(0); i < 1000; i++ {
		tr.Insert(key(i), val(fmt.Sprintf("v%d", i)))
	}
	if tr.Len() != 1000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 1000; i++ {
		got := tr.Get(key(i))
		if len(got) != 1 || string(got[0]) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(%d) = %q", i, got)
		}
	}
	if tr.Contains(key(1000)) {
		t.Error("Contains(1000) should be false")
	}
	if tr.Height() < 2 {
		t.Error("1000 entries should split the root")
	}
}

func TestDuplicateKeysInsertionOrder(t *testing.T) {
	tr := New()
	const dups = 200 // force duplicates across leaf splits
	for i := 0; i < dups; i++ {
		tr.Insert(key(42), val(fmt.Sprintf("d%03d", i)))
	}
	tr.Insert(key(41), val("before"))
	tr.Insert(key(43), val("after"))
	got := tr.Get(key(42))
	if len(got) != dups {
		t.Fatalf("Get returned %d duplicates, want %d", len(got), dups)
	}
	for i, v := range got {
		if string(v) != fmt.Sprintf("d%03d", i) {
			t.Fatalf("duplicate %d = %q: insertion order not preserved", i, v)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteSpecificValue(t *testing.T) {
	tr := New()
	tr.Insert(key(1), val("a"))
	tr.Insert(key(1), val("b"))
	tr.Insert(key(1), val("c"))
	if !tr.Delete(key(1), val("b")) {
		t.Fatal("Delete(1,b) failed")
	}
	got := tr.Get(key(1))
	if len(got) != 2 || string(got[0]) != "a" || string(got[1]) != "c" {
		t.Fatalf("after delete: %q", got)
	}
	if tr.Delete(key(1), val("b")) {
		t.Error("second Delete(1,b) should fail")
	}
	if !tr.Delete(key(1), nil) {
		t.Fatal("Delete(1,nil) failed")
	}
	if len(tr.Get(key(1))) != 1 {
		t.Error("nil-value delete should remove exactly one entry")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteAcrossLeaves(t *testing.T) {
	tr := New()
	const dups = 300
	for i := 0; i < dups; i++ {
		tr.Insert(key(7), val(fmt.Sprintf("x%03d", i)))
	}
	// Delete a value that lives in a later leaf of the duplicate run.
	if !tr.Delete(key(7), val(fmt.Sprintf("x%03d", dups-1))) {
		t.Fatal("delete of last duplicate failed")
	}
	if tr.Len() != dups-1 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAscendRange(t *testing.T) {
	tr := New()
	for i := int64(0); i < 100; i += 2 {
		tr.Insert(key(i), val(fmt.Sprint(i)))
	}
	var got []string
	tr.Ascend(key(11), func(k, v []byte) bool {
		got = append(got, string(v))
		return len(got) < 3
	})
	want := []string{"12", "14", "16"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ascend = %v, want %v", got, want)
		}
	}
}

func TestScanOrder(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(1))
	perm := rng.Perm(2000)
	for _, i := range perm {
		tr.Insert(key(int64(i)), val(fmt.Sprint(i)))
	}
	var prev []byte
	n := 0
	tr.Scan(func(k, v []byte) bool {
		if prev != nil && bytes.Compare(prev, k) > 0 {
			t.Fatal("scan out of order")
		}
		prev = append(prev[:0], k...)
		n++
		return true
	})
	if n != 2000 {
		t.Fatalf("scan visited %d entries", n)
	}
}

// Property: after any interleaving of inserts and deletes, the tree's
// contents match a reference multimap and all structural invariants hold.
func TestRandomOpsMatchReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New()
		ref := map[int64][]string{}
		for op := 0; op < 800; op++ {
			k := int64(rng.Intn(50)) // small domain -> many duplicates
			if rng.Intn(3) > 0 || len(ref[k]) == 0 {
				v := fmt.Sprintf("s%d-o%d", seed, op)
				tr.Insert(key(k), val(v))
				ref[k] = append(ref[k], v)
			} else {
				i := rng.Intn(len(ref[k]))
				v := ref[k][i]
				if !tr.Delete(key(k), val(v)) {
					t.Logf("delete (%d,%s) failed", k, v)
					return false
				}
				ref[k] = append(ref[k][:i], ref[k][i+1:]...)
			}
		}
		if err := tr.Validate(); err != nil {
			t.Log(err)
			return false
		}
		total := 0
		for k, vs := range ref {
			total += len(vs)
			got := tr.Get(key(k))
			if len(got) != len(vs) {
				t.Logf("key %d: tree has %d values, ref has %d", k, len(got), len(vs))
				return false
			}
			sortedGot := make([]string, len(got))
			for i, g := range got {
				sortedGot[i] = string(g)
			}
			sortedRef := append([]string(nil), vs...)
			sort.Strings(sortedGot)
			sort.Strings(sortedRef)
			for i := range sortedRef {
				if sortedGot[i] != sortedRef[i] {
					return false
				}
			}
		}
		return tr.Len() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	tr := New()
	for i := 0; i < b.N; i++ {
		tr.Insert(key(int64(i)), val("x"))
	}
}

func BenchmarkPointLookup(b *testing.B) {
	tr := New()
	for i := int64(0); i < 100000; i++ {
		tr.Insert(key(i), val("x"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(key(int64(i % 100000)))
	}
}
