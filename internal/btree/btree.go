// Package btree implements an in-memory B+-tree keyed by byte slices, with
// duplicate keys allowed. It backs every index structure in the engine:
// clustered table fragments (key = cluster attribute, value = encoded row),
// non-clustered secondary indexes (value = local row id) and global-index
// fragments (value = encoded global row id list entries).
//
// Keys use the order-preserving encoding from internal/types, so bytewise
// comparison matches value order. Duplicates are kept in insertion order
// within a key.
package btree

import (
	"bytes"
	"fmt"
)

// degree is the maximum number of children of an interior node; leaves hold
// up to degree-1 entries. Chosen small enough to exercise splits in tests
// and large enough to keep trees shallow at benchmark scale.
const degree = 64

type entry struct {
	key []byte
	val []byte
}

type node struct {
	// entries holds the leaf payload (leaf nodes) or separator keys
	// (interior nodes: entries[i].key is the smallest key in children[i+1],
	// entries[i].val is nil).
	entries  []entry
	children []*node // nil for leaves
	next     *node   // leaf-level sibling link for range scans
}

func (n *node) leaf() bool { return n.children == nil }

// Tree is a B+-tree mapping byte-slice keys to byte-slice values, allowing
// duplicate keys. The zero value is not usable; call New.
type Tree struct {
	root *node
	size int
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{root: &node{}}
}

// Len returns the number of stored entries (duplicates counted).
func (t *Tree) Len() int { return t.size }

// Insert adds (key, val). Duplicate keys are allowed; within a key the new
// entry lands after existing entries with the same key. Key and value are
// retained by the tree (callers must not mutate them afterwards).
func (t *Tree) Insert(key, val []byte) {
	right, sep := t.root.insert(key, val)
	if right != nil {
		t.root = &node{
			entries:  []entry{{key: sep}},
			children: []*node{t.root, right},
		}
	}
	t.size++
}

// insert adds the entry to the subtree; if the node split, it returns the
// new right sibling and the separator key.
func (n *node) insert(key, val []byte) (*node, []byte) {
	if n.leaf() {
		// Position after all entries <= key (stable duplicate order).
		i := upperBound(n.entries, key)
		n.entries = append(n.entries, entry{})
		copy(n.entries[i+1:], n.entries[i:])
		n.entries[i] = entry{key: key, val: val}
	} else {
		ci := n.childIndex(key)
		right, sep := n.children[ci].insert(key, val)
		if right != nil {
			n.entries = append(n.entries, entry{})
			copy(n.entries[ci+1:], n.entries[ci:])
			n.entries[ci] = entry{key: sep}
			n.children = append(n.children, nil)
			copy(n.children[ci+2:], n.children[ci+1:])
			n.children[ci+1] = right
		}
	}
	if len(n.entries) < degree {
		return nil, nil
	}
	return n.split()
}

// split divides an overfull node in half, returning the new right sibling
// and the separator key to push up.
func (n *node) split() (*node, []byte) {
	mid := len(n.entries) / 2
	right := &node{}
	if n.leaf() {
		right.entries = append(right.entries, n.entries[mid:]...)
		n.entries = n.entries[:mid:mid]
		right.next = n.next
		n.next = right
		return right, right.entries[0].key
	}
	sep := n.entries[mid].key
	right.entries = append(right.entries, n.entries[mid+1:]...)
	right.children = append(right.children, n.children[mid+1:]...)
	n.entries = n.entries[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return right, sep
}

// childIndex picks the child subtree that may contain key (descend right on
// equality so duplicates cluster and inserts stay stable).
func (n *node) childIndex(key []byte) int {
	i := upperBound(n.entries, key)
	return i
}

// upperBound returns the index of the first entry whose key is strictly
// greater than key.
func upperBound(entries []entry, key []byte) int {
	lo, hi := 0, len(entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(entries[mid].key, key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// lowerBound returns the index of the first entry whose key is >= key.
func lowerBound(entries []entry, key []byte) int {
	lo, hi := 0, len(entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(entries[mid].key, key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Get returns the values stored under key, in insertion order.
func (t *Tree) Get(key []byte) [][]byte {
	var out [][]byte
	t.Ascend(key, func(k, v []byte) bool {
		if !bytes.Equal(k, key) {
			return false
		}
		out = append(out, v)
		return true
	})
	return out
}

// GetFirst returns the first value stored under the key, or (nil, false).
// Single-value callers (unique primary keys) use it to skip the slice
// allocation of Get.
func (t *Tree) GetFirst(key []byte) ([]byte, bool) {
	var out []byte
	found := false
	t.Ascend(key, func(k, v []byte) bool {
		if !bytes.Equal(k, key) {
			return false
		}
		out, found = v, true
		return false
	})
	return out, found
}

// Contains reports whether at least one entry with the key exists.
func (t *Tree) Contains(key []byte) bool {
	found := false
	t.Ascend(key, func(k, v []byte) bool {
		found = bytes.Equal(k, key)
		return false
	})
	return found
}

// Delete removes one entry matching (key, val) — val compared bytewise —
// and reports whether an entry was removed. Passing a nil val removes the
// first entry with the key regardless of value.
//
// Deletion removes the entry from its leaf without rebalancing: leaves may
// underflow but never violate ordering, which keeps scans and searches
// correct. (Classic B+-tree merge/borrow is deliberately omitted; the
// workloads here are insert-mostly, matching the paper's streams.)
func (t *Tree) Delete(key, val []byte) bool {
	// Duplicates of key may span several leaves; start at the leftmost
	// leaf that can contain it and walk forward via sibling links.
	for leaf := t.leafFor(key); leaf != nil; leaf = leaf.next {
		i := lowerBound(leaf.entries, key)
		for ; i < len(leaf.entries); i++ {
			e := leaf.entries[i]
			if !bytes.Equal(e.key, key) {
				return false
			}
			if val == nil || bytes.Equal(e.val, val) {
				leaf.entries = append(leaf.entries[:i], leaf.entries[i+1:]...)
				t.size--
				return true
			}
		}
	}
	return false
}

// leafFor descends to the leftmost leaf that can contain key.
func (t *Tree) leafFor(key []byte) *node {
	n := t.root
	for !n.leaf() {
		n = n.children[lowerBound(n.entries, key)]
	}
	return n
}

// Ascend visits entries with key >= start in key order (and insertion order
// within a key), calling fn until it returns false. A nil start begins at
// the smallest key.
func (t *Tree) Ascend(start []byte, fn func(key, val []byte) bool) {
	var leaf *node
	if start == nil {
		leaf = t.root
		for !leaf.leaf() {
			leaf = leaf.children[0]
		}
	} else {
		leaf = t.leafFor(start)
	}
	i := 0
	if start != nil {
		i = lowerBound(leaf.entries, start)
	}
	for leaf != nil {
		for ; i < len(leaf.entries); i++ {
			if !fn(leaf.entries[i].key, leaf.entries[i].val) {
				return
			}
		}
		leaf = leaf.next
		i = 0
	}
}

// Scan visits every entry in key order.
func (t *Tree) Scan(fn func(key, val []byte) bool) { t.Ascend(nil, fn) }

// Height returns the tree height (a single leaf has height 1).
func (t *Tree) Height() int {
	h := 1
	for n := t.root; !n.leaf(); n = n.children[0] {
		h++
	}
	return h
}

// Validate checks structural invariants: key ordering within and across
// leaves, separator correctness, uniform leaf depth and sibling-link
// completeness. It returns the first violation found, or nil. Used by the
// property tests.
func (t *Tree) Validate() error {
	depth := -1
	var prevKey []byte
	count := 0
	var walk func(n *node, d int, lo, hi []byte) error
	walk = func(n *node, d int, lo, hi []byte) error {
		if n.leaf() {
			if depth == -1 {
				depth = d
			} else if depth != d {
				return fmt.Errorf("btree: leaves at depths %d and %d", depth, d)
			}
			for _, e := range n.entries {
				if prevKey != nil && bytes.Compare(prevKey, e.key) > 0 {
					return fmt.Errorf("btree: keys out of order: %x then %x", prevKey, e.key)
				}
				if lo != nil && bytes.Compare(e.key, lo) < 0 {
					return fmt.Errorf("btree: key %x below separator %x", e.key, lo)
				}
				if hi != nil && bytes.Compare(e.key, hi) > 0 {
					return fmt.Errorf("btree: key %x above separator %x", e.key, hi)
				}
				prevKey = e.key
				count++
			}
			return nil
		}
		if len(n.children) != len(n.entries)+1 {
			return fmt.Errorf("btree: interior node has %d children for %d separators", len(n.children), len(n.entries))
		}
		for i, c := range n.children {
			clo, chi := lo, hi
			if i > 0 {
				clo = n.entries[i-1].key
			}
			if i < len(n.entries) {
				chi = n.entries[i].key
			}
			if err := walk(c, d+1, clo, chi); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 1, nil, nil); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("btree: size %d but %d entries reachable", t.size, count)
	}
	// Sibling links must visit exactly the same entries.
	linked := 0
	t.Scan(func(k, v []byte) bool { linked++; return true })
	if linked != count {
		return fmt.Errorf("btree: sibling links reach %d entries, tree has %d", linked, count)
	}
	return nil
}
