package lockmgr

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// randomClaims draws a claim set with deliberate duplicates (same
// resource requested repeatedly in mixed modes) from a small resource
// pool, so concurrent acquirers collide constantly.
func randomClaims(rng *rand.Rand, pool []string) []Claim {
	n := 1 + rng.Intn(6)
	claims := make([]Claim, 0, n)
	for i := 0; i < n; i++ {
		res := pool[rng.Intn(len(pool))]
		if rng.Intn(2) == 0 {
			claims = append(claims, S(res))
		} else {
			claims = append(claims, X(res))
		}
	}
	return claims
}

// TestPropertyNoDeadlock hammers one manager with many goroutines, each
// acquiring a random overlapping claim set in a loop. The sorted-order,
// dedup-on-acquire protocol must be deadlock-free: every acquirer
// finishes. A protocol bug shows up as the test hanging (and the -race
// build catches unsound mutual exclusion in the critical sections).
func TestPropertyNoDeadlock(t *testing.T) {
	pool := []string{"customer", "orders", "lineitem", "jv1", "jv2", "ar_orders"}
	m := New()
	const (
		goroutines = 16
		iters      = 300
	)
	var wg sync.WaitGroup
	done := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + g)))
			for i := 0; i < iters; i++ {
				if rng.Intn(20) == 0 {
					h := m.AcquireGlobal()
					h.Release()
					continue
				}
				h := m.AcquireShared()
				h.Lock(randomClaims(rng, pool)...)
				h.Release()
			}
		}()
	}
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("deadlock: acquirers still blocked after 30s")
	}
}

// TestPropertyMutualExclusion checks the modes actually exclude: per
// resource, a writer must never overlap another holder, and shared
// holders may overlap only each other. Each goroutine bumps per-resource
// counters guarded only by the locks under test, so any unsoundness is a
// data race plus a counter violation.
func TestPropertyMutualExclusion(t *testing.T) {
	pool := []string{"a", "b", "c", "d"}
	m := New()
	type state struct {
		mu      sync.Mutex // guards the counters, not the protocol
		readers int
		writers int
	}
	states := map[string]*state{}
	for _, r := range pool {
		states[r] = &state{}
	}
	check := func(h *Held) error {
		for _, cl := range h.Claims() {
			st := states[cl.Res]
			st.mu.Lock()
			if cl.Mode == Exclusive {
				if st.readers != 0 || st.writers != 0 {
					st.mu.Unlock()
					return fmt.Errorf("X(%s) granted alongside %d readers, %d writers", cl.Res, st.readers, st.writers)
				}
				st.writers++
			} else {
				if st.writers != 0 {
					st.mu.Unlock()
					return fmt.Errorf("S(%s) granted alongside a writer", cl.Res)
				}
				st.readers++
			}
			st.mu.Unlock()
		}
		return nil
	}
	uncheck := func(h *Held) {
		for _, cl := range h.Claims() {
			st := states[cl.Res]
			st.mu.Lock()
			if cl.Mode == Exclusive {
				st.writers--
			} else {
				st.readers--
			}
			st.mu.Unlock()
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(2000 + g)))
			for i := 0; i < 200; i++ {
				h := m.AcquireShared()
				h.Lock(randomClaims(rng, pool)...)
				if err := check(h); err != nil {
					errs <- err
					h.Release()
					return
				}
				uncheck(h)
				h.Release()
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

// TestPropertyClaimDedup checks the granted claim set for any random
// request: sorted by resource, one claim per resource, and the strongest
// requested mode wins.
func TestPropertyClaimDedup(t *testing.T) {
	pool := []string{"t1", "t2", "t3", "v1", "v2"}
	rng := rand.New(rand.NewSource(42))
	m := New()
	for trial := 0; trial < 500; trial++ {
		req := randomClaims(rng, pool)
		want := map[string]Mode{}
		for _, cl := range req {
			if mode, ok := want[cl.Res]; !ok || cl.Mode > mode {
				want[cl.Res] = cl.Mode
			}
		}
		h := m.AcquireShared()
		h.Lock(req...)
		got := h.Claims()
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d claims granted for %d distinct resources (req %v)", trial, len(got), len(want), req)
		}
		for i, cl := range got {
			if i > 0 && got[i-1].Res >= cl.Res {
				t.Fatalf("trial %d: claims not sorted: %v", trial, got)
			}
			if want[cl.Res] != cl.Mode {
				t.Fatalf("trial %d: %s granted mode %d, want strongest %d", trial, cl.Res, cl.Mode, want[cl.Res])
			}
		}
		h.Release()
	}
}
