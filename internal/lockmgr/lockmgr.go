// Package lockmgr is the coordinator's table-level lock manager. It
// replaces the cluster's former single statement mutex with named
// shared/exclusive resource locks, so statements on disjoint tables from
// concurrent sessions run in parallel while statements touching the same
// table (or a derived structure over it) still serialize.
//
// The locking protocol is two-level and deadlock-free by construction:
//
//  1. Every acquirer first takes the global lock — shared for ordinary
//     statements, exclusive for operations that must see (and leave) the
//     whole cluster quiescent: DDL, recovery, checkpoints, and any mode
//     where concurrent statements are unsound (the Direct transport, 2PC
//     durability, fault injection).
//  2. Holders of the global shared lock then take their resource locks in
//     sorted name order, strongest mode first on duplicates. Uniform
//     ordering means no cycle of waiters can form.
//
// Claims are granted for the life of one statement; there is no lock
// escalation or queueing fairness beyond what sync.RWMutex provides.
package lockmgr

import "sync"

// Mode is a lock mode.
type Mode uint8

// Lock modes.
const (
	// Shared admits concurrent readers of a resource.
	Shared Mode = iota
	// Exclusive admits one writer.
	Exclusive
)

// Claim names one resource and the mode to lock it in.
type Claim struct {
	Res  string
	Mode Mode
}

// S builds a shared claim.
func S(res string) Claim { return Claim{Res: res, Mode: Shared} }

// X builds an exclusive claim.
func X(res string) Claim { return Claim{Res: res, Mode: Exclusive} }

// Manager hands out statement-scoped locks.
type Manager struct {
	global sync.RWMutex

	mu  sync.Mutex
	res map[string]*sync.RWMutex
}

// New returns an empty lock manager.
func New() *Manager {
	return &Manager{res: map[string]*sync.RWMutex{}}
}

func (m *Manager) resource(name string) *sync.RWMutex {
	m.mu.Lock()
	defer m.mu.Unlock()
	l, ok := m.res[name]
	if !ok {
		l = &sync.RWMutex{}
		m.res[name] = l
	}
	return l
}

// Held is an acquired set of locks. Release returns them; it is safe to
// call exactly once.
type Held struct {
	m       *Manager
	global  Mode
	claims  []Claim
	release []func()
}

// AcquireGlobal takes the global lock exclusively: the caller is the only
// statement running in the cluster until Release. Used for DDL, recovery
// and every serial execution mode.
func (m *Manager) AcquireGlobal() *Held {
	m.global.Lock()
	return &Held{m: m, global: Exclusive}
}

// AcquireShared takes the global lock in shared mode and returns a handle
// with no resource locks yet. Between AcquireShared and Lock the caller
// may safely read cluster metadata (the catalog) to compute its claim
// set — global-exclusive holders (DDL) are excluded the whole time.
func (m *Manager) AcquireShared() *Held {
	m.global.RLock()
	return &Held{m: m, global: Shared}
}

// AcquireRead takes the global lock in shared mode with no resource claims
// at all: the MVCC snapshot-read entry point. A snapshot reader needs the
// global shared lock only to fence DDL and recovery (which mutate the
// catalog under AcquireGlobal); it takes no named S locks, so it never
// queues behind — and never blocks — any writer statement's table claims.
func (m *Manager) AcquireRead() *Held {
	m.global.RLock()
	return &Held{m: m, global: Shared}
}

// Lock acquires the claims in deterministic sorted order (dedup: the
// strongest requested mode per resource wins). It must be called at most
// once per Held, before any conflicting work starts.
func (h *Held) Lock(claims ...Claim) {
	merged := map[string]Mode{}
	for _, c := range claims {
		if mode, ok := merged[c.Res]; !ok || c.Mode > mode {
			merged[c.Res] = c.Mode
		}
	}
	ordered := make([]Claim, 0, len(merged))
	for res, mode := range merged {
		ordered = append(ordered, Claim{Res: res, Mode: mode})
	}
	// Insertion sort by name: claim sets are tiny (a table plus its views
	// and their other base tables).
	for i := 1; i < len(ordered); i++ {
		for j := i; j > 0 && ordered[j].Res < ordered[j-1].Res; j-- {
			ordered[j], ordered[j-1] = ordered[j-1], ordered[j]
		}
	}
	for _, c := range ordered {
		l := h.m.resource(c.Res)
		if c.Mode == Exclusive {
			l.Lock()
			h.release = append(h.release, l.Unlock)
		} else {
			l.RLock()
			h.release = append(h.release, l.RUnlock)
		}
	}
	h.claims = ordered
}

// Claims returns the granted resource claims, sorted by name (inspection
// and tests).
func (h *Held) Claims() []Claim { return h.claims }

// Release drops every resource lock in reverse acquisition order, then the
// global lock.
func (h *Held) Release() {
	for i := len(h.release) - 1; i >= 0; i-- {
		h.release[i]()
	}
	h.release = nil
	if h.global == Exclusive {
		h.m.global.Unlock()
	} else {
		h.m.global.RUnlock()
	}
}
