package lockmgr

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSharedClaimsRunConcurrently(t *testing.T) {
	m := New()
	var inside atomic.Int32
	var peak atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := m.AcquireShared()
			h.Lock(S("a"), S("b"))
			n := inside.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(5 * time.Millisecond)
			inside.Add(-1)
			h.Release()
		}()
	}
	wg.Wait()
	if peak.Load() < 2 {
		t.Fatalf("shared claims never overlapped (peak %d)", peak.Load())
	}
}

func TestExclusiveClaimSerializes(t *testing.T) {
	m := New()
	var inside atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := m.AcquireShared()
			h.Lock(X("t"))
			if n := inside.Add(1); n != 1 {
				t.Errorf("%d holders inside exclusive section", n)
			}
			inside.Add(-1)
			h.Release()
		}()
	}
	wg.Wait()
}

func TestGlobalExcludesShared(t *testing.T) {
	m := New()
	h := m.AcquireGlobal()
	entered := make(chan struct{})
	go func() {
		s := m.AcquireShared()
		s.Lock(X("t"))
		close(entered)
		s.Release()
	}()
	select {
	case <-entered:
		t.Fatal("shared acquirer entered while global-exclusive held")
	case <-time.After(20 * time.Millisecond):
	}
	h.Release()
	select {
	case <-entered:
	case <-time.After(time.Second):
		t.Fatal("shared acquirer never admitted after global release")
	}
}

// Disjoint exclusive claim sets from many goroutines, acquired in sorted
// order, must not deadlock even when the claim sets overlap pairwise in
// different textual orders.
func TestSortedAcquisitionAvoidsDeadlock(t *testing.T) {
	m := New()
	pairs := [][2]string{{"a", "b"}, {"b", "c"}, {"c", "a"}}
	var wg sync.WaitGroup
	done := make(chan struct{})
	for i := 0; i < 30; i++ {
		p := pairs[i%len(pairs)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := m.AcquireShared()
			h.Lock(X(p[0]), X(p[1]))
			h.Release()
		}()
	}
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("deadlock: overlapping exclusive claim sets never completed")
	}
}

func TestDuplicateClaimsStrongestWins(t *testing.T) {
	m := New()
	h := m.AcquireShared()
	h.Lock(S("t"), X("t"), S("t"))
	claims := h.Claims()
	if len(claims) != 1 || claims[0].Mode != Exclusive {
		t.Fatalf("expected single exclusive claim, got %v", claims)
	}
	h.Release()
}
