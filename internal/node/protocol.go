package node

import (
	"joinview/internal/storage"
	"joinview/internal/types"
)

// IsMutating reports whether a request changes node state, and therefore
// needs sequence-number dedup for safe retry and a redo record for
// durability. Reads are naturally idempotent and go unwrapped and unlogged.
// The two-phase-commit control requests (Prepare, Decide, ResolveAbort,
// CheckpointReq, CrashReq, RestartReq) write to the durable store but are
// idempotent by construction, so they are deliberately not listed.
func IsMutating(req any) bool {
	switch req.(type) {
	case Insert, DeleteRows, DeleteMatch, RestoreRows,
		GIInsert, GIInsertBatch, GIDelete, GIDeleteBatch, AggApply,
		LocalJoin, CreateFragment, CreateIndex,
		CreateGlobalIndex, DropFragment, DropGlobalIndexFrag,
		PromoteSlots, GIPromoteSlots, GIScrubNode:
		return true
	}
	return false
}

// InverseOf builds the request that undoes an applied request, given the
// response the node produced for it. Nil means no exact inverse exists (the
// caller falls back to rebuilding the affected derived structure).
func InverseOf(req, resp any) any {
	switch r := req.(type) {
	case Insert:
		ir, ok := resp.(InsertResult)
		if !ok {
			return nil
		}
		return DeleteRows{Frag: r.Frag, Rows: ir.Rows}
	case RestoreRows:
		return DeleteRows{Frag: r.Frag, Rows: r.Rows}
	case DeleteRows:
		dr, ok := resp.(DeleteResult)
		if !ok {
			return nil
		}
		return RestoreRows{Frag: r.Frag, Rows: dr.Rows, Tuples: dr.Tuples}
	case DeleteMatch:
		dr, ok := resp.(DeleteResult)
		if !ok {
			return nil
		}
		return RestoreRows{Frag: r.Frag, Rows: dr.Rows, Tuples: dr.Tuples}
	case GIInsert:
		return GIDelete{GI: r.GI, Val: r.Val, G: r.G}
	case GIDelete:
		gd, ok := resp.(GIDeleted)
		if !ok || !gd.OK {
			return nil
		}
		return GIInsert{GI: r.GI, Val: r.Val, G: r.G}
	case GIInsertBatch:
		return GIDeleteBatch{GI: r.GI, Vals: r.Vals, Gs: r.Gs}
	case GIDeleteBatch:
		gd, ok := resp.(GIDeletedBatch)
		if !ok || len(gd.OK) != len(r.Vals) {
			return nil
		}
		// Re-insert only the entries that existed and were removed.
		inv := GIInsertBatch{GI: r.GI, Metered: true}
		for i, ok := range gd.OK {
			if !ok {
				continue
			}
			inv.Vals = append(inv.Vals, r.Vals[i])
			inv.Gs = append(inv.Gs, r.Gs[i])
		}
		if len(inv.Vals) == 0 {
			return nil
		}
		return inv
	case AggApply:
		neg := r
		neg.Deltas = make([]types.Tuple, len(r.Deltas))
		for i, d := range r.Deltas {
			nd := make(types.Tuple, len(d))
			for j, v := range d {
				switch v.K {
				case types.KindInt:
					nd[j] = types.Int(-v.I)
				case types.KindFloat:
					nd[j] = types.Float(-v.F)
				default:
					nd[j] = v
				}
			}
			neg.Deltas[i] = nd
		}
		return neg
	}
	return nil
}

// AllRequests returns a zero value of every request type the node handles,
// one per type. It is the registry backing exhaustiveness tests: adding a
// case to Handle without listing it here (or vice versa) is a test failure,
// so new DML request types cannot silently lose dedup or undo coverage.
func AllRequests() []any {
	return []any{
		Seq{}, SeqQuery{}, Ping{},
		CreateFragment{}, CreateIndex{}, CreateGlobalIndex{},
		Insert{}, DeleteRows{}, RestoreRows{}, DeleteMatch{}, LocateMatch{},
		Probe{}, FetchJoin{}, FindMatching{},
		GIInsert{}, GIInsertBatch{}, GIDelete{}, GIDeleteBatch{}, GILookup{}, GILen{}, GIScan{},
		Scan{}, AllRows{}, ScanWithRows{},
		AggApply{}, DropFragment{}, DropGlobalIndexFrag{}, LocalJoin{},
		PromoteSlots{}, GIPromoteSlots{}, GIScrubNode{},
		FragInfo{}, MeterSnapshot{}, ResetMeter{},
		Prepare{}, Decide{}, ResolveAbort{}, InDoubtReq{},
		CheckpointReq{}, CrashReq{}, RestartReq{},
	}
}

// AllResponses enumerates one zero value of every response type a node can
// return. Wire transports (internal/netsim/tcp) register them alongside
// AllRequests for interface-typed decoding.
func AllResponses() []any {
	return []any{
		InsertResult{}, DeleteResult{}, RowsResult{}, Probed{},
		GIDeleted{}, GIDeletedBatch{}, GILenResult{}, GIScanResult{},
		GIRows{}, LocalJoinResult{}, PromoteResult{}, GIScrubbed{},
		FragInfoResult{}, SeqQueryResult{}, InDoubtResult{},
		CheckpointResult{}, RestartResult{}, storage.Counts{}, Ack{},
	}
}
