package node

import (
	"joinview/internal/expr"
	"joinview/internal/netsim"
	"joinview/internal/storage"
	"joinview/internal/types"
)

// Algo selects the join algorithm for a Probe.
type Algo uint8

// Join algorithm choices.
const (
	// AlgoIndex uses index nested loops via the best local access path.
	AlgoIndex Algo = iota
	// AlgoSortMerge uses the sort-merge cost model of §3.2.
	AlgoSortMerge
	// AlgoAuto picks whichever the local cost estimate says is cheaper,
	// mirroring "if |A| is large enough ... sort merge is preferable".
	AlgoAuto
)

func (a Algo) String() string {
	switch a {
	case AlgoIndex:
		return "index"
	case AlgoSortMerge:
		return "sort-merge"
	case AlgoAuto:
		return "auto"
	default:
		return "unknown"
	}
}

// CreateFragment allocates an empty fragment for a relation (base table,
// auxiliary relation or view) at the node.
type CreateFragment struct {
	Name       string
	Schema     *types.Schema
	ClusterCol string // empty = heap
	PageRows   int
}

// CreateIndex builds a non-clustered secondary index on a fragment.
type CreateIndex struct {
	Frag, Name, Col string
}

// CreateGlobalIndex allocates this node's fragment of a global index.
type CreateGlobalIndex struct {
	Name          string
	DistClustered bool
}

// Insert appends tuples to a fragment. Unmetered inserts (DDL backfill)
// charge no I/O.
type Insert struct {
	Frag      string
	Tuples    []types.Tuple
	Unmetered bool
	// Epoch stamps the mutation in the fragment's version log for MVCC
	// snapshot reads; 0 (every legacy path) records nothing. GCFloor
	// piggybacks the coordinator's snapshot-GC floor: version records at
	// or below it are unpinned and may be dropped.
	Epoch   uint64
	GCFloor uint64
}

// InsertResult reports the assigned row ids, in input order.
type InsertResult struct {
	Rows []storage.RowID
}

// DeleteRows removes tuples by row id.
type DeleteRows struct {
	Frag string
	Rows []storage.RowID
	// Epoch / GCFloor: see Insert.
	Epoch   uint64
	GCFloor uint64
}

// DeleteMatch removes one stored instance per given tuple (bag semantics),
// locating victims via HintCol.
type DeleteMatch struct {
	Frag    string
	HintCol string
	Tuples  []types.Tuple
	// Epoch / GCFloor: see Insert.
	Epoch   uint64
	GCFloor uint64
}

// DeleteResult returns the tuples actually removed and the row ids they
// occupied (parallel slices). Compensating actions restore the tuples at
// those exact ids via RestoreRows, so global-index entries referencing the
// rows stay valid across a delete + undo.
type DeleteResult struct {
	Tuples []types.Tuple
	Rows   []storage.RowID
}

// RestoreRows re-inserts previously deleted tuples at their original row
// ids (parallel slices). This is the inverse of DeleteRows/DeleteMatch:
// plain re-insertion would allocate fresh ids and dangle any global-index
// entry pointing at the old ones.
type RestoreRows struct {
	Frag   string
	Rows   []storage.RowID
	Tuples []types.Tuple
	// Epoch / GCFloor: see Insert.
	Epoch   uint64
	GCFloor uint64
}

// LocateMatch finds one stored instance per given tuple (bag semantics)
// without deleting, returning row ids and tuples; unmatched tuples are
// skipped. Victim location for value-addressed deletes.
type LocateMatch struct {
	Frag    string
	HintCol string
	Tuples  []types.Tuple
}

// Probe joins delta tuples against a local fragment and returns
// delta ++ row concatenations. This is the per-node join step of all three
// maintenance methods.
type Probe struct {
	Frag     string
	FragCol  string
	Delta    []types.Tuple
	DeltaKey int // index of the join column within delta tuples
	Algo     Algo
	// FanoutHint estimates matches per delta tuple; AlgoAuto uses it to
	// compare index nested loops against sort-merge.
	FanoutHint float64
}

// Probed carries join results back.
type Probed struct {
	Tuples []types.Tuple
}

// FetchJoin joins one delta tuple with specific local rows (located via a
// global index) and returns delta ++ row concatenations. Fetch cost follows
// §3.1(e): one page when the fragment is clustered on FragCol ("distributed
// clustered"), one FETCH per row otherwise.
type FetchJoin struct {
	Frag    string
	FragCol string
	Rows    []storage.RowID
	Delta   types.Tuple
}

// GIInsert adds an entry to this node's global-index fragment.
type GIInsert struct {
	GI  string
	Val types.Value
	G   storage.GlobalRowID
}

// GIInsertBatch adds many entries at once. Two callers use it: DDL
// backfill (Metered false — charge-free, like every backfill), and batched
// index maintenance (Metered true — each entry charges the same INSERT
// cost a standalone GIInsert would). Maintenance batching packs all of a
// statement's entries for one home node into a single physical envelope;
// Sources records each entry's logical origin node so the transport keeps
// the paper's per-entry SEND accounting (see LogicalCounts).
type GIInsertBatch struct {
	GI      string
	Vals    []types.Value
	Gs      []storage.GlobalRowID
	Metered bool
	// Sources holds the logical source node per entry (the base tuple's
	// home node; netsim.Coordinator for compensations). Nil means the batch
	// is a plain physical delivery counted once from its transport source
	// (DDL backfill keeps its historical one-message-per-envelope cost).
	Sources []int32
}

// LogicalCounts implements netsim.Envelope: with Sources set, every entry
// counts as one SEND from its source node (free when the source is the
// destination), matching the per-entry GIInsert calls the batch replaces.
func (b GIInsertBatch) LogicalCounts(from, to int) (messages, local int64) {
	return batchCounts(b.Sources, from, to, len(b.Vals))
}

// GIDeleteBatch removes many entries at once (batched index maintenance;
// always metered — each entry charges like a standalone GIDelete). Sources
// follows the GIInsertBatch convention.
type GIDeleteBatch struct {
	GI      string
	Vals    []types.Value
	Gs      []storage.GlobalRowID
	Sources []int32
}

// LogicalCounts implements netsim.Envelope (see GIInsertBatch).
func (b GIDeleteBatch) LogicalCounts(from, to int) (messages, local int64) {
	return batchCounts(b.Sources, from, to, len(b.Vals))
}

// GIDeletedBatch reports, per entry, whether it existed.
type GIDeletedBatch struct {
	OK []bool
}

// batchCounts is the shared logical-SEND accounting of the batched GI
// requests: per-entry by source when sources are known, else the default
// single physical message.
func batchCounts(sources []int32, from, to, n int) (messages, local int64) {
	if sources == nil {
		if from == to {
			return 0, 1
		}
		return 1, 0
	}
	for _, s := range sources {
		if int(s) == to {
			local++
		} else {
			messages++
		}
	}
	return messages, local
}

// FindMatching locates tuples satisfying a predicate, returning row ids and
// tuples. It charges a full scan (victim location for DELETE/UPDATE reads
// the relation).
type FindMatching struct {
	Frag string
	Pred expr.Expr
}

// GIDelete removes an entry from this node's global-index fragment.
type GIDelete struct {
	GI  string
	Val types.Value
	G   storage.GlobalRowID
}

// GIDeleted reports whether the entry existed.
type GIDeleted struct {
	OK bool
}

// GILookup finds the global row ids recorded for a value.
type GILookup struct {
	GI  string
	Val types.Value
}

// GILen asks for the entry count of this node's global-index fragment.
type GILen struct {
	GI string
}

// GILenResult reports a fragment's entry count.
type GILenResult struct {
	Len int
}

// GIScan reads every entry of this node's global-index fragment,
// unmetered (consistency verification).
type GIScan struct {
	GI string
}

// GIScanResult carries parallel value/row-id slices.
type GIScanResult struct {
	Vals []types.Value
	Gs   []storage.GlobalRowID
}

// GIRows carries a lookup result.
type GIRows struct {
	IDs []storage.GlobalRowID
}

// Scan reads a whole fragment, charging scan I/O.
type Scan struct {
	Frag string
	// Epoch selects the MVCC snapshot to read: the state after all
	// mutations stamped <= Epoch. 0 reads the live state (identical
	// behaviour and metering to the pre-MVCC engine).
	Epoch uint64
}

// AllRows reads a whole fragment without charging I/O (DDL backfill,
// verification).
type AllRows struct {
	Frag string
	// Epoch: see Scan.
	Epoch uint64
}

// ScanWithRows reads a whole fragment without charging I/O, returning row
// ids alongside tuples (used to build global indexes and locate delete
// victims).
type ScanWithRows struct {
	Frag string
}

// RowsResult carries tuples (and, for ScanWithRows, their row ids).
type RowsResult struct {
	Tuples []types.Tuple
	Rows   []storage.RowID
}

// AggApply folds signed group deltas into an aggregate view fragment:
// each key's aggregates are adjusted in place, new groups are inserted,
// and groups whose count reaches zero are removed.
type AggApply struct {
	Frag string
	// HintCol is the view's partition column (group key lookup path).
	HintCol string
	// GroupLen is the number of leading group columns.
	GroupLen int
	// CountPos is the count aggregate's index among the aggregate columns
	// (schema position GroupLen + CountPos).
	CountPos int
	Keys     []types.Tuple
	Deltas   []types.Tuple
	// Epoch / GCFloor: see Insert.
	Epoch   uint64
	GCFloor uint64
}

// DropFragment removes a fragment from the node (temporary query spills,
// dropped relations and views).
type DropFragment struct {
	Name string
}

// DropGlobalIndexFrag removes this node's global-index fragment.
type DropGlobalIndexFrag struct {
	Name string
}

// LocalJoin hash-joins two local fragments into a third (which must exist
// with the concatenated schema), emitting left ++ right rows. It charges a
// scan of both inputs; output writes are charged by the inserts. This is
// the per-node step of a co-partitioned distributed join.
type LocalJoin struct {
	Left, Right       string
	LeftCol, RightCol string
	Out               string
	// LeftEpoch / RightEpoch select the MVCC snapshot each input is read
	// at (0 = live state); the output fragment is a query temporary and is
	// never versioned.
	LeftEpoch, RightEpoch uint64
}

// LocalJoinResult reports how many tuples the node produced.
type LocalJoinResult struct {
	Produced int
}

// PromoteSlots moves the rows of the given hash slots from one local
// fragment into another — the failover step that turns a follower's shadow
// copy into primary data when this node is promoted for slots a crashed
// owner held. PartIdx locates the partitioning attribute within the
// fragment's tuples; a row belongs to slot Hash(t[PartIdx]) % Mod.
// Unmetered (availability repair, like DDL backfill).
type PromoteSlots struct {
	Src, Dst string
	PartIdx  int
	Mod      int
	Slots    []int
}

// PromoteResult reports the promoted tuples and the row ids they occupy in
// the destination fragment (parallel slices) — the coordinator rebuilds
// global-index entries for base-table promotions from them.
type PromoteResult struct {
	Rows   []storage.RowID
	Tuples []types.Tuple
}

// GIPromoteSlots moves global-index entries whose value hashes into the
// given slots from one local global-index fragment into another (the
// shadow→primary counterpart of PromoteSlots for index homes). Unmetered.
type GIPromoteSlots struct {
	Src, Dst string
	Mod      int
	Slots    []int
}

// GIScrubNode removes every entry of a local global-index fragment whose
// global row id references the given node: after that node's slots are
// promoted elsewhere, those row ids dangle and the coordinator re-inserts
// fresh entries from the promotion results. Unmetered.
type GIScrubNode struct {
	GI   string
	Node int
}

// GIScrubbed reports how many entries a scrub removed.
type GIScrubbed struct {
	Removed int
}

// FragInfo asks for fragment size information.
type FragInfo struct {
	Frag string
}

// FragInfoResult reports fragment size.
type FragInfoResult struct {
	Len   int
	Pages int
}

// Seq wraps a mutating request with a coordinator-assigned sequence number
// so retried deliveries are idempotent: the node executes each ID at most
// once and answers duplicates from a cached response. The coordinator's
// resilient transport wraps every mutating sub-request automatically; read
// requests are naturally idempotent and go unwrapped.
//
// TID is the enclosing transaction (statement) id of two-phase commit, zero
// outside any transaction. A durable node logs each applied Seq request as
// a redo record under its TID, which is what makes the transaction
// preparable, replayable and locally abortable.
type Seq struct {
	ID  uint64
	TID uint64
	Req any
}

// LogicalCounts implements netsim.Envelope by delegating to the wrapped
// request: the sequence envelope itself is invisible to message
// accounting, so wrapping a batched request does not collapse its
// per-entry SEND count back to one.
func (s Seq) LogicalCounts(from, to int) (messages, local int64) {
	if env, ok := s.Req.(netsim.Envelope); ok {
		return env.LogicalCounts(from, to)
	}
	if from == to {
		return 0, 1
	}
	return 1, 0
}

// SeqQuery asks whether the node has applied the given sequence number —
// the in-doubt resolution step after a retry budget is exhausted on a
// lost-reply or timeout. If Applied, the cached response lets the
// coordinator treat the call as having succeeded.
type SeqQuery struct {
	ID uint64
}

// SeqQueryResult reports a sequence number's outcome at the node.
type SeqQueryResult struct {
	Applied bool
	Resp    any
}

// Ping checks node liveness (used by Recover before repairing a node).
type Ping struct{}

// Prepare is phase one of two-phase commit: the node makes the named
// transaction's redo records durable (logs PREPARE and forces the log) and
// a successful Ack is its yes vote. Only sent to nodes that executed work
// under the TID. Idempotent.
type Prepare struct {
	TID uint64
}

// Decide delivers the coordinator's commit decision for a transaction. The
// node logs it and forgets the transaction; it does NOT undo anything on
// abort — live-path aborts are compensated by the coordinator's own undo
// calls (logged under the same TID), and crash-path aborts go through
// ResolveAbort. Under presumed abort the decision is delivered lazily and
// its loss is harmless: the coordinator's log remains the authority.
type Decide struct {
	TID    uint64
	Commit bool
}

// ResolveAbort orders the node to locally abort an in-doubt transaction
// after a restart: apply the inverse of each of the TID's logged redo
// records in reverse LSN order (logging the undos under the same TID, so a
// crash mid-abort re-converges), then log ABORT. Idempotent.
type ResolveAbort struct {
	TID uint64
}

// InDoubtReq asks a durable node which transactions it holds redo or
// prepare records for without a logged decision.
type InDoubtReq struct{}

// InDoubtResult lists in-doubt transaction ids in ascending order.
type InDoubtResult struct {
	TIDs []uint64
}

// CheckpointReq takes a checkpoint: snapshot every fragment and
// global-index fragment plus the dedup cache, install it in the durable
// store, and truncate the log prefix it covers (bounded by the oldest
// undecided transaction's first record).
type CheckpointReq struct{}

// CheckpointResult reports the checkpoint position and image size.
type CheckpointResult struct {
	LSN   uint64
	Pages int
}

// CrashReq fail-stops the node: all volatile state (fragments, global
// indexes, dedup cache, buffer pool contents) is discarded; only the
// durable store (log + checkpoint) survives. Until RestartReq the node
// rejects every other request.
type CrashReq struct{}

// RestartReq recovers a crashed durable node: reload the last checkpoint,
// replay the log tail, rebuild the dedup cache and the in-doubt set.
type RestartReq struct{}

// RestartResult reports what recovery did. PagesRead counts checkpoint
// image plus log tail pages; in-doubt transactions still need resolution
// by the coordinator (Decide or ResolveAbort).
type RestartResult struct {
	CheckpointLSN   uint64
	CheckpointPages int
	LogPagesRead    int
	RecordsReplayed int
	InDoubt         []uint64
}

// MeterSnapshot asks for the node's I/O counters.
type MeterSnapshot struct{}

// ResetMeter zeroes the node's I/O counters.
type ResetMeter struct{}

// Ack is the empty success response.
type Ack struct{}
