package node

import (
	"testing"

	"joinview/internal/storage"
	"joinview/internal/types"
)

var ordersSchema = types.NewSchema(
	types.Column{Name: "orderkey", Kind: types.KindInt},
	types.Column{Name: "custkey", Kind: types.KindInt},
)

func newNodeWithOrders(t *testing.T, clusterCol string) *DataNode {
	t.Helper()
	n := New(0, 10)
	if _, err := n.Handle(CreateFragment{Name: "orders", Schema: ordersSchema, ClusterCol: clusterCol, PageRows: 10}); err != nil {
		t.Fatal(err)
	}
	return n
}

func mustHandle(t *testing.T, n *DataNode, req any) any {
	t.Helper()
	resp, err := n.Handle(req)
	if err != nil {
		t.Fatalf("Handle(%T): %v", req, err)
	}
	return resp
}

func order(ok, ck int64) types.Tuple {
	return types.Tuple{types.Int(ok), types.Int(ck)}
}

func TestCreateFragmentAndInsert(t *testing.T) {
	n := newNodeWithOrders(t, "")
	if _, err := n.Handle(CreateFragment{Name: "orders", Schema: ordersSchema}); err == nil {
		t.Error("duplicate fragment should fail")
	}
	res := mustHandle(t, n, Insert{Frag: "orders", Tuples: []types.Tuple{order(1, 5), order(2, 6)}}).(InsertResult)
	if len(res.Rows) != 2 {
		t.Fatalf("InsertResult = %v", res)
	}
	info := mustHandle(t, n, FragInfo{Frag: "orders"}).(FragInfoResult)
	if info.Len != 2 || info.Pages != 1 {
		t.Errorf("FragInfo = %+v", info)
	}
	if _, err := n.Handle(Insert{Frag: "ghost", Tuples: nil}); err == nil {
		t.Error("insert into missing fragment should fail")
	}
	if _, err := n.Handle(Insert{Frag: "orders", Tuples: []types.Tuple{{types.Int(1)}}}); err == nil {
		t.Error("arity-violating insert should fail")
	}
	if _, err := n.Handle(FragInfo{Frag: "ghost"}); err == nil {
		t.Error("FragInfo on missing fragment should fail")
	}
}

func TestDeleteRowsAndMatch(t *testing.T) {
	n := newNodeWithOrders(t, "custkey")
	ins := mustHandle(t, n, Insert{Frag: "orders", Tuples: []types.Tuple{order(1, 5), order(2, 5), order(2, 5)}}).(InsertResult)
	del := mustHandle(t, n, DeleteRows{Frag: "orders", Rows: []storage.RowID{ins.Rows[0], 999}}).(DeleteResult)
	if len(del.Tuples) != 1 || !del.Tuples[0].Equal(order(1, 5)) {
		t.Fatalf("DeleteRows = %v", del)
	}
	// Bag semantics: one instance removed per requested tuple.
	del = mustHandle(t, n, DeleteMatch{Frag: "orders", HintCol: "custkey", Tuples: []types.Tuple{order(2, 5), order(9, 9)}}).(DeleteResult)
	if len(del.Tuples) != 1 {
		t.Fatalf("DeleteMatch = %v", del)
	}
	info := mustHandle(t, n, FragInfo{Frag: "orders"}).(FragInfoResult)
	if info.Len != 1 {
		t.Errorf("fragment should have 1 row left, has %d", info.Len)
	}
	if _, err := n.Handle(DeleteMatch{Frag: "orders", HintCol: "nope", Tuples: []types.Tuple{order(1, 1)}}); err == nil {
		t.Error("bad hint column should fail")
	}
	if _, err := n.Handle(DeleteRows{Frag: "ghost"}); err == nil {
		t.Error("DeleteRows on missing fragment should fail")
	}
	if _, err := n.Handle(DeleteMatch{Frag: "ghost"}); err == nil {
		t.Error("DeleteMatch on missing fragment should fail")
	}
}

func TestProbeIndex(t *testing.T) {
	n := newNodeWithOrders(t, "custkey")
	mustHandle(t, n, Insert{Frag: "orders", Tuples: []types.Tuple{order(1, 5), order(2, 5), order(3, 6)}})
	mustHandle(t, n, ResetMeter{})
	delta := []types.Tuple{{types.Int(5), types.Int(100)}}
	res := mustHandle(t, n, Probe{Frag: "orders", FragCol: "custkey", Delta: delta, DeltaKey: 0, Algo: AlgoIndex}).(Probed)
	if len(res.Tuples) != 2 {
		t.Fatalf("Probe = %v", res.Tuples)
	}
	// delta ++ row: arity 2 + 2.
	if len(res.Tuples[0]) != 4 || res.Tuples[0][3].I != 5 {
		t.Errorf("probe output shape wrong: %v", res.Tuples[0])
	}
	c := mustHandle(t, n, MeterSnapshot{}).(storage.Counts)
	if c.Searches != 1 {
		t.Errorf("index probe charged %+v, want 1 search", c)
	}
	if _, err := n.Handle(Probe{Frag: "ghost"}); err == nil {
		t.Error("probe on missing fragment should fail")
	}
	if _, err := n.Handle(Probe{Frag: "orders", FragCol: "custkey", Delta: delta, DeltaKey: 0, Algo: Algo(99)}); err == nil {
		t.Error("bad algo should fail")
	}
	if _, err := n.Handle(Probe{Frag: "orders", FragCol: "custkey", Delta: delta, DeltaKey: 7, Algo: AlgoIndex}); err == nil {
		t.Error("bad delta key should fail")
	}
}

func TestProbeSortMergeAndAuto(t *testing.T) {
	n := newNodeWithOrders(t, "custkey")
	tuples := make([]types.Tuple, 200)
	for i := range tuples {
		tuples[i] = order(int64(i), int64(i%10))
	}
	mustHandle(t, n, Insert{Frag: "orders", Tuples: tuples})
	mustHandle(t, n, ResetMeter{})

	delta := []types.Tuple{{types.Int(3), types.Int(0)}}
	res := mustHandle(t, n, Probe{Frag: "orders", FragCol: "custkey", Delta: delta, DeltaKey: 0, Algo: AlgoSortMerge}).(Probed)
	if len(res.Tuples) != 20 {
		t.Fatalf("sort-merge probe = %d tuples", len(res.Tuples))
	}
	c := mustHandle(t, n, MeterSnapshot{}).(storage.Counts)
	// 200 rows / 10 per page = 20 pages, clustered on join col -> scan.
	if c.ScanPages != 20 || c.SortPages != 0 {
		t.Errorf("sort-merge on clustered charged %+v", c)
	}

	// Auto with one delta tuple picks index (1 search < 20-page scan).
	mustHandle(t, n, ResetMeter{})
	mustHandle(t, n, Probe{Frag: "orders", FragCol: "custkey", Delta: delta, DeltaKey: 0, Algo: AlgoAuto})
	c = mustHandle(t, n, MeterSnapshot{}).(storage.Counts)
	if c.Searches != 1 || c.ScanPages != 0 {
		t.Errorf("auto should pick index for 1 delta tuple: %+v", c)
	}

	// Auto with a huge delta picks sort-merge (delta > pages).
	bigDelta := make([]types.Tuple, 100)
	for i := range bigDelta {
		bigDelta[i] = types.Tuple{types.Int(int64(i % 10)), types.Int(0)}
	}
	mustHandle(t, n, ResetMeter{})
	mustHandle(t, n, Probe{Frag: "orders", FragCol: "custkey", Delta: bigDelta, DeltaKey: 0, Algo: AlgoAuto})
	c = mustHandle(t, n, MeterSnapshot{}).(storage.Counts)
	if c.ScanPages != 20 || c.Searches != 0 {
		t.Errorf("auto should pick sort-merge for 100 delta tuples: %+v", c)
	}
}

func TestGlobalIndexOps(t *testing.T) {
	n := New(3, 0)
	mustHandle(t, n, CreateGlobalIndex{Name: "gi", DistClustered: false})
	if _, err := n.Handle(CreateGlobalIndex{Name: "gi"}); err == nil {
		t.Error("duplicate GI should fail")
	}
	g1 := storage.GlobalRowID{Node: 1, Row: 10}
	g2 := storage.GlobalRowID{Node: 2, Row: 20}
	mustHandle(t, n, GIInsert{GI: "gi", Val: types.Int(7), G: g1})
	mustHandle(t, n, GIInsert{GI: "gi", Val: types.Int(7), G: g2})
	rows := mustHandle(t, n, GILookup{GI: "gi", Val: types.Int(7)}).(GIRows)
	if len(rows.IDs) != 2 {
		t.Fatalf("GILookup = %v", rows)
	}
	del := mustHandle(t, n, GIDelete{GI: "gi", Val: types.Int(7), G: g1}).(GIDeleted)
	if !del.OK {
		t.Error("GIDelete should succeed")
	}
	del = mustHandle(t, n, GIDelete{GI: "gi", Val: types.Int(7), G: g1}).(GIDeleted)
	if del.OK {
		t.Error("double GIDelete should report false")
	}
	for _, req := range []any{GIInsert{GI: "x"}, GIDelete{GI: "x"}, GILookup{GI: "x"}} {
		if _, err := n.Handle(req); err == nil {
			t.Errorf("%T on missing GI should fail", req)
		}
	}
}

func TestFetchJoinCosts(t *testing.T) {
	// Non-clustered: one FETCH per row.
	n := newNodeWithOrders(t, "")
	ins := mustHandle(t, n, Insert{Frag: "orders", Tuples: []types.Tuple{order(1, 5), order(2, 5), order(3, 5)}}).(InsertResult)
	mustHandle(t, n, ResetMeter{})
	delta := types.Tuple{types.Int(5), types.Int(0)}
	res := mustHandle(t, n, FetchJoin{Frag: "orders", FragCol: "custkey", Rows: ins.Rows, Delta: delta}).(Probed)
	if len(res.Tuples) != 3 || len(res.Tuples[0]) != 4 {
		t.Fatalf("FetchJoin = %v", res.Tuples)
	}
	c := mustHandle(t, n, MeterSnapshot{}).(storage.Counts)
	if c.Fetches != 3 {
		t.Errorf("non-clustered fetch-join charged %+v, want 3 fetches", c)
	}

	// Distributed clustered: matching rows share a page.
	nc := newNodeWithOrders(t, "custkey")
	ins = mustHandle(t, nc, Insert{Frag: "orders", Tuples: []types.Tuple{order(1, 5), order(2, 5), order(3, 5)}}).(InsertResult)
	mustHandle(t, nc, ResetMeter{})
	mustHandle(t, nc, FetchJoin{Frag: "orders", FragCol: "custkey", Rows: ins.Rows, Delta: delta})
	c = mustHandle(t, nc, MeterSnapshot{}).(storage.Counts)
	if c.Fetches != 1 {
		t.Errorf("clustered fetch-join charged %+v, want 1 fetch", c)
	}

	// Stale row id: global index out of sync is an error.
	if _, err := nc.Handle(FetchJoin{Frag: "orders", FragCol: "custkey", Rows: []storage.RowID{999}, Delta: delta}); err == nil {
		t.Error("fetch-join with missing row should fail")
	}
	if _, err := nc.Handle(FetchJoin{Frag: "ghost"}); err == nil {
		t.Error("fetch-join on missing fragment should fail")
	}
}

func TestScansAndMeterRequests(t *testing.T) {
	n := newNodeWithOrders(t, "")
	mustHandle(t, n, Insert{Frag: "orders", Tuples: []types.Tuple{order(1, 5), order(2, 6)}})
	mustHandle(t, n, ResetMeter{})
	sc := mustHandle(t, n, Scan{Frag: "orders"}).(RowsResult)
	if len(sc.Tuples) != 2 {
		t.Fatalf("Scan = %v", sc)
	}
	c := mustHandle(t, n, MeterSnapshot{}).(storage.Counts)
	if c.ScanPages != 1 {
		t.Errorf("Scan charged %+v", c)
	}
	mustHandle(t, n, ResetMeter{})
	all := mustHandle(t, n, AllRows{Frag: "orders"}).(RowsResult)
	if len(all.Tuples) != 2 {
		t.Fatalf("AllRows = %v", all)
	}
	withRows := mustHandle(t, n, ScanWithRows{Frag: "orders"}).(RowsResult)
	if len(withRows.Rows) != 2 || len(withRows.Tuples) != 2 {
		t.Fatalf("ScanWithRows = %v", withRows)
	}
	c = mustHandle(t, n, MeterSnapshot{}).(storage.Counts)
	if c.IOs() != 0 {
		t.Errorf("AllRows/ScanWithRows must be unmetered, charged %+v", c)
	}
	for _, req := range []any{Scan{Frag: "ghost"}, AllRows{Frag: "ghost"}, ScanWithRows{Frag: "ghost"}} {
		if _, err := n.Handle(req); err == nil {
			t.Errorf("%T on missing fragment should fail", req)
		}
	}
}

func TestCreateIndexRequest(t *testing.T) {
	n := newNodeWithOrders(t, "")
	mustHandle(t, n, Insert{Frag: "orders", Tuples: []types.Tuple{order(1, 5)}})
	mustHandle(t, n, CreateIndex{Frag: "orders", Name: "ix", Col: "custkey"})
	if _, err := n.Handle(CreateIndex{Frag: "orders", Name: "ix", Col: "custkey"}); err == nil {
		t.Error("duplicate index should fail")
	}
	if _, err := n.Handle(CreateIndex{Frag: "ghost", Name: "ix", Col: "c"}); err == nil {
		t.Error("index on missing fragment should fail")
	}
	mustHandle(t, n, ResetMeter{})
	res := mustHandle(t, n, Probe{Frag: "orders", FragCol: "custkey", Delta: []types.Tuple{{types.Int(5)}}, DeltaKey: 0, Algo: AlgoIndex}).(Probed)
	if len(res.Tuples) != 1 {
		t.Fatal("probe via secondary index failed")
	}
	c := mustHandle(t, n, MeterSnapshot{}).(storage.Counts)
	if c.Searches != 1 || c.Fetches != 1 {
		t.Errorf("secondary probe charged %+v", c)
	}
}

func TestAggApply(t *testing.T) {
	n := New(0, 10)
	schema := types.NewSchema(
		types.Column{Name: "v.g", Kind: types.KindInt},
		types.Column{Name: "count", Kind: types.KindInt},
		types.Column{Name: "sum", Kind: types.KindFloat},
	)
	mustHandle(t, n, CreateFragment{Name: "av", Schema: schema, ClusterCol: "v.g", PageRows: 10})
	apply := func(g int64, cnt int64, sum float64) (any, error) {
		return n.Handle(AggApply{
			Frag: "av", HintCol: "v.g", GroupLen: 1, CountPos: 0,
			Keys:   []types.Tuple{{types.Int(g)}},
			Deltas: []types.Tuple{{types.Int(cnt), types.Float(sum)}},
		})
	}
	// New group.
	if _, err := apply(1, 2, 5.5); err != nil {
		t.Fatal(err)
	}
	rows := mustHandle(t, n, AllRows{Frag: "av"}).(RowsResult).Tuples
	if len(rows) != 1 || rows[0][1].I != 2 || rows[0][2].F != 5.5 {
		t.Fatalf("group = %v", rows)
	}
	// Fold into existing group.
	if _, err := apply(1, 1, 0.5); err != nil {
		t.Fatal(err)
	}
	rows = mustHandle(t, n, AllRows{Frag: "av"}).(RowsResult).Tuples
	if rows[0][1].I != 3 || rows[0][2].F != 6 {
		t.Fatalf("folded group = %v", rows)
	}
	// Drain to zero: group removed.
	if _, err := apply(1, -3, -6); err != nil {
		t.Fatal(err)
	}
	rows = mustHandle(t, n, AllRows{Frag: "av"}).(RowsResult).Tuples
	if len(rows) != 0 {
		t.Fatalf("group should be gone: %v", rows)
	}
	// Errors.
	if _, err := apply(9, -1, 0); err == nil {
		t.Error("delta for an absent group should fail")
	}
	if _, err := apply(1, 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := apply(1, -2, 0); err == nil {
		t.Error("negative count should fail")
	}
	if _, err := n.Handle(AggApply{Frag: "ghost"}); err == nil {
		t.Error("missing fragment should fail")
	}
	if _, err := n.Handle(AggApply{Frag: "av", HintCol: "count", GroupLen: 1, Keys: nil, Deltas: nil}); err == nil {
		t.Error("non-group hint column should fail")
	}
	if _, err := n.Handle(AggApply{Frag: "av", HintCol: "v.g", GroupLen: 1,
		Keys: []types.Tuple{{types.Int(1)}}, Deltas: nil}); err == nil {
		t.Error("key/delta length mismatch should fail")
	}
}

func TestAddValues(t *testing.T) {
	cases := []struct {
		a, b, want types.Value
	}{
		{types.Int(1), types.Int(2), types.Int(3)},
		{types.Float(1.5), types.Float(2), types.Float(3.5)},
		{types.Int(1), types.Float(0.5), types.Float(1.5)},
		{types.Float(1.5), types.Int(2), types.Float(3.5)},
		{types.Null(), types.Int(2), types.Int(2)},
		{types.Int(2), types.Null(), types.Int(2)},
	}
	for _, c := range cases {
		got, err := addValues(c.a, c.b)
		if err != nil || !types.Equal(got, c.want) {
			t.Errorf("addValues(%v, %v) = %v, %v; want %v", c.a, c.b, got, err, c.want)
		}
	}
	if _, err := addValues(types.String("x"), types.Int(1)); err == nil {
		t.Error("adding strings should fail")
	}
}

func TestUnknownRequest(t *testing.T) {
	n := New(0, 0)
	if _, err := n.Handle(struct{ X int }{}); err == nil {
		t.Error("unknown request type should fail")
	}
	if n.ID() != 0 {
		t.Error("ID wrong")
	}
	if n.Meter() == nil {
		t.Error("Meter nil")
	}
	h := n.Handler()
	if _, err := h(MeterSnapshot{}); err != nil {
		t.Error("Handler adapter failed")
	}
	if (AlgoIndex).String() != "index" || (AlgoSortMerge).String() != "sort-merge" || (AlgoAuto).String() != "auto" || Algo(9).String() != "unknown" {
		t.Error("Algo strings wrong")
	}
}
