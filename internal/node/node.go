// Package node implements a data-server node of the parallel RDBMS. Each
// node owns fragments of base relations, auxiliary relations, materialized
// views and global indexes, and executes purely local operations in
// response to typed requests. Nodes never call other nodes: the maintenance
// strategies orchestrate cross-node flows from the coordinator, which keeps
// the channel transport deadlock-free and the message accounting explicit.
package node

import (
	"fmt"

	"joinview/internal/buffer"
	"joinview/internal/exec"
	"joinview/internal/expr"
	"joinview/internal/gindex"
	"joinview/internal/netsim"
	"joinview/internal/storage"
	"joinview/internal/types"
	"joinview/internal/wal"
)

// DataNode is one data server. Access is serialized by the transport (the
// Direct transport is single-threaded; the Chan transport gives each node
// one goroutine).
type DataNode struct {
	id        int
	meter     *storage.Meter
	memPages  int
	pool      *buffer.Pool
	poolPages int
	frags     map[string]*storage.Fragment
	gidx      map[string]*gindex.Fragment

	// seen caches the responses of successfully applied Seq-wrapped
	// requests so retried deliveries (lost reply, timeout, duplicate) are
	// answered without re-executing. seenOrder bounds the cache FIFO:
	// retries arrive promptly, so only the recent window matters.
	seen      map[uint64]any
	seenOrder []uint64

	// Durability (nil store = the legacy fail-stop-with-durable-storage
	// model, where a crash loses nothing and recovery is repair + rebuild).
	store         *wal.Store
	logPageRows   int
	ckptEvery     int
	recsSinceCkpt int
	pending       map[uint64]uint64 // TID -> LSN of its first log record
	wiped         bool              // crashed and not yet restarted
}

// seqCacheSize bounds the per-node dedup cache. Retries happen within a
// statement, so a window of recent sequence numbers is sufficient.
const seqCacheSize = 4096

// New creates an empty node. memPages is the sort memory M (pages) used by
// sort-merge joins; it defaults to 10 if non-positive (the paper's M).
func New(id, memPages int) *DataNode {
	if memPages <= 0 {
		memPages = 10
	}
	return &DataNode{
		id:       id,
		meter:    &storage.Meter{},
		memPages: memPages,
		frags:    map[string]*storage.Fragment{},
		gidx:     map[string]*gindex.Fragment{},
		seen:     map[uint64]any{},
	}
}

// SetBufferPages attaches a buffer pool of the given page capacity to the
// node (0 disables caching simulation). Call before any fragments are
// created; existing fragments keep their previous pool.
func (n *DataNode) SetBufferPages(pages int) {
	n.pool = buffer.New(pages)
	n.poolPages = pages
}

// PoolStatsSnapshot returns the node's buffer-pool counters (zero when no
// pool is attached).
func (n *DataNode) PoolStatsSnapshot() buffer.Stats {
	return n.pool.Stats()
}

// ResetPoolStats zeroes the pool counters, keeping cached pages resident
// (so warm-cache windows can be measured).
func (n *DataNode) ResetPoolStats() {
	n.pool.ResetStats()
}

// ID returns the node id.
func (n *DataNode) ID() int { return n.id }

// Meter returns the node's I/O meter.
func (n *DataNode) Meter() *storage.Meter { return n.meter }

// Handler adapts the node to the transport.
func (n *DataNode) Handler() netsim.Handler {
	return func(req any) (any, error) { return n.Handle(req) }
}

func (n *DataNode) frag(name string) (*storage.Fragment, error) {
	f, ok := n.frags[name]
	if !ok {
		return nil, fmt.Errorf("node %d: no fragment %q", n.id, name)
	}
	return f, nil
}

func (n *DataNode) gi(name string) (*gindex.Fragment, error) {
	g, ok := n.gidx[name]
	if !ok {
		return nil, fmt.Errorf("node %d: no global index %q", n.id, name)
	}
	return g, nil
}

// remember caches a sequence number's response, evicting the oldest entry
// once the cache is full.
func (n *DataNode) remember(id uint64, resp any) {
	if len(n.seenOrder) >= seqCacheSize {
		delete(n.seen, n.seenOrder[0])
		n.seenOrder = n.seenOrder[1:]
	}
	n.seen[id] = resp
	n.seenOrder = append(n.seenOrder, id)
}

// Handle dispatches one request.
func (n *DataNode) Handle(req any) (any, error) {
	if n.wiped {
		// A crashed node has no state to serve from; accepting anything
		// before recovery would silently run against an empty database.
		switch req.(type) {
		case CrashReq, RestartReq:
		default:
			return nil, fmt.Errorf("node %d: crashed, awaiting restart", n.id)
		}
	}
	switch r := req.(type) {
	case Seq:
		// At-most-once execution: a duplicate delivery (retry after a lost
		// reply or a retransmission race) is answered from the cache
		// without re-running the wrapped request. Failures are not cached —
		// the request was not applied, so a retry must execute it.
		if resp, applied := n.seen[r.ID]; applied {
			return resp, nil
		}
		resp, err := n.Handle(r.Req)
		if err != nil {
			return nil, err
		}
		n.remember(r.ID, resp)
		if n.store != nil && IsMutating(r.Req) {
			if err := n.logRedo(r.TID, r.ID, r.Req, resp); err != nil {
				return nil, err
			}
		}
		return resp, nil

	case SeqQuery:
		resp, applied := n.seen[r.ID]
		return SeqQueryResult{Applied: applied, Resp: resp}, nil

	case Ping:
		return Ack{}, nil

	case CreateFragment:
		if _, dup := n.frags[r.Name]; dup {
			return nil, fmt.Errorf("node %d: fragment %q already exists", n.id, r.Name)
		}
		f, err := storage.NewFragment(r.Schema, storage.Config{
			Name:       r.Name,
			ClusterCol: r.ClusterCol,
			PageRows:   r.PageRows,
			Meter:      n.meter,
			Pool:       n.pool,
		})
		if err != nil {
			return nil, err
		}
		n.frags[r.Name] = f
		return Ack{}, nil

	case CreateIndex:
		f, err := n.frag(r.Frag)
		if err != nil {
			return nil, err
		}
		if err := f.CreateIndex(r.Name, r.Col); err != nil {
			return nil, err
		}
		return Ack{}, nil

	case CreateGlobalIndex:
		if _, dup := n.gidx[r.Name]; dup {
			return nil, fmt.Errorf("node %d: global index %q already exists", n.id, r.Name)
		}
		n.gidx[r.Name] = gindex.New(n.meter, r.DistClustered)
		return Ack{}, nil

	case Insert:
		f, err := n.frag(r.Frag)
		if err != nil {
			return nil, err
		}
		f.TruncateVersions(r.GCFloor)
		res := InsertResult{Rows: make([]storage.RowID, 0, len(r.Tuples))}
		for _, t := range r.Tuples {
			var row storage.RowID
			if r.Unmetered {
				row, err = f.InsertUnmetered(t)
			} else {
				row, err = f.InsertEpoch(t, r.Epoch)
			}
			if err != nil {
				return nil, fmt.Errorf("node %d: insert into %q: %w", n.id, r.Frag, err)
			}
			res.Rows = append(res.Rows, row)
		}
		return res, nil

	case DeleteRows:
		f, err := n.frag(r.Frag)
		if err != nil {
			return nil, err
		}
		f.TruncateVersions(r.GCFloor)
		res := DeleteResult{}
		for _, row := range r.Rows {
			if t, ok := f.DeleteEpoch(row, r.Epoch); ok {
				res.Tuples = append(res.Tuples, t)
				res.Rows = append(res.Rows, row)
			}
		}
		return res, nil

	case RestoreRows:
		f, err := n.frag(r.Frag)
		if err != nil {
			return nil, err
		}
		if len(r.Rows) != len(r.Tuples) {
			return nil, fmt.Errorf("node %d: RestoreRows: %d rows vs %d tuples", n.id, len(r.Rows), len(r.Tuples))
		}
		f.TruncateVersions(r.GCFloor)
		for i, row := range r.Rows {
			if err := f.InsertAtEpoch(row, r.Tuples[i], r.Epoch); err != nil {
				return nil, fmt.Errorf("node %d: restore into %q: %w", n.id, r.Frag, err)
			}
		}
		return Ack{}, nil

	case DeleteMatch:
		f, err := n.frag(r.Frag)
		if err != nil {
			return nil, err
		}
		f.TruncateVersions(r.GCFloor)
		res := DeleteResult{}
		for _, t := range r.Tuples {
			rows, err := f.FindRows(r.HintCol, t)
			if err != nil {
				return nil, err
			}
			if len(rows) == 0 {
				continue
			}
			if del, ok := f.DeleteEpoch(rows[0], r.Epoch); ok {
				res.Tuples = append(res.Tuples, del)
				res.Rows = append(res.Rows, rows[0])
			}
		}
		return res, nil

	case LocateMatch:
		f, err := n.frag(r.Frag)
		if err != nil {
			return nil, err
		}
		res := RowsResult{}
		used := map[storage.RowID]bool{}
		for _, t := range r.Tuples {
			rows, err := f.FindRows(r.HintCol, t)
			if err != nil {
				return nil, err
			}
			for _, row := range rows {
				if used[row] {
					continue
				}
				used[row] = true
				res.Rows = append(res.Rows, row)
				res.Tuples = append(res.Tuples, t)
				break
			}
		}
		return res, nil

	case Probe:
		return n.probe(r)

	case FetchJoin:
		return n.fetchJoin(r)

	case GIInsert:
		g, err := n.gi(r.GI)
		if err != nil {
			return nil, err
		}
		g.Insert(r.Val, r.G)
		return Ack{}, nil

	case GIInsertBatch:
		g, err := n.gi(r.GI)
		if err != nil {
			return nil, err
		}
		if len(r.Vals) != len(r.Gs) {
			return nil, fmt.Errorf("node %d: GIInsertBatch: %d values vs %d row ids", n.id, len(r.Vals), len(r.Gs))
		}
		for i, v := range r.Vals {
			if r.Metered {
				g.Insert(v, r.Gs[i])
			} else {
				g.InsertUnmetered(v, r.Gs[i])
			}
		}
		return Ack{}, nil

	case GIDeleteBatch:
		g, err := n.gi(r.GI)
		if err != nil {
			return nil, err
		}
		if len(r.Vals) != len(r.Gs) {
			return nil, fmt.Errorf("node %d: GIDeleteBatch: %d values vs %d row ids", n.id, len(r.Vals), len(r.Gs))
		}
		res := GIDeletedBatch{OK: make([]bool, len(r.Vals))}
		for i, v := range r.Vals {
			res.OK[i] = g.Delete(v, r.Gs[i])
		}
		return res, nil

	case FindMatching:
		f, err := n.frag(r.Frag)
		if err != nil {
			return nil, err
		}
		res := RowsResult{}
		var evalErr error
		f.Scan(func(row storage.RowID, t types.Tuple) bool {
			ok, err := expr.Matches(r.Pred, f.Schema(), t)
			if err != nil {
				evalErr = err
				return false
			}
			if ok {
				res.Rows = append(res.Rows, row)
				res.Tuples = append(res.Tuples, t)
			}
			return true
		})
		if evalErr != nil {
			return nil, evalErr
		}
		return res, nil

	case GIDelete:
		g, err := n.gi(r.GI)
		if err != nil {
			return nil, err
		}
		return GIDeleted{OK: g.Delete(r.Val, r.G)}, nil

	case GILookup:
		g, err := n.gi(r.GI)
		if err != nil {
			return nil, err
		}
		return GIRows{IDs: g.Lookup(r.Val)}, nil

	case GILen:
		g, err := n.gi(r.GI)
		if err != nil {
			return nil, err
		}
		return GILenResult{Len: g.Len()}, nil

	case GIScan:
		g, err := n.gi(r.GI)
		if err != nil {
			return nil, err
		}
		res := GIScanResult{}
		g.Scan(func(v types.Value, grid storage.GlobalRowID) bool {
			res.Vals = append(res.Vals, v)
			res.Gs = append(res.Gs, grid)
			return true
		})
		return res, nil

	case Scan:
		f, err := n.frag(r.Frag)
		if err != nil {
			return nil, err
		}
		res := RowsResult{Tuples: make([]types.Tuple, 0, f.Len())}
		f.SnapshotScan(r.Epoch, func(_ storage.RowID, t types.Tuple) bool {
			res.Tuples = append(res.Tuples, t)
			return true
		})
		return res, nil

	case AllRows:
		f, err := n.frag(r.Frag)
		if err != nil {
			return nil, err
		}
		return RowsResult{Tuples: f.SnapshotAll(r.Epoch)}, nil

	case ScanWithRows:
		f, err := n.frag(r.Frag)
		if err != nil {
			return nil, err
		}
		// Unmetered: DDL (global-index builds) and delete-victim location
		// are charged at a higher level where the paper's model does.
		res := RowsResult{}
		f.ScanUnmetered(func(row storage.RowID, t types.Tuple) bool {
			res.Rows = append(res.Rows, row)
			res.Tuples = append(res.Tuples, t)
			return true
		})
		return res, nil

	case AggApply:
		return n.aggApply(r)

	case DropFragment:
		if _, ok := n.frags[r.Name]; !ok {
			return nil, fmt.Errorf("node %d: no fragment %q to drop", n.id, r.Name)
		}
		delete(n.frags, r.Name)
		n.pool.Invalidate(r.Name)
		return Ack{}, nil

	case DropGlobalIndexFrag:
		if _, ok := n.gidx[r.Name]; !ok {
			return nil, fmt.Errorf("node %d: no global index %q to drop", n.id, r.Name)
		}
		delete(n.gidx, r.Name)
		return Ack{}, nil

	case PromoteSlots:
		return n.promoteSlots(r)

	case GIPromoteSlots:
		src, err := n.gi(r.Src)
		if err != nil {
			return nil, err
		}
		dst, err := n.gi(r.Dst)
		if err != nil {
			return nil, err
		}
		want := slotSet(r.Slots)
		var vals []types.Value
		var gs []storage.GlobalRowID
		src.Scan(func(v types.Value, g storage.GlobalRowID) bool {
			if want[int(v.Hash()%uint64(r.Mod))] {
				vals = append(vals, v)
				gs = append(gs, g)
			}
			return true
		})
		for i, v := range vals {
			src.DeleteUnmetered(v, gs[i])
			dst.InsertUnmetered(v, gs[i])
		}
		return Ack{}, nil

	case GIScrubNode:
		g, err := n.gi(r.GI)
		if err != nil {
			return nil, err
		}
		var vals []types.Value
		var gs []storage.GlobalRowID
		g.Scan(func(v types.Value, grid storage.GlobalRowID) bool {
			if int(grid.Node) == r.Node {
				vals = append(vals, v)
				gs = append(gs, grid)
			}
			return true
		})
		for i, v := range vals {
			g.DeleteUnmetered(v, gs[i])
		}
		return GIScrubbed{Removed: len(vals)}, nil

	case LocalJoin:
		return n.localJoin(r)

	case FragInfo:
		f, err := n.frag(r.Frag)
		if err != nil {
			return nil, err
		}
		return FragInfoResult{Len: f.Len(), Pages: f.Pages()}, nil

	case Prepare:
		if err := n.prepare(r.TID); err != nil {
			return nil, err
		}
		return Ack{}, nil

	case Decide:
		n.decide(r.TID, r.Commit)
		return Ack{}, nil

	case ResolveAbort:
		if err := n.resolveAbort(r.TID); err != nil {
			return nil, err
		}
		return Ack{}, nil

	case InDoubtReq:
		return InDoubtResult{TIDs: n.inDoubt()}, nil

	case CheckpointReq:
		return n.checkpoint()

	case CrashReq:
		if n.store == nil {
			return nil, fmt.Errorf("node %d: cannot crash: durability not enabled", n.id)
		}
		n.crash()
		return Ack{}, nil

	case RestartReq:
		return n.restart()

	case MeterSnapshot:
		return n.meter.Snapshot(), nil

	case ResetMeter:
		n.meter.Reset()
		n.pool.ResetStats()
		return Ack{}, nil

	default:
		return nil, fmt.Errorf("node %d: unknown request type %T", n.id, req)
	}
}

func (n *DataNode) probe(r Probe) (any, error) {
	f, err := n.frag(r.Frag)
	if err != nil {
		return nil, err
	}
	algo := r.Algo
	if algo == AlgoAuto {
		algo = n.chooseAlgo(f, r)
	}
	var out []types.Tuple
	switch algo {
	case AlgoIndex:
		out, err = exec.IndexNestedLoops(r.Delta, r.DeltaKey, f, r.FragCol)
	case AlgoSortMerge:
		out, err = exec.SortMerge(r.Delta, r.DeltaKey, f, r.FragCol, n.memPages)
	default:
		return nil, fmt.Errorf("node %d: bad probe algorithm %v", n.id, r.Algo)
	}
	if err != nil {
		return nil, err
	}
	return Probed{Tuples: out}, nil
}

// chooseAlgo compares the estimated I/O of index nested loops against
// sort-merge, the §3.2 crossover ("if |A| is large enough ... the sort
// merge algorithm is preferable to index nested loops").
func (n *DataNode) chooseAlgo(f *storage.Fragment, r Probe) Algo {
	fanout := r.FanoutHint
	if fanout < 1 {
		fanout = 1
	}
	pages := f.Pages()
	var smCost int
	if col, ok := f.Clustered(); ok && col == r.FragCol {
		smCost = pages
	} else {
		smCost = pages * exec.CeilLog(n.memPages, pages)
	}
	inlCost := len(r.Delta) // one SEARCH per delta tuple
	if col, ok := f.Clustered(); !ok || col != r.FragCol {
		// Non-clustered access also pays one FETCH per expected match.
		inlCost += int(float64(len(r.Delta)) * fanout)
	}
	if smCost < inlCost {
		return AlgoSortMerge
	}
	return AlgoIndex
}

// aggApply adjusts an aggregate-view fragment by signed group deltas.
func (n *DataNode) aggApply(r AggApply) (any, error) {
	f, err := n.frag(r.Frag)
	if err != nil {
		return nil, err
	}
	if len(r.Keys) != len(r.Deltas) {
		return nil, fmt.Errorf("node %d: AggApply: %d keys vs %d deltas", n.id, len(r.Keys), len(r.Deltas))
	}
	hintIdx := f.Schema().ColIndex(r.HintCol)
	if hintIdx < 0 || hintIdx >= r.GroupLen {
		return nil, fmt.Errorf("node %d: AggApply: hint column %q is not a group column", n.id, r.HintCol)
	}
	f.TruncateVersions(r.GCFloor)
	for gi, key := range r.Keys {
		delta := r.Deltas[gi]
		ms, _, err := f.LookupEqual(r.HintCol, key[hintIdx])
		if err != nil {
			return nil, err
		}
		var existing *storage.Match
		for i := range ms {
			if types.Tuple(ms[i].Tuple[:r.GroupLen]).Equal(key) {
				existing = &ms[i]
				break
			}
		}
		countDelta := delta[r.CountPos].I
		if existing == nil {
			if countDelta <= 0 {
				return nil, fmt.Errorf("node %d: aggregate view %q: delta for absent group %v (structures out of sync)", n.id, r.Frag, key)
			}
			if _, err := f.InsertEpoch(key.Concat(delta), r.Epoch); err != nil {
				return nil, err
			}
			continue
		}
		newCount := existing.Tuple[r.GroupLen+r.CountPos].I + countDelta
		if newCount < 0 {
			return nil, fmt.Errorf("node %d: aggregate view %q: group %v count would go negative", n.id, r.Frag, key)
		}
		if _, ok := f.DeleteEpoch(existing.Row, r.Epoch); !ok {
			return nil, fmt.Errorf("node %d: aggregate view %q: group row vanished", n.id, r.Frag)
		}
		if newCount == 0 {
			continue
		}
		updated := key.Clone()
		for ai := range delta {
			old := existing.Tuple[r.GroupLen+ai]
			nv, err := addValues(old, delta[ai])
			if err != nil {
				return nil, fmt.Errorf("node %d: aggregate view %q: %w", n.id, r.Frag, err)
			}
			updated = append(updated, nv)
		}
		if _, err := f.InsertEpoch(updated, r.Epoch); err != nil {
			return nil, err
		}
	}
	return Ack{}, nil
}

// slotSet builds a membership set from a slot list.
func slotSet(slots []int) map[int]bool {
	m := make(map[int]bool, len(slots))
	for _, s := range slots {
		m[s] = true
	}
	return m
}

// promoteSlots moves the rows of the given hash slots from the shadow
// fragment into the primary fragment — local data movement only, no I/O
// charged (failover repair).
func (n *DataNode) promoteSlots(r PromoteSlots) (any, error) {
	src, err := n.frag(r.Src)
	if err != nil {
		return nil, err
	}
	dst, err := n.frag(r.Dst)
	if err != nil {
		return nil, err
	}
	want := slotSet(r.Slots)
	var rows []storage.RowID
	var tuples []types.Tuple
	src.ScanUnmetered(func(row storage.RowID, t types.Tuple) bool {
		if r.PartIdx < 0 || r.PartIdx >= len(t) {
			return true
		}
		if want[int(t[r.PartIdx].Hash()%uint64(r.Mod))] {
			rows = append(rows, row)
			tuples = append(tuples, t)
		}
		return true
	})
	res := PromoteResult{Rows: make([]storage.RowID, 0, len(rows)), Tuples: tuples}
	for i, row := range rows {
		src.DeleteUnmetered(row)
		newRow, err := dst.InsertUnmetered(tuples[i])
		if err != nil {
			return nil, fmt.Errorf("node %d: promote into %q: %w", n.id, r.Dst, err)
		}
		res.Rows = append(res.Rows, newRow)
	}
	return res, nil
}

// addValues adds two numeric values, preserving the left operand's kind
// (NULL acts as zero of the right operand's kind).
func addValues(a, b types.Value) (types.Value, error) {
	if a.IsNull() {
		return b, nil
	}
	if b.IsNull() {
		return a, nil
	}
	switch {
	case a.K == types.KindInt && b.K == types.KindInt:
		return types.Int(a.I + b.I), nil
	case a.K == types.KindFloat && b.K == types.KindFloat:
		return types.Float(a.F + b.F), nil
	case a.K == types.KindInt && b.K == types.KindFloat:
		return types.Float(float64(a.I) + b.F), nil
	case a.K == types.KindFloat && b.K == types.KindInt:
		return types.Float(a.F + float64(b.I)), nil
	default:
		return types.Value{}, fmt.Errorf("cannot add %v and %v", a, b)
	}
}

// localJoin hash-joins two co-partitioned local fragments into a third.
func (n *DataNode) localJoin(r LocalJoin) (any, error) {
	fl, err := n.frag(r.Left)
	if err != nil {
		return nil, err
	}
	fr, err := n.frag(r.Right)
	if err != nil {
		return nil, err
	}
	fo, err := n.frag(r.Out)
	if err != nil {
		return nil, err
	}
	li := fl.Schema().ColIndex(r.LeftCol)
	ri := fr.Schema().ColIndex(r.RightCol)
	if li < 0 || ri < 0 {
		return nil, fmt.Errorf("node %d: local join columns %q/%q not found", n.id, r.LeftCol, r.RightCol)
	}
	// Build from the right side, probe with the left; both sides charged
	// as one scan each.
	build := map[uint64][]types.Tuple{}
	fr.SnapshotScan(r.RightEpoch, func(_ storage.RowID, t types.Tuple) bool {
		h := t[ri].Hash()
		build[h] = append(build[h], t)
		return true
	})
	produced := 0
	var joinErr error
	fl.SnapshotScan(r.LeftEpoch, func(_ storage.RowID, t types.Tuple) bool {
		for _, rt := range build[t[li].Hash()] {
			if !types.Equal(t[li], rt[ri]) {
				continue
			}
			if _, err := fo.Insert(t.Concat(rt)); err != nil {
				joinErr = err
				return false
			}
			produced++
		}
		return true
	})
	if joinErr != nil {
		return nil, joinErr
	}
	return LocalJoinResult{Produced: produced}, nil
}

// fetchJoin implements the fetch step of the global-index method: the K
// nodes holding matching tuples each receive the delta tuple plus the
// global row ids that live there, fetch those rows, and join.
func (n *DataNode) fetchJoin(r FetchJoin) (any, error) {
	f, err := n.frag(r.Frag)
	if err != nil {
		return nil, err
	}
	out := make([]types.Tuple, 0, len(r.Rows))
	for _, row := range r.Rows {
		t, ok := f.GetUnmetered(row)
		if !ok {
			return nil, fmt.Errorf("node %d: fetch-join: row %d missing in %q (global index out of sync)", n.id, row, r.Frag)
		}
		out = append(out, r.Delta.Concat(t))
	}
	// §3.1(e): distributed clustered -> matching rows share pages (charge
	// per page); otherwise one FETCH per row.
	if col, ok := f.Clustered(); ok && col == r.FragCol {
		if len(r.Rows) > 0 {
			pages := (len(r.Rows) + f.PageRows() - 1) / f.PageRows()
			n.meter.Fetch(int64(pages))
		}
	} else {
		n.meter.Fetch(int64(len(r.Rows)))
	}
	return Probed{Tuples: out}, nil
}
