package node

import (
	"testing"

	"joinview/internal/storage"
	"joinview/internal/types"
)

// TestSeqDedup is the double-apply regression test: a Seq-wrapped insert
// delivered twice (a retry after a lost reply) must execute once and answer
// the duplicate from the cache.
func TestSeqDedup(t *testing.T) {
	n := newNodeWithOrders(t, "")
	req := Seq{ID: 1, Req: Insert{Frag: "orders", Tuples: []types.Tuple{order(1, 5)}}}
	first := mustHandle(t, n, req).(InsertResult)
	second := mustHandle(t, n, req).(InsertResult)
	if len(second.Rows) != 1 || second.Rows[0] != first.Rows[0] {
		t.Fatalf("duplicate delivery answered %v, want cached %v", second, first)
	}
	info := mustHandle(t, n, FragInfo{Frag: "orders"}).(FragInfoResult)
	if info.Len != 1 {
		t.Fatalf("duplicate delivery applied twice: %d rows", info.Len)
	}
}

func TestSeqFailureNotCached(t *testing.T) {
	n := newNodeWithOrders(t, "")
	bad := Seq{ID: 7, Req: Insert{Frag: "ghost", Tuples: []types.Tuple{order(1, 5)}}}
	if _, err := n.Handle(bad); err == nil {
		t.Fatal("insert into missing fragment should fail")
	}
	q := mustHandle(t, n, SeqQuery{ID: 7}).(SeqQueryResult)
	if q.Applied {
		t.Fatal("failed request must not be recorded as applied")
	}
	// The same sequence number retried against a fixed request executes.
	good := Seq{ID: 7, Req: Insert{Frag: "orders", Tuples: []types.Tuple{order(1, 5)}}}
	mustHandle(t, n, good)
	if q := mustHandle(t, n, SeqQuery{ID: 7}).(SeqQueryResult); !q.Applied {
		t.Fatal("applied request must be queryable")
	}
}

func TestSeqQueryResolvesInDoubt(t *testing.T) {
	n := newNodeWithOrders(t, "")
	if q := mustHandle(t, n, SeqQuery{ID: 42}).(SeqQueryResult); q.Applied {
		t.Fatal("unseen sequence number reported applied")
	}
	res := mustHandle(t, n, Seq{ID: 42, Req: Insert{Frag: "orders", Tuples: []types.Tuple{order(3, 9)}}}).(InsertResult)
	q := mustHandle(t, n, SeqQuery{ID: 42}).(SeqQueryResult)
	if !q.Applied {
		t.Fatal("applied sequence number reported unseen")
	}
	if cached, ok := q.Resp.(InsertResult); !ok || cached.Rows[0] != res.Rows[0] {
		t.Fatalf("SeqQuery cached response = %v, want %v", q.Resp, res)
	}
}

func TestSeqCacheEviction(t *testing.T) {
	n := newNodeWithOrders(t, "")
	for id := uint64(0); id < seqCacheSize+10; id++ {
		mustHandle(t, n, Seq{ID: id, Req: Ping{}})
	}
	if q := mustHandle(t, n, SeqQuery{ID: 0}).(SeqQueryResult); q.Applied {
		t.Fatal("oldest entry should have been evicted")
	}
	if q := mustHandle(t, n, SeqQuery{ID: seqCacheSize + 9}).(SeqQueryResult); !q.Applied {
		t.Fatal("newest entry must survive eviction")
	}
}

// TestRestoreRowsKeepsRowIDs pins the delete-undo contract: restoring a
// deleted tuple at its original row id, so references held elsewhere (the
// global index stores (node, row) pairs) stay valid.
func TestRestoreRowsKeepsRowIDs(t *testing.T) {
	n := newNodeWithOrders(t, "custkey")
	ins := mustHandle(t, n, Insert{Frag: "orders", Tuples: []types.Tuple{order(1, 5), order(2, 6), order(3, 7)}}).(InsertResult)
	del := mustHandle(t, n, DeleteRows{Frag: "orders", Rows: []storage.RowID{ins.Rows[1]}}).(DeleteResult)
	if len(del.Rows) != 1 || del.Rows[0] != ins.Rows[1] {
		t.Fatalf("DeleteResult.Rows = %v, want [%d]", del.Rows, ins.Rows[1])
	}
	mustHandle(t, n, RestoreRows{Frag: "orders", Rows: del.Rows, Tuples: del.Tuples})
	// A later insert must not collide with the restored id.
	later := mustHandle(t, n, Insert{Frag: "orders", Tuples: []types.Tuple{order(4, 8)}}).(InsertResult)
	if later.Rows[0] == ins.Rows[1] {
		t.Fatal("restored row id was reallocated")
	}
	// The restored row is findable at its original id via LocateMatch.
	loc := mustHandle(t, n, LocateMatch{Frag: "orders", HintCol: "custkey", Tuples: []types.Tuple{order(2, 6)}}).(RowsResult)
	if len(loc.Rows) != 1 || loc.Rows[0] != ins.Rows[1] {
		t.Fatalf("restored tuple at row %v, want %d", loc.Rows, ins.Rows[1])
	}
	// Restoring into an occupied slot fails.
	if _, err := n.Handle(RestoreRows{Frag: "orders", Rows: []storage.RowID{ins.Rows[0]}, Tuples: []types.Tuple{order(9, 9)}}); err == nil {
		t.Fatal("restore into occupied row id should fail")
	}
	if _, err := n.Handle(RestoreRows{Frag: "orders", Rows: []storage.RowID{99}, Tuples: nil}); err == nil {
		t.Fatal("mismatched rows/tuples should fail")
	}
}

func TestDeleteMatchReportsRows(t *testing.T) {
	n := newNodeWithOrders(t, "custkey")
	ins := mustHandle(t, n, Insert{Frag: "orders", Tuples: []types.Tuple{order(1, 5)}}).(InsertResult)
	del := mustHandle(t, n, DeleteMatch{Frag: "orders", HintCol: "custkey", Tuples: []types.Tuple{order(1, 5)}}).(DeleteResult)
	if len(del.Rows) != 1 || del.Rows[0] != ins.Rows[0] {
		t.Fatalf("DeleteMatch rows = %v, want [%d]", del.Rows, ins.Rows[0])
	}
}
