package node

import (
	"fmt"
	"sort"

	"joinview/internal/buffer"
	"joinview/internal/gindex"
	"joinview/internal/storage"
	"joinview/internal/wal"
)

// EnableDurability attaches a durable store (write-ahead log + checkpoint
// area) to the node. recsPerPage sets the log-page geometry (defaults like
// wal.NewLog); ckptEvery > 0 takes an automatic checkpoint after that many
// redo records. Must be called before the node does any work.
func (n *DataNode) EnableDurability(recsPerPage, ckptEvery int) {
	if recsPerPage <= 0 {
		recsPerPage = storage.DefaultPageRows
	}
	n.store = wal.NewStore(n.meter, recsPerPage)
	n.logPageRows = recsPerPage
	n.ckptEvery = ckptEvery
	n.pending = map[uint64]uint64{}
}

// Durable reports whether the node has a durable store attached.
func (n *DataNode) Durable() bool { return n.store != nil }

// logRedo appends a redo record for an applied Seq request and drives the
// automatic checkpoint. Called only from the Seq path, so replay (which
// re-executes unwrapped requests) never re-logs.
func (n *DataNode) logRedo(tid, seq uint64, req, resp any) error {
	lsn := n.store.Log.Append(wal.Record{Kind: wal.KindRedo, TID: tid, Seq: seq, Req: req, Resp: resp})
	if tid != 0 {
		if _, ok := n.pending[tid]; !ok {
			n.pending[tid] = lsn
		}
	}
	n.recsSinceCkpt++
	if n.ckptEvery > 0 && n.recsSinceCkpt >= n.ckptEvery {
		if _, err := n.checkpoint(); err != nil {
			return fmt.Errorf("node %d: auto checkpoint: %w", n.id, err)
		}
	}
	return nil
}

// minPendingLSN returns the earliest first-record LSN among undecided
// transactions (0 when none are pending): the log must stay replayable from
// there so ResolveAbort can still invert their records.
func (n *DataNode) minPendingLSN() uint64 {
	var minLSN uint64
	for _, lsn := range n.pending {
		if minLSN == 0 || lsn < minLSN {
			minLSN = lsn
		}
	}
	return minLSN
}

// checkpoint snapshots the node's entire state into the durable store and
// reclaims the covered log prefix.
func (n *DataNode) checkpoint() (CheckpointResult, error) {
	if n.store == nil {
		return CheckpointResult{}, fmt.Errorf("node %d: durability not enabled", n.id)
	}
	ck := &wal.Checkpoint{
		LSN:       n.store.Log.LastLSN(),
		Frags:     map[string]storage.FragmentSnapshot{},
		GIdx:      map[string]gindex.Snapshot{},
		Seen:      make(map[uint64]any, len(n.seen)),
		SeenOrder: append([]uint64(nil), n.seenOrder...),
	}
	pages := 0
	for name, f := range n.frags {
		ck.Frags[name] = f.Snapshot()
		pages += f.Pages()
	}
	for name, g := range n.gidx {
		s := g.Snapshot()
		ck.GIdx[name] = s
		pages += (len(s.Vals) + n.logPageRows - 1) / n.logPageRows
	}
	for id, resp := range n.seen {
		ck.Seen[id] = resp
	}
	if pages == 0 {
		pages = 1 // the image header still costs a page
	}
	ck.Pages = pages
	n.store.SetCheckpoint(ck, n.minPendingLSN())
	n.recsSinceCkpt = 0
	return CheckpointResult{LSN: ck.LSN, Pages: pages}, nil
}

// crash fail-stops the node: every volatile structure is discarded; the
// durable store survives. The meter is volatile in a real system but kept
// here — experiments read recovery cost from its deltas.
func (n *DataNode) crash() {
	n.frags = map[string]*storage.Fragment{}
	n.gidx = map[string]*gindex.Fragment{}
	n.seen = map[uint64]any{}
	n.seenOrder = nil
	n.pending = map[uint64]uint64{}
	if n.pool != nil {
		n.pool = buffer.New(n.poolPages)
	}
	n.recsSinceCkpt = 0
	n.wiped = true
}

// restart recovers a crashed node from its durable store: reload the last
// checkpoint image, derive the in-doubt set from every retained record, and
// replay the log tail in LSN order. Recovery I/O is charged to the meter:
// checkpoint pages and log-tail pages as log I/O, re-executed operations at
// their normal cost.
func (n *DataNode) restart() (RestartResult, error) {
	if n.store == nil {
		return RestartResult{}, fmt.Errorf("node %d: durability not enabled", n.id)
	}
	n.crash()
	n.wiped = false
	res := RestartResult{}

	var fromLSN uint64
	if ck := n.store.Checkpoint(); ck != nil {
		fromLSN = ck.LSN
		res.CheckpointLSN = ck.LSN
		res.CheckpointPages = ck.Pages
		n.meter.LogPages(int64(ck.Pages))
		for name, fs := range ck.Frags {
			f, err := storage.RestoreFragment(fs, n.meter, n.pool)
			if err != nil {
				return RestartResult{}, fmt.Errorf("node %d: restore fragment %q: %w", n.id, name, err)
			}
			n.frags[name] = f
		}
		for name, gs := range ck.GIdx {
			n.gidx[name] = gindex.Restore(gs, n.meter)
		}
		for id, resp := range ck.Seen {
			n.seen[id] = resp
		}
		n.seenOrder = append([]uint64(nil), ck.SeenOrder...)
	}

	// The in-doubt set comes from every retained record — including those
	// below the checkpoint LSN, whose effects are inside the image but whose
	// outcome is still open (checkpoint truncation is bounded by them).
	for _, rec := range n.store.Log.All() {
		switch rec.Kind {
		case wal.KindRedo, wal.KindPrepare:
			if rec.TID != 0 {
				if _, ok := n.pending[rec.TID]; !ok {
					n.pending[rec.TID] = rec.LSN
				}
			}
		case wal.KindCommit, wal.KindAbort:
			delete(n.pending, rec.TID)
		}
	}

	tail := n.store.Log.TailFrom(fromLSN)
	res.LogPagesRead = (len(tail) + n.logPageRows - 1) / n.logPageRows
	for _, rec := range tail {
		if rec.Kind != wal.KindRedo {
			continue
		}
		if _, err := n.Handle(replayForm(rec)); err != nil {
			return RestartResult{}, fmt.Errorf("node %d: replay %s: %w", n.id, rec, err)
		}
		if rec.Seq != 0 {
			n.remember(rec.Seq, rec.Resp)
		}
		res.RecordsReplayed++
	}
	res.InDoubt = n.inDoubt()
	return res, nil
}

// replayForm converts a logged request into its deterministic replay form.
// Row-id-allocating and victim-choosing requests are replayed from the
// recorded outcome, so replay lands tuples at their original row ids (global
// index entries reference them) and deletes the original victims.
func replayForm(rec wal.Record) any {
	switch r := rec.Req.(type) {
	case Insert:
		if ir, ok := rec.Resp.(InsertResult); ok {
			tuples := r.Tuples
			return RestoreRows{Frag: r.Frag, Rows: ir.Rows, Tuples: tuples}
		}
	case DeleteMatch:
		if dr, ok := rec.Resp.(DeleteResult); ok {
			return DeleteRows{Frag: r.Frag, Rows: dr.Rows}
		}
	}
	return rec.Req
}

// inDoubt lists undecided transactions in ascending TID order.
func (n *DataNode) inDoubt() []uint64 {
	out := make([]uint64, 0, len(n.pending))
	for tid := range n.pending {
		out = append(out, tid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// prepare logs PREPARE for a transaction and forces the log — the node's
// yes vote is durable before it is given.
func (n *DataNode) prepare(tid uint64) error {
	if n.store == nil {
		return fmt.Errorf("node %d: durability not enabled", n.id)
	}
	lsn := n.store.Log.Append(wal.Record{Kind: wal.KindPrepare, TID: tid})
	if _, ok := n.pending[tid]; !ok {
		n.pending[tid] = lsn
	}
	n.store.Log.Force()
	return nil
}

// decide logs the coordinator's decision and forgets the transaction. The
// record is not forced: under presumed abort the coordinator's log is the
// authority, so losing a lazy decision record only costs a future query.
func (n *DataNode) decide(tid uint64, commit bool) {
	if n.store != nil {
		kind := wal.KindAbort
		if commit {
			kind = wal.KindCommit
		}
		n.store.Log.Append(wal.Record{Kind: kind, TID: tid})
	}
	delete(n.pending, tid)
}

// resolveAbort locally undoes an in-doubt transaction after a restart:
// apply the inverse of each of the TID's retained redo records in reverse
// LSN order. Each applied inverse is logged under the same TID before the
// final ABORT, which makes the operation idempotent across re-crashes:
// replaying a partially-aborted log and re-running resolveAbort composes to
// the same pre-transaction state (the inverse of an already-logged undo
// record cancels against it).
func (n *DataNode) resolveAbort(tid uint64) error {
	if n.store == nil {
		return fmt.Errorf("node %d: durability not enabled", n.id)
	}
	var recs []wal.Record
	for _, rec := range n.store.Log.All() {
		if rec.Kind == wal.KindRedo && rec.TID == tid {
			recs = append(recs, rec)
		}
	}
	for i := len(recs) - 1; i >= 0; i-- {
		inv := InverseOf(recs[i].Req, recs[i].Resp)
		if inv == nil {
			continue
		}
		resp, err := n.Handle(inv)
		if err != nil {
			return fmt.Errorf("node %d: abort tid %d: undo %T: %w", n.id, tid, inv, err)
		}
		n.store.Log.Append(wal.Record{Kind: wal.KindRedo, TID: tid, Req: inv, Resp: resp})
	}
	n.store.Log.Append(wal.Record{Kind: wal.KindAbort, TID: tid})
	n.store.Log.Force()
	delete(n.pending, tid)
	return nil
}
