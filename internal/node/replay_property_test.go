package node

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"joinview/internal/storage"
	"joinview/internal/types"
)

// stateFingerprint serializes the node's visible state — every fragment's
// (row id, tuple) set and every global-index fragment's (value, global
// row id) set, canonically ordered — so two states compare byte-identical
// exactly when they are equal.
func stateFingerprint(t *testing.T, n *DataNode) string {
	t.Helper()
	var sb strings.Builder
	var frags []string
	for name := range n.frags {
		frags = append(frags, name)
	}
	sort.Strings(frags)
	for _, name := range frags {
		rr := mustHandle(t, n, ScanWithRows{Frag: name}).(RowsResult)
		type row struct {
			id  storage.RowID
			tup types.Tuple
		}
		rows := make([]row, len(rr.Rows))
		for i := range rr.Rows {
			rows[i] = row{rr.Rows[i], rr.Tuples[i]}
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].id < rows[j].id })
		fmt.Fprintf(&sb, "frag %s\n", name)
		for _, r := range rows {
			fmt.Fprintf(&sb, "  %v %v\n", r.id, r.tup)
		}
	}
	var gis []string
	for name := range n.gidx {
		gis = append(gis, name)
	}
	sort.Strings(gis)
	for _, name := range gis {
		sc := mustHandle(t, n, GIScan{GI: name}).(GIScanResult)
		entries := make([]string, len(sc.Vals))
		for i := range sc.Vals {
			entries[i] = fmt.Sprintf("  %v %v", sc.Vals[i], sc.Gs[i])
		}
		sort.Strings(entries)
		fmt.Fprintf(&sb, "gi %s\n%s\n", name, strings.Join(entries, "\n"))
	}
	return sb.String()
}

// TestPropertyReplayIdempotent drives a durable node through randomized
// logged workloads (inserts, deletes by row and by value, global-index
// maintenance, occasional checkpoints) and asserts recovery is
// idempotent: restarting once reproduces the pre-crash state
// byte-identically, and restarting again — replaying the same checkpoint
// and log tail a second time — changes nothing. A replay path that is not
// deterministic (row ids reallocated, victims re-chosen) or not
// idempotent (entries applied twice) breaks the fingerprint comparison.
func TestPropertyReplayIdempotent(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(300 + trial)))
			n := New(0, 64)
			n.EnableDurability(8, 0)
			var seq uint64
			do := func(req any) any {
				seq++
				return mustHandle(t, n, Seq{ID: seq, Req: req})
			}
			do(CreateFragment{Name: "orders", Schema: ordersSchema, PageRows: 8})
			do(CreateGlobalIndex{Name: "gi_orders"})

			type live struct {
				id  storage.RowID
				tup types.Tuple
			}
			var rows []live
			nextKey := int64(1)
			for op := 0; op < 60; op++ {
				switch k := rng.Intn(10); {
				case k < 5: // insert a small batch, index every row
					var tuples []types.Tuple
					for j := 0; j < 1+rng.Intn(3); j++ {
						tuples = append(tuples, order(nextKey, nextKey%7))
						nextKey++
					}
					ir := do(Insert{Frag: "orders", Tuples: tuples}).(InsertResult)
					for i, id := range ir.Rows {
						rows = append(rows, live{id, tuples[i]})
						do(GIInsert{GI: "gi_orders", Val: tuples[i][1],
							G: storage.GlobalRowID{Node: 0, Row: id}})
					}
				case k < 7 && len(rows) > 0: // delete by row id
					i := rng.Intn(len(rows))
					victim := rows[i]
					rows = append(rows[:i], rows[i+1:]...)
					do(DeleteRows{Frag: "orders", Rows: []storage.RowID{victim.id}})
					do(GIDelete{GI: "gi_orders", Val: victim.tup[1],
						G: storage.GlobalRowID{Node: 0, Row: victim.id}})
				case k < 8 && len(rows) > 0: // delete by value (victim chosen at the node)
					i := rng.Intn(len(rows))
					victim := rows[i]
					rows = append(rows[:i], rows[i+1:]...)
					dr := do(DeleteMatch{Frag: "orders", HintCol: "orderkey",
						Tuples: []types.Tuple{victim.tup}}).(DeleteResult)
					for j, id := range dr.Rows {
						do(GIDelete{GI: "gi_orders", Val: dr.Tuples[j][1],
							G: storage.GlobalRowID{Node: 0, Row: id}})
					}
				case k < 9 && rng.Intn(3) == 0: // occasional checkpoint
					mustHandle(t, n, CheckpointReq{})
				}
			}

			before := stateFingerprint(t, n)

			mustHandle(t, n, CrashReq{})
			mustHandle(t, n, RestartReq{})
			once := stateFingerprint(t, n)
			if once != before {
				t.Fatalf("replay diverged from pre-crash state:\n--- before ---\n%s\n--- after ---\n%s", before, once)
			}

			// Crash and replay the identical durable state a second time:
			// byte-identical result or replay is not idempotent.
			mustHandle(t, n, CrashReq{})
			mustHandle(t, n, RestartReq{})
			twice := stateFingerprint(t, n)
			if twice != once {
				t.Fatalf("second replay diverged:\n--- once ---\n%s\n--- twice ---\n%s", once, twice)
			}
		})
	}
}
