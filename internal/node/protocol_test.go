package node

import (
	"fmt"
	"strings"
	"testing"
)

// TestHandleCoversAllRequests checks the request registry against Handle:
// every type AllRequests lists must reach a real case, never the "unknown
// request type" fallthrough. A zero-value request may fail for other
// reasons (missing fragment, empty name); only recognition is asserted.
func TestHandleCoversAllRequests(t *testing.T) {
	for _, req := range AllRequests() {
		n := New(0, 10)
		n.EnableDurability(10, 0)
		_, err := n.Handle(req)
		if err != nil && strings.Contains(err.Error(), fmt.Sprintf("unknown request type %T", req)) {
			t.Errorf("Handle does not recognize %T", req)
		}
	}
}

// TestIsMutatingStable pins the classification: requests that change node
// state versus pure reads and control requests. A new request type added
// to AllRequests lands here as a test failure until it is classified.
func TestIsMutatingStable(t *testing.T) {
	mutating := map[string]bool{
		"node.Insert": true, "node.DeleteRows": true, "node.DeleteMatch": true,
		"node.RestoreRows": true, "node.GIInsert": true, "node.GIInsertBatch": true,
		"node.GIDelete": true, "node.GIDeleteBatch": true,
		"node.AggApply": true, "node.LocalJoin": true,
		"node.CreateFragment": true, "node.CreateIndex": true,
		"node.CreateGlobalIndex": true, "node.DropFragment": true,
		"node.DropGlobalIndexFrag": true,
		"node.PromoteSlots":        true, "node.GIPromoteSlots": true,
		"node.GIScrubNode": true,
	}
	seen := map[string]bool{}
	for _, req := range AllRequests() {
		name := fmt.Sprintf("%T", req)
		if seen[name] {
			t.Errorf("AllRequests lists %s twice", name)
		}
		seen[name] = true
		if got, want := IsMutating(req), mutating[name]; got != want {
			t.Errorf("IsMutating(%s) = %v, want %v", name, got, want)
		}
	}
	for name := range mutating {
		if !seen[name] {
			t.Errorf("mutating type %s missing from AllRequests", name)
		}
	}
}
