package node

import (
	"reflect"
	"testing"

	"joinview/internal/storage"
	"joinview/internal/types"
	"joinview/internal/wal"
)

func walRedo(tid uint64, req, resp any) wal.Record {
	return wal.Record{Kind: wal.KindRedo, TID: tid, Req: req, Resp: resp}
}

func newDurableNodeWithOrders(t *testing.T) *DataNode {
	t.Helper()
	n := New(0, 10)
	n.EnableDurability(10, 0)
	if _, err := n.Handle(Seq{ID: 1, Req: CreateFragment{Name: "orders", Schema: ordersSchema, PageRows: 10}}); err != nil {
		t.Fatal(err)
	}
	return n
}

func ordersContent(t *testing.T, n *DataNode) []types.Tuple {
	t.Helper()
	return mustHandle(t, n, AllRows{Frag: "orders"}).(RowsResult).Tuples
}

func TestCrashLosesStateUntilRestart(t *testing.T) {
	n := newDurableNodeWithOrders(t)
	mustHandle(t, n, Seq{ID: 2, Req: Insert{Frag: "orders", Tuples: []types.Tuple{order(1, 5), order(2, 6)}}})

	mustHandle(t, n, CrashReq{})
	if _, err := n.Handle(AllRows{Frag: "orders"}); err == nil {
		t.Fatal("crashed node answered a read")
	}
	if _, err := n.Handle(Seq{ID: 3, Req: Insert{Frag: "orders", Tuples: []types.Tuple{order(3, 7)}}}); err == nil {
		t.Fatal("crashed node accepted a write")
	}

	res := mustHandle(t, n, RestartReq{}).(RestartResult)
	if res.RecordsReplayed != 2 {
		t.Fatalf("RecordsReplayed = %d, want 2", res.RecordsReplayed)
	}
	got := ordersContent(t, n)
	if len(got) != 2 {
		t.Fatalf("after replay: %v", got)
	}
	// The dedup cache survives recovery: a retried pre-crash Seq is answered
	// from cache, not re-executed.
	mustHandle(t, n, Seq{ID: 2, Req: Insert{Frag: "orders", Tuples: []types.Tuple{order(1, 5), order(2, 6)}}})
	if got := ordersContent(t, n); len(got) != 2 {
		t.Fatalf("duplicate Seq re-executed after recovery: %v", got)
	}
}

func TestRestartFromCheckpointReplaysOnlyTail(t *testing.T) {
	n := newDurableNodeWithOrders(t)
	mustHandle(t, n, Seq{ID: 2, Req: Insert{Frag: "orders", Tuples: []types.Tuple{order(1, 5)}}})
	ck := mustHandle(t, n, CheckpointReq{}).(CheckpointResult)
	if ck.LSN == 0 || ck.Pages == 0 {
		t.Fatalf("CheckpointResult = %+v", ck)
	}
	mustHandle(t, n, Seq{ID: 3, Req: Insert{Frag: "orders", Tuples: []types.Tuple{order(2, 6)}}})

	mustHandle(t, n, CrashReq{})
	res := mustHandle(t, n, RestartReq{}).(RestartResult)
	if res.CheckpointLSN != ck.LSN {
		t.Fatalf("CheckpointLSN = %d, want %d", res.CheckpointLSN, ck.LSN)
	}
	if res.RecordsReplayed != 1 {
		t.Fatalf("RecordsReplayed = %d, want 1 (only the post-checkpoint insert)", res.RecordsReplayed)
	}
	if got := ordersContent(t, n); len(got) != 2 {
		t.Fatalf("after recovery: %v", got)
	}
}

func TestReplayPreservesRowIDs(t *testing.T) {
	n := newDurableNodeWithOrders(t)
	ins := mustHandle(t, n, Seq{ID: 2, Req: Insert{Frag: "orders", Tuples: []types.Tuple{order(1, 5), order(2, 6), order(3, 7)}}}).(InsertResult)
	del := mustHandle(t, n, Seq{ID: 3, Req: DeleteMatch{Frag: "orders", HintCol: "orderkey", Tuples: []types.Tuple{order(2, 6)}}}).(DeleteResult)
	if len(del.Rows) != 1 {
		t.Fatalf("DeleteResult = %+v", del)
	}

	mustHandle(t, n, CrashReq{})
	mustHandle(t, n, RestartReq{})
	rr := mustHandle(t, n, ScanWithRows{Frag: "orders"}).(RowsResult)
	want := map[storage.RowID]bool{ins.Rows[0]: true, ins.Rows[2]: true}
	got := map[storage.RowID]bool{}
	for _, row := range rr.Rows {
		got[row] = true
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("row ids after replay = %v, want %v", rr.Rows, ins.Rows)
	}
}

func TestInDoubtAndResolveAbort(t *testing.T) {
	n := newDurableNodeWithOrders(t)
	mustHandle(t, n, Seq{ID: 2, Req: Insert{Frag: "orders", Tuples: []types.Tuple{order(1, 5)}}})
	mustHandle(t, n, Seq{ID: 3, TID: 7, Req: Insert{Frag: "orders", Tuples: []types.Tuple{order(2, 6)}}})
	mustHandle(t, n, Prepare{TID: 7})

	mustHandle(t, n, CrashReq{})
	res := mustHandle(t, n, RestartReq{}).(RestartResult)
	if !reflect.DeepEqual(res.InDoubt, []uint64{7}) {
		t.Fatalf("InDoubt = %v, want [7]", res.InDoubt)
	}

	mustHandle(t, n, ResolveAbort{TID: 7})
	if got := ordersContent(t, n); len(got) != 1 || got[0][0].I != 1 {
		t.Fatalf("after abort: %v", got)
	}
	if tids := mustHandle(t, n, InDoubtReq{}).(InDoubtResult).TIDs; len(tids) != 0 {
		t.Fatalf("in-doubt after abort = %v", tids)
	}

	// Crash again after the abort: replay must not resurrect TID 7 (the
	// abort record settles it) and the state must still exclude its insert.
	mustHandle(t, n, CrashReq{})
	res = mustHandle(t, n, RestartReq{}).(RestartResult)
	if len(res.InDoubt) != 0 {
		t.Fatalf("InDoubt after aborted tid = %v", res.InDoubt)
	}
	if got := ordersContent(t, n); len(got) != 1 {
		t.Fatalf("after second recovery: %v", got)
	}
}

func TestResolveAbortIdempotentAcrossCrash(t *testing.T) {
	// Crash "mid-abort": simulate by logging a partial undo under the TID
	// (one of two inserts inverted), then crash, restart, and resolve again.
	// The unwind algebra must converge to the pre-transaction state.
	n := newDurableNodeWithOrders(t)
	mustHandle(t, n, Seq{ID: 2, TID: 9, Req: Insert{Frag: "orders", Tuples: []types.Tuple{order(1, 5)}}})
	ins2 := mustHandle(t, n, Seq{ID: 3, TID: 9, Req: Insert{Frag: "orders", Tuples: []types.Tuple{order(2, 6)}}}).(InsertResult)

	// Partial undo of the second insert, logged under TID 9 exactly as
	// resolveAbort would before a crash interrupted it.
	undo := DeleteRows{Frag: "orders", Rows: ins2.Rows}
	resp := mustHandle(t, n, undo)
	n.store.Log.Append(walRedo(9, undo, resp))

	mustHandle(t, n, CrashReq{})
	res := mustHandle(t, n, RestartReq{}).(RestartResult)
	if !reflect.DeepEqual(res.InDoubt, []uint64{9}) {
		t.Fatalf("InDoubt = %v, want [9]", res.InDoubt)
	}
	mustHandle(t, n, ResolveAbort{TID: 9})
	if got := ordersContent(t, n); len(got) != 0 {
		t.Fatalf("after re-entrant abort: %v", got)
	}
}

func TestDecideCommitSettlesTransaction(t *testing.T) {
	n := newDurableNodeWithOrders(t)
	mustHandle(t, n, Seq{ID: 2, TID: 4, Req: Insert{Frag: "orders", Tuples: []types.Tuple{order(1, 5)}}})
	mustHandle(t, n, Prepare{TID: 4})
	mustHandle(t, n, Decide{TID: 4, Commit: true})

	mustHandle(t, n, CrashReq{})
	res := mustHandle(t, n, RestartReq{}).(RestartResult)
	if len(res.InDoubt) != 0 {
		t.Fatalf("InDoubt = %v, want none after commit", res.InDoubt)
	}
	if got := ordersContent(t, n); len(got) != 1 {
		t.Fatalf("committed insert lost: %v", got)
	}
}

func TestCheckpointRetainsPendingRecords(t *testing.T) {
	n := newDurableNodeWithOrders(t)
	mustHandle(t, n, Seq{ID: 2, TID: 5, Req: Insert{Frag: "orders", Tuples: []types.Tuple{order(1, 5)}}})
	mustHandle(t, n, Seq{ID: 3, Req: Insert{Frag: "orders", Tuples: []types.Tuple{order(2, 6)}}})
	mustHandle(t, n, CheckpointReq{})

	// TID 5 is undecided: its redo record must survive checkpoint
	// truncation so a post-crash abort can still invert it.
	mustHandle(t, n, CrashReq{})
	mustHandle(t, n, RestartReq{})
	mustHandle(t, n, ResolveAbort{TID: 5})
	got := ordersContent(t, n)
	if len(got) != 1 || got[0][0].I != 2 {
		t.Fatalf("after abort of checkpointed-pending tid: %v", got)
	}
}

func TestAutoCheckpointTriggers(t *testing.T) {
	n := New(0, 10)
	n.EnableDurability(10, 3)
	mustHandle(t, n, Seq{ID: 1, Req: CreateFragment{Name: "orders", Schema: ordersSchema, PageRows: 10}})
	mustHandle(t, n, Seq{ID: 2, Req: Insert{Frag: "orders", Tuples: []types.Tuple{order(1, 5)}}})
	mustHandle(t, n, Seq{ID: 3, Req: Insert{Frag: "orders", Tuples: []types.Tuple{order(2, 6)}}})
	if ck := n.store.Checkpoint(); ck == nil {
		t.Fatal("no automatic checkpoint after ckptEvery records")
	}
	mustHandle(t, n, CrashReq{})
	res := mustHandle(t, n, RestartReq{}).(RestartResult)
	if res.CheckpointLSN == 0 {
		t.Fatalf("recovery ignored the automatic checkpoint: %+v", res)
	}
	if got := ordersContent(t, n); len(got) != 2 {
		t.Fatalf("after recovery: %v", got)
	}
}
