// Package exec implements the join algorithms the maintenance strategies
// and the query path use: index nested loops and sort-merge against a
// stored fragment (both metered per the paper's cost model), and an
// unmetered in-memory hash join for coordinator-side query evaluation and
// view backfill.
package exec

import (
	"fmt"

	"joinview/internal/storage"
	"joinview/internal/types"
)

// IndexNestedLoops joins delta tuples against a fragment: for each delta
// tuple it looks up frag rows whose fragCol equals the delta's key column,
// emitting delta ++ fragRow. I/O is charged by the fragment's access path
// (clustered / secondary index / scan), exactly as §3.1 models the per-
// tuple join step of all three maintenance methods.
func IndexNestedLoops(delta []types.Tuple, deltaKeyIdx int, frag *storage.Fragment, fragCol string) ([]types.Tuple, error) {
	var out []types.Tuple
	for _, d := range delta {
		if deltaKeyIdx < 0 || deltaKeyIdx >= len(d) {
			return nil, fmt.Errorf("exec: delta key index %d out of range for arity %d", deltaKeyIdx, len(d))
		}
		ms, _, err := frag.LookupEqual(fragCol, d[deltaKeyIdx])
		if err != nil {
			return nil, err
		}
		for _, m := range ms {
			out = append(out, d.Concat(m.Tuple))
		}
	}
	return out, nil
}

// CeilLog returns ceil(log_base(pages)), the number of merge passes the
// external-sort cost model charges per page; it is at least 1 for any
// non-empty input (a single scan pass).
func CeilLog(base, pages int) int {
	if pages <= 0 {
		return 0
	}
	if base < 2 {
		base = 2
	}
	passes := 1
	for span := base; span < pages; span *= base {
		passes++
	}
	return passes
}

// SortMerge joins delta tuples against a fragment by the sort-merge
// algorithm of §3.2: the delta is assumed to fit in memory (assumption 3),
// and the fragment side costs
//
//   - pages(frag) I/Os when the fragment is clustered on fragCol (a single
//     ordered scan), or
//   - pages(frag) * ceil(log_mem(pages(frag))) I/Os otherwise (external
//     sort dominates).
//
// memPages is the sort memory M in pages. Results are identical to
// IndexNestedLoops; only the charged cost differs.
func SortMerge(delta []types.Tuple, deltaKeyIdx int, frag *storage.Fragment, fragCol string, memPages int) ([]types.Tuple, error) {
	ci := frag.Schema().ColIndex(fragCol)
	if ci < 0 {
		return nil, fmt.Errorf("exec: sort-merge column %q not in fragment schema %v", fragCol, frag.Schema().Names())
	}
	pages := frag.Pages()
	if col, ok := frag.Clustered(); ok && col == fragCol {
		frag.Meter().ScanPages(int64(pages))
		frag.TouchAllPages(1)
	} else {
		passes := CeilLog(memPages, pages)
		frag.Meter().SortPages(int64(pages * passes))
		frag.TouchAllPages(passes)
	}
	// Build the in-memory side from the delta, then stream the fragment.
	byKey := map[uint64][]types.Tuple{}
	for _, d := range delta {
		if deltaKeyIdx < 0 || deltaKeyIdx >= len(d) {
			return nil, fmt.Errorf("exec: delta key index %d out of range for arity %d", deltaKeyIdx, len(d))
		}
		h := d[deltaKeyIdx].Hash()
		byKey[h] = append(byKey[h], d)
	}
	var out []types.Tuple
	for _, row := range frag.All() { // layout order; cost charged above
		for _, d := range byKey[row[ci].Hash()] {
			if types.Equal(d[deltaKeyIdx], row[ci]) {
				out = append(out, d.Concat(row))
			}
		}
	}
	return out, nil
}

// HashJoin joins two in-memory tuple sets on left[leftIdx] == right[rightIdx],
// emitting left ++ right in left order. It is unmetered: the coordinator
// uses it for ad-hoc SELECTs and the initial materialization of views,
// which the experiments do not charge.
func HashJoin(left []types.Tuple, leftIdx int, right []types.Tuple, rightIdx int) ([]types.Tuple, error) {
	build := map[uint64][]types.Tuple{}
	for _, r := range right {
		if rightIdx < 0 || rightIdx >= len(r) {
			return nil, fmt.Errorf("exec: right key index %d out of range for arity %d", rightIdx, len(r))
		}
		h := r[rightIdx].Hash()
		build[h] = append(build[h], r)
	}
	var out []types.Tuple
	for _, l := range left {
		if leftIdx < 0 || leftIdx >= len(l) {
			return nil, fmt.Errorf("exec: left key index %d out of range for arity %d", leftIdx, len(l))
		}
		for _, r := range build[l[leftIdx].Hash()] {
			if types.Equal(l[leftIdx], r[rightIdx]) {
				out = append(out, l.Concat(r))
			}
		}
	}
	return out, nil
}
