package exec

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"joinview/internal/storage"
	"joinview/internal/types"
)

var fragSchema = types.NewSchema(
	types.Column{Name: "d", Kind: types.KindInt},
	types.Column{Name: "payload", Kind: types.KindInt},
)

func buildFrag(t *testing.T, cfg storage.Config, rows [][2]int64) *storage.Fragment {
	t.Helper()
	f, err := storage.NewFragment(fragSchema, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if _, err := f.Insert(types.Tuple{types.Int(r[0]), types.Int(r[1])}); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func deltaTuples(keys ...int64) []types.Tuple {
	out := make([]types.Tuple, len(keys))
	for i, k := range keys {
		out[i] = types.Tuple{types.Int(k), types.Int(100 + k)}
	}
	return out
}

func TestIndexNestedLoops(t *testing.T) {
	f := buildFrag(t, storage.Config{ClusterCol: "d"}, [][2]int64{
		{1, 10}, {1, 11}, {2, 20}, {3, 30},
	})
	out, err := IndexNestedLoops(deltaTuples(1, 3, 9), 0, f, "d")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("got %d joined tuples, want 3: %v", len(out), out)
	}
	// delta(1) matches rows (1,10) and (1,11); output = delta ++ row.
	if out[0].String() != "(1, 101, 1, 10)" || out[1].String() != "(1, 101, 1, 11)" {
		t.Errorf("unexpected join output %v", out)
	}
	if out[2][2].I != 3 {
		t.Errorf("delta 3 should join row with d=3, got %v", out[2])
	}
	if _, err := IndexNestedLoops(deltaTuples(1), 5, f, "d"); err == nil {
		t.Error("bad delta key index should fail")
	}
	if _, err := IndexNestedLoops(deltaTuples(1), 0, f, "nope"); err == nil {
		t.Error("bad fragment column should fail")
	}
}

func TestCeilLog(t *testing.T) {
	cases := []struct{ base, pages, want int }{
		{10, 0, 0},
		{10, 1, 1},
		{10, 9, 1},
		{10, 10, 1},
		{10, 11, 2},
		{10, 100, 2},
		{10, 101, 3},
		{1, 8, 3}, // degenerate base clamps to 2
		{2, 8, 3},
	}
	for _, c := range cases {
		if got := CeilLog(c.base, c.pages); got != c.want {
			t.Errorf("CeilLog(%d, %d) = %d, want %d", c.base, c.pages, got, c.want)
		}
	}
}

func TestSortMergeCostClustered(t *testing.T) {
	m := &storage.Meter{}
	rows := make([][2]int64, 100)
	for i := range rows {
		rows[i] = [2]int64{int64(i % 10), int64(i)}
	}
	f := buildFrag(t, storage.Config{ClusterCol: "d", Meter: m, PageRows: 10}, rows)
	m.Reset()
	out, err := SortMerge(deltaTuples(3), 0, f, "d", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 10 {
		t.Fatalf("matches = %d, want 10", len(out))
	}
	c := m.Snapshot()
	// Clustered on the join column: one scan of 10 pages, no sort.
	if c.ScanPages != 10 || c.SortPages != 0 {
		t.Errorf("clustered sort-merge charged %+v", c)
	}
}

func TestSortMergeCostNonClustered(t *testing.T) {
	m := &storage.Meter{}
	rows := make([][2]int64, 1000)
	for i := range rows {
		rows[i] = [2]int64{int64(i % 10), int64(i)}
	}
	f := buildFrag(t, storage.Config{Meter: m, PageRows: 10}, rows) // heap: 100 pages
	m.Reset()
	if _, err := SortMerge(deltaTuples(3), 0, f, "d", 10); err != nil {
		t.Fatal(err)
	}
	c := m.Snapshot()
	// 100 pages, M=10: ceil(log_10(100)) = 2 passes -> 200 page I/Os.
	if c.SortPages != 200 || c.ScanPages != 0 {
		t.Errorf("non-clustered sort-merge charged %+v", c)
	}
}

func TestSortMergeErrors(t *testing.T) {
	f := buildFrag(t, storage.Config{}, [][2]int64{{1, 1}})
	if _, err := SortMerge(deltaTuples(1), 0, f, "nope", 10); err == nil {
		t.Error("bad column should fail")
	}
	if _, err := SortMerge(deltaTuples(1), 9, f, "d", 10); err == nil {
		t.Error("bad delta index should fail")
	}
}

func TestHashJoin(t *testing.T) {
	left := deltaTuples(1, 2, 2, 5)
	right := []types.Tuple{
		{types.Int(2), types.Int(200)},
		{types.Int(5), types.Int(500)},
		{types.Int(5), types.Int(501)},
	}
	out, err := HashJoin(left, 0, right, 0)
	if err != nil {
		t.Fatal(err)
	}
	// delta 2 appears twice x 1 match + delta 5 x 2 matches = 4.
	if len(out) != 4 {
		t.Fatalf("HashJoin produced %d tuples: %v", len(out), out)
	}
	if _, err := HashJoin(left, 9, right, 0); err == nil {
		t.Error("bad left index should fail")
	}
	if _, err := HashJoin(left, 0, right, 9); err == nil {
		t.Error("bad right index should fail")
	}
}

// Property: INL, sort-merge and hash join produce the same multiset of
// results on random data.
func TestJoinAlgorithmsAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nRows := 50 + rng.Intn(100)
		rows := make([][2]int64, nRows)
		for i := range rows {
			rows[i] = [2]int64{int64(rng.Intn(12)), int64(i)}
		}
		clustered := buildFragQ(storage.Config{ClusterCol: "d"}, rows)
		heap := buildFragQ(storage.Config{}, rows)
		heap.CreateIndex("ix", "d")

		var delta []types.Tuple
		for i := 0; i < 1+rng.Intn(20); i++ {
			delta = append(delta, types.Tuple{types.Int(int64(rng.Intn(15))), types.Int(int64(1000 + i))})
		}
		inl, err := IndexNestedLoops(delta, 0, heap, "d")
		if err != nil {
			return false
		}
		sm, err := SortMerge(delta, 0, clustered, "d", 10)
		if err != nil {
			return false
		}
		hj, err := HashJoin(delta, 0, heap.All(), 0)
		if err != nil {
			return false
		}
		return sameBag(inl, sm) && sameBag(inl, hj)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func buildFragQ(cfg storage.Config, rows [][2]int64) *storage.Fragment {
	f, err := storage.NewFragment(fragSchema, cfg)
	if err != nil {
		panic(err)
	}
	for _, r := range rows {
		if _, err := f.Insert(types.Tuple{types.Int(r[0]), types.Int(r[1])}); err != nil {
			panic(err)
		}
	}
	return f
}

func sameBag(a, b []types.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(t types.Tuple) string { return t.String() }
	as := make([]string, len(a))
	bs := make([]string, len(b))
	for i := range a {
		as[i], bs[i] = key(a[i]), key(b[i])
	}
	sort.Strings(as)
	sort.Strings(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}
