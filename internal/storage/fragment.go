package storage

import (
	"fmt"

	"joinview/internal/btree"
	"joinview/internal/buffer"
	"joinview/internal/types"
)

// DefaultPageRows is how many tuples fit on one page. Page counts feed the
// scan/sort costs of the analytical model; the default keeps benchmark-scale
// relations at realistic page counts.
const DefaultPageRows = 10

// Match is one tuple located by a lookup.
type Match struct {
	Row   RowID
	Tuple types.Tuple
}

// Fragment is one node's share of a relation (base relation, auxiliary
// relation or materialized view). A fragment is laid out either as a heap
// (rows in insertion order) or clustered on one attribute (rows in a
// B+-tree ordered by that attribute, as Teradata does for the primary
// index). Fragments may carry non-clustered secondary indexes.
//
// Every mutation and lookup charges the fragment's Meter per the paper's
// unit costs. Methods are not individually synchronized: a fragment is
// owned by exactly one node, and the node serializes access (directly in
// the deterministic transport, via its goroutine in the channel transport).
type Fragment struct {
	name       string
	schema     *types.Schema
	clusterCol int // -1 for heap layout
	pageRows   int
	meter      *Meter
	pool       *buffer.Pool

	// rows is the primary layout. Heap: key = rowid. Clustered: key =
	// encoded cluster value || rowid (the rowid suffix disambiguates
	// duplicates). Value = encoded tuple.
	rows *btree.Tree
	// loc maps rowid -> primary key bytes, for point access and deletion.
	loc     map[RowID][]byte
	nextRow RowID

	secondary map[string]*secondaryIndex

	// vlog is the version log backing snapshot reads (mvcc.go): records
	// appended in nondecreasing epoch order, truncated by GC.
	vlog []verRecord
	// enc is a reusable encoding scratch buffer: tuples and keys are built
	// here, then copied once at exact size for the b-tree (which retains
	// the slices it is given).
	enc []byte
	// arena backs the owned copies handed to the b-tree: encoded keys and
	// tuples are carved out of chunked page-style slabs instead of being
	// allocated one make() each. Bytes of deleted rows stay in their slab
	// until every slice carved from it is unreachable — the same trade a
	// page-oriented heap file makes, and the simulator never shrinks
	// relations far below their high-water mark.
	arena []byte
}

// arenaChunk is the slab size owned encodings are carved from; large
// enough to amortize allocation across dozens of rows, small enough that
// a retained slab wastes little on tiny fragments.
const arenaChunk = 4096

type secondaryIndex struct {
	col  int
	tree *btree.Tree // key = encoded column value, val = rowid
}

// Config parameterizes a fragment.
type Config struct {
	// Name identifies the fragment for buffer-pool page keys (the node
	// uses the relation name). Empty is fine when no pool is attached.
	Name string
	// ClusterCol names the attribute the fragment is clustered on; empty
	// means heap layout.
	ClusterCol string
	// PageRows overrides tuples-per-page (DefaultPageRows if zero).
	PageRows int
	// Meter receives the fragment's I/O charges; a private meter is
	// allocated if nil.
	Meter *Meter
	// Pool optionally tracks page residency, splitting logical from
	// physical I/O; nil disables caching simulation.
	Pool *buffer.Pool
}

// NewFragment creates an empty fragment for the given schema.
func NewFragment(schema *types.Schema, cfg Config) (*Fragment, error) {
	f := &Fragment{
		name:       cfg.Name,
		schema:     schema,
		clusterCol: -1,
		pageRows:   cfg.PageRows,
		meter:      cfg.Meter,
		pool:       cfg.Pool,
		rows:       btree.New(),
		loc:        make(map[RowID][]byte),
		secondary:  make(map[string]*secondaryIndex),
	}
	if f.pageRows <= 0 {
		f.pageRows = DefaultPageRows
	}
	if f.meter == nil {
		f.meter = &Meter{}
	}
	if cfg.ClusterCol != "" {
		i := schema.ColIndex(cfg.ClusterCol)
		if i < 0 {
			return nil, fmt.Errorf("storage: cluster column %q not in schema %v", cfg.ClusterCol, schema.Names())
		}
		f.clusterCol = i
	}
	return f, nil
}

// Schema returns the fragment's schema.
func (f *Fragment) Schema() *types.Schema { return f.schema }

// Meter returns the fragment's I/O meter.
func (f *Fragment) Meter() *Meter { return f.meter }

// Len returns the number of stored tuples.
func (f *Fragment) Len() int { return len(f.loc) }

// Pages returns the number of pages the fragment occupies:
// ceil(Len/pageRows), minimum 1 page once non-empty.
func (f *Fragment) Pages() int {
	n := f.Len()
	if n == 0 {
		return 0
	}
	return (n + f.pageRows - 1) / f.pageRows
}

// PageRows returns the tuples-per-page configuration.
func (f *Fragment) PageRows() int { return f.pageRows }

// Clustered reports whether the fragment is clustered, and on which column.
func (f *Fragment) Clustered() (col string, ok bool) {
	if f.clusterCol < 0 {
		return "", false
	}
	return f.schema.Cols[f.clusterCol].Name, true
}

func (f *Fragment) primaryKey(row RowID, t types.Tuple) []byte {
	if f.clusterCol < 0 {
		return f.ownedRowID(row)
	}
	f.enc = types.AppendValue(f.enc[:0], t[f.clusterCol])
	f.enc = appendRowID(f.enc, row)
	return f.ownedScratch()
}

// encodeTupleOwned encodes t via the scratch buffer and returns an owned
// exact-size copy: one allocation instead of the append-growth chain of
// types.EncodeTuple.
func (f *Fragment) encodeTupleOwned(t types.Tuple) []byte {
	f.enc = types.AppendTuple(f.enc[:0], t)
	return f.ownedScratch()
}

// encodeKeyOwned encodes v via the scratch buffer at exact size.
func (f *Fragment) encodeKeyOwned(v types.Value) []byte {
	f.enc = types.AppendValue(f.enc[:0], v)
	return f.ownedScratch()
}

func (f *Fragment) ownedScratch() []byte {
	return f.ownedCopy(f.enc)
}

// ownedCopy returns a stable copy of b carved from the fragment's arena.
func (f *Fragment) ownedCopy(b []byte) []byte {
	n := len(b)
	if n > len(f.arena) {
		size := arenaChunk
		if n > size {
			size = n
		}
		f.arena = make([]byte, size)
	}
	out := f.arena[:n:n]
	f.arena = f.arena[n:]
	copy(out, b)
	return out
}

// ownedRowID encodes a row id into arena-backed storage (secondary-index
// payloads are retained by their tree just like primary entries).
func (f *Fragment) ownedRowID(r RowID) []byte {
	f.enc = appendRowID(f.enc[:0], r)
	return f.ownedScratch()
}

// Insert validates and stores a tuple, maintains all secondary indexes, and
// charges one INSERT. It returns the new row id.
func (f *Fragment) Insert(t types.Tuple) (RowID, error) {
	if err := f.schema.Validate(t); err != nil {
		return 0, err
	}
	row := f.nextRow
	f.nextRow++
	key := f.primaryKey(row, t)
	f.rows.Insert(key, f.encodeTupleOwned(t))
	f.loc[row] = key
	for _, idx := range f.secondary {
		idx.tree.Insert(f.encodeKeyOwned(t[idx.col]), f.ownedRowID(row))
	}
	f.meter.Insert(1)
	f.touchStored(row, t)
	return row, nil
}

// InsertAt stores a tuple under a specific row id, maintains all secondary
// indexes, and charges one INSERT. It is the undo path for deletes: row ids
// are otherwise never reused (Insert allocates monotonically), so restoring
// a deleted tuple at its original id keeps every global-index entry that
// references the row valid. The id must not be occupied.
func (f *Fragment) InsertAt(row RowID, t types.Tuple) error {
	if err := f.schema.Validate(t); err != nil {
		return err
	}
	if _, occupied := f.loc[row]; occupied {
		return fmt.Errorf("storage: row %d already occupied in %q", row, f.name)
	}
	if row >= f.nextRow {
		f.nextRow = row + 1
	}
	key := f.primaryKey(row, t)
	f.rows.Insert(key, f.encodeTupleOwned(t))
	f.loc[row] = key
	for _, idx := range f.secondary {
		idx.tree.Insert(f.encodeKeyOwned(t[idx.col]), f.ownedRowID(row))
	}
	f.meter.Insert(1)
	f.touchStored(row, t)
	return nil
}

// Delete removes the tuple with the given row id, maintains secondary
// indexes, charges one DELETE, and returns the removed tuple.
func (f *Fragment) Delete(row RowID) (types.Tuple, bool) {
	key, ok := f.loc[row]
	if !ok {
		return nil, false
	}
	val, ok := f.rows.GetFirst(key)
	if !ok {
		panic(fmt.Sprintf("storage: loc points at missing primary key for row %d", row))
	}
	t := mustDecode(val)
	f.rows.Delete(key, nil)
	delete(f.loc, row)
	for _, idx := range f.secondary {
		idx.tree.Delete(types.EncodeKey(t[idx.col]), encodeRowID(row))
	}
	f.meter.Delete(1)
	f.touchStored(row, t)
	return t, true
}

// Get fetches one tuple by row id, charging one FETCH.
func (f *Fragment) Get(row RowID) (types.Tuple, bool) {
	key, ok := f.loc[row]
	if !ok {
		return nil, false
	}
	val, ok := f.rows.GetFirst(key)
	if !ok {
		return nil, false
	}
	f.meter.Fetch(1)
	t := mustDecode(val)
	f.touchStored(row, t)
	return t, true
}

// CreateIndex builds a non-clustered secondary index on the named column,
// indexing existing rows. Index creation itself is not metered (DDL).
func (f *Fragment) CreateIndex(name, col string) error {
	if _, dup := f.secondary[name]; dup {
		return fmt.Errorf("storage: index %q already exists", name)
	}
	ci := f.schema.ColIndex(col)
	if ci < 0 {
		return fmt.Errorf("storage: index column %q not in schema %v", col, f.schema.Names())
	}
	idx := &secondaryIndex{col: ci, tree: btree.New()}
	f.scanRaw(func(row RowID, t types.Tuple) bool {
		idx.tree.Insert(types.EncodeKey(t[ci]), encodeRowID(row))
		return true
	})
	f.secondary[name] = idx
	return nil
}

// HasIndexOn reports whether some secondary index covers the column.
func (f *Fragment) HasIndexOn(col string) bool {
	ci := f.schema.ColIndex(col)
	for _, idx := range f.secondary {
		if idx.col == ci {
			return true
		}
	}
	return false
}

// AccessPath describes how LookupEqual located its matches; the maintenance
// strategies report it so experiments can verify which physical plan ran.
type AccessPath uint8

// Access paths, cheapest first.
const (
	AccessClustered AccessPath = iota
	AccessSecondary
	AccessScan
)

func (p AccessPath) String() string {
	switch p {
	case AccessClustered:
		return "clustered"
	case AccessSecondary:
		return "secondary-index"
	case AccessScan:
		return "scan"
	default:
		return "unknown"
	}
}

// LookupEqual returns all tuples whose column equals v, charging I/O
// according to the access path used, mirroring §3.1:
//
//   - clustered on the column: one SEARCH; matching tuples sit together on
//     the leaf, so the first page of matches is free and each additional
//     page costs one FETCH;
//   - secondary index on the column: one SEARCH plus one FETCH per match
//     (non-clustered: every row is a separate page visit);
//   - otherwise: a full scan charged per page.
func (f *Fragment) LookupEqual(col string, v types.Value) ([]Match, AccessPath, error) {
	ci := f.schema.ColIndex(col)
	if ci < 0 {
		return nil, AccessScan, fmt.Errorf("storage: lookup column %q not in schema %v", col, f.schema.Names())
	}
	if ci == f.clusterCol {
		f.meter.Search(1)
		ms := f.clusteredMatches(v)
		if pages := (len(ms) + f.pageRows - 1) / f.pageRows; pages > 1 {
			f.meter.Fetch(int64(pages - 1))
		}
		f.touchClusteredRun(v, len(ms))
		return ms, AccessClustered, nil
	}
	for _, idx := range f.secondary {
		if idx.col != ci {
			continue
		}
		f.meter.Search(1)
		f.enc = types.AppendValue(f.enc[:0], v)
		var ms []Match
		for _, rv := range idx.tree.Get(f.enc) {
			row := decodeRowID(rv)
			key := f.loc[row]
			val, ok := f.rows.GetFirst(key)
			if !ok {
				continue
			}
			ms = append(ms, Match{Row: row, Tuple: mustDecode(val)})
		}
		f.meter.Fetch(int64(len(ms)))
		for _, m := range ms {
			f.touchStored(m.Row, m.Tuple)
		}
		return ms, AccessSecondary, nil
	}
	// Fall back to a full scan.
	f.meter.ScanPages(int64(f.Pages()))
	f.TouchAllPages(1)
	var ms []Match
	f.scanRaw(func(row RowID, t types.Tuple) bool {
		if types.Equal(t[ci], v) {
			ms = append(ms, Match{Row: row, Tuple: t})
		}
		return true
	})
	return ms, AccessScan, nil
}

// clusteredMatches walks the primary tree for all rows with cluster value v.
func (f *Fragment) clusteredMatches(v types.Value) []Match {
	// The prefix is only compared against during the walk, never retained,
	// so the scratch buffer avoids a per-probe key allocation.
	f.enc = types.AppendValue(f.enc[:0], v)
	prefix := f.enc
	var ms []Match
	f.rows.Ascend(prefix, func(k, val []byte) bool {
		if len(k) < len(prefix)+8 || !bytesEqual(k[:len(prefix)], prefix) {
			return false
		}
		ms = append(ms, Match{
			Row:   decodeRowID(k[len(k)-8:]),
			Tuple: mustDecode(val),
		})
		return true
	})
	return ms
}

// Scan visits every tuple in layout order (rowid order for heaps, cluster
// order for clustered fragments) and charges one I/O per page.
func (f *Fragment) Scan(fn func(RowID, types.Tuple) bool) {
	f.meter.ScanPages(int64(f.Pages()))
	f.TouchAllPages(1)
	f.scanRaw(fn)
}

// scanRaw iterates without charging I/O (index builds, tests, recompute
// references).
func (f *Fragment) scanRaw(fn func(RowID, types.Tuple) bool) {
	f.rows.Scan(func(k, v []byte) bool {
		return fn(decodeRowID(k[len(k)-8:]), mustDecode(v))
	})
}

// All returns every tuple in layout order without charging I/O. It exists
// for tests and reference recomputation; metered code paths use Scan.
func (f *Fragment) All() []types.Tuple {
	out := make([]types.Tuple, 0, f.Len())
	f.scanRaw(func(_ RowID, t types.Tuple) bool {
		out = append(out, t)
		return true
	})
	return out
}

// FindRows returns the row ids of tuples equal to t (used by deletes that
// identify victims by value). Uses the best access path on the given column
// hint, verifying full-tuple equality; not metered beyond the lookup.
func (f *Fragment) FindRows(hintCol string, t types.Tuple) ([]RowID, error) {
	ci := f.schema.ColIndex(hintCol)
	if ci < 0 {
		return nil, fmt.Errorf("storage: hint column %q not in schema", hintCol)
	}
	ms, _, err := f.LookupEqual(hintCol, t[ci])
	if err != nil {
		return nil, err
	}
	var rows []RowID
	for _, m := range ms {
		if m.Tuple.Equal(t) {
			rows = append(rows, m.Row)
		}
	}
	return rows, nil
}

func mustDecode(b []byte) types.Tuple {
	t, _, err := types.DecodeTuple(b)
	if err != nil {
		panic("storage: corrupt stored tuple: " + err.Error())
	}
	return t
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
