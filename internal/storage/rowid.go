package storage

import "encoding/binary"

// RowID identifies a tuple within one fragment (one node's share of a
// relation). RowIDs are assigned monotonically and never reused.
type RowID uint64

// GlobalRowID identifies a tuple cluster-wide, as in the paper's global
// index entries: "(node id, local row id at the node)".
type GlobalRowID struct {
	Node int32
	Row  RowID
}

// EncodeGlobalRowID renders g as 12 bytes (big-endian node, then row).
func EncodeGlobalRowID(g GlobalRowID) []byte {
	var b [12]byte
	binary.BigEndian.PutUint32(b[0:4], uint32(g.Node))
	binary.BigEndian.PutUint64(b[4:12], uint64(g.Row))
	return b[:]
}

// DecodeGlobalRowID parses the 12-byte encoding produced by
// EncodeGlobalRowID. It returns false if b is too short.
func DecodeGlobalRowID(b []byte) (GlobalRowID, bool) {
	if len(b) < 12 {
		return GlobalRowID{}, false
	}
	return GlobalRowID{
		Node: int32(binary.BigEndian.Uint32(b[0:4])),
		Row:  RowID(binary.BigEndian.Uint64(b[4:12])),
	}, true
}

func encodeRowID(r RowID) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(r))
	return b[:]
}

func decodeRowID(b []byte) RowID {
	return RowID(binary.BigEndian.Uint64(b))
}

func appendRowID(dst []byte, r RowID) []byte {
	return binary.BigEndian.AppendUint64(dst, uint64(r))
}
