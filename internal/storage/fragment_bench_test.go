package storage

// Benchmarks pinning the fragment's allocation discipline: stored key and
// row-id encodings are carved from the arena (ownedCopy), scratch
// encodings are reused across calls, and unique-key fetches go through
// btree.GetFirst — so the steady-state insert and lookup paths run
// allocation-free apart from the amortized arena slabs and the b-tree's
// own node growth. Watch allocs/op; the arena shows up only as B/op.

import (
	"testing"

	"joinview/internal/types"
)

func benchSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Name: "id", Kind: types.KindInt},
		types.Column{Name: "c", Kind: types.KindInt},
		types.Column{Name: "p", Kind: types.KindInt},
	)
}

// BenchmarkFragmentInsertClustered inserts into a clustered fragment:
// ~0 allocs/op at steady state (arena slabs and page splits amortize).
func BenchmarkFragmentInsertClustered(b *testing.B) {
	f, err := NewFragment(benchSchema(), Config{ClusterCol: "id"})
	if err != nil {
		b.Fatal(err)
	}
	t := types.Tuple{types.Int(0), types.Int(1), types.Int(2)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t[0] = types.Int(int64(i))
		if _, err := f.Insert(t); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFragmentInsertIndexed inserts into a heap fragment carrying a
// secondary index — the write shape of every base relation with an index
// on its join attribute.
func BenchmarkFragmentInsertIndexed(b *testing.B) {
	f, err := NewFragment(benchSchema(), Config{})
	if err != nil {
		b.Fatal(err)
	}
	if err := f.CreateIndex("ix_c", "c"); err != nil {
		b.Fatal(err)
	}
	t := types.Tuple{types.Int(0), types.Int(1), types.Int(2)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t[0] = types.Int(int64(i))
		t[1] = types.Int(int64(i % 64))
		if _, err := f.Insert(t); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFragmentLookupEqual probes a secondary index and fetches the
// matching rows — the per-delta read of the maintenance pipeline's probe
// step. The scratch-encoded probe key and GetFirst keep the fixed cost
// flat; the returned matches are the only per-op growth.
func BenchmarkFragmentLookupEqual(b *testing.B) {
	f, err := NewFragment(benchSchema(), Config{})
	if err != nil {
		b.Fatal(err)
	}
	if err := f.CreateIndex("ix_c", "c"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1024; i++ {
		if _, err := f.Insert(types.Tuple{types.Int(int64(i)), types.Int(int64(i % 64)), types.Int(2)}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms, _, err := f.LookupEqual("c", types.Int(int64(i%64)))
		if err != nil {
			b.Fatal(err)
		}
		if len(ms) != 16 {
			b.Fatalf("got %d matches, want 16", len(ms))
		}
	}
}
