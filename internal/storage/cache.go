package storage

import (
	"joinview/internal/buffer"
	"joinview/internal/types"
)

// Buffer-pool integration. Fragments map accesses onto stable page
// surrogates: heap pages bucket rows by row id (monotonic ids append to
// fresh pages, like a heap file), clustered pages bucket a key's duplicate
// run by ordinal (co-located duplicates share pages, which is the whole
// point of clustering). A fragment with a nil pool skips tracking.

// rowPage is the heap-page surrogate of a row.
func (f *Fragment) rowPage(row RowID) buffer.PageKey {
	return buffer.PageKey{Frag: f.name, NS: buffer.NSRow, Page: uint64(row) / uint64(f.pageRows)}
}

// keyRunPage is the i-th page of the clustered run for key value v. Keys
// hash-pack into the fragment's current page count, approximating several
// small runs sharing a physical page; the mapping drifts as the fragment
// grows, which only costs spurious misses (never spurious hits within a
// stable fragment).
func (f *Fragment) keyRunPage(v types.Value, ordinal int) buffer.PageKey {
	pages := f.Pages()
	if pages < 1 {
		pages = 1
	}
	return buffer.PageKey{
		Frag: f.name,
		NS:   buffer.NSKey,
		Page: (v.Hash() + uint64(ordinal/f.pageRows)) % uint64(pages),
	}
}

// touchStored records the page access for one stored row (insert, delete,
// point get).
func (f *Fragment) touchStored(row RowID, t types.Tuple) {
	if f.pool == nil {
		return
	}
	if f.clusterCol >= 0 {
		f.pool.Touch(f.keyRunPage(t[f.clusterCol], 0))
		return
	}
	f.pool.Touch(f.rowPage(row))
}

// touchClusteredRun records the page accesses of reading n co-located
// matches of key value v.
func (f *Fragment) touchClusteredRun(v types.Value, n int) {
	if f.pool == nil || n == 0 {
		return
	}
	pages := (n + f.pageRows - 1) / f.pageRows
	for i := 0; i < pages; i++ {
		f.pool.Touch(f.keyRunPage(v, i*f.pageRows))
	}
}

// TouchAllPages records `times` full passes over the fragment (sequential
// scans and external-sort passes). Page surrogates match the point-access
// scheme so scans warm the cache for subsequent lookups.
func (f *Fragment) TouchAllPages(times int) {
	if f.pool == nil || times <= 0 {
		return
	}
	for pass := 0; pass < times; pass++ {
		if f.clusterCol >= 0 {
			var curKey types.Value
			ordinal := 0
			first := true
			f.scanRaw(func(_ RowID, t types.Tuple) bool {
				v := t[f.clusterCol]
				if first || !types.Equal(v, curKey) {
					curKey, ordinal, first = v, 0, false
				}
				if ordinal%f.pageRows == 0 {
					f.pool.Touch(f.keyRunPage(v, ordinal))
				}
				ordinal++
				return true
			})
			continue
		}
		seen := map[uint64]bool{}
		f.scanRaw(func(row RowID, _ types.Tuple) bool {
			pg := uint64(row) / uint64(f.pageRows)
			if !seen[pg] {
				seen[pg] = true
				f.pool.Touch(f.rowPage(row))
			}
			return true
		})
	}
}

// Pool returns the fragment's buffer pool (nil when caching is disabled).
func (f *Fragment) Pool() *buffer.Pool { return f.pool }
