// Package storage implements the per-node storage engine of the parallel
// RDBMS: table fragments laid out as heaps or clustered B+-trees, secondary
// indexes, and a logical I/O meter.
//
// The meter follows the cost model of Luo et al. §3.1: an index SEARCH and
// a tuple FETCH each cost one I/O, an INSERT into any table costs two I/Os,
// and scans/sorts are charged per page. All view-maintenance experiments
// read their "time" from these counters (total workload = sum over nodes,
// response time = max over nodes), exactly as the paper does.
package storage

import "sync/atomic"

// Unit costs in I/Os, as fixed in §3.1 of the paper ("SEARCH takes one I/O,
// FETCH takes one I/O, and INSERT takes two I/Os").
const (
	CostSearch = 1
	CostFetch  = 1
	CostInsert = 2
	// CostDelete mirrors CostInsert: the paper treats deletions and updates
	// as "similar to insertion", and removing a tuple touches the same
	// page + index path as adding one.
	CostDelete = 2
)

// Meter accumulates logical I/O counts for one data-server node. All
// methods are safe for concurrent use (nodes run as goroutines under the
// channel transport).
type Meter struct {
	searches  atomic.Int64
	fetches   atomic.Int64
	inserts   atomic.Int64
	deletes   atomic.Int64
	scanPages atomic.Int64
	sortPages atomic.Int64
	logPages  atomic.Int64
}

// Search records n index searches.
func (m *Meter) Search(n int64) { m.searches.Add(n) }

// Fetch records n tuple/page fetches.
func (m *Meter) Fetch(n int64) { m.fetches.Add(n) }

// Insert records n tuple insertions.
func (m *Meter) Insert(n int64) { m.inserts.Add(n) }

// Delete records n tuple deletions.
func (m *Meter) Delete(n int64) { m.deletes.Add(n) }

// ScanPages records n pages read by sequential scans.
func (m *Meter) ScanPages(n int64) { m.scanPages.Add(n) }

// SortPages records n page I/Os performed by external sorting.
func (m *Meter) SortPages(n int64) { m.sortPages.Add(n) }

// LogPages records n page I/Os performed by the write-ahead log: record
// appends and forces, checkpoint image writes, and recovery-time reads.
func (m *Meter) LogPages(n int64) { m.logPages.Add(n) }

// Counts is an immutable snapshot of a meter.
type Counts struct {
	Searches  int64
	Fetches   int64
	Inserts   int64
	Deletes   int64
	ScanPages int64
	SortPages int64
	LogPages  int64
}

// Snapshot returns the current counter values.
func (m *Meter) Snapshot() Counts {
	return Counts{
		Searches:  m.searches.Load(),
		Fetches:   m.fetches.Load(),
		Inserts:   m.inserts.Load(),
		Deletes:   m.deletes.Load(),
		ScanPages: m.scanPages.Load(),
		SortPages: m.sortPages.Load(),
		LogPages:  m.logPages.Load(),
	}
}

// Reset zeroes all counters.
func (m *Meter) Reset() {
	m.searches.Store(0)
	m.fetches.Store(0)
	m.inserts.Store(0)
	m.deletes.Store(0)
	m.scanPages.Store(0)
	m.sortPages.Store(0)
	m.logPages.Store(0)
}

// Sub returns c - o, component-wise.
func (c Counts) Sub(o Counts) Counts {
	return Counts{
		Searches:  c.Searches - o.Searches,
		Fetches:   c.Fetches - o.Fetches,
		Inserts:   c.Inserts - o.Inserts,
		Deletes:   c.Deletes - o.Deletes,
		ScanPages: c.ScanPages - o.ScanPages,
		SortPages: c.SortPages - o.SortPages,
		LogPages:  c.LogPages - o.LogPages,
	}
}

// Add returns c + o, component-wise.
func (c Counts) Add(o Counts) Counts {
	return Counts{
		Searches:  c.Searches + o.Searches,
		Fetches:   c.Fetches + o.Fetches,
		Inserts:   c.Inserts + o.Inserts,
		Deletes:   c.Deletes + o.Deletes,
		ScanPages: c.ScanPages + o.ScanPages,
		SortPages: c.SortPages + o.SortPages,
		LogPages:  c.LogPages + o.LogPages,
	}
}

// IOs converts the counts to total I/Os under the paper's unit costs.
// Scan, sort and log pages count one I/O per page.
func (c Counts) IOs() int64 {
	return c.Searches*CostSearch +
		c.Fetches*CostFetch +
		c.Inserts*CostInsert +
		c.Deletes*CostDelete +
		c.ScanPages +
		c.SortPages +
		c.LogPages
}
