package storage

import "joinview/internal/types"

// InsertUnmetered stores a tuple without charging I/O. DDL backfill (the
// initial materialization of views, auxiliary relations and global indexes)
// uses it so metrics windows opened after DDL start from zero; the paper's
// experiments likewise measure only the incremental-maintenance step.
func (f *Fragment) InsertUnmetered(t types.Tuple) (RowID, error) {
	row, err := f.Insert(t)
	if err != nil {
		return 0, err
	}
	f.meter.Insert(-1)
	return row, nil
}

// GetUnmetered fetches one tuple by row id without charging I/O. Callers
// that batch-fetch (the global-index maintenance path) charge the meter
// themselves with page-accurate costs; see node.FetchJoin.
// ScanUnmetered visits every tuple with its row id in layout order without
// charging I/O (DDL backfill, global-index builds, verification).
func (f *Fragment) ScanUnmetered(fn func(RowID, types.Tuple) bool) {
	f.scanRaw(fn)
}

// DeleteUnmetered removes a tuple by row id without charging I/O
// (replication failover and repair, which account their cost separately).
func (f *Fragment) DeleteUnmetered(row RowID) (types.Tuple, bool) {
	t, ok := f.Delete(row)
	if ok {
		f.meter.Delete(-1)
	}
	return t, ok
}

// GetUnmetered fetches one tuple by row id without charging I/O. Callers
// that batch-fetch (the global-index maintenance path) charge the meter
// themselves with page-accurate costs; see node.FetchJoin.
func (f *Fragment) GetUnmetered(row RowID) (types.Tuple, bool) {
	key, ok := f.loc[row]
	if !ok {
		return nil, false
	}
	val, ok := f.rows.GetFirst(key)
	if !ok {
		return nil, false
	}
	return mustDecode(val), true
}
