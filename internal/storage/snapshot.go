package storage

import (
	"joinview/internal/buffer"
	"joinview/internal/types"
)

// IndexDef names one secondary index of a fragment, for snapshotting.
type IndexDef struct {
	Name string
	Col  string
}

// FragmentSnapshot is a consistent, self-contained image of a fragment:
// everything needed to reconstruct it exactly, including row-id assignment
// (global-index entries reference (node, row) pairs, so a restore that
// re-allocated ids would dangle them). Snapshots back the per-node fuzzy
// checkpoints of the durability layer.
type FragmentSnapshot struct {
	Name       string
	Schema     *types.Schema
	ClusterCol string
	PageRows   int
	NextRow    RowID
	Rows       []RowID
	Tuples     []types.Tuple
	Indexes    []IndexDef
}

// Snapshot captures the fragment's current contents. Tuples are cloned, so
// later mutations of the live fragment do not leak into the image. Taking a
// snapshot is not metered here; the checkpoint machinery charges the image
// write as log page I/O.
func (f *Fragment) Snapshot() FragmentSnapshot {
	s := FragmentSnapshot{
		Name:     f.name,
		Schema:   f.schema,
		PageRows: f.pageRows,
		NextRow:  f.nextRow,
		Rows:     make([]RowID, 0, f.Len()),
		Tuples:   make([]types.Tuple, 0, f.Len()),
	}
	if col, ok := f.Clustered(); ok {
		s.ClusterCol = col
	}
	f.scanRaw(func(row RowID, t types.Tuple) bool {
		s.Rows = append(s.Rows, row)
		s.Tuples = append(s.Tuples, t.Clone())
		return true
	})
	for name, idx := range f.secondary {
		s.Indexes = append(s.Indexes, IndexDef{Name: name, Col: f.schema.Cols[idx.col].Name})
	}
	return s
}

// RestoreFragment reconstructs a fragment from a snapshot, wiring it to the
// given meter and pool (recovery installs the restored fragment in a freshly
// wiped node). The rebuild itself is unmetered: the recovery path accounts
// the checkpoint pages it read instead.
func RestoreFragment(s FragmentSnapshot, meter *Meter, pool *buffer.Pool) (*Fragment, error) {
	f, err := NewFragment(s.Schema, Config{
		Name:       s.Name,
		ClusterCol: s.ClusterCol,
		PageRows:   s.PageRows,
		Meter:      meter,
		Pool:       pool,
	})
	if err != nil {
		return nil, err
	}
	for _, ix := range s.Indexes {
		if err := f.CreateIndex(ix.Name, ix.Col); err != nil {
			return nil, err
		}
	}
	for i, row := range s.Rows {
		if err := f.InsertAt(row, s.Tuples[i]); err != nil {
			return nil, err
		}
		f.meter.Insert(-1)
	}
	if f.nextRow < s.NextRow {
		f.nextRow = s.NextRow
	}
	return f, nil
}
