package storage

import (
	"sort"

	"joinview/internal/types"
)

// Multi-version read support. Every mutating request that runs inside a
// versioned statement carries a commit epoch; the fragment keeps a short
// version log of (epoch, mutation) records so a reader can reconstruct the
// state as of any epoch that is still pinned. Epoch 0 means "not versioned":
// legacy paths (serial mode, recovery, DDL backfill, migration, failover
// promotion) never record, which keeps their behaviour and allocation
// profile byte-identical to the pre-MVCC engine.
//
// Stamps arriving at one fragment are nondecreasing: every mutation of a
// fragment runs under the owning statement's exclusive lockmgr claim, and
// the coordinator's epoch tracker hands out commit[frag]+1 under that claim.
// Records with epoch > E therefore form a contiguous suffix of the log, and
// a snapshot at E is the live state with that suffix inverted.

// verRecord is one logical mutation in the fragment's version log.
type verRecord struct {
	epoch uint64
	del   bool // delete (tuple = removed image) vs insert
	row   RowID
	tuple types.Tuple // nil for inserts: reconstruction only needs the id
}

// recordVersion appends one version-log record; epoch 0 records nothing.
func (f *Fragment) recordVersion(epoch uint64, del bool, row RowID, t types.Tuple) {
	if epoch == 0 {
		return
	}
	if del {
		f.vlog = append(f.vlog, verRecord{epoch: epoch, del: true, row: row, tuple: t})
	} else {
		f.vlog = append(f.vlog, verRecord{epoch: epoch, row: row})
	}
}

// InsertEpoch is Insert plus a version-log record stamped with epoch.
func (f *Fragment) InsertEpoch(t types.Tuple, epoch uint64) (RowID, error) {
	row, err := f.Insert(t)
	if err == nil {
		f.recordVersion(epoch, false, row, nil)
	}
	return row, err
}

// InsertAtEpoch is InsertAt plus a version-log record stamped with epoch.
func (f *Fragment) InsertAtEpoch(row RowID, t types.Tuple, epoch uint64) error {
	if err := f.InsertAt(row, t); err != nil {
		return err
	}
	f.recordVersion(epoch, false, row, nil)
	return nil
}

// DeleteEpoch is Delete plus a version-log record stamped with epoch.
func (f *Fragment) DeleteEpoch(row RowID, epoch uint64) (types.Tuple, bool) {
	t, ok := f.Delete(row)
	if ok {
		f.recordVersion(epoch, true, row, t)
	}
	return t, ok
}

// VersionLen reports the version-log length (tests, GC diagnostics).
func (f *Fragment) VersionLen() int { return len(f.vlog) }

// TruncateVersions drops every version record with epoch <= floor. The
// coordinator piggybacks the GC floor — min(pinned reader epochs, committed
// epoch) — on mutating requests, so the log stays bounded by the span of
// in-flight snapshots.
func (f *Fragment) TruncateVersions(floor uint64) {
	if floor == 0 || len(f.vlog) == 0 || f.vlog[0].epoch > floor {
		return
	}
	i := 0
	for i < len(f.vlog) && f.vlog[i].epoch <= floor {
		i++
	}
	if i == len(f.vlog) {
		f.vlog = f.vlog[:0]
		return
	}
	f.vlog = append(f.vlog[:0:0], f.vlog[i:]...)
}

// snapshotOverrides reconstructs, for a snapshot at epoch, the set of rows
// whose visibility differs from the live state. Returns nil when the live
// state already is the snapshot (no record newer than epoch). In the
// returned map a nil tuple means "inserted after epoch: hide it"; a non-nil
// tuple means "existed at epoch with this image" (deleted — or deleted and
// restored — since). The suffix is walked newest-first so the oldest record
// for a row decides, i.e. the row's state at the snapshot boundary.
func (f *Fragment) snapshotOverrides(epoch uint64) map[RowID]types.Tuple {
	if epoch == 0 { // 0 = unversioned read: the live state
		return nil
	}
	n := len(f.vlog)
	if n == 0 || f.vlog[n-1].epoch <= epoch {
		return nil
	}
	start := n - 1
	for start > 0 && f.vlog[start-1].epoch > epoch {
		start--
	}
	ov := make(map[RowID]types.Tuple, n-start)
	for i := n - 1; i >= start; i-- {
		r := &f.vlog[i]
		if r.del {
			ov[r.row] = r.tuple
		} else {
			ov[r.row] = nil
		}
	}
	return ov
}

// SnapshotScan visits every tuple visible at the given epoch, charging the
// same per-page scan I/O as Scan. When no mutation newer than the epoch
// exists it is exactly Scan — identical iteration, identical metering — so
// runs without concurrent writers (goldens, transport-equivalence grids)
// are byte-identical with MVCC on. Otherwise live rows are visited in
// layout order with post-epoch inserts skipped, followed by the images of
// rows deleted since the epoch, in row-id order.
func (f *Fragment) SnapshotScan(epoch uint64, fn func(RowID, types.Tuple) bool) {
	ov := f.snapshotOverrides(epoch)
	if ov == nil {
		f.Scan(fn)
		return
	}
	f.meter.ScanPages(int64(f.Pages()))
	f.TouchAllPages(1)
	f.snapshotRaw(ov, fn)
}

// SnapshotAll returns every tuple visible at the epoch without charging I/O
// (the AllRows verification path).
func (f *Fragment) SnapshotAll(epoch uint64) []types.Tuple {
	ov := f.snapshotOverrides(epoch)
	if ov == nil {
		return f.All()
	}
	out := make([]types.Tuple, 0, f.Len())
	f.snapshotRaw(ov, func(_ RowID, t types.Tuple) bool {
		out = append(out, t)
		return true
	})
	return out
}

func (f *Fragment) snapshotRaw(ov map[RowID]types.Tuple, fn func(RowID, types.Tuple) bool) {
	stopped := false
	f.scanRaw(func(row RowID, t types.Tuple) bool {
		o, overridden := ov[row]
		if overridden {
			delete(ov, row)
			if o == nil { // inserted after the snapshot epoch
				return true
			}
			t = o // deleted then restored: show the pre-delete image
		}
		if !fn(row, t) {
			stopped = true
			return false
		}
		return true
	})
	if stopped {
		return
	}
	// Rows deleted since the epoch are no longer in the live tree; emit
	// their saved images in deterministic row-id order.
	var dead []RowID
	for row, t := range ov {
		if t != nil {
			dead = append(dead, row)
		}
	}
	sort.Slice(dead, func(i, j int) bool { return dead[i] < dead[j] })
	for _, row := range dead {
		if !fn(row, ov[row]) {
			return
		}
	}
}
