package storage

import (
	"math/rand"
	"testing"
	"testing/quick"

	"joinview/internal/types"
)

func ordersSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Name: "orderkey", Kind: types.KindInt},
		types.Column{Name: "custkey", Kind: types.KindInt},
		types.Column{Name: "totalprice", Kind: types.KindFloat},
	)
}

func orderTuple(ok, ck int64, p float64) types.Tuple {
	return types.Tuple{types.Int(ok), types.Int(ck), types.Float(p)}
}

func TestNewFragmentValidation(t *testing.T) {
	if _, err := NewFragment(ordersSchema(), Config{ClusterCol: "nope"}); err == nil {
		t.Error("unknown cluster column should fail")
	}
	f, err := NewFragment(ordersSchema(), Config{ClusterCol: "custkey"})
	if err != nil {
		t.Fatal(err)
	}
	if col, ok := f.Clustered(); !ok || col != "custkey" {
		t.Errorf("Clustered() = %q, %v", col, ok)
	}
	h, _ := NewFragment(ordersSchema(), Config{})
	if _, ok := h.Clustered(); ok {
		t.Error("heap fragment should not report clustered")
	}
}

func TestInsertGetDelete(t *testing.T) {
	f, _ := NewFragment(ordersSchema(), Config{})
	r1, err := f.Insert(orderTuple(1, 10, 99.5))
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := f.Insert(orderTuple(2, 20, 50))
	if f.Len() != 2 {
		t.Fatalf("Len = %d", f.Len())
	}
	got, ok := f.Get(r1)
	if !ok || !got.Equal(orderTuple(1, 10, 99.5)) {
		t.Fatalf("Get(r1) = %v, %v", got, ok)
	}
	del, ok := f.Delete(r1)
	if !ok || !del.Equal(orderTuple(1, 10, 99.5)) {
		t.Fatalf("Delete = %v, %v", del, ok)
	}
	if _, ok := f.Get(r1); ok {
		t.Error("deleted row still readable")
	}
	if _, ok := f.Delete(r1); ok {
		t.Error("double delete returned true")
	}
	if _, ok := f.Get(r2); !ok {
		t.Error("surviving row unreadable")
	}
	if _, err := f.Insert(types.Tuple{types.Int(1)}); err == nil {
		t.Error("arity-violating insert should fail")
	}
}

func TestMeterCharges(t *testing.T) {
	m := &Meter{}
	f, _ := NewFragment(ordersSchema(), Config{Meter: m, PageRows: 4})
	for i := int64(0); i < 10; i++ {
		if _, err := f.Insert(orderTuple(i, i%3, 1)); err != nil {
			t.Fatal(err)
		}
	}
	c := m.Snapshot()
	if c.Inserts != 10 {
		t.Errorf("inserts = %d, want 10", c.Inserts)
	}
	if got := c.IOs(); got != 10*CostInsert {
		t.Errorf("IOs = %d, want %d", got, 10*CostInsert)
	}
	m.Reset()
	f.Scan(func(RowID, types.Tuple) bool { return true })
	// 10 rows at 4 rows/page = 3 pages.
	if c := m.Snapshot(); c.ScanPages != 3 {
		t.Errorf("scan pages = %d, want 3", c.ScanPages)
	}
}

func TestLookupEqualClustered(t *testing.T) {
	m := &Meter{}
	f, _ := NewFragment(ordersSchema(), Config{ClusterCol: "custkey", Meter: m, PageRows: 10})
	for i := int64(0); i < 30; i++ {
		f.Insert(orderTuple(i, i%3, float64(i)))
	}
	m.Reset()
	ms, path, err := f.LookupEqual("custkey", types.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	if path != AccessClustered {
		t.Fatalf("path = %v, want clustered", path)
	}
	if len(ms) != 10 {
		t.Fatalf("matches = %d, want 10", len(ms))
	}
	for _, match := range ms {
		if match.Tuple[1].I != 1 {
			t.Fatalf("wrong match %v", match.Tuple)
		}
	}
	c := m.Snapshot()
	// 10 matches fit exactly one page: 1 SEARCH, 0 FETCH.
	if c.Searches != 1 || c.Fetches != 0 {
		t.Errorf("clustered lookup charged %+v, want 1 search 0 fetch", c)
	}
}

func TestLookupEqualClusteredMultiPage(t *testing.T) {
	m := &Meter{}
	f, _ := NewFragment(ordersSchema(), Config{ClusterCol: "custkey", Meter: m, PageRows: 10})
	for i := int64(0); i < 25; i++ {
		f.Insert(orderTuple(i, 7, float64(i)))
	}
	m.Reset()
	ms, _, _ := f.LookupEqual("custkey", types.Int(7))
	if len(ms) != 25 {
		t.Fatalf("matches = %d", len(ms))
	}
	c := m.Snapshot()
	// 25 matches = 3 pages: first free, 2 extra FETCHes.
	if c.Searches != 1 || c.Fetches != 2 {
		t.Errorf("multi-page clustered lookup charged %+v", c)
	}
}

func TestLookupEqualSecondary(t *testing.T) {
	m := &Meter{}
	f, _ := NewFragment(ordersSchema(), Config{Meter: m})
	for i := int64(0); i < 20; i++ {
		f.Insert(orderTuple(i, i%4, float64(i)))
	}
	if err := f.CreateIndex("ix_cust", "custkey"); err != nil {
		t.Fatal(err)
	}
	if err := f.CreateIndex("ix_cust", "custkey"); err == nil {
		t.Error("duplicate index name should fail")
	}
	if err := f.CreateIndex("ix_bad", "nope"); err == nil {
		t.Error("index on unknown column should fail")
	}
	if !f.HasIndexOn("custkey") || f.HasIndexOn("totalprice") {
		t.Error("HasIndexOn wrong")
	}
	m.Reset()
	ms, path, err := f.LookupEqual("custkey", types.Int(2))
	if err != nil {
		t.Fatal(err)
	}
	if path != AccessSecondary {
		t.Fatalf("path = %v, want secondary", path)
	}
	if len(ms) != 5 {
		t.Fatalf("matches = %d, want 5", len(ms))
	}
	c := m.Snapshot()
	// Non-clustered: 1 SEARCH + 1 FETCH per match.
	if c.Searches != 1 || c.Fetches != 5 {
		t.Errorf("secondary lookup charged %+v", c)
	}
}

func TestLookupEqualScanFallback(t *testing.T) {
	m := &Meter{}
	f, _ := NewFragment(ordersSchema(), Config{Meter: m, PageRows: 5})
	for i := int64(0); i < 20; i++ {
		f.Insert(orderTuple(i, i%4, float64(i)))
	}
	m.Reset()
	ms, path, err := f.LookupEqual("totalprice", types.Float(3))
	if err != nil {
		t.Fatal(err)
	}
	if path != AccessScan {
		t.Fatalf("path = %v, want scan", path)
	}
	if len(ms) != 1 {
		t.Fatalf("matches = %d", len(ms))
	}
	if c := m.Snapshot(); c.ScanPages != 4 {
		t.Errorf("scan charged %d pages, want 4", c.ScanPages)
	}
	if _, _, err := f.LookupEqual("nope", types.Int(1)); err == nil {
		t.Error("lookup on unknown column should fail")
	}
}

func TestSecondaryIndexMaintainedByMutations(t *testing.T) {
	f, _ := NewFragment(ordersSchema(), Config{})
	f.CreateIndex("ix", "custkey")
	r, _ := f.Insert(orderTuple(1, 5, 10))
	f.Insert(orderTuple(2, 5, 20))
	f.Delete(r)
	ms, _, _ := f.LookupEqual("custkey", types.Int(5))
	if len(ms) != 1 || ms[0].Tuple[0].I != 2 {
		t.Fatalf("index not maintained on delete: %v", ms)
	}
	f.Insert(orderTuple(3, 5, 30))
	ms, _, _ = f.LookupEqual("custkey", types.Int(5))
	if len(ms) != 2 {
		t.Fatalf("index not maintained on insert: %v", ms)
	}
}

func TestClusteredScanOrder(t *testing.T) {
	f, _ := NewFragment(ordersSchema(), Config{ClusterCol: "custkey"})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		f.Insert(orderTuple(int64(i), int64(rng.Intn(40)), 0))
	}
	var prev int64 = -1
	for _, tup := range f.All() {
		if tup[1].I < prev {
			t.Fatal("clustered scan not in cluster-key order")
		}
		prev = tup[1].I
	}
}

func TestFindRows(t *testing.T) {
	f, _ := NewFragment(ordersSchema(), Config{ClusterCol: "custkey"})
	f.Insert(orderTuple(1, 5, 10))
	f.Insert(orderTuple(1, 5, 10)) // exact duplicate
	f.Insert(orderTuple(2, 5, 10))
	rows, err := f.FindRows("custkey", orderTuple(1, 5, 10))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("FindRows = %v, want 2 rows", rows)
	}
	if _, err := f.FindRows("nope", orderTuple(1, 5, 10)); err == nil {
		t.Error("FindRows with bad hint column should fail")
	}
}

// Property: contents after any insert/delete interleaving match a reference
// bag, on both layouts, and lookups agree with linear filtering.
func TestFragmentMatchesReference(t *testing.T) {
	run := func(clustered bool) func(seed int64) bool {
		return func(seed int64) bool {
			cfg := Config{}
			if clustered {
				cfg.ClusterCol = "custkey"
			}
			f, _ := NewFragment(ordersSchema(), cfg)
			f.CreateIndex("ix_ok", "orderkey")
			rng := rand.New(rand.NewSource(seed))
			live := map[RowID]types.Tuple{}
			var ids []RowID
			for op := 0; op < 400; op++ {
				if rng.Intn(3) > 0 || len(ids) == 0 {
					tup := orderTuple(int64(rng.Intn(20)), int64(rng.Intn(10)), float64(rng.Intn(5)))
					r, err := f.Insert(tup)
					if err != nil {
						return false
					}
					live[r] = tup
					ids = append(ids, r)
				} else {
					i := rng.Intn(len(ids))
					r := ids[i]
					got, ok := f.Delete(r)
					if !ok || !got.Equal(live[r]) {
						return false
					}
					delete(live, r)
					ids = append(ids[:i], ids[i+1:]...)
				}
			}
			if f.Len() != len(live) {
				return false
			}
			// Every lookup column agrees with a linear filter of live rows.
			for _, probe := range []struct {
				col string
				v   types.Value
			}{
				{"custkey", types.Int(int64(rng.Intn(10)))},
				{"orderkey", types.Int(int64(rng.Intn(20)))},
				{"totalprice", types.Float(float64(rng.Intn(5)))},
			} {
				ms, _, err := f.LookupEqual(probe.col, probe.v)
				if err != nil {
					return false
				}
				want := 0
				ci := f.Schema().MustColIndex(probe.col)
				for _, tup := range live {
					if types.Equal(tup[ci], probe.v) {
						want++
					}
				}
				if len(ms) != want {
					t.Logf("lookup %s=%v: got %d, want %d (clustered=%v)", probe.col, probe.v, len(ms), want, clustered)
					return false
				}
			}
			return true
		}
	}
	if err := quick.Check(run(false), &quick.Config{MaxCount: 15}); err != nil {
		t.Errorf("heap layout: %v", err)
	}
	if err := quick.Check(run(true), &quick.Config{MaxCount: 15}); err != nil {
		t.Errorf("clustered layout: %v", err)
	}
}

func TestGlobalRowIDRoundTrip(t *testing.T) {
	f := func(node int32, row uint64) bool {
		g := GlobalRowID{Node: node, Row: RowID(row)}
		dec, ok := DecodeGlobalRowID(EncodeGlobalRowID(g))
		return ok && dec == g
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if _, ok := DecodeGlobalRowID([]byte{1, 2, 3}); ok {
		t.Error("short decode should fail")
	}
}

func TestCountsArithmetic(t *testing.T) {
	a := Counts{Searches: 3, Fetches: 2, Inserts: 1, Deletes: 1, ScanPages: 4, SortPages: 5}
	b := Counts{Searches: 1, Fetches: 1, Inserts: 1, Deletes: 0, ScanPages: 2, SortPages: 1}
	sum := a.Add(b)
	if sum.Searches != 4 || sum.SortPages != 6 {
		t.Errorf("Add = %+v", sum)
	}
	diff := sum.Sub(b)
	if diff != a {
		t.Errorf("Sub = %+v, want %+v", diff, a)
	}
	// IOs: 3*1 + 2*1 + 1*2 + 1*2 + 4 + 5 = 18
	if got := a.IOs(); got != 18 {
		t.Errorf("IOs = %d, want 18", got)
	}
}
