package workload

import (
	"fmt"
	"math/rand"

	"joinview/internal/catalog"
	"joinview/internal/cluster"
	"joinview/internal/types"
)

// TwoRel is the abstract setup of the analytical model (§3.1): relations
// A and B joined on A.c = B.d, with neither partitioned on the join
// attribute, a view JV = A ⋈ B partitioned on an attribute of A, and N
// matching B tuples per join value.
type TwoRel struct {
	// JoinValues is the number of distinct join-attribute values in B.
	JoinValues int
	// Fanout is N: B tuples per join value.
	Fanout int
	// ClusterBOnJoin locally clusters B on the join attribute d,
	// producing the paper's "naive method with clustered index" /
	// "distributed clustered global index" variants. Otherwise B gets a
	// non-clustered secondary index on d.
	ClusterBOnJoin bool
	// ZipfS, when > 1, draws the insert stream's join values from a
	// Zipf(s) distribution instead of uniform — an extension beyond the
	// paper's assumption 9 ("uniformly distributed on the join
	// attribute") for studying hotspot sensitivity.
	ZipfS float64
}

// Defaulted fills the paper-ish defaults (N = 10).
func (s TwoRel) Defaulted() TwoRel {
	if s.JoinValues <= 0 {
		s.JoinValues = 640
	}
	if s.Fanout <= 0 {
		s.Fanout = 10
	}
	return s
}

// BRows is the total size of B.
func (s TwoRel) BRows() int { return s.JoinValues * s.Fanout }

// ATable returns relation A: a(id, c, payload), partitioned on id (not on
// the join attribute c).
func ATable() *catalog.Table {
	return &catalog.Table{
		Name: "a",
		Schema: types.NewSchema(
			types.Column{Name: "id", Kind: types.KindInt},
			types.Column{Name: "c", Kind: types.KindInt},
			types.Column{Name: "payload", Kind: types.KindInt},
		),
		PartitionCol: "id",
	}
}

// BTable returns relation B: b(id, d, payload), partitioned on id, with
// either a local clustered layout on d or a non-clustered index on d.
func (s TwoRel) BTable() *catalog.Table {
	t := &catalog.Table{
		Name: "b",
		Schema: types.NewSchema(
			types.Column{Name: "id", Kind: types.KindInt},
			types.Column{Name: "d", Kind: types.KindInt},
			types.Column{Name: "payload", Kind: types.KindInt},
		),
		PartitionCol: "id",
	}
	if s.ClusterBOnJoin {
		t.ClusterCol = "d"
	} else {
		t.Indexes = []catalog.Index{{Name: "ix_b_d", Col: "d"}}
	}
	return t
}

// ViewDef returns JV = A ⋈ B on c = d, partitioned on A.id, using the
// given maintenance strategy.
func ViewDef(name string, strategy catalog.Strategy) *catalog.View {
	return &catalog.View{
		Name:   name,
		Tables: []string{"a", "b"},
		Joins:  []catalog.JoinPred{{Left: "a", LeftCol: "c", Right: "b", RightCol: "d"}},
		Out: []catalog.OutCol{
			{Table: "a", Col: "id"}, {Table: "a", Col: "c"},
			{Table: "b", Col: "id"}, {Table: "b", Col: "payload"},
		},
		PartitionTable: "a", PartitionCol: "id",
		Strategy: strategy,
	}
}

// Load creates A (empty) and B (JoinValues × Fanout rows), the view, and
// resets the metrics window. The view starts empty because A is empty; the
// experiments then insert into A and measure maintenance cost.
func (s TwoRel) Load(c *cluster.Cluster, strategy catalog.Strategy) error {
	s = s.Defaulted()
	if err := c.CreateTable(ATable()); err != nil {
		return err
	}
	if err := c.CreateTable(s.BTable()); err != nil {
		return err
	}
	rows := make([]types.Tuple, 0, s.BRows())
	id := int64(0)
	for v := int64(0); v < int64(s.JoinValues); v++ {
		for f := 0; f < s.Fanout; f++ {
			id++
			rows = append(rows, types.Tuple{types.Int(id), types.Int(v), types.Int(id % 97)})
		}
	}
	if err := c.Insert("b", rows); err != nil {
		return err
	}
	if err := c.RefreshStats("b"); err != nil {
		return err
	}
	if err := c.CreateView(ViewDef("jv", strategy)); err != nil {
		return err
	}
	c.ResetMetrics()
	return nil
}

// AInserts generates n tuples for A with join values drawn from B's
// join-value domain — uniformly (assumption 9: "uniformly distributed on
// the join attribute") or Zipf-skewed when ZipfS > 1. Deterministic under
// seed.
func (s TwoRel) AInserts(n int, seed int64) []types.Tuple {
	s = s.Defaulted()
	rng := rand.New(rand.NewSource(seed))
	var draw func() int64
	if s.ZipfS > 1 {
		z := rand.NewZipf(rng, s.ZipfS, 1, uint64(s.JoinValues-1))
		draw = func() int64 { return int64(z.Uint64()) }
	} else {
		draw = func() int64 { return int64(rng.Intn(s.JoinValues)) }
	}
	out := make([]types.Tuple, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, types.Tuple{
			types.Int(int64(1_000_000 + i)),
			types.Int(draw()),
			types.Int(int64(i)),
		})
	}
	return out
}

// String describes the workload for experiment logs.
func (s TwoRel) String() string {
	s = s.Defaulted()
	return fmt.Sprintf("two-rel: |B|=%d rows (%d join values × fanout %d), B clustered on join attr: %v",
		s.BRows(), s.JoinValues, s.Fanout, s.ClusterBOnJoin)
}
