// Package workload generates the paper's test data sets and update
// streams: the TPC-R-style customer/orders/lineitem schema of §3.3
// (Table 1) and the abstract two-relation A ⋈ B setup of the analytical
// model (§3.1–3.2).
//
// Paper Table 1 at full scale holds 0.15M customers, 1.5M orders and 6M
// lineitems. The ratios are what the experiments depend on: each new
// customer tuple matches exactly one orders tuple on custkey (orders span
// ten times as many custkey values as there are customers), and each
// orders tuple matches four lineitem tuples on orderkey. Scale is a
// parameter; EXPERIMENTS.md records the factor used per run.
package workload

import (
	"fmt"

	"joinview/internal/catalog"
	"joinview/internal/cluster"
	"joinview/internal/types"
)

// TPCR describes a scaled instance of the paper's test data set.
type TPCR struct {
	// Customers is the customer row count (0.15M in Table 1).
	Customers int
	// CustkeySpan is how many distinct custkey values orders cover; Table
	// 1 uses 10× the customer count, so a newly inserted customer with
	// the next unused custkey matches exactly one order. Defaults to
	// 10 × Customers.
	CustkeySpan int
	// LinesPerOrder is the lineitem fan-out per order (4 in Table 1).
	LinesPerOrder int
}

// Defaulted returns the spec with Table 1's ratios filled in.
func (s TPCR) Defaulted() TPCR {
	if s.Customers <= 0 {
		s.Customers = 1500 // 0.15M scaled down 100×
	}
	if s.CustkeySpan <= 0 {
		s.CustkeySpan = 10 * s.Customers
	}
	if s.LinesPerOrder <= 0 {
		s.LinesPerOrder = 4
	}
	return s
}

// Orders returns the orders row count (one per custkey value in the span).
func (s TPCR) Orders() int { return s.CustkeySpan }

// Lineitems returns the lineitem row count.
func (s TPCR) Lineitems() int { return s.CustkeySpan * s.LinesPerOrder }

// CustomerTable returns the customer schema: partitioned (and locally
// clustered, Teradata-style) on custkey — the join attribute, so customer
// needs no auxiliary structures.
func CustomerTable() *catalog.Table {
	return &catalog.Table{
		Name: "customer",
		Schema: types.NewSchema(
			types.Column{Name: "custkey", Kind: types.KindInt},
			types.Column{Name: "acctbal", Kind: types.KindFloat},
		),
		PartitionCol: "custkey",
	}
}

// OrdersTable returns the orders schema: partitioned on orderkey, with a
// non-clustered secondary index on custkey (the §3.3 setup step 1).
func OrdersTable() *catalog.Table {
	return &catalog.Table{
		Name: "orders",
		Schema: types.NewSchema(
			types.Column{Name: "orderkey", Kind: types.KindInt},
			types.Column{Name: "custkey", Kind: types.KindInt},
			types.Column{Name: "totalprice", Kind: types.KindFloat},
		),
		PartitionCol: "orderkey",
		Indexes:      []catalog.Index{{Name: "ix_orders_custkey", Col: "custkey"}},
	}
}

// LineitemTable returns the lineitem schema: partitioned on partkey, with
// a non-clustered secondary index on orderkey.
func LineitemTable() *catalog.Table {
	return &catalog.Table{
		Name: "lineitem",
		Schema: types.NewSchema(
			types.Column{Name: "orderkey", Kind: types.KindInt},
			types.Column{Name: "partkey", Kind: types.KindInt},
			types.Column{Name: "suppkey", Kind: types.KindInt},
			types.Column{Name: "extendedprice", Kind: types.KindFloat},
			types.Column{Name: "discount", Kind: types.KindFloat},
		),
		PartitionCol: "partkey",
		Indexes:      []catalog.Index{{Name: "ix_lineitem_orderkey", Col: "orderkey"}},
	}
}

// Customer builds one customer tuple.
func Customer(custkey int64) types.Tuple {
	return types.Tuple{types.Int(custkey), types.Float(float64(custkey%1000) + 0.5)}
}

// Order builds one orders tuple.
func Order(orderkey, custkey int64) types.Tuple {
	return types.Tuple{types.Int(orderkey), types.Int(custkey), types.Float(float64(orderkey%5000) + 0.25)}
}

// Lineitem builds one lineitem tuple.
func Lineitem(orderkey, partkey, suppkey int64) types.Tuple {
	return types.Tuple{
		types.Int(orderkey), types.Int(partkey), types.Int(suppkey),
		types.Float(float64(partkey%900) + 1), types.Float(float64(partkey%10) / 100),
	}
}

// Generate materializes the three relations. Deterministic: orderkey i has
// custkey i (one order per custkey value) and LinesPerOrder lineitems.
func (s TPCR) Generate() (customers, orders, lineitems []types.Tuple) {
	s = s.Defaulted()
	customers = make([]types.Tuple, 0, s.Customers)
	for ck := int64(0); ck < int64(s.Customers); ck++ {
		customers = append(customers, Customer(ck))
	}
	orders = make([]types.Tuple, 0, s.Orders())
	lineitems = make([]types.Tuple, 0, s.Lineitems())
	part := int64(0)
	for ok := int64(0); ok < int64(s.CustkeySpan); ok++ {
		orders = append(orders, Order(ok, ok))
		for l := 0; l < s.LinesPerOrder; l++ {
			part++
			lineitems = append(lineitems, Lineitem(ok, part, part%100))
		}
	}
	return customers, orders, lineitems
}

// Load creates the three tables on the cluster, bulk-loads the generated
// data, refreshes statistics and resets the metrics window.
func (s TPCR) Load(c *cluster.Cluster) error {
	s = s.Defaulted()
	for _, t := range []*catalog.Table{CustomerTable(), OrdersTable(), LineitemTable()} {
		if err := c.CreateTable(t); err != nil {
			return fmt.Errorf("workload: %w", err)
		}
	}
	customers, orders, lineitems := s.Generate()
	if err := c.Insert("customer", customers); err != nil {
		return err
	}
	if err := c.Insert("orders", orders); err != nil {
		return err
	}
	if err := c.Insert("lineitem", lineitems); err != nil {
		return err
	}
	for _, name := range []string{"customer", "orders", "lineitem"} {
		if err := c.RefreshStats(name); err != nil {
			return err
		}
	}
	c.ResetMetrics()
	return nil
}

// NewCustomers returns n fresh customer tuples whose custkeys continue
// after the loaded customers, so each matches exactly one existing order —
// the §3.3 insert workload ("128 tuples ... these tuples each have one
// matching tuple in the orders relation").
func (s TPCR) NewCustomers(n int) ([]types.Tuple, error) {
	s = s.Defaulted()
	if s.Customers+n > s.CustkeySpan {
		return nil, fmt.Errorf("workload: %d new customers exceed the custkey span %d", n, s.CustkeySpan)
	}
	out := make([]types.Tuple, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Customer(int64(s.Customers+i)))
	}
	return out, nil
}
