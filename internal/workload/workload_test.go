package workload

import (
	"testing"

	"joinview/internal/catalog"
	"joinview/internal/cluster"
	"joinview/internal/types"
)

func TestTPCRDefaultsAndRatios(t *testing.T) {
	s := TPCR{}.Defaulted()
	if s.Customers != 1500 || s.CustkeySpan != 15000 || s.LinesPerOrder != 4 {
		t.Errorf("defaults = %+v", s)
	}
	// Table 1 ratios: orders = 10× customers, lineitems = 4× orders.
	if s.Orders() != 10*s.Customers {
		t.Errorf("orders = %d", s.Orders())
	}
	if s.Lineitems() != 4*s.Orders() {
		t.Errorf("lineitems = %d", s.Lineitems())
	}
}

func TestTPCRGenerate(t *testing.T) {
	s := TPCR{Customers: 20, CustkeySpan: 200, LinesPerOrder: 3}
	customers, orders, lineitems := s.Generate()
	if len(customers) != 20 || len(orders) != 200 || len(lineitems) != 600 {
		t.Fatalf("sizes = %d/%d/%d", len(customers), len(orders), len(lineitems))
	}
	// Each customer's custkey matches exactly one order.
	orderByCust := map[int64]int{}
	for _, o := range orders {
		orderByCust[o[1].I]++
	}
	for _, c := range customers {
		if orderByCust[c[0].I] != 1 {
			t.Fatalf("customer %d matches %d orders, want 1", c[0].I, orderByCust[c[0].I])
		}
	}
	// Each order matches LinesPerOrder lineitems.
	linesByOrder := map[int64]int{}
	for _, l := range lineitems {
		linesByOrder[l[0].I]++
	}
	for _, o := range orders {
		if linesByOrder[o[0].I] != 3 {
			t.Fatalf("order %d matches %d lineitems, want 3", o[0].I, linesByOrder[o[0].I])
		}
	}
}

func TestNewCustomersMatchExactlyOneOrder(t *testing.T) {
	s := TPCR{Customers: 20, CustkeySpan: 200}
	newCust, err := s.NewCustomers(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(newCust) != 5 {
		t.Fatal("wrong count")
	}
	_, orders, _ := s.Generate()
	orderByCust := map[int64]int{}
	for _, o := range orders {
		orderByCust[o[1].I]++
	}
	for _, c := range newCust {
		if c[0].I < 20 {
			t.Errorf("new customer reuses existing custkey %d", c[0].I)
		}
		if orderByCust[c[0].I] != 1 {
			t.Errorf("new customer %d matches %d orders, want 1", c[0].I, orderByCust[c[0].I])
		}
	}
	if _, err := s.NewCustomers(1000); err == nil {
		t.Error("overflowing the custkey span should fail")
	}
}

func TestTPCRLoad(t *testing.T) {
	c, err := cluster.New(cluster.Config{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s := TPCR{Customers: 10, CustkeySpan: 100, LinesPerOrder: 2}
	if err := s.Load(c); err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]int{"customer": 10, "orders": 100, "lineitem": 200} {
		rows, err := c.TableRows(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != want {
			t.Errorf("%s has %d rows, want %d", name, len(rows), want)
		}
	}
	// Stats refreshed and metrics reset.
	if c.Metrics().TotalIOs() != 0 {
		t.Error("Load should end with a clean metrics window")
	}
	if f := c.Stats().Fanout("lineitem", "orderkey"); f != 2 {
		t.Errorf("lineitem orderkey fanout = %g, want 2", f)
	}
}

func TestTwoRelLoadAndFanout(t *testing.T) {
	for _, clustered := range []bool{false, true} {
		c, err := cluster.New(cluster.Config{Nodes: 4})
		if err != nil {
			t.Fatal(err)
		}
		s := TwoRel{JoinValues: 50, Fanout: 5, ClusterBOnJoin: clustered}
		if err := s.Load(c, catalog.StrategyAuxRel); err != nil {
			t.Fatal(err)
		}
		rows, err := c.TableRows("b")
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 250 {
			t.Fatalf("b has %d rows, want 250", len(rows))
		}
		// Every join value appears exactly Fanout times.
		counts := map[int64]int{}
		for _, r := range rows {
			counts[r[1].I]++
		}
		for v, n := range counts {
			if n != 5 {
				t.Fatalf("join value %d has fanout %d, want 5", v, n)
			}
		}
		// Inserting into a maintains the view.
		if err := c.Insert("a", s.AInserts(20, 7)); err != nil {
			t.Fatal(err)
		}
		if err := c.CheckViewConsistency("jv"); err != nil {
			t.Fatal(err)
		}
		vrows, _ := c.ViewRows("jv")
		if len(vrows) != 20*5 {
			t.Errorf("view has %d rows, want 100", len(vrows))
		}
		if s.String() == "" {
			t.Error("String empty")
		}
		c.Close()
	}
}

func TestAInsertsDeterministic(t *testing.T) {
	s := TwoRel{JoinValues: 10, Fanout: 2}
	a := s.AInserts(10, 3)
	b := s.AInserts(10, 3)
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatal("AInserts must be deterministic under a seed")
		}
	}
	other := s.AInserts(10, 4)
	same := true
	for i := range a {
		if !a[i].Equal(other[i]) {
			same = false
		}
	}
	if same {
		t.Error("different seeds should give different streams")
	}
}

func TestTupleBuilders(t *testing.T) {
	c := Customer(5)
	if c[0].I != 5 || c[1].K != types.KindFloat {
		t.Error("Customer builder wrong")
	}
	o := Order(7, 5)
	if o[0].I != 7 || o[1].I != 5 {
		t.Error("Order builder wrong")
	}
	l := Lineitem(7, 3, 1)
	if l[0].I != 7 || len(l) != 5 {
		t.Error("Lineitem builder wrong")
	}
}
