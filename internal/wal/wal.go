// Package wal implements the durability substrate of the parallel RDBMS: an
// append-only, LSN-ordered redo log per data node plus fuzzy checkpoints of
// the node's fragments, so a fail-stop crash that loses all volatile state
// can be recovered by reloading the last checkpoint image and replaying the
// log tail — instead of re-scanning the surviving nodes' base relations.
//
// The log also carries the node-side records of presumed-abort two-phase
// commit: PREPARE when the coordinator asks the node to vote on a
// sequence-numbered DML batch, COMMIT/ABORT when the decision arrives. A
// restarted node derives its in-doubt transaction set from these records and
// resolves it against the coordinator's decision log.
//
// Durable writes are metered as page I/Os through the existing
// storage.Meter (Counts.LogPages): records accumulate into log pages, a
// Force flushes the current partial page (the commit-point write), and
// checkpoint images are charged at their data-page size. Everything is
// in-memory — the Store is the simulator's stand-in for the node's disk,
// surviving the wipe of the node's volatile state.
package wal

import (
	"fmt"
	"sync"

	"joinview/internal/gindex"
	"joinview/internal/storage"
	"joinview/internal/types"
)

// RecordKind tags a log record.
type RecordKind uint8

// Log record kinds.
const (
	// KindRedo is a logical redo record: one mutating request the node
	// applied, with the response it produced (replay re-executes the
	// request; abort resolution inverts it using the response).
	KindRedo RecordKind = iota
	// KindPrepare marks a transaction prepared at this node: its redo
	// records are durable and the node votes yes. Written at the force
	// point of two-phase commit's first phase.
	KindPrepare
	// KindCommit records the commit decision for a transaction (node side:
	// learned from the coordinator; coordinator side: the decision itself).
	KindCommit
	// KindAbort records an abort decision. Under presumed abort the
	// coordinator never logs these; nodes log one after undoing a
	// transaction locally so a later replay does not resurrect it as
	// in-doubt.
	KindAbort
	// KindEnqueue is a coordinator-log record of one deferred-maintenance
	// delta entering the async queue (Req holds an EnqueueDelta). Its Force
	// is the durability point of the deferring DML statement: the base
	// write and all derived maintenance are promised, not yet applied.
	KindEnqueue
	// KindEpochPlan is the coordinator's forced record of a compacted
	// flush epoch (Req holds an EpochPlan), written before any group of
	// the epoch executes. Once it is durable the epoch rolls forward:
	// recovery re-applies exactly the groups that lack a tagged commit
	// record and never re-plans.
	KindEpochPlan
	// KindEpochDone marks a flush epoch fully applied (Req holds an
	// EpochDone): every entry with Seq <= ThroughSeq is discharged and may
	// be discarded from the queue.
	KindEpochDone
	// KindReplFailover is the coordinator's forced record of a completed
	// node failover (Req holds a ReplFailover): the named node's slots were
	// promoted to surviving followers and the new partition map installed.
	// Audit/observability only — the map install itself is the commit point
	// and the record is not replayed.
	KindReplFailover
	// KindReplRepair records a completed re-replication round (Req holds a
	// ReplRepair). Audit/observability only.
	KindReplRepair
)

func (k RecordKind) String() string {
	switch k {
	case KindRedo:
		return "redo"
	case KindPrepare:
		return "prepare"
	case KindCommit:
		return "commit"
	case KindAbort:
		return "abort"
	case KindEnqueue:
		return "enqueue"
	case KindEpochPlan:
		return "epoch-plan"
	case KindEpochDone:
		return "epoch-done"
	case KindReplFailover:
		return "repl-failover"
	case KindReplRepair:
		return "repl-repair"
	default:
		return "unknown"
	}
}

// EnqueueDelta is the payload of a KindEnqueue record: one logical DML
// delta deferred into the async maintenance queue. Seq orders entries
// across the queue's life; Op is a maintain.Op value (kept as a uint8 so
// wal does not import maintain). At is the enqueue wall-clock time in
// Unix nanoseconds: recovery restores it so MaxStaleness admission and
// Watermark.Lag keep measuring from the original enqueue, not from the
// restart.
type EnqueueDelta struct {
	Seq    uint64
	Table  string
	Op     uint8
	At     int64
	Tuples []types.Tuple
}

// EpochGroup is one table's compacted net delta in a flush epoch. The
// group applies as a single atomic statement — deletes then inserts — so
// a crash never leaves a table reflecting half an epoch's net change.
type EpochGroup struct {
	Table   string
	Deletes []types.Tuple
	Inserts []types.Tuple
}

// EpochPlan is the payload of a KindEpochPlan record: the compacted
// groups a flush epoch will apply and the queue prefix it covers.
type EpochPlan struct {
	Epoch      uint64
	ThroughSeq uint64
	Groups     []EpochGroup
}

// EpochDone is the payload of a KindEpochDone record.
type EpochDone struct {
	Epoch      uint64
	ThroughSeq uint64
}

// ReplFailover is the payload of a KindReplFailover record: the node that
// failed, the epoch of the map installed after promotion, and how many
// slots moved to surviving followers.
type ReplFailover struct {
	Node          int
	Epoch         uint64
	PromotedSlots int
}

// ReplRepair is the payload of a KindReplRepair record: the epoch of the
// map installed after re-replication and how many slot-replicas the round
// restored.
type ReplRepair struct {
	Epoch         uint64
	RepairedSlots int
}

// FlushCommit tags a coordinator KindCommit record (via Record.Req) as
// the commit of one flush-epoch group. The tag rides the commit record
// itself so "group committed" and "group done" are a single forced write:
// there is no crash window between a group's 2PC commit point and its
// done marker.
type FlushCommit struct {
	Epoch uint64
	Group int
}

// Record is one log entry. LSN is assigned by Append and strictly
// increases; replay applies records in LSN order.
type Record struct {
	LSN  uint64
	Kind RecordKind
	// TID is the coordinator-assigned transaction (statement) id; zero for
	// work outside any transaction (DDL backfill, recovery repairs).
	TID uint64
	// Seq is the request's idempotency sequence number (zero for records
	// that did not travel in a Seq envelope). Replay rebuilds the node's
	// dedup cache from it.
	Seq uint64
	// Req is the logical redo payload (a node request); Resp the response
	// the node produced, kept for dedup-cache rebuild and abort inversion.
	Req  any
	Resp any
}

// Log is an append-only, LSN-ordered record log with page-grained I/O
// metering. Safe for concurrent use.
type Log struct {
	mu          sync.Mutex
	recs        []Record
	nextLSN     uint64
	truncated   uint64 // records dropped by truncation (LSNs 1..truncated)
	meter       *storage.Meter
	recsPerPage int
	unflushed   int // records appended since the last page-boundary/force write
}

// NewLog creates an empty log charging page I/O to meter. recsPerPage is
// how many records fit one log page (storage.DefaultPageRows if
// non-positive, matching the data-page geometry).
func NewLog(meter *storage.Meter, recsPerPage int) *Log {
	if recsPerPage <= 0 {
		recsPerPage = storage.DefaultPageRows
	}
	if meter == nil {
		meter = &storage.Meter{}
	}
	return &Log{meter: meter, recsPerPage: recsPerPage, nextLSN: 1}
}

// Append assigns the next LSN, stores the record and returns the LSN. A
// full page of records charges one log-page write; partial pages stay
// buffered until Force (group commit).
func (l *Log) Append(r Record) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	r.LSN = l.nextLSN
	l.nextLSN++
	l.recs = append(l.recs, r)
	l.unflushed++
	if l.unflushed >= l.recsPerPage {
		l.meter.LogPages(1)
		l.unflushed = 0
	}
	return r.LSN
}

// Force flushes the buffered partial page, charging one log-page write if
// anything was pending — the commit-point write of two-phase commit.
func (l *Log) Force() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.unflushed > 0 {
		l.meter.LogPages(1)
		l.unflushed = 0
	}
}

// LastLSN returns the highest assigned LSN (0 when empty).
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN - 1
}

// Len returns the number of retained records.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.recs)
}

// Pages returns the page count of the retained records (reading the whole
// retained log costs this many page I/Os).
func (l *Log) Pages() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return (len(l.recs) + l.recsPerPage - 1) / l.recsPerPage
}

// TailFrom returns a copy of all retained records with LSN > lsn, in LSN
// order, charging the page reads to the meter (recovery replay).
func (l *Log) TailFrom(lsn uint64) []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	i := 0
	for i < len(l.recs) && l.recs[i].LSN <= lsn {
		i++
	}
	out := append([]Record(nil), l.recs[i:]...)
	l.meter.LogPages(int64((len(out) + l.recsPerPage - 1) / l.recsPerPage))
	return out
}

// All returns a copy of every retained record without charging I/O
// (in-doubt bookkeeping sweeps, tests).
func (l *Log) All() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Record(nil), l.recs...)
}

// TruncateThrough drops records with LSN <= lsn (checkpoint reclamation).
// Future LSN assignment is unaffected.
func (l *Log) TruncateThrough(lsn uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	i := 0
	for i < len(l.recs) && l.recs[i].LSN <= lsn {
		i++
	}
	if i > 0 {
		l.truncated += uint64(i)
		l.recs = append([]Record(nil), l.recs[i:]...)
	}
}

// Checkpoint is a consistent image of one node's durable state at a log
// position: every fragment (base, auxiliary relation, view), every
// global-index fragment, and the idempotency (dedup) cache. A node restart
// loads the checkpoint and replays records with LSN > Checkpoint.LSN.
type Checkpoint struct {
	LSN       uint64
	Frags     map[string]storage.FragmentSnapshot
	GIdx      map[string]gindex.Snapshot
	Seen      map[uint64]any
	SeenOrder []uint64
	// Pages is the data-page size of the image: what writing it cost, and
	// what reloading it costs at recovery.
	Pages int
}

// Store is one node's durable area: the log and the latest checkpoint. It
// survives the wipe of the node's volatile state (the simulator's disk).
type Store struct {
	Log *Log

	mu   sync.Mutex
	ckpt *Checkpoint
}

// NewStore creates a durable area with an empty log.
func NewStore(meter *storage.Meter, recsPerPage int) *Store {
	return &Store{Log: NewLog(meter, recsPerPage)}
}

// SetCheckpoint installs a new checkpoint image, charges its page write,
// and reclaims the log prefix it covers — except records of transactions
// still undecided (their redo records must stay replayable for local abort),
// whose earliest LSN bounds the truncation.
func (s *Store) SetCheckpoint(c *Checkpoint, minPendingLSN uint64) {
	s.mu.Lock()
	s.ckpt = c
	s.mu.Unlock()
	s.Log.meterLogPages(int64(c.Pages))
	limit := c.LSN
	if minPendingLSN > 0 && minPendingLSN-1 < limit {
		limit = minPendingLSN - 1
	}
	s.Log.TruncateThrough(limit)
}

// Checkpoint returns the latest installed checkpoint (nil if none).
func (s *Store) Checkpoint() *Checkpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ckpt
}

// meterLogPages charges page I/O on the log's meter (checkpoint image
// writes and reads share the log device in this model).
func (l *Log) meterLogPages(n int64) {
	if n > 0 {
		l.meter.LogPages(n)
	}
}

// String renders a record for diagnostics.
func (r Record) String() string {
	return fmt.Sprintf("lsn=%d %s tid=%d seq=%d %T", r.LSN, r.Kind, r.TID, r.Seq, r.Req)
}
