package wal

import (
	"testing"

	"joinview/internal/storage"
)

func TestAppendAssignsIncreasingLSNs(t *testing.T) {
	l := NewLog(&storage.Meter{}, 4)
	for i := 1; i <= 5; i++ {
		lsn := l.Append(Record{Kind: KindRedo})
		if lsn != uint64(i) {
			t.Fatalf("append %d: lsn = %d", i, lsn)
		}
	}
	if got := l.LastLSN(); got != 5 {
		t.Fatalf("LastLSN = %d, want 5", got)
	}
}

func TestPageMeteringAndForce(t *testing.T) {
	m := &storage.Meter{}
	l := NewLog(m, 4)
	for i := 0; i < 4; i++ {
		l.Append(Record{Kind: KindRedo})
	}
	if got := m.Snapshot().LogPages; got != 1 {
		t.Fatalf("after full page: LogPages = %d, want 1", got)
	}
	l.Append(Record{Kind: KindRedo})
	if got := m.Snapshot().LogPages; got != 1 {
		t.Fatalf("partial page should stay buffered: LogPages = %d, want 1", got)
	}
	l.Force()
	if got := m.Snapshot().LogPages; got != 2 {
		t.Fatalf("after force: LogPages = %d, want 2", got)
	}
	// Force with nothing pending is free.
	l.Force()
	if got := m.Snapshot().LogPages; got != 2 {
		t.Fatalf("idle force charged I/O: LogPages = %d, want 2", got)
	}
}

func TestTailFromAndTruncate(t *testing.T) {
	m := &storage.Meter{}
	l := NewLog(m, 2)
	for i := 0; i < 6; i++ {
		l.Append(Record{Kind: KindRedo, TID: uint64(i + 1)})
	}
	tail := l.TailFrom(4)
	if len(tail) != 2 || tail[0].LSN != 5 || tail[1].LSN != 6 {
		t.Fatalf("TailFrom(4) = %+v", tail)
	}

	l.TruncateThrough(3)
	if got := l.Len(); got != 3 {
		t.Fatalf("after truncate: Len = %d, want 3", got)
	}
	all := l.All()
	if all[0].LSN != 4 {
		t.Fatalf("first retained LSN = %d, want 4", all[0].LSN)
	}
	// LSN assignment continues past truncation.
	if lsn := l.Append(Record{Kind: KindRedo}); lsn != 7 {
		t.Fatalf("post-truncate append lsn = %d, want 7", lsn)
	}
}

func TestStoreCheckpointTruncation(t *testing.T) {
	m := &storage.Meter{}
	s := NewStore(m, 2)
	for i := 0; i < 8; i++ {
		s.Log.Append(Record{Kind: KindRedo, TID: 1})
	}
	before := m.Snapshot().LogPages

	// Checkpoint at LSN 6 but a pending transaction's first record is LSN 4:
	// truncation must stop at 3.
	s.SetCheckpoint(&Checkpoint{LSN: 6, Pages: 3}, 4)
	if got := m.Snapshot().LogPages - before; got != 3 {
		t.Fatalf("checkpoint image charged %d pages, want 3", got)
	}
	if got := s.Log.All()[0].LSN; got != 4 {
		t.Fatalf("first retained LSN = %d, want 4", got)
	}
	if c := s.Checkpoint(); c == nil || c.LSN != 6 {
		t.Fatalf("Checkpoint() = %+v", c)
	}

	// No pending transactions: truncate all the way through the ckpt LSN.
	s.SetCheckpoint(&Checkpoint{LSN: 8, Pages: 3}, 0)
	if got := s.Log.Len(); got != 0 {
		t.Fatalf("after full truncation: Len = %d, want 0", got)
	}
}
