package catalog

import (
	"testing"

	"joinview/internal/types"
)

func tpcrCatalog(t *testing.T) *Catalog {
	t.Helper()
	c := New()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(c.AddTable(&Table{
		Name: "customer",
		Schema: types.NewSchema(
			types.Column{Name: "custkey", Kind: types.KindInt},
			types.Column{Name: "acctbal", Kind: types.KindFloat},
		),
		PartitionCol: "custkey",
		ClusterCol:   "custkey",
	}))
	must(c.AddTable(&Table{
		Name: "orders",
		Schema: types.NewSchema(
			types.Column{Name: "orderkey", Kind: types.KindInt},
			types.Column{Name: "custkey", Kind: types.KindInt},
			types.Column{Name: "totalprice", Kind: types.KindFloat},
		),
		PartitionCol: "orderkey",
		ClusterCol:   "orderkey",
	}))
	must(c.AddTable(&Table{
		Name: "lineitem",
		Schema: types.NewSchema(
			types.Column{Name: "orderkey", Kind: types.KindInt},
			types.Column{Name: "partkey", Kind: types.KindInt},
			types.Column{Name: "extendedprice", Kind: types.KindFloat},
		),
		PartitionCol: "partkey",
	}))
	return c
}

func jv2(strategy Strategy) *View {
	return &View{
		Name:   "jv2",
		Tables: []string{"customer", "orders", "lineitem"},
		Joins: []JoinPred{
			{Left: "customer", LeftCol: "custkey", Right: "orders", RightCol: "custkey"},
			{Left: "orders", LeftCol: "orderkey", Right: "lineitem", RightCol: "orderkey"},
		},
		Out: []OutCol{
			{"customer", "custkey"}, {"customer", "acctbal"},
			{"orders", "orderkey"}, {"orders", "totalprice"},
			{"lineitem", "extendedprice"},
		},
		PartitionTable: "customer", PartitionCol: "custkey",
		Strategy: strategy,
	}
}

func TestAddTableValidation(t *testing.T) {
	c := tpcrCatalog(t)
	if err := c.AddTable(&Table{Name: "customer", Schema: types.NewSchema(types.Column{Name: "x", Kind: types.KindInt}), PartitionCol: "x"}); err == nil {
		t.Error("duplicate table should fail")
	}
	if err := c.AddTable(&Table{Name: "t", Schema: types.NewSchema(types.Column{Name: "x", Kind: types.KindInt}), PartitionCol: "nope"}); err == nil {
		t.Error("bad partition column should fail")
	}
	if err := c.AddTable(&Table{Name: "t2"}); err == nil {
		t.Error("empty schema should fail")
	}
	if err := c.AddTable(&Table{Name: ""}); err == nil {
		t.Error("empty name should fail")
	}
	if err := c.AddTable(&Table{
		Name:         "t3",
		Schema:       types.NewSchema(types.Column{Name: "x", Kind: types.KindInt}),
		PartitionCol: "x", ClusterCol: "nope",
	}); err == nil {
		t.Error("bad cluster column should fail")
	}
	if _, err := c.Table("ghost"); err == nil {
		t.Error("missing table lookup should fail")
	}
	got := c.Tables()
	if len(got) != 3 || got[0] != "customer" {
		t.Errorf("Tables() = %v", got)
	}
}

func TestAddIndex(t *testing.T) {
	c := tpcrCatalog(t)
	if err := c.AddIndex("orders", Index{Name: "ix_cust", Col: "custkey"}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddIndex("orders", Index{Name: "ix_cust", Col: "custkey"}); err == nil {
		t.Error("duplicate index name should fail")
	}
	if err := c.AddIndex("orders", Index{Name: "ix2", Col: "nope"}); err == nil {
		t.Error("index on unknown column should fail")
	}
	if err := c.AddIndex("ghost", Index{Name: "ix", Col: "x"}); err == nil {
		t.Error("index on unknown table should fail")
	}
	tab, _ := c.Table("orders")
	if !tab.HasIndexOn("custkey") || tab.HasIndexOn("totalprice") {
		t.Error("HasIndexOn wrong")
	}
}

func TestAuxRelDerivation(t *testing.T) {
	c := tpcrCatalog(t)
	a := &AuxRel{Name: "orders_1", Table: "orders", PartitionCol: "custkey", Cols: []string{"custkey", "orderkey", "totalprice"}}
	if err := c.AddAuxRel(a); err != nil {
		t.Fatal(err)
	}
	if a.Schema.Len() != 3 || a.Schema.Cols[0].Name != "custkey" {
		t.Errorf("derived schema %v", a.Schema.Names())
	}
	if !a.Covers([]string{"custkey", "orderkey"}) || a.Covers([]string{"partkey"}) {
		t.Error("Covers wrong")
	}
	// Full-copy AR: empty Cols.
	full := &AuxRel{Name: "orders_full", Table: "orders", PartitionCol: "custkey"}
	if err := c.AddAuxRel(full); err != nil {
		t.Fatal(err)
	}
	if full.Schema.Len() != 3 {
		t.Errorf("full AR schema %v", full.Schema.Names())
	}
	// Errors.
	if err := c.AddAuxRel(&AuxRel{Name: "orders_1", Table: "orders", PartitionCol: "custkey"}); err == nil {
		t.Error("duplicate AR should fail")
	}
	if err := c.AddAuxRel(&AuxRel{Name: "customer", Table: "orders", PartitionCol: "custkey"}); err == nil {
		t.Error("AR shadowing a table name should fail")
	}
	if err := c.AddAuxRel(&AuxRel{Name: "x", Table: "ghost", PartitionCol: "c"}); err == nil {
		t.Error("AR on unknown table should fail")
	}
	if err := c.AddAuxRel(&AuxRel{Name: "y", Table: "orders", PartitionCol: "custkey", Cols: []string{"orderkey"}}); err == nil {
		t.Error("AR not retaining partition column should fail")
	}
	if err := c.AddAuxRel(&AuxRel{Name: "z", Table: "orders", PartitionCol: "custkey", Cols: []string{"nope"}}); err == nil {
		t.Error("AR with unknown column should fail")
	}
	// Lookups.
	ars := c.AuxRelsFor("orders")
	if len(ars) != 2 || ars[0].Name != "orders_1" {
		t.Errorf("AuxRelsFor = %v", ars)
	}
	if got, ok := c.AuxRelOn("orders", "custkey", []string{"orderkey", "totalprice"}); !ok || got.Name != "orders_1" {
		t.Errorf("AuxRelOn = %v, %v", got, ok)
	}
	if _, ok := c.AuxRelOn("orders", "orderkey", nil); ok {
		t.Error("AuxRelOn with wrong partition col should miss")
	}
	if _, err := c.AuxRel("nope"); err == nil {
		t.Error("missing AR lookup should fail")
	}
	if got, err := c.AuxRel("orders_1"); err != nil || got.Name != "orders_1" {
		t.Error("AR lookup failed")
	}
}

func TestGlobalIndexDistClusteredDerivation(t *testing.T) {
	c := tpcrCatalog(t)
	g1 := &GlobalIndex{Name: "gi_orders_cust", Table: "orders", Col: "custkey"}
	if err := c.AddGlobalIndex(g1); err != nil {
		t.Fatal(err)
	}
	if g1.DistClustered {
		t.Error("orders clustered on orderkey: GI on custkey must be non-clustered")
	}
	g2 := &GlobalIndex{Name: "gi_orders_ok", Table: "orders", Col: "orderkey"}
	if err := c.AddGlobalIndex(g2); err != nil {
		t.Fatal(err)
	}
	if !g2.DistClustered {
		t.Error("GI on the local cluster column must be distributed clustered")
	}
	if err := c.AddGlobalIndex(&GlobalIndex{Name: "gi_orders_cust", Table: "orders", Col: "custkey"}); err == nil {
		t.Error("duplicate GI should fail")
	}
	if err := c.AddGlobalIndex(&GlobalIndex{Name: "x", Table: "ghost", Col: "c"}); err == nil {
		t.Error("GI on unknown table should fail")
	}
	if err := c.AddGlobalIndex(&GlobalIndex{Name: "y", Table: "orders", Col: "nope"}); err == nil {
		t.Error("GI on unknown column should fail")
	}
	if got, ok := c.GlobalIndexOn("orders", "custkey"); !ok || got.Name != "gi_orders_cust" {
		t.Error("GlobalIndexOn miss")
	}
	if _, ok := c.GlobalIndexOn("orders", "totalprice"); ok {
		t.Error("GlobalIndexOn false positive")
	}
	if got := c.GlobalIndexesFor("orders"); len(got) != 2 {
		t.Errorf("GlobalIndexesFor = %v", got)
	}
	if _, err := c.GlobalIndex("nope"); err == nil {
		t.Error("missing GI lookup should fail")
	}
	if got, err := c.GlobalIndex("gi_orders_ok"); err != nil || got != g2 {
		t.Error("GI lookup failed")
	}
}

func TestAddViewSchemaAndHelpers(t *testing.T) {
	c := tpcrCatalog(t)
	v := jv2(StrategyAuxRel)
	if err := c.AddView(v); err != nil {
		t.Fatal(err)
	}
	wantCols := []string{"customer.custkey", "customer.acctbal", "orders.orderkey", "orders.totalprice", "lineitem.extendedprice"}
	got := v.Schema.Names()
	for i := range wantCols {
		if got[i] != wantCols[i] {
			t.Fatalf("view schema = %v", got)
		}
	}
	if v.PartitionQualified() != "customer.custkey" {
		t.Error("PartitionQualified wrong")
	}
	if !v.HasTable("orders") || v.HasTable("part") {
		t.Error("HasTable wrong")
	}
	if cols := v.JoinCols("orders"); len(cols) != 2 || cols[0] != "custkey" || cols[1] != "orderkey" {
		t.Errorf("JoinCols(orders) = %v", cols)
	}
	if cols := v.JoinCols("customer"); len(cols) != 1 || cols[0] != "custkey" {
		t.Errorf("JoinCols(customer) = %v", cols)
	}
	if js := v.JoinsOf("lineitem"); len(js) != 1 || js[0].Other("lineitem") != "orders" {
		t.Errorf("JoinsOf(lineitem) = %v", js)
	}
	if oc := v.OutColsOf("customer"); len(oc) != 2 || oc[0] != "custkey" {
		t.Errorf("OutColsOf = %v", oc)
	}
	if views := c.ViewsOn("lineitem"); len(views) != 1 || views[0].Name != "jv2" {
		t.Errorf("ViewsOn = %v", views)
	}
	if views := c.ViewsOn("nope"); len(views) != 0 {
		t.Errorf("ViewsOn(nope) = %v", views)
	}
	if names := c.Views(); len(names) != 1 || names[0] != "jv2" {
		t.Errorf("Views() = %v", names)
	}
	if _, err := c.View("jv2"); err != nil {
		t.Error(err)
	}
	if _, err := c.View("ghost"); err == nil {
		t.Error("missing view lookup should fail")
	}
}

func TestAddViewDefaults(t *testing.T) {
	c := tpcrCatalog(t)
	v := &View{
		Name:   "jv1",
		Tables: []string{"customer", "orders"},
		Joins:  []JoinPred{{Left: "customer", LeftCol: "custkey", Right: "orders", RightCol: "custkey"}},
	}
	if err := c.AddView(v); err != nil {
		t.Fatal(err)
	}
	// SELECT *: all 5 columns; partition defaults to first output column.
	if v.Schema.Len() != 5 {
		t.Errorf("SELECT * schema = %v", v.Schema.Names())
	}
	if v.PartitionTable != "customer" || v.PartitionCol != "custkey" {
		t.Errorf("default partition = %s.%s", v.PartitionTable, v.PartitionCol)
	}
}

func TestAddViewValidation(t *testing.T) {
	c := tpcrCatalog(t)
	base := func() *View { return jv2(StrategyNaive) }

	v := base()
	v.Tables = []string{"customer"}
	if err := c.AddView(v); err == nil {
		t.Error("single-table view should fail")
	}

	v = base()
	v.Tables = []string{"customer", "customer"}
	if err := c.AddView(v); err == nil {
		t.Error("self-join should fail")
	}

	v = base()
	v.Joins = nil
	if err := c.AddView(v); err == nil {
		t.Error("cartesian product should fail")
	}

	v = base()
	v.Joins = v.Joins[:1] // lineitem disconnected
	if err := c.AddView(v); err == nil {
		t.Error("disconnected join graph should fail")
	}

	v = base()
	v.Joins = append([]JoinPred{}, base().Joins...)
	v.Joins[0].Left = "part"
	if err := c.AddView(v); err == nil {
		t.Error("join on table outside FROM should fail")
	}

	v = base()
	v.Joins = append([]JoinPred{}, base().Joins...)
	v.Joins[0].LeftCol = "nope"
	if err := c.AddView(v); err == nil {
		t.Error("join on unknown column should fail")
	}

	v = base()
	v.Joins = []JoinPred{{Left: "orders", LeftCol: "orderkey", Right: "orders", RightCol: "custkey"}, base().Joins[0], base().Joins[1]}
	if err := c.AddView(v); err == nil {
		t.Error("within-table join predicate should fail")
	}

	v = base()
	v.Out = []OutCol{{"part", "x"}}
	if err := c.AddView(v); err == nil {
		t.Error("output from table outside FROM should fail")
	}

	v = base()
	v.Out = []OutCol{{"customer", "nope"}}
	if err := c.AddView(v); err == nil {
		t.Error("unknown output column should fail")
	}

	v = base()
	v.PartitionTable, v.PartitionCol = "lineitem", "partkey" // not in Out
	if err := c.AddView(v); err == nil {
		t.Error("partition column outside output should fail")
	}

	v = base()
	v.Tables = []string{"customer", "orders", "ghost"}
	if err := c.AddView(v); err == nil {
		t.Error("unknown table should fail")
	}

	if err := c.AddView(base()); err != nil {
		t.Fatalf("valid view rejected: %v", err)
	}
	if err := c.AddView(base()); err == nil {
		t.Error("duplicate view should fail")
	}
}

func TestJoinPredHelpers(t *testing.T) {
	j := JoinPred{Left: "a", LeftCol: "x", Right: "b", RightCol: "y"}
	if j.ColOf("a") != "x" || j.ColOf("b") != "y" || j.ColOf("c") != "" {
		t.Error("ColOf wrong")
	}
	if j.Other("a") != "b" || j.Other("b") != "a" || j.Other("c") != "" {
		t.Error("Other wrong")
	}
}

func TestParseStrategy(t *testing.T) {
	for s, want := range map[string]Strategy{
		"naive": StrategyNaive, "NAIVE": StrategyNaive,
		"auxrel": StrategyAuxRel, "AUXILIARY": StrategyAuxRel,
		"globalindex": StrategyGlobalIndex, "GLOBAL": StrategyGlobalIndex,
		"auto": StrategyAuto,
	} {
		got, err := ParseStrategy(s)
		if err != nil || got != want {
			t.Errorf("ParseStrategy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Error("bad strategy should fail")
	}
	for _, s := range []Strategy{StrategyNaive, StrategyAuxRel, StrategyGlobalIndex, StrategyAuto} {
		if s.String() == "" {
			t.Error("empty strategy name")
		}
	}
	if Strategy(99).String() == "" {
		t.Error("unknown strategy should still render")
	}
}
