// Package catalog holds the metadata of the parallel RDBMS: base tables,
// secondary indexes, join views, auxiliary relations and global indexes.
// It is pure metadata — storage lives in the node fragments — plus the
// validation and join-graph helpers the planner and the maintenance
// strategies share.
package catalog

import (
	"fmt"
	"sort"
	"sync/atomic"

	"joinview/internal/expr"
	"joinview/internal/hashpart"
	"joinview/internal/types"
)

// Table describes a base relation.
type Table struct {
	Name   string
	Schema *types.Schema
	// PartitionCol is the attribute tuples are hash-partitioned on across
	// nodes (Teradata's primary index).
	PartitionCol string
	// ClusterCol is the attribute each local fragment is clustered on.
	// In Teradata this must equal PartitionCol; the simulator also allows
	// a different column so the paper's "naive method with clustered
	// index J_B on the join attribute" variant can actually be run
	// (the paper could not test it: "clustered indices must be on
	// partitioning attributes"). Empty means heap layout.
	ClusterCol string
	// Indexes are non-clustered local secondary indexes.
	Indexes []Index
}

// Index is a non-clustered local secondary index on one column.
type Index struct {
	Name string
	Col  string
}

// HasIndexOn reports whether the table declares a secondary index on col.
func (t *Table) HasIndexOn(col string) bool {
	for _, ix := range t.Indexes {
		if ix.Col == col {
			return true
		}
	}
	return false
}

// GlobalIndex describes a global index on one attribute of a base table
// (§2.1.3). The index is hash-partitioned on the indexed attribute.
type GlobalIndex struct {
	Name  string
	Table string
	Col   string
	// DistClustered records whether the base relation is locally clustered
	// on Col at every node ("distributed clustered").
	DistClustered bool
}

// AuxRel describes an auxiliary relation (§2.1.2): a selection and
// projection of a base relation, re-partitioned (and locally clustered) on
// a join attribute: AR_R = π(σ(R)) partitioned on PartitionCol.
type AuxRel struct {
	Name  string
	Table string
	// PartitionCol is the join attribute the AR is partitioned and
	// clustered on. It must be included in Cols.
	PartitionCol string
	// Cols is the projected column subset, in base-schema order; empty
	// means a full copy.
	Cols []string
	// Where optionally restricts which base tuples appear in the AR
	// (storage minimization per Quass et al.; nil keeps all tuples).
	Where expr.Expr
	// Schema is the derived AR schema.
	Schema *types.Schema
	// AutoCreated marks an AR materialized implicitly for a view
	// (EnsureStructures) rather than by an explicit CREATE. Only
	// auto-created ARs are dropped when the last view referencing them
	// goes away; user-created ones always outlive their views.
	AutoCreated bool
}

// Covers reports whether the AR retains all of the named base columns.
func (a *AuxRel) Covers(cols []string) bool {
	for _, c := range cols {
		if a.Schema.ColIndex(c) < 0 {
			return false
		}
	}
	return true
}

// Strategy selects a view-maintenance method.
type Strategy uint8

// Maintenance strategies. Auto defers the choice to the cost-based advisor.
const (
	StrategyNaive Strategy = iota
	StrategyAuxRel
	StrategyGlobalIndex
	StrategyAuto
)

func (s Strategy) String() string {
	switch s {
	case StrategyNaive:
		return "naive"
	case StrategyAuxRel:
		return "auxrel"
	case StrategyGlobalIndex:
		return "globalindex"
	case StrategyAuto:
		return "auto"
	default:
		return fmt.Sprintf("strategy(%d)", uint8(s))
	}
}

// ParseStrategy parses a strategy name as written in SQL (USING ...).
func ParseStrategy(s string) (Strategy, error) {
	switch s {
	case "naive", "NAIVE":
		return StrategyNaive, nil
	case "auxrel", "AUXREL", "auxiliary", "AUXILIARY":
		return StrategyAuxRel, nil
	case "globalindex", "GLOBALINDEX", "global", "GLOBAL":
		return StrategyGlobalIndex, nil
	case "auto", "AUTO":
		return StrategyAuto, nil
	default:
		return 0, fmt.Errorf("catalog: unknown strategy %q", s)
	}
}

// JoinPred is one equijoin predicate Left.LeftCol = Right.RightCol of a
// view definition.
type JoinPred struct {
	Left, LeftCol   string
	Right, RightCol string
}

// ColOf returns the join column contributed by the named table, or "" if
// the table does not participate in this predicate.
func (j JoinPred) ColOf(table string) string {
	switch table {
	case j.Left:
		return j.LeftCol
	case j.Right:
		return j.RightCol
	}
	return ""
}

// Other returns the table on the opposite side of the predicate from t.
func (j JoinPred) Other(t string) string {
	switch t {
	case j.Left:
		return j.Right
	case j.Right:
		return j.Left
	}
	return ""
}

// OutCol names one output column of a view.
type OutCol struct {
	Table, Col string
}

// Qualified returns the "table.col" name the view schema uses.
func (o OutCol) Qualified() string { return o.Table + "." + o.Col }

// AggSpec is one aggregate column of an aggregate join view. Only COUNT
// and SUM are allowed: they are self-maintainable under inserts *and*
// deletes (MIN/MAX are not without rescanning, and AVG decomposes into
// SUM/COUNT), matching the restrictions of the authors' companion work on
// aggregate join views.
type AggSpec struct {
	// Func is "count" (Table/Col empty) or "sum".
	Func string
	// Table/Col name the measure column for sum.
	Table, Col string
}

// Label is the schema column name of the aggregate.
func (a AggSpec) Label() string {
	if a.Func == "count" {
		return "count"
	}
	return fmt.Sprintf("%s(%s.%s)", a.Func, a.Table, a.Col)
}

// View describes a materialized join view over 2..n base tables.
type View struct {
	Name string
	// Tables lists the joined base tables in FROM order.
	Tables []string
	// Joins are the equijoin predicates; the induced join graph must be
	// connected.
	Joins []JoinPred
	// Out is the select list; empty means SELECT * (all columns of all
	// tables, prefixed). For an aggregate view, Out is the GROUP BY list.
	Out []OutCol
	// Aggs, when non-empty, makes this an aggregate join view: the
	// materialized rows are one per Out-group, carrying the aggregates.
	// A count aggregate is required (AddView appends one if missing) so
	// maintenance can delete groups whose membership drops to zero.
	Aggs []AggSpec
	// PartitionTable/PartitionCol give the view's partitioning attribute,
	// which must appear in the output.
	PartitionTable, PartitionCol string
	// Strategy is the maintenance method for this view.
	Strategy Strategy
	// Overrides optionally pins a different method per updated base
	// table — the hybrid scheme the paper's conclusion sketches ("in many
	// cases, it is possible that a hybrid method will outperform any of
	// the three methods"). A table absent from the map uses Strategy.
	Overrides map[string]Strategy
	// Schema is the derived output schema (qualified column names).
	Schema *types.Schema
}

// StrategyFor returns the maintenance method used when the named base
// table is updated, honouring per-table overrides.
func (v *View) StrategyFor(table string) Strategy {
	if s, ok := v.Overrides[table]; ok {
		return s
	}
	return v.Strategy
}

// IsAggregate reports whether this is an aggregate join view.
func (v *View) IsAggregate() bool { return len(v.Aggs) > 0 }

// CountIndex returns the schema position of the count aggregate (only
// meaningful for aggregate views; AddView guarantees one exists).
func (v *View) CountIndex() int {
	for i, a := range v.Aggs {
		if a.Func == "count" {
			return len(v.Out) + i
		}
	}
	return -1
}

// MeasureColsOf returns the measure columns the view sums from the named
// table (the extra base columns aggregate maintenance must carry).
func (v *View) MeasureColsOf(table string) []string {
	var out []string
	seen := map[string]bool{}
	for _, a := range v.Aggs {
		if a.Func == "sum" && a.Table == table && !seen[a.Col] {
			seen[a.Col] = true
			out = append(out, a.Col)
		}
	}
	return out
}

// MaintenanceProjection returns the qualified columns the maintenance
// delta must carry: the output columns for a plain view; the group columns
// plus sum measures for an aggregate view.
func (v *View) MaintenanceProjection() []string {
	names := make([]string, 0, len(v.Out)+len(v.Aggs))
	for _, o := range v.Out {
		names = append(names, o.Qualified())
	}
	if !v.IsAggregate() {
		return names
	}
	seen := map[string]bool{}
	for _, n := range names {
		seen[n] = true
	}
	for _, a := range v.Aggs {
		if a.Func != "sum" {
			continue
		}
		q := a.Table + "." + a.Col
		if !seen[q] {
			seen[q] = true
			names = append(names, q)
		}
	}
	return names
}

// HasTable reports whether the view joins the named table.
func (v *View) HasTable(name string) bool {
	for _, t := range v.Tables {
		if t == name {
			return true
		}
	}
	return false
}

// PartitionQualified returns the qualified name of the view's partitioning
// column in the view schema.
func (v *View) PartitionQualified() string {
	return v.PartitionTable + "." + v.PartitionCol
}

// JoinsOf returns the join predicates that involve the named table.
func (v *View) JoinsOf(table string) []JoinPred {
	var out []JoinPred
	for _, j := range v.Joins {
		if j.Left == table || j.Right == table {
			out = append(out, j)
		}
	}
	return out
}

// JoinCols returns the distinct join attributes the named table contributes
// to the view, sorted (each needs an AR or GI unless the table is
// partitioned on it, per §2.2).
func (v *View) JoinCols(table string) []string {
	seen := map[string]bool{}
	for _, j := range v.Joins {
		if c := j.ColOf(table); c != "" {
			seen[c] = true
		}
	}
	cols := make([]string, 0, len(seen))
	for c := range seen {
		cols = append(cols, c)
	}
	sort.Strings(cols)
	return cols
}

// OutColsOf returns the output columns the view takes from the named table.
func (v *View) OutColsOf(table string) []string {
	var out []string
	for _, o := range v.Out {
		if o.Table == table {
			out = append(out, o.Col)
		}
	}
	return out
}

// Catalog is the full metadata store. It is not synchronized: DDL happens
// before the update streams in every workload, matching the paper's setup.
// The cluster serializes any later DDL against DML under its global lock;
// the version counter is atomic so lock-free readers (the plan cache) can
// still detect concurrent drift.
type Catalog struct {
	tables   map[string]*Table
	views    map[string]*View
	auxrels  map[string]*AuxRel
	gindexes map[string]*GlobalIndex
	// arRefs tracks which views' maintenance each auxiliary relation was
	// materialized (or reused) for: AR name → set of view names. Identical
	// ARs are deduplicated at view creation, so the sets are the reference
	// counts that decide when an auto-created AR may be garbage-collected.
	arRefs  map[string]map[string]bool
	version atomic.Uint64
	// pmap is the cluster's versioned partition map: the epoch-stamped
	// slot→node assignment the elasticity machinery installs at every
	// migration cutover. Readers (the plan cache's validity check, the
	// topology report) load it lock-free; nil means the fixed identity
	// topology (epoch 0).
	pmap atomic.Pointer[hashpart.Map]
}

// Version returns the catalog's schema version: a counter bumped by every
// successful DDL mutation. Compiled maintenance plans record the version
// they were built against and are invalid once it moves.
func (c *Catalog) Version() uint64 { return c.version.Load() }

// bump advances the schema version after a successful mutation.
func (c *Catalog) bump() { c.version.Add(1) }

// SetPartitionMap records the installed slot→node partition map. The
// cluster calls it at construction and at every migration cutover; the
// epoch bump (not a catalog-version bump) is what invalidates compiled
// maintenance plans, so fixed-topology workloads see no extra recompiles.
func (c *Catalog) SetPartitionMap(m hashpart.Map) {
	m = m.Clone()
	c.pmap.Store(&m)
}

// PartitionMap returns the recorded partition map and whether one was set.
func (c *Catalog) PartitionMap() (hashpart.Map, bool) {
	p := c.pmap.Load()
	if p == nil {
		return hashpart.Map{}, false
	}
	return p.Clone(), true
}

// PartitionEpoch returns the installed partition map's epoch (0 when the
// topology never changed). Compiled maintenance plans record it and are
// invalid once it moves.
func (c *Catalog) PartitionEpoch() uint64 {
	if p := c.pmap.Load(); p != nil {
		return p.Epoch
	}
	return 0
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		tables:   map[string]*Table{},
		views:    map[string]*View{},
		auxrels:  map[string]*AuxRel{},
		gindexes: map[string]*GlobalIndex{},
		arRefs:   map[string]map[string]bool{},
	}
}

// AddTable validates and registers a base table.
func (c *Catalog) AddTable(t *Table) error {
	if t.Name == "" {
		return fmt.Errorf("catalog: table needs a name")
	}
	if _, dup := c.tables[t.Name]; dup {
		return fmt.Errorf("catalog: table %q already exists", t.Name)
	}
	if t.Schema == nil || t.Schema.Len() == 0 {
		return fmt.Errorf("catalog: table %q needs columns", t.Name)
	}
	if t.Schema.ColIndex(t.PartitionCol) < 0 {
		return fmt.Errorf("catalog: table %q: partition column %q not in schema", t.Name, t.PartitionCol)
	}
	if t.ClusterCol != "" && t.Schema.ColIndex(t.ClusterCol) < 0 {
		return fmt.Errorf("catalog: table %q: cluster column %q not in schema", t.Name, t.ClusterCol)
	}
	for _, ix := range t.Indexes {
		if t.Schema.ColIndex(ix.Col) < 0 {
			return fmt.Errorf("catalog: table %q: index %q on unknown column %q", t.Name, ix.Name, ix.Col)
		}
	}
	c.tables[t.Name] = t
	c.bump()
	return nil
}

// Table returns the named table.
func (c *Catalog) Table(name string) (*Table, error) {
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("catalog: no table %q", name)
	}
	return t, nil
}

// Tables returns all table names, sorted.
func (c *Catalog) Tables() []string { return sortedKeys(c.tables) }

// AddIndex registers a secondary index on an existing table.
func (c *Catalog) AddIndex(table string, ix Index) error {
	t, err := c.Table(table)
	if err != nil {
		return err
	}
	if t.Schema.ColIndex(ix.Col) < 0 {
		return fmt.Errorf("catalog: index %q on unknown column %q", ix.Name, ix.Col)
	}
	for _, have := range t.Indexes {
		if have.Name == ix.Name {
			return fmt.Errorf("catalog: index %q already exists on %q", ix.Name, table)
		}
	}
	t.Indexes = append(t.Indexes, ix)
	c.bump()
	return nil
}

// AddAuxRel validates and registers an auxiliary relation, deriving its
// schema from the base table.
func (c *Catalog) AddAuxRel(a *AuxRel) error {
	if _, dup := c.auxrels[a.Name]; dup {
		return fmt.Errorf("catalog: auxiliary relation %q already exists", a.Name)
	}
	if _, dup := c.tables[a.Name]; dup {
		return fmt.Errorf("catalog: name %q already names a table", a.Name)
	}
	base, err := c.Table(a.Table)
	if err != nil {
		return err
	}
	cols := a.Cols
	if len(cols) == 0 {
		cols = base.Schema.Names()
	}
	schema, err := base.Schema.Project(cols)
	if err != nil {
		return fmt.Errorf("catalog: auxiliary relation %q: %w", a.Name, err)
	}
	if schema.ColIndex(a.PartitionCol) < 0 {
		return fmt.Errorf("catalog: auxiliary relation %q must retain its partition column %q", a.Name, a.PartitionCol)
	}
	a.Cols = cols
	a.Schema = schema
	c.auxrels[a.Name] = a
	c.bump()
	return nil
}

// AuxRel returns the named auxiliary relation.
func (c *Catalog) AuxRel(name string) (*AuxRel, error) {
	a, ok := c.auxrels[name]
	if !ok {
		return nil, fmt.Errorf("catalog: no auxiliary relation %q", name)
	}
	return a, nil
}

// AuxRelsFor returns the auxiliary relations of a base table, sorted by name.
func (c *Catalog) AuxRelsFor(table string) []*AuxRel {
	var out []*AuxRel
	for _, name := range sortedKeys(c.auxrels) {
		if a := c.auxrels[name]; a.Table == table {
			out = append(out, a)
		}
	}
	return out
}

// AuxRelOn returns a base table's auxiliary relation partitioned on col and
// covering the given columns, if one exists.
func (c *Catalog) AuxRelOn(table, col string, covering []string) (*AuxRel, bool) {
	for _, a := range c.AuxRelsFor(table) {
		if a.PartitionCol == col && a.Covers(covering) {
			return a, true
		}
	}
	return nil, false
}

// AddGlobalIndex validates and registers a global index. DistClustered is
// derived from the base table's local layout.
func (c *Catalog) AddGlobalIndex(g *GlobalIndex) error {
	if _, dup := c.gindexes[g.Name]; dup {
		return fmt.Errorf("catalog: global index %q already exists", g.Name)
	}
	t, err := c.Table(g.Table)
	if err != nil {
		return err
	}
	if t.Schema.ColIndex(g.Col) < 0 {
		return fmt.Errorf("catalog: global index %q on unknown column %q", g.Name, g.Col)
	}
	g.DistClustered = t.ClusterCol == g.Col
	c.gindexes[g.Name] = g
	c.bump()
	return nil
}

// GlobalIndex returns the named global index.
func (c *Catalog) GlobalIndex(name string) (*GlobalIndex, error) {
	g, ok := c.gindexes[name]
	if !ok {
		return nil, fmt.Errorf("catalog: no global index %q", name)
	}
	return g, nil
}

// GlobalIndexOn returns the global index of table on col, if any.
func (c *Catalog) GlobalIndexOn(table, col string) (*GlobalIndex, bool) {
	for _, name := range sortedKeys(c.gindexes) {
		if g := c.gindexes[name]; g.Table == table && g.Col == col {
			return g, true
		}
	}
	return nil, false
}

// GlobalIndexesFor returns the global indexes of a base table, by name order.
func (c *Catalog) GlobalIndexesFor(table string) []*GlobalIndex {
	var out []*GlobalIndex
	for _, name := range sortedKeys(c.gindexes) {
		if g := c.gindexes[name]; g.Table == table {
			out = append(out, g)
		}
	}
	return out
}

// AddView validates a view definition, derives its schema, and registers it.
func (c *Catalog) AddView(v *View) error {
	if _, dup := c.views[v.Name]; dup {
		return fmt.Errorf("catalog: view %q already exists", v.Name)
	}
	if len(v.Tables) < 2 {
		return fmt.Errorf("catalog: view %q must join at least two tables", v.Name)
	}
	seen := map[string]bool{}
	full := types.NewSchema()
	for _, name := range v.Tables {
		if seen[name] {
			return fmt.Errorf("catalog: view %q joins table %q twice (self-joins unsupported)", v.Name, name)
		}
		seen[name] = true
		t, err := c.Table(name)
		if err != nil {
			return fmt.Errorf("catalog: view %q: %w", v.Name, err)
		}
		full = full.Concat(t.Schema.Prefixed(name))
	}
	for _, j := range v.Joins {
		for _, side := range []struct{ t, col string }{{j.Left, j.LeftCol}, {j.Right, j.RightCol}} {
			if !seen[side.t] {
				return fmt.Errorf("catalog: view %q: join references table %q not in FROM", v.Name, side.t)
			}
			t, _ := c.Table(side.t)
			if t.Schema.ColIndex(side.col) < 0 {
				return fmt.Errorf("catalog: view %q: join column %s.%s unknown", v.Name, side.t, side.col)
			}
		}
		if j.Left == j.Right {
			return fmt.Errorf("catalog: view %q: join predicate within one table", v.Name)
		}
	}
	if err := checkConnected(v); err != nil {
		return fmt.Errorf("catalog: view %q: %w", v.Name, err)
	}
	if len(v.Out) == 0 {
		if v.IsAggregate() {
			return fmt.Errorf("catalog: aggregate view %q needs an explicit GROUP BY column list", v.Name)
		}
		for _, name := range v.Tables {
			t, _ := c.Table(name)
			for _, col := range t.Schema.Names() {
				v.Out = append(v.Out, OutCol{Table: name, Col: col})
			}
		}
	}
	names := make([]string, len(v.Out))
	for i, o := range v.Out {
		if !seen[o.Table] {
			return fmt.Errorf("catalog: view %q: output references table %q not in FROM", v.Name, o.Table)
		}
		names[i] = o.Qualified()
	}
	schema, err := full.Project(names)
	if err != nil {
		return fmt.Errorf("catalog: view %q: %w", v.Name, err)
	}
	if v.IsAggregate() {
		hasCount := false
		for _, a := range v.Aggs {
			switch a.Func {
			case "count":
				if a.Table != "" || a.Col != "" {
					return fmt.Errorf("catalog: view %q: count(*) takes no column", v.Name)
				}
				hasCount = true
			case "sum":
				if !seen[a.Table] {
					return fmt.Errorf("catalog: view %q: sum over table %q not in FROM", v.Name, a.Table)
				}
				t, _ := c.Table(a.Table)
				ci := t.Schema.ColIndex(a.Col)
				if ci < 0 {
					return fmt.Errorf("catalog: view %q: sum column %s.%s unknown", v.Name, a.Table, a.Col)
				}
				if k := t.Schema.Cols[ci].Kind; k != types.KindInt && k != types.KindFloat {
					return fmt.Errorf("catalog: view %q: sum over non-numeric column %s.%s", v.Name, a.Table, a.Col)
				}
			default:
				return fmt.Errorf("catalog: view %q: aggregate %q is not self-maintainable (only count and sum are)", v.Name, a.Func)
			}
		}
		if !hasCount {
			// Maintenance needs group cardinality to delete empty groups.
			v.Aggs = append(v.Aggs, AggSpec{Func: "count"})
		}
		aggSchema := &types.Schema{}
		aggSchema.Cols = append(aggSchema.Cols, schema.Cols...)
		for _, a := range v.Aggs {
			kind := types.KindInt
			if a.Func == "sum" {
				t, _ := c.Table(a.Table)
				kind = t.Schema.Cols[t.Schema.MustColIndex(a.Col)].Kind
			}
			aggSchema.Cols = append(aggSchema.Cols, types.Column{Name: a.Label(), Kind: kind})
		}
		schema = aggSchema
	}
	v.Schema = schema
	if v.PartitionTable == "" {
		// Default: partition the view on its first output column.
		v.PartitionTable, v.PartitionCol = v.Out[0].Table, v.Out[0].Col
	}
	if schema.ColIndex(v.PartitionQualified()) < 0 {
		return fmt.Errorf("catalog: view %q: partition column %s not in output", v.Name, v.PartitionQualified())
	}
	for table := range v.Overrides {
		if !seen[table] {
			return fmt.Errorf("catalog: view %q: strategy override for table %q not in FROM", v.Name, table)
		}
	}
	c.views[v.Name] = v
	c.bump()
	return nil
}

// checkConnected verifies the join graph spans all the view's tables.
func checkConnected(v *View) error {
	if len(v.Joins) == 0 {
		return fmt.Errorf("cartesian products unsupported: no join predicates")
	}
	reached := map[string]bool{v.Tables[0]: true}
	for changed := true; changed; {
		changed = false
		for _, j := range v.Joins {
			if reached[j.Left] != reached[j.Right] {
				reached[j.Left], reached[j.Right] = true, true
				changed = true
			}
		}
	}
	for _, t := range v.Tables {
		if !reached[t] {
			return fmt.Errorf("join graph does not reach table %q", t)
		}
	}
	return nil
}

// View returns the named view.
func (c *Catalog) View(name string) (*View, error) {
	v, ok := c.views[name]
	if !ok {
		return nil, fmt.Errorf("catalog: no view %q", name)
	}
	return v, nil
}

// Views returns all view names, sorted.
func (c *Catalog) Views() []string { return sortedKeys(c.views) }

// ViewsOn returns the views that join the named base table, by name order.
func (c *Catalog) ViewsOn(table string) []*View {
	var out []*View
	for _, name := range sortedKeys(c.views) {
		if v := c.views[name]; v.HasTable(table) {
			out = append(out, v)
		}
	}
	return out
}

// DropView removes a view from the catalog.
func (c *Catalog) DropView(name string) error {
	if _, ok := c.views[name]; !ok {
		return fmt.Errorf("catalog: no view %q", name)
	}
	delete(c.views, name)
	c.bump()
	return nil
}

// DropTable removes a base table; it must not be referenced by any view,
// auxiliary relation or global index (the cluster drops those first).
func (c *Catalog) DropTable(name string) error {
	if _, ok := c.tables[name]; !ok {
		return fmt.Errorf("catalog: no table %q", name)
	}
	if vs := c.ViewsOn(name); len(vs) > 0 {
		return fmt.Errorf("catalog: table %q is referenced by view %q", name, vs[0].Name)
	}
	if ars := c.AuxRelsFor(name); len(ars) > 0 {
		return fmt.Errorf("catalog: table %q still has auxiliary relation %q", name, ars[0].Name)
	}
	if gis := c.GlobalIndexesFor(name); len(gis) > 0 {
		return fmt.Errorf("catalog: table %q still has global index %q", name, gis[0].Name)
	}
	delete(c.tables, name)
	c.bump()
	return nil
}

// DropAuxRel removes an auxiliary relation from the catalog, along with
// any view references recorded against it.
func (c *Catalog) DropAuxRel(name string) error {
	if _, ok := c.auxrels[name]; !ok {
		return fmt.Errorf("catalog: no auxiliary relation %q", name)
	}
	delete(c.auxrels, name)
	delete(c.arRefs, name)
	c.bump()
	return nil
}

// RefAuxRel records that the named view's maintenance uses the AR — either
// because the AR was just materialized for it or because view creation
// deduplicated onto an existing covering AR.
func (c *Catalog) RefAuxRel(ar, view string) {
	refs, ok := c.arRefs[ar]
	if !ok {
		refs = map[string]bool{}
		c.arRefs[ar] = refs
	}
	refs[view] = true
}

// AuxRelRefs returns the names of the views referencing the AR, sorted.
func (c *Catalog) AuxRelRefs(ar string) []string {
	refs := c.arRefs[ar]
	if len(refs) == 0 {
		return nil
	}
	out := make([]string, 0, len(refs))
	for v := range refs {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// UnrefViewAuxRels removes the dropped view from every AR's reference set
// and returns the auto-created ARs left with no referencing view, sorted —
// the garbage a DROP VIEW may now collect. User-created ARs are never
// returned, however many views came and went.
func (c *Catalog) UnrefViewAuxRels(view string) []string {
	var orphaned []string
	for name, refs := range c.arRefs {
		if !refs[view] {
			continue
		}
		delete(refs, view)
		if len(refs) > 0 {
			continue
		}
		delete(c.arRefs, name)
		if a, ok := c.auxrels[name]; ok && a.AutoCreated {
			orphaned = append(orphaned, name)
		}
	}
	sort.Strings(orphaned)
	return orphaned
}

// DropGlobalIndex removes a global index from the catalog.
func (c *Catalog) DropGlobalIndex(name string) error {
	if _, ok := c.gindexes[name]; !ok {
		return fmt.Errorf("catalog: no global index %q", name)
	}
	delete(c.gindexes, name)
	c.bump()
	return nil
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
