package experiments

// GoldenCase is one measured experiment grid with a pinned, small axis set,
// used for trace-equivalence checking: the rendered grid must stay
// byte-identical across refactors of the write path and across transports.
// The checked-in traces live in testdata/seed and were generated from the
// original hand-rolled executor (go run ./internal/experiments/goldengen).
type GoldenCase struct {
	Name string
	Run  func() (Grid, error)
}

// GoldenCases lists every measured experiment grid (the paper's fig7–fig14
// and Table 1, plus the repo's extensions) at the axes the seed traces were
// captured with. NetworkSensitivity is excluded: it reports wall-clock µs.
func GoldenCases() []GoldenCase {
	return []GoldenCase{
		{"table1", func() (Grid, error) { return Table1(400), nil }},
		{"fig7", func() (Grid, error) { return Fig7Measured([]int{1, 2, 8}) }},
		{"fig8", func() (Grid, error) { return Fig8Measured(8, []int{1, 8}) }},
		{"fig9", func() (Grid, error) { return Fig9Measured([]int{2, 8}) }},
		{"fig10", func() (Grid, error) { return Fig10Measured([]int{2, 4}) }},
		{"fig11", func() (Grid, error) { return Fig11Measured(8, []int{1, 100}) }},
		{"fig12", func() (Grid, error) { return Fig12Model(), nil }},
		{"fig13", func() (Grid, error) { return Fig13Predicted([]int{2, 4, 8}), nil }},
		{"fig14", func() (Grid, error) {
			rs, err := Fig14Measured([]int{2}, 400, 16)
			if err != nil {
				return Grid{}, err
			}
			return Fig14Grid(rs), nil
		}},
		{"storage", func() (Grid, error) { return StorageTradeoff(4, PaperN) }},
		{"buffering", func() (Grid, error) { return BufferingEffect(4, 500, 200) }},
		{"skew", func() (Grid, error) { return SkewSensitivity(4, 128, 1.5) }},
		{"durability", func() (Grid, error) { return Durability(4, 50, 64) }},
		{"faults", func() (Grid, error) { return FaultOverhead(4, 50, 0.02, 1) }},
	}
}
