package experiments

import (
	"os"
	"path/filepath"
	"testing"

	"joinview/internal/cluster"
)

// TestTransportEquivalence runs every measured experiment grid on both
// transports and asserts each render — every tw-ios, maxnode-ios and msgs
// cell — is byte-identical to the checked-in seed trace
// (testdata/seed/*.golden, captured from the original hand-rolled
// executor before the compiled-plan pipeline replaced it).
//
// Two properties at once: the compiled pipeline reproduces the seed's
// traces exactly, and the logical meters do not notice whether per-node
// calls were dispatched serially on one goroutine or gathered from a
// worker pool, nor whether global-index traffic traveled as per-entry
// messages or batched envelopes.
//
// NetworkSensitivity is excluded: it reports wall-clock µs and already
// requires the channel transport. Axes are kept small; jvbench runs the
// full sweeps.
func TestTransportEquivalence(t *testing.T) {
	for _, tc := range GoldenCases() {
		t.Run(tc.Name, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", "seed", tc.Name+".golden"))
			if err != nil {
				t.Fatalf("seed trace: %v", err)
			}
			ConfigHook = nil
			direct, err := tc.Run()
			if err != nil {
				t.Fatalf("direct: %v", err)
			}
			if got := direct.Render(); got != string(want) {
				t.Errorf("direct transport diverges from seed trace\nseed:\n%s\ngot:\n%s", want, got)
			}
			ConfigHook = func(cfg *cluster.Config) { cfg.UseChannels = true }
			defer func() { ConfigHook = nil }()
			chann, err := tc.Run()
			if err != nil {
				t.Fatalf("channels: %v", err)
			}
			if got := chann.Render(); got != string(want) {
				t.Errorf("channel transport diverges from seed trace\nseed:\n%s\ngot:\n%s", want, got)
			}
		})
	}
}

// TestPlanCacheUnderGoldenWorkload pins the cache-effectiveness claim the
// traces alone cannot show: rerunning a measured grid with the plan cache
// disabled (per-statement compilation, the seed's planning model) must
// still reproduce the same bytes — caching is a pure optimization.
func TestPlanCacheUnderGoldenWorkload(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "seed", "fig7.golden"))
	if err != nil {
		t.Fatalf("seed trace: %v", err)
	}
	ConfigHook = func(cfg *cluster.Config) { cfg.DisablePlanCache = true }
	defer func() { ConfigHook = nil }()
	g, err := Fig7Measured([]int{1, 2, 8})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Render(); got != string(want) {
		t.Errorf("uncached pipeline diverges from seed trace\nseed:\n%s\ngot:\n%s", want, got)
	}
}
