package experiments

import (
	"testing"

	"joinview/internal/cluster"
)

// TestTransportEquivalence reruns the measured experiments on the channel
// transport with the scatter-gather dispatcher and asserts the rendered
// grids — every tw-ios, maxnode-ios and msgs cell — are byte-identical to
// the Direct-transport runs. The logical meters must not notice whether
// per-node calls were dispatched serially on one goroutine or gathered
// from a worker pool, nor whether global-index traffic traveled as
// per-entry messages or batched envelopes.
//
// NetworkSensitivity is excluded: it reports wall-clock µs and already
// requires the channel transport. Axes are kept small; jvbench runs the
// full sweeps.
func TestTransportEquivalence(t *testing.T) {
	cases := []struct {
		name string
		run  func() (Grid, error)
	}{
		{"fig7", func() (Grid, error) { return Fig7Measured([]int{1, 2, 8}) }},
		{"fig8", func() (Grid, error) { return Fig8Measured(8, []int{1, 8}) }},
		{"fig9", func() (Grid, error) { return Fig9Measured([]int{2, 8}) }},
		{"fig10", func() (Grid, error) { return Fig10Measured([]int{2, 4}) }},
		{"fig11", func() (Grid, error) { return Fig11Measured(8, []int{1, 100}) }},
		{"fig14", func() (Grid, error) {
			rs, err := Fig14Measured([]int{2}, 400, 16)
			if err != nil {
				return Grid{}, err
			}
			return Fig14Grid(rs), nil
		}},
		{"storage", func() (Grid, error) { return StorageTradeoff(4, PaperN) }},
		{"buffering", func() (Grid, error) { return BufferingEffect(4, 500, 200) }},
		{"skew", func() (Grid, error) { return SkewSensitivity(4, 128, 1.5) }},
		{"durability", func() (Grid, error) { return Durability(4, 50, 64) }},
		{"faults", func() (Grid, error) { return FaultOverhead(4, 50, 0.02, 1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ConfigHook = nil
			direct, err := tc.run()
			if err != nil {
				t.Fatalf("direct: %v", err)
			}
			ConfigHook = func(cfg *cluster.Config) { cfg.UseChannels = true }
			defer func() { ConfigHook = nil }()
			chann, err := tc.run()
			if err != nil {
				t.Fatalf("channels: %v", err)
			}
			if d, c := direct.Render(), chann.Render(); d != c {
				t.Errorf("traces diverge between transports\ndirect:\n%s\nchannels:\n%s", d, c)
			}
		})
	}
}
