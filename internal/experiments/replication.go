package experiments

import (
	"errors"
	"fmt"
	"time"

	"joinview/internal/catalog"
	"joinview/internal/cluster"
	"joinview/internal/fault"
	"joinview/internal/node"
	"joinview/internal/types"
)

// The replication experiment prices the availability extension: K-way
// synchronous fragment replication buys crash transparency at mirrored-
// write amplification. Each K in {1, 2, 3} runs the adaptive schema
// (a ⋈ b, advisor-chosen strategy) on the channel transport with the
// simulated interconnect:
//
//   - a healthy measured insert stream prices the write path — total
//     workload, interconnect messages, and the mirror deliveries the
//     replication layer adds (zero at K=1, the paper's model);
//   - one node is then crashed under continuing load. At K=1 every
//     statement and read touching the lost slots fails (ErrDegraded,
//     ErrPartial); at K>=2 the first statement to notice fails over
//     internally and the stream sees zero errors while reads stay
//     complete. The first post-crash read carries the failover (slot
//     promotion); the steady reads after it show the healed cost;
//   - the node restarts and ReplicateRepair (Recover at K=1) restores
//     full strength, priced as wall time and slot-replicas recopied.

// ReplicationResult is one replication factor's measurement.
type ReplicationResult struct {
	L int
	K int
	// Healthy measured stream.
	Statements int
	Tuples     int
	TWIOs      int64
	Messages   int64
	// MirrorDeliveries/MirroredTuples are the replication layer's own
	// write fan-out during the healthy stream.
	MirrorDeliveries int64
	MirroredTuples   int64
	// WriteAmpIOs and WriteAmpMsgs are this K's healthy-stream cost
	// relative to the K=1 baseline of the same run.
	WriteAmpIOs  float64
	WriteAmpMsgs float64
	// Crash window: statements issued with one node freshly crashed.
	CrashStmtOK  int
	CrashStmtErr int
	// CompleteReads reports whether a full-table read with the node down
	// returned every surviving row (never ErrPartial). FailoverReadMicros
	// prices the first read after the crash — at K>=2 it includes the slot
	// promotion; SteadyReadMicros is the mean of the eight reads after it.
	CompleteReads      bool
	FailoverReadMicros int64
	SteadyReadMicros   int64
	PromotedSlots      int64
	// Repair: wall time to restore full strength after the node restarts
	// (ReplicateRepair at K>=2, Recover at K=1) and the slot-replicas the
	// repair recopied.
	RepairMillis  int64
	RepairedSlots int64
}

// Replication runs the write-amplification / availability comparison at
// K = 1, 2, 3 on an l-node cluster, statements insert statements per
// healthy stream.
func Replication(l, statements int) ([]ReplicationResult, error) {
	var out []ReplicationResult
	var baseIOs, baseMsgs int64
	for _, k := range []int{1, 2, 3} {
		r, err := runReplication(l, k, statements)
		if err != nil {
			return nil, fmt.Errorf("L=%d K=%d: %w", l, k, err)
		}
		if k == 1 {
			baseIOs, baseMsgs = r.TWIOs, r.Messages
		}
		if baseIOs > 0 {
			r.WriteAmpIOs = float64(r.TWIOs) / float64(baseIOs)
		}
		if baseMsgs > 0 {
			r.WriteAmpMsgs = float64(r.Messages) / float64(baseMsgs)
		}
		out = append(out, r)
	}
	return out, nil
}

func runReplication(l, k, statements int) (ReplicationResult, error) {
	inj := fault.New(fault.Config{Seed: 11})
	c, err := newCluster(cluster.Config{
		Nodes: l, Algo: node.AlgoIndex, UseChannels: true,
		NetLatency: DefaultNetLatency,
		Faults:     inj, RetryAttempts: 3,
		ReplicationFactor: k,
	})
	if err != nil {
		return ReplicationResult{}, err
	}
	defer c.Close()
	if err := loadAdaptive(c, catalog.StrategyAuto); err != nil {
		return ReplicationResult{}, err
	}

	res := ReplicationResult{L: l, K: k, Statements: statements}
	nextID := int64(3_000_000)
	insert := func() error {
		rows := make([]types.Tuple, 4)
		for j := range rows {
			nextID++
			rows[j] = types.Tuple{
				types.Int(nextID),
				types.Int(nextID % adaptiveJoinValues),
				types.Int(nextID % 97),
			}
		}
		return c.Insert("a", rows)
	}

	// Healthy measured stream.
	c.ResetMetrics()
	for i := 0; i < statements; i++ {
		if err := insert(); err != nil {
			return res, err
		}
		res.Tuples += 4
	}
	m := c.Metrics()
	res.TWIOs = m.TotalIOs()
	res.Messages = m.Net.Messages
	res.MirrorDeliveries = m.Repl.Mirrors
	res.MirroredTuples = m.Repl.MirroredTuples

	// Crash one slot owner under continuing load.
	victim := c.Topology().SlotOwner[0]
	inj.Crash(victim)
	for i := 0; i < statements/2; i++ {
		if err := insert(); err != nil {
			res.CrashStmtErr++
		} else {
			res.CrashStmtOK++
		}
	}
	readOnce := func() (time.Duration, error) {
		t0 := time.Now()
		_, err := c.TableRows("a")
		return time.Since(t0), err
	}
	d, rerr := readOnce()
	res.FailoverReadMicros = d.Microseconds()
	res.CompleteReads = rerr == nil
	if rerr != nil && !errors.Is(rerr, cluster.ErrPartial) {
		return res, rerr
	}
	var steady time.Duration
	for i := 0; i < 8; i++ {
		d, rerr := readOnce()
		if rerr != nil && !errors.Is(rerr, cluster.ErrPartial) {
			return res, rerr
		}
		steady += d
	}
	res.SteadyReadMicros = (steady / 8).Microseconds()
	res.PromotedSlots = c.Metrics().Repl.PromotedSlots

	// Restart and restore full strength.
	inj.Restart(victim)
	t0 := time.Now()
	if k > 1 {
		err = c.ReplicateRepair()
	} else {
		err = c.Recover(victim)
	}
	if err != nil {
		return res, err
	}
	res.RepairMillis = time.Since(t0).Milliseconds()
	res.RepairedSlots = c.Metrics().Repl.RepairedSlots
	if err := c.CheckViewConsistency("jv"); err != nil {
		return res, fmt.Errorf("view inconsistent after repair: %w", err)
	}
	return res, nil
}

// ReplicationGrid formats the results.
func ReplicationGrid(rs []ReplicationResult) Grid {
	g := Grid{
		Title: "Replication (extension): write amplification vs crash transparency",
		Header: []string{"L", "K", "stmts", "tw-ios", "msgs", "amp-ios", "amp-msgs",
			"mirrored", "crash-ok", "crash-err", "complete", "failover-read", "steady-read", "repair"},
	}
	for _, r := range rs {
		g.Rows = append(g.Rows, []string{
			fmt.Sprintf("%d", r.L),
			fmt.Sprintf("%d", r.K),
			fmt.Sprintf("%d", r.Statements),
			fmt.Sprintf("%d", r.TWIOs),
			fmt.Sprintf("%d", r.Messages),
			fmt.Sprintf("%.2f", r.WriteAmpIOs),
			fmt.Sprintf("%.2f", r.WriteAmpMsgs),
			fmt.Sprintf("%d", r.MirroredTuples),
			fmt.Sprintf("%d", r.CrashStmtOK),
			fmt.Sprintf("%d", r.CrashStmtErr),
			fmt.Sprintf("%t", r.CompleteReads),
			fmt.Sprintf("%dµs", r.FailoverReadMicros),
			fmt.Sprintf("%dµs", r.SteadyReadMicros),
			fmt.Sprintf("%dms", r.RepairMillis),
		})
	}
	return g
}
