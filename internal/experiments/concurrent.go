package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"joinview/internal/catalog"
	"joinview/internal/cluster"
	"joinview/internal/node"
	"joinview/internal/stats"
	"joinview/internal/types"
)

// The concurrent-sessions experiment measures what the table-level lock
// manager and the scatter-gather dispatcher buy once several sessions
// issue statements at once. Each session owns an independent schema
// (a_i ⋈ b_i = jv_i), so its statements claim disjoint locks; the serial
// baseline (Config.SerialDML) still funnels every statement through the
// global lock, which is exactly the seed's execution model.

// ConcurrentResult is one row of the experiment: one (L, strategy) cell
// measured under both execution models.
type ConcurrentResult struct {
	L        int
	Sessions int
	Strategy string
	// SerialStmtsPerSec and ParallelStmtsPerSec are whole-cluster
	// statement throughputs with SerialDML on and off.
	SerialStmtsPerSec   float64
	ParallelStmtsPerSec float64
	Speedup             float64
	// MsgsPerStmt and AllocsPerStmt are per-statement logical messages
	// and heap allocations of the parallel run.
	MsgsPerStmt   float64
	AllocsPerStmt float64
	// Plan-cache counters of the parallel run: with per-session tables and
	// no DDL, every statement after each table's first compilation should
	// reuse the cached maintenance pipeline.
	PlanCacheHits    int64
	PlanCacheMisses  int64
	PlanCacheHitRate float64
	// Stages is the per-stage page/message breakdown of the serial run,
	// where one-statement-at-a-time dispatch attributes I/O to pipeline
	// stages exactly.
	Stages map[string]stats.StageCounters
}

// ConcurrentStrategies are the maintenance methods the experiment sweeps.
func ConcurrentStrategies() []struct {
	Label    string
	Strategy catalog.Strategy
} {
	return []struct {
		Label    string
		Strategy catalog.Strategy
	}{
		{"auxiliary relation", catalog.StrategyAuxRel},
		{"naive", catalog.StrategyNaive},
		{"global index", catalog.StrategyGlobalIndex},
	}
}

// DefaultNetLatency is the simulated interconnect latency the experiment
// runs under: the paper's setting is a network-bound parallel RDBMS, so
// statement latency is dominated by message round-trips, which is what
// the scatter-gather dispatcher overlaps. 50µs is a conservative
// datacenter RTT.
const DefaultNetLatency = 50 * time.Microsecond

// ConcurrentSessions runs the experiment over the node counts in ls:
// sessions goroutines, each issuing stmtsPerSession inserts of
// rowsPerStmt tuples into its own base table, under the serial and the
// parallel execution model in turn.
func ConcurrentSessions(ls []int, sessions, stmtsPerSession, rowsPerStmt int, latency time.Duration) ([]ConcurrentResult, error) {
	var out []ConcurrentResult
	for _, l := range ls {
		for _, st := range ConcurrentStrategies() {
			serial, _, _, serialPipe, err := runConcurrent(l, sessions, stmtsPerSession, rowsPerStmt, st.Strategy, latency, true)
			if err != nil {
				return nil, fmt.Errorf("L=%d %s serial: %w", l, st.Label, err)
			}
			par, msgs, allocs, parPipe, err := runConcurrent(l, sessions, stmtsPerSession, rowsPerStmt, st.Strategy, latency, false)
			if err != nil {
				return nil, fmt.Errorf("L=%d %s parallel: %w", l, st.Label, err)
			}
			out = append(out, ConcurrentResult{
				L: l, Sessions: sessions, Strategy: st.Label,
				SerialStmtsPerSec:   serial,
				ParallelStmtsPerSec: par,
				Speedup:             par / serial,
				MsgsPerStmt:         msgs,
				AllocsPerStmt:       allocs,
				PlanCacheHits:       parPipe.PlanCacheHits,
				PlanCacheMisses:     parPipe.PlanCacheMisses,
				PlanCacheHitRate:    parPipe.HitRate(),
				Stages:              serialPipe.Stages,
			})
		}
	}
	return out, nil
}

// runConcurrent measures one cell: statements/sec across all sessions,
// plus per-statement messages and allocations.
func runConcurrent(l, sessions, stmts, rows int, strategy catalog.Strategy, latency time.Duration, serialDML bool) (stmtsPerSec, msgsPerStmt, allocsPerStmt float64, pipe stats.PipelineSnapshot, err error) {
	c, err := cluster.New(cluster.Config{
		Nodes: l, Algo: node.AlgoIndex, UseChannels: true, SerialDML: serialDML,
		NetLatency: latency,
	})
	if err != nil {
		return 0, 0, 0, pipe, err
	}
	defer c.Close()
	if err := LoadSessionSchemas(c, sessions, strategy); err != nil {
		return 0, 0, 0, pipe, err
	}
	c.ResetMetrics()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			table := fmt.Sprintf("a%d", s)
			for j := 0; j < stmts; j++ {
				if e := c.Insert(table, SessionInserts(s, j, rows)); e != nil {
					errs[s] = e
					return
				}
			}
		}(s)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	runtime.ReadMemStats(&ms1)
	for _, e := range errs {
		if e != nil {
			return 0, 0, 0, pipe, e
		}
	}
	total := float64(sessions * stmts)
	m := c.Metrics()
	return total / elapsed,
		float64(m.Net.Messages) / total,
		float64(ms1.Mallocs-ms0.Mallocs) / total,
		m.Pipeline,
		nil
}

// Session-schema parameters: small enough that setup stays fast, large
// enough that every insert statement does real maintenance work (each
// join value matches sessionFanout B tuples).
const (
	sessionJoinValues = 64
	sessionFanout     = 4
)

// LoadSessionSchemas creates sessions independent two-relation schemas
// a_i(id,c,payload) ⋈ b_i(id,d,payload) = jv_i, each b_i pre-loaded, so
// concurrent sessions hold disjoint lock claims.
func LoadSessionSchemas(c *cluster.Cluster, sessions int, strategy catalog.Strategy) error {
	for i := 0; i < sessions; i++ {
		an, bn, vn := fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i), fmt.Sprintf("jv%d", i)
		if err := c.CreateTable(&catalog.Table{
			Name: an,
			Schema: types.NewSchema(
				types.Column{Name: "id", Kind: types.KindInt},
				types.Column{Name: "c", Kind: types.KindInt},
				types.Column{Name: "payload", Kind: types.KindInt},
			),
			PartitionCol: "id",
		}); err != nil {
			return err
		}
		if err := c.CreateTable(&catalog.Table{
			Name: bn,
			Schema: types.NewSchema(
				types.Column{Name: "id", Kind: types.KindInt},
				types.Column{Name: "d", Kind: types.KindInt},
				types.Column{Name: "payload", Kind: types.KindInt},
			),
			PartitionCol: "id",
			Indexes:      []catalog.Index{{Name: "ix_" + bn + "_d", Col: "d"}},
		}); err != nil {
			return err
		}
		rows := make([]types.Tuple, 0, sessionJoinValues*sessionFanout)
		id := int64(0)
		for v := int64(0); v < sessionJoinValues; v++ {
			for f := 0; f < sessionFanout; f++ {
				id++
				rows = append(rows, types.Tuple{types.Int(id), types.Int(v), types.Int(id % 97)})
			}
		}
		if err := c.Insert(bn, rows); err != nil {
			return err
		}
		if err := c.RefreshStats(bn); err != nil {
			return err
		}
		if err := c.CreateView(&catalog.View{
			Name:   vn,
			Tables: []string{an, bn},
			Joins:  []catalog.JoinPred{{Left: an, LeftCol: "c", Right: bn, RightCol: "d"}},
			Out: []catalog.OutCol{
				{Table: an, Col: "id"}, {Table: an, Col: "c"},
				{Table: bn, Col: "id"}, {Table: bn, Col: "payload"},
			},
			PartitionTable: an, PartitionCol: "id",
			Strategy: strategy,
		}); err != nil {
			return err
		}
	}
	return nil
}

// SessionInserts builds the rows statement j of session s inserts:
// cluster-unique ids, join values cycling through b's domain.
func SessionInserts(s, j, rows int) []types.Tuple {
	out := make([]types.Tuple, rows)
	base := int64(1_000_000*(s+1) + j*rows)
	for r := 0; r < rows; r++ {
		out[r] = types.Tuple{
			types.Int(base + int64(r)),
			types.Int(int64(j*rows+r) % sessionJoinValues),
			types.Int(int64(r)),
		}
	}
	return out
}

// ConcurrentSessionsGrid formats the results.
func ConcurrentSessionsGrid(rs []ConcurrentResult) Grid {
	g := Grid{
		Title: "Concurrent sessions (extension): statement throughput, serial vs parallel dispatch",
		Header: []string{"L", "sessions", "method", "serial stmts/s", "parallel stmts/s",
			"speedup", "msgs/stmt", "allocs/stmt", "cache hit%"},
	}
	for _, r := range rs {
		g.Rows = append(g.Rows, []string{
			fmt.Sprintf("%d", r.L),
			fmt.Sprintf("%d", r.Sessions),
			r.Strategy,
			fmt.Sprintf("%.0f", r.SerialStmtsPerSec),
			fmt.Sprintf("%.0f", r.ParallelStmtsPerSec),
			fmt.Sprintf("%.2fx", r.Speedup),
			fmt.Sprintf("%.1f", r.MsgsPerStmt),
			fmt.Sprintf("%.0f", r.AllocsPerStmt),
			fmt.Sprintf("%.1f", 100*r.PlanCacheHitRate),
		})
	}
	return g
}
