// Package experiments regenerates every table and figure of the paper's
// evaluation: the analytical-model curves of Figures 7–12, the Figure 13
// predictions, and the measured counterparts run on the cluster simulator
// (including Figure 14's measured maintenance cost and Table 1's data
// set). cmd/jvbench prints these as the rows/series the paper plots, and
// the root benchmarks wrap them in testing.B.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
	"time"

	"joinview/internal/catalog"
	"joinview/internal/cluster"
	"joinview/internal/cost"
	"joinview/internal/fault"
	"joinview/internal/node"
	"joinview/internal/types"
	"joinview/internal/workload"
)

// Paper parameters (§3.2): |B| = 6,400 pages, M = 10 pages, N = 10,
// K = min(N, L). The measured runs scale |B| via PageRows=10 (6,400 rows =
// 640 pages by default) — shapes, not absolute numbers, are the target.
const (
	PaperBPages   = 6400
	PaperMemPages = 10
	PaperN        = 10
)

// DefaultLs is the node-count axis the paper sweeps.
var DefaultLs = []int{1, 2, 4, 8, 16, 32, 64, 128}

// ConfigHook, when non-nil, adjusts every cluster configuration an
// experiment builds, just before cluster.New. The transport-equivalence
// tests use it to rerun the whole suite on the channel transport with
// parallel dispatch and assert the meter traces match the Direct runs.
var ConfigHook func(*cluster.Config)

// newCluster builds an experiment cluster, applying ConfigHook.
func newCluster(cfg cluster.Config) (*cluster.Cluster, error) {
	if ConfigHook != nil {
		ConfigHook(&cfg)
	}
	return cluster.New(cfg)
}

// Grid is a printable result table.
type Grid struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Render formats the grid as aligned text.
func (g Grid) Render() string {
	var sb strings.Builder
	sb.WriteString(g.Title)
	sb.WriteByte('\n')
	widths := make([]int, len(g.Header))
	for i, h := range g.Header {
		widths[i] = len(h)
	}
	for _, row := range g.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(fmt.Sprintf("%*s", widths[i], cell))
		}
		sb.WriteByte('\n')
	}
	line(g.Header)
	for _, row := range g.Rows {
		line(row)
	}
	return sb.String()
}

// WriteCSV writes the grid as CSV (header row first; the title goes into a
// leading comment line) for external plotting.
func (g Grid) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s\n", g.Title); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(g.Header); err != nil {
		return err
	}
	for _, row := range g.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Slug derives a filesystem-friendly name from the grid title.
func (g Grid) Slug() string {
	var sb strings.Builder
	for _, r := range strings.ToLower(g.Title) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			sb.WriteRune(r)
		case r == ' ' || r == '-' || r == '_':
			sb.WriteByte('-')
		case r == ':' || r == '(' || r == ')':
			// drop
		default:
			// drop anything else
		}
		if sb.Len() > 48 {
			break
		}
	}
	return strings.Trim(sb.String(), "-")
}

// FromSeries converts a cost.Series into a grid (X column + one column per
// method).
func FromSeries(s cost.Series) Grid {
	g := Grid{Title: s.Title, Header: []string{s.XName}}
	for _, l := range s.Lines {
		g.Header = append(g.Header, l.Label)
	}
	for i, x := range s.X {
		row := []string{fmt.Sprintf("%d", x)}
		for _, l := range s.Lines {
			row = append(row, fmtF(l.Y[i]))
		}
		g.Rows = append(g.Rows, row)
	}
	return g
}

func fmtF(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.2f", v)
}

// Table1 reports the test data set at a given scale divisor (1 = the
// paper's full 0.15M/1.5M/6M rows).
func Table1(scaleDiv int) Grid {
	if scaleDiv <= 0 {
		scaleDiv = 100
	}
	spec := workload.TPCR{Customers: 150000 / scaleDiv}.Defaulted()
	return Grid{
		Title:  fmt.Sprintf("Table 1: test data set (scale 1/%d of the paper's)", scaleDiv),
		Header: []string{"relation", "tuples", "paper tuples"},
		Rows: [][]string{
			{"customer", fmt.Sprintf("%d", spec.Customers), "0.15M"},
			{"orders", fmt.Sprintf("%d", spec.Orders()), "1.5M"},
			{"lineitem", fmt.Sprintf("%d", spec.Lineitems()), "6M"},
		},
	}
}

// Fig7Model, ..., Fig12Model evaluate the analytical model with the
// paper's parameters.

// Fig7Model is TW vs L (model).
func Fig7Model() Grid {
	return FromSeries(cost.Fig7(DefaultLs, PaperN, PaperBPages, PaperMemPages))
}

// Fig8Model is TW vs N at L=32 (model).
func Fig8Model() Grid {
	ns := []int{1, 2, 4, 8, 16, 32, 64, 128}
	return FromSeries(cost.Fig8(32, ns, PaperBPages, PaperMemPages))
}

// Fig9Model is the 400-tuple index-join transaction (model).
func Fig9Model() Grid {
	return FromSeries(cost.Fig9(DefaultLs, 400, PaperN, PaperBPages, PaperMemPages))
}

// Fig10Model is the 6,500-tuple sort-merge transaction (model).
func Fig10Model() Grid {
	return FromSeries(cost.Fig10(DefaultLs, 6500, PaperN, PaperBPages, PaperMemPages))
}

// Fig11Model is response time vs transaction size at L=128 (model).
func Fig11Model() Grid {
	as := []int{1, 10, 50, 100, 400, 1000, 2000, 3000, 4000, 5000, 6000, 6500, 7000}
	return FromSeries(cost.Fig11(128, as, PaperN, PaperBPages, PaperMemPages))
}

// Fig12Model is the small-transaction detail at L=128 (model), exposing
// the ceil(A/L) steps.
func Fig12Model() Grid {
	var as []int
	for a := 1; a <= 300; a += 10 {
		as = append(as, a)
	}
	return FromSeries(cost.Fig12(128, as, PaperN, PaperBPages, PaperMemPages))
}

// Variant is one of the five method variants measured on the simulator.
type Variant struct {
	Label    string
	Strategy catalog.Strategy
	ClusterB bool // cluster B locally on the join attribute
}

// Variants in the paper's legend order.
func Variants() []Variant {
	return []Variant{
		{Label: "auxiliary relation", Strategy: catalog.StrategyAuxRel, ClusterB: false},
		{Label: "naive (non-clustered index)", Strategy: catalog.StrategyNaive, ClusterB: false},
		{Label: "naive (clustered index)", Strategy: catalog.StrategyNaive, ClusterB: true},
		{Label: "global index (dist non-clustered)", Strategy: catalog.StrategyGlobalIndex, ClusterB: false},
		{Label: "global index (dist clustered)", Strategy: catalog.StrategyGlobalIndex, ClusterB: true},
	}
}

// MeasuredTW runs one single-tuple insert on a fresh cluster and returns
// the maintenance-only total workload: all I/Os except the base-relation
// insert and the view writes, which §3.1 excludes ("the same updates must
// be performed ... in our model we omit the cost of these updates").
func MeasuredTW(l, fanout int, v Variant) (int64, error) {
	c, spec, err := loadTwoRel(l, fanout, v)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	delta := spec.AInserts(1, 1)
	before := c.Metrics()
	if err := c.Insert("a", delta); err != nil {
		return 0, err
	}
	d := c.Metrics().Sub(before)
	vrows, err := c.ViewRows("jv")
	if err != nil {
		return 0, err
	}
	n := int64(len(vrows))
	// Exclude: one base insert (2 I/Os) and n view inserts (2 I/Os each).
	return d.TotalIOs() - 2 - 2*n, nil
}

// MeasuredResponse runs one transaction of a tuples and returns the
// maximum per-node I/O count (the response-time proxy) and the total
// workload. algo pins the join algorithm as the paper's figures do.
func MeasuredResponse(l, fanout, a int, v Variant, algo node.Algo) (maxNode, total int64, err error) {
	c, spec, err := loadTwoRelAlgo(l, fanout, v, algo)
	if err != nil {
		return 0, 0, err
	}
	defer c.Close()
	delta := spec.AInserts(a, 1)
	before := c.Metrics()
	if err := c.Insert("a", delta); err != nil {
		return 0, 0, err
	}
	d := c.Metrics().Sub(before)
	return d.MaxNodeIOs(), d.TotalIOs(), nil
}

func loadTwoRel(l, fanout int, v Variant) (*cluster.Cluster, workload.TwoRel, error) {
	return loadTwoRelAlgo(l, fanout, v, node.AlgoIndex)
}

func loadTwoRelAlgo(l, fanout int, v Variant, algo node.Algo) (*cluster.Cluster, workload.TwoRel, error) {
	c, err := newCluster(cluster.Config{Nodes: l, Algo: algo})
	if err != nil {
		return nil, workload.TwoRel{}, err
	}
	spec := workload.TwoRel{JoinValues: 640, Fanout: fanout, ClusterBOnJoin: v.ClusterB}
	if err := spec.Load(c, v.Strategy); err != nil {
		c.Close()
		return nil, workload.TwoRel{}, err
	}
	return c, spec.Defaulted(), nil
}

// Fig7Measured reruns Figure 7 on the simulator: measured maintenance TW
// per single-tuple insert vs L, for all five variants.
func Fig7Measured(ls []int) (Grid, error) {
	g := Grid{
		Title:  "Fig 7 (measured): maintenance TW per single-tuple insert vs L",
		Header: []string{"L"},
	}
	for _, v := range Variants() {
		g.Header = append(g.Header, v.Label)
	}
	for _, l := range ls {
		row := []string{fmt.Sprintf("%d", l)}
		for _, v := range Variants() {
			tw, err := MeasuredTW(l, PaperN, v)
			if err != nil {
				return Grid{}, fmt.Errorf("L=%d %s: %w", l, v.Label, err)
			}
			row = append(row, fmt.Sprintf("%d", tw))
		}
		g.Rows = append(g.Rows, row)
	}
	return g, nil
}

// Fig8Measured reruns Figure 8: measured maintenance TW per single-tuple
// insert vs the join fan-out N, at fixed L.
func Fig8Measured(l int, ns []int) (Grid, error) {
	g := Grid{
		Title:  fmt.Sprintf("Fig 8 (measured): maintenance TW per single-tuple insert vs N (L=%d)", l),
		Header: []string{"N"},
	}
	for _, v := range Variants() {
		g.Header = append(g.Header, v.Label)
	}
	for _, n := range ns {
		row := []string{fmt.Sprintf("%d", n)}
		for _, v := range Variants() {
			tw, err := MeasuredTW(l, n, v)
			if err != nil {
				return Grid{}, fmt.Errorf("N=%d %s: %w", n, v.Label, err)
			}
			row = append(row, fmt.Sprintf("%d", tw))
		}
		g.Rows = append(g.Rows, row)
	}
	return g, nil
}

// Fig9Measured reruns Figure 9: response time (max per-node I/Os) of one
// 400-tuple transaction under forced index joins.
func Fig9Measured(ls []int) (Grid, error) {
	return measuredResponseGrid("Fig 9 (measured): 400-tuple transaction, index join", ls, 400, node.AlgoIndex)
}

// Fig10Measured reruns Figure 10: response of one 6,500-tuple transaction
// under forced sort-merge. The global-index method has no sort-merge path
// in the implementation (its lookups are inherently per-tuple), so its
// columns reflect index-style work, as noted in EXPERIMENTS.md.
func Fig10Measured(ls []int) (Grid, error) {
	return measuredResponseGrid("Fig 10 (measured): 6500-tuple transaction, sort-merge join", ls, 6500, node.AlgoSortMerge)
}

// Fig11Measured reruns Figure 11 at fixed L with the per-node automatic
// algorithm choice.
func Fig11Measured(l int, as []int) (Grid, error) {
	g := Grid{
		Title:  fmt.Sprintf("Fig 11 (measured): response (max per-node I/Os) vs tuples inserted (L=%d)", l),
		Header: []string{"A"},
	}
	for _, v := range Variants() {
		g.Header = append(g.Header, v.Label)
	}
	for _, a := range as {
		row := []string{fmt.Sprintf("%d", a)}
		for _, v := range Variants() {
			mx, _, err := MeasuredResponse(l, PaperN, a, v, node.AlgoAuto)
			if err != nil {
				return Grid{}, err
			}
			row = append(row, fmt.Sprintf("%d", mx))
		}
		g.Rows = append(g.Rows, row)
	}
	return g, nil
}

func measuredResponseGrid(title string, ls []int, a int, algo node.Algo) (Grid, error) {
	g := Grid{Title: title, Header: []string{"L"}}
	for _, v := range Variants() {
		g.Header = append(g.Header, v.Label)
	}
	for _, l := range ls {
		row := []string{fmt.Sprintf("%d", l)}
		for _, v := range Variants() {
			mx, _, err := MeasuredResponse(l, PaperN, a, v, algo)
			if err != nil {
				return Grid{}, fmt.Errorf("L=%d %s: %w", l, v.Label, err)
			}
			row = append(row, fmt.Sprintf("%d", mx))
		}
		g.Rows = append(g.Rows, row)
	}
	return g, nil
}

// Fig13Predicted reproduces Figure 13: the model's predicted maintenance
// time for views JV1 and JV2 when 128 tuples are inserted into customer,
// in the paper's unit of 128 I/Os. The naive method probes non-clustered
// secondary indexes (fan-outs 1 then 4 per Table 1); the AR method probes
// clustered auxiliary relations; customer needs no AR of its own.
func Fig13Predicted(ls []int) Grid {
	const a = 128
	jv1Naive := []cost.ChainStep{{Fanout: 1, Clustered: false}}
	jv1AR := []cost.ChainStep{{Fanout: 1, Clustered: true}}
	jv2Naive := []cost.ChainStep{{Fanout: 1, Clustered: false}, {Fanout: 4, Clustered: false}}
	jv2AR := []cost.ChainStep{{Fanout: 1, Clustered: true}, {Fanout: 4, Clustered: true}}
	g := Grid{
		Title:  "Fig 13: predicted view maintenance time (unit = 128 I/Os)",
		Header: []string{"L", "AR method JV1", "naive JV1", "AR method JV2", "naive JV2"},
	}
	for _, l := range ls {
		g.Rows = append(g.Rows, []string{
			fmt.Sprintf("%d", l),
			fmtF(cost.PredictAuxRel(l, a, jv1AR, 0) / a),
			fmtF(cost.PredictNaive(l, a, jv1Naive) / a),
			fmtF(cost.PredictAuxRel(l, a, jv2AR, 0) / a),
			fmtF(cost.PredictNaive(l, a, jv2Naive) / a),
		})
	}
	return g
}

// Fig14Result is one measured cell of Figure 14.
type Fig14Result struct {
	L          int
	View       string
	Method     catalog.Strategy
	JoinTuples int
	// MaxNodeIOs is the response-time proxy for the "compute the changes"
	// step the paper timed.
	MaxNodeIOs int64
	TotalIOs   int64
	Messages   int64
}

// Fig14Measured reruns the paper's Teradata experiment on the simulator:
// load the Table 1 data set (scaled), define JV1 and JV2, then measure the
// cost of computing the view changes for a 128-tuple insert into customer
// under the naive and AR methods — plus the global-index method Teradata
// could not run.
func Fig14Measured(ls []int, custScaleDiv int, a int) ([]Fig14Result, error) {
	if custScaleDiv <= 0 {
		custScaleDiv = 100
	}
	if a <= 0 {
		a = 128
	}
	spec := workload.TPCR{Customers: 150000 / custScaleDiv}.Defaulted()
	var out []Fig14Result
	for _, l := range ls {
		for _, method := range []catalog.Strategy{catalog.StrategyAuxRel, catalog.StrategyNaive, catalog.StrategyGlobalIndex} {
			c, err := newCluster(cluster.Config{Nodes: l})
			if err != nil {
				return nil, err
			}
			if err := spec.Load(c); err != nil {
				c.Close()
				return nil, err
			}
			for _, vd := range []*catalog.View{paperJV1(method), paperJV2(method)} {
				if err := c.CreateView(vd); err != nil {
					c.Close()
					return nil, err
				}
				delta, err := spec.NewCustomers(a)
				if err != nil {
					c.Close()
					return nil, err
				}
				nTuples, m, err := c.ComputeViewDeltaOnly(vd.Name, "customer", delta, method)
				if err != nil {
					c.Close()
					return nil, err
				}
				out = append(out, Fig14Result{
					L: l, View: vd.Name, Method: method,
					JoinTuples: nTuples,
					MaxNodeIOs: m.MaxNodeIOs(),
					TotalIOs:   m.TotalIOs(),
					Messages:   m.Net.Messages,
				})
			}
			c.Close()
		}
	}
	return out, nil
}

// Fig14Grid renders Fig14 results in the paper's layout (one column per
// view/method curve).
func Fig14Grid(results []Fig14Result) Grid {
	type key struct {
		view   string
		method catalog.Strategy
	}
	cols := []key{
		{"jv1", catalog.StrategyAuxRel}, {"jv1", catalog.StrategyNaive}, {"jv1", catalog.StrategyGlobalIndex},
		{"jv2", catalog.StrategyAuxRel}, {"jv2", catalog.StrategyNaive}, {"jv2", catalog.StrategyGlobalIndex},
	}
	g := Grid{
		Title: "Fig 14 (measured): view maintenance cost, 128-tuple insert into customer (max per-node I/Os)",
		Header: []string{"L",
			"AR JV1", "naive JV1", "GI JV1",
			"AR JV2", "naive JV2", "GI JV2"},
	}
	byLK := map[int]map[key]int64{}
	var lsSeen []int
	for _, r := range results {
		if _, ok := byLK[r.L]; !ok {
			byLK[r.L] = map[key]int64{}
			lsSeen = append(lsSeen, r.L)
		}
		byLK[r.L][key{r.View, r.Method}] = r.MaxNodeIOs
	}
	for _, l := range lsSeen {
		row := []string{fmt.Sprintf("%d", l)}
		for _, k := range cols {
			row = append(row, fmt.Sprintf("%d", byLK[l][k]))
		}
		g.Rows = append(g.Rows, row)
	}
	return g
}

// BufferingEffect reproduces the §3.3 observation the paper could only
// describe: "the analytical model was less accurate for large updates than
// for small. This is likely due to the impact of buffering — with large
// insert transactions substantial fractions of the base and auxiliary
// relations end up getting cached in main memory."
//
// It isolates the delta-join step of a large transaction (as §3.3 did)
// on clusters with per-node buffer pools large enough to hold the probed
// relation, and reports the logical I/Os (the model's currency) next to
// the physical I/Os a cached system pays. Logically the naive method does
// L× the AR method's work; physically both collapse toward zero once the
// relation is resident — "the performance of the naive and auxiliary
// relation methods became comparable".
func BufferingEffect(l, a, bufferPages int) (Grid, error) {
	g := Grid{
		Title:  fmt.Sprintf("Buffering effect (§3.3): delta join of a %d-tuple transaction, L=%d, %d-page pools", a, l, bufferPages),
		Header: []string{"method", "logical I/Os (model)", "physical I/Os (cached)"},
	}
	for _, v := range []Variant{
		{Label: "naive (clustered index)", Strategy: catalog.StrategyNaive, ClusterB: true},
		{Label: "auxiliary relation", Strategy: catalog.StrategyAuxRel},
	} {
		c, err := newCluster(cluster.Config{Nodes: l, Algo: node.AlgoIndex, BufferPages: bufferPages})
		if err != nil {
			return Grid{}, err
		}
		spec := workload.TwoRel{JoinValues: 640, Fanout: PaperN, ClusterBOnJoin: v.ClusterB}
		if err := spec.Load(c, v.Strategy); err != nil {
			c.Close()
			return Grid{}, err
		}
		// The load leaves the relations resident, as a production system
		// in steady state would be; writes to base and view are excluded
		// because they always touch fresh pages under every method.
		_, m, err := c.ComputeViewDeltaOnly("jv", "a", spec.AInserts(a, 1), v.Strategy)
		c.Close()
		if err != nil {
			return Grid{}, err
		}
		g.Rows = append(g.Rows, []string{
			v.Label,
			fmt.Sprintf("%d", m.TotalIOs()),
			fmt.Sprintf("%d", m.PhysicalIOs()),
		})
	}
	return g, nil
}

// NetworkSensitivity tests §3.1's simplification "the time spent on SEND
// is much smaller than the time spent on SEARCH, FETCH, and INSERT": it
// replays the same single-row update stream over the channel transport at
// zero and elevated per-message latency and reports wall-clock per update.
// The global-index method sends the most messages per delta (1 + 2K vs the
// AR method's 2), so it degrades fastest when SEND stops being free.
func NetworkSensitivity(l, streamLen int, latency time.Duration) (Grid, error) {
	g := Grid{
		Title: fmt.Sprintf("Network sensitivity (extension): %d single-row updates, L=%d, %v/message",
			streamLen, l, latency),
		Header: []string{"method", "messages", "µs/update (free net)", "µs/update (slow net)"},
	}
	for _, v := range []Variant{
		{Label: "auxiliary relation", Strategy: catalog.StrategyAuxRel},
		{Label: "global index", Strategy: catalog.StrategyGlobalIndex},
		{Label: "naive (clustered index)", Strategy: catalog.StrategyNaive, ClusterB: true},
	} {
		var msgs int64
		var micros [2]float64
		for i, lat := range []time.Duration{0, latency} {
			c, err := newCluster(cluster.Config{
				Nodes: l, Algo: node.AlgoIndex, UseChannels: true, NetLatency: lat,
			})
			if err != nil {
				return Grid{}, err
			}
			spec := workload.TwoRel{JoinValues: 640, Fanout: PaperN, ClusterBOnJoin: v.ClusterB}
			if err := spec.Load(c, v.Strategy); err != nil {
				c.Close()
				return Grid{}, err
			}
			delta := spec.AInserts(streamLen, 1)
			start := time.Now()
			for _, tup := range delta {
				if err := c.Insert("a", []types.Tuple{tup}); err != nil {
					c.Close()
					return Grid{}, err
				}
			}
			micros[i] = float64(time.Since(start).Microseconds()) / float64(streamLen)
			msgs = c.Metrics().Net.Messages
			c.Close()
		}
		g.Rows = append(g.Rows, []string{
			v.Label,
			fmt.Sprintf("%d", msgs),
			fmt.Sprintf("%.0f", micros[0]),
			fmt.Sprintf("%.0f", micros[1]),
		})
	}
	return g, nil
}

// SkewSensitivity extends the paper's uniform-distribution assumption 9:
// it measures each method's response time (max per-node I/Os) for a
// transaction whose join values are uniform vs Zipf-skewed. The naive
// method is skew-immune (every node does everything regardless); the
// routed methods develop hotspots at the node owning the hot values.
func SkewSensitivity(l, a int, zipfS float64) (Grid, error) {
	g := Grid{
		Title:  fmt.Sprintf("Skew sensitivity (extension): response of a %d-tuple transaction, L=%d, Zipf s=%.1f", a, l, zipfS),
		Header: []string{"method", "uniform maxnode I/Os", "skewed maxnode I/Os", "skew penalty"},
	}
	for _, v := range []Variant{
		{Label: "auxiliary relation", Strategy: catalog.StrategyAuxRel},
		{Label: "global index", Strategy: catalog.StrategyGlobalIndex},
		{Label: "naive (clustered index)", Strategy: catalog.StrategyNaive, ClusterB: true},
	} {
		measure := func(zs float64) (int64, error) {
			c, err := newCluster(cluster.Config{Nodes: l, Algo: node.AlgoIndex})
			if err != nil {
				return 0, err
			}
			defer c.Close()
			spec := workload.TwoRel{JoinValues: 640, Fanout: 1, ClusterBOnJoin: v.ClusterB, ZipfS: zs}
			if err := spec.Load(c, v.Strategy); err != nil {
				return 0, err
			}
			before := c.Metrics()
			if err := c.Insert("a", spec.AInserts(a, 1)); err != nil {
				return 0, err
			}
			return c.Metrics().Sub(before).MaxNodeIOs(), nil
		}
		uniform, err := measure(0)
		if err != nil {
			return Grid{}, err
		}
		skewed, err := measure(zipfS)
		if err != nil {
			return Grid{}, err
		}
		g.Rows = append(g.Rows, []string{
			v.Label,
			fmt.Sprintf("%d", uniform),
			fmt.Sprintf("%d", skewed),
			fmt.Sprintf("%.2fx", float64(skewed)/float64(uniform)),
		})
	}
	return g, nil
}

// StorageTradeoff quantifies the paper's space-for-time trade ("the last
// two methods improve performance at the cost of using more space"): for
// each method, the extra rows its structures store for the two-relation
// workload and the maintenance TW of a single-tuple insert.
func StorageTradeoff(l, fanout int) (Grid, error) {
	g := Grid{
		Title:  fmt.Sprintf("Storage vs maintenance trade-off (L=%d, N=%d, |B|=6400 rows)", l, fanout),
		Header: []string{"method", "extra rows", "extra values", "maintenance TW (I/Os)"},
	}
	for _, v := range []Variant{
		{Label: "naive", Strategy: catalog.StrategyNaive, ClusterB: false},
		{Label: "auxiliary relation", Strategy: catalog.StrategyAuxRel, ClusterB: false},
		{Label: "global index", Strategy: catalog.StrategyGlobalIndex, ClusterB: false},
	} {
		c, spec, err := loadTwoRel(l, fanout, v)
		if err != nil {
			return Grid{}, err
		}
		rep, err := c.StorageReport()
		if err != nil {
			c.Close()
			return Grid{}, err
		}
		overhead := rep.Overhead()
		delta := spec.AInserts(1, 1)
		before := c.Metrics()
		if err := c.Insert("a", delta); err != nil {
			c.Close()
			return Grid{}, err
		}
		d := c.Metrics().Sub(before)
		vrows, err := c.ViewRows("jv")
		if err != nil {
			c.Close()
			return Grid{}, err
		}
		c.Close()
		tw := d.TotalIOs() - 2 - 2*int64(len(vrows))
		g.Rows = append(g.Rows, []string{
			v.Label,
			fmt.Sprintf("%d", overhead),
			fmt.Sprintf("%d", rep.OverheadValues()),
			fmt.Sprintf("%d", tw),
		})
	}
	return g, nil
}

// Durability measures what write-ahead logging and two-phase commit cost
// each maintenance method, and what they buy at recovery (extension): the
// same single-row insert stream runs once plain and once in Durability
// mode (every statement redo-logged at its participants and committed via
// presumed-abort 2PC; checkpoints every ckptEvery records). The durable
// columns carry the overhead — log pages in the I/O totals (node logs plus
// the coordinator's forced decision log) and Prepare/Decide rounds in the
// messages. Then one node fail-stops: the durable cluster recovers it from
// checkpoint + log-tail replay, the plain cluster from a full derived-
// fragment rebuild off the base relations, and the last columns compare
// the recovery page I/O the two paths cost.
func Durability(l, streamLen, ckptEvery int) (Grid, error) {
	g := Grid{
		Title: fmt.Sprintf("Durability (extension): %d single-row inserts, L=%d, checkpoint every %d records",
			streamLen, l, ckptEvery),
		Header: []string{"method", "I/Os plain", "I/Os durable", "msgs plain", "msgs durable",
			"replay pages", "rebuild pages"},
	}
	for _, v := range []Variant{
		{Label: "auxiliary relation", Strategy: catalog.StrategyAuxRel},
		{Label: "global index", Strategy: catalog.StrategyGlobalIndex},
		{Label: "naive (clustered index)", Strategy: catalog.StrategyNaive, ClusterB: true},
	} {
		var ios, msgs [2]int64
		var replayPages, rebuildPages int64
		for i, durable := range []bool{false, true} {
			c, err := newCluster(cluster.Config{
				Nodes: l, Algo: node.AlgoIndex,
				Durability: durable, CheckpointEvery: ckptEvery,
			})
			if err != nil {
				return Grid{}, err
			}
			spec := workload.TwoRel{JoinValues: 640, Fanout: PaperN, ClusterBOnJoin: v.ClusterB}
			if err := spec.Load(c, v.Strategy); err != nil {
				c.Close()
				return Grid{}, err
			}
			if durable {
				// Checkpoint after the bulk load (standard practice), so
				// recovery replays from the image rather than from genesis;
				// further checkpoints auto-trigger every ckptEvery records
				// and count as stream overhead.
				if _, err := c.Checkpoint(); err != nil {
					c.Close()
					return Grid{}, err
				}
			}
			delta := spec.AInserts(streamLen, 1)
			c.ResetMetrics()
			for _, tup := range delta {
				if err := c.Insert("a", []types.Tuple{tup}); err != nil {
					c.Close()
					return Grid{}, err
				}
			}
			m := c.Metrics()
			ios[i] = m.TotalIOs() + m.Coord.IOs()
			msgs[i] = m.Net.Messages
			if durable {
				if err := c.CrashNode(0); err != nil {
					c.Close()
					return Grid{}, err
				}
			}
			rep, err := c.RecoverWithReport(0)
			if err != nil {
				c.Close()
				return Grid{}, err
			}
			if durable {
				replayPages = rep.PageIOs
			} else {
				rebuildPages = rep.PageIOs
			}
			if err := c.CheckViewConsistency("jv"); err != nil {
				c.Close()
				return Grid{}, fmt.Errorf("%s after %s recovery: %w", v.Label, rep.Mode, err)
			}
			c.Close()
		}
		g.Rows = append(g.Rows, []string{
			v.Label,
			fmt.Sprintf("%d", ios[0]),
			fmt.Sprintf("%d", ios[1]),
			fmt.Sprintf("%d", msgs[0]),
			fmt.Sprintf("%d", msgs[1]),
			fmt.Sprintf("%d", replayPages),
			fmt.Sprintf("%d", rebuildPages),
		})
	}
	return g, nil
}

// paperJV1 is §3.3's JV1: customer ⋈ orders on custkey.
func paperJV1(s catalog.Strategy) *catalog.View {
	return &catalog.View{
		Name:   "jv1",
		Tables: []string{"customer", "orders"},
		Joins: []catalog.JoinPred{
			{Left: "customer", LeftCol: "custkey", Right: "orders", RightCol: "custkey"},
		},
		Out: []catalog.OutCol{
			{Table: "customer", Col: "custkey"}, {Table: "customer", Col: "acctbal"},
			{Table: "orders", Col: "orderkey"}, {Table: "orders", Col: "totalprice"},
		},
		PartitionTable: "customer", PartitionCol: "custkey",
		Strategy: s,
	}
}

// paperJV2 is §3.3's JV2: customer ⋈ orders ⋈ lineitem.
func paperJV2(s catalog.Strategy) *catalog.View {
	return &catalog.View{
		Name:   "jv2",
		Tables: []string{"customer", "orders", "lineitem"},
		Joins: []catalog.JoinPred{
			{Left: "customer", LeftCol: "custkey", Right: "orders", RightCol: "custkey"},
			{Left: "orders", LeftCol: "orderkey", Right: "lineitem", RightCol: "orderkey"},
		},
		Out: []catalog.OutCol{
			{Table: "customer", Col: "custkey"}, {Table: "customer", Col: "acctbal"},
			{Table: "orders", Col: "orderkey"}, {Table: "orders", Col: "totalprice"},
			{Table: "lineitem", Col: "discount"}, {Table: "lineitem", Col: "extendedprice"},
		},
		PartitionTable: "customer", PartitionCol: "custkey",
		Strategy: s,
	}
}

// FaultOverhead measures what fault tolerance costs each maintenance
// method (extension): a stream of single-row inserts runs once on a clean
// network and once with a seeded injector dropping requests and replies,
// duplicating deliveries and raising transient handler errors at the
// given per-kind rate. Retries and sequence-number dedup must mask every
// fault, so the visible difference is overhead: extra messages and
// coordinator retries per update. The naive method's broadcasts give a
// fault more deliveries to hit per statement; the routed methods expose
// fewer.
func FaultOverhead(l, streamLen int, rate float64, seed int64) (Grid, error) {
	g := Grid{
		Title: fmt.Sprintf("Fault overhead (extension): %d single-row inserts, L=%d, %.1f%% per-kind fault rate",
			streamLen, l, rate*100),
		Header: []string{"method", "I/Os clean", "I/Os faulty", "msgs clean", "msgs faulty", "retries", "faults injected", "repairs replayed", "recovery pages"},
	}
	for _, v := range []Variant{
		{Label: "auxiliary relation", Strategy: catalog.StrategyAuxRel},
		{Label: "global index", Strategy: catalog.StrategyGlobalIndex},
		{Label: "naive (clustered index)", Strategy: catalog.StrategyNaive, ClusterB: true},
	} {
		var ios, msgs [2]int64
		var retries, injected, repairsReplayed, recoveryPages int64
		for i, faulty := range []bool{false, true} {
			var inj *fault.Injector
			if faulty {
				inj = fault.New(fault.Config{
					Seed:        seed,
					DropRequest: rate,
					DropReply:   rate,
					Duplicate:   rate,
					HandlerErr:  rate,
				})
			}
			c, err := newCluster(cluster.Config{
				Nodes: l, Algo: node.AlgoIndex, Faults: inj, RetryAttempts: 8,
			})
			if err != nil {
				return Grid{}, err
			}
			spec := workload.TwoRel{JoinValues: 640, Fanout: PaperN, ClusterBOnJoin: v.ClusterB}
			if err := spec.Load(c, v.Strategy); err != nil {
				c.Close()
				return Grid{}, err
			}
			delta := spec.AInserts(streamLen, 1)
			c.ResetMetrics()
			if inj != nil {
				inj.Arm()
			}
			for _, tup := range delta {
				// A fault burst can outlast the per-call retry budget; the
				// statement rolls back cleanly, so rerun it like an
				// operator would (repairing any node the coordinator
				// fenced first). Statement retries are part of the
				// overhead being measured.
				var err error
				for attempt := 0; attempt < 20; attempt++ {
					for _, n := range c.Degraded() {
						rep, rerr := c.RecoverWithReport(n)
						if rerr != nil {
							c.Close()
							return Grid{}, rerr
						}
						repairsReplayed += int64(rep.RepairsReplayed)
						recoveryPages += rep.PageIOs
					}
					if err = c.Insert("a", []types.Tuple{tup}); err == nil {
						break
					}
				}
				if err != nil {
					c.Close()
					return Grid{}, err
				}
			}
			m := c.Metrics()
			ios[i] = m.TotalIOs()
			msgs[i] = m.Net.Messages
			if faulty {
				retries = m.Retries
				injected = int64(inj.Stats().Total())
			}
			c.Close()
		}
		g.Rows = append(g.Rows, []string{
			v.Label,
			fmt.Sprintf("%d", ios[0]),
			fmt.Sprintf("%d", ios[1]),
			fmt.Sprintf("%d", msgs[0]),
			fmt.Sprintf("%d", msgs[1]),
			fmt.Sprintf("%d", retries),
			fmt.Sprintf("%d", injected),
			fmt.Sprintf("%d", repairsReplayed),
			fmt.Sprintf("%d", recoveryPages),
		})
	}
	return g, nil
}
