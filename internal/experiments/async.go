package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"joinview/internal/catalog"
	"joinview/internal/cluster"
	"joinview/internal/expr"
	"joinview/internal/node"
	"joinview/internal/types"
)

// The async-maintenance experiment measures what the durable group-commit
// queue buys over per-statement view maintenance. Three delta mixes run
// against the adaptive experiment's schema (a ⋈ b, advisor-chosen
// strategy) on the channel transport with the simulated interconnect:
//
//   - insert: a trickle of single-row inserts — the epoch flusher turns L
//     page writes per statement into one batched statement per epoch, so
//     page-granular I/O amortizes across the batch;
//   - mixed: inserts chased by deletes of just-inserted rows — within an
//     epoch the pairs cancel during compaction and never cost any
//     maintenance I/O at all;
//   - update: a hot set of rows updated over and over — repeated-key
//     collapse leaves one delete+insert per hot row per epoch.
//
// Each mix runs synchronously (per-statement maintenance, the paper's
// model) and with epoch sizes 8, 32 and 128. Epochs are driven
// explicitly — no background flusher — so every run does identical work
// in a deterministic order; the clock still runs across enqueue + drain,
// so statements/sec reflects true completion throughput, not enqueue
// latency alone.

// AsyncResult is one (mix, mode) cell of the async-maintenance
// comparison.
type AsyncResult struct {
	L   int
	Mix string
	// Mode is "sync" for per-statement maintenance or "epoch-N" for the
	// async queue flushed every N statements.
	Mode      string
	EpochSize int
	// Statements issued and delta tuples they carried.
	Statements int
	Tuples     int
	// TWIOs is the paper's total workload (I/Os summed over nodes) for the
	// whole stream including flushes; MaxNodeIOs the summed per-statement
	// response proxy; Messages the interconnect traffic.
	TWIOs      int64
	MaxNodeIOs int64
	Messages   int64
	// StmtsPerSec is statements / (enqueue + drain) wall time.
	StmtsPerSec float64
	// Queue-side totals: epochs flushed, tuples compaction cancelled, and
	// the cancelled fraction of enqueued delta tuples. Zero for sync runs.
	EpochsFlushed   int64
	DeltasCancelled int64
	CancelRate      float64
}

// asyncEpochSizes are the compared flush cadences; 0 is the synchronous
// per-statement baseline.
var asyncEpochSizes = []int{0, 8, 32, 128}

// asyncMixes lists the delta mixes in display order.
var asyncMixes = []string{"insert", "mixed", "update"}

// AsyncMaintenance runs every (mix, epoch size) cell on an l-node
// cluster, statements statements per cell.
func AsyncMaintenance(l, statements int) ([]AsyncResult, error) {
	var out []AsyncResult
	for _, mix := range asyncMixes {
		for _, epoch := range asyncEpochSizes {
			r, err := runAsync(l, mix, epoch, statements)
			if err != nil {
				return nil, fmt.Errorf("L=%d %s epoch=%d: %w", l, mix, epoch, err)
			}
			out = append(out, r)
		}
	}
	return out, nil
}

func runAsync(l int, mix string, epoch, statements int) (AsyncResult, error) {
	cfg := cluster.Config{
		Nodes: l, Algo: node.AlgoIndex, UseChannels: true,
		NetLatency: DefaultNetLatency,
	}
	if epoch > 0 {
		cfg.AsyncMaintenance = true
	}
	c, err := newCluster(cfg)
	if err != nil {
		return AsyncResult{}, err
	}
	defer c.Close()
	if err := loadAdaptive(c, catalog.StrategyAuto); err != nil {
		return AsyncResult{}, err
	}

	// The update mix needs a settled hot set before the clock starts.
	var hot []int64
	if mix == "update" {
		rows := make([]types.Tuple, 64)
		for i := range rows {
			id := int64(3_500_000 + i)
			rows[i] = types.Tuple{types.Int(id), types.Int(int64(i % adaptiveJoinValues)), types.Int(id % 97)}
			hot = append(hot, id)
		}
		if err := c.Insert("a", rows); err != nil {
			return AsyncResult{}, err
		}
		if err := c.Flush(); err != nil {
			return AsyncResult{}, err
		}
		if err := c.RefreshStats("a"); err != nil {
			return AsyncResult{}, err
		}
	}

	c.ResetMetrics()
	rng := rand.New(rand.NewSource(17))
	nextID := int64(3_000_000)
	eqID := func(k int64) expr.Expr {
		return expr.Cmp{Op: expr.EQ, L: expr.Col{Name: "id"}, R: expr.Const{V: types.Int(k)}}
	}
	fresh := func() types.Tuple {
		nextID++
		return types.Tuple{types.Int(nextID), types.Int(int64(rng.Intn(adaptiveJoinValues))), types.Int(nextID % 97)}
	}

	tuples := 0
	start := time.Now()
	var recent []int64
	for i := 0; i < statements; i++ {
		switch {
		case mix == "insert":
			if err := c.Insert("a", []types.Tuple{fresh()}); err != nil {
				return AsyncResult{}, err
			}
			tuples++
		case mix == "mixed" && (i%2 == 0 || len(recent) == 0):
			batch := make([]types.Tuple, 4)
			for j := range batch {
				batch[j] = fresh()
				recent = append(recent, nextID)
			}
			if err := c.Insert("a", batch); err != nil {
				return AsyncResult{}, err
			}
			tuples += len(batch)
		case mix == "mixed":
			k := recent[0]
			recent = recent[1:]
			if _, err := c.Delete("a", eqID(k)); err != nil {
				return AsyncResult{}, err
			}
			tuples++
		default: // update
			k := hot[i%len(hot)]
			set := map[string]types.Value{"payload": types.Int(int64(i))}
			if _, err := c.Update("a", set, eqID(k)); err != nil {
				return AsyncResult{}, err
			}
			tuples++
		}
		if epoch > 0 && (i+1)%epoch == 0 {
			if err := c.Flush(); err != nil {
				return AsyncResult{}, err
			}
		}
	}
	if err := c.Flush(); err != nil {
		return AsyncResult{}, err
	}
	elapsed := time.Since(start).Seconds()

	m := c.Metrics()
	mode := "sync"
	if epoch > 0 {
		mode = fmt.Sprintf("epoch-%d", epoch)
	}
	return AsyncResult{
		L:               l,
		Mix:             mix,
		Mode:            mode,
		EpochSize:       epoch,
		Statements:      statements,
		Tuples:          tuples,
		TWIOs:           m.TotalIOs(),
		MaxNodeIOs:      m.MaxNodeIOs(),
		Messages:        m.Net.Messages,
		StmtsPerSec:     float64(statements) / elapsed,
		EpochsFlushed:   m.Queue.EpochsFlushed,
		DeltasCancelled: m.Queue.DeltasCancelled,
		CancelRate:      m.Queue.CancelRate(),
	}, nil
}

// AsyncGrid formats the results.
func AsyncGrid(rs []AsyncResult) Grid {
	g := Grid{
		Title: "Async maintenance (extension): per-statement vs epoch-batched group commit",
		Header: []string{"L", "mix", "mode", "stmts", "tuples", "tw-ios",
			"maxnode-ios", "msgs", "stmts/sec", "epochs", "cancel%"},
	}
	for _, r := range rs {
		g.Rows = append(g.Rows, []string{
			fmt.Sprintf("%d", r.L),
			r.Mix,
			r.Mode,
			fmt.Sprintf("%d", r.Statements),
			fmt.Sprintf("%d", r.Tuples),
			fmt.Sprintf("%d", r.TWIOs),
			fmt.Sprintf("%d", r.MaxNodeIOs),
			fmt.Sprintf("%d", r.Messages),
			fmt.Sprintf("%.0f", r.StmtsPerSec),
			fmt.Sprintf("%d", r.EpochsFlushed),
			fmt.Sprintf("%.1f", 100*r.CancelRate),
		})
	}
	return g
}
