package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"joinview/internal/catalog"
	"joinview/internal/cluster"
	"joinview/internal/node"
)

// The elasticity experiment measures what online expansion costs: a
// 4-node cluster runs concurrent insert sessions, a fifth node is added
// live (snapshot copy + delta catch-up + exclusive cutover), and the
// sessions keep committing throughout. The interesting numbers are the
// throughput dip while the migration competes for locks and bandwidth,
// the post-expansion recovery above the 4-node baseline (the same
// workload now spreads over five nodes), and the migration's own bill:
// pages copied, envelopes sent, catch-up queue depth, cutover stall.

// ElasticPhase is one measurement window of the experiment.
type ElasticPhase struct {
	// Phase is "before" (4 nodes), "during" (expansion in flight) or
	// "after" (5 nodes).
	Phase string
	// Stmts is the number of statements the sessions committed in the
	// window; StmtsPerSec the whole-cluster throughput.
	Stmts       int
	StmtsPerSec float64
	// TWIOs is the paper's total workload: I/Os summed over all nodes
	// during the window; IOsPerStmt the per-statement average.
	TWIOs      int64
	IOsPerStmt float64
}

// ElasticResult is one strategy's measurement.
type ElasticResult struct {
	Strategy string
	Sessions int
	// Phases holds the before/during/after windows in order.
	Phases []ElasticPhase
	// StatementErrors counts failed statements across all windows; online
	// expansion promises zero.
	StatementErrors int
	// Migration is the expansion's own cost accounting.
	Migration cluster.MigrationStats
	// NodesBefore and NodesAfter frame the expansion (4 → 5).
	NodesBefore, NodesAfter int
}

// Elastic runs the experiment for every maintenance strategy: sessions
// concurrent insert sessions against a 4-node cluster, stmtsPerPhase
// statements per session in the before- and after-windows, with the
// expansion measured in between under continuous load.
func Elastic(sessions, stmtsPerPhase, rowsPerStmt int) ([]ElasticResult, error) {
	var out []ElasticResult
	for _, st := range ConcurrentStrategies() {
		r, err := runElastic(st.Label, st.Strategy, sessions, stmtsPerPhase, rowsPerStmt)
		if err != nil {
			return nil, fmt.Errorf("elastic %s: %w", st.Label, err)
		}
		out = append(out, r)
	}
	return out, nil
}

func runElastic(label string, strategy catalog.Strategy, sessions, stmtsPerPhase, rowsPerStmt int) (ElasticResult, error) {
	c, err := cluster.New(cluster.Config{
		Nodes: 4, Algo: node.AlgoIndex, UseChannels: true,
		NetLatency: DefaultNetLatency,
	})
	if err != nil {
		return ElasticResult{}, err
	}
	defer c.Close()
	if err := LoadSessionSchemas(c, sessions, strategy); err != nil {
		return ElasticResult{}, err
	}
	res := ElasticResult{Strategy: label, Sessions: sessions, NodesBefore: c.NumNodes()}
	var stmtErrs atomic.Int64
	stmtSeq := make([]int, sessions) // per-session statement cursor

	// runWindow commits stmtsPerPhase statements per session concurrently
	// and returns the throughput/IO measurement for the window.
	runWindow := func(phase string) ElasticPhase {
		c.ResetMetrics()
		start := time.Now()
		var wg sync.WaitGroup
		for s := 0; s < sessions; s++ {
			s := s
			wg.Add(1)
			go func() {
				defer wg.Done()
				table := fmt.Sprintf("a%d", s)
				for j := 0; j < stmtsPerPhase; j++ {
					if e := c.Insert(table, SessionInserts(s, stmtSeq[s]+j, rowsPerStmt)); e != nil {
						stmtErrs.Add(1)
					}
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start).Seconds()
		for s := range stmtSeq {
			stmtSeq[s] += stmtsPerPhase
		}
		total := sessions * stmtsPerPhase
		tw := c.Metrics().TotalIOs()
		return ElasticPhase{
			Phase: phase, Stmts: total,
			StmtsPerSec: float64(total) / elapsed,
			TWIOs:       tw,
			IOsPerStmt:  float64(tw) / float64(total),
		}
	}

	res.Phases = append(res.Phases, runWindow("before"))

	// During: sessions run continuously while AddNode migrates; the
	// window covers the expansion exactly. Sessions pace themselves with
	// a short think time — zero-think-time saturation makes the delta
	// catch-up race unwinnable for any migration scheme (the queue grows
	// faster than any replayer can drain it), and the cutover would stall
	// for the whole backlog.
	c.ResetMetrics()
	stop := make(chan struct{})
	var during atomic.Int64
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			table := fmt.Sprintf("a%d", s)
			j := 0
			for {
				select {
				case <-stop:
					stmtSeq[s] += j
					return
				default:
				}
				if e := c.Insert(table, SessionInserts(s, stmtSeq[s]+j, rowsPerStmt)); e != nil {
					stmtErrs.Add(1)
				} else {
					during.Add(1)
				}
				j++
				time.Sleep(elasticThinkTime)
			}
		}()
	}
	start := time.Now()
	_, addErr := c.AddNode()
	close(stop)
	wg.Wait()
	if addErr != nil {
		return ElasticResult{}, fmt.Errorf("AddNode: %w", addErr)
	}
	elapsed := time.Since(start).Seconds()
	stmts := int(during.Load())
	tw := c.Metrics().TotalIOs()
	ph := ElasticPhase{
		Phase: "during", Stmts: stmts,
		StmtsPerSec: float64(stmts) / elapsed,
		TWIOs:       tw,
	}
	if stmts > 0 {
		ph.IOsPerStmt = float64(tw) / float64(stmts)
	}
	res.Phases = append(res.Phases, ph)
	if mig, ok := c.LastMigration(); ok {
		res.Migration = mig
	}

	res.Phases = append(res.Phases, runWindow("after"))
	res.NodesAfter = c.NumNodes()
	res.StatementErrors = int(stmtErrs.Load())
	if err := c.CheckAllStructures(); err != nil {
		return ElasticResult{}, fmt.Errorf("post-expansion consistency: %w", err)
	}
	return res, nil
}

// elasticThinkTime is the per-session pause between statements while the
// migration runs (a session with zero think time produces deltas faster
// than the catch-up replayer can drain them, growing the cutover stall
// without bound).
const elasticThinkTime = 2 * time.Millisecond

// ElasticGrid formats the results.
func ElasticGrid(rs []ElasticResult) Grid {
	g := Grid{
		Title: "Online elasticity (extension): 4 -> 5 node expansion under concurrent sessions",
		Header: []string{"method", "phase", "stmts/s", "TW I/Os", "I/Os per stmt",
			"pages copied", "envelopes", "cutover stall", "errors"},
	}
	for _, r := range rs {
		for _, p := range r.Phases {
			row := []string{r.Strategy, p.Phase,
				fmt.Sprintf("%.0f", p.StmtsPerSec),
				fmt.Sprintf("%d", p.TWIOs),
				fmt.Sprintf("%.1f", p.IOsPerStmt),
				"", "", "", ""}
			if p.Phase == "during" {
				row[5] = fmt.Sprintf("%d", r.Migration.PagesCopied)
				row[6] = fmt.Sprintf("%d", r.Migration.Envelopes)
				row[7] = r.Migration.CutoverStall.Round(time.Microsecond).String()
				row[8] = fmt.Sprintf("%d", r.StatementErrors)
			}
			g.Rows = append(g.Rows, row)
		}
	}
	return g
}
