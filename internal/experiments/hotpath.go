package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"joinview/internal/catalog"
	"joinview/internal/cluster"
	"joinview/internal/expr"
	"joinview/internal/node"
	"joinview/internal/types"
)

// The hot-path experiment measures the two halves of the read-side
// extension together:
//
//   - MVCC snapshot reads: reader throughput against a 4-session write
//     load on one shared table, locked reads (readers queue behind every
//     writer's table claims, the seed's model) vs snapshot reads (readers
//     never touch the lock manager), on both concurrent transports.
//   - The allocation-lean write path: heap allocations per maintenance
//     statement under the exact conditions of the concurrent-sessions
//     experiment, so the numbers are directly comparable with the
//     checked-in BENCH_parallel.json baseline.

// HotpathReadResult is one cell of the reader-throughput half: one
// (transport, strategy) pair measured under both read modes.
type HotpathReadResult struct {
	L         int
	Transport string // "chan" or "tcp"
	Strategy  string
	Writers   int
	// LockedReadsPerSec and MVCCReadsPerSec are completed snapshot reads
	// (alternating base-table and view scans) per second while the write
	// load runs.
	LockedReadsPerSec float64
	MVCCReadsPerSec   float64
	// Speedup is MVCC over locked reader throughput.
	Speedup float64
	// LockedWriteStmtsPerSec and MVCCWriteStmtsPerSec report the write
	// load's own throughput in each mode (snapshot reads must not tax
	// writers).
	LockedWriteStmtsPerSec float64
	MVCCWriteStmtsPerSec   float64
}

// HotpathAllocResult is one cell of the allocation half: per-statement
// heap allocations of the parallel maintenance path for one strategy,
// measured like the concurrent-sessions experiment measures them.
type HotpathAllocResult struct {
	L             int
	Strategy      string
	AllocsPerStmt float64
	// BaselineAllocsPerStmt and ReductionPct are filled in by the caller
	// from a prior BENCH_parallel.json; zero when no baseline is given.
	BaselineAllocsPerStmt float64 `json:",omitempty"`
	ReductionPct          float64 `json:",omitempty"`
}

// HotpathResults is the full experiment output (the BENCH_hotpath.json
// payload).
type HotpathResults struct {
	Reads  []HotpathReadResult
	Allocs []HotpathAllocResult
}

// hotpathTransports enumerates the concurrent transports the read half
// sweeps: the latency-simulated channel interconnect the experiments run
// on, and real loopback TCP sockets.
func hotpathTransports(l int) []struct {
	Label string
	Cfg   cluster.Config
} {
	return []struct {
		Label string
		Cfg   cluster.Config
	}{
		{"chan", cluster.Config{Nodes: l, Algo: node.AlgoIndex, UseChannels: true, NetLatency: DefaultNetLatency}},
		{"tcp", cluster.Config{Nodes: l, Algo: node.AlgoIndex, UseTCP: true}},
	}
}

// Hotpath runs both halves at node count l: the reader-vs-writer sweep
// with writers concurrent write sessions, and the allocation measurement
// with allocSessions sessions issuing allocStmts statements of allocRows
// rows each (pass the concurrent-sessions experiment's parameters to make
// the numbers comparable with its baseline).
func Hotpath(l, writers, writeStmts, writeRows, allocSessions, allocStmts, allocRows int) (HotpathResults, error) {
	var res HotpathResults
	for _, tr := range hotpathTransports(l) {
		for _, st := range ConcurrentStrategies() {
			locked := tr.Cfg
			locked.LockedReads = true
			lockedReads, lockedWrites, err := runHotpathReads(locked, st.Strategy, writers, writeStmts, writeRows)
			if err != nil {
				return res, fmt.Errorf("%s %s locked: %w", tr.Label, st.Label, err)
			}
			mvccReads, mvccWrites, err := runHotpathReads(tr.Cfg, st.Strategy, writers, writeStmts, writeRows)
			if err != nil {
				return res, fmt.Errorf("%s %s mvcc: %w", tr.Label, st.Label, err)
			}
			res.Reads = append(res.Reads, HotpathReadResult{
				L: l, Transport: tr.Label, Strategy: st.Label, Writers: writers,
				LockedReadsPerSec:      lockedReads,
				MVCCReadsPerSec:        mvccReads,
				Speedup:                mvccReads / lockedReads,
				LockedWriteStmtsPerSec: lockedWrites,
				MVCCWriteStmtsPerSec:   mvccWrites,
			})
		}
	}
	for _, st := range ConcurrentStrategies() {
		_, _, allocs, _, err := runConcurrent(l, allocSessions, allocStmts, allocRows, st.Strategy, DefaultNetLatency, false)
		if err != nil {
			return res, fmt.Errorf("allocs %s: %w", st.Label, err)
		}
		res.Allocs = append(res.Allocs, HotpathAllocResult{L: l, Strategy: st.Label, AllocsPerStmt: allocs})
	}
	return res, nil
}

// hotpathFanout is the b-rows-per-join-value of the contended schema:
// higher than the concurrent-sessions experiment's fanout so each write
// statement does substantial maintenance work (and so holds its claims
// longer) while the churned tables stay small.
const hotpathFanout = 8

// loadHotpathSchema builds the contended schema: one shared pair
// a(id,c) ⋈ b(id,d) = jv, b pre-loaded with hotpathFanout rows per join
// value, so every writer claims the same table locks and every inserted
// a-row yields exactly hotpathFanout view rows.
func loadHotpathSchema(c *cluster.Cluster, strategy catalog.Strategy) error {
	if err := c.CreateTable(&catalog.Table{
		Name: "a",
		Schema: types.NewSchema(
			types.Column{Name: "id", Kind: types.KindInt},
			types.Column{Name: "c", Kind: types.KindInt},
		),
		PartitionCol: "id",
	}); err != nil {
		return err
	}
	if err := c.CreateTable(&catalog.Table{
		Name: "b",
		Schema: types.NewSchema(
			types.Column{Name: "id", Kind: types.KindInt},
			types.Column{Name: "d", Kind: types.KindInt},
		),
		PartitionCol: "id",
		Indexes:      []catalog.Index{{Name: "ix_b_d", Col: "d"}},
	}); err != nil {
		return err
	}
	rows := make([]types.Tuple, 0, sessionJoinValues*hotpathFanout)
	id := int64(0)
	for v := int64(0); v < sessionJoinValues; v++ {
		for f := 0; f < hotpathFanout; f++ {
			id++
			rows = append(rows, types.Tuple{types.Int(id), types.Int(v)})
		}
	}
	if err := c.Insert("b", rows); err != nil {
		return err
	}
	if err := c.RefreshStats("b"); err != nil {
		return err
	}
	if err := c.CreateView(&catalog.View{
		Name:   "jv",
		Tables: []string{"a", "b"},
		Joins:  []catalog.JoinPred{{Left: "a", LeftCol: "c", Right: "b", RightCol: "d"}},
		Out: []catalog.OutCol{
			{Table: "a", Col: "id"}, {Table: "a", Col: "c"}, {Table: "b", Col: "id"},
		},
		PartitionTable: "a", PartitionCol: "id",
		Strategy: strategy,
	}); err != nil {
		return err
	}
	// A second view over the same join, partitioned on the b side: a base
	// table usually backs more than one view, and each extra view extends
	// the maintenance pipeline a writer runs while holding its claims.
	return c.CreateView(&catalog.View{
		Name:   "jv2",
		Tables: []string{"a", "b"},
		Joins:  []catalog.JoinPred{{Left: "a", LeftCol: "c", Right: "b", RightCol: "d"}},
		Out: []catalog.OutCol{
			{Table: "b", Col: "id"}, {Table: "b", Col: "d"}, {Table: "a", Col: "id"},
		},
		PartitionTable: "b", PartitionCol: "id",
		Strategy: strategy,
	})
}

// hotpathKeep is how many of its own insert batches a writer keeps live
// before deleting the oldest: the churn keeps the shared table at a small
// steady-state size, so reader cost measures lock waits and snapshot
// overhead rather than an ever-growing scan.
const hotpathKeep = 1

// runHotpathReads measures one cell: writers sessions each run writeStmts
// rounds against the shared table — insert a batch of writeRows rows,
// then delete the batch from hotpathKeep rounds ago — while two readers
// continuously scan, one the base table, one the view. Reader throughput
// is completed reads per second over the write load's lifetime; reads
// started before the last writer finishes but completed after still count
// (a locked reader parked on the queue when writers drain finishes its
// read).
func runHotpathReads(cfg cluster.Config, strategy catalog.Strategy, writers, writeStmts, writeRows int) (readsPerSec, writeStmtsPerSec float64, err error) {
	c, err := cluster.New(cfg)
	if err != nil {
		return 0, 0, err
	}
	defer c.Close()
	if err := loadHotpathSchema(c, strategy); err != nil {
		return 0, 0, err
	}
	var (
		writersDone atomic.Bool
		reads       atomic.Int64
		wg, wwg     sync.WaitGroup
	)
	errs := make([]error, writers+2)
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		wwg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer wwg.Done()
			batchBase := func(j int) int64 { return int64(1_000_000*(w+1) + j*writeRows) }
			for j := 0; j < writeStmts; j++ {
				batch := make([]types.Tuple, writeRows)
				base := batchBase(j)
				for r := 0; r < writeRows; r++ {
					batch[r] = types.Tuple{
						types.Int(base + int64(r)),
						types.Int(int64(j*writeRows+r) % sessionJoinValues),
					}
				}
				if e := c.Insert("a", batch); e != nil {
					errs[w] = e
					return
				}
				if j < hotpathKeep {
					continue
				}
				old := batchBase(j - hotpathKeep)
				_, e := c.Delete("a", expr.And{Terms: []expr.Expr{
					expr.Cmp{Op: expr.GE, L: expr.Col{Name: "id"}, R: expr.Const{V: types.Int(old)}},
					expr.Cmp{Op: expr.LT, L: expr.Col{Name: "id"}, R: expr.Const{V: types.Int(old + int64(writeRows))}},
				}})
				if e != nil {
					errs[w] = e
					return
				}
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for !writersDone.Load() {
				var e error
				if r == 0 {
					_, e = c.TableRows("a")
				} else {
					_, e = c.ViewRows("jv")
				}
				if e != nil {
					errs[writers+r] = e
					return
				}
				reads.Add(1)
			}
		}(r)
	}
	wwg.Wait()
	elapsed := time.Since(start).Seconds()
	writersDone.Store(true)
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return 0, 0, e
		}
	}
	totalStmts := writers * (2*writeStmts - hotpathKeep) // inserts plus trailing deletes
	return float64(reads.Load()) / elapsed, float64(totalStmts) / elapsed, nil
}

// HotpathReadGrid formats the reader-throughput half.
func HotpathReadGrid(rs []HotpathReadResult) Grid {
	g := Grid{
		Title: "Hot path (extension): snapshot-read throughput under a concurrent write load",
		Header: []string{"L", "transport", "method", "writers", "locked reads/s",
			"mvcc reads/s", "speedup", "locked write stmts/s", "mvcc write stmts/s"},
	}
	for _, r := range rs {
		g.Rows = append(g.Rows, []string{
			fmt.Sprintf("%d", r.L),
			r.Transport,
			r.Strategy,
			fmt.Sprintf("%d", r.Writers),
			fmt.Sprintf("%.0f", r.LockedReadsPerSec),
			fmt.Sprintf("%.0f", r.MVCCReadsPerSec),
			fmt.Sprintf("%.1fx", r.Speedup),
			fmt.Sprintf("%.0f", r.LockedWriteStmtsPerSec),
			fmt.Sprintf("%.0f", r.MVCCWriteStmtsPerSec),
		})
	}
	return g
}

// HotpathAllocGrid formats the allocation half.
func HotpathAllocGrid(rs []HotpathAllocResult) Grid {
	g := Grid{
		Title:  "Hot path (extension): heap allocations per maintenance statement",
		Header: []string{"L", "method", "allocs/stmt", "baseline", "reduction"},
	}
	for _, r := range rs {
		baseline, reduction := "-", "-"
		if r.BaselineAllocsPerStmt > 0 {
			baseline = fmt.Sprintf("%.0f", r.BaselineAllocsPerStmt)
			reduction = fmt.Sprintf("%.1f%%", r.ReductionPct)
		}
		g.Rows = append(g.Rows, []string{
			fmt.Sprintf("%d", r.L),
			r.Strategy,
			fmt.Sprintf("%.0f", r.AllocsPerStmt),
			baseline,
			reduction,
		})
	}
	return g
}
