package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"joinview/internal/catalog"
	"joinview/internal/cluster"
	"joinview/internal/node"
	"joinview/internal/types"
)

// The adaptive-strategy experiment pits the cost advisor against each
// pinned maintenance method over a statement stream whose delta sizes and
// join-value distributions are deliberately mixed: single-digit deltas
// alternate with multi-hundred-tuple ones, and join values alternate
// between uniform draws (the paper's assumption 9) and a Zipf(1.5)
// hotspot. The updated relation is partitioned on its join attribute (as
// customer is in the paper's Teradata experiment), so it carries no
// auxiliary structures of its own and the adaptive run pays nothing for
// keeping every option open: StrategyAuto re-chooses per statement from
// the cached plan's precompiled options and must match the best fixed
// method's total workload while the mispinned methods fall behind.

// AdaptiveResult is one strategy's totals over the mixed stream.
type AdaptiveResult struct {
	L          int
	Strategy   string
	Statements int
	Tuples     int
	// TWIOs and MaxNodeIOs are the summed total workload and the summed
	// per-statement response proxy; Messages counts interconnect traffic.
	TWIOs      int64
	MaxNodeIOs int64
	Messages   int64
	// Plan-cache effectiveness over the stream: with DDL quiescent, every
	// statement after the first should reuse the compiled pipeline.
	PlanCacheHits    int64
	PlanCacheMisses  int64
	PlanCacheHitRate float64
	// StagePages breaks the I/Os down by pipeline stage kind (serial
	// dispatch attributes exactly).
	StagePages map[string]int64
	// Picks counts, for the adaptive run only, how many statements the
	// advisor resolved to each method; fixed runs leave it nil.
	Picks map[string]int
}

// AdaptiveDelta is one statement of the mixed stream.
type AdaptiveDelta struct {
	Size int
	Zipf bool
}

// AdaptiveDeltas builds the deterministic statement stream: delta sizes
// cycle through the small regime (1, 2, 4, 8 tuples) on even statements
// and the large regime (256, 512, 768) on odd ones; every other statement
// draws its join values from the Zipf hotspot instead of uniformly.
func AdaptiveDeltas(statements int) []AdaptiveDelta {
	small := []int{1, 2, 4, 8}
	large := []int{256, 512, 768}
	out := make([]AdaptiveDelta, statements)
	for i := range out {
		if i%2 == 0 {
			out[i] = AdaptiveDelta{Size: small[(i/2)%len(small)], Zipf: i%4 == 2}
		} else {
			out[i] = AdaptiveDelta{Size: large[(i/2)%len(large)], Zipf: i%4 == 3}
		}
	}
	return out
}

// Adaptive-workload shape: B's join-value domain and fan-out (the paper's
// N = 10).
const (
	adaptiveJoinValues = 640
	adaptiveFanout     = PaperN
)

// adaptiveTuples generates one statement's insert batch with
// cluster-unique ids and join values from the requested distribution.
func adaptiveTuples(d AdaptiveDelta, nextID *int64, rng *rand.Rand, zipf *rand.Zipf) []types.Tuple {
	out := make([]types.Tuple, d.Size)
	for i := range out {
		var v int64
		if d.Zipf {
			v = int64(zipf.Uint64())
		} else {
			v = int64(rng.Intn(adaptiveJoinValues))
		}
		*nextID++
		out[i] = types.Tuple{types.Int(*nextID), types.Int(v), types.Int(*nextID % 97)}
	}
	return out
}

// loadAdaptive creates the experiment schema: a(id, c, payload)
// partitioned on the join attribute c (so inserts into a maintain no
// auxiliary structures, whatever the strategy), b(id, d, payload)
// partitioned on id with a secondary index on d, pre-loaded with
// adaptiveJoinValues × adaptiveFanout rows, and jv = a ⋈ b under the given
// strategy.
func loadAdaptive(c *cluster.Cluster, strategy catalog.Strategy) error {
	if err := c.CreateTable(&catalog.Table{
		Name: "a",
		Schema: types.NewSchema(
			types.Column{Name: "id", Kind: types.KindInt},
			types.Column{Name: "c", Kind: types.KindInt},
			types.Column{Name: "payload", Kind: types.KindInt},
		),
		PartitionCol: "c",
	}); err != nil {
		return err
	}
	if err := c.CreateTable(&catalog.Table{
		Name: "b",
		Schema: types.NewSchema(
			types.Column{Name: "id", Kind: types.KindInt},
			types.Column{Name: "d", Kind: types.KindInt},
			types.Column{Name: "payload", Kind: types.KindInt},
		),
		PartitionCol: "id",
		Indexes:      []catalog.Index{{Name: "ix_b_d", Col: "d"}},
	}); err != nil {
		return err
	}
	rows := make([]types.Tuple, 0, adaptiveJoinValues*adaptiveFanout)
	id := int64(0)
	for v := int64(0); v < adaptiveJoinValues; v++ {
		for f := 0; f < adaptiveFanout; f++ {
			id++
			rows = append(rows, types.Tuple{types.Int(id), types.Int(v), types.Int(id % 97)})
		}
	}
	if err := c.Insert("b", rows); err != nil {
		return err
	}
	if err := c.RefreshStats("b"); err != nil {
		return err
	}
	if err := c.CreateView(&catalog.View{
		Name:   "jv",
		Tables: []string{"a", "b"},
		Joins:  []catalog.JoinPred{{Left: "a", LeftCol: "c", Right: "b", RightCol: "d"}},
		Out: []catalog.OutCol{
			{Table: "a", Col: "id"}, {Table: "a", Col: "c"},
			{Table: "b", Col: "id"}, {Table: "b", Col: "payload"},
		},
		PartitionTable: "a", PartitionCol: "id",
		Strategy: strategy,
	}); err != nil {
		return err
	}
	c.ResetMetrics()
	return nil
}

// AdaptiveStrategies lists the compared methods; the adaptive entry is
// StrategyAuto, the cost-advisor-driven chooser.
func AdaptiveStrategies() []struct {
	Label    string
	Strategy catalog.Strategy
} {
	return []struct {
		Label    string
		Strategy catalog.Strategy
	}{
		{"naive", catalog.StrategyNaive},
		{"auxiliary relation", catalog.StrategyAuxRel},
		{"global index", catalog.StrategyGlobalIndex},
		{"adaptive", catalog.StrategyAuto},
	}
}

// AdaptiveStrategy runs the mixed stream once per method on an l-node
// cluster and reports each method's totals.
func AdaptiveStrategy(l, statements int) ([]AdaptiveResult, error) {
	deltas := AdaptiveDeltas(statements)
	var out []AdaptiveResult
	for _, st := range AdaptiveStrategies() {
		r, err := runAdaptive(l, st.Label, st.Strategy, deltas)
		if err != nil {
			return nil, fmt.Errorf("L=%d %s: %w", l, st.Label, err)
		}
		out = append(out, r)
	}
	return out, nil
}

func runAdaptive(l int, label string, strategy catalog.Strategy, deltas []AdaptiveDelta) (AdaptiveResult, error) {
	c, err := newCluster(cluster.Config{Nodes: l, Algo: node.AlgoIndex})
	if err != nil {
		return AdaptiveResult{}, err
	}
	defer c.Close()
	if err := loadAdaptive(c, strategy); err != nil {
		return AdaptiveResult{}, err
	}

	adaptive := strategy == catalog.StrategyAuto
	var picks map[string]int
	var view *catalog.View
	if adaptive {
		picks = map[string]int{}
		view, err = c.Catalog().View("jv")
		if err != nil {
			return AdaptiveResult{}, err
		}
	}
	rng := rand.New(rand.NewSource(7))
	zipf := rand.NewZipf(rand.New(rand.NewSource(11)), 1.5, 1, uint64(adaptiveJoinValues-1))
	nextID := int64(2_000_000)
	tuples := 0
	res := AdaptiveResult{L: l, Strategy: label, Statements: len(deltas)}
	for _, d := range deltas {
		batch := adaptiveTuples(d, &nextID, rng, zipf)
		tuples += len(batch)
		if adaptive {
			s, err := c.ResolveStrategy(view, "a", len(batch))
			if err != nil {
				return AdaptiveResult{}, err
			}
			picks[s.String()]++
		}
		before := c.Metrics()
		if err := c.Insert("a", batch); err != nil {
			return AdaptiveResult{}, err
		}
		d := c.Metrics().Sub(before)
		res.TWIOs += d.TotalIOs()
		res.MaxNodeIOs += d.MaxNodeIOs()
	}
	m := c.Metrics()
	res.Tuples = tuples
	res.Messages = m.Net.Messages
	res.PlanCacheHits = m.Pipeline.PlanCacheHits
	res.PlanCacheMisses = m.Pipeline.PlanCacheMisses
	res.PlanCacheHitRate = m.Pipeline.HitRate()
	res.StagePages = map[string]int64{}
	for kind, sc := range m.Pipeline.Stages {
		res.StagePages[kind] = sc.Pages
	}
	res.Picks = picks
	return res, nil
}

// AdaptiveGrid formats the results.
func AdaptiveGrid(rs []AdaptiveResult) Grid {
	g := Grid{
		Title: "Adaptive strategy (extension): fixed methods vs the cost advisor over a mixed delta stream",
		Header: []string{"L", "method", "stmts", "tuples", "tw-ios", "maxnode-ios", "msgs",
			"cache hit%", "picks"},
	}
	for _, r := range rs {
		g.Rows = append(g.Rows, []string{
			fmt.Sprintf("%d", r.L),
			r.Strategy,
			fmt.Sprintf("%d", r.Statements),
			fmt.Sprintf("%d", r.Tuples),
			fmt.Sprintf("%d", r.TWIOs),
			fmt.Sprintf("%d", r.MaxNodeIOs),
			fmt.Sprintf("%d", r.Messages),
			fmt.Sprintf("%.1f", 100*r.PlanCacheHitRate),
			formatPicks(r.Picks),
		})
	}
	return g
}

func formatPicks(picks map[string]int) string {
	if len(picks) == 0 {
		return "-"
	}
	keys := make([]string, 0, len(picks))
	for k := range picks {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for i, k := range keys {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s:%d", k, picks[k])
	}
	return s
}
