// Command goldengen regenerates the seed trace files the equivalence tests
// compare against: every measured experiment grid at the pinned golden
// axes, rendered to <dir>/<name>.golden. Only rerun it when a change is
// *supposed* to alter the traces — the whole point of the files is to catch
// changes that alter them by accident.
//
// Usage: go run ./internal/experiments/goldengen <dir>
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"joinview/internal/experiments"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: goldengen <dir>")
		os.Exit(2)
	}
	dir := os.Args[1]
	for _, tc := range experiments.GoldenCases() {
		g, err := tc.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", tc.Name, err)
			os.Exit(1)
		}
		if err := os.WriteFile(filepath.Join(dir, tc.Name+".golden"), []byte(g.Render()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("wrote", tc.Name)
	}
}
