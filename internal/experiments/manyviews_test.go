package experiments

import "testing"

// TestManyViewsSharedWins runs a small slice of the many-views experiment
// and pins its core claims: with a single view both execution modes are
// identical (no shared potential, classic path), and with a shared group
// the DAG executor does strictly less work over the very same stream.
func TestManyViewsSharedWins(t *testing.T) {
	rs, err := ManyViews(4, 4, []int{1, 10})
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[[2]interface{}]ManyViewsResult{}
	for _, r := range rs {
		byKey[[2]interface{}{r.Views, r.Shared}] = r
	}
	b1 := byKey[[2]interface{}{1, false}]
	s1 := byKey[[2]interface{}{1, true}]
	if b1.TWIOs != s1.TWIOs || b1.Messages != s1.Messages {
		t.Errorf("one view: shared run diverged from baseline (%d/%d vs %d/%d I/Os/messages)",
			s1.TWIOs, s1.Messages, b1.TWIOs, b1.Messages)
	}
	if s1.SharedJoinPages != 0 {
		t.Errorf("one view ran the shared pre-pass (%d pages): no shared potential expected", s1.SharedJoinPages)
	}
	b10 := byKey[[2]interface{}{10, false}]
	s10 := byKey[[2]interface{}{10, true}]
	if s10.TWIOs >= b10.TWIOs {
		t.Errorf("10 views: shared %d I/Os not below per-view %d", s10.TWIOs, b10.TWIOs)
	}
	if s10.Messages >= b10.Messages {
		t.Errorf("10 views: shared %d messages not below per-view %d", s10.Messages, b10.Messages)
	}
	if s10.SharedJoinPages == 0 {
		t.Error("10 views: shared pre-pass attributed no pages")
	}

	g := ManyViewsGrid(rs)
	if len(g.Rows) != 2 {
		t.Fatalf("grid has %d rows, want 2:\n%s", len(g.Rows), g.Render())
	}
}
