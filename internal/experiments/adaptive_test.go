package experiments

import "testing"

// TestAdaptiveBeatsFixedStrategies is the experiment's headline claim: over
// the mixed delta stream the cost-advisor-driven adaptive run never does
// more total work than the best fixed method (it discovers the winner per
// statement from the cached plan's options, paying nothing for keeping the
// alternatives open), clearly beats the mispinned methods, and reuses its
// compiled plan for every statement after the first.
func TestAdaptiveBeatsFixedStrategies(t *testing.T) {
	const statements = 120
	rs, err := AdaptiveStrategy(8, statements)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 4 {
		t.Fatalf("got %d results, want 4", len(rs))
	}
	var adaptive *AdaptiveResult
	bestFixed, worstFixed := int64(-1), int64(-1)
	bestLabel := ""
	for i := range rs {
		r := &rs[i]
		if r.Strategy == "adaptive" {
			adaptive = r
			continue
		}
		if bestFixed < 0 || r.TWIOs < bestFixed {
			bestFixed, bestLabel = r.TWIOs, r.Strategy
		}
		if r.TWIOs > worstFixed {
			worstFixed = r.TWIOs
		}
	}
	if adaptive == nil {
		t.Fatal("no adaptive row")
	}
	if adaptive.TWIOs > bestFixed {
		t.Errorf("adaptive TW %d exceeds best fixed (%s) %d", adaptive.TWIOs, bestLabel, bestFixed)
	}
	if adaptive.TWIOs >= worstFixed {
		t.Errorf("adaptive TW %d does not beat the worst fixed method %d — the comparison shows nothing",
			adaptive.TWIOs, worstFixed)
	}
	total := 0
	for _, n := range adaptive.Picks {
		total += n
	}
	if total != statements {
		t.Errorf("advisor consulted %d times, want %d: picks %v", total, statements, adaptive.Picks)
	}
	for _, r := range rs {
		if r.PlanCacheHitRate <= 0.99 {
			t.Errorf("%s: plan-cache hit rate %.4f (hits %d, misses %d), want > 0.99",
				r.Strategy, r.PlanCacheHitRate, r.PlanCacheHits, r.PlanCacheMisses)
		}
		if r.StagePages["base"] <= 0 || r.StagePages["view"] <= 0 {
			t.Errorf("%s: per-stage breakdown missing base/view pages: %v", r.Strategy, r.StagePages)
		}
	}
}

// TestAdaptiveDeltasMixRegimes pins the stream shape the experiment's
// claims depend on: both size regimes and both distributions present.
func TestAdaptiveDeltasMixRegimes(t *testing.T) {
	ds := AdaptiveDeltas(40)
	small, large, zipf := 0, 0, 0
	for _, d := range ds {
		if d.Size <= 8 {
			small++
		} else {
			large++
		}
		if d.Zipf {
			zipf++
		}
	}
	if small == 0 || large == 0 {
		t.Errorf("stream not mixed: %d small, %d large", small, large)
	}
	if zipf == 0 || zipf == len(ds) {
		t.Errorf("stream distribution not mixed: %d/%d zipf", zipf, len(ds))
	}
}
