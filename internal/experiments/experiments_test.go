package experiments

import (
	"strings"
	"testing"

	"joinview/internal/catalog"
	"joinview/internal/cost"
	"joinview/internal/node"
)

func TestGridRender(t *testing.T) {
	g := Grid{
		Title:  "T",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
	}
	out := g.Render()
	if !strings.HasPrefix(out, "T\n") || !strings.Contains(out, "333") {
		t.Errorf("Render = %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title + header + 2 rows
		t.Errorf("Render produced %d lines", len(lines))
	}
}

func TestFromSeries(t *testing.T) {
	s := cost.Fig7([]int{2, 4}, PaperN, PaperBPages, PaperMemPages)
	g := FromSeries(s)
	if len(g.Rows) != 2 || len(g.Header) != 6 {
		t.Fatalf("grid shape %dx%d", len(g.Rows), len(g.Header))
	}
	// AR column is the constant 3.
	if g.Rows[0][1] != "3" || g.Rows[1][1] != "3" {
		t.Errorf("AR column = %v", g.Rows)
	}
}

func TestModelGridsNonEmpty(t *testing.T) {
	for name, g := range map[string]Grid{
		"table1": Table1(100),
		"fig7":   Fig7Model(),
		"fig8":   Fig8Model(),
		"fig9":   Fig9Model(),
		"fig10":  Fig10Model(),
		"fig11":  Fig11Model(),
		"fig12":  Fig12Model(),
		"fig13":  Fig13Predicted([]int{2, 4, 8}),
	} {
		if len(g.Rows) == 0 || len(g.Header) < 2 || g.Title == "" {
			t.Errorf("%s: empty grid", name)
		}
	}
}

func TestTable1Ratios(t *testing.T) {
	g := Table1(100)
	if g.Rows[0][1] != "1500" || g.Rows[1][1] != "15000" || g.Rows[2][1] != "60000" {
		t.Errorf("Table1 = %v", g.Rows)
	}
}

// The headline reproduction check: measured single-tuple maintenance TW
// matches the analytical model exactly for every method variant (the
// simulator charges the same unit costs the model assumes).
func TestMeasuredTWMatchesModel(t *testing.T) {
	for _, l := range []int{2, 8} {
		m := cost.Model{L: l, N: PaperN, BPages: PaperBPages, MemPages: PaperMemPages}
		want := map[string]int64{
			"auxiliary relation":                int64(m.TWAuxRel()),
			"naive (non-clustered index)":       int64(m.TWNaive(false)),
			"naive (clustered index)":           int64(m.TWNaive(true)),
			"global index (dist non-clustered)": int64(m.TWGlobalIndex(false)),
		}
		for _, v := range Variants() {
			got, err := MeasuredTW(l, PaperN, v)
			if err != nil {
				t.Fatalf("L=%d %s: %v", l, v.Label, err)
			}
			if v.Label == "global index (dist clustered)" {
				// K is the realized owner count, <= min(N, L); the model
				// uses its expectation.
				lo, hi := int64(3+1), int64(3+min(PaperN, l))
				if got < lo || got > hi {
					t.Errorf("L=%d GI-clustered TW = %d, want in [%d, %d]", l, got, lo, hi)
				}
				continue
			}
			if got != want[v.Label] {
				t.Errorf("L=%d %s: measured TW = %d, model = %d", l, v.Label, got, want[v.Label])
			}
		}
	}
}

func TestFig7MeasuredShape(t *testing.T) {
	g, err := Fig7Measured([]int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Rows) != 2 || len(g.Header) != 6 {
		t.Fatalf("grid shape wrong: %+v", g)
	}
}

func TestFig9MeasuredARWins(t *testing.T) {
	g, err := Fig9Measured([]int{4})
	if err != nil {
		t.Fatal(err)
	}
	row := g.Rows[0]
	// Columns: L, AR, naive-nc, naive-c, gi-nc, gi-c. AR response must be
	// the smallest.
	ar := atoi(t, row[1])
	for i := 2; i < len(row); i++ {
		if atoi(t, row[i]) < ar {
			t.Errorf("AR (%d) should win Fig 9 at L=4; column %s = %s", ar, g.Header[i], row[i])
		}
	}
}

func TestFig14MeasuredShapes(t *testing.T) {
	results, err := Fig14Measured([]int{2, 4}, 1000, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 12 { // 2 Ls × 3 methods × 2 views
		t.Fatalf("got %d results", len(results))
	}
	find := func(l int, view string, m catalog.Strategy) Fig14Result {
		for _, r := range results {
			if r.L == l && r.View == view && r.Method == m {
				return r
			}
		}
		t.Fatalf("missing result %d/%s/%v", l, view, m)
		return Fig14Result{}
	}
	for _, l := range []int{2, 4} {
		for _, view := range []string{"jv1", "jv2"} {
			ar := find(l, view, catalog.StrategyAuxRel)
			naive := find(l, view, catalog.StrategyNaive)
			gi := find(l, view, catalog.StrategyGlobalIndex)
			if ar.MaxNodeIOs >= naive.MaxNodeIOs {
				t.Errorf("L=%d %s: AR (%d) should beat naive (%d)", l, view, ar.MaxNodeIOs, naive.MaxNodeIOs)
			}
			if gi.TotalIOs >= naive.TotalIOs {
				t.Errorf("L=%d %s: GI TW (%d) should beat naive TW (%d)", l, view, gi.TotalIOs, naive.TotalIOs)
			}
			// Every method computes the same join tuples.
			if ar.JoinTuples != naive.JoinTuples || gi.JoinTuples != naive.JoinTuples {
				t.Errorf("L=%d %s: methods disagree on join tuples: %d/%d/%d",
					l, view, ar.JoinTuples, naive.JoinTuples, gi.JoinTuples)
			}
		}
		// JV2 produces 4 lineitems per order: 32 new customers -> 32
		// jv1 tuples, 128 jv2 tuples.
		if jv1 := find(l, "jv1", catalog.StrategyNaive); jv1.JoinTuples != 32 {
			t.Errorf("L=%d: jv1 join tuples = %d, want 32", l, jv1.JoinTuples)
		}
		if jv2 := find(l, "jv2", catalog.StrategyNaive); jv2.JoinTuples != 128 {
			t.Errorf("L=%d: jv2 join tuples = %d, want 128", l, jv2.JoinTuples)
		}
	}
	// The AR speedup over naive grows with L (the paper's Fig 13/14
	// takeaway).
	speedup := func(l int) float64 {
		ar := find(l, "jv2", catalog.StrategyAuxRel)
		naive := find(l, "jv2", catalog.StrategyNaive)
		return float64(naive.MaxNodeIOs) / float64(ar.MaxNodeIOs)
	}
	if speedup(4) <= speedup(2) {
		t.Errorf("AR speedup should grow with L: %g at L=2 vs %g at L=4", speedup(2), speedup(4))
	}
	g := Fig14Grid(results)
	if len(g.Rows) != 2 || len(g.Header) != 7 {
		t.Errorf("Fig14Grid shape = %+v", g)
	}
}

func TestBufferingEffect(t *testing.T) {
	g, err := BufferingEffect(4, 500, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Rows) != 2 {
		t.Fatalf("rows = %v", g.Rows)
	}
	naiveLogical := atoi(t, g.Rows[0][1])
	naivePhysical := atoi(t, g.Rows[0][2])
	arLogical := atoi(t, g.Rows[1][1])
	arPhysical := atoi(t, g.Rows[1][2])
	// Logically the naive method does L× the AR work.
	if naiveLogical != 4*arLogical {
		t.Errorf("logical ratio = %d/%d, want 4x", naiveLogical, arLogical)
	}
	// Physically both collapse once the probed relation is resident —
	// "the performance of the naive and auxiliary relation methods became
	// comparable".
	if naivePhysical*10 > naiveLogical {
		t.Errorf("caching should absorb most naive I/O: physical %d vs logical %d", naivePhysical, naiveLogical)
	}
	if arPhysical > arLogical {
		t.Errorf("AR physical %d exceeds logical %d", arPhysical, arLogical)
	}
}

func TestSkewSensitivity(t *testing.T) {
	g, err := SkewSensitivity(8, 256, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Rows) != 3 {
		t.Fatalf("rows = %v", g.Rows)
	}
	// Naive is skew-immune: its two columns match.
	var naiveRow []string
	for _, r := range g.Rows {
		if r[0] == "naive (clustered index)" {
			naiveRow = r
		}
	}
	if naiveRow == nil || naiveRow[1] != naiveRow[2] {
		t.Errorf("naive should be skew-immune: %v", naiveRow)
	}
	// AR develops a hotspot: skewed > uniform.
	arRow := g.Rows[0]
	if atoi(t, arRow[2]) <= atoi(t, arRow[1]) {
		t.Errorf("AR should suffer under skew: %v", arRow)
	}
}

func TestStorageTradeoffOrdering(t *testing.T) {
	g, err := StorageTradeoff(4, PaperN)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Rows) != 3 {
		t.Fatalf("rows = %v", g.Rows)
	}
	// naive: zero space, most work; AR: most space, least work; GI between
	// on space (values) and work.
	naive, ar, gi := g.Rows[0], g.Rows[1], g.Rows[2]
	if atoi(t, naive[2]) != 0 {
		t.Errorf("naive extra values = %v", naive)
	}
	if !(atoi(t, gi[2]) < atoi(t, ar[2])) {
		t.Errorf("GI should store less than AR: %v vs %v", gi, ar)
	}
	if !(atoi(t, ar[3]) < atoi(t, gi[3]) && atoi(t, gi[3]) < atoi(t, naive[3])) {
		t.Errorf("TW ordering violated: %v / %v / %v", ar, gi, naive)
	}
}

func TestMeasuredResponseAlgos(t *testing.T) {
	// Forced sort-merge charges scan/sort pages instead of per-tuple
	// searches for the naive method.
	v := Variant{Label: "naive-c", Strategy: catalog.StrategyNaive, ClusterB: true}
	mxIdx, _, err := MeasuredResponse(4, PaperN, 50, v, node.AlgoIndex)
	if err != nil {
		t.Fatal(err)
	}
	mxSM, _, err := MeasuredResponse(4, PaperN, 50, v, node.AlgoSortMerge)
	if err != nil {
		t.Fatal(err)
	}
	if mxIdx == mxSM {
		t.Errorf("index (%d) and sort-merge (%d) should charge differently", mxIdx, mxSM)
	}
}

func atoi(t *testing.T, s string) int64 {
	t.Helper()
	var v int64
	for _, ch := range s {
		if ch < '0' || ch > '9' {
			t.Fatalf("not a number: %q", s)
		}
		v = v*10 + int64(ch-'0')
	}
	return v
}

func TestFaultOverhead(t *testing.T) {
	g, err := FaultOverhead(4, 40, 0.02, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Rows) != 3 {
		t.Fatalf("FaultOverhead rows = %d, want 3", len(g.Rows))
	}
	for _, row := range g.Rows {
		// I/Os must not balloon: retries resend messages, but dedup keeps
		// the work idempotent, so faulty I/Os stay within a few percent.
		clean, faulty := atoi(t, row[1]), atoi(t, row[2])
		msgsClean, msgsFaulty := atoi(t, row[3]), atoi(t, row[4])
		injected := atoi(t, row[6])
		if injected == 0 {
			t.Errorf("%s: no faults injected", row[0])
		}
		if faulty < clean {
			t.Errorf("%s: faulty I/Os %d < clean %d", row[0], faulty, clean)
		}
		if faulty > clean+clean/5 {
			t.Errorf("%s: faulty I/Os %d exceed clean %d by more than 20%%", row[0], faulty, clean)
		}
		if msgsFaulty < msgsClean {
			t.Errorf("%s: faulty msgs %d < clean %d", row[0], msgsFaulty, msgsClean)
		}
	}
}

func TestDurabilityOverheadAndReplayWins(t *testing.T) {
	g, err := Durability(8, 100, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Rows) != 3 {
		t.Fatalf("Durability rows = %d, want 3", len(g.Rows))
	}
	for _, row := range g.Rows {
		plain, durable := atoi(t, row[1]), atoi(t, row[2])
		msgsPlain, msgsDurable := atoi(t, row[3]), atoi(t, row[4])
		replay, rebuild := atoi(t, row[5]), atoi(t, row[6])
		// Logging and 2PC cost something, visible in both I/Os (log pages)
		// and messages (Prepare/Decide rounds).
		if durable <= plain {
			t.Errorf("%s: durable I/Os %d not above plain %d", row[0], durable, plain)
		}
		if msgsDurable <= msgsPlain {
			t.Errorf("%s: durable msgs %d not above plain %d", row[0], msgsDurable, msgsPlain)
		}
		// What they buy: recovery by checkpoint + log-tail replay reads
		// measurably fewer pages than a full derived-fragment rebuild.
		if replay >= rebuild {
			t.Errorf("%s: replay pages %d not below rebuild pages %d", row[0], replay, rebuild)
		}
	}
}
