package experiments

import (
	"fmt"

	"joinview/internal/catalog"
	"joinview/internal/cluster"
	"joinview/internal/node"
	"joinview/internal/types"
)

// The many-views experiment measures what the shared maintenance DAG buys
// when one base table feeds a large view population — the regime the
// paper's one-view-at-a-time evaluation never visits but real warehouses
// live in (per-analyst dashboards over the same fact tables). The schema
// is the TPC-R pair the paper's Teradata experiment uses: customer
// partitioned on custkey (the join attribute), orders partitioned on
// orderkey with a secondary index on custkey. V aggregate views join
// customer ⋈ orders on custkey, differing in their customer-side group
// columns but sharing the orders-side delta join. Every insert into
// customer therefore drives V maintenance plans whose chains are
// structurally identical: the per-view baseline probes orders' auxiliary
// relation V times, the shared DAG exactly once.
//
// Both runs use identical clusters, data and statement streams; only
// DisablePlanSharing differs, so any delta is the executor's sharing.

// Workload shape.
const (
	// manyViewsCustKeys is custkey's domain; orders carries manyViewsFanout
	// rows per custkey, so one inserted customer matches manyViewsFanout
	// orders — a deliberately heavy chain so probe cost, the shareable
	// part, dominates the per-view apply tail.
	manyViewsCustKeys = 160
	manyViewsFanout   = 64
)

// ManyViewsResult is one (view count, execution mode) measurement.
type ManyViewsResult struct {
	L          int
	Views      int
	Shared     bool
	Statements int
	// TWIOs is the paper's total workload over the stream; Messages the
	// interconnect traffic.
	TWIOs    int64
	Messages int64
	// SharedJoinPages / ViewStagePages attribute the I/Os to the shared
	// delta-join pre-pass vs the per-view stages (serial dispatch is
	// exact).
	SharedJoinPages int64
	ViewStagePages  int64
}

// ManyViewsCounts is the default view-population axis.
var ManyViewsCounts = []int{1, 10, 25, 50, 100}

// LoadManyViewsSchema loads the TPC-R pair and nviews aggregate views over
// it — the shared-group population the many-views experiment and the
// shared-DAG CI benchmarks both drive.
func LoadManyViewsSchema(c *cluster.Cluster, nviews int) error {
	if err := c.CreateTable(&catalog.Table{
		Name: "customer",
		Schema: types.NewSchema(
			types.Column{Name: "custkey", Kind: types.KindInt},
			types.Column{Name: "nation", Kind: types.KindInt},
			types.Column{Name: "acctbal", Kind: types.KindInt},
		),
		PartitionCol: "custkey",
	}); err != nil {
		return err
	}
	if err := c.CreateTable(&catalog.Table{
		Name: "orders",
		Schema: types.NewSchema(
			types.Column{Name: "orderkey", Kind: types.KindInt},
			types.Column{Name: "custkey", Kind: types.KindInt},
			types.Column{Name: "totalprice", Kind: types.KindInt},
		),
		PartitionCol: "orderkey",
		Indexes:      []catalog.Index{{Name: "ix_orders_custkey", Col: "custkey"}},
	}); err != nil {
		return err
	}
	rows := make([]types.Tuple, 0, manyViewsCustKeys*manyViewsFanout)
	id := int64(0)
	for ck := int64(0); ck < manyViewsCustKeys; ck++ {
		for f := 0; f < manyViewsFanout; f++ {
			id++
			rows = append(rows, types.Tuple{types.Int(id), types.Int(ck), types.Int(100 + id%900)})
		}
	}
	if err := c.Insert("orders", rows); err != nil {
		return err
	}
	if err := c.RefreshStats("orders"); err != nil {
		return err
	}
	// The views differ in their customer-side group columns (three
	// families) but share the orders-side join — the sharable structure.
	for i := 0; i < nviews; i++ {
		out := []catalog.OutCol{{Table: "customer", Col: "custkey"}}
		switch i % 3 {
		case 1:
			out = append(out, catalog.OutCol{Table: "customer", Col: "nation"})
		case 2:
			out = append(out, catalog.OutCol{Table: "customer", Col: "acctbal"})
		}
		if err := c.CreateView(&catalog.View{
			Name:     fmt.Sprintf("jv_%03d", i),
			Tables:   []string{"customer", "orders"},
			Joins:    []catalog.JoinPred{{Left: "customer", LeftCol: "custkey", Right: "orders", RightCol: "custkey"}},
			Out:      out,
			Aggs:     []catalog.AggSpec{{Func: "sum", Table: "orders", Col: "totalprice"}},
			Strategy: catalog.StrategyAuto,
		}); err != nil {
			return err
		}
	}
	c.ResetMetrics()
	return nil
}

// manyViewsStream inserts `statements` single customers with round-robin
// custkeys — each matching manyViewsFanout orders rows.
func manyViewsStream(c *cluster.Cluster, statements int) error {
	for s := 0; s < statements; s++ {
		tup := types.Tuple{
			types.Int(int64(s % manyViewsCustKeys)),
			types.Int(int64(s % 25)),
			types.Int(int64(1000 + s)),
		}
		if err := c.Insert("customer", []types.Tuple{tup}); err != nil {
			return err
		}
	}
	return nil
}

func runManyViews(l, nviews, statements int, shared bool) (ManyViewsResult, error) {
	c, err := newCluster(cluster.Config{Nodes: l, Algo: node.AlgoIndex, DisablePlanSharing: !shared})
	if err != nil {
		return ManyViewsResult{}, err
	}
	defer c.Close()
	if err := LoadManyViewsSchema(c, nviews); err != nil {
		return ManyViewsResult{}, err
	}
	if err := manyViewsStream(c, statements); err != nil {
		return ManyViewsResult{}, err
	}
	m := c.Metrics()
	res := ManyViewsResult{
		L: l, Views: nviews, Shared: shared, Statements: statements,
		TWIOs:    m.TotalIOs(),
		Messages: m.Net.Messages,
	}
	if sc, ok := m.Pipeline.Stages["sharedjoin"]; ok {
		res.SharedJoinPages = sc.Pages
	}
	if vc, ok := m.Pipeline.Stages["view"]; ok {
		res.ViewStagePages = vc.Pages
	}
	return res, nil
}

// ManyViews sweeps the view-count axis on an l-node cluster, running each
// population once with the shared maintenance DAG and once with per-view
// execution (DisablePlanSharing), over an identical statement stream.
func ManyViews(l, statements int, counts []int) ([]ManyViewsResult, error) {
	var out []ManyViewsResult
	for _, nv := range counts {
		for _, shared := range []bool{false, true} {
			r, err := runManyViews(l, nv, statements, shared)
			if err != nil {
				return nil, fmt.Errorf("views=%d shared=%v: %w", nv, shared, err)
			}
			out = append(out, r)
		}
	}
	return out, nil
}

// ManyViewsGrid pairs each view count's baseline and shared runs and
// reports the sharing win.
func ManyViewsGrid(rs []ManyViewsResult) Grid {
	g := Grid{
		Title: "Shared maintenance DAG (extension): V views over customer ⋈ orders, per-view baseline vs shared execution",
		Header: []string{"L", "views", "stmts", "tw-ios base", "tw-ios shared", "tw saved%",
			"msgs base", "msgs shared", "msg saved%", "sharedjoin-pages", "view-pages shared"},
	}
	base := map[int]ManyViewsResult{}
	for _, r := range rs {
		if !r.Shared {
			base[r.Views] = r
		}
	}
	for _, r := range rs {
		if !r.Shared {
			continue
		}
		b, ok := base[r.Views]
		if !ok {
			continue
		}
		g.Rows = append(g.Rows, []string{
			fmt.Sprintf("%d", r.L),
			fmt.Sprintf("%d", r.Views),
			fmt.Sprintf("%d", r.Statements),
			fmt.Sprintf("%d", b.TWIOs),
			fmt.Sprintf("%d", r.TWIOs),
			fmt.Sprintf("%.1f", pctSaved(b.TWIOs, r.TWIOs)),
			fmt.Sprintf("%d", b.Messages),
			fmt.Sprintf("%d", r.Messages),
			fmt.Sprintf("%.1f", pctSaved(b.Messages, r.Messages)),
			fmt.Sprintf("%d", r.SharedJoinPages),
			fmt.Sprintf("%d", r.ViewStagePages),
		})
	}
	return g
}

func pctSaved(base, shared int64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (1 - float64(shared)/float64(base))
}
