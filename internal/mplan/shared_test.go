package mplan

import (
	"strings"
	"testing"

	"joinview/internal/catalog"
	"joinview/internal/maintain"
	"joinview/internal/stats"
)

// TestSharedPotentialDetection pins the gate the executor uses to pick the
// shared-DAG path: a plan has shared potential exactly when at least two
// view stages can resolve to delta-join chains with a common prefix. One
// view — or views with disjoint chains — must take the classic per-view
// path, byte-for-byte.
func TestSharedPotentialDetection(t *testing.T) {
	// A single view never has shared potential.
	cat, st := testCatalog(t, rsView("jv", catalog.StrategyAuto))
	p, err := Compile(cat, st, "r", maintain.OpInsert)
	if err != nil {
		t.Fatal(err)
	}
	if p.SharedPotential {
		t.Error("single-view plan claims shared potential")
	}

	// Two structurally identical views share their whole chain.
	cat, st = testCatalog(t, rsView("jvA", catalog.StrategyAuto), rsView("jvB", catalog.StrategyAuto))
	p, err = Compile(cat, st, "r", maintain.OpInsert)
	if err != nil {
		t.Fatal(err)
	}
	if !p.SharedPotential {
		t.Error("two identical views compiled without shared potential")
	}
	if len(p.Views) != 2 {
		t.Errorf("plan views = %v, want 2 entries", p.Views)
	}
}

// TestDAGDeduplicatesCommonPrefixes checks the DAG construction itself:
// three views with identical delta-join chains collapse to one node per
// chain step, each node fanned out to all three.
func TestDAGDeduplicatesCommonPrefixes(t *testing.T) {
	cat, st := testCatalog(t,
		rsView("jvA", catalog.StrategyAuto),
		rsView("jvB", catalog.StrategyAuto),
		rsView("jvC", catalog.StrategyAuto))
	p, err := Compile(cat, st, "r", maintain.OpInsert)
	if err != nil {
		t.Fatal(err)
	}
	nodes, chosen := p.DAG(8, 16)
	if len(chosen) != 3 {
		t.Fatalf("chose %d strategies, want 3", len(chosen))
	}
	// r ⋈ s is a single delta-join step; identical across the views, so the
	// DAG is a single shared node.
	if len(nodes) != 1 {
		t.Fatalf("DAG has %d nodes, want 1 shared node:\n%+v", len(nodes), nodes)
	}
	n := &nodes[0]
	if !n.Shared() || len(n.Views) != 3 {
		t.Errorf("node feeds %v, want all three views", n.Views)
	}
	if n.Depth != 0 {
		t.Errorf("single-step chain at depth %d", n.Depth)
	}
	if n.Key == "" || n.Key != n.Step.ChainKey {
		t.Errorf("node key %q does not match its step's chain key %q", n.Key, n.Step.ChainKey)
	}

	// A pinned view forced onto a different structure keeps its own node.
	cat, st = testCatalog(t,
		rsView("jvA", catalog.StrategyAuxRel),
		rsView("jvB", catalog.StrategyGlobalIndex))
	p, err = Compile(cat, st, "r", maintain.OpInsert)
	if err != nil {
		t.Fatal(err)
	}
	nodes, _ = p.DAG(8, 16)
	if len(nodes) != 2 {
		t.Fatalf("distinct pinned strategies share a node: %+v", nodes)
	}
	for i := range nodes {
		if nodes[i].Shared() {
			t.Errorf("node %d wrongly shared: %+v", i, nodes[i])
		}
	}
}

// TestSharedTWModel checks the cost model the advisor and EXPLAIN rely on:
// shared pricing charges each distinct DAG node once, so it undercuts
// independent per-view pricing as soon as two views overlap, and the gap
// widens with the view population.
func TestSharedTWModel(t *testing.T) {
	mk := func(n int) (*Plan, error) {
		views := make([]*catalog.View, n)
		for i := range views {
			views[i] = rsView("jv"+string(rune('A'+i)), catalog.StrategyAuto)
		}
		cat, st := testCatalog(t, views...)
		return Compile(cat, st, "r", maintain.OpInsert)
	}
	p1, err := mk(1)
	if err != nil {
		t.Fatal(err)
	}
	s1, i1 := p1.SharedTW(8, 16)
	if s1 != i1 {
		t.Errorf("one view: shared %.1f != independent %.1f", s1, i1)
	}
	p4, err := mk(4)
	if err != nil {
		t.Fatal(err)
	}
	s4, i4 := p4.SharedTW(8, 16)
	if s4 >= i4 {
		t.Errorf("four views: shared %.1f not below independent %.1f", s4, i4)
	}
	// The shared price is population-insensitive up to the per-view apply
	// tail: 4 views share exactly the single chain 1 view runs.
	if s4 != s1 {
		t.Errorf("shared TW moved with the view population: %.1f vs %.1f", s4, s1)
	}
	if i4 <= i1 {
		t.Errorf("independent TW did not grow with the population: %.1f vs %.1f", i4, i1)
	}
}

// TestDescribeDAG smoke-tests the EXPLAIN rendering of the shared DAG.
func TestDescribeDAG(t *testing.T) {
	cat, st := testCatalog(t,
		rsView("jvA", catalog.StrategyAuto),
		rsView("jvB", catalog.StrategyAuto),
		rsView("jvC", catalog.StrategyAuto))
	p, err := Compile(cat, st, "r", maintain.OpInsert)
	if err != nil {
		t.Fatal(err)
	}
	out := p.DescribeDAG(8, 16)
	for _, want := range []string{
		"shared maintenance DAG for insert into r",
		"executed once, feeds 3 views",
		"jvA, jvB, jvC",
		"% saved",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DescribeDAG missing %q:\n%s", want, out)
		}
	}
	// Deterministic: rendering twice (fresh compile) is byte-identical.
	p2, err := Compile(cat, st, "r", maintain.OpInsert)
	if err != nil {
		t.Fatal(err)
	}
	if out != p2.DescribeDAG(8, 16) {
		t.Error("DescribeDAG not deterministic across recompiles")
	}
}

// advisorCatalog builds r ⋈ s with NO auxiliary structures and s
// partitioned off the join attribute: every view's only feasible strategy
// is naive broadcast, so the advisor has real savings to find.
func advisorCatalog(t *testing.T, nviews int) (*catalog.Catalog, *stats.Stats) {
	t.Helper()
	cat := catalog.New()
	for _, tb := range []*catalog.Table{intTable("r", "k", "a"), intTable("s", "b", "k")} {
		tb.ClusterCol = tb.PartitionCol
		if err := cat.AddTable(tb); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < nviews; i++ {
		if err := cat.AddView(rsView("jv"+string(rune('A'+i)), catalog.StrategyAuto)); err != nil {
			t.Fatal(err)
		}
	}
	st := stats.New()
	st.Set("r", stats.TableStats{Rows: 1000, Distinct: map[string]int64{"k": 100, "a": 10}})
	st.Set("s", stats.TableStats{Rows: 4000, Distinct: map[string]int64{"k": 100, "b": 20}})
	return cat, st
}

// TestAdviseRecommendsMissingStructures checks the materialization advisor
// end to end: with nothing materialized it recommends structures, prices a
// real saving, attributes each item to the views that use it, and never
// touches the catalog it was shown.
func TestAdviseRecommendsMissingStructures(t *testing.T) {
	cat, st := advisorCatalog(t, 2)
	v0 := cat.Version()
	adv, err := Advise(cat, st, 8)
	if err != nil {
		t.Fatal(err)
	}
	if cat.Version() != v0 {
		t.Fatal("Advise mutated the live catalog")
	}
	if len(cat.AuxRelsFor("s")) != 0 || len(cat.GlobalIndexesFor("s")) != 0 {
		t.Fatal("Advise materialized structures on the live catalog")
	}
	if len(adv.Items) == 0 {
		t.Fatalf("advisor found nothing with zero structures materialized:\n%s", adv.Describe())
	}
	if adv.AdvisedTW >= adv.BaselineTW {
		t.Errorf("advised TW %.1f not below baseline %.1f", adv.AdvisedTW, adv.BaselineTW)
	}
	for i := range adv.Items {
		it := &adv.Items[i]
		if it.SavedTW <= 0 {
			t.Errorf("item %d (%s %s) accepted with saving %.2f", i, it.Kind(), it.Name(), it.SavedTW)
		}
		// Both views have identical shape; any recommended structure serves
		// both of them.
		if len(it.ForViews) != 2 {
			t.Errorf("item %d (%s %s) attributed to %v, want both views", i, it.Kind(), it.Name(), it.ForViews)
		}
	}
	if d := adv.Describe(); !strings.Contains(d, "materialization advisor") {
		t.Errorf("Describe: %s", d)
	}

	// Apply every recommendation; a second run must find nothing further
	// (greedy already stopped when no candidate helped).
	for i := range adv.Items {
		it := &adv.Items[i]
		var err error
		if it.AuxRel != nil {
			err = cat.AddAuxRel(it.AuxRel)
		} else {
			err = cat.AddGlobalIndex(it.GlobalIndex)
		}
		if err != nil {
			t.Fatalf("applying %s %s: %v", it.Kind(), it.Name(), err)
		}
	}
	again, err := Advise(cat, st, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Items) != 0 {
		t.Errorf("advisor not converged after applying its own advice:\n%s", again.Describe())
	}
}

// TestAdviseDeterministic pins the report's stability: same catalog and
// statistics, same advice, in the same order.
func TestAdviseDeterministic(t *testing.T) {
	cat, st := advisorCatalog(t, 3)
	a1, err := Advise(cat, st, 8)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Advise(cat, st, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a1.Describe() != a2.Describe() {
		t.Errorf("advice diverged:\n%s\nvs\n%s", a1.Describe(), a2.Describe())
	}
}
