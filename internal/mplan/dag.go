package mplan

import (
	"fmt"
	"hash/fnv"
	"strings"

	"joinview/internal/catalog"
	"joinview/internal/cost"
	"joinview/internal/maintain"
	"joinview/internal/plan"
)

// The shared maintenance DAG: the per-(table, op) plan's view stages,
// viewed not as independent chains but as a prefix-sharing tree rooted at
// the update delta. Every delta-join step carries a structural ChainKey
// (internal/plan); steps with equal keys are one DAG node, executed once
// per statement and fanned out to every dependent view. Because the
// strategy of an auto view is chosen per statement (ViewStage.Choose), the
// concrete DAG is resolved at execution time; this file builds the same
// resolution for EXPLAIN tooling and the cost model.

// DAGNode is one hoisted delta-join node of the shared maintenance DAG.
type DAGNode struct {
	// Key is the node's structural chain identity (plan.Step.ChainKey).
	Key string
	// Step is the delta-join step the node executes (identical across all
	// plans that reference the node, by construction of ChainKey).
	Step plan.Step
	// Depth is the node's position in its chain (0 = joins directly
	// against the update delta).
	Depth int
	// Views are the dependent views, in stage (= name) order.
	Views []string
}

// Shared reports whether the node feeds more than one view.
func (n *DAGNode) Shared() bool { return len(n.Views) > 1 }

// DAG resolves every view stage's strategy for a delta of a tuples on an
// l-node cluster (exactly as the executor will) and returns the resulting
// shared maintenance DAG: one node per distinct chain prefix, in execution
// order (parents always precede children), plus each view's chosen
// strategy in stage order.
func (p *Plan) DAG(l, a int) ([]DAGNode, []catalog.Strategy) {
	var nodes []DAGNode
	index := map[string]int{}
	var chosen []catalog.Strategy
	for i := range p.Stages {
		s := &p.Stages[i]
		if s.Kind != StageView {
			continue
		}
		opt := s.View.Choose(l, a, p.ARCount, p.GICount)
		chosen = append(chosen, opt.Strategy)
		for depth, step := range opt.Plan.Steps {
			if ni, ok := index[step.ChainKey]; ok {
				nodes[ni].Views = append(nodes[ni].Views, s.View.View.Name)
				continue
			}
			index[step.ChainKey] = len(nodes)
			nodes = append(nodes, DAGNode{
				Key:   step.ChainKey,
				Step:  step,
				Depth: depth,
				Views: []string{s.View.View.Name},
			})
		}
	}
	return nodes, chosen
}

// twChainOf projects one delta-join plan onto the shared cost model: one
// priced step per plan step, keyed by its structural chain identity.
func twChainOf(pl *plan.Plan) []cost.TWStep {
	steps := make([]cost.TWStep, len(pl.Steps))
	for i, s := range pl.Steps {
		mode := cost.TWBroadcast
		switch s.Via {
		case plan.ViaRoute:
			mode = cost.TWRoute
		case plan.ViaGlobalIndex:
			mode = cost.TWGlobalIndex
		}
		steps[i] = cost.TWStep{
			Key:       s.ChainKey,
			Mode:      mode,
			Fanout:    s.Fanout,
			Clustered: s.FragClusteredOnCol,
		}
	}
	return steps
}

// SharedTW returns the modeled total workload of the plan's delta-join
// chains for a delta of a tuples — shared DAG pricing (each distinct node
// once) and independent per-view pricing — using the strategies the
// executor would choose. Upkeep of the updated table's own auxiliary
// structures is included in both (it is charged once either way).
func (p *Plan) SharedTW(l, a int) (shared, independent float64) {
	var chains [][]cost.TWStep
	for i := range p.Stages {
		s := &p.Stages[i]
		if s.Kind != StageView {
			continue
		}
		opt := s.View.Choose(l, a, p.ARCount, p.GICount)
		chains = append(chains, twChainOf(opt.Plan))
	}
	upkeep := float64(p.ARCount + p.GICount)
	shared = cost.TotalShared(l, a, chains, upkeep)
	independent = upkeep * float64(a) * cost.IOInsert
	for _, ch := range chains {
		independent += cost.ChainTW(l, a, ch)
	}
	return shared, independent
}

// ShortKey compresses a structural chain key into a stable 8-hex-digit tag
// for display.
func ShortKey(key string) string {
	h := fnv.New32a()
	h.Write([]byte(key))
	return fmt.Sprintf("%08x", h.Sum32())
}

// DescribeDAG renders the shared maintenance DAG the executor would run
// for a delta of a tuples on l nodes, annotating each hoisted node with
// how many views consume its result.
func (p *Plan) DescribeDAG(l, a int) string {
	var sb strings.Builder
	op := "insert"
	if p.Op == maintain.OpDelete {
		op = "delete"
	}
	nodes, chosen := p.DAG(l, a)
	fmt.Fprintf(&sb, "shared maintenance DAG for %s into %s (delta %d, L=%d, %d views)\n",
		op, p.Table.Name, a, l, len(p.Views))
	if len(nodes) == 0 {
		sb.WriteString("  (no dependent views)\n")
		return sb.String()
	}
	perView := 0
	for ni := range nodes {
		n := &nodes[ni]
		perView += len(n.Views)
		indent := strings.Repeat("  ", n.Depth+1)
		fmt.Fprintf(&sb, "%snode %s: %s join %s via %s on %s = %s.%s",
			indent, ShortKey(n.Key), n.Step.Via, n.Step.Table, n.Step.Frag,
			n.Step.DeltaCol, n.Step.Table, n.Step.FragCol)
		if n.Shared() {
			fmt.Fprintf(&sb, " — executed once, feeds %d views: %s", len(n.Views), joinCapped(n.Views, 6))
		} else {
			fmt.Fprintf(&sb, " — feeds view %s", n.Views[0])
		}
		sb.WriteByte('\n')
	}
	byStrategy := map[catalog.Strategy]int{}
	for _, s := range chosen {
		byStrategy[s]++
	}
	var stratParts []string
	for _, s := range []catalog.Strategy{catalog.StrategyAuxRel, catalog.StrategyGlobalIndex, catalog.StrategyNaive} {
		if byStrategy[s] > 0 {
			stratParts = append(stratParts, fmt.Sprintf("%d %s", byStrategy[s], s))
		}
	}
	shared, independent := p.SharedTW(l, a)
	fmt.Fprintf(&sb, "  %d DAG nodes replace %d per-view steps (%s); modeled TW %.0f vs %.0f unshared",
		len(nodes), perView, strings.Join(stratParts, ", "), shared, independent)
	if independent > 0 && shared < independent {
		fmt.Fprintf(&sb, " (%.1f%% saved)", 100*(1-shared/independent))
	}
	sb.WriteByte('\n')
	return sb.String()
}

// joinCapped joins names, eliding the tail past max.
func joinCapped(names []string, max int) string {
	if len(names) <= max {
		return strings.Join(names, ", ")
	}
	return strings.Join(names[:max], ", ") + fmt.Sprintf(", … (+%d more)", len(names)-max)
}
