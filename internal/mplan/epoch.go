package mplan

import (
	"fmt"
	"strings"

	"joinview/internal/catalog"
	"joinview/internal/maintain"
	"joinview/internal/stats"
)

// This file is the batched-delta entry point of the compiled maintenance
// pipeline: one flush epoch of the async queue compiles to an ordered
// list of per-group pipeline runs, each reusing the same per-(table, op)
// Plan the synchronous write path executes — an epoch is the per-statement
// pipeline amortized over a compacted delta, not a different algorithm.

// GroupSpec names one compacted delta group of an epoch: every tuple of
// the group flows through one (table, op) pipeline run.
type GroupSpec struct {
	Table string
	Op    maintain.Op
	// DeltaSize is the compacted group's tuple count, the advisor's input
	// when the epoch executes.
	DeltaSize int
}

// EpochStep pairs one group with its compiled plan.
type EpochStep struct {
	Group GroupSpec
	Plan  *Plan
}

// EpochPlan is the compiled maintenance work of one flush epoch: the
// groups' pipelines in execution order (per table: deletes before
// inserts, so a net row movement lands in its final position).
type EpochPlan struct {
	Steps []EpochStep
}

// CompileEpoch builds the epoch plan for the given groups in order. fetch
// resolves one (table, op) plan — pass the cluster's cached lookup so an
// epoch compiles each distinct (table, op) pair at most once per cache
// generation, or nil to compile from the catalog directly.
func CompileEpoch(cat *catalog.Catalog, st *stats.Stats, groups []GroupSpec,
	fetch func(table string, op maintain.Op) (*Plan, error)) (*EpochPlan, error) {
	if fetch == nil {
		fetch = func(table string, op maintain.Op) (*Plan, error) {
			return Compile(cat, st, table, op)
		}
	}
	ep := &EpochPlan{Steps: make([]EpochStep, 0, len(groups))}
	for _, g := range groups {
		p, err := fetch(g.Table, g.Op)
		if err != nil {
			return nil, fmt.Errorf("mplan: epoch group (%s, %s): %w", g.Table, g.Op, err)
		}
		ep.Steps = append(ep.Steps, EpochStep{Group: g, Plan: p})
	}
	return ep, nil
}

// TW returns the epoch's modeled total workload on an l-node cluster:
// the sum over groups of each view stage's chosen-strategy TW for the
// group's compacted delta size — the analytical counterpart of what the
// executor will charge, used by EXPLAIN tooling and the experiments'
// sanity checks.
func (ep *EpochPlan) TW(l int) float64 {
	var tw float64
	for _, s := range ep.Steps {
		for i := range s.Plan.Stages {
			st := &s.Plan.Stages[i]
			if st.Kind != StageView {
				continue
			}
			opt := st.View.Choose(l, s.Group.DeltaSize, s.Plan.ARCount, s.Plan.GICount)
			tw += opt.TW(l, s.Group.DeltaSize, s.Plan.ARCount, s.Plan.GICount)
		}
	}
	return tw
}

// Describe renders the epoch plan for EXPLAIN-style tooling.
func (ep *EpochPlan) Describe() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "epoch plan (%d groups)\n", len(ep.Steps))
	for i, s := range ep.Steps {
		op := "insert"
		if s.Group.Op == maintain.OpDelete {
			op = "delete"
		}
		fmt.Fprintf(&sb, " group %d: %s %d tuple(s) into %s (%d stages)\n",
			i+1, op, s.Group.DeltaSize, s.Group.Table, len(s.Plan.Stages))
	}
	return sb.String()
}
