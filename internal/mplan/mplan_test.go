package mplan

import (
	"strings"
	"testing"

	"joinview/internal/catalog"
	"joinview/internal/cost"
	"joinview/internal/maintain"
	"joinview/internal/stats"
	"joinview/internal/types"
)

func intTable(name string, cols ...string) *catalog.Table {
	cc := make([]types.Column, len(cols))
	for i, c := range cols {
		cc[i] = types.Column{Name: c, Kind: types.KindInt}
	}
	return &catalog.Table{Name: name, Schema: types.NewSchema(cc...), PartitionCol: cols[0]}
}

func rsView(name string, strategy catalog.Strategy) *catalog.View {
	return &catalog.View{
		Name:     name,
		Tables:   []string{"r", "s"},
		Joins:    []catalog.JoinPred{{Left: "r", LeftCol: "k", Right: "s", RightCol: "k"}},
		Strategy: strategy,
	}
}

// testCatalog builds r(k,a) ⋈ s(b,k) with full auxiliary structures on both
// sides, so every strategy is feasible for updates to either table. Both
// tables partition on a non-join attribute of the other side's probe (s on
// b), so the auxrel and globalindex strategies genuinely need their
// structures.
func testCatalog(t *testing.T, views ...*catalog.View) (*catalog.Catalog, *stats.Stats) {
	t.Helper()
	cat := catalog.New()
	for _, tb := range []*catalog.Table{intTable("r", "k", "a"), intTable("s", "b", "k")} {
		tb.ClusterCol = tb.PartitionCol
		if err := cat.AddTable(tb); err != nil {
			t.Fatal(err)
		}
	}
	for _, ar := range []*catalog.AuxRel{
		{Name: "ar_r", Table: "r", PartitionCol: "k"},
		{Name: "ar_s", Table: "s", PartitionCol: "k"},
	} {
		if err := cat.AddAuxRel(ar); err != nil {
			t.Fatal(err)
		}
	}
	for _, gi := range []*catalog.GlobalIndex{
		{Name: "gi_r", Table: "r", Col: "k"},
		{Name: "gi_s", Table: "s", Col: "k"},
	} {
		if err := cat.AddGlobalIndex(gi); err != nil {
			t.Fatal(err)
		}
	}
	for _, v := range views {
		if err := cat.AddView(v); err != nil {
			t.Fatal(err)
		}
	}
	st := stats.New()
	st.Set("r", stats.TableStats{Rows: 100, Distinct: map[string]int64{"k": 100, "a": 10}})
	st.Set("s", stats.TableStats{Rows: 400, Distinct: map[string]int64{"k": 100, "b": 20}})
	return cat, st
}

func stageSummary(p *Plan) []string {
	out := make([]string, len(p.Stages))
	for i, s := range p.Stages {
		switch s.Kind {
		case StageBase:
			out[i] = "base"
		case StageAuxRel:
			out[i] = "auxrel:" + s.AR.Name
		case StageGlobalIndex:
			out[i] = "globalindex:" + s.GI.Name
		case StageView:
			out[i] = "view:" + s.View.View.Name
		}
	}
	return out
}

func TestCompileStageOrder(t *testing.T) {
	// Two views added out of name order: the compiled stage list must be
	// base, then ARs, then GIs, then views, each group in name order — the
	// sequence the seed executor used.
	cat, st := testCatalog(t, rsView("jvB", catalog.StrategyAuto), rsView("jvA", catalog.StrategyAuto))
	if err := cat.AddAuxRel(&catalog.AuxRel{Name: "aa_r", Table: "r", PartitionCol: "k"}); err != nil {
		t.Fatal(err)
	}
	p, err := Compile(cat, st, "r", maintain.OpInsert)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"base", "auxrel:aa_r", "auxrel:ar_r", "globalindex:gi_r", "view:jvA", "view:jvB"}
	got := stageSummary(p)
	if len(got) != len(want) {
		t.Fatalf("stages = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stage %d = %q, want %q (full: %v)", i, got[i], want[i], got)
		}
	}
	if p.ARCount != 2 || p.GICount != 1 {
		t.Errorf("ARCount,GICount = %d,%d, want 2,1", p.ARCount, p.GICount)
	}

	// Compilation is deterministic: a second compile renders identically.
	p2, err := Compile(cat, st, "r", maintain.OpInsert)
	if err != nil {
		t.Fatal(err)
	}
	if p.Describe() != p2.Describe() {
		t.Errorf("recompile diverged:\n%s\nvs\n%s", p.Describe(), p2.Describe())
	}
}

func TestCompileViewPinnedAndAuto(t *testing.T) {
	cat, st := testCatalog(t, rsView("jv_pin", catalog.StrategyNaive), rsView("jv_auto", catalog.StrategyAuto))

	pin, _ := cat.View("jv_pin")
	vs, err := CompileView(cat, st, pin, "r")
	if err != nil {
		t.Fatal(err)
	}
	if !vs.Pinned || len(vs.Options) != 1 || vs.Options[0].Strategy != catalog.StrategyNaive {
		t.Errorf("pinned view compiled to %+v", vs)
	}
	// Pinned bypasses the advisor: Choose returns the single option for any
	// delta size.
	for _, a := range []int{1, 1000} {
		if got := vs.Choose(8, a, 1, 1); got.Strategy != catalog.StrategyNaive {
			t.Errorf("pinned Choose(a=%d) = %v", a, got.Strategy)
		}
	}

	auto, _ := cat.View("jv_auto")
	vs, err = CompileView(cat, st, auto, "r")
	if err != nil {
		t.Fatal(err)
	}
	if vs.Pinned {
		t.Error("auto view compiled as pinned")
	}
	wantOrder := []catalog.Strategy{catalog.StrategyAuxRel, catalog.StrategyGlobalIndex, catalog.StrategyNaive}
	if len(vs.Options) != len(wantOrder) {
		t.Fatalf("auto view has %d options, want %d", len(vs.Options), len(wantOrder))
	}
	for i, s := range wantOrder {
		if vs.Options[i].Strategy != s {
			t.Errorf("option %d = %v, want %v", i, vs.Options[i].Strategy, s)
		}
	}
}

func TestCompileViewSkipsInfeasibleStrategies(t *testing.T) {
	// No auxiliary structures on the probed table s, and s partitioned off
	// the join attribute: only naive is feasible for updates to r.
	cat := catalog.New()
	for _, tb := range []*catalog.Table{intTable("r", "k", "a"), intTable("s", "b", "k")} {
		if err := cat.AddTable(tb); err != nil {
			t.Fatal(err)
		}
	}
	if err := cat.AddView(rsView("jv", catalog.StrategyAuto)); err != nil {
		t.Fatal(err)
	}
	st := stats.New()
	v, _ := cat.View("jv")
	vs, err := CompileView(cat, st, v, "r")
	if err != nil {
		t.Fatal(err)
	}
	if len(vs.Options) != 1 || vs.Options[0].Strategy != catalog.StrategyNaive {
		t.Errorf("options = %v, want [naive]", vs.Options)
	}

	// A pinned strategy whose structures are missing is a compile error, not
	// a silent fallback.
	if err := cat.AddView(rsView("jv_pin", catalog.StrategyAuxRel)); err != nil {
		t.Fatal(err)
	}
	pin, _ := cat.View("jv_pin")
	if _, err := CompileView(cat, st, pin, "r"); err == nil {
		t.Error("pinned auxrel without an AR compiled without error")
	}
}

func TestChooseStrictLessKeepsEarlierOption(t *testing.T) {
	// Two options with identical strategy and chain model the same TW; the
	// advisor's tie rule keeps the earlier one.
	chain := []cost.ChainStep{{Fanout: 4, Clustered: true}}
	vs := &ViewStage{Options: []StrategyOption{
		{Strategy: catalog.StrategyNaive, Chain: chain},
		{Strategy: catalog.StrategyNaive, Chain: chain},
	}}
	if got := vs.Choose(8, 16, 0, 0); got != &vs.Options[0] {
		t.Error("tie did not keep the earlier option")
	}
}

func TestChooseMatchesBruteForceMinimum(t *testing.T) {
	cat, st := testCatalog(t, rsView("jv", catalog.StrategyAuto))
	v, _ := cat.View("jv")
	vs, err := CompileView(cat, st, v, "r")
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []int{1, 8, 64, 512, 4096} {
		got := vs.Choose(8, a, 1, 1)
		best, bestTW := &vs.Options[0], vs.Options[0].TW(8, a, 1, 1)
		for i := 1; i < len(vs.Options); i++ {
			if tw := vs.Options[i].TW(8, a, 1, 1); tw < bestTW {
				best, bestTW = &vs.Options[i], tw
			}
		}
		if got != best {
			t.Errorf("a=%d: Choose picked %v (TW %.1f), brute force %v (TW %.1f)",
				a, got.Strategy, got.TW(8, a, 1, 1), best.Strategy, bestTW)
		}
	}
}

func TestValidTracksCatalogVersionAndFanoutDeps(t *testing.T) {
	cat, st := testCatalog(t, rsView("jv", catalog.StrategyAuto))
	p, err := Compile(cat, st, "r", maintain.OpInsert)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Valid(cat, st) {
		t.Fatal("fresh plan invalid")
	}
	// Deps record the probed side (s.k) but never the updated table's own
	// statistics.
	foundS := false
	for _, d := range p.Deps {
		if d.Table == "r" {
			t.Errorf("plan depends on the updated table's own stats: %+v", d)
		}
		if d.Table == "s" && d.Col == "k" {
			foundS = true
		}
	}
	if !foundS {
		t.Errorf("deps %v missing s.k", p.Deps)
	}

	// The updated table's stats move after every statement; that must not
	// invalidate the plan.
	st.Set("r", stats.TableStats{Rows: 101, Distinct: map[string]int64{"k": 101, "a": 10}})
	if !p.Valid(cat, st) {
		t.Error("self-stats bump invalidated the plan")
	}
	// A probed table's fan-out drift must.
	st.Set("s", stats.TableStats{Rows: 800, Distinct: map[string]int64{"k": 100, "b": 20}})
	if p.Valid(cat, st) {
		t.Error("probed-table fan-out drift did not invalidate the plan")
	}
	st.Set("s", stats.TableStats{Rows: 400, Distinct: map[string]int64{"k": 100, "b": 20}})
	if !p.Valid(cat, st) {
		t.Fatal("restoring stats did not restore validity")
	}
	// Any catalog mutation bumps the version and invalidates every plan.
	if err := cat.AddIndex("s", catalog.Index{Name: "ix_b", Col: "b"}); err != nil {
		t.Fatal(err)
	}
	if p.Valid(cat, st) {
		t.Error("catalog version bump did not invalidate the plan")
	}
}

func TestCacheGetHitMissEvict(t *testing.T) {
	cat, st := testCatalog(t, rsView("jv", catalog.StrategyAuto))
	c := NewCache()
	p1, hit, err := c.Get(cat, st, "r", maintain.OpInsert)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first lookup hit")
	}
	p2, hit, err := c.Get(cat, st, "r", maintain.OpInsert)
	if err != nil {
		t.Fatal(err)
	}
	if !hit || p2 != p1 {
		t.Error("second lookup did not reuse the cached plan")
	}
	// Ops cache independently.
	if _, hit, _ := c.Get(cat, st, "r", maintain.OpDelete); hit {
		t.Error("delete plan hit off the insert entry")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}

	// DDL invalidates; the next lookup recompiles in place.
	if err := cat.DropView("jv"); err != nil {
		t.Fatal(err)
	}
	p3, hit, err := c.Get(cat, st, "r", maintain.OpInsert)
	if err != nil {
		t.Fatal(err)
	}
	if hit || p3 == p1 {
		t.Error("stale plan returned after DDL")
	}
	if p3.Version == p1.Version {
		t.Error("recompiled plan kept the old catalog version")
	}

	// When recompilation fails (table gone), the stale entry is evicted.
	for _, ar := range []string{"ar_r", "ar_s"} {
		if err := cat.DropAuxRel(ar); err != nil {
			t.Fatal(err)
		}
	}
	for _, gi := range []string{"gi_r", "gi_s"} {
		if err := cat.DropGlobalIndex(gi); err != nil {
			t.Fatal(err)
		}
	}
	for _, tb := range []string{"s", "r"} {
		if err := cat.DropTable(tb); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := c.Get(cat, st, "r", maintain.OpInsert); err == nil {
		t.Fatal("Get succeeded for a dropped table")
	}
	if _, ok := c.Peek("r", maintain.OpInsert); ok {
		t.Error("stale plan survived a failed recompile")
	}

	c.Purge()
	if c.Len() != 0 {
		t.Errorf("Len after Purge = %d", c.Len())
	}
}

func TestDescribe(t *testing.T) {
	cat, st := testCatalog(t, rsView("jv", catalog.StrategyAuto), rsView("jv_pin", catalog.StrategyGlobalIndex))
	p, err := Compile(cat, st, "r", maintain.OpInsert)
	if err != nil {
		t.Fatal(err)
	}
	d := p.Describe()
	for _, want := range []string{
		"pipeline for insert into r",
		"base",
		"ar_r", "gi_r",
		"jv (adaptive: auxrel|globalindex|naive)",
		"jv_pin (pinned: globalindex)",
	} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe missing %q:\n%s", want, d)
		}
	}
	pd, err := Compile(cat, st, "r", maintain.OpDelete)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(pd.Describe(), "pipeline for delete into r") {
		t.Errorf("delete Describe:\n%s", pd.Describe())
	}
}
