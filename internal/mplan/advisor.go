package mplan

import (
	"fmt"
	"sort"
	"strings"

	"joinview/internal/catalog"
	"joinview/internal/maintain"
	"joinview/internal/plan"
	"joinview/internal/stats"
)

// The materialization advisor: given the current schema, view set and
// statistics, which auxiliary relations and global indexes are worth
// materializing? Each candidate is priced on a shadow catalog under the
// shared-DAG cost model (cost.TotalShared via Plan.SharedTW): its benefit
// is the drop in modeled maintenance workload across a uniform update
// round — one single-tuple insert into every base table — and its cost is
// the structure's own upkeep, which SharedTW already charges on updates of
// the structure's table. Selection is greedy: accept the candidate with
// the largest marginal saving, reprice, repeat until nothing helps.
//
// The advisor only reports; it never mutates the live catalog. Shadow
// catalogs hold copies of every mutable object, because catalog
// registration (AddView, AddAuxRel, AddGlobalIndex) writes derived fields
// into the structs it is handed.

// AdviceItem is one recommended auxiliary structure.
type AdviceItem struct {
	// Exactly one of AuxRel / GlobalIndex is set.
	AuxRel      *catalog.AuxRel
	GlobalIndex *catalog.GlobalIndex
	// ForViews are the views whose maintenance plans would use the
	// structure, sorted.
	ForViews []string
	// SavedTW is the marginal modeled workload reduction (I/O units per
	// uniform update round) when the item was accepted, after everything
	// recommended before it.
	SavedTW float64
}

// Name returns the recommended structure's name.
func (it *AdviceItem) Name() string {
	if it.AuxRel != nil {
		return it.AuxRel.Name
	}
	return it.GlobalIndex.Name
}

// Kind returns "auxrel" or "globalindex".
func (it *AdviceItem) Kind() string {
	if it.AuxRel != nil {
		return "auxrel"
	}
	return "globalindex"
}

// Advice is the advisor's report.
type Advice struct {
	// Items in acceptance order (largest marginal saving first).
	Items []AdviceItem
	// BaselineTW / AdvisedTW are the modeled workloads of one uniform
	// update round before and after materializing every item.
	BaselineTW float64
	AdvisedTW  float64
}

// Describe renders the report for tooling.
func (a *Advice) Describe() string {
	var sb strings.Builder
	if len(a.Items) == 0 {
		sb.WriteString("materialization advisor: nothing to add — current structures already minimize modeled TW\n")
		return sb.String()
	}
	fmt.Fprintf(&sb, "materialization advisor: %d recommendations (modeled TW %.0f -> %.0f per update round)\n",
		len(a.Items), a.BaselineTW, a.AdvisedTW)
	for i := range a.Items {
		it := &a.Items[i]
		detail := ""
		if it.AuxRel != nil {
			detail = fmt.Sprintf("%s on %s.%s (cols %s)", it.AuxRel.Name, it.AuxRel.Table,
				it.AuxRel.PartitionCol, strings.Join(it.AuxRel.Cols, ","))
		} else {
			detail = fmt.Sprintf("%s on %s.%s", it.GlobalIndex.Name, it.GlobalIndex.Table, it.GlobalIndex.Col)
		}
		fmt.Fprintf(&sb, "  %d. %-11s %s — saves %.0f TW, used by %d views\n",
			i+1, it.Kind(), detail, it.SavedTW, len(it.ForViews))
	}
	return sb.String()
}

// candidate is one not-yet-materialized structure some view could use.
type candidate struct {
	ar    *catalog.AuxRel
	gi    *catalog.GlobalIndex
	views map[string]bool
}

func (cd *candidate) forViews() []string {
	out := make([]string, 0, len(cd.views))
	for v := range cd.views {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Advise prices every missing auxiliary structure the current views could
// use and returns the greedily chosen set that minimizes the modeled
// shared-DAG maintenance workload on an l-node cluster.
func Advise(cat *catalog.Catalog, st *stats.Stats, l int) (*Advice, error) {
	shadow, err := shadowCatalog(cat)
	if err != nil {
		return nil, err
	}
	baseline, err := workloadTW(shadow, st, l)
	if err != nil {
		return nil, err
	}
	cands, err := enumerateCandidates(cat)
	if err != nil {
		return nil, err
	}
	adv := &Advice{BaselineTW: baseline, AdvisedTW: baseline}
	for len(cands) > 0 {
		bestIdx := -1
		bestTW := adv.AdvisedTW
		for i := range cands {
			trial, err := shadowCatalog(shadow)
			if err != nil {
				return nil, err
			}
			if err := addCandidate(trial, &cands[i]); err != nil {
				continue // infeasible in this state (e.g. name taken)
			}
			tw, err := workloadTW(trial, st, l)
			if err != nil {
				continue
			}
			// Strict improvement beyond float noise, ties broken by
			// enumeration order (sorted, so deterministic).
			if tw < bestTW-1e-6 {
				bestIdx, bestTW = i, tw
			}
		}
		if bestIdx < 0 {
			break
		}
		cd := cands[bestIdx]
		if err := addCandidate(shadow, &cd); err != nil {
			return nil, err
		}
		adv.Items = append(adv.Items, AdviceItem{
			AuxRel:      cd.ar,
			GlobalIndex: cd.gi,
			ForViews:    cd.forViews(),
			SavedTW:     adv.AdvisedTW - bestTW,
		})
		adv.AdvisedTW = bestTW
		cands = append(cands[:bestIdx], cands[bestIdx+1:]...)
	}
	return adv, nil
}

// workloadTW prices one uniform update round — a single-tuple insert into
// every base table — under the shared-DAG executor's cost model.
func workloadTW(cat *catalog.Catalog, st *stats.Stats, l int) (float64, error) {
	total := 0.0
	for _, tn := range cat.Tables() {
		mp, err := Compile(cat, st, tn, maintain.OpInsert)
		if err != nil {
			return 0, err
		}
		shared, _ := mp.SharedTW(l, 1)
		total += shared
	}
	return total, nil
}

// enumerateCandidates lists the auxiliary structures the views' strategies
// could use but the catalog lacks. AR candidates for the same (table, join
// attribute) are merged by unioning their column sets, mirroring the
// covering-reuse dedup view creation performs.
func enumerateCandidates(cat *catalog.Catalog) ([]candidate, error) {
	byKey := map[string]*candidate{}
	var keys []string
	for _, vn := range cat.Views() {
		v, err := cat.View(vn)
		if err != nil {
			return nil, err
		}
		arSpecs, err := plan.AuxRelSpecs(cat, v)
		if err != nil {
			return nil, err
		}
		for i := range arSpecs {
			spec := arSpecs[i]
			if _, ok := cat.AuxRelOn(spec.Table, spec.PartitionCol, spec.Cols); ok {
				continue
			}
			key := "ar:" + spec.Table + ":" + spec.PartitionCol
			cd, ok := byKey[key]
			if !ok {
				cd = &candidate{ar: &spec, views: map[string]bool{}}
				byKey[key] = cd
				keys = append(keys, key)
			} else {
				cd.ar.Cols = unionCols(cat, spec.Table, cd.ar.Cols, spec.Cols)
			}
			cd.views[vn] = true
		}
		giSpecs, err := plan.GlobalIndexSpecs(cat, v)
		if err != nil {
			return nil, err
		}
		for i := range giSpecs {
			spec := giSpecs[i]
			if _, ok := cat.GlobalIndexOn(spec.Table, spec.Col); ok {
				continue
			}
			key := "gi:" + spec.Table + ":" + spec.Col
			cd, ok := byKey[key]
			if !ok {
				cd = &candidate{gi: &spec, views: map[string]bool{}}
				byKey[key] = cd
				keys = append(keys, key)
			}
			cd.views[vn] = true
		}
	}
	sort.Strings(keys)
	out := make([]candidate, 0, len(keys))
	for _, k := range keys {
		cd := byKey[k]
		if cd.ar != nil {
			// The derived name may be taken by a narrower AR; suffix like
			// view creation does.
			base := cd.ar.Name
			for n := 2; ; n++ {
				if _, err := cat.AuxRel(cd.ar.Name); err != nil {
					break
				}
				cd.ar.Name = fmt.Sprintf("%s_%d", base, n)
			}
			cd.ar.AutoCreated = true
		}
		out = append(out, *cd)
	}
	return out, nil
}

// unionCols unions two column subsets of one table, in base-schema order.
func unionCols(cat *catalog.Catalog, table string, a, b []string) []string {
	t, err := cat.Table(table)
	if err != nil {
		return a
	}
	want := map[string]bool{}
	for _, c := range a {
		want[c] = true
	}
	for _, c := range b {
		want[c] = true
	}
	var out []string
	for _, c := range t.Schema.Names() {
		if want[c] {
			out = append(out, c)
		}
	}
	return out
}

// addCandidate registers copies of the candidate's structures on a shadow
// catalog.
func addCandidate(sc *catalog.Catalog, cd *candidate) error {
	if cd.ar != nil {
		ar := *cd.ar
		ar.Cols = append([]string(nil), cd.ar.Cols...)
		return sc.AddAuxRel(&ar)
	}
	gi := *cd.gi
	return sc.AddGlobalIndex(&gi)
}

// shadowCatalog clones a catalog's metadata for what-if pricing: fresh
// structs for every object the registration paths mutate, shared immutable
// innards (schemas, join lists).
func shadowCatalog(cat *catalog.Catalog) (*catalog.Catalog, error) {
	sc := catalog.New()
	tables := cat.Tables()
	for _, tn := range tables {
		t, err := cat.Table(tn)
		if err != nil {
			return nil, err
		}
		tc := *t
		tc.Indexes = append([]catalog.Index(nil), t.Indexes...)
		if err := sc.AddTable(&tc); err != nil {
			return nil, err
		}
	}
	for _, tn := range tables {
		for _, a := range cat.AuxRelsFor(tn) {
			ac := *a
			ac.Cols = append([]string(nil), a.Cols...)
			if err := sc.AddAuxRel(&ac); err != nil {
				return nil, err
			}
		}
		for _, g := range cat.GlobalIndexesFor(tn) {
			gc := *g
			if err := sc.AddGlobalIndex(&gc); err != nil {
				return nil, err
			}
		}
	}
	for _, vn := range cat.Views() {
		v, err := cat.View(vn)
		if err != nil {
			return nil, err
		}
		vc := *v
		vc.Out = append([]catalog.OutCol(nil), v.Out...)
		vc.Aggs = append([]catalog.AggSpec(nil), v.Aggs...)
		if err := sc.AddView(&vc); err != nil {
			return nil, err
		}
	}
	return sc, nil
}
