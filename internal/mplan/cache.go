package mplan

import (
	"sync"

	"joinview/internal/catalog"
	"joinview/internal/maintain"
	"joinview/internal/stats"
)

type cacheKey struct {
	table string
	op    maintain.Op
}

// Cache holds compiled plans keyed by (table, op), validated on every
// lookup against the catalog version and the recorded statistics reads.
// Stale entries are evicted and recompiled in place; a stale plan can
// never be returned. Safe for concurrent use — DML statements on
// different tables look up plans in parallel, and DDL (which bumps the
// catalog version under the cluster's exclusive lock) implicitly
// invalidates every entry at once.
type Cache struct {
	mu    sync.RWMutex
	plans map[cacheKey]*Plan
}

// NewCache returns an empty plan cache.
func NewCache() *Cache {
	return &Cache{plans: map[cacheKey]*Plan{}}
}

// Get returns a valid compiled plan for (table, op), compiling one on a
// miss. hit reports whether a cached plan was reused.
func (c *Cache) Get(cat *catalog.Catalog, st *stats.Stats, table string, op maintain.Op) (mp *Plan, hit bool, err error) {
	k := cacheKey{table: table, op: op}
	c.mu.RLock()
	cached := c.plans[k]
	c.mu.RUnlock()
	if cached != nil && cached.Valid(cat, st) {
		return cached, true, nil
	}
	fresh, err := Compile(cat, st, table, op)
	if err != nil {
		if cached != nil {
			// Evict the stale entry: the schema it was built for is gone.
			c.mu.Lock()
			if c.plans[k] == cached {
				delete(c.plans, k)
			}
			c.mu.Unlock()
		}
		return nil, false, err
	}
	c.mu.Lock()
	c.plans[k] = fresh
	c.mu.Unlock()
	return fresh, false, nil
}

// Peek returns the cached plan for (table, op) without validation or
// compilation — test and introspection hook.
func (c *Cache) Peek(table string, op maintain.Op) (*Plan, bool) {
	c.mu.RLock()
	mp, ok := c.plans[cacheKey{table: table, op: op}]
	c.mu.RUnlock()
	return mp, ok
}

// Len returns the number of cached plans (valid or stale).
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.plans)
}

// Purge drops every cached plan.
func (c *Cache) Purge() {
	c.mu.Lock()
	c.plans = map[cacheKey]*Plan{}
	c.mu.Unlock()
}
