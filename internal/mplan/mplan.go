// Package mplan compiles the full maintenance work of one DML statement —
// base mutation, auxiliary-relation redistribution, global-index upkeep
// and view-delta propagation — into a reusable stage DAG, so the hot write
// path plans once per (table, op) instead of once per statement.
//
// A compiled Plan is pure metadata: it pins the catalog objects and the
// per-view maintenance options (one precompiled delta-join plan plus cost
// chain per feasible strategy), and records which relational statistics it
// read. The cluster's pipeline executor walks the stages; the strategy for
// each view is chosen at execution time from the precompiled options using
// the cost advisor with the actual delta size, so a cached plan adapts to
// the workload without re-planning.
package mplan

import (
	"fmt"
	"sort"
	"strings"

	"joinview/internal/catalog"
	"joinview/internal/cost"
	"joinview/internal/maintain"
	"joinview/internal/plan"
	"joinview/internal/stats"
)

// StageKind classifies one stage of a compiled maintenance plan.
type StageKind uint8

// Stage kinds, in the order the executor runs them: the base mutation,
// then every auxiliary relation, then every global index, then every view.
const (
	StageBase StageKind = iota
	StageAuxRel
	StageGlobalIndex
	StageView
)

func (k StageKind) String() string {
	switch k {
	case StageBase:
		return "base"
	case StageAuxRel:
		return "auxrel"
	case StageGlobalIndex:
		return "globalindex"
	case StageView:
		return "view"
	default:
		return fmt.Sprintf("stage(%d)", uint8(k))
	}
}

// FanoutDep records one statistics value the compiled plan depends on.
// plan.Build orders delta joins by the fan-outs of the *probed* tables, so
// a compiled plan is only reusable while those fan-outs are unchanged —
// the updated table's own statistics (bumped after every statement) are
// never probed for its own updates and are deliberately not recorded.
type FanoutDep struct {
	Table, Col string
	Fanout     float64
}

// StrategyOption is one feasible maintenance method for a view, with its
// delta-join plan and cost-model chain precompiled.
type StrategyOption struct {
	Strategy catalog.Strategy
	Plan     *plan.Plan
	Chain    []cost.ChainStep
}

// TW returns the option's modeled total workload (the paper's TW: I/Os
// summed over nodes) for a delta of a tuples on an l-node cluster.
// arUpdates/giUpdates are the counts of the updated table's own auxiliary
// structures.
func (o *StrategyOption) TW(l, a, arUpdates, giUpdates int) float64 {
	switch o.Strategy {
	case catalog.StrategyNaive:
		return cost.TotalNaive(l, a, o.Chain)
	case catalog.StrategyAuxRel:
		return cost.TotalAuxRel(l, a, o.Chain, arUpdates)
	case catalog.StrategyGlobalIndex:
		return cost.TotalGlobalIndex(l, a, o.Chain, giUpdates)
	default:
		return 0
	}
}

// ViewStage is the compiled propagation work for one view.
type ViewStage struct {
	View *catalog.View
	// Pinned reports that the view definition fixes the strategy for this
	// table (View.Strategy or an override), in which case Options has
	// exactly one entry and the advisor is bypassed.
	Pinned bool
	// Options lists the feasible maintenance methods in advisor preference
	// order (auxrel, globalindex, naive); ties in modeled cost keep the
	// earlier option.
	Options []StrategyOption
}

// Choose picks the option used for a delta of deltaSize tuples: the pinned
// option, or the minimum modeled TW among the precompiled options.
func (vs *ViewStage) Choose(l, deltaSize, arUpdates, giUpdates int) *StrategyOption {
	best := &vs.Options[0]
	if vs.Pinned {
		return best
	}
	bestTW := best.TW(l, deltaSize, arUpdates, giUpdates)
	for i := 1; i < len(vs.Options); i++ {
		o := &vs.Options[i]
		if tw := o.TW(l, deltaSize, arUpdates, giUpdates); tw < bestTW {
			best, bestTW = o, tw
		}
	}
	return best
}

// Stage is one unit of a compiled plan. Exactly one of AR, GI, View is set
// for the non-base kinds; the executor interprets the base stage by the
// plan's Op.
type Stage struct {
	Kind StageKind
	AR   *catalog.AuxRel
	GI   *catalog.GlobalIndex
	View *ViewStage
}

// Plan is the compiled maintenance pipeline for one (table, op) pair.
type Plan struct {
	Table *catalog.Table
	Op    maintain.Op
	// Stages in execution order: base, ARs (name order), GIs (name order),
	// views (name order) — the sequence the paper's method descriptions
	// and the seed executor use.
	Stages []Stage
	// ARCount/GICount are the updated table's auxiliary-structure counts,
	// inputs to the advisor's TW model.
	ARCount, GICount int
	// Views is the full dependent-view set the plan was compiled for, in
	// name (= stage) order. Together with (Table, Op) it is the logical
	// cache key of the shared world: any view joining or leaving the table
	// changes the set — and bumps the catalog version, which is how Valid
	// detects it without re-listing views on the hot path.
	Views []string
	// SharedPotential reports that at least two dependent views have
	// maintenance options whose delta-join chains start with the same
	// structural prefix, so the shared-DAG executor can hoist work. False
	// means per-view execution is already optimal and the executor takes
	// the unshared path unchanged.
	SharedPotential bool
	// Version is the catalog version the plan was compiled against.
	Version uint64
	// PartEpoch is the partition-map epoch the plan was compiled against:
	// node homes are baked into a plan's routing, so an elastic topology
	// change (slot reassignment at migration cutover) must force a
	// recompile even though the schema version is untouched.
	PartEpoch uint64
	// Deps are the statistics reads the plan's join orders depend on.
	Deps []FanoutDep
}

// Compile builds the maintenance plan for one (table, op) from the catalog
// and current statistics.
func Compile(cat *catalog.Catalog, st *stats.Stats, table string, op maintain.Op) (*Plan, error) {
	version := cat.Version()
	t, err := cat.Table(table)
	if err != nil {
		return nil, err
	}
	mp := &Plan{Table: t, Op: op, Version: version, PartEpoch: cat.PartitionEpoch()}
	mp.Stages = append(mp.Stages, Stage{Kind: StageBase})
	ars := cat.AuxRelsFor(table)
	for _, ar := range ars {
		mp.Stages = append(mp.Stages, Stage{Kind: StageAuxRel, AR: ar})
	}
	mp.ARCount = len(ars)
	gis := cat.GlobalIndexesFor(table)
	for _, gi := range gis {
		mp.Stages = append(mp.Stages, Stage{Kind: StageGlobalIndex, GI: gi})
	}
	mp.GICount = len(gis)
	deps := depSet{}
	for _, v := range cat.ViewsOn(table) {
		vs, err := CompileView(cat, st, v, table)
		if err != nil {
			return nil, err
		}
		mp.Stages = append(mp.Stages, Stage{Kind: StageView, View: vs})
		mp.Views = append(mp.Views, v.Name)
		deps.recordView(st, v, table)
	}
	mp.Deps = deps.list()
	mp.SharedPotential = sharedPotential(mp)
	return mp, nil
}

// sharedPotential reports whether any two view stages have options whose
// chains begin with the same structural step. A shared prefix of any depth
// necessarily shares its first step, so checking the chain roots is both
// sufficient and cheap; single-view plans can never share.
func sharedPotential(mp *Plan) bool {
	// first ChainKey -> index of the first view stage that has it.
	roots := map[string]int{}
	viewIdx := -1
	for i := range mp.Stages {
		s := &mp.Stages[i]
		if s.Kind != StageView {
			continue
		}
		viewIdx++
		for oi := range s.View.Options {
			steps := s.View.Options[oi].Plan.Steps
			if len(steps) == 0 {
				continue
			}
			key := steps[0].ChainKey
			if first, ok := roots[key]; ok {
				if first != viewIdx {
					return true
				}
			} else {
				roots[key] = viewIdx
			}
		}
	}
	return false
}

// CompileView compiles the propagation stage for one view: the pinned
// strategy's plan, or — for StrategyAuto — every feasible strategy's plan
// in advisor preference order.
func CompileView(cat *catalog.Catalog, st *stats.Stats, v *catalog.View, table string) (*ViewStage, error) {
	vs := &ViewStage{View: v}
	if s := v.StrategyFor(table); s != catalog.StrategyAuto {
		p, err := plan.Build(cat, st, v, table, s)
		if err != nil {
			return nil, err
		}
		vs.Pinned = true
		vs.Options = []StrategyOption{{Strategy: s, Plan: p, Chain: chainOf(p)}}
		return vs, nil
	}
	for _, s := range []catalog.Strategy{catalog.StrategyAuxRel, catalog.StrategyGlobalIndex, catalog.StrategyNaive} {
		p, err := plan.Build(cat, st, v, table, s)
		if err != nil {
			continue // structures missing: strategy unavailable
		}
		vs.Options = append(vs.Options, StrategyOption{Strategy: s, Plan: p, Chain: chainOf(p)})
	}
	if len(vs.Options) == 0 {
		return nil, fmt.Errorf("mplan: view %q has no feasible maintenance strategy for table %q", v.Name, table)
	}
	return vs, nil
}

// chainOf projects a delta-join plan onto the analytical cost model.
func chainOf(p *plan.Plan) []cost.ChainStep {
	steps := make([]cost.ChainStep, len(p.Steps))
	for i, s := range p.Steps {
		steps[i] = cost.ChainStep{Fanout: s.Fanout, Clustered: s.FragClusteredOnCol}
	}
	return steps
}

// Valid reports whether the plan may still be executed: the catalog has
// not moved and every statistics value the join orders were derived from
// is unchanged.
func (p *Plan) Valid(cat *catalog.Catalog, st *stats.Stats) bool {
	if cat.Version() != p.Version {
		return false
	}
	if cat.PartitionEpoch() != p.PartEpoch {
		return false
	}
	for _, d := range p.Deps {
		if st.Fanout(d.Table, d.Col) != d.Fanout {
			return false
		}
	}
	return true
}

// Describe renders the compiled pipeline for EXPLAIN-style tooling.
func (p *Plan) Describe() string {
	var sb strings.Builder
	op := "insert"
	if p.Op == maintain.OpDelete {
		op = "delete"
	}
	fmt.Fprintf(&sb, "pipeline for %s into %s (catalog v%d, %d stages)\n", op, p.Table.Name, p.Version, len(p.Stages))
	for i, s := range p.Stages {
		switch s.Kind {
		case StageBase:
			fmt.Fprintf(&sb, "  stage %d: %-11s %s\n", i+1, s.Kind, p.Table.Name)
		case StageAuxRel:
			fmt.Fprintf(&sb, "  stage %d: %-11s %s (on %s)\n", i+1, s.Kind, s.AR.Name, s.AR.PartitionCol)
		case StageGlobalIndex:
			fmt.Fprintf(&sb, "  stage %d: %-11s %s (on %s)\n", i+1, s.Kind, s.GI.Name, s.GI.Col)
		case StageView:
			mode := "adaptive"
			if s.View.Pinned {
				mode = "pinned"
			}
			fmt.Fprintf(&sb, "  stage %d: %-11s %s (%s: %s)\n", i+1, s.Kind, s.View.View.Name, mode, optionNames(s.View.Options))
		}
	}
	if p.SharedPotential {
		fmt.Fprintf(&sb, "  shared: %d views have common delta-join prefixes; executor hoists them into shared DAG nodes\n", len(p.Views))
	}
	return sb.String()
}

func optionNames(opts []StrategyOption) string {
	names := make([]string, len(opts))
	for i, o := range opts {
		names[i] = o.Strategy.String()
	}
	return strings.Join(names, "|")
}

// depSet deduplicates fan-out dependencies while compiling.
type depSet map[[2]string]float64

// recordView records the fan-out of every join-predicate side of v that is
// not the updated table — a superset of the statistics plan.Build can read
// while ordering the view's delta joins (the updated table starts covered,
// so its own fan-outs are never probed).
func (d depSet) recordView(st *stats.Stats, v *catalog.View, table string) {
	for _, j := range v.Joins {
		for _, side := range []struct{ t, col string }{{j.Left, j.LeftCol}, {j.Right, j.RightCol}} {
			if side.t == table {
				continue
			}
			d[[2]string{side.t, side.col}] = st.Fanout(side.t, side.col)
		}
	}
}

func (d depSet) list() []FanoutDep {
	if len(d) == 0 {
		return nil
	}
	out := make([]FanoutDep, 0, len(d))
	for k, f := range d {
		out = append(out, FanoutDep{Table: k[0], Col: k[1], Fanout: f})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Table != out[b].Table {
			return out[a].Table < out[b].Table
		}
		return out[a].Col < out[b].Col
	})
	return out
}
