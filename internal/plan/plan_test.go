package plan

import (
	"strings"
	"testing"

	"joinview/internal/catalog"
	"joinview/internal/stats"
	"joinview/internal/types"
)

// tpcr builds the paper's schema: customer partitioned on custkey, orders
// on orderkey, lineitem on partkey (so orders needs structures on custkey
// and orderkey-joins, lineitem on orderkey).
func tpcr(t *testing.T) *catalog.Catalog {
	t.Helper()
	c := catalog.New()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(c.AddTable(&catalog.Table{
		Name: "customer",
		Schema: types.NewSchema(
			types.Column{Name: "custkey", Kind: types.KindInt},
			types.Column{Name: "acctbal", Kind: types.KindFloat},
			types.Column{Name: "comment", Kind: types.KindString},
		),
		PartitionCol: "custkey", ClusterCol: "custkey",
	}))
	must(c.AddTable(&catalog.Table{
		Name: "orders",
		Schema: types.NewSchema(
			types.Column{Name: "orderkey", Kind: types.KindInt},
			types.Column{Name: "custkey", Kind: types.KindInt},
			types.Column{Name: "totalprice", Kind: types.KindFloat},
			types.Column{Name: "comment", Kind: types.KindString},
		),
		PartitionCol: "orderkey", ClusterCol: "orderkey",
	}))
	must(c.AddTable(&catalog.Table{
		Name: "lineitem",
		Schema: types.NewSchema(
			types.Column{Name: "orderkey", Kind: types.KindInt},
			types.Column{Name: "partkey", Kind: types.KindInt},
			types.Column{Name: "extendedprice", Kind: types.KindFloat},
			types.Column{Name: "discount", Kind: types.KindFloat},
		),
		PartitionCol: "partkey",
	}))
	return c
}

func jv2(t *testing.T, c *catalog.Catalog, s catalog.Strategy) *catalog.View {
	t.Helper()
	v := &catalog.View{
		Name:   "jv2_" + s.String(),
		Tables: []string{"customer", "orders", "lineitem"},
		Joins: []catalog.JoinPred{
			{Left: "customer", LeftCol: "custkey", Right: "orders", RightCol: "custkey"},
			{Left: "orders", LeftCol: "orderkey", Right: "lineitem", RightCol: "orderkey"},
		},
		Out: []catalog.OutCol{
			{Table: "customer", Col: "custkey"}, {Table: "customer", Col: "acctbal"},
			{Table: "orders", Col: "orderkey"}, {Table: "orders", Col: "totalprice"},
			{Table: "lineitem", Col: "discount"}, {Table: "lineitem", Col: "extendedprice"},
		},
		PartitionTable: "customer", PartitionCol: "custkey",
		Strategy: s,
	}
	if err := c.AddView(v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestAuxRelSpecs(t *testing.T) {
	c := tpcr(t)
	v := jv2(t, c, catalog.StrategyAuxRel)
	specs, err := AuxRelSpecs(c, v)
	if err != nil {
		t.Fatal(err)
	}
	// customer is partitioned on its only join col -> no AR.
	// orders joins on custkey (needs AR) and orderkey (= partition col, no AR).
	// lineitem joins on orderkey != partkey -> AR.
	if len(specs) != 2 {
		t.Fatalf("specs = %+v", specs)
	}
	byName := map[string]catalog.AuxRel{}
	for _, s := range specs {
		byName[s.Name] = s
	}
	ar, ok := byName["ar_orders_custkey"]
	if !ok {
		t.Fatalf("missing ar_orders_custkey in %v", byName)
	}
	// Minimized columns: join cols {custkey, orderkey} + out cols
	// {orderkey, totalprice}, in schema order — comment excluded.
	want := []string{"orderkey", "custkey", "totalprice"}
	if len(ar.Cols) != len(want) {
		t.Fatalf("AR cols = %v, want %v", ar.Cols, want)
	}
	for i := range want {
		if ar.Cols[i] != want[i] {
			t.Fatalf("AR cols = %v, want %v", ar.Cols, want)
		}
	}
	if _, ok := byName["ar_lineitem_orderkey"]; !ok {
		t.Error("missing ar_lineitem_orderkey")
	}
}

func TestGlobalIndexSpecs(t *testing.T) {
	c := tpcr(t)
	v := jv2(t, c, catalog.StrategyGlobalIndex)
	specs, err := GlobalIndexSpecs(c, v)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("specs = %+v", specs)
	}
	names := map[string]bool{}
	for _, s := range specs {
		names[s.Name] = true
	}
	if !names["gi_orders_custkey"] || !names["gi_lineitem_orderkey"] {
		t.Errorf("specs = %v", names)
	}
}

func TestBuildNaivePlan(t *testing.T) {
	c := tpcr(t)
	v := jv2(t, c, catalog.StrategyNaive)
	p, err := Build(c, stats.New(), v, "customer", catalog.StrategyNaive)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Steps) != 2 {
		t.Fatalf("steps = %+v", p.Steps)
	}
	// Step 1: join orders on custkey — orders not partitioned on custkey,
	// so naive broadcasts.
	s0 := p.Steps[0]
	if s0.Table != "orders" || s0.Via != ViaBroadcast || s0.Frag != "orders" || s0.FragCol != "custkey" || s0.DeltaCol != "customer.custkey" {
		t.Errorf("step 0 = %+v", s0)
	}
	if s0.FragClusteredOnCol {
		t.Error("orders is clustered on orderkey, not custkey")
	}
	// Step 2: join lineitem on orderkey — also broadcast.
	s1 := p.Steps[1]
	if s1.Table != "lineitem" || s1.Via != ViaBroadcast || s1.DeltaCol != "orders.orderkey" {
		t.Errorf("step 1 = %+v", s1)
	}
	// Final schema covers all qualified base columns.
	if p.Schema.ColIndex("lineitem.extendedprice") < 0 || p.Schema.ColIndex("customer.acctbal") < 0 {
		t.Errorf("final schema = %v", p.Schema.Names())
	}
}

func TestBuildAuxRelPlanRequiresStructures(t *testing.T) {
	c := tpcr(t)
	v := jv2(t, c, catalog.StrategyAuxRel)
	if _, err := Build(c, stats.New(), v, "customer", catalog.StrategyAuxRel); err == nil {
		t.Fatal("plan should fail without ARs")
	}
	specs, _ := AuxRelSpecs(c, v)
	for i := range specs {
		if err := c.AddAuxRel(&specs[i]); err != nil {
			t.Fatal(err)
		}
	}
	p, err := Build(c, stats.New(), v, "customer", catalog.StrategyAuxRel)
	if err != nil {
		t.Fatal(err)
	}
	if p.Steps[0].Frag != "ar_orders_custkey" || p.Steps[0].Via != ViaRoute || !p.Steps[0].FragClusteredOnCol {
		t.Errorf("step 0 = %+v", p.Steps[0])
	}
	if p.Steps[1].Frag != "ar_lineitem_orderkey" || p.Steps[1].Via != ViaRoute {
		t.Errorf("step 1 = %+v", p.Steps[1])
	}
	// AR schemas are minimized; final schema still has every output col.
	for _, col := range []string{"orders.totalprice", "lineitem.discount", "lineitem.extendedprice"} {
		if p.Schema.ColIndex(col) < 0 {
			t.Errorf("final schema missing %s: %v", col, p.Schema.Names())
		}
	}
	// But not the excluded ones.
	if p.Schema.ColIndex("orders.comment") >= 0 {
		t.Error("minimized AR leaked orders.comment into the plan")
	}
}

func TestBuildGlobalIndexPlan(t *testing.T) {
	c := tpcr(t)
	v := jv2(t, c, catalog.StrategyGlobalIndex)
	if _, err := Build(c, stats.New(), v, "customer", catalog.StrategyGlobalIndex); err == nil {
		t.Fatal("plan should fail without GIs")
	}
	specs, _ := GlobalIndexSpecs(c, v)
	for i := range specs {
		if err := c.AddGlobalIndex(&specs[i]); err != nil {
			t.Fatal(err)
		}
	}
	p, err := Build(c, stats.New(), v, "customer", catalog.StrategyGlobalIndex)
	if err != nil {
		t.Fatal(err)
	}
	if p.Steps[0].Via != ViaGlobalIndex || p.Steps[0].GI != "gi_orders_custkey" || p.Steps[0].Frag != "orders" {
		t.Errorf("step 0 = %+v", p.Steps[0])
	}
	if p.Steps[0].FragClusteredOnCol {
		t.Error("gi_orders_custkey must be distributed non-clustered")
	}
}

func TestBuildRoutesWhenPartitionedOnJoinCol(t *testing.T) {
	// Updating orders: the other side is customer, which IS partitioned on
	// custkey — every strategy routes directly to the base table.
	c := tpcr(t)
	v := jv2(t, c, catalog.StrategyNaive)
	specs, _ := AuxRelSpecs(c, v)
	for i := range specs {
		c.AddAuxRel(&specs[i])
	}
	gspecs, _ := GlobalIndexSpecs(c, v)
	for i := range gspecs {
		c.AddGlobalIndex(&gspecs[i])
	}
	for _, strat := range []catalog.Strategy{catalog.StrategyNaive, catalog.StrategyAuxRel, catalog.StrategyGlobalIndex} {
		p, err := Build(c, stats.New(), v, "orders", strat)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		var custStep *Step
		for i := range p.Steps {
			if p.Steps[i].Table == "customer" {
				custStep = &p.Steps[i]
			}
		}
		if custStep == nil {
			t.Fatalf("%v: no customer step", strat)
		}
		if custStep.Via != ViaRoute || custStep.Frag != "customer" || !custStep.FragClusteredOnCol {
			t.Errorf("%v: customer step = %+v", strat, *custStep)
		}
	}
}

func TestBuildJoinOrderUsesStats(t *testing.T) {
	c := tpcr(t)
	// A view joining orders to both customer and lineitem: when orders is
	// updated, both joins are immediately available; stats should pick the
	// lower-fanout one first.
	v := jv2(t, c, catalog.StrategyNaive)
	st := stats.New()
	st.Set("customer", stats.TableStats{Rows: 100, Distinct: map[string]int64{"custkey": 100}})   // fanout 1
	st.Set("lineitem", stats.TableStats{Rows: 4000, Distinct: map[string]int64{"orderkey": 100}}) // fanout 40
	p, err := Build(c, st, v, "orders", catalog.StrategyNaive)
	if err != nil {
		t.Fatal(err)
	}
	if p.Steps[0].Table != "customer" || p.Steps[1].Table != "lineitem" {
		t.Errorf("join order = %s then %s; want customer then lineitem", p.Steps[0].Table, p.Steps[1].Table)
	}
	if p.EstFanout != 40 {
		t.Errorf("EstFanout = %g, want 40", p.EstFanout)
	}
	// Reversed stats reverse the order.
	st2 := stats.New()
	st2.Set("customer", stats.TableStats{Rows: 1000, Distinct: map[string]int64{"custkey": 10}}) // fanout 100
	st2.Set("lineitem", stats.TableStats{Rows: 100, Distinct: map[string]int64{"orderkey": 100}})
	p2, err := Build(c, st2, v, "orders", catalog.StrategyNaive)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Steps[0].Table != "lineitem" {
		t.Errorf("join order with reversed stats = %s first", p2.Steps[0].Table)
	}
}

func TestBuildErrors(t *testing.T) {
	c := tpcr(t)
	v := jv2(t, c, catalog.StrategyNaive)
	if _, err := Build(c, stats.New(), v, "part", catalog.StrategyNaive); err == nil {
		t.Error("planning for a non-member table should fail")
	}
	if _, err := Build(c, stats.New(), v, "customer", catalog.StrategyAuto); err == nil {
		t.Error("planning with unresolved auto strategy should fail")
	}
	if _, err := Build(c, stats.New(), v, "customer", catalog.Strategy(77)); err == nil {
		t.Error("planning with bogus strategy should fail")
	}
}

func TestDescribe(t *testing.T) {
	c := tpcr(t)
	v := jv2(t, c, catalog.StrategyAuxRel)
	specs, _ := AuxRelSpecs(c, v)
	for i := range specs {
		if err := c.AddAuxRel(&specs[i]); err != nil {
			t.Fatal(err)
		}
	}
	p, err := Build(c, stats.New(), v, "customer", catalog.StrategyAuxRel)
	if err != nil {
		t.Fatal(err)
	}
	out := p.Describe()
	for _, want := range []string{"maintain view", "route", "ar_orders_custkey", "clustered", "step 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("Describe missing %q:\n%s", want, out)
		}
	}
	// A cyclic plan mentions its residual filter.
	tri := &catalog.View{
		Name:   "tri",
		Tables: []string{"customer", "orders", "lineitem"},
		Joins: []catalog.JoinPred{
			{Left: "customer", LeftCol: "custkey", Right: "orders", RightCol: "custkey"},
			{Left: "orders", LeftCol: "orderkey", Right: "lineitem", RightCol: "orderkey"},
			{Left: "lineitem", LeftCol: "partkey", Right: "customer", RightCol: "custkey"},
		},
		Out:            []catalog.OutCol{{Table: "customer", Col: "custkey"}},
		PartitionTable: "customer", PartitionCol: "custkey",
	}
	if err := c.AddView(tri); err != nil {
		t.Fatal(err)
	}
	pt, err := Build(c, stats.New(), tri, "customer", catalog.StrategyNaive)
	if err != nil {
		t.Fatal(err)
	}
	if len(pt.Residual) != 1 {
		t.Fatalf("residual = %v", pt.Residual)
	}
	if !strings.Contains(pt.Describe(), "residual filter") {
		t.Errorf("Describe missing residual:\n%s", pt.Describe())
	}
}

func TestViaStrings(t *testing.T) {
	if ViaBroadcast.String() != "broadcast" || ViaRoute.String() != "route" || ViaGlobalIndex.String() != "global-index" || Via(9).String() != "unknown" {
		t.Error("Via strings wrong")
	}
}
