// Package plan turns a view definition plus an updated base table into a
// maintenance plan: the ordered sequence of delta-join steps each strategy
// executes, and the auxiliary structures (auxiliary relations, global
// indexes) a view needs.
//
// This implements §2.2 of the paper: for an n-way join view, keep one
// auxiliary relation (or global index) per (table, join attribute) pair the
// table is not already partitioned on; when a base relation is updated,
// join the delta through the *other* tables' structures, picking the join
// order with relational statistics — the §2.2 "optimization problem".
package plan

import (
	"fmt"
	"sort"
	"strings"

	"joinview/internal/catalog"
	"joinview/internal/stats"
	"joinview/internal/types"
)

// Via says how a delta-join step reaches the rows it probes.
type Via uint8

// Step shipping modes.
const (
	// ViaBroadcast ships the delta to every node and probes the base
	// fragment there (the naive method on a relation not partitioned on
	// the join attribute; paper Figure 2).
	ViaBroadcast Via = iota
	// ViaRoute hash-routes each delta tuple to the single node owning its
	// join-attribute value and probes there (the auxiliary-relation
	// method, Figure 4, or any method when the base relation happens to
	// be partitioned on the join attribute, Figure 1).
	ViaRoute
	// ViaGlobalIndex routes each delta tuple to the global-index home
	// node, looks up global row ids, and fetch-joins at the K owning
	// nodes (Figure 6).
	ViaGlobalIndex
)

func (v Via) String() string {
	switch v {
	case ViaBroadcast:
		return "broadcast"
	case ViaRoute:
		return "route"
	case ViaGlobalIndex:
		return "global-index"
	default:
		return "unknown"
	}
}

// Step is one delta-join against one base table of the view.
type Step struct {
	// Table is the logical base table being joined in.
	Table string
	// Frag is the physical fragment probed: the base table name, or an
	// auxiliary relation name.
	Frag string
	// FragCol is the join column within the probe fragment (unqualified).
	FragCol string
	// FragSchema is the probe fragment's schema (an AR may be a column
	// subset of the base table).
	FragSchema *types.Schema
	// DeltaCol is the qualified join column within the current
	// intermediate ("table.col").
	DeltaCol string
	// Via selects the shipping mode.
	Via Via
	// GI names the global index used when Via == ViaGlobalIndex.
	GI string
	// FragClusteredOnCol records whether the probed fragment is locally
	// clustered on FragCol (drives the clustered/non-clustered cost
	// variants in the experiments).
	FragClusteredOnCol bool
	// Fanout is the statistics estimate of matches per delta tuple.
	Fanout float64
	// DeltaKey is DeltaCol's position in the step's input schema, and
	// OutSchema the intermediate schema after the step — both resolved at
	// build time so execution never re-derives them per statement.
	DeltaKey  int
	OutSchema *types.Schema
	// ChainKey is the structural identity of the delta-join chain prefix
	// ending at this step: the updated table plus every (shipping mode,
	// probed fragment, join columns) pair up to and including this one.
	// Two steps with equal ChainKeys — in any plans for the same statement —
	// produce identical intermediate results, so a shared executor can run
	// the prefix once and fan its result out to every dependent view.
	ChainKey string
}

// Fingerprint is the structural identity of this single step, independent
// of the chain prefix: everything that determines the step's output given
// its input. Fan-out estimates and clustering are deliberately excluded —
// they shape cost, not results.
func (s *Step) Fingerprint() string {
	fp := s.Via.String() + ":" + s.Frag + ":" + s.FragCol + "=" + s.DeltaCol
	if s.GI != "" {
		fp += ":" + s.GI
	}
	return fp
}

// Plan is the full maintenance recipe for one (view, updated table) pair.
type Plan struct {
	View  *catalog.View
	Table string
	// Steps are executed in order; the intermediate result starts as the
	// delta (updated table's tuples, schema prefixed with the table name)
	// and grows one table per step.
	Steps []Step
	// DeltaSchema is the initial intermediate schema: the updated table's
	// schema prefixed with the table name.
	DeltaSchema *types.Schema
	// Schema is the final intermediate schema after all steps.
	Schema *types.Schema
	// Residual holds join predicates not consumed by the step chain —
	// the extra edges of a cyclic join graph (the paper's §2.2 complete
	// join of A, B and C). They are applied as filters on the final
	// intermediate.
	Residual []catalog.JoinPred
	// EstFanout is the product of step fan-outs: the expected number of
	// view tuples per delta tuple (the paper's N for the 2-way case).
	EstFanout float64
}

// Describe renders the plan as indented text for EXPLAIN-style tooling.
func (p *Plan) Describe() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "maintain view %s on update of %s (est. fan-out %.2f)\n", p.View.Name, p.Table, p.EstFanout)
	for i, s := range p.Steps {
		access := "non-clustered"
		if s.FragClusteredOnCol {
			access = "clustered"
		}
		fmt.Fprintf(&sb, "  step %d: %-12s join %s via %s on %s = %s.%s (%s",
			i+1, s.Via, s.Table, s.Frag, s.DeltaCol, s.Table, s.FragCol, access)
		if s.GI != "" {
			fmt.Fprintf(&sb, ", global index %s", s.GI)
		}
		fmt.Fprintf(&sb, ", est. fan-out %.2f)\n", s.Fanout)
	}
	for _, j := range p.Residual {
		fmt.Fprintf(&sb, "  residual filter: %s.%s = %s.%s\n", j.Left, j.LeftCol, j.Right, j.RightCol)
	}
	return sb.String()
}

// neededCols returns the base columns table t must expose for view v:
// its join attributes plus its output columns, in base-schema order.
func neededCols(cat *catalog.Catalog, v *catalog.View, table string) ([]string, error) {
	t, err := cat.Table(table)
	if err != nil {
		return nil, err
	}
	want := map[string]bool{}
	for _, c := range v.JoinCols(table) {
		want[c] = true
	}
	for _, c := range v.OutColsOf(table) {
		want[c] = true
	}
	for _, c := range v.MeasureColsOf(table) {
		want[c] = true
	}
	var out []string
	for _, c := range t.Schema.Names() {
		if want[c] {
			out = append(out, c)
		}
	}
	return out, nil
}

// AuxRelSpecs returns the auxiliary relations view v requires under the
// auxiliary-relation method: one per (table, join attribute) the table is
// not partitioned on (§2.2: "keep an auxiliary relation of R_i partitioned
// on the join attribute ... unless R_i is partitioned on the join
// attribute"). Each AR is minimized to the needed columns (§2.1.2).
func AuxRelSpecs(cat *catalog.Catalog, v *catalog.View) ([]catalog.AuxRel, error) {
	var specs []catalog.AuxRel
	for _, table := range v.Tables {
		t, err := cat.Table(table)
		if err != nil {
			return nil, err
		}
		cols, err := neededCols(cat, v, table)
		if err != nil {
			return nil, err
		}
		for _, jc := range v.JoinCols(table) {
			if jc == t.PartitionCol {
				continue
			}
			specs = append(specs, catalog.AuxRel{
				Name:         fmt.Sprintf("ar_%s_%s", table, jc),
				Table:        table,
				PartitionCol: jc,
				Cols:         cols,
			})
		}
	}
	return specs, nil
}

// GlobalIndexSpecs returns the global indexes view v requires under the
// global-index method, one per (table, join attribute) the table is not
// partitioned on.
func GlobalIndexSpecs(cat *catalog.Catalog, v *catalog.View) ([]catalog.GlobalIndex, error) {
	var specs []catalog.GlobalIndex
	for _, table := range v.Tables {
		t, err := cat.Table(table)
		if err != nil {
			return nil, err
		}
		for _, jc := range v.JoinCols(table) {
			if jc == t.PartitionCol {
				continue
			}
			specs = append(specs, catalog.GlobalIndex{
				Name:  fmt.Sprintf("gi_%s_%s", table, jc),
				Table: table,
				Col:   jc,
			})
		}
	}
	return specs, nil
}

// Build computes the maintenance plan for updating `table` under `strategy`.
// The join order is chosen greedily by ascending statistics fan-out
// (deterministic tie-break on table name), resolving the §2.2 optimization
// problem; with no statistics all fan-outs are 1 and FROM-order-ish
// traversal results.
func Build(cat *catalog.Catalog, st *stats.Stats, v *catalog.View, table string, strategy catalog.Strategy) (*Plan, error) {
	if !v.HasTable(table) {
		return nil, fmt.Errorf("plan: view %q does not join table %q", v.Name, table)
	}
	if strategy == catalog.StrategyAuto {
		return nil, fmt.Errorf("plan: strategy auto must be resolved before planning")
	}
	updated, err := cat.Table(table)
	if err != nil {
		return nil, err
	}
	p := &Plan{
		View:      v,
		Table:     table,
		Schema:    updated.Schema.Prefixed(table),
		EstFanout: 1,
	}
	p.DeltaSchema = p.Schema
	// ChainKeys are rooted at the updated table's delta so keys never
	// collide across plans for different updated tables.
	chainPrefix := "Δ" + table
	covered := map[string]bool{table: true}
	remaining := append([]catalog.JoinPred(nil), v.Joins...)

	for len(covered) < len(v.Tables) {
		// Candidate joins: exactly one side covered.
		type cand struct {
			join   catalog.JoinPred
			next   string // table to join in
			fanout float64
			idx    int
		}
		var cands []cand
		for i, j := range remaining {
			lc, rc := covered[j.Left], covered[j.Right]
			if lc == rc {
				continue
			}
			next := j.Left
			if lc {
				next = j.Right
			}
			cands = append(cands, cand{
				join:   j,
				next:   next,
				fanout: st.Fanout(next, j.ColOf(next)),
				idx:    i,
			})
		}
		if len(cands) == 0 {
			return nil, fmt.Errorf("plan: view %q join graph disconnected from %q", v.Name, table)
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].fanout != cands[b].fanout {
				return cands[a].fanout < cands[b].fanout
			}
			return cands[a].next < cands[b].next
		})
		best := cands[0]
		step, err := buildStep(cat, v, best.join, best.next, coveredSide(best.join, best.next), p.Schema, strategy)
		if err != nil {
			return nil, err
		}
		step.Fanout = best.fanout
		step.DeltaKey = p.Schema.ColIndex(step.DeltaCol)
		step.ChainKey = chainPrefix + ">" + step.Fingerprint()
		chainPrefix = step.ChainKey
		p.EstFanout *= best.fanout
		p.Schema = p.Schema.Concat(step.FragSchema.Prefixed(best.next))
		step.OutSchema = p.Schema
		p.Steps = append(p.Steps, step)
		covered[best.next] = true
		remaining = append(remaining[:best.idx], remaining[best.idx+1:]...)
	}
	p.Residual = remaining
	return p, nil
}

// coveredSide returns the already-covered table of the join given the
// not-yet-covered one.
func coveredSide(j catalog.JoinPred, next string) string { return j.Other(next) }

// buildStep resolves the physical access for joining table `next` into the
// intermediate, whose current schema is `cur`.
func buildStep(cat *catalog.Catalog, v *catalog.View, j catalog.JoinPred, next, covered string, cur *types.Schema, strategy catalog.Strategy) (Step, error) {
	nextCol := j.ColOf(next)
	deltaCol := covered + "." + j.ColOf(covered)
	if cur.ColIndex(deltaCol) < 0 {
		return Step{}, fmt.Errorf("plan: intermediate lacks join column %s (is an auxiliary relation missing it?)", deltaCol)
	}
	t, err := cat.Table(next)
	if err != nil {
		return Step{}, err
	}
	step := Step{
		Table:    next,
		FragCol:  nextCol,
		DeltaCol: deltaCol,
	}

	// Any strategy: a base relation already partitioned on the join
	// attribute needs no auxiliary structure (paper case 1) — route to it.
	if t.PartitionCol == nextCol {
		step.Frag = next
		step.FragSchema = t.Schema
		step.Via = ViaRoute
		step.FragClusteredOnCol = t.ClusterCol == nextCol
		return step, nil
	}

	switch strategy {
	case catalog.StrategyNaive:
		step.Frag = next
		step.FragSchema = t.Schema
		step.Via = ViaBroadcast
		step.FragClusteredOnCol = t.ClusterCol == nextCol
		return step, nil

	case catalog.StrategyAuxRel:
		need, err := neededCols(cat, v, next)
		if err != nil {
			return Step{}, err
		}
		ar, ok := cat.AuxRelOn(next, nextCol, need)
		if !ok {
			return Step{}, fmt.Errorf("plan: view %q needs an auxiliary relation on %s.%s covering %v (create it or use EnsureStructures)", v.Name, next, nextCol, need)
		}
		step.Frag = ar.Name
		step.FragSchema = ar.Schema
		step.Via = ViaRoute
		step.FragClusteredOnCol = true // ARs are clustered on their partition column
		return step, nil

	case catalog.StrategyGlobalIndex:
		gi, ok := cat.GlobalIndexOn(next, nextCol)
		if !ok {
			return Step{}, fmt.Errorf("plan: view %q needs a global index on %s.%s (create it or use EnsureStructures)", v.Name, next, nextCol)
		}
		step.Frag = next
		step.FragSchema = t.Schema
		step.Via = ViaGlobalIndex
		step.GI = gi.Name
		step.FragClusteredOnCol = gi.DistClustered
		return step, nil

	default:
		return Step{}, fmt.Errorf("plan: unsupported strategy %v", strategy)
	}
}
