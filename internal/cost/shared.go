package cost

// Shared-workload extension of the analytical model: pricing the total
// workload of maintaining *many* views of one updated base table when the
// executor hoists common delta-join prefixes into shared DAG nodes that
// run once (multi-query optimization across maintenance plans, after
// Mistry/Roy/Ramamritham/Sudarshan). Each chain step carries a structural
// key; steps with equal keys are the same DAG node and are charged once,
// while per-view residual work (projection, view apply) remains per view.
//
// Unlike the per-strategy Total* formulas in multiway.go, pricing here is
// per *step*, by the step's actual shipping mode — a chain may mix modes
// (e.g. a route to a base table partitioned on the join attribute inside
// an otherwise-broadcast naive plan), and a shared node's mode is fixed by
// its structure, not by which view requested it.

// TWMode is the shipping mode of one priced chain step, mirroring
// plan.Via without importing it.
type TWMode uint8

// Step pricing modes.
const (
	// TWBroadcast ships the intermediate to every node (L searches per
	// tuple) and fetches per match when the probe is non-clustered.
	TWBroadcast TWMode = iota
	// TWRoute hash-routes each tuple to one node (1 search per tuple);
	// clustered probes (ARs, co-partitioned bases) fetch free.
	TWRoute
	// TWGlobalIndex routes to the GI home (1 search per tuple) and
	// fetch-joins at the owners: per page when distributed clustered
	// (K = min(fanout, L) pages), per matching tuple otherwise.
	TWGlobalIndex
)

// TWStep is one delta-join step of a shared pricing request.
type TWStep struct {
	// Key is the step's structural chain identity (plan.Step.ChainKey):
	// equal keys across the priced chains are one shared node, charged once.
	Key       string
	Mode      TWMode
	Fanout    float64
	Clustered bool
}

// StepTW returns the total workload of one chain step for `in` incoming
// intermediate tuples on an l-node cluster, in the paper's I/O units.
func StepTW(l int, in float64, s TWStep) float64 {
	matches := in * s.Fanout
	switch s.Mode {
	case TWBroadcast:
		tw := in * float64(l) * IOSearch
		if !s.Clustered {
			tw += matches * IOFetch
		}
		return tw
	case TWRoute:
		tw := in * IOSearch
		if !s.Clustered {
			tw += matches * IOFetch
		}
		return tw
	case TWGlobalIndex:
		tw := in * IOSearch
		if s.Clustered {
			k := s.Fanout
			if k > float64(l) {
				k = float64(l)
			}
			tw += in * k * IOFetch
		} else {
			tw += matches * IOFetch
		}
		return tw
	default:
		return 0
	}
}

// ChainTW prices one chain for a delta of a tuples with no sharing: the
// sum of its steps' TW, threading the intermediate size through the
// fan-outs.
func ChainTW(l, a int, steps []TWStep) float64 {
	in := float64(a)
	total := 0.0
	for _, s := range steps {
		total += StepTW(l, in, s)
		in *= s.Fanout
	}
	return total
}

// TotalShared prices a set of maintenance chains — one per dependent view
// of the updated table — for a delta of a tuples, charging each distinct
// chain node (by Key) exactly once: the modeled workload of the shared
// maintenance DAG. upkeep is the updated table's own auxiliary-structure
// maintenance (IOInsert per structure per delta tuple), which the pipeline
// likewise performs once regardless of how many views depend on it.
func TotalShared(l, a int, chains [][]TWStep, upkeep float64) float64 {
	priced := map[string]bool{}
	total := upkeep * float64(a) * IOInsert
	for _, steps := range chains {
		in := float64(a)
		for _, s := range steps {
			if s.Key == "" || !priced[s.Key] {
				total += StepTW(l, in, s)
				if s.Key != "" {
					priced[s.Key] = true
				}
			}
			in *= s.Fanout
		}
	}
	return total
}

// SharedSavings returns the modeled fraction of chain workload the shared
// DAG removes versus executing every chain independently (0 when there is
// nothing to share).
func SharedSavings(l, a int, chains [][]TWStep) float64 {
	var independent float64
	for _, steps := range chains {
		independent += ChainTW(l, a, steps)
	}
	if independent == 0 {
		return 0
	}
	shared := TotalShared(l, a, chains, 0)
	return 1 - shared/independent
}
