// Package cost implements the paper's analytical model (§3.1–§3.2): total
// workload and response time of the naive, auxiliary-relation and
// global-index maintenance methods, under both the index-nested-loops and
// sort-merge join algorithms. The figure generators in series.go reproduce
// Figures 7–13 from these formulas, and Advise implements the cost-based
// method chooser the paper's conclusion proposes.
//
// Unit costs follow §3.1: SEARCH = 1 I/O, FETCH = 1 I/O, INSERT = 2 I/Os;
// SEND is excluded from I/O totals ("the time spent on SEND is much
// smaller than the time spent on SEARCH, FETCH, and INSERT").
package cost

import "joinview/internal/catalog"

// I/O unit costs (§3.1).
const (
	IOSearch = 1
	IOFetch  = 1
	IOInsert = 2
)

// Model carries the parameters of the two-relation analysis: a join view
// JV = A ⋈ B partitioned on an attribute of A, with tuples inserted into A.
type Model struct {
	// L is the number of data server nodes.
	L int
	// N is the number of join tuples generated per inserted tuple (the
	// fan-out of the join into B).
	N int
	// K is the number of nodes the matching B tuples reside at; zero
	// means the paper's default min(N, L).
	K int
	// BPages is the size of base relation B in pages (total; each node
	// holds BPages/L under the uniform-distribution assumption 2).
	BPages int
	// MemPages is the sort memory M in pages.
	MemPages int
}

// k resolves K, defaulting to min(N, L) (§3.2 "K=min(N,L)").
func (m Model) k() int {
	if m.K > 0 {
		return m.K
	}
	return min(m.N, m.L)
}

// BiPages is the per-node share of B in pages (assumption 2).
func (m Model) BiPages() int { return ceilDiv(m.BPages, m.L) }

// Total workload (§3.1.1): I/Os summed over all nodes per inserted tuple.

// TWNaive is the naive method's total workload per inserted tuple:
// L searches plus, for a non-clustered index J_B, N fetches.
func (m Model) TWNaive(clusteredIdx bool) int {
	tw := m.L * IOSearch
	if !clusteredIdx {
		tw += m.N * IOFetch
	}
	return tw
}

// TWAuxRel is the auxiliary-relation method's total workload per inserted
// tuple: one INSERT into AR_A plus one SEARCH of AR_B — the constant 3.
func (m Model) TWAuxRel() int { return IOInsert + IOSearch }

// TWGlobalIndex is the global-index method's total workload per inserted
// tuple: INSERT into GI_A + SEARCH of GI_B + N fetches (distributed
// non-clustered) or K page fetches (distributed clustered).
func (m Model) TWGlobalIndex(distClustered bool) int {
	tw := IOInsert + IOSearch
	if distClustered {
		tw += m.k() * IOFetch
	} else {
		tw += m.N * IOFetch
	}
	return tw
}

// Algo selects the join algorithm for the response-time model.
type Algo uint8

// Join algorithm choices for the model.
const (
	// AlgoIndex forces index nested loops.
	AlgoIndex Algo = iota
	// AlgoSortMerge forces the sort-merge algorithm.
	AlgoSortMerge
	// AlgoBest picks the cheaper of the two per method ("the algorithm
	// of choice", Figures 11–12).
	AlgoBest
)

// Response time (§3.2): maximum per-node I/Os for one transaction that
// inserts A tuples, assuming uniform distribution. The ceil terms produce
// the step-wise behaviour Figure 12 highlights.

// RespNaive is the naive method's response time for A inserted tuples.
func (m Model) RespNaive(a int, clusteredIdx bool, algo Algo) float64 {
	// Index nested loops: every node sees all A tuples (A searches);
	// fetches for non-clustered J_B spread over the nodes.
	inl := float64(a) * IOSearch
	if !clusteredIdx {
		inl += float64(ceilDiv(a*m.N, m.L)) * IOFetch
	}
	// Sort merge: scan B_i (clustered) or sort it (non-clustered).
	bi := m.BiPages()
	var sm float64
	if clusteredIdx {
		sm = float64(bi)
	} else {
		sm = float64(bi * ceilLog(m.MemPages, bi))
	}
	return pick(algo, inl, sm)
}

// RespAuxRel is the auxiliary-relation method's response time for A
// inserted tuples: each node sees ceil(A/L) tuples; each costs one SEARCH
// of AR_B plus one INSERT into AR_A (the paper's per-node 3·ceil(A/L)).
// Under sort-merge the AR_B side is a clustered scan of B_i plus the AR_A
// updates.
func (m Model) RespAuxRel(a int, algo Algo) float64 {
	ai := float64(ceilDiv(a, m.L))
	inl := ai * (IOSearch + IOInsert)
	sm := float64(m.BiPages()) + ai*IOInsert
	return pick(algo, inl, sm)
}

// RespGlobalIndex is the global-index method's response time for A
// inserted tuples: ceil(A/L) home-node operations (GI_A INSERT + GI_B
// SEARCH) plus the fetch work at the K owning nodes — ceil(A·K/L) page
// fetches when distributed clustered (the paper's (3+K)·A/L), or
// ceil(A·N/L) tuple fetches otherwise ((3+N)·A/L).
func (m Model) RespGlobalIndex(a int, distClustered bool, algo Algo) float64 {
	ai := float64(ceilDiv(a, m.L))
	inl := ai * (IOSearch + IOInsert)
	if distClustered {
		inl += float64(ceilDiv(a*m.k(), m.L)) * IOFetch
	} else {
		inl += float64(ceilDiv(a*m.N, m.L)) * IOFetch
	}
	bi := m.BiPages()
	var smJoin float64
	if distClustered {
		smJoin = float64(bi)
	} else {
		smJoin = float64(bi * ceilLog(m.MemPages, bi))
	}
	sm := smJoin + ai*IOInsert
	return pick(algo, inl, sm)
}

// Advise picks the cheapest maintenance method for a transaction of A
// inserted tuples, given which physical designs are in play:
// naiveClustered says base relation B carries a local clustered index on
// the join attribute, giDistClustered says the global index would be
// distributed clustered. This is the cost-based chooser the conclusion
// sketches ("our analytical model could form the basis for a cost model
// that would enable a system to choose the best approach automatically").
func (m Model) Advise(a int, naiveClustered, giDistClustered bool) catalog.Strategy {
	naive := m.RespNaive(a, naiveClustered, AlgoBest)
	aux := m.RespAuxRel(a, AlgoBest)
	gi := m.RespGlobalIndex(a, giDistClustered, AlgoBest)
	// Deterministic preference on ties: AR (cheapest storage-independent
	// work) > GI > naive matches the paper's small-update ordering.
	best, strat := aux, catalog.StrategyAuxRel
	if gi < best {
		best, strat = gi, catalog.StrategyGlobalIndex
	}
	if naive < best {
		strat = catalog.StrategyNaive
	}
	return strat
}

func pick(algo Algo, inl, sm float64) float64 {
	switch algo {
	case AlgoIndex:
		return inl
	case AlgoSortMerge:
		return sm
	default:
		return min(inl, sm)
	}
}

func ceilDiv(a, b int) int {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}

// ceilLog returns ceil(log_base(pages)), minimum 1 for non-empty input —
// the pass count of external sort in the model.
func ceilLog(base, pages int) int {
	if pages <= 0 {
		return 0
	}
	if base < 2 {
		base = 2
	}
	passes := 1
	for span := base; span < pages; span *= base {
		passes++
	}
	return passes
}
