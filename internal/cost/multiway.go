package cost

// Multiway extension of the analytical model, used for Figure 13: the
// predicted maintenance time of views JV1 (customer ⋈ orders) and JV2
// (customer ⋈ orders ⋈ lineitem) when A tuples are inserted into the
// customer relation. The delta is joined through a chain of relations;
// each chain step has a fan-out and a physical access that is either
// clustered on the join attribute (fetches free on the probed page) or
// non-clustered (one fetch per match).

// ChainStep describes one delta-join step of a multiway maintenance plan.
type ChainStep struct {
	// Fanout is the expected matches per incoming tuple.
	Fanout float64
	// Clustered says the probed relation (base or AR) is locally
	// clustered on the join attribute.
	Clustered bool
}

// PredictNaive returns the per-node response time (in I/Os) of maintaining
// the view with the naive method: every node searches for every
// intermediate tuple at each step, and non-clustered fetches spread over
// the L nodes.
func PredictNaive(l, a int, steps []ChainStep) float64 {
	in := float64(a)
	total := 0.0
	for _, s := range steps {
		total += in * IOSearch // every node probes every intermediate tuple
		matches := in * s.Fanout
		if !s.Clustered {
			total += matches / float64(l) * IOFetch
		}
		in = matches
	}
	return total
}

// PredictAuxRel returns the per-node response time of the auxiliary-
// relation method: intermediates are hash-routed, so each node sees a 1/L
// share per step, probing an AR clustered on the join attribute; plus the
// updates to the updated table's own auxiliary relations (arUpdates is the
// number of its ARs — zero when it is partitioned on its join attribute,
// as customer is in the paper's experiment).
func PredictAuxRel(l, a int, steps []ChainStep, arUpdates int) float64 {
	in := float64(a)
	total := float64(arUpdates) * ceilF(a, l) * IOInsert
	for _, s := range steps {
		total += ceilF(int(in+0.5), l) * IOSearch
		in *= s.Fanout
	}
	return total
}

// PredictGlobalIndex returns the per-node response time of the global-
// index method: each step routes intermediates to GI home nodes (1/L share
// of searches), then fetches matches at the owning nodes — per page when
// the GI is distributed clustered, per tuple otherwise. giUpdates is the
// number of global indexes on the updated table.
func PredictGlobalIndex(l, a int, steps []ChainStep, giUpdates int) float64 {
	in := float64(a)
	total := float64(giUpdates) * ceilF(a, l) * IOInsert
	for _, s := range steps {
		total += ceilF(int(in+0.5), l) * IOSearch
		matches := in * s.Fanout
		if s.Clustered {
			// Distributed clustered: one page fetch per (tuple, owning
			// node); K = min(fanout, L) owners per tuple, work split
			// over the L nodes.
			k := s.Fanout
			if k > float64(l) {
				k = float64(l)
			}
			total += in * k / float64(l) * IOFetch
		} else {
			total += matches / float64(l) * IOFetch
		}
		in = matches
	}
	return total
}

// Total-workload variants: I/Os summed over all nodes (the paper's TW,
// "a useful basic metric because ... response time alone can hide the fact
// that multiple nodes may be doing unproductive work"). The auto-strategy
// advisor minimizes these — the operational-warehouse goal is throughput.

// TotalNaive is the naive method's TW for a transaction of a tuples: every
// node searches for every intermediate tuple (in·L per step), plus one
// fetch per match when the probe is non-clustered.
func TotalNaive(l, a int, steps []ChainStep) float64 {
	in := float64(a)
	total := 0.0
	for _, s := range steps {
		total += in * float64(l) * IOSearch
		matches := in * s.Fanout
		if !s.Clustered {
			total += matches * IOFetch
		}
		in = matches
	}
	return total
}

// TotalAuxRel is the AR method's TW: one routed search per intermediate
// tuple per step (clustered ARs fetch free) plus the updates to the
// updated table's own ARs (2 I/Os each).
func TotalAuxRel(l, a int, steps []ChainStep, arUpdates int) float64 {
	_ = l
	in := float64(a)
	total := float64(arUpdates) * float64(a) * IOInsert
	for _, s := range steps {
		total += in * IOSearch
		in *= s.Fanout
	}
	return total
}

// TotalGlobalIndex is the GI method's TW: one GI search per intermediate
// tuple per step, fetches per match (per owning page when distributed
// clustered, K = min(fanout, L) pages), plus updates to the updated
// table's own GIs.
func TotalGlobalIndex(l, a int, steps []ChainStep, giUpdates int) float64 {
	in := float64(a)
	total := float64(giUpdates) * float64(a) * IOInsert
	for _, s := range steps {
		total += in * IOSearch
		if s.Clustered {
			k := s.Fanout
			if k > float64(l) {
				k = float64(l)
			}
			total += in * k * IOFetch
		} else {
			total += in * s.Fanout * IOFetch
		}
		in *= s.Fanout
	}
	return total
}

func ceilF(a, b int) float64 {
	if b <= 0 {
		return float64(a)
	}
	return float64((a + b - 1) / b)
}
