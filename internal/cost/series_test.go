package cost

import "testing"

var (
	figLs = []int{1, 2, 4, 8, 16, 32, 64, 128}
	figNs = []int{1, 2, 4, 8, 16, 32, 64, 128}
)

func TestFig7Shape(t *testing.T) {
	s := Fig7(figLs, 10, 6400, 10)
	if len(s.Lines) != 5 || len(s.X) != len(figLs) {
		t.Fatalf("series shape wrong: %d lines", len(s.Lines))
	}
	ar := s.Lines[MethodAuxRel].Y
	naiveNC := s.Lines[MethodNaiveNonClustered].Y
	naiveC := s.Lines[MethodNaiveClustered].Y
	giNC := s.Lines[MethodGINonClustered].Y
	giC := s.Lines[MethodGIClustered].Y
	for i, l := range figLs {
		if ar[i] != 3 {
			t.Errorf("L=%d: AR TW = %g", l, ar[i])
		}
		if giNC[i] != 13 {
			t.Errorf("L=%d: GI-nc TW = %g", l, giNC[i])
		}
		if naiveC[i] != float64(l) || naiveNC[i] != float64(l+10) {
			t.Errorf("L=%d: naive TW = %g / %g", l, naiveC[i], naiveNC[i])
		}
		if giC[i] != float64(3+min(10, l)) {
			t.Errorf("L=%d: GI-c TW = %g", l, giC[i])
		}
	}
}

func TestFig8Intermediate(t *testing.T) {
	// "The global index method is an intermediate method": for small N it
	// is close to AR, for large N close to naive.
	s := Fig8(32, figNs, 6400, 10)
	ar := s.Lines[MethodAuxRel].Y
	naiveNC := s.Lines[MethodNaiveNonClustered].Y
	giNC := s.Lines[MethodGINonClustered].Y
	// N=1: GI-nc = 4, one above AR=3 and far from naive=33.
	if giNC[0]-ar[0] != 1 {
		t.Errorf("N=1: GI-nc - AR = %g", giNC[0]-ar[0])
	}
	// N=128: GI-nc = 131 vs naive-nc = 160; gap to naive = L-3 = 29,
	// while the gap to AR has grown to 128.
	last := len(figNs) - 1
	if naiveNC[last]-giNC[last] >= giNC[last]-ar[last] {
		t.Errorf("N=128: GI should sit near naive (gaps %g vs %g)",
			naiveNC[last]-giNC[last], giNC[last]-ar[last])
	}
}

func TestFig9Decreasing(t *testing.T) {
	s := Fig9(figLs, 400, 10, 6400, 10)
	ar := s.Lines[MethodAuxRel].Y
	naiveC := s.Lines[MethodNaiveClustered].Y
	for i := 1; i < len(figLs); i++ {
		if ar[i] > ar[i-1] {
			t.Errorf("AR response should fall with L: %v", ar)
		}
	}
	// Naive clustered is the constant A.
	for i := range figLs {
		if naiveC[i] != 400 {
			t.Errorf("naive clustered should be constant 400, got %v", naiveC)
		}
	}
	// At L=128, AR beats every other method.
	for mv := MethodNaiveNonClustered; mv < numMethods; mv++ {
		if s.Lines[mv].Y[len(figLs)-1] <= ar[len(figLs)-1] {
			t.Errorf("AR should win at L=128 (vs %s)", mv.Label())
		}
	}
}

func TestFig10NaiveClusteredWins(t *testing.T) {
	s := Fig10(figLs, 6500, 10, 6400, 10)
	naiveC := s.Lines[MethodNaiveClustered].Y
	for i := range figLs {
		for mv := Method(0); mv < numMethods; mv++ {
			if mv == MethodNaiveClustered {
				continue
			}
			if s.Lines[mv].Y[i] <= naiveC[i] {
				t.Errorf("L=%d: naive clustered (%g) should beat %s (%g) under sort-merge",
					figLs[i], naiveC[i], mv.Label(), s.Lines[mv].Y[i])
			}
		}
	}
}

func TestFig11CrossoverAndPlateau(t *testing.T) {
	as := []int{1, 10, 100, 400, 1000, 2000, 4000, 6500, 7000}
	s := Fig11(128, as, 10, 6400, 10)
	ar := s.Lines[MethodAuxRel].Y
	naiveC := s.Lines[MethodNaiveClustered].Y
	// Moderate A: AR wins (at A=400, AR = 3·ceil(400/128) = 12 versus
	// naive's 400). Large A (≈ pages of B): naive clustered wins.
	iA400 := 3 // index of A=400 in as
	if ar[iA400] >= naiveC[iA400] {
		t.Errorf("AR (%g) should win at A=400 vs naive clustered (%g)", ar[iA400], naiveC[iA400])
	}
	last := len(as) - 1
	if naiveC[last] >= ar[last] {
		t.Error("naive clustered should win at A=7000")
	}
	// Naive clustered plateaus at min(A, Bi): monotone nondecreasing and
	// capped at Bi = 50.
	for i := range as {
		if naiveC[i] > 50 {
			t.Errorf("naive clustered exceeded its plateau: %v", naiveC)
		}
	}
}

func TestFig12StepWise(t *testing.T) {
	// ceil(A/L) steps: at L=128, A=1..128 cost the same, A=129 jumps.
	as := []int{1, 64, 128, 129, 256, 257}
	s := Fig12(128, as, 10, 6400, 10)
	ar := s.Lines[MethodAuxRel].Y
	if ar[0] != ar[1] || ar[1] != ar[2] {
		t.Errorf("AR should be flat for A in 1..128: %v", ar)
	}
	if ar[3] <= ar[2] {
		t.Errorf("AR should step up at A=129: %v", ar)
	}
	if ar[4] != ar[3] || ar[5] <= ar[4] {
		t.Errorf("AR should be flat to 256 then step at 257: %v", ar)
	}
	if MethodAuxRel.Label() == "" || Method(99).Label() != "unknown" {
		t.Error("labels wrong")
	}
}
