package cost

import (
	"math"
	"testing"
	"testing/quick"

	"joinview/internal/catalog"
)

// Paper parameters (§3.2): |B| = 6,400 pages, M = 10, N = 10, K = min(N,L).
func paperModel(l int) Model {
	return Model{L: l, N: 10, BPages: 6400, MemPages: 10}
}

func TestTWPaperConstants(t *testing.T) {
	// Figure 7's stated constants: "For the auxiliary relation method, TW
	// is a small constant 3. ... For the global index method, TW quickly
	// reaches a constant 13 (K becomes N when L becomes larger than N)".
	for _, l := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		m := paperModel(l)
		if got := m.TWAuxRel(); got != 3 {
			t.Errorf("L=%d: TWAuxRel = %d, want 3", l, got)
		}
		if got := m.TWGlobalIndex(false); got != 13 {
			t.Errorf("L=%d: TWGlobalIndex(non-clustered) = %d, want 13", l, got)
		}
		wantGIC := 3 + min(10, l)
		if got := m.TWGlobalIndex(true); got != wantGIC {
			t.Errorf("L=%d: TWGlobalIndex(clustered) = %d, want %d", l, got, wantGIC)
		}
		// Naive grows linearly with L.
		if got := m.TWNaive(true); got != l {
			t.Errorf("L=%d: TWNaive(clustered) = %d, want %d", l, got, l)
		}
		if got := m.TWNaive(false); got != l+10 {
			t.Errorf("L=%d: TWNaive(non-clustered) = %d, want %d", l, got, l+10)
		}
	}
}

func TestTWOrderingProperties(t *testing.T) {
	// For any L ≥ 4 and N ≥ 1: AR ≤ GI ≤ naive(non-clustered) in TW,
	// the paper's "intermediate method" claim.
	f := func(l8, n8 uint8) bool {
		l := int(l8%125) + 4
		n := int(n8%100) + 1
		m := Model{L: l, N: n, BPages: 6400, MemPages: 10}
		ar := m.TWAuxRel()
		gic := m.TWGlobalIndex(true)
		ginc := m.TWGlobalIndex(false)
		naive := m.TWNaive(false)
		return ar <= gic && gic <= ginc && ginc <= naive
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKDefaultsToMinNL(t *testing.T) {
	m := Model{L: 4, N: 10}
	if m.k() != 4 {
		t.Errorf("k = %d, want 4", m.k())
	}
	m = Model{L: 32, N: 10}
	if m.k() != 10 {
		t.Errorf("k = %d, want 10", m.k())
	}
	m = Model{L: 32, N: 10, K: 7}
	if m.k() != 7 {
		t.Errorf("explicit K ignored: %d", m.k())
	}
}

func TestRespAuxRelFormula(t *testing.T) {
	// §3.3/Fig 9: "The execution time of the auxiliary relation method
	// (3·A/L) decreases rapidly with more data server nodes."
	m := paperModel(8)
	if got := m.RespAuxRel(400, AlgoIndex); got != 3*50 {
		t.Errorf("RespAuxRel(400, L=8, index) = %g, want 150", got)
	}
	// Step-wise ceiling: 401 tuples on 8 nodes -> ceil = 51.
	if got := m.RespAuxRel(401, AlgoIndex); got != 3*51 {
		t.Errorf("RespAuxRel(401) = %g, want 153", got)
	}
}

func TestRespNaiveFormula(t *testing.T) {
	m := paperModel(8)
	// Clustered: A searches at every node -> constant A.
	if got := m.RespNaive(400, true, AlgoIndex); got != 400 {
		t.Errorf("RespNaive clustered = %g, want 400", got)
	}
	// Non-clustered: A + ceil(A*N/L) = 400 + 500.
	if got := m.RespNaive(400, false, AlgoIndex); got != 900 {
		t.Errorf("RespNaive non-clustered = %g, want 900", got)
	}
}

func TestRespGlobalIndexFormula(t *testing.T) {
	m := paperModel(8) // K = min(10, 8) = 8
	// (3+K)A/L form: 3*ceil(400/8) + ceil(400*8/8) = 150 + 400 = 550.
	if got := m.RespGlobalIndex(400, true, AlgoIndex); got != 550 {
		t.Errorf("RespGI clustered = %g, want 550", got)
	}
	// (3+N)A/L form: 150 + ceil(400*10/8) = 150 + 500 = 650.
	if got := m.RespGlobalIndex(400, false, AlgoIndex); got != 650 {
		t.Errorf("RespGI non-clustered = %g, want 650", got)
	}
}

func TestSortMergeCrossover(t *testing.T) {
	// Figure 10's headline: with A=6,500 > |B| pages, the naive method
	// with clustered index beats the auxiliary relation method.
	for _, l := range []int{2, 8, 32, 128} {
		m := paperModel(l)
		naiveC := m.RespNaive(6500, true, AlgoSortMerge)
		ar := m.RespAuxRel(6500, AlgoSortMerge)
		if naiveC >= ar {
			t.Errorf("L=%d: naive-clustered (%g) should beat AR (%g) at A=6500", l, naiveC, ar)
		}
		gi := m.RespGlobalIndex(6500, true, AlgoSortMerge)
		if naiveC >= gi {
			t.Errorf("L=%d: naive-clustered (%g) should beat GI (%g) at A=6500", l, naiveC, gi)
		}
	}
	// And for small updates the ordering flips (Fig 9).
	for _, l := range []int{8, 32, 128} {
		m := paperModel(l)
		if m.RespAuxRel(400, AlgoBest) >= m.RespNaive(400, true, AlgoBest) {
			t.Errorf("L=%d: AR should beat naive for small updates", l)
		}
	}
}

func TestAlgoBestPicksMin(t *testing.T) {
	m := paperModel(128)
	for _, a := range []int{1, 100, 1000, 6500, 20000} {
		for _, mv := range []Method{MethodAuxRel, MethodNaiveNonClustered, MethodNaiveClustered, MethodGINonClustered, MethodGIClustered} {
			best := m.Resp(mv, a, AlgoBest)
			inl := m.Resp(mv, a, AlgoIndex)
			sm := m.Resp(mv, a, AlgoSortMerge)
			if best != math.Min(inl, sm) {
				t.Errorf("A=%d %s: best=%g, inl=%g, sm=%g", a, mv.Label(), best, inl, sm)
			}
		}
	}
}

// Fig 11: each curve reaches the sort-merge plateau once A is large; the
// naive methods plateau at pure scan/sort cost, AR/GI keep only the slowly
// growing structure-update term.
func TestResponsePlateau(t *testing.T) {
	m := paperModel(128)
	naive := m.RespNaive(1000000, true, AlgoBest)
	if got := m.RespNaive(5000000, true, AlgoBest); got != naive {
		t.Errorf("naive clustered should plateau at Bi: %g vs %g", naive, got)
	}
	if got := m.RespNaive(1000000, true, AlgoBest); got != float64(m.BiPages()) {
		t.Errorf("naive clustered plateau = %g, want Bi = %d", got, m.BiPages())
	}
	// AR at huge A: Bi + 2*ceil(A/L), strictly above naive clustered.
	ar := m.RespAuxRel(1000000, AlgoBest)
	want := float64(m.BiPages()) + 2*float64((1000000+127)/128)
	if ar != want {
		t.Errorf("AR sort-merge plateau = %g, want %g", ar, want)
	}
}

func TestAdvise(t *testing.T) {
	// Small update, clustered naive index available: AR still wins.
	m := paperModel(8)
	if got := m.Advise(128, true, true); got != catalog.StrategyAuxRel {
		t.Errorf("Advise(small) = %v, want auxrel", got)
	}
	// Huge update: naive with clustered index wins (Fig 10).
	if got := m.Advise(6500, true, true); got != catalog.StrategyNaive {
		t.Errorf("Advise(huge, clustered) = %v, want naive", got)
	}
	// Huge update with only a non-clustered naive path: sorting B_i
	// (B_i·log_M B_i = 2400) still undercuts AR's scan + per-tuple AR
	// updates (B_i + 2·ceil(A/L) = 2426) — "as the number of inserted
	// tuples approaches the number of pages of B, the auxiliary relation
	// method is indeed worse than the naive method".
	if got := m.Advise(6500, false, false); got != catalog.StrategyNaive {
		t.Errorf("Advise(huge, non-clustered) = %v, want naive", got)
	}
	// At moderate size the AR update term is negligible and AR wins again.
	if got := m.Advise(1000, false, false); got != catalog.StrategyAuxRel {
		t.Errorf("Advise(moderate) = %v, want auxrel", got)
	}
}

func TestCeilHelpers(t *testing.T) {
	if ceilDiv(10, 4) != 3 || ceilDiv(8, 4) != 2 || ceilDiv(0, 4) != 0 {
		t.Error("ceilDiv wrong")
	}
	if ceilDiv(5, 0) != 5 {
		t.Error("ceilDiv with zero divisor should pass through")
	}
	if ceilLog(10, 0) != 0 || ceilLog(10, 10) != 1 || ceilLog(10, 11) != 2 || ceilLog(0, 8) != 3 {
		t.Error("ceilLog wrong")
	}
	if ceilF(10, 4) != 3 || ceilF(10, 0) != 10 {
		t.Error("ceilF wrong")
	}
}
