package cost

import "testing"

// Figure 13 setup: 128 tuples inserted into customer; each customer tuple
// matches 1 orders tuple, each orders tuple matches 40 lineitem tuples;
// customer is partitioned on custkey (no AR of its own). The naive method
// probes orders/lineitem via non-clustered secondary indexes; the AR method
// probes orders_1/lineitem_1 clustered on the join attributes.

func jv1Steps(clustered bool) []ChainStep {
	return []ChainStep{{Fanout: 1, Clustered: clustered}}
}

func jv2Steps(clustered bool) []ChainStep {
	return []ChainStep{
		{Fanout: 1, Clustered: clustered},
		{Fanout: 40, Clustered: clustered},
	}
}

func TestFig13PredictedShapes(t *testing.T) {
	const a = 128
	for _, l := range []int{2, 4, 8} {
		jv1Naive := PredictNaive(l, a, jv1Steps(false))
		jv1AR := PredictAuxRel(l, a, jv1Steps(true), 0)
		jv2Naive := PredictNaive(l, a, jv2Steps(false))
		jv2AR := PredictAuxRel(l, a, jv2Steps(true), 0)

		// AR beats naive on both views at every node count.
		if jv1AR >= jv1Naive {
			t.Errorf("L=%d: JV1 AR (%g) should beat naive (%g)", l, jv1AR, jv1Naive)
		}
		if jv2AR >= jv2Naive {
			t.Errorf("L=%d: JV2 AR (%g) should beat naive (%g)", l, jv2AR, jv2Naive)
		}
		// The 3-way view costs more than the 2-way for both methods.
		if jv2Naive <= jv1Naive || jv2AR < jv1AR {
			t.Errorf("L=%d: JV2 should cost at least JV1", l)
		}
		// Speedup grows with L (checked across the loop below).
	}
	// "The speedup gained by the AR method over the naive method increases
	// with the number of data server nodes."
	speedup := func(l int) float64 {
		return PredictNaive(l, a, jv2Steps(false)) / PredictAuxRel(l, a, jv2Steps(true), 0)
	}
	if !(speedup(2) < speedup(4) && speedup(4) < speedup(8)) {
		t.Errorf("speedups = %g, %g, %g; want increasing", speedup(2), speedup(4), speedup(8))
	}
}

func TestFig13ExactValues(t *testing.T) {
	// Closed forms: naive JV1 = A + A/L; AR JV1 = ceil(A/L).
	const a = 128
	if got := PredictNaive(4, a, jv1Steps(false)); got != 128+32 {
		t.Errorf("naive JV1 at L=4 = %g, want 160", got)
	}
	if got := PredictAuxRel(4, a, jv1Steps(true), 0); got != 32 {
		t.Errorf("AR JV1 at L=4 = %g, want 32", got)
	}
	// naive JV2 = A + A/L + A + 40A/L = 2A + 41A/L.
	if got := PredictNaive(4, a, jv2Steps(false)); got != 2*128+41*32 {
		t.Errorf("naive JV2 at L=4 = %g, want %d", got, 2*128+41*32)
	}
	// AR JV2 = 2*ceil(A/L).
	if got := PredictAuxRel(4, a, jv2Steps(true), 0); got != 64 {
		t.Errorf("AR JV2 at L=4 = %g, want 64", got)
	}
}

func TestPredictAuxRelARUpdateTerm(t *testing.T) {
	// An updated table with its own ARs pays 2 I/Os per AR per routed tuple.
	base := PredictAuxRel(4, 128, jv1Steps(true), 0)
	with2 := PredictAuxRel(4, 128, jv1Steps(true), 2)
	if with2-base != 2*32*2 {
		t.Errorf("AR update term = %g, want 128", with2-base)
	}
}

func TestPredictGlobalIndex(t *testing.T) {
	const a = 128
	l := 4
	// Non-clustered, fanout 40 step: searches ceil(in/L), fetches in*40/L.
	got := PredictGlobalIndex(l, a, []ChainStep{{Fanout: 40, Clustered: false}}, 1)
	want := float64(2*32) + 32 + float64(128*40)/4
	if got != want {
		t.Errorf("PredictGlobalIndex = %g, want %g", got, want)
	}
	// Clustered caps per-tuple owner count at L.
	gotC := PredictGlobalIndex(l, a, []ChainStep{{Fanout: 40, Clustered: true}}, 0)
	wantC := float64(32) + float64(128*4)/4
	if gotC != wantC {
		t.Errorf("PredictGlobalIndex clustered = %g, want %g", gotC, wantC)
	}
	// GI sits between AR and naive.
	ar := PredictAuxRel(l, a, jv2Steps(true), 0)
	naive := PredictNaive(l, a, jv2Steps(false))
	gi := PredictGlobalIndex(l, a, jv2Steps(false), 0)
	if !(ar < gi && gi < naive) {
		t.Errorf("ordering AR(%g) < GI(%g) < naive(%g) violated", ar, gi, naive)
	}
}

// TW estimators must reduce to the §3.1 per-tuple constants for the
// two-relation case: AR = 3, naive = L + N (non-clustered) or L
// (clustered), GI = 3 + N (non-clustered) or 3 + K (clustered).
func TestTotalWorkloadMatchesPerTupleModel(t *testing.T) {
	for _, l := range []int{2, 8, 32} {
		for _, n := range []int{1, 10, 64} {
			m := Model{L: l, N: n}
			ncStep := []ChainStep{{Fanout: float64(n), Clustered: false}}
			cStep := []ChainStep{{Fanout: float64(n), Clustered: true}}
			if got := TotalNaive(l, 1, ncStep); got != float64(m.TWNaive(false)) {
				t.Errorf("L=%d N=%d: TotalNaive = %g, want %d", l, n, got, m.TWNaive(false))
			}
			if got := TotalNaive(l, 1, cStep); got != float64(m.TWNaive(true)) {
				t.Errorf("L=%d N=%d: TotalNaive clustered = %g, want %d", l, n, got, m.TWNaive(true))
			}
			if got := TotalAuxRel(l, 1, cStep, 1); got != float64(m.TWAuxRel()) {
				t.Errorf("L=%d N=%d: TotalAuxRel = %g, want 3", l, n, got)
			}
			if got := TotalGlobalIndex(l, 1, ncStep, 1); got != float64(m.TWGlobalIndex(false)) {
				t.Errorf("L=%d N=%d: TotalGlobalIndex nc = %g, want %d", l, n, got, m.TWGlobalIndex(false))
			}
			if got := TotalGlobalIndex(l, 1, cStep, 1); got != float64(m.TWGlobalIndex(true)) {
				t.Errorf("L=%d N=%d: TotalGlobalIndex c = %g, want %d", l, n, got, m.TWGlobalIndex(true))
			}
		}
	}
	// TW ordering AR <= GI <= naive holds for transactions too.
	steps := []ChainStep{{Fanout: 4, Clustered: false}, {Fanout: 3, Clustered: false}}
	ar := TotalAuxRel(8, 100, []ChainStep{{Fanout: 4, Clustered: true}, {Fanout: 3, Clustered: true}}, 1)
	gi := TotalGlobalIndex(8, 100, steps, 1)
	naive := TotalNaive(8, 100, steps)
	if !(ar < gi && gi < naive) {
		t.Errorf("TW ordering violated: AR=%g GI=%g naive=%g", ar, gi, naive)
	}
}
