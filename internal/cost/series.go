package cost

import "fmt"

// Series generators for the paper's Figures 7–12. Each returns the X axis
// and one labelled Y series per method variant, in the order the paper's
// legends list them:
//
//	auxiliary relation,
//	naive with non-clustered index,
//	naive with clustered index,
//	global index (distributed non-clustered),
//	global index (distributed clustered).

// MethodSeries is one curve.
type MethodSeries struct {
	Label string
	Y     []float64
}

// Series is one figure: a shared X axis and the per-method curves.
type Series struct {
	Title string
	XName string
	X     []int
	Lines []MethodSeries
}

// Method indexes the five method variants of the paper's legends.
type Method int

// Method variants, in legend order.
const (
	MethodAuxRel Method = iota
	MethodNaiveNonClustered
	MethodNaiveClustered
	MethodGINonClustered
	MethodGIClustered
	numMethods
)

// Label returns the legend text of the method variant.
func (mv Method) Label() string {
	switch mv {
	case MethodAuxRel:
		return "auxiliary relation"
	case MethodNaiveNonClustered:
		return "naive (non-clustered index)"
	case MethodNaiveClustered:
		return "naive (clustered index)"
	case MethodGINonClustered:
		return "global index (dist non-clustered)"
	case MethodGIClustered:
		return "global index (dist clustered)"
	default:
		return "unknown"
	}
}

// TW returns the model's total workload per inserted tuple for the variant.
func (m Model) TW(mv Method) float64 {
	switch mv {
	case MethodAuxRel:
		return float64(m.TWAuxRel())
	case MethodNaiveNonClustered:
		return float64(m.TWNaive(false))
	case MethodNaiveClustered:
		return float64(m.TWNaive(true))
	case MethodGINonClustered:
		return float64(m.TWGlobalIndex(false))
	default:
		return float64(m.TWGlobalIndex(true))
	}
}

// Resp returns the model's response time for A inserted tuples for the
// variant under the given algorithm.
func (m Model) Resp(mv Method, a int, algo Algo) float64 {
	switch mv {
	case MethodAuxRel:
		return m.RespAuxRel(a, algo)
	case MethodNaiveNonClustered:
		return m.RespNaive(a, false, algo)
	case MethodNaiveClustered:
		return m.RespNaive(a, true, algo)
	case MethodGINonClustered:
		return m.RespGlobalIndex(a, false, algo)
	default:
		return m.RespGlobalIndex(a, true, algo)
	}
}

// perMethod evaluates f for the five method variants at every x.
func perMethod(title, xname string, xs []int, f func(x int, mv Method) float64) Series {
	s := Series{Title: title, XName: xname, X: xs}
	for mv := Method(0); mv < numMethods; mv++ {
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = f(x, mv)
		}
		s.Lines = append(s.Lines, MethodSeries{Label: mv.Label(), Y: ys})
	}
	return s
}

// Fig7 is total workload per single-tuple insert vs the number of data
// server nodes (paper Figure 7; N fixed).
func Fig7(ls []int, n, bPages, memPages int) Series {
	return perMethod("Fig 7: TW vs number of data server nodes", "L", ls, func(l int, mv Method) float64 {
		return Model{L: l, N: n, BPages: bPages, MemPages: memPages}.TW(mv)
	})
}

// Fig8 is total workload per single-tuple insert vs the join fan-out N
// (paper Figure 8; L fixed, the paper uses 32).
func Fig8(l int, ns []int, bPages, memPages int) Series {
	return perMethod("Fig 8: TW vs number of join tuples generated (N)", "N", ns, func(n int, mv Method) float64 {
		return Model{L: l, N: n, BPages: bPages, MemPages: memPages}.TW(mv)
	})
}

// Fig9 is the response time of one transaction of A inserted tuples vs
// node count under the index join algorithm (paper Figure 9, A=400).
func Fig9(ls []int, a, n, bPages, memPages int) Series {
	title := fmt.Sprintf("Fig 9: execution time of one transaction with %d tuples (index join)", a)
	return perMethod(title, "L", ls, func(l int, mv Method) float64 {
		return Model{L: l, N: n, BPages: bPages, MemPages: memPages}.Resp(mv, a, AlgoIndex)
	})
}

// Fig10 is the response time of one transaction of A inserted tuples vs
// node count under the sort-merge algorithm (paper Figure 10, A=6,500).
func Fig10(ls []int, a, n, bPages, memPages int) Series {
	title := fmt.Sprintf("Fig 10: execution time of one transaction with %d tuples (sort-merge join)", a)
	return perMethod(title, "L", ls, func(l int, mv Method) float64 {
		return Model{L: l, N: n, BPages: bPages, MemPages: memPages}.Resp(mv, a, AlgoSortMerge)
	})
}

// Fig11 is the response time vs number of inserted tuples at fixed L, with
// each method using its cheaper algorithm (paper Figure 11, L=128).
func Fig11(l int, as []int, n, bPages, memPages int) Series {
	title := fmt.Sprintf("Fig 11: execution time vs tuples inserted (L=%d)", l)
	return perMethod(title, "A", as, func(a int, mv Method) float64 {
		return Model{L: l, N: n, BPages: bPages, MemPages: memPages}.Resp(mv, a, AlgoBest)
	})
}

// Fig12 is Figure 11 zoomed into small transactions, exposing the
// step-wise ceil(A/L) behaviour (paper Figure 12).
func Fig12(l int, as []int, n, bPages, memPages int) Series {
	title := fmt.Sprintf("Fig 12: execution time vs tuples inserted, detail (L=%d)", l)
	return perMethod(title, "A", as, func(a int, mv Method) float64 {
		return Model{L: l, N: n, BPages: bPages, MemPages: memPages}.Resp(mv, a, AlgoBest)
	})
}
