package types

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestCompareOrdering(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Int(-5), Int(5), -1},
		{Float(1.5), Float(2.5), -1},
		{Float(2.5), Float(2.5), 0},
		{String("a"), String("b"), -1},
		{String("b"), String("b"), 0},
		{String("ba"), String("b"), 1},
		{Null(), Int(0), -1},
		{Null(), Null(), 0},
		{Int(1), Float(1), -1}, // kind ordering: int < float
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := Compare(c.b, c.a); got != -c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d (antisymmetry)", c.b, c.a, got, -c.want)
		}
	}
}

func TestKindFromName(t *testing.T) {
	for name, want := range map[string]Kind{
		"BIGINT": KindInt, "int": KindInt, "Integer": KindInt,
		"DOUBLE": KindFloat, "float": KindFloat,
		"VARCHAR": KindString, "text": KindString,
	} {
		got, err := KindFromName(name)
		if err != nil || got != want {
			t.Errorf("KindFromName(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := KindFromName("BLOB"); err == nil {
		t.Error("KindFromName(BLOB) should fail")
	}
}

func TestHashEqualValues(t *testing.T) {
	if Int(42).Hash() != Int(42).Hash() {
		t.Error("equal ints must hash equally")
	}
	if String("x").Hash() != String("x").Hash() {
		t.Error("equal strings must hash equally")
	}
	if Int(42).Hash() == Int(43).Hash() {
		t.Error("distinct ints should not collide (sanity)")
	}
	if Int(0).Hash() == Float(0).Hash() {
		t.Error("kind participates in the hash")
	}
}

func TestValueRoundTrip(t *testing.T) {
	vals := []Value{
		Null(), Int(0), Int(1), Int(-1), Int(math.MaxInt64), Int(math.MinInt64),
		Float(0), Float(-0.5), Float(3.25), Float(math.MaxFloat64), Float(-math.MaxFloat64),
		String(""), String("hello"), String("naïve ⋈"),
	}
	for _, v := range vals {
		enc := AppendValue(nil, v)
		got, n, err := DecodeValue(enc)
		if err != nil {
			t.Fatalf("DecodeValue(%v): %v", v, err)
		}
		if n != len(enc) {
			t.Errorf("DecodeValue(%v) consumed %d of %d bytes", v, n, len(enc))
		}
		if !Equal(got, v) {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
}

// Property: the key encoding is order-preserving within a kind, so bytewise
// comparison of encoded keys agrees with Compare.
func TestEncodingOrderPreservingInts(t *testing.T) {
	f := func(a, b int64) bool {
		ka, kb := EncodeKey(Int(a)), EncodeKey(Int(b))
		return sign(bytes.Compare(ka, kb)) == sign(Compare(Int(a), Int(b)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodingOrderPreservingFloats(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		ka, kb := EncodeKey(Float(a)), EncodeKey(Float(b))
		return sign(bytes.Compare(ka, kb)) == sign(Compare(Float(a), Float(b)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodingOrderPreservingSortedInts(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := make([]int64, 500)
	for i := range vals {
		vals[i] = rng.Int63() - rng.Int63()
	}
	keys := make([][]byte, len(vals))
	for i, v := range vals {
		keys[i] = EncodeKey(Int(v))
	}
	sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 })
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for i := range vals {
		got, _, err := DecodeValue(keys[i])
		if err != nil {
			t.Fatal(err)
		}
		if got.I != vals[i] {
			t.Fatalf("sorted key %d decodes to %d, want %d", i, got.I, vals[i])
		}
	}
}

func TestTupleRoundTrip(t *testing.T) {
	f := func(i int64, fl float64, s string) bool {
		if math.IsNaN(fl) {
			return true
		}
		in := Tuple{Int(i), Float(fl), String(s), Null()}
		enc := EncodeTuple(in)
		out, n, err := DecodeTuple(enc)
		return err == nil && n == len(enc) && out.Equal(in)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := DecodeValue(nil); err == nil {
		t.Error("decode empty value should fail")
	}
	if _, _, err := DecodeValue([]byte{byte(KindInt), 1, 2}); err == nil {
		t.Error("decode short int should fail")
	}
	if _, _, err := DecodeValue([]byte{byte(KindString), 200}); err == nil {
		t.Error("decode truncated string should fail")
	}
	if _, _, err := DecodeValue([]byte{99}); err == nil {
		t.Error("decode unknown kind should fail")
	}
	if _, _, err := DecodeTuple([]byte{}); err == nil {
		t.Error("decode empty tuple should fail")
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}
