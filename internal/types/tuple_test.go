package types

import "testing"

func custSchema() *Schema {
	return NewSchema(
		Column{Name: "custkey", Kind: KindInt},
		Column{Name: "acctbal", Kind: KindFloat},
		Column{Name: "name", Kind: KindString},
	)
}

func TestSchemaColIndex(t *testing.T) {
	s := custSchema()
	if got := s.ColIndex("acctbal"); got != 1 {
		t.Errorf("ColIndex(acctbal) = %d, want 1", got)
	}
	if got := s.ColIndex("missing"); got != -1 {
		t.Errorf("ColIndex(missing) = %d, want -1", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustColIndex on missing column should panic")
		}
	}()
	s.MustColIndex("missing")
}

func TestSchemaProject(t *testing.T) {
	s := custSchema()
	p, err := s.Project([]string{"name", "custkey"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 || p.Cols[0].Name != "name" || p.Cols[1].Kind != KindInt {
		t.Errorf("unexpected projection %+v", p)
	}
	if _, err := s.Project([]string{"nope"}); err == nil {
		t.Error("projecting a missing column should fail")
	}
}

func TestSchemaConcatPrefixed(t *testing.T) {
	a := custSchema().Prefixed("c")
	b := NewSchema(Column{Name: "orderkey", Kind: KindInt}).Prefixed("o")
	j := a.Concat(b)
	if j.Len() != 4 {
		t.Fatalf("concat len = %d, want 4", j.Len())
	}
	if j.ColIndex("c.custkey") != 0 || j.ColIndex("o.orderkey") != 3 {
		t.Errorf("prefixed concat columns wrong: %v", j.Names())
	}
}

func TestSchemaValidate(t *testing.T) {
	s := custSchema()
	ok := Tuple{Int(1), Float(10.5), String("alice")}
	if err := s.Validate(ok); err != nil {
		t.Errorf("valid tuple rejected: %v", err)
	}
	if err := s.Validate(Tuple{Int(1), Null(), String("x")}); err != nil {
		t.Errorf("NULL should be allowed: %v", err)
	}
	if err := s.Validate(Tuple{Int(1)}); err == nil {
		t.Error("wrong arity should fail")
	}
	if err := s.Validate(Tuple{String("x"), Float(1), String("y")}); err == nil {
		t.Error("wrong kind should fail")
	}
}

func TestTupleOps(t *testing.T) {
	a := Tuple{Int(1), String("x")}
	b := a.Clone()
	b[0] = Int(2)
	if a[0].I != 1 {
		t.Error("Clone must not alias")
	}
	if !a.Equal(Tuple{Int(1), String("x")}) {
		t.Error("Equal failed")
	}
	if a.Equal(Tuple{Int(1)}) {
		t.Error("Equal must check arity")
	}
	if a.Compare(b) >= 0 {
		t.Error("Compare ordering wrong")
	}
	if a.Compare(Tuple{Int(1), String("x"), Int(9)}) >= 0 {
		t.Error("shorter prefix tuple must sort first")
	}
	c := a.Concat(Tuple{Float(3)})
	if len(c) != 3 || c[2].F != 3 {
		t.Errorf("Concat produced %v", c)
	}
	if a.Hash() != (Tuple{Int(1), String("x")}).Hash() {
		t.Error("equal tuples must hash equally")
	}
	if got := a.String(); got != "(1, x)" {
		t.Errorf("String() = %q", got)
	}
}
