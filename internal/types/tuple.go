package types

import (
	"fmt"
	"strings"
)

// Tuple is a row: one Value per schema column.
type Tuple []Value

// Clone returns a deep copy of the tuple (Values are value types, so a
// slice copy suffices).
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Equal reports whether two tuples have the same length and identical
// values position by position.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if !Equal(t[i], o[i]) {
			return false
		}
	}
	return true
}

// Compare orders tuples lexicographically.
func (t Tuple) Compare(o Tuple) int {
	n := min(len(t), len(o))
	for i := 0; i < n; i++ {
		if c := Compare(t[i], o[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(t) < len(o):
		return -1
	case len(t) > len(o):
		return 1
	}
	return 0
}

// Hash combines the hashes of all values, for duplicate detection and
// hash-join build keys.
func (t Tuple) Hash() uint64 {
	var h uint64 = 1469598103934665603 // FNV-64 offset basis
	for _, v := range t {
		h ^= v.Hash()
		h *= 1099511628211 // FNV-64 prime
	}
	return h
}

// Concat returns a new tuple t ++ o.
func (t Tuple) Concat(o Tuple) Tuple {
	out := make(Tuple, 0, len(t)+len(o))
	out = append(out, t...)
	out = append(out, o...)
	return out
}

// String renders the tuple as "(v1, v2, ...)" for debugging and shell output.
func (t Tuple) String() string {
	var sb strings.Builder
	sb.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(v.GoString())
	}
	sb.WriteByte(')')
	return sb.String()
}

// Column describes one attribute of a schema.
type Column struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of named, typed columns.
type Schema struct {
	Cols []Column
}

// NewSchema builds a schema from columns.
func NewSchema(cols ...Column) *Schema { return &Schema{Cols: cols} }

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Cols) }

// ColIndex returns the position of the named column, or -1 if absent.
func (s *Schema) ColIndex(name string) int {
	for i, c := range s.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// MustColIndex is ColIndex but panics on a missing column; used where the
// catalog has already validated the name.
func (s *Schema) MustColIndex(name string) int {
	i := s.ColIndex(name)
	if i < 0 {
		panic(fmt.Sprintf("types: schema has no column %q", name))
	}
	return i
}

// Project returns a new schema containing the named columns in order.
func (s *Schema) Project(names []string) (*Schema, error) {
	out := &Schema{Cols: make([]Column, 0, len(names))}
	for _, n := range names {
		i := s.ColIndex(n)
		if i < 0 {
			return nil, fmt.Errorf("types: no column %q in schema %v", n, s.Names())
		}
		out.Cols = append(out.Cols, s.Cols[i])
	}
	return out, nil
}

// Concat returns a schema with o's columns appended to s's.
func (s *Schema) Concat(o *Schema) *Schema {
	out := &Schema{Cols: make([]Column, 0, len(s.Cols)+len(o.Cols))}
	out.Cols = append(out.Cols, s.Cols...)
	out.Cols = append(out.Cols, o.Cols...)
	return out
}

// Prefixed returns a copy of the schema with every column renamed to
// "prefix.name"; used when joining relations so output columns stay
// unambiguous.
func (s *Schema) Prefixed(prefix string) *Schema {
	out := &Schema{Cols: make([]Column, len(s.Cols))}
	for i, c := range s.Cols {
		out.Cols[i] = Column{Name: prefix + "." + c.Name, Kind: c.Kind}
	}
	return out
}

// Names returns the column names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		out[i] = c.Name
	}
	return out
}

// Validate checks that tuple t conforms to the schema (arity and kinds;
// NULL is allowed in any column).
func (s *Schema) Validate(t Tuple) error {
	if len(t) != len(s.Cols) {
		return fmt.Errorf("types: tuple arity %d != schema arity %d", len(t), len(s.Cols))
	}
	for i, v := range t {
		if v.K != KindNull && v.K != s.Cols[i].Kind {
			return fmt.Errorf("types: column %q expects %v, got %v", s.Cols[i].Name, s.Cols[i].Kind, v.K)
		}
	}
	return nil
}
