package types

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary row format, used for index keys and page storage:
//
//	value := kind(1) payload
//	  int    -> order-preserving big-endian uint64 (sign bit flipped)
//	  float  -> order-preserving big-endian encoding of IEEE-754 bits
//	  string -> uvarint length + bytes
//	tuple := count(uvarint) value*
//
// Integer and float payloads are encoded so that bytewise comparison of two
// encoded values of the same kind matches Compare; B+-tree keys exploit this.

// AppendValue appends the binary encoding of v to dst and returns the
// extended slice.
func AppendValue(dst []byte, v Value) []byte {
	dst = append(dst, byte(v.K))
	switch v.K {
	case KindNull:
	case KindInt:
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], uint64(v.I)^(1<<63))
		dst = append(dst, b[:]...)
	case KindFloat:
		bits := math.Float64bits(v.F)
		if bits&(1<<63) != 0 {
			bits = ^bits // negative: flip all bits
		} else {
			bits |= 1 << 63 // positive: flip sign bit
		}
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], bits)
		dst = append(dst, b[:]...)
	case KindString:
		dst = binary.AppendUvarint(dst, uint64(len(v.S)))
		dst = append(dst, v.S...)
	}
	return dst
}

// DecodeValue decodes one value from b, returning the value and the number
// of bytes consumed.
func DecodeValue(b []byte) (Value, int, error) {
	if len(b) == 0 {
		return Value{}, 0, fmt.Errorf("types: decode value: empty input")
	}
	k := Kind(b[0])
	switch k {
	case KindNull:
		return Value{}, 1, nil
	case KindInt:
		if len(b) < 9 {
			return Value{}, 0, fmt.Errorf("types: decode int: short input (%d bytes)", len(b))
		}
		u := binary.BigEndian.Uint64(b[1:9]) ^ (1 << 63)
		return Int(int64(u)), 9, nil
	case KindFloat:
		if len(b) < 9 {
			return Value{}, 0, fmt.Errorf("types: decode float: short input (%d bytes)", len(b))
		}
		bits := binary.BigEndian.Uint64(b[1:9])
		if bits&(1<<63) != 0 {
			bits &^= 1 << 63
		} else {
			bits = ^bits
		}
		return Float(math.Float64frombits(bits)), 9, nil
	case KindString:
		n, sz := binary.Uvarint(b[1:])
		if sz <= 0 {
			return Value{}, 0, fmt.Errorf("types: decode string: bad length prefix")
		}
		start := 1 + sz
		end := start + int(n)
		if end > len(b) {
			return Value{}, 0, fmt.Errorf("types: decode string: short input (want %d bytes, have %d)", end, len(b))
		}
		return String(string(b[start:end])), end, nil
	default:
		return Value{}, 0, fmt.Errorf("types: decode: unknown kind %d", b[0])
	}
}

// EncodeKey encodes a single value as an order-preserving index key.
func EncodeKey(v Value) []byte { return AppendValue(nil, v) }

// AppendTuple appends the binary encoding of t to dst.
func AppendTuple(dst []byte, t Tuple) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(t)))
	for _, v := range t {
		dst = AppendValue(dst, v)
	}
	return dst
}

// EncodeTuple encodes a tuple into a fresh byte slice.
func EncodeTuple(t Tuple) []byte { return AppendTuple(nil, t) }

// DecodeTuple decodes a tuple from b, returning it and the bytes consumed.
func DecodeTuple(b []byte) (Tuple, int, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, 0, fmt.Errorf("types: decode tuple: bad count prefix")
	}
	off := sz
	t := make(Tuple, 0, n)
	for i := uint64(0); i < n; i++ {
		v, used, err := DecodeValue(b[off:])
		if err != nil {
			return nil, 0, fmt.Errorf("types: decode tuple value %d: %w", i, err)
		}
		t = append(t, v)
		off += used
	}
	return t, off, nil
}
