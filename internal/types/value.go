// Package types defines the value, tuple and schema primitives shared by
// every layer of the parallel RDBMS: storage fragments, indexes, the
// executor, the network simulator and the view-maintenance strategies.
//
// Values are small concrete structs (not interfaces) so tuples can be
// compared, hashed and binary-encoded without allocation-heavy type
// switches on hot maintenance paths.
package types

import (
	"fmt"
	"hash/fnv"
	"math"
	"strings"
)

// Kind enumerates the value types supported by the engine.
type Kind uint8

// Supported value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "BIGINT"
	case KindFloat:
		return "DOUBLE"
	case KindString:
		return "VARCHAR"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// KindFromName parses a SQL type name ("BIGINT", "INT", "DOUBLE", "FLOAT",
// "VARCHAR", "TEXT") into a Kind. The match is case-insensitive.
func KindFromName(name string) (Kind, error) {
	switch strings.ToUpper(name) {
	case "BIGINT", "INT", "INTEGER":
		return KindInt, nil
	case "DOUBLE", "FLOAT", "DECIMAL", "REAL":
		return KindFloat, nil
	case "VARCHAR", "TEXT", "CHAR", "STRING":
		return KindString, nil
	default:
		return KindNull, fmt.Errorf("types: unknown type name %q", name)
	}
}

// Value is a single SQL value. The zero Value is NULL.
type Value struct {
	K Kind
	I int64
	F float64
	S string
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Int returns an integer value.
func Int(v int64) Value { return Value{K: KindInt, I: v} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{K: KindFloat, F: v} }

// String returns a string value.
func String(v string) Value { return Value{K: KindString, S: v} }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// GoString renders the value for debugging and shell output.
func (v Value) GoString() string {
	switch v.K {
	case KindNull:
		return "NULL"
	case KindInt:
		return fmt.Sprintf("%d", v.I)
	case KindFloat:
		return fmt.Sprintf("%g", v.F)
	case KindString:
		return v.S
	default:
		return fmt.Sprintf("?kind%d", v.K)
	}
}

// Compare orders two values. NULL sorts before everything; values of
// different kinds order by kind; otherwise by natural order. It returns
// -1, 0 or +1.
func Compare(a, b Value) int {
	if a.K != b.K {
		if a.K < b.K {
			return -1
		}
		return 1
	}
	switch a.K {
	case KindNull:
		return 0
	case KindInt:
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		}
		return 0
	case KindFloat:
		switch {
		case a.F < b.F:
			return -1
		case a.F > b.F:
			return 1
		}
		return 0
	case KindString:
		return strings.Compare(a.S, b.S)
	default:
		return 0
	}
}

// Equal reports whether two values are identical. NULL equals NULL here
// (this is identity for storage/index purposes, not SQL ternary logic).
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Hash returns a 64-bit FNV-1a hash of the value, used for hash
// partitioning and hash joins. Equal values hash equally.
func (v Value) Hash() uint64 {
	h := fnv.New64a()
	var buf [9]byte
	buf[0] = byte(v.K)
	switch v.K {
	case KindInt:
		putUint64(buf[1:], uint64(v.I))
		h.Write(buf[:])
	case KindFloat:
		putUint64(buf[1:], math.Float64bits(v.F))
		h.Write(buf[:])
	case KindString:
		h.Write(buf[:1])
		h.Write([]byte(v.S))
	default:
		h.Write(buf[:1])
	}
	return h.Sum64()
}

func putUint64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v >> 56)
	b[1] = byte(v >> 48)
	b[2] = byte(v >> 40)
	b[3] = byte(v >> 32)
	b[4] = byte(v >> 24)
	b[5] = byte(v >> 16)
	b[6] = byte(v >> 8)
	b[7] = byte(v)
}
