package sql

import (
	"strings"
	"testing"
)

// FuzzParse asserts the parser never panics and that accepted statements
// survive a reparse of themselves (parse is deterministic). Run longer
// with: go test -fuzz=FuzzParse ./internal/sql
func FuzzParse(f *testing.F) {
	seeds := []string{
		`create table t (k bigint, v double) partition on k cluster on v`,
		`create index ix on t (k)`,
		`create global index gi on t (k)`,
		`create auxiliary relation ar for t partition on k columns (k) where v > 1.5`,
		`create view v as select a.x from a, b where a.x = b.y partition on a.x using auto`,
		`insert into t values (1, 2.5), (-3, null), ('x', 'it''s')`,
		`delete from t where k = 1 and v <> 2`,
		`update t set v = 0.0, k = 9 where k >= -1`,
		`select count(*), sum(v), min(k) from t where k < 10 group by k`,
		`begin transaction; insert into t values (1); commit;`,
		`select * from t; -- comment`,
		`select a.b.c from`,
		`'unterminated`,
		`((((`,
		`select`,
		`;;;;`,
		"select * from t where k = 9223372036854775807",
		"select * from t where v = 99999999999999999999999999999.5",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		// Must not panic; errors are fine.
		stmts, err := ParseScript(input)
		if err != nil {
			return
		}
		// Accepted input parses deterministically.
		again, err2 := ParseScript(input)
		if err2 != nil {
			t.Fatalf("reparse failed: %v", err2)
		}
		if len(stmts) != len(again) {
			t.Fatalf("reparse produced %d statements vs %d", len(again), len(stmts))
		}
	})
}

// TestParserRobustness drives Parse over adversarial inputs without the
// fuzz engine, so `go test` alone exercises them.
func TestParserRobustness(t *testing.T) {
	inputs := []string{
		"", " ", "\n\t", ";", "-- just a comment",
		strings.Repeat("(", 1000),
		strings.Repeat("select * from t;", 200),
		"select " + strings.Repeat("a,", 500) + "b from t",
		"insert into t values (" + strings.Repeat("1,", 300) + "2)",
		"create table t (" + strings.Repeat("c int,", 100) + "d int) partition on d",
		"\x00\x01\x02",
		"select * from t where k = 'весь мир'",
		"select * from t where k = ''''",
		"count(*)",
		"group by",
		"begin begin begin",
	}
	for _, in := range inputs {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("Parse(%.40q) panicked: %v", in, r)
				}
			}()
			_, _ = ParseScript(in)
		}()
	}
}
