package sql

import (
	"testing"
)

func TestSessionCommit(t *testing.T) {
	c := newDB(t)
	s := NewSession(c)
	if s.InTransaction() {
		t.Fatal("fresh session should not be in a transaction")
	}
	if _, err := s.ExecScript(`
		begin;
		insert into customer values (10, 1.0);
		insert into orders values (900, 10, 2.0);
		commit;
	`); err != nil {
		t.Fatal(err)
	}
	if s.InTransaction() {
		t.Error("commit should close the transaction")
	}
	r, err := s.Exec(`select count(*) from customer`)
	if err != nil || r.Rows[0][0].I != 4 {
		t.Fatalf("count = %v, %v", r.Rows, err)
	}
}

func TestSessionRollbackUndoesEverything(t *testing.T) {
	c := newDB(t)
	// A view so the rollback has to unwind maintenance too.
	if _, err := Exec(c, `
		create view jv1 as
		select c.custkey, o.orderkey from orders o, customer c
		where c.custkey = o.custkey
		partition on c.custkey using auxrel`); err != nil {
		t.Fatal(err)
	}
	before, _ := Exec(c, `select count(*) from jv1`)

	s := NewSession(c)
	if _, err := s.ExecScript(`
		begin transaction;
		insert into customer values (50, 1.0);
		insert into orders values (901, 50, 2.0), (902, 1, 3.0);
		delete from customer where custkey = 2;
		update orders set totalprice = 0.0 where orderkey = 100;
	`); err != nil {
		t.Fatal(err)
	}
	mid, _ := s.Exec(`select count(*) from jv1`)
	if mid.Rows[0][0].I == before.Rows[0][0].I {
		t.Fatal("statements inside the transaction should be visible")
	}
	if _, err := s.Exec(`rollback`); err != nil {
		t.Fatal(err)
	}
	after, _ := Exec(c, `select count(*) from jv1`)
	if after.Rows[0][0].I != before.Rows[0][0].I {
		t.Errorf("view count after rollback = %d, want %d", after.Rows[0][0].I, before.Rows[0][0].I)
	}
	if err := c.CheckViewConsistency("jv1"); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckAllStructures(); err != nil {
		t.Fatal(err)
	}
	// Base relations restored too.
	cnt, _ := Exec(c, `select count(*) from customer`)
	if cnt.Rows[0][0].I != 3 {
		t.Errorf("customer count after rollback = %v", cnt.Rows)
	}
}

func TestSessionStatementAtomicity(t *testing.T) {
	c := newDB(t)
	s := NewSession(c)
	if _, err := s.Exec(`begin`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(`insert into customer values (60, 1.0)`); err != nil {
		t.Fatal(err)
	}
	// A failing statement (arity) must not kill the transaction or leak
	// partial effects.
	if _, err := s.Exec(`insert into customer values (61)`); err == nil {
		t.Fatal("bad insert should fail")
	}
	if !s.InTransaction() {
		t.Fatal("failed statement should leave the transaction open")
	}
	if _, err := s.Exec(`commit`); err != nil {
		t.Fatal(err)
	}
	r, _ := Exec(c, `select count(*) from customer where custkey >= 60`)
	if r.Rows[0][0].I != 1 {
		t.Errorf("only the good statement should have committed: %v", r.Rows)
	}
}

func TestSessionErrors(t *testing.T) {
	c := newDB(t)
	s := NewSession(c)
	if _, err := s.Exec(`commit`); err == nil {
		t.Error("commit without begin should fail")
	}
	if _, err := s.Exec(`rollback`); err == nil {
		t.Error("rollback without begin should fail")
	}
	s.Exec(`begin`)
	if _, err := s.Exec(`begin`); err == nil {
		t.Error("nested begin should fail")
	}
	if _, err := s.Exec(`create table t2 (k bigint) partition on k`); err == nil {
		t.Error("DDL inside a transaction should fail")
	}
	// SELECT inside a transaction is fine.
	if _, err := s.Exec(`select count(*) from customer`); err != nil {
		t.Errorf("select in txn: %v", err)
	}
	if _, err := s.Exec(`rollback`); err != nil {
		t.Fatal(err)
	}
	// Auto-commit path still works through the session.
	if _, err := s.Exec(`insert into customer values (70, 1.0)`); err != nil {
		t.Fatal(err)
	}
	// Stateless Exec rejects transaction statements.
	if _, err := Exec(c, `begin`); err == nil {
		t.Error("stateless begin should fail")
	}
}

func TestSessionDMLErrorsInTxn(t *testing.T) {
	c := newDB(t)
	s := NewSession(c)
	s.Exec(`begin`)
	if _, err := s.Exec(`insert into ghost values (1)`); err == nil {
		t.Error("insert into missing table should fail")
	}
	if _, err := s.Exec(`delete from ghost`); err == nil {
		t.Error("delete from missing table should fail")
	}
	if _, err := s.Exec(`update ghost set x = 1`); err == nil {
		t.Error("update of missing table should fail")
	}
	if _, err := s.Exec(`update customer set ghost = 1`); err == nil {
		t.Error("update of missing column should fail")
	}
	if _, err := s.Exec(`delete from customer where custkey = 99999`); err != nil {
		t.Error("empty delete in txn should succeed")
	}
	if _, err := s.Exec(`update customer set acctbal = 1.0 where custkey = 99999`); err != nil {
		t.Error("empty update in txn should succeed")
	}
	s.Exec(`commit`)
}
