package sql

import (
	"fmt"

	"joinview/internal/cluster"
	"joinview/internal/expr"
	"joinview/internal/types"
)

// Session executes statements with transaction state: BEGIN opens a
// multi-statement transaction, COMMIT/ROLLBACK close it, and DML in
// between shares one undo scope — the paper's "begin transaction ...
// end transaction" brackets as SQL. Outside a transaction every statement
// auto-commits, identical to the package-level Exec.
type Session struct {
	c  *cluster.Cluster
	tx *cluster.Txn
}

// NewSession creates a session over the cluster.
func NewSession(c *cluster.Cluster) *Session {
	return &Session{c: c}
}

// InTransaction reports whether a transaction is open.
func (s *Session) InTransaction() bool {
	return s.tx != nil && s.tx.Active()
}

// Exec parses and executes one statement with the session's transaction
// state.
func (s *Session) Exec(input string) (*Result, error) {
	st, err := Parse(input)
	if err != nil {
		return nil, err
	}
	return s.ExecStmt(st)
}

// ExecScript executes a semicolon-separated script, stopping at the first
// error (an open transaction is left open for the caller to resolve).
func (s *Session) ExecScript(input string) ([]*Result, error) {
	stmts, err := ParseScript(input)
	if err != nil {
		return nil, err
	}
	out := make([]*Result, 0, len(stmts))
	for _, st := range stmts {
		r, err := s.ExecStmt(st)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// ExecStmt executes one parsed statement.
func (s *Session) ExecStmt(st Stmt) (*Result, error) {
	switch sm := st.(type) {
	case Begin:
		if s.InTransaction() {
			return nil, fmt.Errorf("sql: transaction already open")
		}
		s.tx = s.c.Begin()
		return &Result{Message: "transaction started"}, nil

	case Commit:
		if !s.InTransaction() {
			return nil, fmt.Errorf("sql: no open transaction")
		}
		err := s.tx.Commit()
		s.tx = nil
		if err != nil {
			return nil, err
		}
		return &Result{Message: "committed"}, nil

	case Rollback:
		if !s.InTransaction() {
			return nil, fmt.Errorf("sql: no open transaction")
		}
		err := s.tx.Rollback()
		s.tx = nil
		if err != nil {
			return nil, err
		}
		return &Result{Message: "rolled back"}, nil

	case Insert:
		if !s.InTransaction() {
			return ExecStmt(s.c, st)
		}
		tuples, err := bindInsert(s.c, sm)
		if err != nil {
			return nil, err
		}
		if err := s.tx.Insert(sm.Table, tuples); err != nil {
			return nil, err
		}
		return &Result{Count: len(tuples)}, nil

	case Delete:
		if !s.InTransaction() {
			return ExecStmt(s.c, st)
		}
		pred, err := bindPred(s.c, sm.Table, sm.Where)
		if err != nil {
			return nil, err
		}
		deleted, err := s.tx.Delete(sm.Table, pred)
		if err != nil {
			return nil, err
		}
		return &Result{Count: len(deleted)}, nil

	case Update:
		if !s.InTransaction() {
			return ExecStmt(s.c, st)
		}
		pred, err := bindPred(s.c, sm.Table, sm.Where)
		if err != nil {
			return nil, err
		}
		n, err := s.tx.Update(sm.Table, sm.Set, pred)
		if err != nil {
			return nil, err
		}
		return &Result{Count: n}, nil

	default:
		// DDL and SELECT run outside transaction scope (DDL is not
		// transactional; SELECT sees statement-level state either way).
		if s.InTransaction() {
			if _, ddl := st.(Select); !ddl {
				return nil, fmt.Errorf("sql: DDL is not allowed inside a transaction")
			}
		}
		return ExecStmt(s.c, st)
	}
}

// bindInsert converts parsed rows into validated tuples.
func bindInsert(c *cluster.Cluster, s Insert) ([]types.Tuple, error) {
	t, err := c.Catalog().Table(s.Table)
	if err != nil {
		return nil, err
	}
	tuples := make([]types.Tuple, len(s.Rows))
	for i, row := range s.Rows {
		if len(row) != t.Schema.Len() {
			return nil, fmt.Errorf("sql: insert row %d has %d values, table %q has %d columns",
				i, len(row), s.Table, t.Schema.Len())
		}
		tuples[i] = types.Tuple(row)
	}
	return tuples, nil
}

// bindPred converts parsed conditions into a predicate over the table.
func bindPred(c *cluster.Cluster, table string, conds []Condition) (expr.Expr, error) {
	t, err := c.Catalog().Table(table)
	if err != nil {
		return nil, err
	}
	return condsExpr(conds, t.Schema, table)
}
