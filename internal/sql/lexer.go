// Package sql implements the SQL subset the paper's experiments are
// written in: CREATE TABLE / INDEX / GLOBAL INDEX / AUXILIARY RELATION /
// VIEW, INSERT, DELETE, UPDATE and SELECT with equijoins. A thin engine
// binds parsed statements to cluster operations, so the examples and the
// shell can drive the system with the exact statements §2 and §3.3 print.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct // single punctuation: ( ) , . ; * =
	tokOp    // comparison operators: = <> < <= > >=
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lex splits input into tokens. Identifiers are lower-cased (the subset is
// case-insensitive); quoted strings keep their case.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-': // line comment
			for i < n && input[i] != '\n' {
				i++
			}
		case isIdentStart(rune(c)):
			start := i
			for i < n && isIdentPart(rune(input[i])) {
				i++
			}
			toks = append(toks, token{kind: tokIdent, text: strings.ToLower(input[start:i]), pos: start})
		case c >= '0' && c <= '9' || (c == '-' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9' && startsValue(toks)):
			start := i
			if c == '-' {
				i++
			}
			seenDot := false
			for i < n && (input[i] >= '0' && input[i] <= '9' || (input[i] == '.' && !seenDot)) {
				if input[i] == '.' {
					// A dot not followed by a digit is punctuation
					// (qualified name), not a decimal point.
					if i+1 >= n || input[i+1] < '0' || input[i+1] > '9' {
						break
					}
					seenDot = true
				}
				i++
			}
			toks = append(toks, token{kind: tokNumber, text: input[start:i], pos: start})
		case c == '\'':
			i++
			start := i
			var sb strings.Builder
			for {
				if i >= n {
					return nil, fmt.Errorf("sql: unterminated string at offset %d", start-1)
				}
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), pos: start})
		case c == '<':
			if i+1 < n && (input[i+1] == '=' || input[i+1] == '>') {
				toks = append(toks, token{kind: tokOp, text: input[i : i+2], pos: i})
				i += 2
			} else {
				toks = append(toks, token{kind: tokOp, text: "<", pos: i})
				i++
			}
		case c == '>':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, token{kind: tokOp, text: ">=", pos: i})
				i += 2
			} else {
				toks = append(toks, token{kind: tokOp, text: ">", pos: i})
				i++
			}
		case c == '=':
			toks = append(toks, token{kind: tokOp, text: "=", pos: i})
			i++
		case c == '(' || c == ')' || c == ',' || c == '.' || c == ';' || c == '*':
			toks = append(toks, token{kind: tokPunct, text: string(c), pos: i})
			i++
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: n})
	return toks, nil
}

// startsValue reports whether a '-' at this point begins a negative number
// (i.e. the previous token cannot end an expression).
func startsValue(toks []token) bool {
	if len(toks) == 0 {
		return true
	}
	last := toks[len(toks)-1]
	switch last.kind {
	case tokIdent, tokNumber, tokString:
		return false
	case tokPunct:
		return last.text != ")"
	default:
		return true
	}
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}
