package sql

import (
	"joinview/internal/types"
)

// Stmt is a parsed statement.
type Stmt interface{ stmt() }

// ColumnDef is one column of a CREATE TABLE.
type ColumnDef struct {
	Name string
	Kind types.Kind
}

// CreateTable is
//
//	CREATE TABLE name (col type, ...) PARTITION ON col [CLUSTER ON col]
type CreateTable struct {
	Name         string
	Cols         []ColumnDef
	PartitionCol string
	ClusterCol   string
}

// CreateIndex is
//
//	CREATE INDEX name ON table (col)
type CreateIndex struct {
	Name  string
	Table string
	Col   string
}

// CreateGlobalIndex is
//
//	CREATE GLOBAL INDEX name ON table (col)
type CreateGlobalIndex struct {
	Name  string
	Table string
	Col   string
}

// CreateAuxRel is
//
//	CREATE AUXILIARY RELATION name FOR table PARTITION ON col
//	    [COLUMNS (a, b, ...)] [WHERE pred]
type CreateAuxRel struct {
	Name         string
	Table        string
	PartitionCol string
	Cols         []string
	Where        *Condition
}

// SelectItem is one output column: Table may be empty (unqualified), Star
// marks `*`, and Agg ("count", "sum", "min", "max", "avg") marks an
// aggregate — count takes `*` (Col empty), the others take a column.
type SelectItem struct {
	Table, Col string
	Star       bool
	Agg        string
}

// Count reports whether the item is count(*); retained for readability at
// call sites.
func (s SelectItem) Count() bool { return s.Agg == "count" }

// TableRef is a FROM entry with an optional alias.
type TableRef struct {
	Name, Alias string
}

// Binding returns the name the query refers to the table by.
func (t TableRef) Binding() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// Operand is a column reference or a literal in a condition.
type Operand struct {
	IsCol      bool
	Table, Col string      // when IsCol
	Lit        types.Value // otherwise
}

// Condition is one comparison in a WHERE conjunction.
type Condition struct {
	Op   string // =, <>, <, <=, >, >=
	L, R Operand
}

// IsJoin reports whether the condition is an equijoin between two columns
// of different tables.
func (c Condition) IsJoin() bool {
	return c.Op == "=" && c.L.IsCol && c.R.IsCol && c.L.Table != c.R.Table
}

// Select is
//
//	SELECT items FROM tables [WHERE cond AND cond ...]
//	    [GROUP BY col, ...]
type Select struct {
	Items   []SelectItem
	Tables  []TableRef
	Where   []Condition
	GroupBy []SelectItem // column references only
}

// CreateView is
//
//	CREATE VIEW name AS select
//	    [PARTITION ON table.col] [USING naive|auxrel|globalindex|auto]
type CreateView struct {
	Name           string
	Query          Select
	PartitionTable string
	PartitionCol   string
	Strategy       string // empty = naive (paper default: no structures)
}

// Insert is
//
//	INSERT INTO table VALUES (v, ...), (...)
type Insert struct {
	Table string
	Rows  [][]types.Value
}

// Delete is
//
//	DELETE FROM table [WHERE cond AND ...]
type Delete struct {
	Table string
	Where []Condition
}

// Update is
//
//	UPDATE table SET col = lit [, ...] [WHERE cond AND ...]
type Update struct {
	Table string
	Set   map[string]types.Value
	Where []Condition
}

// Drop is `DROP TABLE|VIEW|AUXILIARY RELATION|GLOBAL INDEX name`.
type Drop struct {
	// Kind is "table", "view", "auxrel" or "globalindex".
	Kind string
	Name string
}

func (Drop) stmt() {}

// Begin is `BEGIN [TRANSACTION]`.
type Begin struct{}

// Commit is `COMMIT`.
type Commit struct{}

// Rollback is `ROLLBACK`.
type Rollback struct{}

func (Begin) stmt()             {}
func (Commit) stmt()            {}
func (Rollback) stmt()          {}
func (CreateTable) stmt()       {}
func (CreateIndex) stmt()       {}
func (CreateGlobalIndex) stmt() {}
func (CreateAuxRel) stmt()      {}
func (CreateView) stmt()        {}
func (Select) stmt()            {}
func (Insert) stmt()            {}
func (Delete) stmt()            {}
func (Update) stmt()            {}
