package sql

import (
	"testing"

	"joinview/internal/types"
)

func parseOne(t *testing.T, input string) Stmt {
	t.Helper()
	s, err := Parse(input)
	if err != nil {
		t.Fatalf("Parse(%q): %v", input, err)
	}
	return s
}

func TestParseCreateTable(t *testing.T) {
	s := parseOne(t, `CREATE TABLE orders (orderkey BIGINT, custkey BIGINT, totalprice DOUBLE)
		PARTITION ON orderkey CLUSTER ON custkey;`).(CreateTable)
	if s.Name != "orders" || len(s.Cols) != 3 {
		t.Fatalf("%+v", s)
	}
	if s.Cols[2].Kind != types.KindFloat || s.Cols[0].Name != "orderkey" {
		t.Errorf("cols = %+v", s.Cols)
	}
	if s.PartitionCol != "orderkey" || s.ClusterCol != "custkey" {
		t.Errorf("partition/cluster = %q/%q", s.PartitionCol, s.ClusterCol)
	}
	// Without CLUSTER ON.
	s2 := parseOne(t, `create table c (k int) partition on k`).(CreateTable)
	if s2.ClusterCol != "" {
		t.Error("cluster col should be empty")
	}
}

func TestParseCreateIndexes(t *testing.T) {
	ix := parseOne(t, `CREATE INDEX ix_c ON orders (custkey)`).(CreateIndex)
	if ix.Name != "ix_c" || ix.Table != "orders" || ix.Col != "custkey" {
		t.Errorf("%+v", ix)
	}
	gi := parseOne(t, `CREATE GLOBAL INDEX gi_c ON orders (custkey)`).(CreateGlobalIndex)
	if gi.Name != "gi_c" || gi.Table != "orders" || gi.Col != "custkey" {
		t.Errorf("%+v", gi)
	}
}

func TestParseCreateAuxRel(t *testing.T) {
	s := parseOne(t, `CREATE AUXILIARY RELATION orders_1 FOR orders PARTITION ON custkey
		COLUMNS (custkey, orderkey) WHERE totalprice > 100.5`).(CreateAuxRel)
	if s.Name != "orders_1" || s.Table != "orders" || s.PartitionCol != "custkey" {
		t.Fatalf("%+v", s)
	}
	if len(s.Cols) != 2 || s.Cols[1] != "orderkey" {
		t.Errorf("cols = %v", s.Cols)
	}
	if s.Where == nil || s.Where.Op != ">" || s.Where.R.Lit.F != 100.5 {
		t.Errorf("where = %+v", s.Where)
	}
	s2 := parseOne(t, `create auxiliary relation x for t partition on c`).(CreateAuxRel)
	if s2.Cols != nil || s2.Where != nil {
		t.Error("optional clauses should default to nil")
	}
}

// The paper's JV2 definition, verbatim modulo the partition clause.
func TestParseCreateViewPaperJV2(t *testing.T) {
	s := parseOne(t, `create view JV2 as
		select c.custkey, c.acctbal, o.orderkey, o.totalprice, l.discount, l.extendedprice
		from orders o, customer c, lineitem l
		where c.custkey = o.custkey and o.orderkey = l.orderkey
		partition on c.custkey using auxrel`).(CreateView)
	if s.Name != "jv2" || len(s.Query.Tables) != 3 || len(s.Query.Where) != 2 {
		t.Fatalf("%+v", s)
	}
	if s.Query.Tables[0].Name != "orders" || s.Query.Tables[0].Alias != "o" {
		t.Errorf("tables = %+v", s.Query.Tables)
	}
	if len(s.Query.Items) != 6 || s.Query.Items[4].Table != "l" || s.Query.Items[4].Col != "discount" {
		t.Errorf("items = %+v", s.Query.Items)
	}
	if !s.Query.Where[0].IsJoin() {
		t.Error("join predicate not recognized")
	}
	if s.PartitionTable != "c" || s.PartitionCol != "custkey" || s.Strategy != "auxrel" {
		t.Errorf("partition/strategy = %q.%q/%q", s.PartitionTable, s.PartitionCol, s.Strategy)
	}
}

func TestParseSelectStarAndLiterals(t *testing.T) {
	s := parseOne(t, `SELECT * FROM jv1 WHERE custkey >= 10 AND acctbal < -2.5`).(Select)
	if !s.Items[0].Star || len(s.Tables) != 1 || len(s.Where) != 2 {
		t.Fatalf("%+v", s)
	}
	if s.Where[1].R.Lit.F != -2.5 {
		t.Errorf("negative float literal = %+v", s.Where[1].R.Lit)
	}
	if s.Where[0].IsJoin() {
		t.Error("col-vs-literal must not be a join")
	}
}

func TestParseInsert(t *testing.T) {
	s := parseOne(t, `INSERT INTO customer VALUES (1, 10.5), (2, -3.25), (3, null)`).(Insert)
	if s.Table != "customer" || len(s.Rows) != 3 {
		t.Fatalf("%+v", s)
	}
	if s.Rows[0][0].I != 1 || s.Rows[1][1].F != -3.25 || !s.Rows[2][1].IsNull() {
		t.Errorf("rows = %+v", s.Rows)
	}
	str := parseOne(t, `insert into t values ('it''s', 'plain')`).(Insert)
	if str.Rows[0][0].S != "it's" || str.Rows[0][1].S != "plain" {
		t.Errorf("string literals = %+v", str.Rows)
	}
}

func TestParseDeleteUpdate(t *testing.T) {
	d := parseOne(t, `DELETE FROM orders WHERE custkey = 5 AND totalprice > 10`).(Delete)
	if d.Table != "orders" || len(d.Where) != 2 {
		t.Fatalf("%+v", d)
	}
	d2 := parseOne(t, `delete from orders`).(Delete)
	if d2.Where != nil {
		t.Error("unconditional delete should have nil where")
	}
	u := parseOne(t, `UPDATE customer SET acctbal = 0.0, custkey = 9 WHERE custkey = 5`).(Update)
	if u.Table != "customer" || len(u.Set) != 2 || u.Set["acctbal"].F != 0 || u.Set["custkey"].I != 9 {
		t.Fatalf("%+v", u)
	}
}

func TestParseScriptAndComments(t *testing.T) {
	stmts, err := ParseScript(`
		-- the paper's two test views
		create table a (k int) partition on k;
		insert into a values (1);
		select * from a;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("parsed %d statements", len(stmts))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`CREATE`,
		`CREATE TABLE t`,
		`CREATE TABLE t (k blob) partition on k`,
		`CREATE TABLE t (k int)`,
		`SELECT FROM t`,
		`SELECT * FROM`,
		`INSERT INTO t VALUES`,
		`INSERT INTO t VALUES (1`,
		`DELETE FROM t WHERE`,
		`UPDATE t SET`,
		`UPDATE t SET k = `,
		`select * from t where k ~ 2`,
		`select * from t; garbage`,
		`select 'unterminated from t`,
		`create view v as select * from a partition on k`, // unqualified partition col
	}
	for _, input := range bad {
		if _, err := Parse(input); err == nil {
			t.Errorf("Parse(%q) should fail", input)
		}
	}
	if _, err := ParseScript(`select * from t; create`); err == nil {
		t.Error("bad script should fail")
	}
	if _, err := ParseScript(`select ~`); err == nil {
		t.Error("lex error in script should fail")
	}
}

func TestLexerDetails(t *testing.T) {
	toks, err := lex(`a.b >= 1.5 <> 'x'`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	want := []tokenKind{tokIdent, tokPunct, tokIdent, tokOp, tokNumber, tokOp, tokString, tokEOF}
	if len(kinds) != len(want) {
		t.Fatalf("tokens = %d, want %d", len(kinds), len(want))
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d kind = %d, want %d", i, kinds[i], want[i])
		}
	}
	// Qualified name after number context: `1.x` must not eat the dot as
	// a decimal point when no digit follows.
	toks, err = lex(`v1.x`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].kind != tokIdent || toks[1].text != "." || toks[2].text != "x" {
		t.Errorf("qualified lex = %+v", toks)
	}
	// Case folding.
	toks, _ = lex(`SeLeCt`)
	if toks[0].text != "select" {
		t.Error("identifiers must lower-case")
	}
}
