package sql

import (
	"testing"

	"joinview/internal/types"
)

func TestAggregatesSingleGroup(t *testing.T) {
	c := newDB(t)
	r, err := Exec(c, `select count(*), sum(totalprice), min(totalprice), max(totalprice), avg(totalprice) from orders`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 {
		t.Fatalf("rows = %v", r.Rows)
	}
	row := r.Rows[0]
	// orders totalprice: 5, 6, 7, 8.
	if row[0].I != 4 || row[1].F != 26 || row[2].F != 5 || row[3].F != 8 || row[4].F != 6.5 {
		t.Errorf("aggregates = %v", row)
	}
	if r.Columns[1] != "sum(o.totalprice)" && r.Columns[1] != "sum(orders.totalprice)" && r.Columns[1] != "sum(totalprice)" {
		t.Errorf("columns = %v", r.Columns)
	}
}

func TestGroupBy(t *testing.T) {
	c := newDB(t)
	r, err := Exec(c, `select custkey, count(*), sum(totalprice) from orders group by custkey`)
	if err != nil {
		t.Fatal(err)
	}
	// custkeys: 1 (two orders, 5+6), 2 (one, 7), 9 (one, 8); sorted by key.
	if len(r.Rows) != 3 {
		t.Fatalf("groups = %v", r.Rows)
	}
	if r.Rows[0][0].I != 1 || r.Rows[0][1].I != 2 || r.Rows[0][2].F != 11 {
		t.Errorf("group 1 = %v", r.Rows[0])
	}
	if r.Rows[1][0].I != 2 || r.Rows[1][1].I != 1 {
		t.Errorf("group 2 = %v", r.Rows[1])
	}
	if r.Rows[2][0].I != 9 {
		t.Errorf("group 3 = %v", r.Rows[2])
	}
}

func TestGroupByOverJoin(t *testing.T) {
	c := newDB(t)
	r, err := Exec(c, `
		select c.custkey, count(*)
		from customer c, orders o
		where c.custkey = o.custkey
		group by c.custkey`)
	if err != nil {
		t.Fatal(err)
	}
	// customer 1 has 2 orders, customer 2 has 1; customer 3 joins nothing.
	if len(r.Rows) != 2 || r.Rows[0][1].I != 2 || r.Rows[1][1].I != 1 {
		t.Fatalf("join groups = %v", r.Rows)
	}
}

func TestAggregateEmptyInput(t *testing.T) {
	c := newDB(t)
	r, err := Exec(c, `select count(*), sum(totalprice) from orders where custkey = 12345`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 || r.Rows[0][0].I != 0 || !r.Rows[0][1].IsNull() {
		t.Fatalf("empty aggregate = %v", r.Rows)
	}
	// Empty group-by yields no groups.
	r, err = Exec(c, `select custkey, count(*) from orders where custkey = 12345 group by custkey`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 0 {
		t.Fatalf("empty grouped aggregate = %v", r.Rows)
	}
}

func TestAggregateNullSkipping(t *testing.T) {
	c := newDB(t)
	if _, err := Exec(c, `insert into orders values (500, 7, null)`); err != nil {
		t.Fatal(err)
	}
	r, err := Exec(c, `select count(*), sum(totalprice), avg(totalprice) from orders where custkey = 7`)
	if err != nil {
		t.Fatal(err)
	}
	// count(*) counts the row; sum/avg skip the NULL -> all NULL group.
	if r.Rows[0][0].I != 1 || !r.Rows[0][1].IsNull() || !r.Rows[0][2].IsNull() {
		t.Errorf("null handling = %v", r.Rows[0])
	}
}

func TestAggregateErrors(t *testing.T) {
	c := newDB(t)
	bad := []string{
		`select custkey, count(*) from orders`,                       // not grouped
		`select *, count(*) from orders`,                             // star with aggregate
		`select sum(ghost) from orders`,                              // unknown column
		`select count(*) from orders group by ghost`,                 // bad group col
		`select sum(comment) from parts`,                             // unknown table
		`select min(custkey), orderkey from orders group by custkey`, // orderkey not grouped
	}
	for _, q := range bad {
		if _, err := Exec(c, q); err == nil {
			t.Errorf("Exec(%q) should fail", q)
		}
	}
	// Non-numeric sum fails cleanly.
	if _, err := ExecScript(c, `
		create table s (k bigint, name varchar) partition on k;
		insert into s values (1, 'x');
	`); err != nil {
		t.Fatal(err)
	}
	if _, err := Exec(c, `select sum(name) from s`); err == nil {
		t.Error("sum over varchar should fail")
	}
	// min/max over strings is fine.
	r, err := Exec(c, `select min(name), max(name) from s`)
	if err != nil || r.Rows[0][0].S != "x" {
		t.Errorf("min/max over varchar = %v, %v", r.Rows, err)
	}
}

func TestGroupByIntAndFloatSum(t *testing.T) {
	c := newDB(t)
	if _, err := ExecScript(c, `
		create table m (k bigint, iv bigint, fv double) partition on k;
		insert into m values (1, 2, 0.5), (2, 3, 0.25), (3, -1, 1.0);
	`); err != nil {
		t.Fatal(err)
	}
	r, err := Exec(c, `select sum(iv), sum(fv) from m`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].K != types.KindInt || r.Rows[0][0].I != 4 {
		t.Errorf("int sum = %v", r.Rows[0][0])
	}
	if r.Rows[0][1].K != types.KindFloat || r.Rows[0][1].F != 1.75 {
		t.Errorf("float sum = %v", r.Rows[0][1])
	}
}
