package sql

import (
	"fmt"
	"strings"

	"joinview/internal/catalog"
	"joinview/internal/cluster"
	"joinview/internal/exec"
	"joinview/internal/expr"
	"joinview/internal/types"
)

// Result is the outcome of executing one statement.
type Result struct {
	// Columns and Rows are set for SELECT.
	Columns []string
	Rows    []types.Tuple
	// Count is the affected-row count for INSERT/DELETE/UPDATE.
	Count int
	// Message summarizes DDL outcomes.
	Message string
}

// Exec parses and executes one statement against the cluster.
func Exec(c *cluster.Cluster, input string) (*Result, error) {
	st, err := Parse(input)
	if err != nil {
		return nil, err
	}
	return ExecStmt(c, st)
}

// ExecScript parses and executes a semicolon-separated script, stopping at
// the first error.
func ExecScript(c *cluster.Cluster, input string) ([]*Result, error) {
	stmts, err := ParseScript(input)
	if err != nil {
		return nil, err
	}
	out := make([]*Result, 0, len(stmts))
	for _, st := range stmts {
		r, err := ExecStmt(c, st)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// ExecStmt executes one parsed statement.
func ExecStmt(c *cluster.Cluster, st Stmt) (*Result, error) {
	switch s := st.(type) {
	case CreateTable:
		cols := make([]types.Column, len(s.Cols))
		for i, cd := range s.Cols {
			cols[i] = types.Column{Name: cd.Name, Kind: cd.Kind}
		}
		t := &catalog.Table{
			Name:         s.Name,
			Schema:       types.NewSchema(cols...),
			PartitionCol: s.PartitionCol,
			ClusterCol:   s.ClusterCol,
		}
		if err := c.CreateTable(t); err != nil {
			return nil, err
		}
		return &Result{Message: "table " + s.Name + " created"}, nil

	case CreateIndex:
		if err := c.CreateIndex(s.Table, s.Name, s.Col); err != nil {
			return nil, err
		}
		return &Result{Message: "index " + s.Name + " created"}, nil

	case CreateGlobalIndex:
		gi := &catalog.GlobalIndex{Name: s.Name, Table: s.Table, Col: s.Col}
		if err := c.CreateGlobalIndex(gi); err != nil {
			return nil, err
		}
		kind := "distributed non-clustered"
		if gi.DistClustered {
			kind = "distributed clustered"
		}
		return &Result{Message: "global index " + s.Name + " created (" + kind + ")"}, nil

	case CreateAuxRel:
		t, err := c.Catalog().Table(s.Table)
		if err != nil {
			return nil, err
		}
		var where expr.Expr
		if s.Where != nil {
			where, err = condExpr(*s.Where, t.Schema, s.Table)
			if err != nil {
				return nil, err
			}
		}
		ar := &catalog.AuxRel{
			Name:         s.Name,
			Table:        s.Table,
			PartitionCol: s.PartitionCol,
			Cols:         s.Cols,
			Where:        where,
		}
		if err := c.CreateAuxRel(ar); err != nil {
			return nil, err
		}
		return &Result{Message: "auxiliary relation " + s.Name + " created"}, nil

	case CreateView:
		v, err := bindView(c, s)
		if err != nil {
			return nil, err
		}
		if err := c.CreateView(v); err != nil {
			return nil, err
		}
		return &Result{Message: fmt.Sprintf("view %s created (%s)", v.Name, v.Strategy)}, nil

	case Insert:
		t, err := c.Catalog().Table(s.Table)
		if err != nil {
			return nil, err
		}
		tuples := make([]types.Tuple, len(s.Rows))
		for i, row := range s.Rows {
			if len(row) != t.Schema.Len() {
				return nil, fmt.Errorf("sql: insert row %d has %d values, table %q has %d columns",
					i, len(row), s.Table, t.Schema.Len())
			}
			tuples[i] = types.Tuple(row)
		}
		if err := c.Insert(s.Table, tuples); err != nil {
			return nil, err
		}
		return &Result{Count: len(tuples)}, nil

	case Delete:
		t, err := c.Catalog().Table(s.Table)
		if err != nil {
			return nil, err
		}
		pred, err := condsExpr(s.Where, t.Schema, s.Table)
		if err != nil {
			return nil, err
		}
		deleted, err := c.Delete(s.Table, pred)
		if err != nil {
			return nil, err
		}
		return &Result{Count: len(deleted)}, nil

	case Update:
		t, err := c.Catalog().Table(s.Table)
		if err != nil {
			return nil, err
		}
		pred, err := condsExpr(s.Where, t.Schema, s.Table)
		if err != nil {
			return nil, err
		}
		n, err := c.Update(s.Table, s.Set, pred)
		if err != nil {
			return nil, err
		}
		return &Result{Count: n}, nil

	case Drop:
		var err error
		switch s.Kind {
		case "table":
			err = c.DropTable(s.Name)
		case "view":
			err = c.DropView(s.Name)
		case "auxrel":
			err = c.DropAuxRel(s.Name)
		case "globalindex":
			err = c.DropGlobalIndex(s.Name)
		default:
			err = fmt.Errorf("sql: unknown drop kind %q", s.Kind)
		}
		if err != nil {
			return nil, err
		}
		return &Result{Message: s.Kind + " " + s.Name + " dropped"}, nil

	case Select:
		return execSelect(c, s)

	case Begin, Commit, Rollback:
		return nil, fmt.Errorf("sql: transaction statements need a Session (sql.NewSession)")

	default:
		return nil, fmt.Errorf("sql: unsupported statement %T", st)
	}
}

// bindView turns a parsed CREATE VIEW into a catalog view: aliases resolve
// to table names, equijoin conditions become join predicates, and any
// non-join condition is rejected (the paper's views are pure equijoins).
func bindView(c *cluster.Cluster, s CreateView) (*catalog.View, error) {
	alias := map[string]string{} // binding -> real table
	v := &catalog.View{Name: s.Name}
	for _, ref := range s.Query.Tables {
		if _, err := c.Catalog().Table(ref.Name); err != nil {
			return nil, err
		}
		if _, dup := alias[ref.Binding()]; dup {
			return nil, fmt.Errorf("sql: duplicate table binding %q in view %q", ref.Binding(), s.Name)
		}
		alias[ref.Binding()] = ref.Name
		v.Tables = append(v.Tables, ref.Name)
	}
	resolve := func(binding string) (string, error) {
		if t, ok := alias[binding]; ok {
			return t, nil
		}
		return "", fmt.Errorf("sql: view %q references unknown table %q", s.Name, binding)
	}
	for _, cond := range s.Query.Where {
		if !cond.IsJoin() {
			return nil, fmt.Errorf("sql: view %q: only equijoin predicates are supported in view definitions (got %s %s)", s.Name, cond.Op, "non-join term")
		}
		lt, err := resolveOperandTable(cond.L, resolve)
		if err != nil {
			return nil, err
		}
		rt, err := resolveOperandTable(cond.R, resolve)
		if err != nil {
			return nil, err
		}
		v.Joins = append(v.Joins, catalog.JoinPred{
			Left: lt, LeftCol: cond.L.Col,
			Right: rt, RightCol: cond.R.Col,
		})
	}
	resolveItem := func(table, col string) (catalog.OutCol, error) {
		if table == "" {
			t, err := uniqueTableFor(c, v.Tables, col)
			if err != nil {
				return catalog.OutCol{}, fmt.Errorf("sql: view %q: %w", s.Name, err)
			}
			return catalog.OutCol{Table: t, Col: col}, nil
		}
		t, err := resolve(table)
		if err != nil {
			return catalog.OutCol{}, err
		}
		return catalog.OutCol{Table: t, Col: col}, nil
	}
	if aggregateView(s.Query) {
		// Aggregate join view: GROUP BY columns become the view key, the
		// aggregate items its measures.
		for _, g := range s.Query.GroupBy {
			oc, err := resolveItem(g.Table, g.Col)
			if err != nil {
				return nil, err
			}
			v.Out = append(v.Out, oc)
		}
		for _, item := range s.Query.Items {
			switch {
			case item.Star:
				return nil, fmt.Errorf("sql: view %q: * cannot appear in an aggregate view", s.Name)
			case item.Agg == "count":
				v.Aggs = append(v.Aggs, catalog.AggSpec{Func: "count"})
			case item.Agg != "":
				oc, err := resolveItem(item.Table, item.Col)
				if err != nil {
					return nil, err
				}
				v.Aggs = append(v.Aggs, catalog.AggSpec{Func: item.Agg, Table: oc.Table, Col: oc.Col})
			default:
				oc, err := resolveItem(item.Table, item.Col)
				if err != nil {
					return nil, err
				}
				inGroup := false
				for _, have := range v.Out {
					if have == oc {
						inGroup = true
						break
					}
				}
				if !inGroup {
					return nil, fmt.Errorf("sql: view %q: column %s.%s must appear in GROUP BY or an aggregate", s.Name, oc.Table, oc.Col)
				}
			}
		}
		if len(v.Aggs) == 0 {
			return nil, fmt.Errorf("sql: view %q: GROUP BY without aggregates", s.Name)
		}
	} else {
		for _, item := range s.Query.Items {
			if item.Star {
				continue // empty Out means SELECT * in the catalog
			}
			oc, err := resolveItem(item.Table, item.Col)
			if err != nil {
				return nil, err
			}
			v.Out = append(v.Out, oc)
		}
	}
	if s.PartitionTable != "" {
		t, err := resolve(s.PartitionTable)
		if err != nil {
			return nil, err
		}
		v.PartitionTable, v.PartitionCol = t, s.PartitionCol
	}
	if s.Strategy != "" {
		strat, err := catalog.ParseStrategy(s.Strategy)
		if err != nil {
			return nil, err
		}
		v.Strategy = strat
	}
	return v, nil
}

func resolveOperandTable(o Operand, resolve func(string) (string, error)) (string, error) {
	if o.Table == "" {
		return "", fmt.Errorf("sql: join columns in view definitions must be qualified (got %q)", o.Col)
	}
	return resolve(o.Table)
}

// aggregateView reports whether the parsed view query defines an
// aggregate join view.
func aggregateView(q Select) bool {
	if len(q.GroupBy) > 0 {
		return true
	}
	for _, item := range q.Items {
		if item.Agg != "" {
			return true
		}
	}
	return false
}

// uniqueTableFor finds the single table among names containing column col.
func uniqueTableFor(c *cluster.Cluster, names []string, col string) (string, error) {
	var found string
	for _, n := range names {
		t, err := c.Catalog().Table(n)
		if err != nil {
			return "", err
		}
		if t.Schema.ColIndex(col) >= 0 {
			if found != "" {
				return "", fmt.Errorf("column %q is ambiguous between %q and %q", col, found, n)
			}
			found = n
		}
	}
	if found == "" {
		return "", fmt.Errorf("column %q not found in any joined table", col)
	}
	return found, nil
}

// condExpr converts a single parsed condition into an expression over the
// given schema; operand tables must match binding (or be empty).
func condExpr(c Condition, schema *types.Schema, binding string) (expr.Expr, error) {
	l, err := operandExpr(c.L, schema, binding)
	if err != nil {
		return nil, err
	}
	r, err := operandExpr(c.R, schema, binding)
	if err != nil {
		return nil, err
	}
	op, err := cmpOp(c.Op)
	if err != nil {
		return nil, err
	}
	return expr.Cmp{Op: op, L: l, R: r}, nil
}

// condsExpr conjoins parsed conditions over one schema; nil input means
// TRUE.
func condsExpr(conds []Condition, schema *types.Schema, binding string) (expr.Expr, error) {
	if len(conds) == 0 {
		return expr.True, nil
	}
	terms := make([]expr.Expr, 0, len(conds))
	for _, c := range conds {
		e, err := condExpr(c, schema, binding)
		if err != nil {
			return nil, err
		}
		terms = append(terms, e)
	}
	if len(terms) == 1 {
		return terms[0], nil
	}
	return expr.And{Terms: terms}, nil
}

func operandExpr(o Operand, schema *types.Schema, binding string) (expr.Expr, error) {
	if !o.IsCol {
		return expr.Const{V: o.Lit}, nil
	}
	if o.Table != "" && o.Table != binding {
		return nil, fmt.Errorf("sql: column %s.%s does not belong to %q", o.Table, o.Col, binding)
	}
	if schema.ColIndex(o.Col) < 0 {
		return nil, fmt.Errorf("sql: unknown column %q", o.Col)
	}
	return expr.Col{Name: o.Col}, nil
}

func cmpOp(op string) (expr.CmpOp, error) {
	switch op {
	case "=":
		return expr.EQ, nil
	case "<>":
		return expr.NE, nil
	case "<":
		return expr.LT, nil
	case "<=":
		return expr.LE, nil
	case ">":
		return expr.GT, nil
	case ">=":
		return expr.GE, nil
	default:
		return 0, fmt.Errorf("sql: unknown operator %q", op)
	}
}

// execSelect evaluates a SELECT at the coordinator: gather each relation,
// chain hash joins over the equijoin conditions, filter the residual
// predicates, project. It reads base tables, auxiliary relations and
// materialized views (convenience path — not part of the metered study).
func execSelect(c *cluster.Cluster, s Select) (*Result, error) {
	if len(s.Tables) == 0 {
		return nil, fmt.Errorf("sql: select needs a FROM clause")
	}
	type rel struct {
		binding string
		schema  *types.Schema
		rows    []types.Tuple
	}
	rels := make([]rel, 0, len(s.Tables))
	for _, ref := range s.Tables {
		schema, err := relationSchema(c, ref.Name)
		if err != nil {
			return nil, err
		}
		rows, err := c.TableRows(ref.Name)
		if err != nil {
			return nil, err
		}
		rels = append(rels, rel{binding: ref.Binding(), schema: schema.Prefixed(ref.Binding()), rows: rows})
	}

	cur := rels[0].rows
	curSchema := rels[0].schema
	joined := map[int]bool{0: true}
	usedCond := make([]bool, len(s.Where))
	for len(joined) < len(rels) {
		progress := false
		for ci, cond := range s.Where {
			if usedCond[ci] || !cond.IsJoin() {
				continue
			}
			lName := cond.L.Table + "." + cond.L.Col
			rName := cond.R.Table + "." + cond.R.Col
			for ri, r := range rels {
				if joined[ri] {
					continue
				}
				var curCol, nextCol string
				switch {
				case curSchema.ColIndex(lName) >= 0 && r.schema.ColIndex(rName) >= 0:
					curCol, nextCol = lName, rName
				case curSchema.ColIndex(rName) >= 0 && r.schema.ColIndex(lName) >= 0:
					curCol, nextCol = rName, lName
				default:
					continue
				}
				var err error
				cur, err = exec.HashJoin(cur, curSchema.ColIndex(curCol), r.rows, r.schema.ColIndex(nextCol))
				if err != nil {
					return nil, err
				}
				curSchema = curSchema.Concat(r.schema)
				joined[ri] = true
				usedCond[ci] = true
				progress = true
				break
			}
		}
		if !progress {
			return nil, fmt.Errorf("sql: cannot join all FROM tables with equijoins (cartesian products unsupported)")
		}
	}

	// Residual predicates (non-join, or extra join conditions).
	var filtered []types.Tuple
	for _, t := range cur {
		keep := true
		for ci, cond := range s.Where {
			if usedCond[ci] {
				continue
			}
			e, err := selectCondExpr(cond, curSchema)
			if err != nil {
				return nil, err
			}
			ok, err := expr.Matches(e, curSchema, t)
			if err != nil {
				return nil, err
			}
			if !ok {
				keep = false
				break
			}
		}
		if keep {
			filtered = append(filtered, t)
		}
	}

	// Aggregation path: count/sum/min/max/avg with optional GROUP BY.
	if hasAggregate(s) {
		return execAggregate(s, curSchema, filtered)
	}

	// Projection.
	var names []string
	for _, item := range s.Items {
		if item.Star {
			names = append(names, curSchema.Names()...)
			continue
		}
		name, err := resolveSelectCol(curSchema, item.Table, item.Col)
		if err != nil {
			return nil, err
		}
		names = append(names, name)
	}
	proj := expr.NewProjection(names)
	outRows := make([]types.Tuple, 0, len(filtered))
	for _, t := range filtered {
		p, err := proj.Apply(curSchema, t)
		if err != nil {
			return nil, err
		}
		outRows = append(outRows, p.Clone())
	}
	return &Result{Columns: names, Rows: outRows}, nil
}

// relationSchema finds the schema of a base table, auxiliary relation or
// view by name.
func relationSchema(c *cluster.Cluster, name string) (*types.Schema, error) {
	if t, err := c.Catalog().Table(name); err == nil {
		return t.Schema, nil
	}
	if a, err := c.Catalog().AuxRel(name); err == nil {
		return a.Schema, nil
	}
	if v, err := c.Catalog().View(name); err == nil {
		return v.Schema, nil
	}
	return nil, fmt.Errorf("sql: no table, auxiliary relation or view named %q", name)
}

// selectCondExpr converts a residual condition over the joined schema.
func selectCondExpr(c Condition, schema *types.Schema) (expr.Expr, error) {
	mk := func(o Operand) (expr.Expr, error) {
		if !o.IsCol {
			return expr.Const{V: o.Lit}, nil
		}
		name, err := resolveSelectCol(schema, o.Table, o.Col)
		if err != nil {
			return nil, err
		}
		return expr.Col{Name: name}, nil
	}
	l, err := mk(c.L)
	if err != nil {
		return nil, err
	}
	r, err := mk(c.R)
	if err != nil {
		return nil, err
	}
	op, err := cmpOp(c.Op)
	if err != nil {
		return nil, err
	}
	return expr.Cmp{Op: op, L: l, R: r}, nil
}

// resolveSelectCol maps a (table, col) reference onto the joined schema's
// qualified names: exact "table.col" when qualified, otherwise a unique
// ".col" suffix match.
func resolveSelectCol(schema *types.Schema, table, col string) (string, error) {
	if table != "" {
		name := table + "." + col
		if schema.ColIndex(name) >= 0 {
			return name, nil
		}
		return "", fmt.Errorf("sql: unknown column %s.%s", table, col)
	}
	if schema.ColIndex(col) >= 0 {
		return col, nil
	}
	var found string
	for _, n := range schema.Names() {
		if strings.HasSuffix(n, "."+col) {
			if found != "" {
				return "", fmt.Errorf("sql: column %q is ambiguous (%s vs %s)", col, found, n)
			}
			found = n
		}
	}
	if found == "" {
		return "", fmt.Errorf("sql: unknown column %q", col)
	}
	return found, nil
}
