package sql

import (
	"fmt"
	"strconv"
	"strings"

	"joinview/internal/types"
)

// Parse parses one statement (an optional trailing semicolon is allowed).
func Parse(input string) (Stmt, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: input}
	s, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.accept(tokPunct, ";")
	if !p.at(tokEOF, "") {
		return nil, p.errf("trailing input starting at %q", p.cur().text)
	}
	return s, nil
}

// ParseScript parses a semicolon-separated sequence of statements.
func ParseScript(input string) ([]Stmt, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: input}
	var out []Stmt
	for {
		for p.accept(tokPunct, ";") {
		}
		if p.at(tokEOF, "") {
			return out, nil
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
		if !p.accept(tokPunct, ";") && !p.at(tokEOF, "") {
			return nil, p.errf("expected ';' between statements, got %q", p.cur().text)
		}
	}
}

type parser struct {
	toks []token
	pos  int
	src  string
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if !p.at(kind, text) {
		want := text
		if want == "" {
			want = fmt.Sprintf("token kind %d", kind)
		}
		return token{}, p.errf("expected %q, got %q", want, p.cur().text)
	}
	return p.next(), nil
}

func (p *parser) keyword(words ...string) bool {
	save := p.pos
	for _, w := range words {
		if !p.accept(tokIdent, w) {
			p.pos = save
			return false
		}
	}
	return true
}

func (p *parser) expectKeyword(words ...string) error {
	if !p.keyword(words...) {
		return p.errf("expected %q, got %q", strings.Join(words, " "), p.cur().text)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t, err := p.expect(tokIdent, "")
	if err != nil {
		return "", err
	}
	return t.text, nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: at offset %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) statement() (Stmt, error) {
	switch {
	case p.keyword("create", "table"):
		return p.createTable()
	case p.keyword("create", "global", "index"):
		return p.createGlobalIndex()
	case p.keyword("create", "index"):
		return p.createIndex()
	case p.keyword("create", "auxiliary", "relation"):
		return p.createAuxRel()
	case p.keyword("create", "view"):
		return p.createView()
	case p.keyword("insert", "into"):
		return p.insert()
	case p.keyword("delete", "from"):
		return p.delete()
	case p.keyword("update"):
		return p.update()
	case p.keyword("select"):
		return p.selectStmt()
	case p.keyword("drop", "table"):
		return p.drop("table")
	case p.keyword("drop", "view"):
		return p.drop("view")
	case p.keyword("drop", "auxiliary", "relation"):
		return p.drop("auxrel")
	case p.keyword("drop", "global", "index"):
		return p.drop("globalindex")
	case p.keyword("begin"):
		p.keyword("transaction") // optional
		return Begin{}, nil
	case p.keyword("commit"):
		return Commit{}, nil
	case p.keyword("rollback"):
		return Rollback{}, nil
	default:
		return nil, p.errf("unknown statement starting with %q", p.cur().text)
	}
}

func (p *parser) drop(kind string) (Stmt, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	return Drop{Kind: kind, Name: name}, nil
}

func (p *parser) createTable() (Stmt, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	st := CreateTable{Name: name}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		typeName, err := p.ident()
		if err != nil {
			return nil, err
		}
		kind, err := types.KindFromName(typeName)
		if err != nil {
			return nil, p.errf("column %q: %v", col, err)
		}
		st.Cols = append(st.Cols, ColumnDef{Name: col, Kind: kind})
		if p.accept(tokPunct, ",") {
			continue
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		break
	}
	if err := p.expectKeyword("partition", "on"); err != nil {
		return nil, err
	}
	if st.PartitionCol, err = p.ident(); err != nil {
		return nil, err
	}
	if p.keyword("cluster", "on") {
		if st.ClusterCol, err = p.ident(); err != nil {
			return nil, err
		}
	}
	return st, nil
}

func (p *parser) createIndex() (Stmt, error) {
	st := CreateIndex{}
	var err error
	if st.Name, err = p.ident(); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("on"); err != nil {
		return nil, err
	}
	if st.Table, err = p.ident(); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	if st.Col, err = p.ident(); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) createGlobalIndex() (Stmt, error) {
	ix, err := p.createIndex()
	if err != nil {
		return nil, err
	}
	c := ix.(CreateIndex)
	return CreateGlobalIndex{Name: c.Name, Table: c.Table, Col: c.Col}, nil
}

func (p *parser) createAuxRel() (Stmt, error) {
	st := CreateAuxRel{}
	var err error
	if st.Name, err = p.ident(); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("for"); err != nil {
		return nil, err
	}
	if st.Table, err = p.ident(); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("partition", "on"); err != nil {
		return nil, err
	}
	if st.PartitionCol, err = p.ident(); err != nil {
		return nil, err
	}
	if p.keyword("columns") {
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			st.Cols = append(st.Cols, col)
			if p.accept(tokPunct, ",") {
				continue
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			break
		}
	}
	if p.keyword("where") {
		cond, err := p.condition()
		if err != nil {
			return nil, err
		}
		st.Where = &cond
	}
	return st, nil
}

func (p *parser) createView() (Stmt, error) {
	st := CreateView{}
	var err error
	if st.Name, err = p.ident(); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("as", "select"); err != nil {
		return nil, err
	}
	q, err := p.selectStmt()
	if err != nil {
		return nil, err
	}
	st.Query = q.(Select)
	if p.keyword("partition", "on") {
		tbl, col, err := p.qualifiedName()
		if err != nil {
			return nil, err
		}
		if tbl == "" {
			return nil, p.errf("view partition column must be qualified (table.col)")
		}
		st.PartitionTable, st.PartitionCol = tbl, col
	}
	if p.keyword("using") {
		if st.Strategy, err = p.ident(); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// selectStmt parses the body after the SELECT keyword has been consumed.
func (p *parser) selectStmt() (Stmt, error) {
	st := Select{}
	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		st.Items = append(st.Items, item)
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	for {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		ref := TableRef{Name: name}
		// Optional alias: a bare identifier that is not a clause keyword.
		if p.at(tokIdent, "") && !isClauseKeyword(p.cur().text) {
			ref.Alias, _ = p.ident()
		}
		st.Tables = append(st.Tables, ref)
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	if p.keyword("where") {
		for {
			cond, err := p.condition()
			if err != nil {
				return nil, err
			}
			st.Where = append(st.Where, cond)
			if !p.keyword("and") {
				break
			}
		}
	}
	if p.keyword("group", "by") {
		for {
			tbl, col, err := p.qualifiedName()
			if err != nil {
				return nil, err
			}
			st.GroupBy = append(st.GroupBy, SelectItem{Table: tbl, Col: col})
			if !p.accept(tokPunct, ",") {
				break
			}
		}
	}
	return st, nil
}

func isClauseKeyword(s string) bool {
	switch s {
	case "where", "partition", "using", "and", "from", "order", "group":
		return true
	}
	return false
}

func (p *parser) selectItem() (SelectItem, error) {
	if p.accept(tokPunct, "*") {
		return SelectItem{Star: true}, nil
	}
	if t := p.cur(); t.kind == tokIdent && isAggName(t.text) &&
		p.toks[p.pos+1].kind == tokPunct && p.toks[p.pos+1].text == "(" {
		agg := t.text
		p.pos += 2
		if agg == "count" {
			if _, err := p.expect(tokPunct, "*"); err != nil {
				return SelectItem{}, err
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return SelectItem{}, err
			}
			return SelectItem{Agg: "count"}, nil
		}
		tbl, col, err := p.qualifiedName()
		if err != nil {
			return SelectItem{}, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return SelectItem{}, err
		}
		return SelectItem{Agg: agg, Table: tbl, Col: col}, nil
	}
	tbl, col, err := p.qualifiedName()
	if err != nil {
		return SelectItem{}, err
	}
	return SelectItem{Table: tbl, Col: col}, nil
}

func isAggName(s string) bool {
	switch s {
	case "count", "sum", "min", "max", "avg":
		return true
	}
	return false
}

// qualifiedName parses `ident` or `ident.ident`, returning (table, col)
// with table empty for the unqualified form.
func (p *parser) qualifiedName() (string, string, error) {
	first, err := p.ident()
	if err != nil {
		return "", "", err
	}
	if p.accept(tokPunct, ".") {
		second, err := p.ident()
		if err != nil {
			return "", "", err
		}
		return first, second, nil
	}
	return "", first, nil
}

func (p *parser) condition() (Condition, error) {
	l, err := p.operand()
	if err != nil {
		return Condition{}, err
	}
	op, err := p.expect(tokOp, "")
	if err != nil {
		return Condition{}, err
	}
	r, err := p.operand()
	if err != nil {
		return Condition{}, err
	}
	return Condition{Op: op.text, L: l, R: r}, nil
}

func (p *parser) operand() (Operand, error) {
	switch {
	case p.at(tokIdent, ""):
		tbl, col, err := p.qualifiedName()
		if err != nil {
			return Operand{}, err
		}
		return Operand{IsCol: true, Table: tbl, Col: col}, nil
	case p.at(tokNumber, ""), p.at(tokString, ""):
		v, err := p.literal()
		if err != nil {
			return Operand{}, err
		}
		return Operand{Lit: v}, nil
	default:
		return Operand{}, p.errf("expected column or literal, got %q", p.cur().text)
	}
}

func (p *parser) literal() (types.Value, error) {
	t := p.next()
	switch t.kind {
	case tokNumber:
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return types.Value{}, p.errf("bad number %q", t.text)
			}
			return types.Float(f), nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return types.Value{}, p.errf("bad integer %q", t.text)
		}
		return types.Int(i), nil
	case tokString:
		return types.String(t.text), nil
	case tokIdent:
		if t.text == "null" {
			return types.Null(), nil
		}
	}
	return types.Value{}, fmt.Errorf("sql: at offset %d: expected literal, got %q", t.pos, t.text)
}

func (p *parser) insert() (Stmt, error) {
	st := Insert{}
	var err error
	if st.Table, err = p.ident(); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("values"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		var row []types.Value
		for {
			v, err := p.literal()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			if p.accept(tokPunct, ",") {
				continue
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			break
		}
		st.Rows = append(st.Rows, row)
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	return st, nil
}

func (p *parser) delete() (Stmt, error) {
	st := Delete{}
	var err error
	if st.Table, err = p.ident(); err != nil {
		return nil, err
	}
	if p.keyword("where") {
		for {
			cond, err := p.condition()
			if err != nil {
				return nil, err
			}
			st.Where = append(st.Where, cond)
			if !p.keyword("and") {
				break
			}
		}
	}
	return st, nil
}

func (p *parser) update() (Stmt, error) {
	st := Update{Set: map[string]types.Value{}}
	var err error
	if st.Table, err = p.ident(); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("set"); err != nil {
		return nil, err
	}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, "="); err != nil {
			return nil, err
		}
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		st.Set[col] = v
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	if p.keyword("where") {
		for {
			cond, err := p.condition()
			if err != nil {
				return nil, err
			}
			st.Where = append(st.Where, cond)
			if !p.keyword("and") {
				break
			}
		}
	}
	return st, nil
}
