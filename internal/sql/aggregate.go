package sql

import (
	"fmt"
	"sort"

	"joinview/internal/types"
)

// execAggregate evaluates an aggregated SELECT over the filtered, joined
// rows: count(*), sum, min, max, avg with an optional GROUP BY. Every
// non-aggregate select item must appear in the GROUP BY list (no implicit
// grouping).
func execAggregate(s Select, schema *types.Schema, rows []types.Tuple) (*Result, error) {
	// Resolve GROUP BY columns.
	groupIdx := make([]int, 0, len(s.GroupBy))
	groupNames := make([]string, 0, len(s.GroupBy))
	for _, g := range s.GroupBy {
		name, err := resolveSelectCol(schema, g.Table, g.Col)
		if err != nil {
			return nil, fmt.Errorf("sql: group by: %w", err)
		}
		groupIdx = append(groupIdx, schema.MustColIndex(name))
		groupNames = append(groupNames, name)
	}
	inGroup := func(name string) bool {
		for _, g := range groupNames {
			if g == name {
				return true
			}
		}
		return false
	}

	// Resolve select items.
	type outCol struct {
		label string
		agg   string // "" for a plain group-by column
		idx   int    // source column for non-count aggregates and plain columns
	}
	var outs []outCol
	for _, item := range s.Items {
		switch {
		case item.Star:
			return nil, fmt.Errorf("sql: * cannot be combined with aggregates")
		case item.Agg == "count":
			outs = append(outs, outCol{label: "count", agg: "count", idx: -1})
		case item.Agg != "":
			name, err := resolveSelectCol(schema, item.Table, item.Col)
			if err != nil {
				return nil, err
			}
			outs = append(outs, outCol{
				label: fmt.Sprintf("%s(%s)", item.Agg, name),
				agg:   item.Agg,
				idx:   schema.MustColIndex(name),
			})
		default:
			name, err := resolveSelectCol(schema, item.Table, item.Col)
			if err != nil {
				return nil, err
			}
			if !inGroup(name) {
				return nil, fmt.Errorf("sql: column %q must appear in GROUP BY or inside an aggregate", name)
			}
			outs = append(outs, outCol{label: name, idx: schema.MustColIndex(name)})
		}
	}

	// Group rows. With no GROUP BY everything is one group (and an empty
	// input still yields one row of aggregates, SQL-style).
	type group struct {
		key  types.Tuple
		rows []types.Tuple
	}
	groups := map[uint64]*group{}
	var order []uint64
	addRow := func(t types.Tuple) {
		key := make(types.Tuple, len(groupIdx))
		for i, gi := range groupIdx {
			key[i] = t[gi]
		}
		h := key.Hash()
		g, ok := groups[h]
		if !ok {
			g = &group{key: key}
			groups[h] = g
			order = append(order, h)
		}
		g.rows = append(g.rows, t)
	}
	for _, t := range rows {
		addRow(t)
	}
	if len(groupIdx) == 0 && len(groups) == 0 {
		groups[0] = &group{key: types.Tuple{}}
		order = append(order, 0)
	}

	// Deterministic output: sort groups by key.
	sort.Slice(order, func(a, b int) bool {
		return groups[order[a]].key.Compare(groups[order[b]].key) < 0
	})

	res := &Result{}
	for _, o := range outs {
		res.Columns = append(res.Columns, o.label)
	}
	for _, h := range order {
		g := groups[h]
		row := make(types.Tuple, 0, len(outs))
		for _, o := range outs {
			switch o.agg {
			case "":
				// A group-by column: take it from the key.
				for i, gi := range groupIdx {
					if gi == o.idx {
						row = append(row, g.key[i])
						break
					}
				}
			case "count":
				row = append(row, types.Int(int64(len(g.rows))))
			default:
				v, err := foldAgg(o.agg, o.idx, g.rows)
				if err != nil {
					return nil, err
				}
				row = append(row, v)
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// foldAgg computes sum/min/max/avg over one column, skipping NULLs (SQL
// semantics); all-NULL (or empty) input yields NULL.
func foldAgg(agg string, idx int, rows []types.Tuple) (types.Value, error) {
	var acc types.Value
	n := 0
	var sumI int64
	var sumF float64
	isFloat := false
	for _, t := range rows {
		v := t[idx]
		if v.IsNull() {
			continue
		}
		n++
		switch agg {
		case "min":
			if acc.IsNull() || types.Compare(v, acc) < 0 {
				acc = v
			}
		case "max":
			if acc.IsNull() || types.Compare(v, acc) > 0 {
				acc = v
			}
		case "sum", "avg":
			switch v.K {
			case types.KindInt:
				sumI += v.I
			case types.KindFloat:
				isFloat = true
				sumF += v.F
			default:
				return types.Value{}, fmt.Errorf("sql: %s over non-numeric column", agg)
			}
		}
	}
	if n == 0 {
		return types.Null(), nil
	}
	switch agg {
	case "min", "max":
		return acc, nil
	case "sum":
		if isFloat {
			return types.Float(sumF + float64(sumI)), nil
		}
		return types.Int(sumI), nil
	case "avg":
		return types.Float((sumF + float64(sumI)) / float64(n)), nil
	default:
		return types.Value{}, fmt.Errorf("sql: unknown aggregate %q", agg)
	}
}

// hasAggregate reports whether the select list or GROUP BY requires the
// aggregate path.
func hasAggregate(s Select) bool {
	if len(s.GroupBy) > 0 {
		return true
	}
	for _, item := range s.Items {
		if item.Agg != "" {
			return true
		}
	}
	return false
}
