package sql

import (
	"testing"

	"joinview/internal/cluster"
)

// newDB builds a cluster and loads the paper's §3.3 schema via SQL,
// exercising the full DDL surface.
func newDB(t *testing.T) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.Config{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	script := `
		create table customer (custkey bigint, acctbal double) partition on custkey;
		create table orders (orderkey bigint, custkey bigint, totalprice double) partition on orderkey;
		create table lineitem (orderkey bigint, partkey bigint, extendedprice double) partition on partkey;
		create index ix_orders_cust on orders (custkey);
		create index ix_li_ok on lineitem (orderkey);
		insert into customer values (1, 10.0), (2, 20.0), (3, 30.0);
		insert into orders values (100, 1, 5.0), (101, 1, 6.0), (102, 2, 7.0), (103, 9, 8.0);
		insert into lineitem values (100, 7, 1.5), (100, 8, 2.5), (102, 9, 3.5);
	`
	if _, err := ExecScript(c, script); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestExecDDLAndDML(t *testing.T) {
	c := newDB(t)
	rows, err := c.TableRows("orders")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("orders has %d rows", len(rows))
	}
	r, err := Exec(c, `delete from orders where custkey = 9`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Count != 1 {
		t.Errorf("delete count = %d", r.Count)
	}
	r, err = Exec(c, `update customer set acctbal = 99.0 where custkey = 2`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Count != 1 {
		t.Errorf("update count = %d", r.Count)
	}
}

func TestExecSelectSingleTable(t *testing.T) {
	c := newDB(t)
	r, err := Exec(c, `select custkey, acctbal from customer where custkey >= 2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 || len(r.Columns) != 2 {
		t.Fatalf("rows = %v", r.Rows)
	}
	star, err := Exec(c, `select * from customer`)
	if err != nil {
		t.Fatal(err)
	}
	if len(star.Rows) != 3 || len(star.Columns) != 2 {
		t.Fatalf("star = %+v", star)
	}
}

func TestExecSelectJoin(t *testing.T) {
	c := newDB(t)
	r, err := Exec(c, `
		select c.custkey, o.orderkey, l.extendedprice
		from customer c, orders o, lineitem l
		where c.custkey = o.custkey and o.orderkey = l.orderkey`)
	if err != nil {
		t.Fatal(err)
	}
	// customer 1: orders 100 (2 lineitems), 101 (0); customer 2: order 102
	// (1 lineitem) -> 3 rows.
	if len(r.Rows) != 3 {
		t.Fatalf("join rows = %v", r.Rows)
	}
	// Residual predicate on top of the join.
	r, err = Exec(c, `
		select o.orderkey from customer c, orders o
		where c.custkey = o.custkey and o.totalprice > 5.5`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("filtered join = %v", r.Rows)
	}
}

func TestExecCreateViewMaintainsThroughSQL(t *testing.T) {
	c := newDB(t)
	// The paper's JV1, with the AR method.
	if _, err := Exec(c, `
		create view jv1 as
		select c.custkey, c.acctbal, o.orderkey, o.totalprice
		from orders o, customer c
		where c.custkey = o.custkey
		partition on c.custkey using auxrel`); err != nil {
		t.Fatal(err)
	}
	// The AR method's structure exists.
	if _, ok := c.Catalog().AuxRelOn("orders", "custkey", nil); !ok {
		t.Fatal("AR for orders not created")
	}
	r, err := Exec(c, `select * from jv1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("initial jv1 = %v", r.Rows)
	}
	// DML through SQL keeps the view consistent.
	if _, err := Exec(c, `insert into customer values (9, 90.0)`); err != nil {
		t.Fatal(err)
	}
	if _, err := Exec(c, `insert into orders values (200, 3, 1.0)`); err != nil {
		t.Fatal(err)
	}
	if _, err := Exec(c, `delete from customer where custkey = 1`); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckViewConsistency("jv1"); err != nil {
		t.Fatal(err)
	}
	r, _ = Exec(c, `select * from jv1`)
	// after: customer {2,3,9}; orders for 2: 102; for 3: 200; for 9: 103
	// (deleted? no — 103 was custkey 9 and still present). jv1 rows: 3.
	if len(r.Rows) != 3 {
		t.Fatalf("jv1 after DML = %v", r.Rows)
	}
}

func TestExecCreateAuxRelAndGlobalIndexSQL(t *testing.T) {
	c := newDB(t)
	if _, err := Exec(c, `create auxiliary relation orders_1 for orders partition on custkey`); err != nil {
		t.Fatal(err)
	}
	rows, err := c.TableRows("orders_1")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("orders_1 backfill = %d rows", len(rows))
	}
	// Minimized AR with selection.
	if _, err := Exec(c, `create auxiliary relation big_orders for orders partition on custkey
		columns (custkey, totalprice) where totalprice >= 6.0`); err != nil {
		t.Fatal(err)
	}
	rows, _ = c.TableRows("big_orders")
	if len(rows) != 3 {
		t.Fatalf("selective AR = %d rows, want 3", len(rows))
	}
	if len(rows[0]) != 2 {
		t.Fatalf("projected AR arity = %d", len(rows[0]))
	}
	r, err := Exec(c, `create global index gi_orders_cust on orders (custkey)`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Message == "" {
		t.Error("DDL message empty")
	}
	// SELECT from the AR works.
	sel, err := Exec(c, `select * from orders_1 where custkey = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Rows) != 2 {
		t.Fatalf("select from AR = %v", sel.Rows)
	}
}

func TestExecErrors(t *testing.T) {
	c := newDB(t)
	bad := []string{
		`select * from ghost`,
		`insert into ghost values (1)`,
		`insert into customer values (1)`,         // arity
		`delete from customer where ghostcol = 1`, // unknown col
		`update customer set ghost = 1`,
		`create view v as select * from customer, orders where customer.custkey > orders.custkey`, // non-equijoin view
		`create view v2 as select * from customer c, orders o where custkey = o.custkey`,          // unqualified join col
		`create view v3 as select * from customer c, customer c where c.custkey = c.custkey`,      // dup binding
		`create view v4 as select * from customer c, ghost g where c.custkey = g.custkey`,
		`select * from customer, orders`, // cartesian
		`select ghost from customer`,
		`select customer.ghost from customer`,
		`delete from ghost`,
		`update ghost set x = 1`,
	}
	for _, input := range bad {
		if _, err := Exec(c, input); err == nil {
			t.Errorf("Exec(%q) should fail", input)
		}
	}
	// Parse error surfaces from Exec and ExecScript.
	if _, err := Exec(c, `selec *`); err == nil {
		t.Error("parse error should surface")
	}
	if _, err := ExecScript(c, `select * from customer; select * from ghost`); err == nil {
		t.Error("script error should surface")
	}
}

func TestExecCountStar(t *testing.T) {
	c := newDB(t)
	r, err := Exec(c, `select count(*) from orders`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 || r.Rows[0][0].I != 4 || r.Columns[0] != "count" {
		t.Fatalf("count(*) = %+v", r)
	}
	r, err = Exec(c, `select count(*) from orders where custkey = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].I != 2 {
		t.Fatalf("filtered count = %v", r.Rows)
	}
	// Count over a join.
	r, err = Exec(c, `select count(*) from customer c, orders o where c.custkey = o.custkey`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].I != 3 {
		t.Fatalf("join count = %v", r.Rows)
	}
	// count(*) mixed with columns is rejected.
	if _, err := Exec(c, `select count(*), custkey from customer`); err == nil {
		t.Error("mixed count should fail")
	}
}

// The paper's §2.2 cyclic example end-to-end through SQL.
func TestExecCyclicViewSQL(t *testing.T) {
	c, err := cluster.New(cluster.Config{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if _, err := ExecScript(c, `
		create table ta (pk bigint, x bigint, z bigint) partition on pk;
		create table tb (pk bigint, x bigint, y bigint) partition on pk;
		create table tc (pk bigint, y bigint, z bigint) partition on pk;
		insert into ta values (1, 10, 100), (2, 10, 200);
		insert into tb values (1, 10, 50);
		insert into tc values (1, 50, 100), (2, 50, 999);
		create view tri as
			select ta.pk, tb.pk, tc.pk
			from ta, tb, tc
			where ta.x = tb.x and tb.y = tc.y and tc.z = ta.z
			partition on ta.pk using auxrel;
	`); err != nil {
		t.Fatal(err)
	}
	r, err := Exec(c, `select count(*) from tri`)
	if err != nil {
		t.Fatal(err)
	}
	// Only ta(1)/tb(1)/tc(1) closes the triangle.
	if r.Rows[0][0].I != 1 {
		t.Fatalf("triangle count = %v", r.Rows)
	}
	if _, err := Exec(c, `insert into ta values (3, 10, 999)`); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckViewConsistency("tri"); err != nil {
		t.Fatal(err)
	}
	r, _ = Exec(c, `select count(*) from tri`)
	// ta(3) closes with tb(1)/tc(2): z=999.
	if r.Rows[0][0].I != 2 {
		t.Fatalf("triangle count after insert = %v", r.Rows)
	}
}

// Aggregate join views through SQL: GROUP BY + count/sum becomes a
// materialized aggregate view, maintained under DML.
func TestExecCreateAggregateViewSQL(t *testing.T) {
	c := newDB(t)
	if _, err := Exec(c, `
		create view av as
		select c.custkey, count(*), sum(o.totalprice)
		from customer c, orders o
		where c.custkey = o.custkey
		group by c.custkey
		partition on c.custkey using auxrel`); err != nil {
		t.Fatal(err)
	}
	v, err := c.Catalog().View("av")
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsAggregate() || len(v.Aggs) != 2 {
		t.Fatalf("aggs = %+v", v.Aggs)
	}
	r, err := Exec(c, `select * from av`)
	if err != nil {
		t.Fatal(err)
	}
	// customers 1 (orders 100,101: 5+6) and 2 (order 102: 7).
	if len(r.Rows) != 2 {
		t.Fatalf("groups = %v", r.Rows)
	}
	if _, err := Exec(c, `insert into orders values (200, 1, 10.0)`); err != nil {
		t.Fatal(err)
	}
	if _, err := Exec(c, `delete from orders where orderkey = 102`); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckViewConsistency("av"); err != nil {
		t.Fatal(err)
	}
	r, _ = Exec(c, `select * from av where custkey = 1`)
	if len(r.Rows) != 1 || r.Rows[0][1].I != 3 || r.Rows[0][2].F != 21 {
		t.Fatalf("group 1 = %v", r.Rows)
	}
	// Group 2 emptied out.
	r, _ = Exec(c, `select count(*) from av`)
	if r.Rows[0][0].I != 1 {
		t.Fatalf("group count = %v", r.Rows)
	}
}

func TestExecAggregateViewValidationSQL(t *testing.T) {
	c := newDB(t)
	bad := []string{
		// Non-grouped column in an aggregate view.
		`create view b1 as select c.acctbal, count(*) from customer c, orders o
			where c.custkey = o.custkey group by c.custkey`,
		// Star in an aggregate view.
		`create view b2 as select *, count(*) from customer c, orders o
			where c.custkey = o.custkey group by c.custkey`,
		// GROUP BY without aggregates.
		`create view b3 as select c.custkey from customer c, orders o
			where c.custkey = o.custkey group by c.custkey`,
	}
	for _, q := range bad {
		if _, err := Exec(c, q); err == nil {
			t.Errorf("Exec(%q) should fail", q)
		}
	}
}

func TestExecAmbiguousColumn(t *testing.T) {
	c := newDB(t)
	// custkey exists in both customer and orders.
	if _, err := Exec(c, `select custkey from customer c, orders o where c.custkey = o.custkey`); err == nil {
		t.Error("ambiguous unqualified column should fail")
	}
	// Unambiguous unqualified column resolves.
	r, err := Exec(c, `select acctbal from customer c, orders o where c.custkey = o.custkey`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %v", r.Rows)
	}
}
