package sql

import "testing"

func TestDropView(t *testing.T) {
	c := newDB(t)
	if _, err := Exec(c, `
		create view jv1 as select c.custkey, o.orderkey from orders o, customer c
		where c.custkey = o.custkey partition on c.custkey using auxrel`); err != nil {
		t.Fatal(err)
	}
	r, err := Exec(c, `drop view jv1`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Message == "" {
		t.Error("drop should report a message")
	}
	if _, err := Exec(c, `select * from jv1`); err == nil {
		t.Error("dropped view should be gone")
	}
	// Inserts no longer maintain it (and don't fail).
	if _, err := Exec(c, `insert into customer values (50, 1.0)`); err != nil {
		t.Fatal(err)
	}
	if _, err := Exec(c, `drop view jv1`); err == nil {
		t.Error("double drop should fail")
	}
}

func TestDropTableCascadesStructures(t *testing.T) {
	c := newDB(t)
	if _, err := ExecScript(c, `
		create auxiliary relation orders_1 for orders partition on custkey;
		create global index gi_oc on orders (custkey);
	`); err != nil {
		t.Fatal(err)
	}
	if _, err := Exec(c, `drop table orders`); err != nil {
		t.Fatal(err)
	}
	if _, err := Exec(c, `select * from orders`); err == nil {
		t.Error("dropped table should be gone")
	}
	if _, err := Exec(c, `select * from orders_1`); err == nil {
		t.Error("cascaded AR should be gone")
	}
	if _, err := c.Catalog().GlobalIndex("gi_oc"); err == nil {
		t.Error("cascaded GI should be gone")
	}
}

func TestDropTableRefusesWithView(t *testing.T) {
	c := newDB(t)
	if _, err := Exec(c, `
		create view jv1 as select c.custkey, o.orderkey from orders o, customer c
		where c.custkey = o.custkey partition on c.custkey`); err != nil {
		t.Fatal(err)
	}
	if _, err := Exec(c, `drop table orders`); err == nil {
		t.Fatal("drop table under a view should fail")
	}
	if _, err := Exec(c, `drop view jv1`); err != nil {
		t.Fatal(err)
	}
	if _, err := Exec(c, `drop table orders`); err != nil {
		t.Fatalf("drop after removing the view should work: %v", err)
	}
}

func TestDropAuxRelGuardedByViews(t *testing.T) {
	c := newDB(t)
	if _, err := Exec(c, `
		create view jv1 as select c.custkey, o.orderkey, o.totalprice from orders o, customer c
		where c.custkey = o.custkey partition on c.custkey using auxrel`); err != nil {
		t.Fatal(err)
	}
	// The view's AR cannot be dropped while it is the only covering one.
	if _, err := Exec(c, `drop auxiliary relation ar_orders_custkey`); err == nil {
		t.Fatal("dropping a needed AR should fail")
	}
	// An extra covering AR makes the first droppable.
	if _, err := Exec(c, `create auxiliary relation orders_copy for orders partition on custkey`); err != nil {
		t.Fatal(err)
	}
	if _, err := Exec(c, `drop auxiliary relation ar_orders_custkey`); err != nil {
		t.Fatal(err)
	}
	// Maintenance now uses the surviving copy.
	if _, err := Exec(c, `insert into customer values (60, 1.0)`); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckViewConsistency("jv1"); err != nil {
		t.Fatal(err)
	}
}

func TestDropGlobalIndex(t *testing.T) {
	c := newDB(t)
	if _, err := Exec(c, `create global index gi_oc on orders (custkey)`); err != nil {
		t.Fatal(err)
	}
	if _, err := Exec(c, `drop global index gi_oc`); err != nil {
		t.Fatal(err)
	}
	if _, err := Exec(c, `drop global index gi_oc`); err == nil {
		t.Error("double drop should fail")
	}
}

func TestDropErrors(t *testing.T) {
	c := newDB(t)
	for _, q := range []string{
		`drop table ghost`,
		`drop view ghost`,
		`drop auxiliary relation ghost`,
		`drop global index ghost`,
		`drop table`,
	} {
		if _, err := Exec(c, q); err == nil {
			t.Errorf("Exec(%q) should fail", q)
		}
	}
}
