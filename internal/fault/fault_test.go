package fault

import (
	"errors"
	"testing"
	"time"

	"joinview/internal/netsim"
)

func countingHandlers(n int) ([]netsim.Handler, []int) {
	counts := make([]int, n)
	hs := make([]netsim.Handler, n)
	for i := range hs {
		i := i
		hs[i] = func(req any) (any, error) {
			counts[i]++
			return req, nil
		}
	}
	return hs, counts
}

func TestDeterministicStorm(t *testing.T) {
	storm := func() Stats {
		hs, _ := countingHandlers(4)
		inj := New(Config{Seed: 7, DropRequest: 0.2, DropReply: 0.2, Duplicate: 0.2, HandlerErr: 0.2})
		tr := Wrap(netsim.NewDirect(hs), inj)
		inj.Arm()
		for i := 0; i < 200; i++ {
			_, _ = tr.Call(netsim.Coordinator, i%4, i)
		}
		return inj.Stats()
	}
	a, b := storm(), storm()
	if a != b {
		t.Fatalf("same seed, different storms: %+v vs %+v", a, b)
	}
	if a.Total() == 0 {
		t.Fatal("storm injected nothing")
	}
}

func TestDisarmedInjectsNothing(t *testing.T) {
	hs, counts := countingHandlers(2)
	inj := New(Config{Seed: 1, DropRequest: 1})
	tr := Wrap(netsim.NewDirect(hs), inj)
	if _, err := tr.Call(netsim.Coordinator, 0, "x"); err != nil {
		t.Fatalf("disarmed injector must pass calls through: %v", err)
	}
	if counts[0] != 1 {
		t.Fatalf("handler ran %d times, want 1", counts[0])
	}
}

func TestFaultKinds(t *testing.T) {
	hs, counts := countingHandlers(2)
	inj := New(Config{Seed: 1})
	tr := Wrap(netsim.NewDirect(hs), inj)

	inj.FailNext(KindDropRequest, 1)
	if _, err := tr.Call(netsim.Coordinator, 0, "x"); !IsTransient(err) {
		t.Fatalf("drop-request error = %v, want transient", err)
	}
	if counts[0] != 0 {
		t.Fatal("dropped request must not reach the handler")
	}

	inj.FailNext(KindDropReply, 1)
	if _, err := tr.Call(netsim.Coordinator, 0, "x"); !IsTransient(err) {
		t.Fatalf("drop-reply error = %v, want transient", err)
	}
	if counts[0] != 1 {
		t.Fatal("drop-reply must execute the request exactly once")
	}

	inj.FailNext(KindDuplicate, 1)
	resp, err := tr.Call(netsim.Coordinator, 0, "x")
	if err != nil || resp != "x" {
		t.Fatalf("duplicate delivery = %v, %v", resp, err)
	}
	if counts[0] != 3 {
		t.Fatalf("duplicate must execute twice, handler ran %d total", counts[0])
	}

	inj.FailNext(KindHandlerErr, 1)
	if _, err := tr.Call(netsim.Coordinator, 0, "x"); !IsTransient(err) {
		t.Fatalf("handler-error = %v, want transient", err)
	}
	if counts[0] != 3 {
		t.Fatal("handler-error must not execute the request")
	}
}

func TestCrashRestart(t *testing.T) {
	hs, _ := countingHandlers(3)
	inj := New(Config{Seed: 1})
	tr := Wrap(netsim.NewDirect(hs), inj)
	inj.Crash(1)
	_, err := tr.Call(netsim.Coordinator, 1, "x")
	n, down := IsNodeDown(err)
	if !down || n != 1 {
		t.Fatalf("call to crashed node = %v, want NodeDownError{1}", err)
	}
	if IsTransient(err) {
		t.Fatal("node-down must not be transient")
	}
	// Broadcast completes past the down node.
	resps, err := tr.Broadcast(netsim.Coordinator, "x")
	if err == nil {
		t.Fatal("broadcast over a crashed node must report it")
	}
	if resps[0] != "x" || resps[2] != "x" {
		t.Fatalf("surviving nodes missing from broadcast: %v", resps)
	}
	inj.Restart(1)
	if _, err := tr.Call(netsim.Coordinator, 1, "x"); err != nil {
		t.Fatalf("restarted node refused call: %v", err)
	}
}

func TestCrashAfterSchedule(t *testing.T) {
	hs, _ := countingHandlers(2)
	inj := New(Config{Seed: 1})
	tr := Wrap(netsim.NewDirect(hs), inj)
	inj.CrashAfter(1, 2)
	for i := 0; i < 2; i++ {
		if _, err := tr.Call(netsim.Coordinator, 1, i); err != nil {
			t.Fatalf("call %d before scheduled crash failed: %v", i, err)
		}
	}
	if _, err := tr.Call(netsim.Coordinator, 1, "x"); err == nil {
		t.Fatal("scheduled crash did not fire")
	}
}

func TestMaxFaultsBudget(t *testing.T) {
	hs, _ := countingHandlers(1)
	inj := New(Config{Seed: 1, DropRequest: 1, MaxFaults: 3})
	tr := Wrap(netsim.NewDirect(hs), inj)
	inj.Arm()
	failures := 0
	for i := 0; i < 10; i++ {
		if _, err := tr.Call(netsim.Coordinator, 0, i); err != nil {
			failures++
		}
	}
	if failures != 3 {
		t.Fatalf("budget of 3 produced %d failures", failures)
	}
}

func TestIsTransientCoversTimeout(t *testing.T) {
	if !IsTransient(netsim.ErrTimeout) {
		t.Fatal("transport timeouts must be retryable")
	}
	if IsTransient(errors.New("other")) {
		t.Fatal("arbitrary errors must not be transient")
	}
}

func TestDelayFault(t *testing.T) {
	hs, _ := countingHandlers(1)
	inj := New(Config{Seed: 1, DelayDuration: 10 * time.Millisecond})
	tr := Wrap(netsim.NewDirect(hs), inj)
	inj.FailNext(KindDelay, 1)
	start := time.Now()
	if _, err := tr.Call(netsim.Coordinator, 0, "x"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("delayed call took %v, want >= 10ms", d)
	}
}
