// Package fault injects interconnect and node failures into the cluster
// simulator, so the paper's consistency obligation — base relations,
// auxiliary relations, global indexes and join views staying mutually
// consistent under maintenance — can be exercised under the conditions a
// production parallel RDBMS actually faces: lost requests, lost replies,
// duplicated deliveries, transient node errors, slow links and whole-node
// crashes.
//
// An Injector is a deterministic, seeded fault source. A schedule arms it
// with per-delivery probabilities (plus one-shot and crash-after triggers
// for targeted tests); Transport wraps any netsim.Transport and consults
// the injector on every delivery. Everything the injector decides flows
// from its seed, so a chaos run that fails reproduces exactly from the
// same seed.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"joinview/internal/netsim"
)

// Kind enumerates the injectable faults.
type Kind uint8

// Fault kinds.
const (
	// KindDropRequest loses the request before delivery: the destination
	// never sees it. Retryable without ambiguity.
	KindDropRequest Kind = iota
	// KindDropReply delivers and executes the request but loses the
	// response: the caller sees an error while the node applied the work.
	// This is the fault that makes idempotent (sequence-numbered) request
	// handling mandatory.
	KindDropReply
	// KindDuplicate delivers the request twice — a retransmission racing
	// the original. Without dedup a retried insert applies twice.
	KindDuplicate
	// KindDelay delays the delivery by the configured duration, then
	// proceeds normally (models a congested link).
	KindDelay
	// KindHandlerErr fails the call with a transient error before the
	// request executes (models an overloaded or restarting server
	// rejecting work).
	KindHandlerErr
	kindCount
)

func (k Kind) String() string {
	switch k {
	case KindDropRequest:
		return "drop-request"
	case KindDropReply:
		return "drop-reply"
	case KindDuplicate:
		return "duplicate"
	case KindDelay:
		return "delay"
	case KindHandlerErr:
		return "handler-error"
	default:
		return "unknown"
	}
}

// ErrTransient marks an injected fault the caller may retry: the failure
// is a property of this delivery, not of the cluster state. Test with
// errors.Is (IsTransient also covers transport timeouts).
var ErrTransient = errors.New("transient fault")

// NodeDownError reports a delivery refused because the destination node
// is crashed. It is not transient: retrying cannot succeed until the node
// restarts.
type NodeDownError struct {
	Node int
}

func (e NodeDownError) Error() string {
	return fmt.Sprintf("fault: node %d is down", e.Node)
}

// IsTransient reports whether err is worth retrying: an injected
// transient fault or a transport timeout (whose outcome is unknown).
func IsTransient(err error) bool {
	return errors.Is(err, ErrTransient) || errors.Is(err, netsim.ErrTimeout)
}

// IsNodeDown extracts the crashed node from an error chain.
func IsNodeDown(err error) (int, bool) {
	var nd NodeDownError
	if errors.As(err, &nd) {
		return nd.Node, true
	}
	return 0, false
}

// Config is a fault schedule: per-delivery probabilities for each fault
// kind. All probabilities are independent per delivery; the first kind
// drawn (in the order drop-request, drop-reply, duplicate, handler-error,
// delay) wins.
type Config struct {
	// Seed feeds the injector's deterministic random source.
	Seed int64
	// DropRequest, DropReply, Duplicate, HandlerErr, Delay are per-call
	// probabilities in [0,1].
	DropRequest float64
	DropReply   float64
	Duplicate   float64
	HandlerErr  float64
	Delay       float64
	// DelayDuration is how long a KindDelay fault stalls the delivery.
	DelayDuration time.Duration
	// MaxFaults, when positive, caps the number of injected faults: a
	// fault budget, so a storm provably dies down and retries eventually
	// win. Zero means unlimited.
	MaxFaults int
}

// Stats counts injected faults by kind, plus deliveries refused because
// the destination was down.
type Stats struct {
	DropRequest int64
	DropReply   int64
	Duplicate   int64
	Delay       int64
	HandlerErr  int64
	DeniedDown  int64
}

// Total sums the injected transport faults (DeniedDown excluded — those
// are consequences of a crash, not scheduled faults).
func (s Stats) Total() int64 {
	return s.DropRequest + s.DropReply + s.Duplicate + s.Delay + s.HandlerErr
}

// Injector is a deterministic, seeded fault source. The zero value is not
// usable; construct with New. An unarmed injector never injects (crashed
// nodes stay crashed regardless of arming — a crash is cluster state, not
// a per-delivery fault).
type Injector struct {
	mu       sync.Mutex
	rng      *rand.Rand
	cfg      Config
	armed    bool
	injected int
	st       Stats
	down     map[int]bool

	// oneShots are deterministic forced faults consumed before the
	// probabilistic schedule — the unit-test hook for "exactly this fault
	// on the next delivery".
	oneShots []Kind
	// crashAfter counts deliveries until the scheduled crash of
	// crashNode fires (-1 = no crash scheduled).
	crashAfter int
	crashNode  int

	// Migration-phase trigger points. The migration coordinator announces
	// every phase transition through Phase; chaos tests arm one-shot
	// triggers on phase names, so a crash lands exactly at "copy",
	// "catchup" or "cutover" of a live rebalance instead of at a counted
	// delivery. phaseCrash maps phase → node to crash; phaseFail holds
	// phases whose announcement itself fails (the coordinator dying at
	// the boundary); phaseLog records every announcement for diagnostics.
	phaseCrash map[string]int
	phaseFail  map[string]bool
	phaseLog   []string
}

// ErrPhaseFail marks a coordinator phase boundary where an armed trigger
// killed the coordinator: the interrupted work must abort (presumed
// abort) or be resumed — ResumeMigrations for a migration phase,
// ResumeMaintenance for an async-flush phase — after the simulated
// restart.
var ErrPhaseFail = errors.New("fault: injected coordinator failure at phase")

// New builds an injector with the given schedule. It starts disarmed so
// DDL and loading run clean; Arm it when the storm should begin.
func New(cfg Config) *Injector {
	return &Injector{
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		cfg:        cfg,
		down:       map[int]bool{},
		crashAfter: -1,
		phaseCrash: map[string]int{},
		phaseFail:  map[string]bool{},
	}
}

// Arm enables the probabilistic schedule.
func (i *Injector) Arm() {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.armed = true
}

// Disarm stops injecting new faults. Crashed nodes stay down until
// Restart.
func (i *Injector) Disarm() {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.armed = false
}

// Crash marks a node down: every delivery to it fails with NodeDownError
// until Restart. State at the node is preserved (the model is fail-stop
// with durable storage, not disk loss).
func (i *Injector) Crash(node int) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.down[node] = true
}

// Restart brings a crashed node back. The cluster's Recover must still
// run to repair any in-doubt work and rebuild derived fragments.
func (i *Injector) Restart(node int) {
	i.mu.Lock()
	defer i.mu.Unlock()
	delete(i.down, node)
}

// Down reports whether a node is crashed.
func (i *Injector) Down(node int) bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.down[node]
}

// DownNodes lists the crashed nodes.
func (i *Injector) DownNodes() []int {
	i.mu.Lock()
	defer i.mu.Unlock()
	var out []int
	for n := range i.down {
		out = append(out, n)
	}
	return out
}

// FailNext forces the next `times` decided deliveries to suffer the given
// fault, regardless of arming or probabilities — the deterministic hook
// for targeted regression tests (e.g. "drop exactly one reply").
func (i *Injector) FailNext(k Kind, times int) {
	i.mu.Lock()
	defer i.mu.Unlock()
	for j := 0; j < times; j++ {
		i.oneShots = append(i.oneShots, k)
	}
}

// CrashAfter schedules node to crash after the next `calls` deliveries
// have been decided — landing a crash mid-statement deterministically.
func (i *Injector) CrashAfter(node, calls int) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.crashNode = node
	i.crashAfter = calls
}

// CrashAtPhase arms a one-shot trigger: when the coordinator announces
// the named phase (exactly, or any sub-phase "name:…") — a migration
// phase or an async-flush phase — the given node crashes. Use it to land
// a node crash inside a specific coordinator phase deterministically.
func (i *Injector) CrashAtPhase(phase string, node int) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.phaseCrash[phase] = node
}

// FailAtPhase arms a one-shot trigger that makes the named phase
// announcement itself return ErrPhaseFail — the simulator's stand-in for
// the coordinator dying at that boundary, after the preceding phases'
// work (and WAL records) are in place but before any cleanup ran.
func (i *Injector) FailAtPhase(phase string) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.phaseFail[phase] = true
}

// Phase is the coordinator's announcement of a phase transition (a
// migration phase, or an async-maintenance flush phase: "enqueue",
// "compact", "flush", "ack"). It fires any armed triggers: node crashes
// take effect immediately (subsequent deliveries to the node fail), and a
// FailAtPhase trigger makes this call return ErrPhaseFail. Announcements
// are recorded and retrievable with PhaseLog. A nil injector is silent,
// so the coordinator can announce unconditionally.
func (i *Injector) Phase(phase string) error {
	if i == nil {
		return nil
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	i.phaseLog = append(i.phaseLog, phase)
	match := func(m map[string]int) (string, bool) {
		for name := range m {
			if name == phase || strings.HasPrefix(phase, name+":") {
				return name, true
			}
		}
		return "", false
	}
	if name, ok := match(i.phaseCrash); ok {
		i.down[i.phaseCrash[name]] = true
		delete(i.phaseCrash, name)
	}
	for name := range i.phaseFail {
		if name == phase || strings.HasPrefix(phase, name+":") {
			delete(i.phaseFail, name)
			return fmt.Errorf("%w: %s", ErrPhaseFail, phase)
		}
	}
	return nil
}

// PhaseLog returns every coordinator phase announcement seen so far.
func (i *Injector) PhaseLog() []string {
	i.mu.Lock()
	defer i.mu.Unlock()
	return append([]string(nil), i.phaseLog...)
}

// Stats snapshots the per-kind fault counts.
func (i *Injector) Stats() Stats {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.st
}

// deniedDown records a delivery refused by a crash.
func (i *Injector) deniedDown() {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.st.DeniedDown++
}

// tick advances the scheduled-crash countdown by one delivery; when it
// reaches zero the node goes down, affecting this delivery onward.
func (i *Injector) tick() {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.crashAfter < 0 {
		return
	}
	if i.crashAfter == 0 {
		i.down[i.crashNode] = true
		i.crashAfter = -1
		return
	}
	i.crashAfter--
}

// decide picks the fault (if any) for one delivery.
func (i *Injector) decide() (Kind, bool) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if len(i.oneShots) > 0 {
		k := i.oneShots[0]
		i.oneShots = i.oneShots[1:]
		i.count(k)
		return k, true
	}
	if !i.armed {
		return 0, false
	}
	if i.cfg.MaxFaults > 0 && i.injected >= i.cfg.MaxFaults {
		return 0, false
	}
	// One draw per kind, first hit wins, so a given seed produces the
	// same storm regardless of which kinds are enabled downstream.
	probs := [...]struct {
		p float64
		k Kind
	}{
		{i.cfg.DropRequest, KindDropRequest},
		{i.cfg.DropReply, KindDropReply},
		{i.cfg.Duplicate, KindDuplicate},
		{i.cfg.HandlerErr, KindHandlerErr},
		{i.cfg.Delay, KindDelay},
	}
	for _, pk := range probs {
		if pk.p > 0 && i.rng.Float64() < pk.p {
			i.count(pk.k)
			return pk.k, true
		}
	}
	return 0, false
}

func (i *Injector) count(k Kind) {
	i.injected++
	switch k {
	case KindDropRequest:
		i.st.DropRequest++
	case KindDropReply:
		i.st.DropReply++
	case KindDuplicate:
		i.st.Duplicate++
	case KindDelay:
		i.st.Delay++
	case KindHandlerErr:
		i.st.HandlerErr++
	}
}
