package fault

import (
	"errors"
	"fmt"
	"time"

	"joinview/internal/netsim"
)

// Transport applies an Injector's schedule to an underlying transport. It
// implements netsim.Transport, so a cluster built over it sees the same
// interface with faults woven into every delivery.
//
// Broadcast degrades to per-node sequential delivery so each destination
// gets an independent fault draw; the complete-and-report contract of
// netsim.Transport.Broadcast is preserved. (Fault runs measure
// correctness and message counts, not wall-clock fan-out.)
type Transport struct {
	inner netsim.Transport
	inj   *Injector
}

// Wrap builds a fault-injecting transport over inner.
func Wrap(inner netsim.Transport, inj *Injector) *Transport {
	return &Transport{inner: inner, inj: inj}
}

// Injector returns the wrapped injector (chaos harnesses arm and crash
// through it).
func (t *Transport) Injector() *Injector { return t.inj }

// Call implements netsim.Transport.
func (t *Transport) Call(from, to int, req any) (any, error) {
	t.inj.tick()
	if t.inj.Down(to) {
		t.inj.deniedDown()
		return nil, NodeDownError{Node: to}
	}
	k, ok := t.inj.decide()
	if !ok {
		return t.inner.Call(from, to, req)
	}
	switch k {
	case KindDropRequest:
		return nil, fmt.Errorf("fault: request %T to node %d dropped: %w", req, to, ErrTransient)
	case KindHandlerErr:
		return nil, fmt.Errorf("fault: node %d refused %T: %w", to, req, ErrTransient)
	case KindDropReply:
		// Deliver and execute, then lose the answer. If the handler
		// itself failed, surface the real error (nothing was applied).
		if _, err := t.inner.Call(from, to, req); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("fault: reply from node %d for %T dropped: %w", to, req, ErrTransient)
	case KindDuplicate:
		// Retransmission racing the original: the request reaches the
		// node twice. Sequence-number dedup must make the second
		// delivery a no-op.
		if _, err := t.inner.Call(from, to, req); err != nil {
			return nil, err
		}
		return t.inner.Call(from, to, req)
	case KindDelay:
		if d := t.inj.cfg.DelayDuration; d > 0 {
			time.Sleep(d)
		}
		return t.inner.Call(from, to, req)
	default:
		return t.inner.Call(from, to, req)
	}
}

// Broadcast implements netsim.Transport: per-node delivery with
// independent fault draws, completing every node and joining failures.
func (t *Transport) Broadcast(from int, req any) ([]any, error) {
	out := make([]any, t.inner.NumNodes())
	var errs []error
	for to := range out {
		resp, err := t.Call(from, to, req)
		if err != nil {
			errs = append(errs, fmt.Errorf("netsim: broadcast to node %d: %w", to, err))
			continue
		}
		out[to] = resp
	}
	return out, errors.Join(errs...)
}

// NumNodes implements netsim.Transport.
func (t *Transport) NumNodes() int { return t.inner.NumNodes() }

// Stats implements netsim.Transport (messages the inner transport
// actually carried; dropped requests never count).
func (t *Transport) Stats() netsim.Stats { return t.inner.Stats() }

// ResetStats implements netsim.Transport.
func (t *Transport) ResetStats() { t.inner.ResetStats() }

// Close implements netsim.Transport.
func (t *Transport) Close() { t.inner.Close() }
