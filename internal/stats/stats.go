// Package stats maintains the coarse relation statistics the maintenance
// planner needs: row counts and per-column distinct-value counts. The
// paper's §2.2 optimization problem ("it is impossible to state which
// alternative is best without considering relational statistics") is
// decided with exactly these numbers: the expected fan-out of an equijoin
// against R on column c is |R| / distinct(R.c).
package stats

import (
	"fmt"
	"sort"
	"sync"

	"joinview/internal/types"
)

// TableStats summarizes one relation.
type TableStats struct {
	Rows     int64
	Distinct map[string]int64 // column -> approximate distinct count
}

// Fanout estimates how many tuples of the relation match one value of col.
// An unknown column or empty relation estimates 1 (optimistic, matching
// textbook defaults).
func (t TableStats) Fanout(col string) float64 {
	if t.Rows == 0 {
		return 1
	}
	d := t.Distinct[col]
	if d <= 0 {
		return 1
	}
	f := float64(t.Rows) / float64(d)
	if f < 1 {
		return 1
	}
	return f
}

// Stats maps table names to their statistics. Safe for concurrent use:
// sessions running in parallel under the cluster's table-level lock
// manager update row counts for different tables at once.
type Stats struct {
	mu     sync.RWMutex
	tables map[string]TableStats
}

// New returns an empty statistics store.
func New() *Stats { return &Stats{tables: map[string]TableStats{}} }

// Set records statistics for a table, replacing any previous entry.
func (s *Stats) Set(table string, ts TableStats) {
	s.mu.Lock()
	s.tables[table] = ts
	s.mu.Unlock()
}

// Get returns the statistics for a table; ok is false if none are recorded.
func (s *Stats) Get(table string) (TableStats, bool) {
	s.mu.RLock()
	ts, ok := s.tables[table]
	s.mu.RUnlock()
	return ts, ok
}

// Fanout estimates the join fan-out against table on col; tables without
// statistics estimate 1.
func (s *Stats) Fanout(table, col string) float64 {
	ts, ok := s.Get(table)
	if !ok {
		return 1
	}
	return ts.Fanout(col)
}

// Tables lists the tables with recorded statistics, sorted.
func (s *Stats) Tables() []string {
	s.mu.RLock()
	out := make([]string, 0, len(s.tables))
	for t := range s.tables {
		out = append(out, t)
	}
	s.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Collect computes exact statistics from a relation's tuples.
func Collect(schema *types.Schema, tuples []types.Tuple) (TableStats, error) {
	ts := TableStats{Rows: int64(len(tuples)), Distinct: map[string]int64{}}
	for ci, col := range schema.Cols {
		seen := map[uint64]bool{}
		for _, t := range tuples {
			if len(t) != schema.Len() {
				return TableStats{}, fmt.Errorf("stats: tuple arity %d != schema arity %d", len(t), schema.Len())
			}
			seen[t[ci].Hash()] = true
		}
		ts.Distinct[col.Name] = int64(len(seen))
	}
	return ts, nil
}
