// Pipeline counters: how the compile-once maintenance pipeline is doing.
// The plan cache records lookup hits and misses; the executor records, per
// stage kind, how many times the stage ran and — when the cluster executes
// statements serially, so the global meters are unambiguous — how many
// pages and messages the stage cost.
package stats

import "sync"

// PipelineCounters accumulates plan-cache and per-stage pipeline metrics.
// Safe for concurrent use.
type PipelineCounters struct {
	mu     sync.Mutex
	hits   int64
	misses int64
	stages map[string]StageCounters
}

// StageCounters is the accumulated cost of one pipeline stage kind.
type StageCounters struct {
	// Executions counts how many times a stage of this kind ran.
	Executions int64
	// Pages and Messages are the stage's metered cost. They are only
	// attributed when the cluster runs statements serially (one statement
	// owns the global meters for its duration); under parallel dispatch
	// they stay zero and only Executions advances.
	Pages    int64
	Messages int64
}

// NewPipelineCounters returns zeroed counters.
func NewPipelineCounters() *PipelineCounters {
	return &PipelineCounters{stages: map[string]StageCounters{}}
}

// RecordLookup counts one plan-cache lookup.
func (p *PipelineCounters) RecordLookup(hit bool) {
	p.mu.Lock()
	if hit {
		p.hits++
	} else {
		p.misses++
	}
	p.mu.Unlock()
}

// RecordStage counts one execution of the named stage kind, attributing
// pages and messages (pass zeros when attribution is ambiguous).
func (p *PipelineCounters) RecordStage(kind string, pages, messages int64) {
	p.mu.Lock()
	sc := p.stages[kind]
	sc.Executions++
	sc.Pages += pages
	sc.Messages += messages
	p.stages[kind] = sc
	p.mu.Unlock()
}

// Reset zeroes all counters (measurement windows reset them together with
// the cluster's storage and network meters).
func (p *PipelineCounters) Reset() {
	p.mu.Lock()
	p.hits, p.misses = 0, 0
	p.stages = map[string]StageCounters{}
	p.mu.Unlock()
}

// Snapshot returns a copy of the counters.
func (p *PipelineCounters) Snapshot() PipelineSnapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := PipelineSnapshot{
		PlanCacheHits:   p.hits,
		PlanCacheMisses: p.misses,
	}
	if len(p.stages) > 0 {
		s.Stages = make(map[string]StageCounters, len(p.stages))
		for k, v := range p.stages {
			s.Stages[k] = v
		}
	}
	return s
}

// PipelineSnapshot is a point-in-time copy of the pipeline counters.
type PipelineSnapshot struct {
	PlanCacheHits   int64
	PlanCacheMisses int64
	// Stages maps stage kind ("base", "auxrel", "globalindex", "view") to
	// its accumulated cost; nil when nothing ran.
	Stages map[string]StageCounters
}

// HitRate returns hits / (hits + misses), or 0 with no lookups.
func (s PipelineSnapshot) HitRate() float64 {
	total := s.PlanCacheHits + s.PlanCacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.PlanCacheHits) / float64(total)
}

// Sub returns the delta s - o, for measurement windows.
func (s PipelineSnapshot) Sub(o PipelineSnapshot) PipelineSnapshot {
	d := PipelineSnapshot{
		PlanCacheHits:   s.PlanCacheHits - o.PlanCacheHits,
		PlanCacheMisses: s.PlanCacheMisses - o.PlanCacheMisses,
	}
	if len(s.Stages) > 0 {
		d.Stages = make(map[string]StageCounters, len(s.Stages))
		for k, v := range s.Stages {
			prev := o.Stages[k]
			d.Stages[k] = StageCounters{
				Executions: v.Executions - prev.Executions,
				Pages:      v.Pages - prev.Pages,
				Messages:   v.Messages - prev.Messages,
			}
		}
	}
	return d
}
