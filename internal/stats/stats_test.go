package stats

import (
	"testing"

	"joinview/internal/types"
)

func TestFanout(t *testing.T) {
	ts := TableStats{Rows: 100, Distinct: map[string]int64{"a": 25, "b": 100, "c": 0}}
	if got := ts.Fanout("a"); got != 4 {
		t.Errorf("Fanout(a) = %g, want 4", got)
	}
	if got := ts.Fanout("b"); got != 1 {
		t.Errorf("Fanout(b) = %g, want 1", got)
	}
	if got := ts.Fanout("c"); got != 1 {
		t.Errorf("Fanout on zero distinct = %g, want 1", got)
	}
	if got := ts.Fanout("unknown"); got != 1 {
		t.Errorf("Fanout(unknown) = %g, want 1", got)
	}
	empty := TableStats{}
	if got := empty.Fanout("a"); got != 1 {
		t.Errorf("Fanout on empty relation = %g, want 1", got)
	}
	// Fanout never reports < 1 even if distinct > rows (stale stats).
	weird := TableStats{Rows: 5, Distinct: map[string]int64{"a": 50}}
	if got := weird.Fanout("a"); got != 1 {
		t.Errorf("Fanout with distinct>rows = %g, want 1", got)
	}
}

func TestStoreAndTables(t *testing.T) {
	s := New()
	s.Set("orders", TableStats{Rows: 10, Distinct: map[string]int64{"custkey": 5}})
	s.Set("customer", TableStats{Rows: 3})
	if got := s.Fanout("orders", "custkey"); got != 2 {
		t.Errorf("Fanout = %g", got)
	}
	if got := s.Fanout("ghost", "x"); got != 1 {
		t.Errorf("Fanout on unknown table = %g", got)
	}
	if ts, ok := s.Get("orders"); !ok || ts.Rows != 10 {
		t.Error("Get failed")
	}
	if _, ok := s.Get("ghost"); ok {
		t.Error("Get(ghost) should miss")
	}
	tables := s.Tables()
	if len(tables) != 2 || tables[0] != "customer" {
		t.Errorf("Tables = %v", tables)
	}
}

func TestCollect(t *testing.T) {
	schema := types.NewSchema(
		types.Column{Name: "k", Kind: types.KindInt},
		types.Column{Name: "g", Kind: types.KindInt},
	)
	var tuples []types.Tuple
	for i := int64(0); i < 12; i++ {
		tuples = append(tuples, types.Tuple{types.Int(i), types.Int(i % 3)})
	}
	ts, err := Collect(schema, tuples)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Rows != 12 || ts.Distinct["k"] != 12 || ts.Distinct["g"] != 3 {
		t.Errorf("Collect = %+v", ts)
	}
	if got := ts.Fanout("g"); got != 4 {
		t.Errorf("Fanout(g) = %g, want 4", got)
	}
	if _, err := Collect(schema, []types.Tuple{{types.Int(1)}}); err == nil {
		t.Error("arity mismatch should fail")
	}
}
