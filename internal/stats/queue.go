// Queue counters: how the async maintenance queue is doing. The enqueue
// path records deferred statements and admission-control rejections; the
// epoch flusher records, per epoch, how many raw deltas compaction netted
// away and what the batched apply flushed.
package stats

import (
	"sync"
	"time"
)

// QueueCounters accumulates async-maintenance-queue metrics. Safe for
// concurrent use. Gauges (depth, watermark, lag) live on the queue itself
// and are merged into QueueSnapshot by the cluster's Metrics reader.
type QueueCounters struct {
	mu            sync.Mutex
	enqueued      int64
	tuplesIn      int64
	overloads     int64
	epochs        int64
	cancelled     int64
	tuplesFlushed int64
}

// NewQueueCounters returns zeroed counters.
func NewQueueCounters() *QueueCounters { return &QueueCounters{} }

// RecordEnqueue counts one deferred statement of n delta tuples.
func (q *QueueCounters) RecordEnqueue(n int) {
	q.mu.Lock()
	q.enqueued++
	q.tuplesIn += int64(n)
	q.mu.Unlock()
}

// RecordOverload counts one statement shed (or blocked) by admission
// control.
func (q *QueueCounters) RecordOverload() {
	q.mu.Lock()
	q.overloads++
	q.mu.Unlock()
}

// RecordEpoch counts one flushed epoch: rawTuples entered compaction,
// flushedTuples survived it; the difference is the cancelled work
// (insert/delete pairs netted out, repeated keys collapsed).
func (q *QueueCounters) RecordEpoch(rawTuples, flushedTuples int) {
	q.mu.Lock()
	q.epochs++
	q.cancelled += int64(rawTuples - flushedTuples)
	q.tuplesFlushed += int64(flushedTuples)
	q.mu.Unlock()
}

// Reset zeroes all counters.
func (q *QueueCounters) Reset() {
	q.mu.Lock()
	q.enqueued, q.tuplesIn, q.overloads = 0, 0, 0
	q.epochs, q.cancelled, q.tuplesFlushed = 0, 0, 0
	q.mu.Unlock()
}

// Snapshot returns a copy of the counters (gauges zero; the cluster's
// Metrics reader fills them from the live queue).
func (q *QueueCounters) Snapshot() QueueSnapshot {
	q.mu.Lock()
	defer q.mu.Unlock()
	return QueueSnapshot{
		DeltasEnqueued:  q.enqueued,
		TuplesEnqueued:  q.tuplesIn,
		Overloads:       q.overloads,
		EpochsFlushed:   q.epochs,
		DeltasCancelled: q.cancelled,
		TuplesFlushed:   q.tuplesFlushed,
	}
}

// QueueSnapshot is a point-in-time copy of the queue counters plus the
// queue's gauges.
type QueueSnapshot struct {
	// DeltasEnqueued counts deferred statements; TuplesEnqueued their
	// delta tuples.
	DeltasEnqueued int64
	TuplesEnqueued int64
	// Overloads counts statements refused (ErrOverload) or stalled by
	// admission control.
	Overloads int64
	// EpochsFlushed counts completed flush epochs; DeltasCancelled the
	// tuples compaction netted away before they cost any maintenance
	// work; TuplesFlushed the tuples that reached the pipeline.
	EpochsFlushed   int64
	DeltasCancelled int64
	TuplesFlushed   int64
	// QueueDepth is the current number of pending deferred statements
	// (gauge). Watermark is the last completed epoch number (gauge);
	// WatermarkLag the age of the oldest pending entry (gauge, zero when
	// the queue is empty).
	QueueDepth   int
	Watermark    uint64
	WatermarkLag time.Duration
}

// CancelRate returns DeltasCancelled / TuplesEnqueued, or 0 with no
// enqueued tuples — the fraction of deferred work compaction eliminated.
func (s QueueSnapshot) CancelRate() float64 {
	if s.TuplesEnqueued == 0 {
		return 0
	}
	return float64(s.DeltasCancelled) / float64(s.TuplesEnqueued)
}

// Sub returns the delta s - o for counters; gauges keep s's current
// values (a gauge has no meaningful difference across a window).
func (s QueueSnapshot) Sub(o QueueSnapshot) QueueSnapshot {
	return QueueSnapshot{
		DeltasEnqueued:  s.DeltasEnqueued - o.DeltasEnqueued,
		TuplesEnqueued:  s.TuplesEnqueued - o.TuplesEnqueued,
		Overloads:       s.Overloads - o.Overloads,
		EpochsFlushed:   s.EpochsFlushed - o.EpochsFlushed,
		DeltasCancelled: s.DeltasCancelled - o.DeltasCancelled,
		TuplesFlushed:   s.TuplesFlushed - o.TuplesFlushed,
		QueueDepth:      s.QueueDepth,
		Watermark:       s.Watermark,
		WatermarkLag:    s.WatermarkLag,
	}
}
