// Replication counters: what the K-way fragment replication layer is
// doing. The write path records mirrored deliveries; the failure path
// records follower evictions, node failovers and the slots they promoted;
// repair records re-replication rounds and the slots they restored.
package stats

import "sync"

// ReplCounters accumulates replication metrics. Safe for concurrent use.
type ReplCounters struct {
	mu             sync.Mutex
	mirrors        int64
	mirroredTuples int64
	evictions      int64
	failovers      int64
	promotedSlots  int64
	failoverReads  int64
	repairs        int64
	repairedSlots  int64
}

// NewReplCounters returns zeroed counters.
func NewReplCounters() *ReplCounters { return &ReplCounters{} }

// RecordMirror counts one mirrored write delivery of n tuples/entries.
func (r *ReplCounters) RecordMirror(n int) {
	r.mu.Lock()
	r.mirrors++
	r.mirroredTuples += int64(n)
	r.mu.Unlock()
}

// RecordEviction counts one follower evicted after a failed mirror.
func (r *ReplCounters) RecordEviction() {
	r.mu.Lock()
	r.evictions++
	r.mu.Unlock()
}

// RecordFailover counts one node failover that promoted n slots.
func (r *ReplCounters) RecordFailover(n int) {
	r.mu.Lock()
	r.failovers++
	r.promotedSlots += int64(n)
	r.mu.Unlock()
}

// RecordFailoverRead counts one read served complete only because a
// failover healed the routing first.
func (r *ReplCounters) RecordFailoverRead() {
	r.mu.Lock()
	r.failoverReads++
	r.mu.Unlock()
}

// RecordRepair counts one re-replication round that restored n
// slot-replicas.
func (r *ReplCounters) RecordRepair(n int) {
	r.mu.Lock()
	r.repairs++
	r.repairedSlots += int64(n)
	r.mu.Unlock()
}

// Reset zeroes all counters.
func (r *ReplCounters) Reset() {
	r.mu.Lock()
	r.mirrors, r.mirroredTuples, r.evictions = 0, 0, 0
	r.failovers, r.promotedSlots, r.failoverReads = 0, 0, 0
	r.repairs, r.repairedSlots = 0, 0
	r.mu.Unlock()
}

// Snapshot returns a copy of the counters.
func (r *ReplCounters) Snapshot() ReplSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	return ReplSnapshot{
		Mirrors:        r.mirrors,
		MirroredTuples: r.mirroredTuples,
		Evictions:      r.evictions,
		Failovers:      r.failovers,
		PromotedSlots:  r.promotedSlots,
		FailoverReads:  r.failoverReads,
		Repairs:        r.repairs,
		RepairedSlots:  r.repairedSlots,
	}
}

// ReplSnapshot is a point-in-time copy of the replication counters.
type ReplSnapshot struct {
	// Mirrors counts mirrored write deliveries to follower shadows;
	// MirroredTuples the tuples/entries they carried.
	Mirrors        int64
	MirroredTuples int64
	// Evictions counts followers dropped from a slot's replica set after a
	// mirror delivery failed (the replica is stale until repaired).
	Evictions int64
	// Failovers counts node failovers; PromotedSlots the slots whose
	// ownership moved to a surviving follower.
	Failovers     int64
	PromotedSlots int64
	// FailoverReads counts reads that triggered a failover to stay
	// complete.
	FailoverReads int64
	// Repairs counts ReplicateRepair rounds; RepairedSlots the
	// slot-replicas they restored.
	Repairs       int64
	RepairedSlots int64
}

// Sub returns the delta s - o.
func (s ReplSnapshot) Sub(o ReplSnapshot) ReplSnapshot {
	return ReplSnapshot{
		Mirrors:        s.Mirrors - o.Mirrors,
		MirroredTuples: s.MirroredTuples - o.MirroredTuples,
		Evictions:      s.Evictions - o.Evictions,
		Failovers:      s.Failovers - o.Failovers,
		PromotedSlots:  s.PromotedSlots - o.PromotedSlots,
		FailoverReads:  s.FailoverReads - o.FailoverReads,
		Repairs:        s.Repairs - o.Repairs,
		RepairedSlots:  s.RepairedSlots - o.RepairedSlots,
	}
}
