package cluster

import (
	"fmt"
	"sort"

	"joinview/internal/netsim"
	"joinview/internal/node"
	"joinview/internal/txn"
	"joinview/internal/wal"
)

// This file is the coordinator side of the durability layer: presumed-abort
// two-phase commit around each DML statement, and crash/restart recovery
// driven from the nodes' write-ahead logs.
//
// Protocol per statement (Durability mode):
//
//  1. beginStmt assigns a transaction id; every mutating sub-request the
//     statement sends is stamped with it (Seq.TID) and redo-logged at the
//     receiving node, which becomes a participant.
//  2. On success, commitStmt sends Prepare to every participant (each
//     forces its log — its yes vote), then forces a COMMIT record to the
//     coordinator's own log: the commit point. Decide{Commit:true} then
//     fans out lazily; a lost decision only costs the restarted node a
//     query against the coordinator's log.
//  3. On failure, the coordinator's compensations run first (stamped with
//     the same TID, so they are redo-logged too and the log algebra nets
//     to zero), then Decide{Commit:false} tells live participants to
//     forget the transaction. Nothing is logged at the coordinator:
//     absence of a decision IS the abort decision (presumed abort).
//
// A participant that crashes mid-protocol restarts from its checkpoint +
// log tail and reports its undecided transactions; Recover resolves each
// against the coordinator's decision log — Decide{Commit:true} if a COMMIT
// record exists, ResolveAbort (node-local inverse replay) otherwise.

// beginStmt opens a two-phase-commit scope for one statement, returning
// its transaction id (0 when durability is off: the legacy
// compensation-only protocol).
func (c *Cluster) beginStmt() uint64 {
	if !c.cfg.Durability {
		return 0
	}
	tid := c.tids.Add(1)
	c.pmu.Lock()
	c.parts = map[int]bool{}
	c.pmu.Unlock()
	c.curTID.Store(tid)
	return tid
}

// addParticipant records that the current transaction sent mutating work
// to a node. Conservative: registered before delivery, so even an
// uncertain outcome keeps the node in the commit protocol.
func (c *Cluster) addParticipant(n int) {
	c.pmu.Lock()
	c.parts[n] = true
	c.pmu.Unlock()
}

// takeParticipants returns and clears the current participant set, sorted.
func (c *Cluster) takeParticipants() []int {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	out := make([]int, 0, len(c.parts))
	for n := range c.parts {
		out = append(out, n)
	}
	c.parts = map[int]bool{}
	sort.Ints(out)
	return out
}

// logDecision forces a COMMIT record for the transaction to the
// coordinator's log — the commit point of two-phase commit. A flush-epoch
// group's statement carries its FlushCommit tag on the record (Req), so
// the group's commit point doubles as its durable done marker.
func (c *Cluster) logDecision(tid uint64) {
	rec := wal.Record{Kind: wal.KindCommit, TID: tid}
	if c.flushCommitTag != nil {
		rec.Req = *c.flushCommitTag
	}
	c.coordLog.Append(rec)
	c.coordLog.Force()
	c.pmu.Lock()
	c.decided[tid] = true
	c.pmu.Unlock()
}

// runStmtTagged runs one statement whose commit record carries the given
// FlushCommit tag. The tag travels through a plain cluster field: it is
// only set in Durability mode, where statements execute serially under
// the global lock, so there is never a concurrent untagged statement to
// race with.
func (c *Cluster) runStmtTagged(tag wal.FlushCommit, body func(tx *txn.Txn) error) error {
	if c.cfg.Durability {
		c.flushCommitTag = &tag
		defer func() { c.flushCommitTag = nil }()
	}
	return c.runStmt(body)
}

// committedTID reports whether the coordinator decided commit for the
// transaction. Under presumed abort, false means abort.
func (c *Cluster) committedTID(tid uint64) bool {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	return c.decided[tid]
}

// Decisions returns the transaction ids the coordinator has committed, in
// ascending order (inspection and tests).
func (c *Cluster) Decisions() []uint64 {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	out := make([]uint64, 0, len(c.decided))
	for tid := range c.decided {
		out = append(out, tid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// runStmt executes body as one atomically-committed statement: an undo
// scope for coordinator-side compensation, wrapped — when durability is on
// — in presumed-abort two-phase commit.
func (c *Cluster) runStmt(body func(tx *txn.Txn) error) error {
	tid := c.beginStmt()
	var tx txn.Txn
	if err := body(&tx); err != nil {
		if rbErr := c.abortStmt(tid, &tx); rbErr != nil {
			return fmt.Errorf("%w (rollback also failed: %v)", err, rbErr)
		}
		return err
	}
	return c.commitStmt(tid, &tx)
}

// commitStmt drives phase one (Prepare at every participant) and, on
// unanimous yes, the commit point and lazy decision fan-out. A failed
// prepare vetoes: the statement rolls back and aborts.
func (c *Cluster) commitStmt(tid uint64, tx *txn.Txn) error {
	if tid == 0 {
		tx.Commit()
		return nil
	}
	parts := c.takeParticipants()
	for _, p := range parts {
		if _, err := c.rawDeliver(p, node.Prepare{TID: tid}); err != nil {
			// Re-register the participants so the abort path can still
			// reach them, and keep the TID stamped for the compensations.
			for _, q := range parts {
				c.addParticipant(q)
			}
			if rbErr := c.abortStmt(tid, tx); rbErr != nil {
				return fmt.Errorf("cluster: prepare failed at node %d: %w (rollback also failed: %v)", p, err, rbErr)
			}
			return fmt.Errorf("cluster: prepare failed at node %d: %w", p, err)
		}
	}
	c.logDecision(tid)
	c.curTID.Store(0)
	for _, p := range parts {
		// Lazy and best-effort: a participant that misses the decision
		// resolves it from the coordinator's log at recovery.
		_, _ = c.rawDeliver(p, node.Decide{TID: tid, Commit: true})
	}
	tx.Commit()
	return nil
}

// abortStmt rolls the statement back (compensations run under the same
// TID, so they are redo-logged at the nodes) and tells live participants
// to forget the transaction. Per presumed abort, the coordinator logs
// nothing: a restarted participant that finds no decision aborts locally.
func (c *Cluster) abortStmt(tid uint64, tx *txn.Txn) error {
	rbErr := tx.Rollback()
	if tid == 0 {
		return rbErr
	}
	c.curTID.Store(0)
	for _, p := range c.takeParticipants() {
		if c.isDown(p) {
			continue // resolved by presumption at the node's recovery
		}
		_, _ = c.rawDeliver(p, node.Decide{TID: tid, Commit: false})
	}
	return rbErr
}

// Checkpoint takes a checkpoint on every live node (fragments, global
// indexes, dedup cache), truncating each node's log up to the image. It
// returns the per-node results; down nodes are skipped (their checkpoint
// happens after recovery).
func (c *Cluster) Checkpoint() ([]node.CheckpointResult, error) {
	if !c.cfg.Durability {
		return nil, fmt.Errorf("cluster: checkpoint requires Durability mode")
	}
	h := c.lockGlobal()
	defer h.Release()
	out := make([]node.CheckpointResult, c.NumNodes())
	for n := 0; n < c.NumNodes(); n++ {
		if c.isDown(n) {
			continue
		}
		resp, err := c.rawDeliver(n, node.CheckpointReq{})
		if err != nil {
			return out, fmt.Errorf("cluster: checkpoint at node %d: %w", n, err)
		}
		out[n] = resp.(node.CheckpointResult)
	}
	return out, nil
}

// CrashNode fail-stops a durable node: the fault layer starts refusing
// deliveries to it and its volatile state (fragments, indexes, dedup
// cache) is wiped, leaving only the write-ahead log and checkpoint. The
// wipe travels over the pre-fault transport, since the fault layer now
// refuses the node. Only meaningful in Durability mode — without a log,
// wiping a node would be unrecoverable data loss.
func (c *Cluster) CrashNode(n int) error {
	if !c.cfg.Durability {
		return fmt.Errorf("cluster: CrashNode requires Durability mode (non-durable crashes keep state; use the fault injector)")
	}
	if n < 0 || n >= c.NumNodes() {
		return fmt.Errorf("cluster: node %d out of range [0,%d)", n, c.NumNodes())
	}
	if c.cfg.Faults != nil {
		c.cfg.Faults.Crash(n)
	}
	c.noteDown(n)
	if _, err := c.base.Call(netsim.Coordinator, n, node.CrashReq{}); err != nil {
		return fmt.Errorf("cluster: crashing node %d: %w", n, err)
	}
	return nil
}

// RestartNode brings a crashed durable node back: the fault layer resumes
// deliveries and the node reloads its last checkpoint and replays its log
// tail. The returned RestartResult lists transactions still in doubt;
// Recover resolves them (restart + resolution in one call).
func (c *Cluster) RestartNode(n int) (node.RestartResult, error) {
	h := c.lockGlobal()
	defer h.Release()
	return c.restartNodeLocked(n)
}

func (c *Cluster) restartNodeLocked(n int) (node.RestartResult, error) {
	if !c.cfg.Durability {
		return node.RestartResult{}, fmt.Errorf("cluster: RestartNode requires Durability mode")
	}
	if n < 0 || n >= c.NumNodes() {
		return node.RestartResult{}, fmt.Errorf("cluster: node %d out of range [0,%d)", n, c.NumNodes())
	}
	if c.cfg.Faults != nil {
		c.cfg.Faults.Restart(n)
	}
	c.breakerReset(n)
	resp, err := c.rawDeliver(n, node.RestartReq{})
	if err != nil {
		return node.RestartResult{}, fmt.Errorf("cluster: restarting node %d: %w", n, err)
	}
	return resp.(node.RestartResult), nil
}

// RecoveryReport accounts what one Recover call did and what it cost.
type RecoveryReport struct {
	Node int
	// Mode is "replay" (checkpoint + log tail, Durability mode) or
	// "rebuild" (derived fragments recomputed from base relations).
	Mode string
	// CheckpointPages and LogPagesRead are the durable-image and log-tail
	// pages the replay path read; RecordsReplayed the redo records it
	// re-applied. Zero in rebuild mode.
	CheckpointPages int
	LogPagesRead    int
	RecordsReplayed int
	// RepairsReplayed counts drained repair-queue entries (rebuild mode).
	RepairsReplayed int
	// InDoubtResolved counts transactions settled during recovery:
	// Committed learned a commit decision, Aborted were undone locally by
	// presumption.
	InDoubtResolved int
	Committed       int
	Aborted         int
	// PageIOs is the recovering node's metered I/O during recovery (log
	// and checkpoint reads plus re-applied operations) in replay mode, or
	// the estimated pages scanned and written by the full rebuild (the
	// rebuild path reuses unmetered DDL backfill, so it is tallied
	// explicitly).
	PageIOs int64
	// Messages is the interconnect traffic recovery generated.
	Messages int64
}

// recoverDurable is Recover's Durability-mode path: restart the node from
// its own durable state, then resolve its in-doubt transactions against
// the coordinator's decision log. Per-node: no other node is touched, no
// derived rebuild happens, and recovery of different nodes is independent.
func (c *Cluster) recoverDurable(n int) (RecoveryReport, error) {
	rep := RecoveryReport{Node: n, Mode: "replay"}
	ioBefore := c.nodes[n].Meter().Snapshot()
	netBefore := c.tr.Stats()
	res, err := c.restartNodeLocked(n)
	if err != nil {
		return rep, err
	}
	rep.CheckpointPages = res.CheckpointPages
	rep.LogPagesRead = res.LogPagesRead
	rep.RecordsReplayed = res.RecordsReplayed
	for _, tid := range res.InDoubt {
		if c.committedTID(tid) {
			if _, err := c.rawDeliver(n, node.Decide{TID: tid, Commit: true}); err != nil {
				return rep, fmt.Errorf("cluster: delivering commit decision for tid %d to node %d: %w", tid, n, err)
			}
			rep.Committed++
		} else {
			if _, err := c.rawDeliver(n, node.ResolveAbort{TID: tid}); err != nil {
				return rep, fmt.Errorf("cluster: aborting in-doubt tid %d at node %d: %w", tid, n, err)
			}
			rep.Aborted++
		}
		rep.InDoubtResolved++
	}
	c.dmu.Lock()
	delete(c.downNodes, n)
	delete(c.repairs, n)
	delete(c.needRebuild, n)
	c.dmu.Unlock()
	rep.PageIOs = c.nodes[n].Meter().Snapshot().Sub(ioBefore).IOs()
	rep.Messages = c.tr.Stats().Messages - netBefore.Messages
	return rep, nil
}
