// Package cluster assembles the parallel RDBMS: L data-server nodes, a
// hash-partitioning map, an interconnect, the catalog, statistics and the
// view-maintenance machinery. It exposes the DDL/DML surface the
// experiments and the public joinview package drive.
package cluster

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"joinview/internal/buffer"
	"joinview/internal/catalog"
	"joinview/internal/fault"
	"joinview/internal/hashpart"
	"joinview/internal/lockmgr"
	"joinview/internal/maintain"
	"joinview/internal/mplan"
	"joinview/internal/netsim"
	netsimtcp "joinview/internal/netsim/tcp"
	"joinview/internal/node"
	"joinview/internal/stats"
	"joinview/internal/storage"
	"joinview/internal/types"
	"joinview/internal/wal"
)

// Config parameterizes a cluster.
type Config struct {
	// Nodes is the number of data-server nodes L (required, >= 1).
	Nodes int
	// PageRows is tuples per page (storage.DefaultPageRows if zero);
	// page counts feed the scan/sort cost accounting.
	PageRows int
	// MemPages is the per-node sort memory M in pages (default 10, the
	// paper's value).
	MemPages int
	// UseChannels selects the goroutine-per-node channel transport
	// instead of the deterministic in-process transport.
	UseChannels bool
	// Algo is the default join algorithm for maintenance probes
	// (node.AlgoAuto applies the §3.2 index/sort-merge crossover).
	Algo node.Algo
	// BufferPages attaches a per-node buffer pool of that many pages
	// (0 disables caching simulation). With a pool, Metrics additionally
	// reports physical I/O (misses), reproducing the §3.3 buffering
	// effect the paper observed on Teradata.
	BufferPages int
	// NetLatency delays every inter-node message by this wall-clock
	// duration (channel transport only): the SEND cost the analytical
	// model deliberately neglects, made tunable.
	NetLatency time.Duration
	// CallTimeout bounds every transport call (channel transport only):
	// a stuck node yields netsim.ErrTimeout instead of hanging the
	// coordinator. Zero means unbounded.
	CallTimeout time.Duration
	// RetryAttempts is the maximum delivery attempts per call for
	// transient failures (injected faults, timeouts). Default 3; with no
	// faults and no timeout configured, retries never trigger.
	RetryAttempts int
	// RetryBackoff is the base sleep between retry attempts, doubling per
	// attempt. Zero disables sleeping (the deterministic chaos tests keep
	// it zero so storms run at full speed).
	RetryBackoff time.Duration
	// RetryBackoffMax caps the exponential backoff (default 1s when
	// RetryBackoff is set): without a cap the doubling both overflows at
	// high attempt counts and grows sleeps past any useful bound.
	RetryBackoffMax time.Duration
	// RetrySeed seeds the deterministic backoff jitter (default 1). Jitter
	// desynchronizes concurrent retry loops; seeding keeps runs repeatable.
	RetrySeed int64
	// Faults installs a fault injector between the coordinator and the
	// nodes: every delivery consults its schedule. Nil disables injection.
	Faults *fault.Injector
	// Durability attaches a write-ahead log and checkpoint store to every
	// node and switches cross-node statement atomicity from coordinator
	// compensation alone to presumed-abort two-phase commit. A node can
	// then fail-stop (CrashNode), losing all volatile state, and recover
	// from its own checkpoint + log tail (RestartNode/Recover) instead of
	// a full derived-fragment rebuild.
	Durability bool
	// CheckpointEvery makes each durable node take an automatic checkpoint
	// after that many logged redo records (0 = manual checkpoints only).
	CheckpointEvery int
	// ScatterWorkers bounds how many per-node calls one maintenance
	// fan-out keeps in flight on the channel transport (0 = one per
	// destination node). Ignored by the Direct transport, which always
	// dispatches serially.
	ScatterWorkers int
	// SerialDML restores the seed's execution model on the channel
	// transport: one global statement lock and serial per-node dispatch.
	// The concurrent-session benchmarks use it as the baseline the
	// scatter-gather dispatcher and the table-level lock manager are
	// measured against.
	SerialDML bool
	// BreakerThreshold enables the per-node circuit breaker: after that
	// many consecutive failed delivery attempts (exhausted retry budgets
	// or timeouts) against one node, the node is marked suspect and every
	// further call to it fails fast with ErrSuspect instead of burning the
	// full retry/backoff budget per statement. Recovery (Recover,
	// RestartNode) closes the breaker. Zero disables the breaker (the
	// deterministic chaos schedules assume every delivery is attempted).
	BreakerThreshold int
	// DisablePlanCache makes every DML statement compile its maintenance
	// plan from scratch instead of reusing the (table, op)-keyed plan
	// cache — the per-statement planning model the pipeline replaced, kept
	// as an escape hatch and for cache-effect measurements. Every lookup
	// then counts as a miss.
	DisablePlanCache bool
	// DisablePlanSharing makes every view stage execute its full delta-join
	// chain independently even when the compiled plan found common chain
	// prefixes across views — the per-view execution model the shared
	// maintenance DAG replaced, kept as an escape hatch and as the baseline
	// for sharing measurements. Identical view contents, more I/O.
	DisablePlanSharing bool
	// AsyncMaintenance defers DML maintenance into the group-commit queue
	// (asyncq.go): a statement validates, resolves its victims against the
	// effective state and enqueues its logical delta; a flush epoch later
	// compacts the queue and drives one batched pipeline run per table.
	// Off by default — synchronous mode is byte-identical to the seed.
	AsyncMaintenance bool
	// EpochSize triggers a background flush whenever the queue holds at
	// least this many deferred statements (0 = no depth trigger).
	EpochSize int
	// FlushInterval triggers a background flush on this wall-clock period
	// (0 = no timer). With both EpochSize and FlushInterval zero, only
	// explicit Flush/ReadFresh/DDL calls drain the queue.
	FlushInterval time.Duration
	// MaxQueueDepth bounds the pending-statement count; at the bound
	// admission control sheds new writers with ErrOverload (or stalls
	// them, with OverloadBlock). 0 = unbounded.
	MaxQueueDepth int
	// MaxStaleness bounds the age of the oldest pending entry the same
	// way. 0 = unbounded.
	MaxStaleness time.Duration
	// OverloadBlock makes overloaded writers wait for the flusher instead
	// of failing with ErrOverload.
	OverloadBlock bool
	// LockedReads disables MVCC snapshot reads: queries and scans fall
	// back to taking shared lockmgr claims on the relations they read,
	// queueing behind concurrent writers (the pre-MVCC behavior). Kept as
	// the measured baseline for the hotpath benchmark and as an escape
	// hatch.
	LockedReads bool
	// UseTCP runs the interconnect over real loopback TCP sockets with
	// gob-encoded envelopes (internal/netsim/tcp) instead of channels or
	// direct calls — the same Transport contract, so every cluster code
	// path is unchanged. Mutually exclusive with UseChannels, NetLatency,
	// CallTimeout and fault injection (errors are flattened to strings on
	// the wire, which the fault machinery cannot round-trip).
	UseTCP bool
	// ReplicationFactor keeps K synchronous copies of every hash slot's
	// rows: the primary copy in the owner's fragments plus K-1 follower
	// copies in same-node shadow fragments at the slot's replica nodes.
	// Every base/AR/GI/view write fans out to the followers inside the
	// statement's atomicity scope; a node failure promotes its slots to a
	// surviving follower, so DML keeps committing and reads stay complete
	// with up to K-1 nodes down. 0 or 1 disables replication (the seed's
	// behavior, byte-identical). Requires 2 <= K <= Nodes otherwise.
	ReplicationFactor int
}

// Cluster is a running parallel RDBMS instance.
type Cluster struct {
	cfg   Config
	cat   *catalog.Catalog
	st    *stats.Stats
	part  *hashpart.Partitioner
	nodes []*node.DataNode
	// inner is the raw delivery layer (Direct/Chan, optionally wrapped by
	// the fault injector); base is the same layer before fault wrapping
	// (crash/restart control must reach a node the fault layer refuses to
	// talk to); tr is the resilient transport over inner that all cluster
	// and maintenance code uses.
	inner netsim.Transport
	base  netsim.Transport
	tr    netsim.Transport
	env   maintain.Env

	// seq numbers mutating sub-requests for idempotent retry; retries
	// counts re-deliveries for Metrics.
	seq     atomic.Uint64
	retries atomic.Int64

	// rng drives the deterministic retry-backoff jitter.
	rngMu sync.Mutex
	rng   *rand.Rand

	// Two-phase commit state (Durability mode): tids numbers transactions,
	// curTID is the statement in progress (0 between statements; mutating
	// sub-requests are stamped with it), parts collects the nodes the
	// current statement touched, coordLog is the coordinator's forced
	// decision log and decided its logical content, coordMeter the
	// coordinator's own I/O meter.
	tids       atomic.Uint64
	curTID     atomic.Uint64
	pmu        sync.Mutex
	parts      map[int]bool
	coordMeter *storage.Meter
	coordLog   *wal.Log
	decided    map[uint64]bool

	// dmu guards the degraded-mode state: nodes considered down, queued
	// repair work per node, and nodes awaiting a derived-fragment rebuild.
	dmu         sync.Mutex
	downNodes   map[int]bool
	repairs     map[int][]repair
	needRebuild map[int]bool

	// lm is the coordinator's table-level lock manager, standing in for
	// the paper's transaction-level locking. Statements lock the tables
	// and derived structures they touch, so non-conflicting statements
	// from concurrent sessions run in parallel on the channel transport;
	// DDL, recovery and every serial execution mode take the manager's
	// global exclusive lock instead (see locks.go).
	lm *lockmgr.Manager

	// tempSeq names temporary query fragments uniquely across concurrent
	// QueryJoin calls.
	tempSeq atomic.Uint64

	// nmu guards the nodes slice against concurrent growth (AddNode runs
	// under the global exclusive lock, but Metrics readers take no locks);
	// nNodes mirrors len(nodes) for lock-free hot-path reads.
	nmu    sync.RWMutex
	nNodes atomic.Int32

	// Elasticity state: mig is the in-flight migration (nil when idle),
	// lastMig the most recent completed or aborted migration's cost
	// accounting, migSeq numbers migrations across the cluster's life,
	// retired marks decommissioned nodes (they stay addressable but own
	// no hash slots).
	migMu   sync.RWMutex
	mig     *migration
	lastMig *MigrationStats
	migSeq  atomic.Uint64
	retired map[int]bool

	// Circuit-breaker state (Config.BreakerThreshold): consecutive
	// delivery failures per node, and the open set.
	brkMu     sync.Mutex
	brkConsec map[int]int
	brkOpen   map[int]bool

	// mcache holds the compiled maintenance plans of the write path,
	// keyed by (table, op) and invalidated by catalog-version or
	// statistics drift; pstats counts its hits/misses and the pipeline's
	// per-stage costs.
	mcache *mplan.Cache
	pstats *stats.PipelineCounters

	// Async-maintenance state (asyncq.go): aq is the deferred-delta queue,
	// qstats its counters, flushMu serializes flush epochs (manual Flush
	// vs the background flusher), flusherWG tracks the flusher goroutine,
	// flushCommitTag carries the current flush group's identity into
	// logDecision (written only in Durability mode, where statements are
	// serial).
	aq             *asyncQueue
	qstats         *stats.QueueCounters
	flushMu        sync.Mutex
	flusherWG      sync.WaitGroup
	flushCommitTag *wal.FlushCommit

	// Replication state (Config.ReplicationFactor > 1): failedOver marks
	// down nodes whose slots were already promoted to surviving followers
	// (the cluster serves complete reads and commits DML around them),
	// staleRepl marks followers evicted from the write fan-out after a
	// failed mirror delivery (skipped until re-replicated), repairSess is
	// the in-flight ReplicateRepair round (nil when idle), rstats counts
	// mirror/failover/repair activity. All guarded by rmu.
	rmu        sync.Mutex
	failedOver map[int]bool
	staleRepl  map[int]bool
	repairSess *replRepair
	rstats     *stats.ReplCounters

	// mvcc is the snapshot-read epoch tracker (mvcc.go), nil when MVCC is
	// off (serial modes, LockedReads). readFence is the one writer-side
	// barrier snapshot readers observe besides the global lock: the
	// migration cutover holds it exclusively while it rewires live
	// fragments outside any epoch's version log.
	mvcc      *epochTracker
	readFence sync.RWMutex

	// lean enables the allocation-lean delivery fast path: no fault
	// injection, durability, call timeout or circuit breaker means a call
	// either succeeds on the first attempt or fails the statement, so the
	// sequence-number envelope, retry loop and in-doubt machinery are
	// skipped entirely (resilience.go).
	lean bool
}

// New builds a cluster. It returns an error for a non-positive node count.
func New(cfg Config) (*Cluster, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 node, got %d", cfg.Nodes)
	}
	if cfg.PageRows <= 0 {
		cfg.PageRows = storage.DefaultPageRows
	}
	if cfg.MemPages <= 0 {
		cfg.MemPages = 10
	}
	if cfg.RetryAttempts <= 0 {
		cfg.RetryAttempts = 3
	}
	if cfg.RetryBackoffMax <= 0 {
		cfg.RetryBackoffMax = time.Second
	}
	if cfg.RetrySeed == 0 {
		cfg.RetrySeed = 1
	}
	if cfg.ReplicationFactor > 1 && cfg.ReplicationFactor > cfg.Nodes {
		return nil, fmt.Errorf("cluster: ReplicationFactor %d exceeds node count %d", cfg.ReplicationFactor, cfg.Nodes)
	}
	if cfg.ReplicationFactor < 0 {
		return nil, fmt.Errorf("cluster: negative ReplicationFactor %d", cfg.ReplicationFactor)
	}
	c := &Cluster{
		cfg:         cfg,
		cat:         catalog.New(),
		st:          stats.New(),
		part:        hashpart.New(cfg.Nodes),
		rng:         rand.New(rand.NewSource(cfg.RetrySeed)),
		downNodes:   map[int]bool{},
		repairs:     map[int][]repair{},
		needRebuild: map[int]bool{},
		parts:       map[int]bool{},
		coordMeter:  &storage.Meter{},
		decided:     map[uint64]bool{},
		lm:          lockmgr.New(),
		mcache:      mplan.NewCache(),
		pstats:      stats.NewPipelineCounters(),
		retired:     map[int]bool{},
		brkConsec:   map[int]int{},
		brkOpen:     map[int]bool{},
		aq:          newAsyncQueue(),
		qstats:      stats.NewQueueCounters(),
		failedOver:  map[int]bool{},
		staleRepl:   map[int]bool{},
		rstats:      stats.NewReplCounters(),
	}
	c.nNodes.Store(int32(cfg.Nodes))
	if cfg.ReplicationFactor > 1 {
		m, err := c.part.Map().WithReplicas(cfg.ReplicationFactor)
		if err != nil {
			return nil, err
		}
		m.Epoch++
		if err := c.part.Install(m); err != nil {
			return nil, err
		}
	}
	c.cat.SetPartitionMap(c.part.Map())
	c.coordLog = wal.NewLog(c.coordMeter, cfg.PageRows)
	handlers := make([]netsim.Handler, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		n := node.New(i, cfg.MemPages)
		if cfg.BufferPages > 0 {
			n.SetBufferPages(cfg.BufferPages)
		}
		if cfg.Durability {
			n.EnableDurability(cfg.PageRows, cfg.CheckpointEvery)
		}
		c.nodes = append(c.nodes, n)
		handlers[i] = n.Handler()
	}
	switch {
	case cfg.UseTCP:
		if cfg.UseChannels {
			return nil, fmt.Errorf("cluster: UseTCP and UseChannels are mutually exclusive")
		}
		if cfg.NetLatency > 0 || cfg.CallTimeout > 0 {
			return nil, fmt.Errorf("cluster: NetLatency/CallTimeout require the channel transport (UseChannels)")
		}
		if cfg.Faults != nil {
			return nil, fmt.Errorf("cluster: fault injection requires the channel or direct transport (TCP flattens errors to strings)")
		}
		tt, err := netsimtcp.New(handlers)
		if err != nil {
			return nil, err
		}
		c.inner = tt
	case cfg.UseChannels:
		c.inner = netsim.NewChanTimeout(handlers, cfg.NetLatency, cfg.CallTimeout)
	case cfg.NetLatency > 0:
		return nil, fmt.Errorf("cluster: NetLatency requires the channel transport (UseChannels)")
	case cfg.CallTimeout > 0:
		return nil, fmt.Errorf("cluster: CallTimeout requires the channel transport (UseChannels)")
	default:
		c.inner = netsim.NewDirect(handlers)
	}
	c.base = c.inner
	if cfg.Faults != nil {
		c.inner = fault.Wrap(c.inner, cfg.Faults)
	}
	c.tr = &resilientTransport{c: c}
	c.lean = cfg.Faults == nil && !cfg.Durability && cfg.CallTimeout == 0 &&
		cfg.BreakerThreshold <= 0
	if c.parallelDispatch() && !cfg.LockedReads {
		c.mvcc = newEpochTracker()
	}
	c.env = maintain.Env{
		T:        c.tr,
		Part:     c.part,
		Cat:      c.cat,
		Parallel: c.parallelDispatch(),
		Workers:  cfg.ScatterWorkers,
	}
	if c.mvccOn() {
		c.env.WriteEpoch = c.writeEpoch
		c.env.GCFloor = c.gcFloorFor
	}
	if cfg.AsyncMaintenance && (cfg.EpochSize > 0 || cfg.FlushInterval > 0) {
		c.startFlusher()
	}
	return c, nil
}

// Close stops the background flusher (pending deltas stay queued; a
// durable cluster replays them at recovery) and releases transport
// resources.
func (c *Cluster) Close() {
	c.stopFlusher()
	c.tr.Close()
}

// Catalog exposes the metadata store (read-mostly; DDL goes through the
// Create* methods).
func (c *Cluster) Catalog() *catalog.Catalog { return c.cat }

// Stats exposes the statistics store.
func (c *Cluster) Stats() *stats.Stats { return c.st }

// NumNodes returns L, the current node count (it grows when AddNode
// expands the cluster).
func (c *Cluster) NumNodes() int { return int(c.nNodes.Load()) }

// allNodes snapshots the node slice (it only ever grows; entries are
// immutable pointers).
func (c *Cluster) allNodes() []*node.DataNode {
	c.nmu.RLock()
	defer c.nmu.RUnlock()
	return c.nodes[:len(c.nodes):len(c.nodes)]
}

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Transport exposes the interconnect (message statistics, primarily).
func (c *Cluster) Transport() netsim.Transport { return c.tr }

// broadcast sends a request to every node, failing on the first error.
func (c *Cluster) broadcast(req any) error {
	_, err := c.tr.Broadcast(netsim.Coordinator, req)
	return err
}

// call sends a request to one node.
func (c *Cluster) call(to int, req any) (any, error) {
	return c.tr.Call(netsim.Coordinator, to, req)
}

// Metrics is a point-in-time reading of the cluster's cost counters.
type Metrics struct {
	// Node has one I/O counter snapshot per data-server node.
	Node []storage.Counts
	// Pool has one buffer-pool snapshot per node (zeros when pools are
	// disabled).
	Pool []buffer.Stats
	// Net is the interconnect's message statistics.
	Net netsim.Stats
	// Retries counts re-deliveries the coordinator performed for
	// transient failures (zero in fault-free runs).
	Retries int64
	// Coord is the coordinator's own I/O (the forced two-phase-commit
	// decision log; zero when durability is off).
	Coord storage.Counts
	// Pipeline is the maintenance pipeline's plan-cache and per-stage
	// counters (see stats.PipelineSnapshot).
	Pipeline stats.PipelineSnapshot
	// Queue is the async maintenance queue's counters and gauges (zeros
	// when AsyncMaintenance is off).
	Queue stats.QueueSnapshot
	// Repl is the replication layer's counters: mirrored writes, follower
	// evictions, failovers and repair rounds (zeros when
	// ReplicationFactor <= 1).
	Repl stats.ReplSnapshot
}

// TotalIOs is the paper's total workload TW: I/Os summed over all nodes.
func (m Metrics) TotalIOs() int64 {
	var sum int64
	for _, c := range m.Node {
		sum += c.IOs()
	}
	return sum
}

// MaxNodeIOs is the paper's response-time proxy: the maximum per-node I/O
// count (work the slowest node must complete).
func (m Metrics) MaxNodeIOs() int64 {
	var mx int64
	for _, c := range m.Node {
		if v := c.IOs(); v > mx {
			mx = v
		}
	}
	return mx
}

// PhysicalIOs sums buffer-pool misses over all nodes: the I/O a cached
// system actually performs. Zero when pools are disabled.
func (m Metrics) PhysicalIOs() int64 {
	var sum int64
	for _, p := range m.Pool {
		sum += p.Misses
	}
	return sum
}

// PoolHits sums buffer-pool hits over all nodes.
func (m Metrics) PoolHits() int64 {
	var sum int64
	for _, p := range m.Pool {
		sum += p.Hits
	}
	return sum
}

// Total sums the per-node counters.
func (m Metrics) Total() storage.Counts {
	var t storage.Counts
	for _, c := range m.Node {
		t = t.Add(c)
	}
	return t
}

// Sub subtracts an earlier snapshot, node by node.
func (m Metrics) Sub(o Metrics) Metrics {
	out := Metrics{
		Node: make([]storage.Counts, len(m.Node)),
		Pool: make([]buffer.Stats, len(m.Pool)),
	}
	// The earlier snapshot may predate an AddNode: missing nodes
	// subtract as zero.
	for i := range m.Node {
		if i < len(o.Node) {
			out.Node[i] = m.Node[i].Sub(o.Node[i])
		} else {
			out.Node[i] = m.Node[i]
		}
	}
	for i := range m.Pool {
		op := buffer.Stats{}
		if i < len(o.Pool) {
			op = o.Pool[i]
		}
		out.Pool[i] = buffer.Stats{
			Hits:      m.Pool[i].Hits - op.Hits,
			Misses:    m.Pool[i].Misses - op.Misses,
			Evictions: m.Pool[i].Evictions - op.Evictions,
		}
	}
	out.Net = netsim.Stats{
		Messages:   m.Net.Messages - o.Net.Messages,
		LocalCalls: m.Net.LocalCalls - o.Net.LocalCalls,
		Envelopes:  m.Net.Envelopes - o.Net.Envelopes,
	}
	out.Retries = m.Retries - o.Retries
	out.Coord = m.Coord.Sub(o.Coord)
	out.Pipeline = m.Pipeline.Sub(o.Pipeline)
	out.Queue = m.Queue.Sub(o.Queue)
	out.Repl = m.Repl.Sub(o.Repl)
	return out
}

// Metrics reads all node meters and the transport counters. Meters are
// atomic, so this is safe alongside the channel transport.
func (c *Cluster) Metrics() Metrics {
	nodes := c.allNodes()
	m := Metrics{
		Node:     make([]storage.Counts, len(nodes)),
		Pool:     make([]buffer.Stats, len(nodes)),
		Net:      c.tr.Stats(),
		Retries:  c.retries.Load(),
		Coord:    c.coordMeter.Snapshot(),
		Pipeline: c.pstats.Snapshot(),
		Queue:    c.qstats.Snapshot(),
		Repl:     c.rstats.Snapshot(),
	}
	w := c.Watermark()
	m.Queue.QueueDepth = w.Pending
	m.Queue.Watermark = w.Epoch
	m.Queue.WatermarkLag = w.Lag
	for i, n := range nodes {
		m.Node[i] = n.Meter().Snapshot()
		m.Pool[i] = n.PoolStatsSnapshot()
	}
	return m
}

// ResetMetrics zeroes every node meter, pool counter and the transport
// counters (cached pages stay resident — warm-cache windows measure the
// buffering effect). Experiments call it after DDL/loading so measurement
// windows start clean.
func (c *Cluster) ResetMetrics() {
	for _, n := range c.allNodes() {
		n.Meter().Reset()
		n.ResetPoolStats()
	}
	c.tr.ResetStats()
	c.retries.Store(0)
	c.coordMeter.Reset()
	c.pstats.Reset()
	c.qstats.Reset()
	c.rstats.Reset()
}

// RefreshStats recomputes exact statistics for the named table from its
// stored fragments (row count, per-column distinct counts).
func (c *Cluster) RefreshStats(table string) error {
	t, err := c.cat.Table(table)
	if err != nil {
		return err
	}
	rows, err := c.gather(table)
	if err != nil {
		return err
	}
	ts, err := stats.Collect(t.Schema, rows)
	if err != nil {
		return err
	}
	c.st.Set(table, ts)
	return nil
}

// gather collects every tuple of a fragment across all nodes, unmetered
// (verification, statistics, backfill input). It requires every node: a
// degraded cluster fails with a node-down error, so derived computations
// never silently run over partial inputs (degraded reads go through
// gatherPartial instead).
func (c *Cluster) gather(frag string) ([]types.Tuple, error) {
	resps, err := c.tr.Broadcast(netsim.Coordinator, node.AllRows{Frag: frag})
	if err != nil {
		return nil, err
	}
	var out []types.Tuple
	for _, r := range resps {
		out = append(out, r.(node.RowsResult).Tuples...)
	}
	return out, nil
}

// PartialError wraps ErrPartial with which nodes were skipped and how many
// hash slots their absence makes unreachable. errors.Is(err, ErrPartial)
// keeps matching it.
type PartialError struct {
	// Frag is the fragment the partial read was answered for.
	Frag string
	// Down lists the node ids skipped as unreachable (sorted).
	Down []int
	// Slots counts the hash slots owned by the down nodes: the share of
	// the key space the result is missing.
	Slots int
}

func (e *PartialError) Error() string {
	return fmt.Sprintf("%v: fragment %q: nodes %v down (%d slots unreachable)",
		ErrPartial, e.Frag, e.Down, e.Slots)
}

// Unwrap makes errors.Is(err, ErrPartial) hold.
func (e *PartialError) Unwrap() error { return ErrPartial }

// gatherPartial collects a fragment's tuples from the surviving nodes,
// returning a *PartialError (wrapping ErrPartial) alongside the rows when
// any node was skipped or unreachable. The rows are valid but incomplete.
func (c *Cluster) gatherPartial(frag string, req func() any) ([]types.Tuple, error) {
	var out []types.Tuple
	var skipped []int
	for n := 0; n < c.NumNodes(); n++ {
		resp, err := c.tr.Call(netsim.Coordinator, n, req())
		if err != nil {
			if _, down := fault.IsNodeDown(err); down {
				skipped = append(skipped, n)
				continue
			}
			return nil, err
		}
		out = append(out, resp.(node.RowsResult).Tuples...)
	}
	if len(skipped) > 0 {
		m := c.part.Map()
		slots := 0
		for _, n := range skipped {
			slots += len(m.SlotsOwnedBy(n))
		}
		return out, &PartialError{Frag: frag, Down: skipped, Slots: slots}
	}
	return out, nil
}

// readRows answers TableRows/ViewRows: a full broadcast when healthy, the
// explicit partial path when degraded. Under replication a degraded read
// first heals (promotes the down nodes' slots to surviving followers);
// once every down node is failed over the read is complete, not partial —
// the broadcast layer answers for the dead nodes with empty results, since
// their data now lives at the promoted followers.
func (c *Cluster) readRows(frag string) ([]types.Tuple, error) {
	// MVCC path: read the pinned committed snapshot — concurrent writers
	// never block this read and never leak a partial statement into it.
	if snap, sh, ok := c.beginSnapshotRead(frag); ok {
		defer c.endSnapshotRead(snap, sh)
		resps, err := c.tr.Broadcast(netsim.Coordinator, node.AllRows{Frag: frag, Epoch: snap.epoch(frag)})
		if err != nil {
			return nil, err
		}
		var out []types.Tuple
		for _, r := range resps {
			out = append(out, r.(node.RowsResult).Tuples...)
		}
		return out, nil
	}
	if len(c.Degraded()) > 0 {
		if c.replOn() {
			_ = c.heal()
		}
		if c.replServesComplete() {
			c.rstats.RecordFailoverRead()
			return c.gather(frag)
		}
		return c.gatherPartial(frag, func() any { return node.AllRows{Frag: frag} })
	}
	if !c.serialStmts() {
		// LockedReads on a concurrent transport: the pre-MVCC consistent
		// read, a shared claim queueing behind every in-flight writer of the
		// fragment. (Serial modes are single-statement by construction and
		// keep the seed's unlocked gather.)
		h := c.lockRead(frag)
		defer h.Release()
	}
	return c.gather(frag)
}

// TableRows returns every stored tuple of a base relation or auxiliary
// relation, unmetered. When the cluster is degraded the surviving nodes'
// rows are returned together with ErrPartial.
func (c *Cluster) TableRows(name string) ([]types.Tuple, error) {
	return c.readRows(name)
}

// ViewRows returns the materialized content of a view, unmetered. When the
// cluster is degraded the surviving nodes' rows are returned together with
// ErrPartial.
func (c *Cluster) ViewRows(name string) ([]types.Tuple, error) {
	if _, err := c.cat.View(name); err != nil {
		return nil, err
	}
	return c.readRows(name)
}
