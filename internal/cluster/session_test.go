package cluster

import (
	"testing"

	"joinview/internal/catalog"
	"joinview/internal/expr"
	"joinview/internal/types"
)

func TestTxnCommitAndRollback(t *testing.T) {
	c := newTPCR(t, 4, 6, 2, 1)
	if err := c.CreateView(jv1Def("jv1", catalog.StrategyAuxRel)); err != nil {
		t.Fatal(err)
	}
	baseRows, _ := c.TableRows("customer")
	viewRows, _ := c.ViewRows("jv1")

	// Committed transaction: effects persist.
	tx := c.Begin()
	if !tx.Active() {
		t.Fatal("fresh txn should be active")
	}
	noErr(t, tx.Insert("customer", []types.Tuple{cust(100, 1)}))
	noErr(t, tx.Insert("orders", []types.Tuple{ord(900, 100, 2)}))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if tx.Active() {
		t.Error("committed txn should be inactive")
	}
	if err := c.CheckViewConsistency("jv1"); err != nil {
		t.Fatal(err)
	}
	after, _ := c.ViewRows("jv1")
	if len(after) != len(viewRows)+1 {
		t.Fatalf("view rows = %d, want %d", len(after), len(viewRows)+1)
	}

	// Rolled-back transaction: no trace, across all structures.
	tx = c.Begin()
	noErr(t, tx.Insert("customer", []types.Tuple{cust(200, 1)}))
	if _, err := tx.Delete("orders", expr.Cmp{Op: expr.EQ, L: expr.Col{Name: "orderkey"}, R: expr.Const{V: types.Int(1)}}); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Update("customer", map[string]types.Value{"acctbal": types.Float(-9)}, expr.True); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckAllStructures(); err != nil {
		t.Fatal(err)
	}
	final, _ := c.TableRows("customer")
	if len(final) != len(baseRows)+1 { // +1 from the committed txn above
		t.Errorf("customer rows = %d, want %d", len(final), len(baseRows)+1)
	}
	for _, row := range final {
		if row[1].F == -9 {
			t.Error("rolled-back update leaked")
		}
	}
}

func TestTxnStatementAtomicityProgrammatic(t *testing.T) {
	c := newTPCR(t, 2, 4, 1, 1)
	tx := c.Begin()
	noErr(t, tx.Insert("customer", []types.Tuple{cust(300, 1)}))
	// A failing statement leaves prior statements intact and the txn open.
	if err := tx.Insert("customer", []types.Tuple{{types.Int(1)}}); err == nil {
		t.Fatal("bad arity should fail")
	}
	if !tx.Active() {
		t.Fatal("txn should survive a failed statement")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	rows, _ := c.TableRows("customer")
	found := false
	for _, r := range rows {
		if r[0].I == 300 {
			found = true
		}
	}
	if !found {
		t.Error("good statement lost")
	}
}

func TestTxnAfterFinish(t *testing.T) {
	c := newTPCR(t, 2, 2, 1, 1)
	tx := c.Begin()
	noErr(t, tx.Commit())
	if err := tx.Insert("customer", nil); err == nil {
		t.Error("insert after commit should fail")
	}
	if _, err := tx.Delete("customer", expr.True); err == nil {
		t.Error("delete after commit should fail")
	}
	if _, err := tx.Update("customer", nil, expr.True); err == nil {
		t.Error("update after commit should fail")
	}
	if err := tx.Commit(); err == nil {
		t.Error("double commit should fail")
	}
	if err := tx.Rollback(); err == nil {
		t.Error("rollback after commit should fail")
	}
	// Empty insert in an open txn is a no-op.
	tx2 := c.Begin()
	noErr(t, tx2.Insert("customer", nil))
	noErr(t, tx2.Rollback())
}

func TestTxnUnknownObjects(t *testing.T) {
	c := newTPCR(t, 2, 2, 1, 1)
	tx := c.Begin()
	if err := tx.Insert("ghost", []types.Tuple{{}}); err == nil {
		t.Error("insert into missing table should fail")
	}
	if _, err := tx.Delete("ghost", expr.True); err == nil {
		t.Error("delete from missing table should fail")
	}
	if _, err := tx.Update("ghost", nil, expr.True); err == nil {
		t.Error("update of missing table should fail")
	}
	if _, err := tx.Update("customer", map[string]types.Value{"zzz": types.Int(1)}, expr.True); err == nil {
		t.Error("update of missing column should fail")
	}
	noErr(t, tx.Rollback())
}
