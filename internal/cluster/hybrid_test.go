package cluster

import (
	"testing"

	"joinview/internal/catalog"
	"joinview/internal/expr"
	"joinview/internal/types"
)

// The conclusion's hybrid scheme: one view can use different maintenance
// methods depending on which base relation is updated.
func TestHybridStrategyOverrides(t *testing.T) {
	c := newTPCR(t, 8, 12, 2, 1)
	v := jv1Def("jv1", catalog.StrategyNaive)
	v.Overrides = map[string]catalog.Strategy{"customer": catalog.StrategyAuxRel}
	if err := c.CreateView(v); err != nil {
		t.Fatal(err)
	}
	// EnsureStructures must have created the AR the override needs.
	if _, ok := c.cat.AuxRelOn("orders", "custkey", nil); !ok {
		t.Fatal("override should have created the orders AR")
	}

	// Customer updates resolve to the AR method...
	got, err := c.ResolveStrategy(v, "customer", 1)
	if err != nil || got != catalog.StrategyAuxRel {
		t.Errorf("customer strategy = %v, %v; want auxrel", got, err)
	}
	// ...orders updates fall back to the view default.
	got, err = c.ResolveStrategy(v, "orders", 1)
	if err != nil || got != catalog.StrategyNaive {
		t.Errorf("orders strategy = %v, %v; want naive", got, err)
	}

	// Work distribution reflects the split: a customer insert probes one
	// node, an orders insert probes all nodes (customer is partitioned on
	// the join attribute, so naive routes — use a broadcast-y case by
	// checking I/O instead).
	c.ResetMetrics()
	if err := c.Insert("customer", []types.Tuple{cust(3, 1)}); err != nil {
		t.Fatal(err)
	}
	busy := 0
	for _, nc := range c.Metrics().Node {
		if nc.Searches+nc.Fetches > 0 {
			busy++
		}
	}
	if busy != 1 {
		t.Errorf("hybrid customer insert probed %d nodes, want 1", busy)
	}
	if err := c.Insert("orders", []types.Tuple{ord(999, 3, 1)}); err != nil {
		t.Fatal(err)
	}
	for _, vn := range []string{"jv1"} {
		if err := c.CheckViewConsistency(vn); err != nil {
			t.Fatal(err)
		}
	}
}

func TestOverrideValidation(t *testing.T) {
	c := newTPCR(t, 2, 2, 1, 1)
	v := jv1Def("bad", catalog.StrategyNaive)
	v.Overrides = map[string]catalog.Strategy{"part": catalog.StrategyAuxRel}
	if err := c.CreateView(v); err == nil {
		t.Error("override for a table outside the view should fail")
	}
}

func TestStrategyFor(t *testing.T) {
	v := jv1Def("x", catalog.StrategyNaive)
	if v.StrategyFor("customer") != catalog.StrategyNaive {
		t.Error("no override should use default")
	}
	v.Overrides = map[string]catalog.Strategy{"customer": catalog.StrategyGlobalIndex}
	if v.StrategyFor("customer") != catalog.StrategyGlobalIndex {
		t.Error("override ignored")
	}
	if v.StrategyFor("orders") != catalog.StrategyNaive {
		t.Error("non-overridden table should use default")
	}
}

// Deletions cost the same order of work as insertions per method (§2:
// "the steps needed when a tuple is deleted from or updated in the base
// relation A are similar to those needed in the case of insertion").
func TestDeleteCostSymmetry(t *testing.T) {
	for _, strat := range allStrategies {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			c := newTPCR(t, 8, 12, 2, 1)
			if err := c.CreateView(jv1Def("jv1", strat)); err != nil {
				t.Fatal(err)
			}
			// Insert one matching customer, measure.
			c.ResetMetrics()
			if err := c.Insert("customer", []types.Tuple{cust(3, 77)}); err != nil {
				t.Fatal(err)
			}
			insertIOs := c.Metrics().TotalIOs()
			// Delete it again, measure.
			c.ResetMetrics()
			pred := expr.And{Terms: []expr.Expr{
				expr.Cmp{Op: expr.EQ, L: expr.Col{Name: "custkey"}, R: expr.Const{V: types.Int(3)}},
				expr.Cmp{Op: expr.EQ, L: expr.Col{Name: "acctbal"}, R: expr.Const{V: types.Float(77)}},
			}}
			if _, err := c.Delete("customer", pred); err != nil {
				t.Fatal(err)
			}
			deleteIOs := c.Metrics().TotalIOs()
			if deleteIOs <= 0 {
				t.Fatal("delete charged nothing")
			}
			// Within 4x either way (victim location scans add a bit).
			if deleteIOs > insertIOs*4 || insertIOs > deleteIOs*4 {
				t.Errorf("insert %d I/Os vs delete %d I/Os: not symmetric", insertIOs, deleteIOs)
			}
			if err := c.CheckViewConsistency("jv1"); err != nil {
				t.Fatal(err)
			}
		})
	}
}
