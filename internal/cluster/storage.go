package cluster

import (
	"fmt"
	"sort"

	"joinview/internal/expr"
	"joinview/internal/netsim"
	"joinview/internal/node"
	"joinview/internal/types"
)

// StorageEntry reports the footprint of one stored object.
type StorageEntry struct {
	Name string
	// Kind is "table", "auxrel", "view" or "globalindex".
	Kind string
	// Rows is the total tuple count (or entry count for global indexes).
	Rows int
	// Pages is the total page count across nodes (0 for global indexes,
	// whose entries the §3.1 model treats as single-page lists).
	Pages int
	// Cols is the stored column width (structure minimization shrinks it).
	Cols int
}

// StorageReport is the cluster-wide space accounting — the other half of
// the paper's trade-off ("the last two methods improve performance at the
// cost of using more space").
type StorageReport struct {
	Entries []StorageEntry
}

// RowsOf returns the row count of a named entry, or -1.
func (r StorageReport) RowsOf(name string) int {
	for _, e := range r.Entries {
		if e.Name == name {
			return e.Rows
		}
	}
	return -1
}

// Overhead sums the rows of auxiliary structures (everything that is not a
// base table or a view): the extra storage a maintenance method costs.
func (r StorageReport) Overhead() (rows int) {
	for _, e := range r.Entries {
		if e.Kind == "auxrel" || e.Kind == "globalindex" {
			rows += e.Rows
		}
	}
	return rows
}

// OverheadValues weights the overhead by stored width (rows × columns;
// a global-index entry counts as two values: attribute value + global row
// id). This captures §2.1.3's "global indices usually require less extra
// storage than auxiliary relations".
func (r StorageReport) OverheadValues() (values int) {
	for _, e := range r.Entries {
		if e.Kind == "auxrel" || e.Kind == "globalindex" {
			values += e.Rows * e.Cols
		}
	}
	return values
}

// StorageReport gathers sizes of every table, auxiliary relation, view and
// global index. It is unmetered.
func (c *Cluster) StorageReport() (StorageReport, error) {
	var rep StorageReport
	add := func(name, kind string, cols int) error {
		rows, pages := 0, 0
		resps, err := c.tr.Broadcast(netsim.Coordinator, node.FragInfo{Frag: name})
		if err != nil {
			return err
		}
		for _, r := range resps {
			info := r.(node.FragInfoResult)
			rows += info.Len
			pages += info.Pages
		}
		rep.Entries = append(rep.Entries, StorageEntry{Name: name, Kind: kind, Rows: rows, Pages: pages, Cols: cols})
		return nil
	}
	for _, name := range c.cat.Tables() {
		t, _ := c.cat.Table(name)
		if err := add(name, "table", t.Schema.Len()); err != nil {
			return rep, err
		}
		for _, ar := range c.cat.AuxRelsFor(name) {
			if err := add(ar.Name, "auxrel", ar.Schema.Len()); err != nil {
				return rep, err
			}
		}
		for _, gi := range c.cat.GlobalIndexesFor(name) {
			rows := 0
			resps, err := c.tr.Broadcast(netsim.Coordinator, node.GILen{GI: gi.Name})
			if err != nil {
				return rep, err
			}
			for _, r := range resps {
				rows += r.(node.GILenResult).Len
			}
			rep.Entries = append(rep.Entries, StorageEntry{Name: gi.Name, Kind: "globalindex", Rows: rows, Cols: 2})
		}
	}
	for _, name := range c.cat.Views() {
		v, _ := c.cat.View(name)
		if err := add(name, "view", v.Schema.Len()); err != nil {
			return rep, err
		}
	}
	sort.Slice(rep.Entries, func(i, j int) bool { return rep.Entries[i].Name < rep.Entries[j].Name })
	return rep, nil
}

// CheckAuxRelConsistency verifies the named auxiliary relation equals
// π(σ(base)) re-computed from the current base relation (bag equality).
func (c *Cluster) CheckAuxRelConsistency(name string) error {
	ar, err := c.cat.AuxRel(name)
	if err != nil {
		return err
	}
	base, err := c.cat.Table(ar.Table)
	if err != nil {
		return err
	}
	baseRows, err := c.gather(ar.Table)
	if err != nil {
		return err
	}
	want, err := projectForAuxRel(base, ar, baseRows)
	if err != nil {
		return err
	}
	got, err := c.gather(name)
	if err != nil {
		return err
	}
	if err := bagEqual(got, want); err != nil {
		return fmt.Errorf("cluster: auxiliary relation %q out of sync with %q: %w", name, ar.Table, err)
	}
	// Partitioning invariant: every AR tuple lives at the hash home of
	// its partition column.
	pi := ar.Schema.MustColIndex(ar.PartitionCol)
	for n := 0; n < c.NumNodes(); n++ {
		resp, err := c.call(n, node.AllRows{Frag: name})
		if err != nil {
			return err
		}
		for _, t := range resp.(node.RowsResult).Tuples {
			if home := c.part.NodeFor(t[pi]); home != n {
				return fmt.Errorf("cluster: auxiliary relation %q tuple %v stored at node %d, belongs at %d", name, t, n, home)
			}
		}
	}
	return nil
}

// CheckGlobalIndexConsistency verifies the named global index agrees with
// the base relation: every entry's global row id resolves to a live tuple
// with the indexed value, and every base tuple has exactly one entry.
func (c *Cluster) CheckGlobalIndexConsistency(name string) error {
	gi, err := c.cat.GlobalIndex(name)
	if err != nil {
		return err
	}
	t, err := c.cat.Table(gi.Table)
	if err != nil {
		return err
	}
	ci := t.Schema.MustColIndex(gi.Col)

	// Base side: (node, row) -> value.
	type loc struct {
		node int
		row  uint64
	}
	baseRows := map[loc]types.Value{}
	for n := 0; n < c.NumNodes(); n++ {
		resp, err := c.call(n, node.ScanWithRows{Frag: gi.Table})
		if err != nil {
			return err
		}
		rr := resp.(node.RowsResult)
		for i := range rr.Rows {
			baseRows[loc{n, uint64(rr.Rows[i])}] = rr.Tuples[i][ci]
		}
	}
	// Index side.
	entries := 0
	for n := 0; n < c.NumNodes(); n++ {
		resp, err := c.call(n, node.GIScan{GI: name})
		if err != nil {
			return err
		}
		sc := resp.(node.GIScanResult)
		for i, g := range sc.Gs {
			entries++
			val, ok := baseRows[loc{int(g.Node), uint64(g.Row)}]
			if !ok {
				return fmt.Errorf("cluster: global index %q entry %v -> (%d,%d) dangles", name, sc.Vals[i], g.Node, g.Row)
			}
			if !types.Equal(val, sc.Vals[i]) {
				return fmt.Errorf("cluster: global index %q entry says %v, base tuple has %v", name, sc.Vals[i], val)
			}
			// Entry must live at the hash home of its value.
			if home := c.part.NodeFor(sc.Vals[i]); home != n {
				return fmt.Errorf("cluster: global index %q entry for %v stored at node %d, belongs at %d", name, sc.Vals[i], n, home)
			}
		}
	}
	if entries != len(baseRows) {
		return fmt.Errorf("cluster: global index %q has %d entries for %d base tuples", name, entries, len(baseRows))
	}
	return nil
}

// CheckAllStructures verifies every auxiliary relation, every global index
// and every view against the base relations.
func (c *Cluster) CheckAllStructures() error {
	for _, table := range c.cat.Tables() {
		for _, ar := range c.cat.AuxRelsFor(table) {
			if err := c.CheckAuxRelConsistency(ar.Name); err != nil {
				return err
			}
		}
		for _, gi := range c.cat.GlobalIndexesFor(table) {
			if err := c.CheckGlobalIndexConsistency(gi.Name); err != nil {
				return err
			}
		}
	}
	for _, v := range c.cat.Views() {
		if err := c.CheckViewConsistency(v); err != nil {
			return err
		}
	}
	return nil
}

// bagEqual compares two tuple bags.
func bagEqual(got, want []types.Tuple) error {
	if len(got) != len(want) {
		return fmt.Errorf("%d rows vs %d expected", len(got), len(want))
	}
	counts := map[uint64]int{}
	for _, t := range want {
		counts[t.Hash()]++
	}
	for _, t := range got {
		h := t.Hash()
		counts[h]--
		if counts[h] < 0 {
			return fmt.Errorf("unexpected tuple %v", t)
		}
	}
	return nil
}

// DeleteAll removes every tuple of the table (maintaining structures and
// views); convenience for workload teardown in long-running examples.
func (c *Cluster) DeleteAll(table string) (int, error) {
	deleted, err := c.Delete(table, expr.True)
	return len(deleted), err
}
