package cluster

import (
	"errors"
	"fmt"
	"testing"

	"joinview/internal/catalog"
	"joinview/internal/expr"
	"joinview/internal/node"
	"joinview/internal/types"
)

// newElasticCluster builds a loaded 4-node cluster with a jv1 view under
// the given strategy, returning the expected view contents.
func newElasticCluster(t *testing.T, strat catalog.Strategy) (*Cluster, []types.Tuple) {
	t.Helper()
	c := newTPCR(t, 4, 12, 2, 1)
	if err := c.CreateView(jv1Def("jv1", strat)); err != nil {
		t.Fatal(err)
	}
	want, err := c.RecomputeView("jv1")
	if err != nil {
		t.Fatal(err)
	}
	return c, want
}

// assertElasticConsistent checks every invariant a migration must
// preserve: view == recomputed join, auxiliary structures consistent and
// placed at their (current-map) homes.
func assertElasticConsistent(t *testing.T, c *Cluster, label string) {
	t.Helper()
	if err := c.CheckViewConsistency("jv1"); err != nil {
		t.Fatalf("%s: view inconsistent: %v", label, err)
	}
	if err := c.CheckAllStructures(); err != nil {
		t.Fatalf("%s: structures inconsistent: %v", label, err)
	}
}

// nodeRows scans one node's fragment directly (test-only backdoor).
func nodeRows(t *testing.T, c *Cluster, n int, frag string) []types.Tuple {
	t.Helper()
	resp, err := c.rawCall(n, node.ScanWithRows{Frag: frag})
	if err != nil {
		t.Fatalf("scan node %d frag %s: %v", n, frag, err)
	}
	return resp.(node.RowsResult).Tuples
}

// TestAddNodeMovesData expands 4 → 5 nodes under each maintenance
// strategy and checks that data moved, nothing was lost, and every
// derived structure sits at its new-map home.
func TestAddNodeMovesData(t *testing.T) {
	for _, strat := range allStrategies {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			c, wantView := newElasticCluster(t, strat)
			wantOrders, err := c.TableRows("orders")
			if err != nil {
				t.Fatal(err)
			}
			epoch0 := c.Topology().Epoch

			dst, err := c.AddNode()
			if err != nil {
				t.Fatalf("AddNode: %v", err)
			}
			if dst != 4 {
				t.Fatalf("AddNode returned %d, want 4", dst)
			}
			if got := c.NumNodes(); got != 5 {
				t.Fatalf("NumNodes = %d, want 5", got)
			}

			top := c.Topology()
			if top.Epoch <= epoch0 {
				t.Fatalf("epoch did not advance: %d -> %d", epoch0, top.Epoch)
			}
			if top.InFlight != nil {
				t.Fatalf("migration still in flight: %+v", top.InFlight)
			}
			owned := 0
			for _, o := range top.SlotOwner {
				if o == 4 {
					owned++
				}
			}
			if owned == 0 {
				t.Fatal("new node owns no hash slots")
			}

			stats, ok := c.LastMigration()
			if !ok || !stats.Committed {
				t.Fatalf("LastMigration = %+v, ok=%v, want committed", stats, ok)
			}
			if stats.RowsCopied == 0 || stats.PagesCopied == 0 || stats.Envelopes == 0 {
				t.Fatalf("migration moved nothing: %+v", stats)
			}

			got, err := c.TableRows("orders")
			if err != nil {
				t.Fatal(err)
			}
			assertBagEqual(t, "orders after expansion", got, wantOrders)
			view, err := c.ViewRows("jv1")
			if err != nil {
				t.Fatal(err)
			}
			assertBagEqual(t, "jv1 after expansion", view, wantView)
			assertElasticConsistent(t, c, "after expansion")

			// The new node holds its share of at least one relation.
			moved := 0
			for _, frag := range []string{"customer", "orders", "lineitem", "jv1"} {
				moved += len(nodeRows(t, c, 4, frag))
			}
			if moved == 0 {
				t.Fatal("node 4 holds no rows after rebalance")
			}
		})
	}
}

// TestDMLAfterExpansion checks that inserts, deletes and updates keep the
// view maintainable after the topology change, and that new rows route to
// the new node when their slot lives there.
func TestDMLAfterExpansion(t *testing.T) {
	c, _ := newElasticCluster(t, catalog.StrategyAuxRel)
	if _, err := c.AddNode(); err != nil {
		t.Fatal(err)
	}

	before4 := len(nodeRows(t, c, 4, "orders"))
	var batch []types.Tuple
	for k := int64(1000); k < 1100; k++ {
		batch = append(batch, ord(k, k%12, float64(k)))
	}
	if err := c.Insert("orders", batch); err != nil {
		t.Fatalf("insert after expansion: %v", err)
	}
	if after4 := len(nodeRows(t, c, 4, "orders")); after4 <= before4 {
		t.Fatalf("node 4 orders %d -> %d: new rows never route to the new node", before4, after4)
	}
	if _, err := c.Delete("orders",
		expr.Cmp{Op: expr.EQ, L: expr.Col{Name: "orderkey"}, R: expr.Const{V: types.Int(1005)}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Update("orders",
		map[string]types.Value{"totalprice": types.Float(9.5)},
		expr.Cmp{Op: expr.EQ, L: expr.Col{Name: "orderkey"}, R: expr.Const{V: types.Int(1006)}}); err != nil {
		t.Fatal(err)
	}
	assertElasticConsistent(t, c, "after post-expansion DML")
}

// TestDecommissionNode drains a node and checks its data survives on the
// survivors, it owns nothing afterwards, and DML still works.
func TestDecommissionNode(t *testing.T) {
	c, wantView := newElasticCluster(t, catalog.StrategyGlobalIndex)
	wantOrders, err := c.TableRows("orders")
	if err != nil {
		t.Fatal(err)
	}

	if err := c.DecommissionNode(3); err != nil {
		t.Fatalf("DecommissionNode: %v", err)
	}
	top := c.Topology()
	for s, o := range top.SlotOwner {
		if o == 3 {
			t.Fatalf("slot %d still owned by decommissioned node 3", s)
		}
	}
	if len(top.Retired) != 1 || top.Retired[0] != 3 {
		t.Fatalf("Retired = %v, want [3]", top.Retired)
	}
	for _, frag := range []string{"customer", "orders", "lineitem", "jv1"} {
		if n := len(nodeRows(t, c, 3, frag)); n != 0 {
			t.Fatalf("node 3 still holds %d rows of %s", n, frag)
		}
	}

	got, err := c.TableRows("orders")
	if err != nil {
		t.Fatal(err)
	}
	assertBagEqual(t, "orders after drain", got, wantOrders)
	view, err := c.ViewRows("jv1")
	if err != nil {
		t.Fatal(err)
	}
	assertBagEqual(t, "jv1 after drain", view, wantView)
	assertElasticConsistent(t, c, "after drain")

	if err := c.Insert("orders", []types.Tuple{ord(2000, 1, 1)}); err != nil {
		t.Fatal(err)
	}
	if n := len(nodeRows(t, c, 3, "orders")); n != 0 {
		t.Fatalf("retired node 3 received %d new rows", n)
	}
	assertElasticConsistent(t, c, "after post-drain DML")
}

// TestExpandThenDrainRoundTrip grows 4 → 5, then drains the newcomer
// again: the cluster ends consistent with all data back on nodes 0–3.
func TestExpandThenDrainRoundTrip(t *testing.T) {
	c, wantView := newElasticCluster(t, catalog.StrategyAuxRel)
	if _, err := c.AddNode(); err != nil {
		t.Fatal(err)
	}
	if err := c.DecommissionNode(4); err != nil {
		t.Fatal(err)
	}
	view, err := c.ViewRows("jv1")
	if err != nil {
		t.Fatal(err)
	}
	assertBagEqual(t, "jv1 after round trip", view, wantView)
	assertElasticConsistent(t, c, "after round trip")
	for _, frag := range []string{"customer", "orders", "lineitem", "jv1"} {
		if n := len(nodeRows(t, c, 4, frag)); n != 0 {
			t.Fatalf("drained node 4 still holds %d rows of %s", n, frag)
		}
	}
}

// TestMigrationCostMetrics sanity-checks the cost accounting: stats are
// monotone, the queue metrics are coherent, and Topology idles correctly.
func TestMigrationCostMetrics(t *testing.T) {
	c, _ := newElasticCluster(t, catalog.StrategyAuxRel)
	if _, err := c.AddNode(); err != nil {
		t.Fatal(err)
	}
	st, ok := c.LastMigration()
	if !ok {
		t.Fatal("no migration recorded")
	}
	if st.Epoch == 0 || !st.Committed {
		t.Fatalf("stats epoch/committed wrong: %+v", st)
	}
	if len(st.Slots) == 0 || len(st.Dsts) != 1 || st.Dsts[0] != 4 {
		t.Fatalf("stats slots/dsts wrong: %+v", st)
	}
	if st.Elapsed <= 0 || st.CutoverStall <= 0 || st.CutoverStall > st.Elapsed {
		t.Fatalf("stats timing wrong: %+v", st)
	}
	if st.CatchupReplayed < 0 || st.CatchupPeak < 0 {
		t.Fatalf("stats queue wrong: %+v", st)
	}
}

// TestDDLRefusedDuringMigration verifies the failIfMigrating guard wiring
// (unit-level: with a registered in-flight migration, DDL entry points
// refuse with ErrMigration).
func TestDDLRefusedDuringMigration(t *testing.T) {
	c, _ := newElasticCluster(t, catalog.StrategyNaive)
	c.migMu.Lock()
	c.mig = &migration{id: 99, phase: "copy:orders", moves: map[int]migMove{}}
	c.migMu.Unlock()
	defer func() {
		c.migMu.Lock()
		c.mig = nil
		c.migMu.Unlock()
	}()
	if err := c.CreateTable(&catalog.Table{Name: "t2"}); !errors.Is(err, ErrMigration) {
		t.Fatalf("CreateTable during migration: %v, want ErrMigration", err)
	}
	if err := c.DropTable("lineitem"); !errors.Is(err, ErrMigration) {
		t.Fatalf("DropTable during migration: %v, want ErrMigration", err)
	}
	if err := c.CreateView(jv2Def("jv2", catalog.StrategyAuxRel)); !errors.Is(err, ErrMigration) {
		t.Fatalf("CreateView during migration: %v, want ErrMigration", err)
	}
}

// TestPlanCacheInvalidatedByMigration checks that compiled maintenance
// plans recompile after a partition-map epoch bump: the plan compiled
// before the expansion must not route tuples with the old map.
func TestPlanCacheInvalidatedByMigration(t *testing.T) {
	c, _ := newElasticCluster(t, catalog.StrategyAuxRel)
	// Warm the plan cache.
	if err := c.Insert("orders", []types.Tuple{ord(3000, 1, 1)}); err != nil {
		t.Fatal(err)
	}
	warm := c.Metrics().Pipeline
	if _, err := c.AddNode(); err != nil {
		t.Fatal(err)
	}
	// This statement must recompile (miss), not reuse the stale plan.
	if err := c.Insert("orders", []types.Tuple{ord(3001, 1, 1)}); err != nil {
		t.Fatal(err)
	}
	after := c.Metrics().Pipeline
	if after.PlanCacheMisses <= warm.PlanCacheMisses {
		t.Fatalf("plan cache misses %d -> %d: stale plan survived the epoch bump",
			warm.PlanCacheMisses, after.PlanCacheMisses)
	}
	assertElasticConsistent(t, c, "after cached-plan DML")
}

// TestAddNodeTwice grows 4 → 6 in two steps: each expansion must start
// from the previous map and keep everything consistent.
func TestAddNodeTwice(t *testing.T) {
	c, wantView := newElasticCluster(t, catalog.StrategyGlobalIndex)
	for i := 0; i < 2; i++ {
		if _, err := c.AddNode(); err != nil {
			t.Fatalf("AddNode #%d: %v", i+1, err)
		}
	}
	if got := c.NumNodes(); got != 6 {
		t.Fatalf("NumNodes = %d, want 6", got)
	}
	view, err := c.ViewRows("jv1")
	if err != nil {
		t.Fatal(err)
	}
	assertBagEqual(t, "jv1 after double expansion", view, wantView)
	assertElasticConsistent(t, c, "after double expansion")
}

// TestTopologyString sanity-checks the Topology snapshot shape used by
// jvshell's \topology command.
func TestTopologyShape(t *testing.T) {
	c := newTPCR(t, 4, 2, 1, 1)
	top := c.Topology()
	if top.Nodes != 4 || len(top.SlotOwner) != 4 {
		t.Fatalf("fresh topology = %+v", top)
	}
	if top.Epoch != 0 || top.InFlight != nil || len(top.Retired) != 0 {
		t.Fatalf("fresh topology not idle: %+v", top)
	}
	for s, o := range top.SlotOwner {
		if s != o {
			t.Fatalf("identity map broken: slot %d -> node %d", s, o)
		}
	}
	_ = fmt.Sprintf("%+v", top)
}
