package cluster

import (
	"fmt"
	"testing"

	"joinview/internal/catalog"
	"joinview/internal/expr"
	"joinview/internal/types"
)

// Schemas mirroring the paper's §3.3 test relations (trimmed).
func customerTable() *catalog.Table {
	return &catalog.Table{
		Name: "customer",
		Schema: types.NewSchema(
			types.Column{Name: "custkey", Kind: types.KindInt},
			types.Column{Name: "acctbal", Kind: types.KindFloat},
		),
		PartitionCol: "custkey",
	}
}

func ordersTable() *catalog.Table {
	return &catalog.Table{
		Name: "orders",
		Schema: types.NewSchema(
			types.Column{Name: "orderkey", Kind: types.KindInt},
			types.Column{Name: "custkey", Kind: types.KindInt},
			types.Column{Name: "totalprice", Kind: types.KindFloat},
		),
		PartitionCol: "orderkey",
		Indexes:      []catalog.Index{{Name: "ix_orders_cust", Col: "custkey"}},
	}
}

func lineitemTable() *catalog.Table {
	return &catalog.Table{
		Name: "lineitem",
		Schema: types.NewSchema(
			types.Column{Name: "orderkey", Kind: types.KindInt},
			types.Column{Name: "linenum", Kind: types.KindInt},
			types.Column{Name: "extendedprice", Kind: types.KindFloat},
		),
		PartitionCol: "linenum",
		Indexes:      []catalog.Index{{Name: "ix_li_ok", Col: "orderkey"}},
	}
}

func cust(k int64, bal float64) types.Tuple {
	return types.Tuple{types.Int(k), types.Float(bal)}
}

func ord(ok, ck int64, price float64) types.Tuple {
	return types.Tuple{types.Int(ok), types.Int(ck), types.Float(price)}
}

func li(ok, ln int64, price float64) types.Tuple {
	return types.Tuple{types.Int(ok), types.Int(ln), types.Float(price)}
}

// newTPCR builds a cluster with the three tables loaded: nCust customers,
// each with ordersPer orders, each order with linesPer lineitems.
func newTPCR(t *testing.T, nodes, nCust, ordersPer, linesPer int) *Cluster {
	t.Helper()
	c, err := New(Config{Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	for _, tab := range []*catalog.Table{customerTable(), ordersTable(), lineitemTable()} {
		if err := c.CreateTable(tab); err != nil {
			t.Fatal(err)
		}
	}
	var customers, orders, lines []types.Tuple
	ok := int64(0)
	ln := int64(0)
	for ck := int64(0); ck < int64(nCust); ck++ {
		customers = append(customers, cust(ck, float64(ck)*1.5))
		for o := 0; o < ordersPer; o++ {
			ok++
			orders = append(orders, ord(ok, ck, float64(ok)*10))
			for l := 0; l < linesPer; l++ {
				ln++
				lines = append(lines, li(ok, ln, float64(ln)))
			}
		}
	}
	if err := c.Insert("customer", customers); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("orders", orders); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("lineitem", lines); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"customer", "orders", "lineitem"} {
		if err := c.RefreshStats(name); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func jv1Def(name string, s catalog.Strategy) *catalog.View {
	return &catalog.View{
		Name:   name,
		Tables: []string{"customer", "orders"},
		Joins: []catalog.JoinPred{
			{Left: "customer", LeftCol: "custkey", Right: "orders", RightCol: "custkey"},
		},
		Out: []catalog.OutCol{
			{Table: "customer", Col: "custkey"}, {Table: "customer", Col: "acctbal"},
			{Table: "orders", Col: "orderkey"}, {Table: "orders", Col: "totalprice"},
		},
		PartitionTable: "customer", PartitionCol: "custkey",
		Strategy: s,
	}
}

func jv2Def(name string, s catalog.Strategy) *catalog.View {
	return &catalog.View{
		Name:   name,
		Tables: []string{"customer", "orders", "lineitem"},
		Joins: []catalog.JoinPred{
			{Left: "customer", LeftCol: "custkey", Right: "orders", RightCol: "custkey"},
			{Left: "orders", LeftCol: "orderkey", Right: "lineitem", RightCol: "orderkey"},
		},
		Out: []catalog.OutCol{
			{Table: "customer", Col: "custkey"}, {Table: "customer", Col: "acctbal"},
			{Table: "orders", Col: "orderkey"}, {Table: "orders", Col: "totalprice"},
			{Table: "lineitem", Col: "extendedprice"},
		},
		PartitionTable: "customer", PartitionCol: "custkey",
		Strategy: s,
	}
}

var allStrategies = []catalog.Strategy{catalog.StrategyNaive, catalog.StrategyAuxRel, catalog.StrategyGlobalIndex}

func TestCreateViewMaterializesInitialContent(t *testing.T) {
	c := newTPCR(t, 4, 10, 2, 3)
	v := jv1Def("jv1", catalog.StrategyNaive)
	if err := c.CreateView(v); err != nil {
		t.Fatal(err)
	}
	rows, err := c.ViewRows("jv1")
	if err != nil {
		t.Fatal(err)
	}
	// 10 customers x 2 orders = 20 join tuples.
	if len(rows) != 20 {
		t.Fatalf("initial view has %d rows, want 20", len(rows))
	}
	if err := c.CheckViewConsistency("jv1"); err != nil {
		t.Fatal(err)
	}
}

func TestInsertMaintainsViewAllStrategies(t *testing.T) {
	for _, strat := range allStrategies {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			c := newTPCR(t, 4, 8, 2, 2)
			if err := c.CreateView(jv1Def("jv1", strat)); err != nil {
				t.Fatal(err)
			}
			if err := c.CreateView(jv2Def("jv2", strat)); err != nil {
				t.Fatal(err)
			}
			// Insert new customers that match existing orders, plus one
			// with no matches.
			if err := c.Insert("customer", []types.Tuple{cust(3, 99), cust(100, 1)}); err != nil {
				t.Fatal(err)
			}
			// Insert orders matching existing and new customers.
			if err := c.Insert("orders", []types.Tuple{ord(1000, 3, 5), ord(1001, 100, 6), ord(1002, 777, 7)}); err != nil {
				t.Fatal(err)
			}
			// Insert lineitems for old and new orders.
			if err := c.Insert("lineitem", []types.Tuple{li(1000, 9000, 1), li(1, 9001, 2), li(9999, 9002, 3)}); err != nil {
				t.Fatal(err)
			}
			for _, vn := range []string{"jv1", "jv2"} {
				if err := c.CheckViewConsistency(vn); err != nil {
					t.Errorf("%s after inserts: %v", vn, err)
				}
			}
		})
	}
}

func TestDeleteMaintainsViewAllStrategies(t *testing.T) {
	for _, strat := range allStrategies {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			c := newTPCR(t, 4, 8, 2, 2)
			if err := c.CreateView(jv1Def("jv1", strat)); err != nil {
				t.Fatal(err)
			}
			if err := c.CreateView(jv2Def("jv2", strat)); err != nil {
				t.Fatal(err)
			}
			// Delete a customer (cascades through both views' contents).
			del, err := c.Delete("customer", expr.Cmp{Op: expr.EQ, L: expr.Col{Name: "custkey"}, R: expr.Const{V: types.Int(3)}})
			if err != nil {
				t.Fatal(err)
			}
			if len(del) != 1 {
				t.Fatalf("deleted %d customers, want 1", len(del))
			}
			// Delete some orders.
			if _, err := c.Delete("orders", expr.Cmp{Op: expr.LT, L: expr.Col{Name: "orderkey"}, R: expr.Const{V: types.Int(4)}}); err != nil {
				t.Fatal(err)
			}
			// Delete lineitems.
			if _, err := c.Delete("lineitem", expr.Cmp{Op: expr.EQ, L: expr.Col{Name: "orderkey"}, R: expr.Const{V: types.Int(10)}}); err != nil {
				t.Fatal(err)
			}
			for _, vn := range []string{"jv1", "jv2"} {
				if err := c.CheckViewConsistency(vn); err != nil {
					t.Errorf("%s after deletes: %v", vn, err)
				}
			}
			// Deleting nothing is fine.
			none, err := c.Delete("customer", expr.Cmp{Op: expr.EQ, L: expr.Col{Name: "custkey"}, R: expr.Const{V: types.Int(123456)}})
			if err != nil || none != nil {
				t.Errorf("empty delete = %v, %v", none, err)
			}
		})
	}
}

func TestUpdateMaintainsViewAllStrategies(t *testing.T) {
	for _, strat := range allStrategies {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			c := newTPCR(t, 4, 6, 2, 2)
			if err := c.CreateView(jv2Def("jv2", strat)); err != nil {
				t.Fatal(err)
			}
			// Non-key update: changes view payload columns.
			n, err := c.Update("customer",
				map[string]types.Value{"acctbal": types.Float(-1)},
				expr.Cmp{Op: expr.LT, L: expr.Col{Name: "custkey"}, R: expr.Const{V: types.Int(3)}})
			if err != nil {
				t.Fatal(err)
			}
			if n != 3 {
				t.Fatalf("updated %d customers, want 3", n)
			}
			// Join-key update: moves orders between customers.
			if _, err := c.Update("orders",
				map[string]types.Value{"custkey": types.Int(0)},
				expr.Cmp{Op: expr.EQ, L: expr.Col{Name: "custkey"}, R: expr.Const{V: types.Int(5)}}); err != nil {
				t.Fatal(err)
			}
			if err := c.CheckViewConsistency("jv2"); err != nil {
				t.Fatal(err)
			}
			// Update with unknown column fails cleanly.
			if _, err := c.Update("customer", map[string]types.Value{"zzz": types.Int(1)}, expr.True); err == nil {
				t.Error("update of unknown column should fail")
			}
			// Update matching nothing.
			n, err = c.Update("customer", map[string]types.Value{"acctbal": types.Float(0)},
				expr.Cmp{Op: expr.EQ, L: expr.Col{Name: "custkey"}, R: expr.Const{V: types.Int(99999)}})
			if err != nil || n != 0 {
				t.Errorf("empty update = %d, %v", n, err)
			}
		})
	}
}

// The paper's §2.1.2 claim: with the AR method, each inserted tuple's
// maintenance work happens at one node (plus the view write), while the
// naive method does work at every node.
func TestWorkDistributionPerStrategy(t *testing.T) {
	const nodes = 8
	type result struct {
		busyNodes int
		totalIOs  int64
	}
	run := func(strat catalog.Strategy) result {
		c := newTPCR(t, nodes, 16, 2, 1)
		if err := c.CreateView(jv1Def("jv1", strat)); err != nil {
			t.Fatal(err)
		}
		c.ResetMetrics()
		// custkey 3 already has 2 matching orders, so the join step does
		// real work under every method.
		if err := c.Insert("customer", []types.Tuple{cust(3, 1)}); err != nil {
			t.Fatal(err)
		}
		m := c.Metrics()
		busy := 0
		for _, nc := range m.Node {
			// Exclude the base-table insert and view write (both
			// single-node) by counting nodes that performed searches,
			// fetches or scans — the join work.
			if nc.Searches+nc.Fetches+nc.ScanPages+nc.SortPages > 0 {
				busy++
			}
		}
		return result{busyNodes: busy, totalIOs: m.TotalIOs()}
	}
	naive := run(catalog.StrategyNaive)
	aux := run(catalog.StrategyAuxRel)
	gi := run(catalog.StrategyGlobalIndex)

	if naive.busyNodes != nodes {
		t.Errorf("naive method should probe all %d nodes, probed %d", nodes, naive.busyNodes)
	}
	if aux.busyNodes != 1 {
		t.Errorf("AR method should probe exactly 1 node, probed %d", aux.busyNodes)
	}
	// GI: home-node search + K fetch nodes; with fan-out 2 this is <= 3.
	if gi.busyNodes < 1 || gi.busyNodes > 3 {
		t.Errorf("GI method should probe few nodes, probed %d", gi.busyNodes)
	}
	if !(aux.totalIOs < gi.totalIOs && gi.totalIOs < naive.totalIOs) {
		t.Errorf("TW ordering violated: AR=%d, GI=%d, naive=%d", aux.totalIOs, gi.totalIOs, naive.totalIOs)
	}
}

func TestAutoStrategyResolution(t *testing.T) {
	c := newTPCR(t, 8, 16, 2, 1)
	v := jv1Def("jv1", catalog.StrategyAuto)
	if err := c.CreateView(v); err != nil {
		t.Fatal(err)
	}
	// Auto creates both ARs and GIs.
	if _, ok := c.Catalog().AuxRelOn("orders", "custkey", nil); !ok {
		t.Error("auto view should have created the orders AR")
	}
	if _, ok := c.Catalog().GlobalIndexOn("orders", "custkey"); !ok {
		t.Error("auto view should have created the orders GI")
	}
	// Small update resolves to the AR method.
	strat, err := c.ResolveStrategy(v, "customer", 1)
	if err != nil {
		t.Fatal(err)
	}
	if strat != catalog.StrategyAuxRel {
		t.Errorf("auto for small update = %v, want auxrel", strat)
	}
	// And the full DML path stays consistent.
	if err := c.Insert("customer", []types.Tuple{cust(1000, 5)}); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckViewConsistency("jv1"); err != nil {
		t.Fatal(err)
	}
}

func TestInsertRollbackOnViewFailure(t *testing.T) {
	c := newTPCR(t, 4, 4, 1, 1)
	v := jv1Def("jv1", catalog.StrategyAuxRel)
	if err := c.CreateView(v); err != nil {
		t.Fatal(err)
	}
	before, err := c.TableRows("customer")
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage: make the plan unbuildable by switching the view to a
	// strategy with no structures. GI structures were never created.
	v.Strategy = catalog.StrategyGlobalIndex
	err = c.Insert("customer", []types.Tuple{cust(700, 1)})
	if err == nil {
		t.Fatal("insert should fail without GI structures")
	}
	after, err := c.TableRows("customer")
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Errorf("base insert not rolled back: %d rows vs %d", len(after), len(before))
	}
	// Restore and verify the system still works.
	v.Strategy = catalog.StrategyAuxRel
	if err := c.Insert("customer", []types.Tuple{cust(700, 1)}); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckViewConsistency("jv1"); err != nil {
		t.Fatal(err)
	}
}

func TestChannelTransportEquivalence(t *testing.T) {
	// The channel transport must produce the same view contents and the
	// same total I/O as the deterministic transport.
	runIOs := func(useChan bool) (int64, int) {
		cfg := Config{Nodes: 4, UseChannels: useChan}
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		for _, tab := range []*catalog.Table{customerTable(), ordersTable()} {
			if err := c.CreateTable(tab); err != nil {
				t.Fatal(err)
			}
		}
		var orders []types.Tuple
		for i := int64(0); i < 40; i++ {
			orders = append(orders, ord(i, i%10, 1))
		}
		if err := c.Insert("orders", orders); err != nil {
			t.Fatal(err)
		}
		if err := c.CreateView(jv1Def("jv1", catalog.StrategyAuxRel)); err != nil {
			t.Fatal(err)
		}
		c.ResetMetrics()
		var customers []types.Tuple
		for i := int64(0); i < 10; i++ {
			customers = append(customers, cust(i, 2))
		}
		if err := c.Insert("customer", customers); err != nil {
			t.Fatal(err)
		}
		if err := c.CheckViewConsistency("jv1"); err != nil {
			t.Fatal(err)
		}
		rows, _ := c.ViewRows("jv1")
		return c.Metrics().TotalIOs(), len(rows)
	}
	directIOs, directRows := runIOs(false)
	chanIOs, chanRows := runIOs(true)
	if directIOs != chanIOs {
		t.Errorf("transport changed total I/O: direct=%d chan=%d", directIOs, chanIOs)
	}
	if directRows != chanRows || directRows != 40 {
		t.Errorf("view rows: direct=%d chan=%d, want 40", directRows, chanRows)
	}
}

func TestMetricsArithmetic(t *testing.T) {
	c := newTPCR(t, 2, 2, 1, 1)
	m1 := c.Metrics()
	if err := c.Insert("customer", []types.Tuple{cust(50, 0)}); err != nil {
		t.Fatal(err)
	}
	m2 := c.Metrics()
	d := m2.Sub(m1)
	if d.TotalIOs() <= 0 {
		t.Error("insert should cost I/O")
	}
	if d.MaxNodeIOs() <= 0 || d.MaxNodeIOs() > d.TotalIOs() {
		t.Error("MaxNodeIOs out of range")
	}
	if d.Total().Inserts < 1 {
		t.Error("Total() lost inserts")
	}
	c.ResetMetrics()
	if c.Metrics().TotalIOs() != 0 {
		t.Error("ResetMetrics failed")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Nodes: 0}); err == nil {
		t.Error("zero nodes should fail")
	}
	c, err := New(Config{Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.NumNodes() != 1 || c.Config().MemPages != 10 || c.Config().PageRows == 0 {
		t.Errorf("defaults not applied: %+v", c.Config())
	}
	if c.Catalog() == nil || c.Stats() == nil || c.Transport() == nil {
		t.Error("accessors returned nil")
	}
}

func TestViewRowsErrors(t *testing.T) {
	c := newTPCR(t, 2, 2, 1, 1)
	if _, err := c.ViewRows("ghost"); err == nil {
		t.Error("ViewRows on missing view should fail")
	}
	if _, err := c.RecomputeView("ghost"); err == nil {
		t.Error("RecomputeView on missing view should fail")
	}
	if err := c.RefreshStats("ghost"); err == nil {
		t.Error("RefreshStats on missing table should fail")
	}
	if _, err := c.TableRows("ghost"); err == nil {
		t.Error("TableRows on missing fragment should fail")
	}
	if err := c.Insert("ghost", []types.Tuple{{}}); err == nil {
		t.Error("insert into missing table should fail")
	}
	if _, err := c.Delete("ghost", expr.True); err == nil {
		t.Error("delete from missing table should fail")
	}
	if _, err := c.Update("ghost", nil, expr.True); err == nil {
		t.Error("update of missing table should fail")
	}
	if err := c.Insert("customer", nil); err != nil {
		t.Error("empty insert should be a no-op")
	}
}

// Randomized end-to-end property: any interleaving of inserts, deletes and
// updates across all three base tables keeps every strategy's view equal to
// the recomputed join.
func TestRandomizedStreamConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("long randomized test")
	}
	c := newTPCR(t, 4, 6, 2, 2)
	for i, strat := range allStrategies {
		if err := c.CreateView(jv2Def(fmt.Sprintf("v%d", i), strat)); err != nil {
			t.Fatal(err)
		}
	}
	rng := newRand(42)
	nextCK, nextOK, nextLN := int64(1000), int64(2000), int64(3000)
	for step := 0; step < 60; step++ {
		switch rng.Intn(6) {
		case 0:
			nextCK++
			err := c.Insert("customer", []types.Tuple{cust(nextCK%20, 1), cust(nextCK, 2)})
			noErr(t, err)
		case 1:
			nextOK++
			err := c.Insert("orders", []types.Tuple{ord(nextOK, int64(rng.Intn(25)), 1)})
			noErr(t, err)
		case 2:
			nextLN++
			err := c.Insert("lineitem", []types.Tuple{li(int64(rng.Intn(30)), nextLN, 1)})
			noErr(t, err)
		case 3:
			_, err := c.Delete("customer", expr.Cmp{Op: expr.EQ, L: expr.Col{Name: "custkey"}, R: expr.Const{V: types.Int(int64(rng.Intn(25)))}})
			noErr(t, err)
		case 4:
			_, err := c.Delete("orders", expr.Cmp{Op: expr.EQ, L: expr.Col{Name: "orderkey"}, R: expr.Const{V: types.Int(int64(rng.Intn(30)))}})
			noErr(t, err)
		case 5:
			_, err := c.Update("orders", map[string]types.Value{"custkey": types.Int(int64(rng.Intn(20)))},
				expr.Cmp{Op: expr.EQ, L: expr.Col{Name: "orderkey"}, R: expr.Const{V: types.Int(int64(rng.Intn(30)))}})
			noErr(t, err)
		}
		if step%10 == 9 {
			for i := range allStrategies {
				if err := c.CheckViewConsistency(fmt.Sprintf("v%d", i)); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
			}
		}
	}
	for i := range allStrategies {
		if err := c.CheckViewConsistency(fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}
}

func noErr(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
