package cluster

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"joinview/internal/node"
	"joinview/internal/storage"
	"joinview/internal/types"
)

// TestInverseCoversAllMutatingRequests is the exhaustiveness check tying
// the two halves of the undo machinery together: every request type
// isMutating recognizes must either produce an exact inverse from
// inverseOf (given the response shape the node returns for it) or appear
// on the explicit rebuild-covered list — mutations whose undo is a
// derived-structure rebuild (legacy mode) or a node-local log unwind
// (durable mode), never a coordinator compensation. A new mutating request
// type fails here until it is given an inverse or deliberately listed.
func TestInverseCoversAllMutatingRequests(t *testing.T) {
	// Responses with the fields inverseOf reads, keyed by request type.
	responses := map[reflect.Type]any{
		reflect.TypeOf(node.Insert{}):        node.InsertResult{Rows: []storage.RowID{1}},
		reflect.TypeOf(node.DeleteRows{}):    node.DeleteResult{Rows: []storage.RowID{1}, Tuples: []types.Tuple{{types.Int(1)}}},
		reflect.TypeOf(node.DeleteMatch{}):   node.DeleteResult{Rows: []storage.RowID{1}, Tuples: []types.Tuple{{types.Int(1)}}},
		reflect.TypeOf(node.GIDelete{}):      node.GIDeleted{OK: true},
		reflect.TypeOf(node.GIDeleteBatch{}): node.GIDeletedBatch{OK: []bool{true}},
	}
	// Populated stand-ins where the zero value cannot produce an inverse
	// (batch inverses are built entry-by-entry, so they need entries).
	requests := map[reflect.Type]any{
		reflect.TypeOf(node.GIDeleteBatch{}): node.GIDeleteBatch{
			GI: "g", Vals: []types.Value{types.Int(1)}, Gs: []storage.GlobalRowID{{}},
		},
	}
	// Mutations with no exact inverse: DDL and bulk backfill requests are
	// re-issued by rebuildDerived, and LocalJoin's view-side effects are
	// compensated through ApplyToView, so none of them flows through
	// inverseOf during rollback.
	rebuildCovered := map[reflect.Type]bool{
		reflect.TypeOf(node.CreateFragment{}):      true,
		reflect.TypeOf(node.CreateIndex{}):         true,
		reflect.TypeOf(node.CreateGlobalIndex{}):   true,
		reflect.TypeOf(node.DropFragment{}):        true,
		reflect.TypeOf(node.DropGlobalIndexFrag{}): true,
		reflect.TypeOf(node.LocalJoin{}):           true,
		// Replication failover/repair requests travel only via rawCall under
		// the global exclusive lock (no statement scope, nothing to roll
		// back); a failed failover or repair round is rerun idempotently.
		reflect.TypeOf(node.PromoteSlots{}):   true,
		reflect.TypeOf(node.GIPromoteSlots{}): true,
		reflect.TypeOf(node.GIScrubNode{}):    true,
	}
	for _, req := range node.AllRequests() {
		rt := reflect.TypeOf(req)
		if alt, ok := requests[rt]; ok {
			req = alt
		}
		if !isMutating(req) {
			if rebuildCovered[rt] {
				t.Errorf("%v is rebuild-covered but not mutating: stale allowlist entry", rt)
			}
			continue
		}
		inv := inverseOf(req, responses[rt])
		if rebuildCovered[rt] {
			if inv != nil {
				t.Errorf("%v gained an inverse (%T): remove it from the rebuild-covered list", rt, inv)
			}
			continue
		}
		if inv == nil {
			t.Errorf("mutating request %v has no inverse and is not rebuild-covered", rt)
		}
	}
}

// TestBackoffDelayBounded checks the retry backoff: zero base disables
// sleeping, the delay grows from the base, never exceeds the cap even for
// absurd attempt numbers (shift overflow clamped), and the jitter keeps it
// within [d/2, d).
func TestBackoffDelayBounded(t *testing.T) {
	base, max := 10*time.Millisecond, 80*time.Millisecond
	maxJitter := func(n int64) int64 { return n - 1 }
	zeroJitter := func(int64) int64 { return 0 }

	if d := backoffDelay(0, max, 5, maxJitter); d != 0 {
		t.Fatalf("zero base should disable backoff, got %v", d)
	}
	for _, attempt := range []int{1, 2, 3, 4, 10, 63, 64, 1000, 1 << 30} {
		d := backoffDelay(base, max, attempt, maxJitter)
		if d <= 0 || d >= max {
			t.Errorf("attempt %d: delay %v outside (0, %v)", attempt, d, max)
		}
		lo := backoffDelay(base, max, attempt, zeroJitter)
		if lo < base/2 {
			t.Errorf("attempt %d: zero-jitter delay %v below base/2", attempt, lo)
		}
	}
	// Exponential growth up to the cap (zero jitter gives the midpoint d/2).
	if d1, d2 := backoffDelay(base, max, 1, zeroJitter), backoffDelay(base, max, 2, zeroJitter); d2 != 2*d1 {
		t.Errorf("attempt 2 delay %v, want double attempt 1's %v", d2, d1)
	}
	// Determinism: same inputs, same delay.
	if a, b := backoffDelay(base, max, 7, maxJitter), backoffDelay(base, max, 7, maxJitter); a != b {
		t.Errorf("same inputs gave %v then %v", a, b)
	}
}

// TestRetryJitterSeeded checks the jitter source: seeded, deterministic per
// seed, different across seeds.
func TestRetryJitterSeeded(t *testing.T) {
	draws := func(seed int64) string {
		c, err := New(Config{Nodes: 2, RetrySeed: seed})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		var out string
		for i := 0; i < 8; i++ {
			out += fmt.Sprintf("%d,", c.jitter(1_000_000))
		}
		return out
	}
	if a, b := draws(5), draws(5); a != b {
		t.Fatalf("same seed diverged: %s vs %s", a, b)
	}
	if a, b := draws(5), draws(6); a == b {
		t.Fatalf("different seeds produced identical jitter: %s", a)
	}
}
