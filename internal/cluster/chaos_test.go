package cluster

import (
	"errors"
	"fmt"
	"sort"
	"testing"

	"joinview/internal/catalog"
	"joinview/internal/expr"
	"joinview/internal/fault"
	"joinview/internal/types"
)

// newChaosCluster builds a small loaded cluster whose transport is wrapped
// in the given (still disarmed) injector, with a jv1 view maintained by the
// given strategy. Retries are generous because storms stack faults.
func newChaosCluster(t *testing.T, inj *fault.Injector, strat catalog.Strategy, nCust, ordersPer int) *Cluster {
	t.Helper()
	c, err := New(Config{Nodes: 4, Faults: inj, RetryAttempts: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	for _, tab := range []*catalog.Table{customerTable(), ordersTable(), lineitemTable()} {
		if err := c.CreateTable(tab); err != nil {
			t.Fatal(err)
		}
	}
	var customers, orders []types.Tuple
	ok := int64(0)
	for ck := int64(0); ck < int64(nCust); ck++ {
		customers = append(customers, cust(ck, float64(ck)*1.5))
		for o := 0; o < ordersPer; o++ {
			ok++
			orders = append(orders, ord(ok, ck, float64(ok)*10))
		}
	}
	if err := c.Insert("customer", customers); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("orders", orders); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"customer", "orders", "lineitem"} {
		if err := c.RefreshStats(name); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CreateView(jv1Def("jv1", strat)); err != nil {
		t.Fatal(err)
	}
	return c
}

// recoverAll ends a fault episode: stop injecting, bring every crashed
// node back at the transport layer, defuse any pending scheduled crash,
// then run coordinator recovery for every node the cluster saw fail.
func recoverAll(t *testing.T, c *Cluster, inj *fault.Injector) {
	t.Helper()
	inj.Disarm()
	inj.CrashAfter(0, -1)
	for _, n := range inj.DownNodes() {
		inj.Restart(n)
	}
	for _, n := range c.Degraded() {
		if err := c.Recover(n); err != nil {
			t.Fatalf("recover node %d: %v", n, err)
		}
	}
	if d := c.Degraded(); len(d) != 0 {
		t.Fatalf("still degraded after recovery: %v", d)
	}
}

func sortedStrings(rows []types.Tuple) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprintf("%v", r)
	}
	sort.Strings(out)
	return out
}

func assertBagEqual(t *testing.T, label string, got []types.Tuple, want []types.Tuple) {
	t.Helper()
	g, w := sortedStrings(got), sortedStrings(want)
	if len(g) != len(w) {
		t.Fatalf("%s: %d rows, want %d", label, len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: row %d = %s, want %s", label, i, g[i], w[i])
		}
	}
}

// TestChaosStormAllStrategies drives a seeded storm of inserts, deletes
// and updates — with message drops, dropped replies, duplicated
// deliveries, transient handler errors, and node crashes (both between
// and in the middle of statements) — against each maintenance strategy.
// Statements may fail, but every failure must be atomic: after the storm
// ends and every node is recovered, the base table must hold exactly the
// successfully-committed rows, and the view and every auxiliary structure
// must agree with a from-scratch recompute.
func TestChaosStormAllStrategies(t *testing.T) {
	seeds := []int64{1, 2, 3}
	for _, strat := range allStrategies {
		for _, seed := range seeds {
			strat, seed := strat, seed
			t.Run(fmt.Sprintf("%s/seed=%d", strat, seed), func(t *testing.T) {
				runChaosStorm(t, strat, seed)
			})
		}
	}
}

func runChaosStorm(t *testing.T, strat catalog.Strategy, seed int64) {
	inj := fault.New(fault.Config{
		Seed:        seed,
		DropRequest: 0.05,
		DropReply:   0.04,
		Duplicate:   0.05,
		HandlerErr:  0.05,
	})
	const nCust, ordersPer = 6, 2
	c := newChaosCluster(t, inj, strat, nCust, ordersPer)

	// Mirror of the orders table: what a committed-statement log says the
	// table must contain. Customers are insert-only in this storm.
	mirror := map[int64]types.Tuple{}
	var okeys []int64
	for ck := int64(0); ck < nCust; ck++ {
		for o := 0; o < ordersPer; o++ {
			k := ck*ordersPer + int64(o) + 1
			mirror[k] = ord(k, ck, float64(k)*10)
			okeys = append(okeys, k)
		}
	}
	wantCust := int64(nCust)

	r := newRand(seed)
	nextOK := int64(1000)
	nextCK := int64(100)
	inj.Arm()
	committed, failed := 0, 0
	for i := 0; i < 50; i++ {
		// Fault-episode control: occasionally crash a node (between
		// statements or scheduled to land mid-statement), and while
		// degraded sometimes run a recovery window before continuing.
		if len(c.Degraded()) > 0 || len(inj.DownNodes()) > 0 {
			if r.Float64() < 0.5 {
				recoverAll(t, c, inj)
				inj.Arm()
			}
		} else {
			if r.Float64() < 0.08 {
				inj.Crash(r.Intn(4))
			} else if r.Float64() < 0.06 {
				inj.CrashAfter(r.Intn(4), 1+r.Intn(8))
			}
		}

		var err error
		var applied func()
		switch draw := r.Float64(); {
		case draw < 0.45: // insert a batch of new orders
			n := 1 + r.Intn(3)
			batch := make([]types.Tuple, n)
			keys := make([]int64, n)
			for j := 0; j < n; j++ {
				nextOK++
				keys[j] = nextOK
				batch[j] = ord(nextOK, int64(r.Intn(nCust)), float64(nextOK))
			}
			err = c.Insert("orders", batch)
			applied = func() {
				for j, k := range keys {
					mirror[k] = batch[j]
					okeys = append(okeys, k)
				}
			}
		case draw < 0.70 && len(okeys) > 0: // delete one existing order
			idx := r.Intn(len(okeys))
			k := okeys[idx]
			_, err = c.Delete("orders",
				expr.Cmp{Op: expr.EQ, L: expr.Col{Name: "orderkey"}, R: expr.Const{V: types.Int(k)}})
			applied = func() {
				delete(mirror, k)
				okeys[idx] = okeys[len(okeys)-1]
				okeys = okeys[:len(okeys)-1]
			}
		case draw < 0.88 && len(okeys) > 0: // reprice one existing order
			k := okeys[r.Intn(len(okeys))]
			price := types.Float(float64(r.Intn(10000)))
			_, err = c.Update("orders",
				map[string]types.Value{"totalprice": price},
				expr.Cmp{Op: expr.EQ, L: expr.Col{Name: "orderkey"}, R: expr.Const{V: types.Int(k)}})
			applied = func() {
				nt := mirror[k].Clone()
				nt[2] = price
				mirror[k] = nt
			}
		default: // insert a new customer (the view's other side)
			nextCK++
			ck := nextCK
			err = c.Insert("customer", []types.Tuple{cust(ck, float64(ck))})
			applied = func() { wantCust++ }
		}
		if err == nil {
			committed++
			applied()
		} else {
			failed++
		}
	}

	recoverAll(t, c, inj)

	if total := inj.Stats().Total(); total == 0 {
		t.Fatalf("storm injected no faults (committed=%d failed=%d)", committed, failed)
	}
	t.Logf("storm: %d committed, %d failed, faults=%+v retries=%d",
		committed, failed, inj.Stats(), c.Metrics().Retries)

	got, err := c.TableRows("orders")
	if err != nil {
		t.Fatalf("TableRows(orders) after recovery: %v", err)
	}
	want := make([]types.Tuple, 0, len(mirror))
	for _, tu := range mirror {
		want = append(want, tu)
	}
	assertBagEqual(t, "orders after storm", got, want)

	custRows, err := c.TableRows("customer")
	if err != nil {
		t.Fatalf("TableRows(customer) after recovery: %v", err)
	}
	if int64(len(custRows)) != wantCust {
		t.Fatalf("customer has %d rows after storm, want %d", len(custRows), wantCust)
	}

	if err := c.CheckViewConsistency("jv1"); err != nil {
		t.Fatalf("view inconsistent after storm: %v", err)
	}
	if err := c.CheckAllStructures(); err != nil {
		t.Fatalf("auxiliary structures inconsistent after storm: %v", err)
	}
}

// TestRetriedInsertNotDoubleApplied drops exactly one reply: the insert is
// applied at the node but the coordinator never hears back, retries, and
// the node's sequence-number dedup must swallow the duplicate delivery.
func TestRetriedInsertNotDoubleApplied(t *testing.T) {
	inj := fault.New(fault.Config{Seed: 7})
	c := newChaosCluster(t, inj, catalog.StrategyAuxRel, 4, 2)

	before, err := c.TableRows("orders")
	if err != nil {
		t.Fatal(err)
	}
	inj.FailNext(fault.KindDropReply, 1)
	if err := c.Insert("orders", []types.Tuple{ord(500, 1, 5.0)}); err != nil {
		t.Fatalf("insert with dropped reply should succeed via retry: %v", err)
	}
	after, err := c.TableRows("orders")
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before)+1 {
		t.Fatalf("orders grew by %d rows, want exactly 1 (dedup failed)", len(after)-len(before))
	}
	if got := c.Metrics().Retries; got < 1 {
		t.Fatalf("Metrics.Retries = %d, want >= 1", got)
	}
	if err := c.CheckViewConsistency("jv1"); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckAllStructures(); err != nil {
		t.Fatal(err)
	}
}

// TestDegradedModeReadsAndRecovery crashes a node and checks the
// degradation contract: maintenance statements fail fast with ErrDegraded
// and roll back cleanly, reads return the surviving rows tagged with
// ErrPartial, and Recover restores full service with consistent
// structures.
func TestDegradedModeReadsAndRecovery(t *testing.T) {
	inj := fault.New(fault.Config{Seed: 11})
	c := newChaosCluster(t, inj, catalog.StrategyGlobalIndex, 6, 2)

	full, err := c.TableRows("orders")
	if err != nil {
		t.Fatal(err)
	}

	inj.Crash(2)
	// A broad insert discovers the crash (some bucket routes to node 2),
	// fails, and rolls back on the surviving nodes.
	batch := []types.Tuple{ord(600, 0, 1), ord(601, 1, 2), ord(602, 2, 3), ord(603, 3, 4), ord(604, 4, 5), ord(605, 5, 6)}
	if err := c.Insert("orders", batch); err == nil {
		t.Fatal("insert with a crashed node should fail")
	}
	if d := c.Degraded(); len(d) != 1 || d[0] != 2 {
		t.Fatalf("Degraded() = %v, want [2]", d)
	}

	// Further maintenance fails fast.
	if err := c.Insert("orders", []types.Tuple{ord(700, 1, 1)}); !errors.Is(err, ErrDegraded) {
		t.Fatalf("insert while degraded: %v, want ErrDegraded", err)
	}
	if _, err := c.Delete("orders", expr.True); !errors.Is(err, ErrDegraded) {
		t.Fatalf("delete while degraded: %v, want ErrDegraded", err)
	}
	tx := c.Begin()
	if err := tx.Insert("orders", []types.Tuple{ord(701, 1, 1)}); !errors.Is(err, ErrDegraded) {
		t.Fatalf("txn insert while degraded: %v, want ErrDegraded", err)
	}
	_ = tx.Rollback()

	// Reads degrade to partial results.
	partial, err := c.TableRows("orders")
	if !errors.Is(err, ErrPartial) {
		t.Fatalf("TableRows while degraded: %v, want ErrPartial", err)
	}
	if len(partial) == 0 || len(partial) >= len(full) {
		t.Fatalf("partial read returned %d of %d rows", len(partial), len(full))
	}
	if _, err := c.ViewRows("jv1"); !errors.Is(err, ErrPartial) {
		t.Fatalf("ViewRows while degraded: %v, want ErrPartial", err)
	}
	// Distributed joins cannot be partial; they refuse.
	if _, _, err := c.QueryJoin(QuerySpec{
		Tables: []string{"customer", "orders"},
		Joins:  []catalog.JoinPred{{Left: "customer", LeftCol: "custkey", Right: "orders", RightCol: "custkey"}},
	}); !errors.Is(err, ErrDegraded) {
		t.Fatalf("QueryJoin while degraded: %v, want ErrDegraded", err)
	}

	// Restart + Recover restores full service; the failed inserts left no
	// residue anywhere.
	inj.Restart(2)
	if err := c.Recover(2); err != nil {
		t.Fatal(err)
	}
	got, err := c.TableRows("orders")
	if err != nil {
		t.Fatal(err)
	}
	assertBagEqual(t, "orders after recovery", got, full)
	if err := c.CheckViewConsistency("jv1"); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckAllStructures(); err != nil {
		t.Fatal(err)
	}
	// Full service: DML works again.
	if err := c.Insert("orders", []types.Tuple{ord(800, 2, 8)}); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckViewConsistency("jv1"); err != nil {
		t.Fatal(err)
	}
}

// TestCrashMidStatementRollsBack lands a crash in the middle of a
// multi-node insert: work already applied on surviving nodes must be
// compensated immediately, work on the crashed node repaired at Recover,
// and the statement must leave no trace.
func TestCrashMidStatementRollsBack(t *testing.T) {
	for _, strat := range allStrategies {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			inj := fault.New(fault.Config{Seed: 13})
			c := newChaosCluster(t, inj, strat, 6, 2)
			full, err := c.TableRows("orders")
			if err != nil {
				t.Fatal(err)
			}

			// The batch spans every node; the crash fires a few calls in,
			// after some of the statement's work has been applied.
			inj.CrashAfter(0, 3)
			batch := []types.Tuple{ord(900, 0, 1), ord(901, 1, 2), ord(902, 2, 3), ord(903, 3, 4), ord(904, 4, 5), ord(905, 5, 6)}
			if err := c.Insert("orders", batch); err == nil {
				t.Fatal("insert crossing a mid-statement crash should fail")
			}

			recoverAll(t, c, inj)
			got, err := c.TableRows("orders")
			if err != nil {
				t.Fatal(err)
			}
			assertBagEqual(t, "orders after mid-statement crash", got, full)
			if err := c.CheckViewConsistency("jv1"); err != nil {
				t.Fatal(err)
			}
			if err := c.CheckAllStructures(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestChaosStormMultiwayView runs a shorter storm against the three-way
// customer x orders x lineitem view, exercising delta propagation through
// a two-step join chain under faults.
func TestChaosStormMultiwayView(t *testing.T) {
	inj := fault.New(fault.Config{
		Seed:        21,
		DropRequest: 0.04,
		DropReply:   0.03,
		Duplicate:   0.04,
		HandlerErr:  0.04,
	})
	c, err := New(Config{Nodes: 4, Faults: inj, RetryAttempts: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	for _, tab := range []*catalog.Table{customerTable(), ordersTable(), lineitemTable()} {
		if err := c.CreateTable(tab); err != nil {
			t.Fatal(err)
		}
	}
	ln := int64(0)
	var customers, orders, lines []types.Tuple
	for ck := int64(0); ck < 5; ck++ {
		customers = append(customers, cust(ck, float64(ck)))
		for o := int64(0); o < 2; o++ {
			okey := ck*2 + o + 1
			orders = append(orders, ord(okey, ck, float64(okey)))
			ln++
			lines = append(lines, li(okey, ln, float64(ln)))
		}
	}
	for tab, rows := range map[string][]types.Tuple{"customer": customers, "orders": orders, "lineitem": lines} {
		if err := c.Insert(tab, rows); err != nil {
			t.Fatal(err)
		}
		if err := c.RefreshStats(tab); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CreateView(jv2Def("jv2", catalog.StrategyAuxRel)); err != nil {
		t.Fatal(err)
	}

	r := newRand(21)
	nextOK, nextLN := int64(1000), int64(1000)
	inj.Arm()
	for i := 0; i < 25; i++ {
		if len(c.Degraded()) > 0 || len(inj.DownNodes()) > 0 {
			if r.Float64() < 0.5 {
				recoverAll(t, c, inj)
				inj.Arm()
			}
		} else if r.Float64() < 0.08 {
			inj.Crash(r.Intn(4))
		}
		if r.Float64() < 0.5 {
			nextOK++
			_ = c.Insert("orders", []types.Tuple{ord(nextOK, int64(r.Intn(5)), float64(nextOK))})
		} else {
			nextLN++
			_ = c.Insert("lineitem", []types.Tuple{li(int64(1+r.Intn(10)), nextLN, float64(nextLN))})
		}
	}
	recoverAll(t, c, inj)

	if err := c.CheckViewConsistency("jv2"); err != nil {
		t.Fatalf("jv2 inconsistent after storm: %v", err)
	}
	if err := c.CheckAllStructures(); err != nil {
		t.Fatalf("structures inconsistent after storm: %v", err)
	}
}

// TestRecoverSurvivesTransientFaults runs recovery itself over a faulty
// network: repair replay, in-doubt resolution and derived rebuild must
// retry transient failures (with dedup making the retries safe) instead
// of aborting.
func TestRecoverSurvivesTransientFaults(t *testing.T) {
	inj := fault.New(fault.Config{
		Seed:        31,
		DropRequest: 0.10,
		DropReply:   0.10,
		HandlerErr:  0.10,
	})
	c := newChaosCluster(t, inj, catalog.StrategyAuxRel, 6, 2)
	full, err := c.TableRows("orders")
	if err != nil {
		t.Fatal(err)
	}

	// Crash mid-statement so repair work queues up for the dead node.
	inj.CrashAfter(1, 3)
	batch := []types.Tuple{ord(950, 0, 1), ord(951, 1, 2), ord(952, 2, 3), ord(953, 3, 4), ord(954, 4, 5), ord(955, 5, 6)}
	if err := c.Insert("orders", batch); err == nil {
		t.Fatal("insert crossing the crash should fail")
	}

	// Restart the node but keep the lossy schedule armed: Recover has to
	// fight through the same faults maintenance does.
	inj.Restart(1)
	inj.Arm()
	if err := c.Recover(1); err != nil {
		t.Fatalf("Recover under transient faults: %v", err)
	}
	inj.Disarm()
	if inj.Stats().Total() == 0 {
		t.Fatal("no faults injected during recovery")
	}

	got, err := c.TableRows("orders")
	if err != nil {
		t.Fatal(err)
	}
	assertBagEqual(t, "orders after faulty recovery", got, full)
	if err := c.CheckViewConsistency("jv1"); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckAllStructures(); err != nil {
		t.Fatal(err)
	}
}
