package cluster

import "math/rand"

// newRand gives the randomized tests a seeded source so failures reproduce.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
