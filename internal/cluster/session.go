package cluster

import (
	"fmt"

	"joinview/internal/catalog"
	"joinview/internal/expr"
	"joinview/internal/maintain"
	"joinview/internal/node"
	"joinview/internal/txn"
	"joinview/internal/types"
)

// Txn is an open multi-statement transaction — the paper's "begin
// transaction; update base relation; update auxiliary relation; update
// join view; end transaction" scope, widened to several statements.
//
// Each statement applies atomically (a failing statement is fully undone
// and reported, leaving the transaction open). Rollback undoes every
// applied statement in reverse with *logical* compensation: the inverse
// statement runs through the full maintenance pipeline, so auxiliary
// relations, global indexes and views stay consistent even when later
// statements in the same transaction moved the affected tuples. Isolation
// is statement-level: other sessions observe applied statements
// immediately (the paper's locking protocols for stronger isolation are
// companion work; its experiments run one transaction at a time).
type Txn struct {
	c    *Cluster
	u    txn.Txn
	done bool
}

// Begin opens a transaction.
func (c *Cluster) Begin() *Txn {
	return &Txn{c: c}
}

func (t *Txn) check() error {
	if t.done {
		return fmt.Errorf("cluster: transaction already finished")
	}
	// Multi-statement transactions stay synchronous: their statement-level
	// rollback hooks compensate against applied state, which deferred
	// deltas would invalidate. Drain the queue first so the transaction
	// sees — and compensates against — fully-applied state.
	if t.c.asyncOn() {
		if err := t.c.Flush(); err != nil {
			return fmt.Errorf("cluster: draining maintenance queue before transaction statement: %w", err)
		}
	}
	return nil
}

// Insert runs one insert statement inside the transaction.
func (t *Txn) Insert(table string, tuples []types.Tuple) error {
	if err := t.check(); err != nil {
		return err
	}
	if len(tuples) == 0 {
		return nil
	}
	h := t.c.lockStmt(table)
	defer h.Release()
	if err := t.c.failIfDegraded(); err != nil {
		return err
	}
	tab, err := t.c.cat.Table(table)
	if err != nil {
		return err
	}
	return t.insertLockedStmt(tab, tuples)
}

// Delete runs one delete statement inside the transaction, returning the
// deleted tuples.
func (t *Txn) Delete(table string, pred expr.Expr) ([]types.Tuple, error) {
	if err := t.check(); err != nil {
		return nil, err
	}
	h := t.c.lockStmt(table)
	defer h.Release()
	return t.deleteLockedStmt(table, pred)
}

func (t *Txn) deleteLockedStmt(table string, pred expr.Expr) ([]types.Tuple, error) {
	deleted, err := t.c.deleteLocked(table, pred)
	if err != nil {
		return nil, err
	}
	if len(deleted) == 0 {
		return nil, nil
	}
	t.c.bumpRows(table, -int64(len(deleted)))
	tab, err := t.c.cat.Table(table)
	if err != nil {
		return nil, err
	}
	victims := append([]types.Tuple(nil), deleted...)
	t.u.OnRollback(func() error {
		// Logical inverse: re-insert the victims through the compiled
		// insert pipeline, as an atomic statement of its own.
		mp, err := t.c.planFor(tab.Name, maintain.OpInsert)
		if err != nil {
			return err
		}
		if err := t.c.runStmt(func(undo *txn.Txn) error {
			return t.c.execPlan(undo, mp, victims, nil)
		}); err != nil {
			return err
		}
		t.c.publishStmt(tab.Name)
		t.c.bumpRows(table, int64(len(victims)))
		return nil
	})
	return deleted, nil
}

// Update runs one update statement inside the transaction (delete + insert
// of the modified tuples), returning the affected count.
func (t *Txn) Update(table string, set map[string]types.Value, pred expr.Expr) (int, error) {
	if err := t.check(); err != nil {
		return 0, err
	}
	h := t.c.lockStmt(table)
	defer h.Release()
	if err := t.c.failIfDegraded(); err != nil {
		return 0, err
	}
	tab, err := t.c.cat.Table(table)
	if err != nil {
		return 0, err
	}
	for col := range set {
		if tab.Schema.ColIndex(col) < 0 {
			return 0, fmt.Errorf("cluster: update %q: unknown column %q", table, col)
		}
	}
	mark := t.u.Mark()
	victims, err := t.deleteLockedStmt(table, pred)
	if err != nil {
		return 0, err
	}
	if len(victims) == 0 {
		return 0, nil
	}
	replacement := make([]types.Tuple, len(victims))
	for i, v := range victims {
		nt := v.Clone()
		for col, val := range set {
			nt[tab.Schema.MustColIndex(col)] = val
		}
		replacement[i] = nt
	}
	if err := t.insertLockedStmt(tab, replacement); err != nil {
		// Undo the delete half so the statement is atomic.
		if rbErr := t.u.RollbackTo(mark); rbErr != nil {
			return 0, fmt.Errorf("%w (statement rollback also failed: %v)", err, rbErr)
		}
		return 0, err
	}
	return len(victims), nil
}

// insertLockedStmt is the insert body shared by Insert and Update (mu
// already held).
func (t *Txn) insertLockedStmt(tab *catalog.Table, tuples []types.Tuple) error {
	mp, err := t.c.planFor(tab.Name, maintain.OpInsert)
	if err != nil {
		return err
	}
	if err := t.c.runStmt(func(stmt *txn.Txn) error {
		return t.c.execPlan(stmt, mp, tuples, nil)
	}); err != nil {
		return err
	}
	t.c.publishStmt(tab.Name)
	t.c.bumpRows(tab.Name, int64(len(tuples)))
	inserted := append([]types.Tuple(nil), tuples...)
	t.u.OnRollback(func() error {
		if err := t.c.deleteTuplesLocked(tab, inserted); err != nil {
			return err
		}
		t.c.bumpRows(tab.Name, -int64(len(inserted)))
		return nil
	})
	return nil
}

// Commit finalizes the transaction; its effects stay.
func (t *Txn) Commit() error {
	if err := t.check(); err != nil {
		return err
	}
	t.done = true
	t.u.Commit()
	return nil
}

// Rollback undoes every applied statement in reverse order. It takes the
// global lock: the undo statements may span several tables, and computing
// their combined claim set up front is not worth the complexity for an
// abort path.
func (t *Txn) Rollback() error {
	if err := t.check(); err != nil {
		return err
	}
	t.done = true
	h := t.c.lockGlobal()
	defer h.Release()
	return t.u.Rollback()
}

// Active reports whether the transaction can still accept statements.
func (t *Txn) Active() bool { return !t.done }

// deleteTuplesLocked removes one stored instance per given tuple through
// the compiled delete pipeline (value-addressed delete; mu already held).
func (c *Cluster) deleteTuplesLocked(tab *catalog.Table, tuples []types.Tuple) error {
	mp, err := c.planFor(tab.Name, maintain.OpDelete)
	if err != nil {
		return err
	}
	// Route each tuple to its home node and locate one instance there.
	buckets, err := c.part.Spread(tab.Schema, tab.PartitionCol, tuples)
	if err != nil {
		return err
	}
	var victims []types.Tuple
	var locs []located
	for n, bucket := range buckets {
		if len(bucket) == 0 {
			continue
		}
		resp, err := c.call(n, node.LocateMatch{Frag: tab.Name, HintCol: tab.PartitionCol, Tuples: bucket})
		if err != nil {
			return err
		}
		rr := resp.(node.RowsResult)
		if len(rr.Rows) != len(bucket) {
			return fmt.Errorf("cluster: compensation found %d of %d tuples in %q at node %d",
				len(rr.Rows), len(bucket), tab.Name, n)
		}
		for i := range rr.Rows {
			victims = append(victims, rr.Tuples[i])
			locs = append(locs, located{node: n, row: rr.Rows[i], tuple: rr.Tuples[i]})
		}
	}
	if err := c.runStmt(func(undo *txn.Txn) error {
		return c.execPlan(undo, mp, victims, locs)
	}); err != nil {
		return err
	}
	c.publishStmt(tab.Name)
	return nil
}
