package cluster

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"joinview/internal/catalog"
	"joinview/internal/expr"
	"joinview/internal/types"
)

func eqInt(col string, v int64) expr.Cmp {
	return expr.Cmp{Op: expr.EQ, L: expr.Col{Name: col}, R: expr.Const{V: types.Int(v)}}
}

// Tests for the shared maintenance DAG executor: a group of views over the
// same base tables whose delta-join chains coincide, maintained through
// hoisted shared nodes. They pin the sharing win, the exactness of stage
// attribution, cache invalidation in the shared world (view DROP shrinking
// the group, statistics drift on the shared probe table, concurrent DDL),
// and the reference-counted lifecycle of deduplicated auxiliary relations.

// newSharedTPCR is newTPCR with control over plan sharing: the customer /
// orders / lineitem schema, loaded and stats-refreshed.
func newSharedTPCR(t *testing.T, nodes int, disableSharing bool) *Cluster {
	t.Helper()
	c, err := New(Config{Nodes: nodes, DisablePlanSharing: disableSharing})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	for _, tab := range []*catalog.Table{customerTable(), ordersTable(), lineitemTable()} {
		if err := c.CreateTable(tab); err != nil {
			t.Fatal(err)
		}
	}
	var customers, orders []types.Tuple
	ok := int64(0)
	for ck := int64(0); ck < 16; ck++ {
		customers = append(customers, cust(ck, float64(ck)*1.5))
		for o := 0; o < 2; o++ {
			ok++
			orders = append(orders, ord(ok, ck, float64(ok)*10))
		}
	}
	if err := c.Insert("customer", customers); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("orders", orders); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"customer", "orders", "lineitem"} {
		if err := c.RefreshStats(name); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// createSharedGroup registers n structurally identical auto-strategy views
// over customer ⋈ orders — the executor hoists their common delta-join
// chain into shared DAG nodes.
func createSharedGroup(t *testing.T, c *Cluster, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := c.CreateView(jv1Def(fmt.Sprintf("jvs_%02d", i), catalog.StrategyAuto)); err != nil {
			t.Fatal(err)
		}
	}
}

func checkSharedGroup(t *testing.T, c *Cluster, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := c.CheckViewConsistency(fmt.Sprintf("jvs_%02d", i)); err != nil {
			t.Fatalf("jvs_%02d: %v", i, err)
		}
	}
}

// TestSharedGroupConsistencyAndAttribution drives inserts and deletes
// through a shared group in both update directions and checks (a) every
// view stays exactly consistent, (b) the hoisted delta joins are attributed
// to their own "sharedjoin" stage, and (c) serial per-stage attribution
// still sums to the cluster's total I/Os — the invariant the unshared
// pipeline already guarantees.
func TestSharedGroupConsistencyAndAttribution(t *testing.T) {
	const nviews = 6
	c := newSharedTPCR(t, 4, false)
	createSharedGroup(t, c, nviews)
	c.ResetMetrics()

	// Customer inserts probe orders (the shared AR chain); orders inserts
	// probe customer (partitioned on the join attribute, shared route).
	for i := 0; i < 4; i++ {
		if err := c.Insert("customer", []types.Tuple{cust(int64(100+i), 5)}); err != nil {
			t.Fatal(err)
		}
		if err := c.Insert("orders", []types.Tuple{ord(int64(900+i), int64(i), 7)}); err != nil {
			t.Fatal(err)
		}
	}
	p := c.Metrics().Pipeline
	sc, ok := p.Stages["sharedjoin"]
	if !ok || sc.Executions == 0 {
		t.Fatalf("sharedjoin stage did not run: %+v", p.Stages)
	}
	if sc.Pages == 0 {
		t.Error("sharedjoin stage attributed no pages in serial mode")
	}
	// Exact serial attribution over the insert stream (deletes add a victim
	// scan outside the pipeline's stage windows, as in the per-view world).
	var stageSum int64
	for _, s := range p.Stages {
		stageSum += s.Pages
	}
	if total := c.Metrics().TotalIOs(); stageSum != total {
		t.Errorf("per-stage pages %d != total I/Os %d (serial attribution must stay exact)", stageSum, total)
	}

	// Deletes flow through the same shared DAG (OpDelete plans): views must
	// subtract exactly the lost join results.
	if _, err := c.Delete("customer", eqInt("custkey", 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Delete("orders", eqInt("orderkey", 901)); err != nil {
		t.Fatal(err)
	}
	checkSharedGroup(t, c, nviews)
}

// TestSharedGroupBeatsPerViewExecution runs the identical schema and
// statement stream with and without plan sharing: both end exactly
// consistent, and the shared executor does strictly less I/O and
// messaging — the tentpole's whole point.
func TestSharedGroupBeatsPerViewExecution(t *testing.T) {
	const nviews, stmts = 8, 6
	run := func(disable bool) (int64, int64) {
		c := newSharedTPCR(t, 4, disable)
		createSharedGroup(t, c, nviews)
		c.ResetMetrics()
		for i := 0; i < stmts; i++ {
			if err := c.Insert("customer", []types.Tuple{cust(int64(200+i), 3)}); err != nil {
				t.Fatal(err)
			}
		}
		checkSharedGroup(t, c, nviews)
		m := c.Metrics()
		return m.TotalIOs(), m.Net.Messages
	}
	baseIOs, baseMsgs := run(true)
	sharedIOs, sharedMsgs := run(false)
	if sharedIOs >= baseIOs {
		t.Errorf("shared execution did not reduce I/O: %d vs %d per-view", sharedIOs, baseIOs)
	}
	if sharedMsgs >= baseMsgs {
		t.Errorf("shared execution did not reduce messages: %d vs %d per-view", sharedMsgs, baseMsgs)
	}
}

// TestSharedGroupDropViewInvalidation drops one member of a shared group
// and checks the cached shared plan is evicted, the recompiled DAG no
// longer mentions the dropped view, and — once the group shrinks to one
// view — the plan loses shared potential entirely and the classic per-view
// path takes over.
func TestSharedGroupDropViewInvalidation(t *testing.T) {
	c := newSharedTPCR(t, 4, false)
	createSharedGroup(t, c, 3)

	// Warm the shared plan and confirm steady-state reuse.
	if err := c.Insert("customer", []types.Tuple{cust(300, 1)}); err != nil {
		t.Fatal(err)
	}
	before := c.Metrics().Pipeline
	if err := c.Insert("customer", []types.Tuple{cust(301, 1)}); err != nil {
		t.Fatal(err)
	}
	if d := c.Metrics().Pipeline.Sub(before); d.PlanCacheHits != 1 {
		t.Fatalf("warm shared plan not reused: %+v", d)
	}
	out, err := c.ExplainPipeline("customer", "insert")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "executed once, feeds 3 views") {
		t.Errorf("explain before DROP missing 3-view shared node:\n%s", out)
	}

	// DROP one view: the very next insert must recompile against the
	// 2-view group and maintain exactly the survivors.
	if err := c.DropView("jvs_01"); err != nil {
		t.Fatal(err)
	}
	before = c.Metrics().Pipeline
	if err := c.Insert("customer", []types.Tuple{cust(302, 1)}); err != nil {
		t.Fatal(err)
	}
	if d := c.Metrics().Pipeline.Sub(before); d.PlanCacheMisses != 1 {
		t.Errorf("DROP of a shared-group member did not evict the plan: %+v", d)
	}
	for _, v := range []string{"jvs_00", "jvs_02"} {
		if err := c.CheckViewConsistency(v); err != nil {
			t.Fatalf("%s after group shrink: %v", v, err)
		}
	}
	out, err = c.ExplainPipeline("customer", "insert")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "jvs_01") {
		t.Errorf("recompiled DAG still mentions the dropped view:\n%s", out)
	}
	if !strings.Contains(out, "executed once, feeds 2 views") {
		t.Errorf("explain after DROP missing 2-view shared node:\n%s", out)
	}

	// Shrink to a single view: no shared potential, no DAG section, classic
	// path — and still consistent.
	if err := c.DropView("jvs_02"); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("customer", []types.Tuple{cust(303, 1)}); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckViewConsistency("jvs_00"); err != nil {
		t.Fatal(err)
	}
	out, err = c.ExplainPipeline("customer", "insert")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "shared maintenance DAG") {
		t.Errorf("single-view plan still renders a shared DAG:\n%s", out)
	}
}

// TestSharedGroupStatsDriftInvalidation checks the fanout-dependency guard
// through the shared path: when the statistics of the table the shared
// nodes probe drift, the cached shared plan recompiles, exactly like the
// per-view pipeline's guarantee.
func TestSharedGroupStatsDriftInvalidation(t *testing.T) {
	c := newSharedTPCR(t, 4, false)
	createSharedGroup(t, c, 3)

	if err := c.Insert("customer", []types.Tuple{cust(400, 1)}); err != nil {
		t.Fatal(err)
	}
	before := c.Metrics().Pipeline
	if err := c.Insert("customer", []types.Tuple{cust(401, 1)}); err != nil {
		t.Fatal(err)
	}
	if d := c.Metrics().Pipeline.Sub(before); d.PlanCacheHits != 1 {
		t.Fatalf("warm shared plan not reused: %+v", d)
	}
	// Customer inserts probe orders; halve orders' distinct custkey count
	// (doubling the modeled fan-out) and the next insert must recompile.
	ts, ok := c.Stats().Get("orders")
	if !ok {
		t.Fatal("no orders statistics")
	}
	ts.Distinct["custkey"] = ts.Distinct["custkey"] / 2
	c.Stats().Set("orders", ts)
	before = c.Metrics().Pipeline
	if err := c.Insert("customer", []types.Tuple{cust(402, 1)}); err != nil {
		t.Fatal(err)
	}
	if d := c.Metrics().Pipeline.Sub(before); d.PlanCacheMisses != 1 {
		t.Errorf("stats drift on the shared probe table not detected: %+v", d)
	}
	checkSharedGroup(t, c, 3)
}

// TestSharedGroupConcurrentDDLDML races writer sessions updating both base
// tables of a 20-view shared group against repeated CREATE/DROP VIEW of an
// extra group member. No stale shared plan may execute and every view must
// land exactly consistent; -race must stay clean across the shared
// executor's memoization.
func TestSharedGroupConcurrentDDLDML(t *testing.T) {
	const nviews, writers, stmts, ddlRounds = 20, 3, 8, 6
	c := newSharedTPCR(t, 4, false)
	createSharedGroup(t, c, nviews)

	errs := make([]error, writers+2)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < stmts; j++ {
				ck := int64(1000*(w+1) + j)
				if err := c.Insert("customer", []types.Tuple{cust(ck, float64(j))}); err != nil {
					errs[w] = err
					return
				}
				if j%2 == 1 {
					if _, err := c.Delete("customer", eqInt("custkey", ck)); err != nil {
						errs[w] = err
						return
					}
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < stmts; j++ {
			if err := c.Insert("orders", []types.Tuple{ord(int64(5000+j), int64(j%16), 9)}); err != nil {
				errs[writers] = err
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < ddlRounds; r++ {
			if err := c.CreateView(jv1Def("jvs_extra", catalog.StrategyAuto)); err != nil {
				errs[writers+1] = err
				return
			}
			if err := c.DropView("jvs_extra"); err != nil {
				errs[writers+1] = err
				return
			}
		}
	}()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
	checkSharedGroup(t, c, nviews)
	if err := c.CheckAllStructures(); err != nil {
		t.Fatal(err)
	}
}

// TestAutoAuxRelDedupAndRefcount pins the deduplicated-AR lifecycle: the
// second view of a group reuses the first view's auto-created AR instead of
// materializing a twin, the AR survives as long as any referencing view
// does, and the last DROP VIEW garbage-collects it.
func TestAutoAuxRelDedupAndRefcount(t *testing.T) {
	c := newSharedTPCR(t, 4, false)

	if err := c.CreateView(jv1Def("jv_a", catalog.StrategyAuto)); err != nil {
		t.Fatal(err)
	}
	ars := c.Catalog().AuxRelsFor("orders")
	if len(ars) != 1 || !ars[0].AutoCreated {
		t.Fatalf("first view: want exactly one auto-created AR on orders, got %+v", ars)
	}
	arName := ars[0].Name

	// Identical second view: deduplicated onto the same AR, refcounted.
	if err := c.CreateView(jv1Def("jv_b", catalog.StrategyAuto)); err != nil {
		t.Fatal(err)
	}
	if got := c.Catalog().AuxRelsFor("orders"); len(got) != 1 {
		t.Fatalf("second identical view materialized a duplicate AR: %+v", got)
	}
	if refs := c.Catalog().AuxRelRefs(arName); len(refs) != 2 || refs[0] != "jv_a" || refs[1] != "jv_b" {
		t.Fatalf("AR refs = %v, want [jv_a jv_b]", refs)
	}

	// Dropping one view keeps the AR alive for the survivor — which must
	// still maintain correctly through it.
	if err := c.DropView("jv_a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Catalog().AuxRel(arName); err != nil {
		t.Fatalf("AR dropped while jv_b still references it: %v", err)
	}
	if refs := c.Catalog().AuxRelRefs(arName); len(refs) != 1 || refs[0] != "jv_b" {
		t.Fatalf("AR refs after first drop = %v, want [jv_b]", refs)
	}
	if err := c.Insert("customer", []types.Tuple{cust(500, 2)}); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckViewConsistency("jv_b"); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckAllStructures(); err != nil {
		t.Fatal(err)
	}

	// Dropping the last referencing view collects the AR and its fragments.
	if err := c.DropView("jv_b"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Catalog().AuxRel(arName); err == nil {
		t.Error("auto-created AR survived its last referencing view")
	}
}

// TestUserAuxRelNeverAutoDropped checks the other half of the contract:
// an AR the user materialized explicitly is reused by views but outlives
// them all — only an explicit DropAuxRel removes it.
func TestUserAuxRelNeverAutoDropped(t *testing.T) {
	c := newSharedTPCR(t, 4, false)
	if err := c.CreateAuxRel(&catalog.AuxRel{
		Name: "ar_mine", Table: "orders", PartitionCol: "custkey",
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateView(jv1Def("jv_a", catalog.StrategyAuto)); err != nil {
		t.Fatal(err)
	}
	// The view reused the user's AR rather than creating its own.
	if got := c.Catalog().AuxRelsFor("orders"); len(got) != 1 || got[0].Name != "ar_mine" {
		t.Fatalf("view did not reuse the user AR: %+v", got)
	}
	if err := c.DropView("jv_a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Catalog().AuxRel("ar_mine"); err != nil {
		t.Fatalf("user-created AR was auto-dropped: %v", err)
	}
	if err := c.DropAuxRel("ar_mine"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Catalog().AuxRel("ar_mine"); err == nil {
		t.Error("explicit DropAuxRel left the AR behind")
	}
}
