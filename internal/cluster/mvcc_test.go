package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"joinview/internal/catalog"
	"joinview/internal/types"
)

// newMVCCCluster builds one shared schema a ⋈ b = jv on a concurrent
// transport: b pre-loaded with 3 rows per join value 0..15, so every
// inserted a-row yields exactly 3 view rows.
func newMVCCCluster(t *testing.T, cfg Config, strategy catalog.Strategy) *Cluster {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.CreateTable(&catalog.Table{
		Name: "a",
		Schema: types.NewSchema(
			types.Column{Name: "id", Kind: types.KindInt},
			types.Column{Name: "c", Kind: types.KindInt},
		),
		PartitionCol: "id",
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable(&catalog.Table{
		Name: "b",
		Schema: types.NewSchema(
			types.Column{Name: "id", Kind: types.KindInt},
			types.Column{Name: "d", Kind: types.KindInt},
		),
		PartitionCol: "id",
		Indexes:      []catalog.Index{{Name: "ix_b_d", Col: "d"}},
	}); err != nil {
		t.Fatal(err)
	}
	var rows []types.Tuple
	for v := int64(0); v < 16; v++ {
		for f := int64(0); f < 3; f++ {
			rows = append(rows, types.Tuple{types.Int(v*3 + f), types.Int(v)})
		}
	}
	if err := c.Insert("b", rows); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateView(&catalog.View{
		Name:   "jv",
		Tables: []string{"a", "b"},
		Joins:  []catalog.JoinPred{{Left: "a", LeftCol: "c", Right: "b", RightCol: "d"}},
		Out: []catalog.OutCol{
			{Table: "a", Col: "id"}, {Table: "a", Col: "c"}, {Table: "b", Col: "id"},
		},
		PartitionTable: "a", PartitionCol: "id",
		Strategy: strategy,
	}); err != nil {
		t.Fatal(err)
	}
	return c
}

// mvccTransports enumerates the two concurrent transports snapshot reads
// run on.
func mvccTransports() map[string]Config {
	return map[string]Config{
		"chan": {Nodes: 4, UseChannels: true},
		"tcp":  {Nodes: 4, UseTCP: true},
	}
}

// TestSnapshotReadsDoNotBlockBehindWriters pins the MVCC contract
// directly: a statement holding exclusive claims on the table and the view
// (exactly what a mid-flight writer holds) must not delay snapshot reads
// at all. Under LockedReads the same reads would queue behind the claims
// until release.
func TestSnapshotReadsDoNotBlockBehindWriters(t *testing.T) {
	for name, cfg := range mvccTransports() {
		t.Run(name, func(t *testing.T) {
			c := newMVCCCluster(t, cfg, catalog.StrategyAuxRel)
			if err := c.Insert("a", []types.Tuple{{types.Int(1), types.Int(2)}}); err != nil {
				t.Fatal(err)
			}
			if !c.mvccOn() {
				t.Fatal("MVCC should be on for a concurrent transport")
			}
			// Simulate a writer parked mid-statement: exclusive claims on
			// the table, the view, shared on the view's other base.
			h := c.lockStmt("a")
			done := make(chan error, 1)
			go func() {
				rows, err := c.TableRows("a")
				if err == nil && len(rows) != 1 {
					err = fmt.Errorf("snapshot table read got %d rows, want 1", len(rows))
				}
				if err == nil {
					var view []types.Tuple
					view, err = c.ViewRows("jv")
					if err == nil && len(view) != 3 {
						err = fmt.Errorf("snapshot view read got %d rows, want 3", len(view))
					}
				}
				done <- err
			}()
			select {
			case err := <-done:
				if err != nil {
					t.Fatal(err)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("snapshot read blocked behind a writer's claims")
			}
			h.Release()
		})
	}
}

// decodeStmtRow splits a test id laid out as writer*1_000_000 +
// stmt*1_000 + seq.
func decodeStmtRow(id int64) (writer, stmt int) {
	return int(id / 1_000_000), int(id % 1_000_000 / 1_000)
}

// checkStmtGroups verifies one observed snapshot: every writer's
// statements must appear atomically (0 or groupSize rows each) and in
// prefix order (a visible statement implies every earlier statement of the
// same writer is visible).
func checkStmtGroups(rows []types.Tuple, writers, stmts, groupSize int) error {
	seen := make([][]int, writers)
	for w := range seen {
		seen[w] = make([]int, stmts)
	}
	for _, r := range rows {
		w, s := decodeStmtRow(r[0].I)
		if w < 0 || w >= writers || s < 0 || s >= stmts {
			return fmt.Errorf("unexpected row id %d", r[0].I)
		}
		seen[w][s]++
	}
	for w := range seen {
		visible := true
		for s := 0; s < stmts; s++ {
			switch seen[w][s] {
			case groupSize:
				if !visible {
					return fmt.Errorf("writer %d: statement %d visible after an invisible earlier statement", w, s)
				}
			case 0:
				visible = false
			default:
				return fmt.Errorf("writer %d statement %d: %d of %d rows visible (torn statement)", w, s, seen[w][s], groupSize)
			}
		}
	}
	return nil
}

// TestSnapshotReadersVsWriters races continuous snapshot reads against
// concurrent writers on one shared table, across all three maintenance
// strategies and both concurrent transports. Every observed snapshot of
// the base table and of the view must be prefix-consistent committed
// state: no torn statements, no out-of-order visibility, never a blocked
// reader. Run with -race.
func TestSnapshotReadersVsWriters(t *testing.T) {
	const writers, stmts, group = 3, 12, 2
	strategies := []catalog.Strategy{catalog.StrategyNaive, catalog.StrategyAuxRel, catalog.StrategyGlobalIndex}
	for tname, cfg := range mvccTransports() {
		for _, strategy := range strategies {
			t.Run(fmt.Sprintf("%s/%s", tname, strategy), func(t *testing.T) {
				c := newMVCCCluster(t, cfg, strategy)
				var writersDone atomic.Bool
				errs := make([]error, writers+2)
				var wg, wwg sync.WaitGroup
				for w := 0; w < writers; w++ {
					wg.Add(1)
					wwg.Add(1)
					go func(w int) {
						defer wg.Done()
						defer wwg.Done()
						for s := 0; s < stmts; s++ {
							batch := make([]types.Tuple, group)
							for g := 0; g < group; g++ {
								id := int64(w)*1_000_000 + int64(s)*1_000 + int64(g)
								batch[g] = types.Tuple{types.Int(id), types.Int(int64((w + s + g) % 16))}
							}
							if err := c.Insert("a", batch); err != nil {
								errs[w] = err
								return
							}
						}
					}(w)
				}
				go func() {
					wwg.Wait()
					writersDone.Store(true)
				}()
				// Reader 1: base-table snapshots. Reader 2: view snapshots
				// (each a-row joins exactly 3 b-rows).
				for r := 0; r < 2; r++ {
					wg.Add(1)
					go func(r int) {
						defer wg.Done()
						reads := 0
						for !writersDone.Load() || reads < 3 {
							var rows []types.Tuple
							var err error
							gsize := group
							if r == 0 {
								rows, err = c.TableRows("a")
							} else {
								rows, err = c.ViewRows("jv")
								gsize = group * 3
							}
							if err == nil {
								err = checkStmtGroups(rows, writers, stmts, gsize)
							}
							if err != nil {
								errs[writers+r] = err
								return
							}
							reads++
						}
					}(r)
				}
				wg.Wait()
				for i, err := range errs {
					if err != nil {
						t.Fatalf("goroutine %d: %v", i, err)
					}
				}
				if err := c.CheckAllStructures(); err != nil {
					t.Fatal(err)
				}
				if err := c.CheckViewConsistency("jv"); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}
