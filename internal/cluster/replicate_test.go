package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"joinview/internal/catalog"
	"joinview/internal/expr"
	"joinview/internal/fault"
	"joinview/internal/node"
	"joinview/internal/storage"
	"joinview/internal/types"
)

// newReplicatedTPCR builds a replicated cluster with the three test tables
// loaded (same data as newTPCR).
func newReplicatedTPCR(t *testing.T, cfg Config, nCust, ordersPer, linesPer int) *Cluster {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	for _, tab := range []*catalog.Table{customerTable(), ordersTable(), lineitemTable()} {
		if err := c.CreateTable(tab); err != nil {
			t.Fatal(err)
		}
	}
	var customers, orders, lines []types.Tuple
	ok := int64(0)
	ln := int64(0)
	for ck := int64(0); ck < int64(nCust); ck++ {
		customers = append(customers, cust(ck, float64(ck)*1.5))
		for o := 0; o < ordersPer; o++ {
			ok++
			orders = append(orders, ord(ok, ck, float64(ok)*10))
			for l := 0; l < linesPer; l++ {
				ln++
				lines = append(lines, li(ok, ln, float64(ln)))
			}
		}
	}
	if err := c.Insert("customer", customers); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("orders", orders); err != nil {
		t.Fatal(err)
	}
	if linesPer > 0 {
		if err := c.Insert("lineitem", lines); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range []string{"customer", "orders", "lineitem"} {
		if err := c.RefreshStats(name); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// replFrags lists every cataloged fragment with its partition-column
// index: base tables, auxiliary relations and views.
func replFrags(t *testing.T, c *Cluster) map[string]int {
	t.Helper()
	out := map[string]int{}
	for _, tn := range c.cat.Tables() {
		tab, err := c.cat.Table(tn)
		if err != nil {
			t.Fatal(err)
		}
		out[tn] = tab.Schema.MustColIndex(tab.PartitionCol)
		for _, ar := range c.cat.AuxRelsFor(tn) {
			out[ar.Name] = ar.Schema.MustColIndex(ar.PartitionCol)
		}
	}
	for _, vn := range c.cat.Views() {
		v, err := c.cat.View(vn)
		if err != nil {
			t.Fatal(err)
		}
		out[vn] = v.Schema.MustColIndex(v.PartitionQualified())
	}
	return out
}

func sortTuples(rows []types.Tuple) {
	sort.Slice(rows, func(i, j int) bool { return rows[i].Compare(rows[j]) < 0 })
}

func tuplesEqual(a, b []types.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Compare(b[i]) != 0 {
			return false
		}
	}
	return true
}

// checkReplicaConsistency verifies the replication invariant on every live
// node: a node's shadow fragments hold exactly (byte-identical to the
// primaries) the rows of the hash slots it follows, and its shadow
// global-index fragments the entries of the values it follows.
func checkReplicaConsistency(t *testing.T, c *Cluster) {
	t.Helper()
	m := c.part.Map()
	if !m.Replicated() {
		t.Fatal("map is not replicated")
	}
	follows := make([]map[int]bool, c.NumNodes())
	for f := range follows {
		follows[f] = map[int]bool{}
	}
	for s, fs := range m.Repl {
		for _, f := range fs {
			follows[f][s] = true
		}
	}
	for frag, pi := range replFrags(t, c) {
		// Primary rows bucketed by slot.
		slotRows := map[int][]types.Tuple{}
		for n := 0; n < c.NumNodes(); n++ {
			if c.isDown(n) {
				continue
			}
			resp, err := c.rawDeliver(n, node.AllRows{Frag: frag})
			if err != nil {
				t.Fatalf("read %q at node %d: %v", frag, n, err)
			}
			for _, tup := range resp.(node.RowsResult).Tuples {
				s := m.Slot(tup[pi])
				slotRows[s] = append(slotRows[s], tup)
			}
		}
		for f := 0; f < c.NumNodes(); f++ {
			if c.isDown(f) {
				continue
			}
			var want []types.Tuple
			for s := range follows[f] {
				want = append(want, slotRows[s]...)
			}
			resp, err := c.rawDeliver(f, node.AllRows{Frag: shadowName(frag)})
			if err != nil {
				t.Fatalf("read %q at node %d: %v", shadowName(frag), f, err)
			}
			got := append([]types.Tuple(nil), resp.(node.RowsResult).Tuples...)
			sortTuples(want)
			sortTuples(got)
			if !tuplesEqual(want, got) {
				t.Errorf("node %d shadow of %q diverged: %d rows, want %d\n got: %v\nwant: %v",
					f, frag, len(got), len(want), got, want)
			}
		}
	}
	// Global indexes: shadow entries must mirror the primaries' per-slot
	// entries.
	for _, tn := range c.cat.Tables() {
		for _, gi := range c.cat.GlobalIndexesFor(tn) {
			type ent struct {
				v types.Value
				g storage.GlobalRowID
			}
			slotEnts := map[int][]ent{}
			for n := 0; n < c.NumNodes(); n++ {
				if c.isDown(n) {
					continue
				}
				resp, err := c.rawDeliver(n, node.GIScan{GI: gi.Name})
				if err != nil {
					t.Fatalf("scan %q at node %d: %v", gi.Name, n, err)
				}
				gr := resp.(node.GIScanResult)
				for i, v := range gr.Vals {
					s := m.Slot(v)
					slotEnts[s] = append(slotEnts[s], ent{v, gr.Gs[i]})
				}
			}
			key := func(e ent) string {
				return fmt.Sprintf("%v/%d/%d", e.v, e.g.Node, e.g.Row)
			}
			for f := 0; f < c.NumNodes(); f++ {
				if c.isDown(f) {
					continue
				}
				var want []string
				for s := range follows[f] {
					for _, e := range slotEnts[s] {
						want = append(want, key(e))
					}
				}
				resp, err := c.rawDeliver(f, node.GIScan{GI: shadowName(gi.Name)})
				if err != nil {
					t.Fatalf("scan %q at node %d: %v", shadowName(gi.Name), f, err)
				}
				gr := resp.(node.GIScanResult)
				var got []string
				for i, v := range gr.Vals {
					got = append(got, key(ent{v, gr.Gs[i]}))
				}
				sort.Strings(want)
				sort.Strings(got)
				if len(want) != len(got) {
					t.Errorf("node %d shadow of %q diverged: %d entries, want %d", f, gi.Name, len(got), len(want))
					continue
				}
				for i := range want {
					if want[i] != got[i] {
						t.Errorf("node %d shadow of %q entry %d: %s, want %s", f, gi.Name, i, got[i], want[i])
						break
					}
				}
			}
		}
	}
}

// TestReplicationConfigValidation checks the Config guards.
func TestReplicationConfigValidation(t *testing.T) {
	if _, err := New(Config{Nodes: 2, ReplicationFactor: 3}); err == nil {
		t.Fatal("ReplicationFactor > Nodes should be refused")
	}
	if _, err := New(Config{Nodes: 2, ReplicationFactor: -1}); err == nil {
		t.Fatal("negative ReplicationFactor should be refused")
	}
	c, err := New(Config{Nodes: 2, ReplicationFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	c, err = New(Config{Nodes: 3, ReplicationFactor: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	m := c.part.Map()
	if !m.Replicated() {
		t.Fatal("RF=3 map not replicated")
	}
	for s := range m.Owner {
		if len(m.Repl[s]) != 2 {
			t.Fatalf("slot %d has %d followers, want 2", s, len(m.Repl[s]))
		}
	}
}

// TestReplicationElasticityRefused checks AddNode/RebalanceNode/
// DecommissionNode are gated at RF > 1.
func TestReplicationElasticityRefused(t *testing.T) {
	c, err := New(Config{Nodes: 3, ReplicationFactor: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.AddNode(); err == nil {
		t.Fatal("AddNode at RF=2 should be refused")
	}
	if err := c.RebalanceNode(0); err == nil {
		t.Fatal("RebalanceNode at RF=2 should be refused")
	}
	if err := c.DecommissionNode(0); err == nil {
		t.Fatal("DecommissionNode at RF=2 should be refused")
	}
}

// TestReplicaConsistencyProperty runs randomized DML (inserts, deletes,
// updates, all three view strategies) at RF=2 and RF=3 and verifies after
// every batch that each node's shadows are byte-identical to the
// primaries' rows of the slots it follows — base tables, auxiliary
// relations, global indexes and view fragments alike.
func TestReplicaConsistencyProperty(t *testing.T) {
	for _, k := range []int{2, 3} {
		for si, strat := range allStrategies {
			k, strat, si := k, strat, si
			t.Run(fmt.Sprintf("rf%d/%s", k, strat), func(t *testing.T) {
				c := newReplicatedTPCR(t, Config{Nodes: 4, ReplicationFactor: k}, 6, 2, 0)
				if err := c.CreateView(jv1Def("jv1", strat)); err != nil {
					t.Fatal(err)
				}
				checkReplicaConsistency(t, c)
				rng := rand.New(rand.NewSource(int64(100*k + si)))
				nextOK := int64(1000)
				for round := 0; round < 6; round++ {
					for i := 0; i < 5; i++ {
						switch rng.Intn(3) {
						case 0:
							nextOK++
							if err := c.Insert("orders", []types.Tuple{
								ord(nextOK, rng.Int63n(6), float64(nextOK)),
							}); err != nil {
								t.Fatalf("insert: %v", err)
							}
						case 1:
							pred := expr.Cmp{Op: expr.EQ,
								L: expr.Col{Name: "orderkey"},
								R: expr.Const{V: types.Int(rng.Int63n(nextOK))}}
							if _, err := c.Delete("orders", pred); err != nil {
								t.Fatalf("delete: %v", err)
							}
						case 2:
							pred := expr.Cmp{Op: expr.EQ,
								L: expr.Col{Name: "custkey"},
								R: expr.Const{V: types.Int(rng.Int63n(6))}}
							if _, err := c.Update("customer",
								map[string]types.Value{"acctbal": types.Float(float64(round))}, pred); err != nil {
								t.Fatalf("update: %v", err)
							}
						}
					}
					checkReplicaConsistency(t, c)
				}
				if err := c.CheckViewConsistency("jv1"); err != nil {
					t.Fatal(err)
				}
				if err := c.CheckAllStructures(); err != nil {
					t.Fatal(err)
				}
				if c.Metrics().Repl.Mirrors == 0 {
					t.Fatal("no mirrored writes recorded")
				}
			})
		}
	}
}

// TestReplicaShadowRollback verifies shadows track statement rollbacks: a
// statement that fails mid-flight undoes its mirrored writes too.
func TestReplicaShadowRollback(t *testing.T) {
	inj := fault.New(fault.Config{Seed: 5})
	c := newReplicatedTPCR(t, Config{Nodes: 4, ReplicationFactor: 2, Faults: inj, RetryAttempts: 2}, 4, 2, 0)
	if err := c.CreateView(jv1Def("jv1", catalog.StrategyAuxRel)); err != nil {
		t.Fatal(err)
	}
	checkReplicaConsistency(t, c)
	// Poison enough deliveries that the statement exhausts its retries and
	// rolls back (non-transient handler errors are not retried).
	inj.FailNext(fault.KindHandlerErr, 8)
	inj.Arm()
	err := c.Insert("orders", []types.Tuple{ord(500, 1, 5.0), ord(501, 2, 5.0), ord(502, 3, 5.0)})
	inj.Disarm()
	if err == nil {
		// The storm may have been absorbed entirely by retries; only a
		// failed statement exercises the rollback path.
		t.Skip("fault storm absorbed by retries; no rollback to check")
	}
	// Drain any one-shot faults the short statement left queued (FailNext
	// fires regardless of arming) so the consistency scans read cleanly.
	for i := 0; i < 8; i++ {
		for n := 0; n < c.NumNodes(); n++ {
			c.rawDeliver(n, node.Ping{})
		}
	}
	// The rolled-back orderkeys must appear in no live node's main or
	// shadow fragment: the compensations were mirrored, including the ones
	// absorbed against a node the fault storm marked down.
	phantoms := func(stage string) {
		t.Helper()
		for _, frag := range []string{"orders", shadowName("orders")} {
			for n := 0; n < c.NumNodes(); n++ {
				if c.isDown(n) {
					continue
				}
				resp, rerr := c.rawDeliver(n, node.AllRows{Frag: frag})
				if rerr != nil {
					t.Fatalf("%s: read %q at node %d: %v", stage, frag, n, rerr)
				}
				for _, tup := range resp.(node.RowsResult).Tuples {
					if k := tup[0].I; k >= 500 && k <= 502 {
						t.Errorf("%s: aborted row %v survives in %q at node %d", stage, tup, frag, n)
					}
				}
			}
		}
	}
	phantoms("before repair")
	// Repair revives the down-marked node, promotes, wipes and recopies;
	// afterwards the full invariant must hold and no phantom may have been
	// promoted out of a follower shadow.
	if err := c.ReplicateRepair(); err != nil {
		t.Fatalf("ReplicateRepair: %v", err)
	}
	phantoms("after repair")
	checkReplicaConsistency(t, c)
	if err := c.CheckViewConsistency("jv1"); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckAllStructures(); err != nil {
		t.Fatal(err)
	}
}

// TestFailoverServesCompleteAfterCrash crashes one node at RF=2 and
// asserts the cluster keeps full service with zero statement errors and
// zero partial reads: DML commits on the survivors, reads return complete
// results, and the view stays exactly its definition.
func TestFailoverServesCompleteAfterCrash(t *testing.T) {
	for _, strat := range allStrategies {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			inj := fault.New(fault.Config{Seed: 7})
			c := newReplicatedTPCR(t, Config{Nodes: 4, ReplicationFactor: 2, Faults: inj, RetryAttempts: 3}, 6, 2, 0)
			if err := c.CreateView(jv1Def("jv1", strat)); err != nil {
				t.Fatal(err)
			}
			before, err := c.ViewRows("jv1")
			if err != nil {
				t.Fatal(err)
			}

			inj.Crash(2)

			// Every statement must succeed: the first to notice the crash
			// heals (promotes node 2's slots) and retries internally.
			for i := int64(0); i < 10; i++ {
				if err := c.Insert("orders", []types.Tuple{ord(600+i, i%6, 1.0)}); err != nil {
					t.Fatalf("insert %d after crash: %v", i, err)
				}
			}
			if _, err := c.Delete("orders", expr.Cmp{Op: expr.EQ,
				L: expr.Col{Name: "orderkey"}, R: expr.Const{V: types.Int(601)}}); err != nil {
				t.Fatalf("delete after crash: %v", err)
			}

			// Reads are complete, never partial.
			rows, err := c.TableRows("orders")
			if err != nil {
				t.Fatalf("TableRows after crash: %v", err)
			}
			wantOrders := 6*2 + 10 - 1
			if len(rows) != wantOrders {
				t.Fatalf("TableRows = %d rows, want %d", len(rows), wantOrders)
			}
			got, err := c.ViewRows("jv1")
			if err != nil {
				t.Fatalf("ViewRows after crash: %v", err)
			}
			if len(got) != len(before)+10-1 {
				t.Fatalf("view has %d rows, want %d", len(got), len(before)+10-1)
			}
			if err := c.CheckViewConsistency("jv1"); err != nil {
				t.Fatal(err)
			}
			if ms := c.Metrics().Repl; ms.Failovers != 1 || ms.PromotedSlots == 0 {
				t.Fatalf("Repl metrics = %+v, want 1 failover with promoted slots", ms)
			}

			// Repair: restart the node and re-replicate. Full strength and
			// the shadow invariant must hold again.
			inj.Restart(2)
			if err := c.ReplicateRepair(); err != nil {
				t.Fatalf("ReplicateRepair: %v", err)
			}
			if d := c.Degraded(); len(d) != 0 {
				t.Fatalf("still degraded after repair: %v", d)
			}
			checkReplicaConsistency(t, c)
			if err := c.CheckViewConsistency("jv1"); err != nil {
				t.Fatal(err)
			}
			if err := c.CheckAllStructures(); err != nil {
				t.Fatal(err)
			}
			// And the revived node serves DML again.
			for i := int64(0); i < 6; i++ {
				if err := c.Insert("orders", []types.Tuple{ord(700+i, i%6, 2.0)}); err != nil {
					t.Fatalf("insert %d after repair: %v", i, err)
				}
			}
			checkReplicaConsistency(t, c)
		})
	}
}

// TestFailoverDoubleCrash loses two nodes (sequentially) at RF=3 and
// still expects full service; at RF=2 the second crash of an adjacent
// node may orphan a slot, which must surface as ErrDegraded, not silent
// data loss.
func TestFailoverDoubleCrash(t *testing.T) {
	inj := fault.New(fault.Config{Seed: 9})
	c := newReplicatedTPCR(t, Config{Nodes: 5, ReplicationFactor: 3, Faults: inj, RetryAttempts: 3}, 6, 2, 0)
	if err := c.CreateView(jv1Def("jv1", catalog.StrategyAuxRel)); err != nil {
		t.Fatal(err)
	}
	inj.Crash(1)
	for i := int64(0); i < 4; i++ {
		if err := c.Insert("orders", []types.Tuple{ord(800+i, i%6, 1.0)}); err != nil {
			t.Fatalf("insert %d after first crash: %v", i, err)
		}
	}
	inj.Crash(3)
	for i := int64(0); i < 4; i++ {
		if err := c.Insert("orders", []types.Tuple{ord(810+i, i%6, 1.0)}); err != nil {
			t.Fatalf("insert %d after second crash: %v", i, err)
		}
	}
	if err := c.CheckViewConsistency("jv1"); err != nil {
		t.Fatal(err)
	}
	inj.Restart(1)
	inj.Restart(3)
	if err := c.ReplicateRepair(); err != nil {
		t.Fatalf("ReplicateRepair: %v", err)
	}
	checkReplicaConsistency(t, c)
	if err := c.CheckAllStructures(); err != nil {
		t.Fatal(err)
	}
}

// TestPartialErrorDetail asserts the RF=1 degraded read error carries the
// down nodes and unreachable slot count.
func TestPartialErrorDetail(t *testing.T) {
	c := newTPCR(t, 4, 4, 2, 0)
	if err := c.MarkNodeDown(2); err != nil {
		t.Fatal(err)
	}
	_, err := c.TableRows("orders")
	if !errors.Is(err, ErrPartial) {
		t.Fatalf("TableRows degraded: %v, want ErrPartial", err)
	}
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v is not a *PartialError", err)
	}
	if len(pe.Down) != 1 || pe.Down[0] != 2 {
		t.Fatalf("PartialError.Down = %v, want [2]", pe.Down)
	}
	if pe.Slots == 0 {
		t.Fatal("PartialError.Slots = 0, want > 0")
	}
	if pe.Frag != "orders" {
		t.Fatalf("PartialError.Frag = %q, want orders", pe.Frag)
	}
}

// TestTopologyReplicationFields checks the observability surface: replica
// sets, node statuses and repair progress appear in Topology.
func TestTopologyReplicationFields(t *testing.T) {
	inj := fault.New(fault.Config{Seed: 3})
	c := newReplicatedTPCR(t, Config{Nodes: 4, ReplicationFactor: 2, Faults: inj, RetryAttempts: 2}, 4, 1, 0)
	top := c.Topology()
	if top.ReplicationFactor != 2 {
		t.Fatalf("ReplicationFactor = %d, want 2", top.ReplicationFactor)
	}
	if len(top.Replicas) != len(top.SlotOwner) {
		t.Fatalf("Replicas has %d slots, SlotOwner %d", len(top.Replicas), len(top.SlotOwner))
	}
	for n, st := range top.NodeStatus {
		if st != "up" {
			t.Fatalf("node %d status %q, want up", n, st)
		}
	}
	inj.Crash(1)
	// Insert a row whose slot node 1 owns, so the statement notices the
	// crash and fails over (a write elsewhere would not touch node 1).
	m := c.part.Map()
	key := int64(900)
	for m.Owner[m.Slot(types.Int(key))] != 1 {
		key++
	}
	if err := c.Insert("orders", []types.Tuple{ord(key, 0, 1.0)}); err != nil {
		t.Fatalf("insert after crash: %v", err)
	}
	top = c.Topology()
	if top.NodeStatus[1] != "failed-over" {
		t.Fatalf("node 1 status %q, want failed-over", top.NodeStatus[1])
	}
	for s, o := range top.SlotOwner {
		if o == 1 {
			t.Fatalf("slot %d still owned by failed-over node 1", s)
		}
	}
	inj.Restart(1)
	if err := c.ReplicateRepair(); err != nil {
		t.Fatal(err)
	}
	top = c.Topology()
	if top.NodeStatus[1] != "up" {
		t.Fatalf("node 1 status %q after repair, want up", top.NodeStatus[1])
	}
	if ms := c.Metrics().Repl; ms.Repairs != 1 || ms.RepairedSlots == 0 {
		t.Fatalf("Repl metrics = %+v, want one repair with repaired slots", ms)
	}
}
